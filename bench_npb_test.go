package mv2j_test

// Application-level benchmarks: the NPB-style kernels on both library
// personalities, reporting virtual makespans. These complement the
// per-figure microbenchmarks the way NPB-MPJ complements OMB-J.

import (
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/npb"
)

func reportKernel(b *testing.B, mv2, ompi npb.Result) {
	b.Helper()
	if !mv2.Verified || !ompi.Verified {
		b.Fatalf("verification failed: mv2=%v ompi=%v", mv2.Detail, ompi.Detail)
	}
	b.ReportMetric(mv2.Makespan.Micros(), "mv2-makespan-us")
	b.ReportMetric(ompi.Makespan.Micros(), "ompi-makespan-us")
	b.ReportMetric(ompi.Makespan.Micros()/mv2.Makespan.Micros(), "ompi/mv2-x")
}

func BenchmarkNPBEmbarrassinglyParallel(b *testing.B) {
	var mv2, ompi npb.Result
	var err error
	for i := 0; i < b.N; i++ {
		mv2, err = npb.RunEP(npb.EPConfig{LogPairs: 16, Nodes: 2, PPN: 8, Lib: "mvapich2"})
		if err != nil {
			b.Fatal(err)
		}
		ompi, err = npb.RunEP(npb.EPConfig{LogPairs: 16, Nodes: 2, PPN: 8, Lib: "openmpi", Flavor: core.OpenMPIJ})
		if err != nil {
			b.Fatal(err)
		}
	}
	reportKernel(b, mv2, ompi)
}

func BenchmarkNPBConjugateGradient(b *testing.B) {
	var mv2, ompi npb.Result
	var err error
	for i := 0; i < b.N; i++ {
		cfg := npb.CGConfig{N: 1024, Band: 8, PowerIters: 3, CGIters: 10, Nodes: 4, PPN: 4, Lib: "mvapich2"}
		mv2, err = npb.RunCG(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Lib, cfg.Flavor = "openmpi", core.OpenMPIJ
		ompi, err = npb.RunCG(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportKernel(b, mv2, ompi)
}

func BenchmarkNPBIntegerSort(b *testing.B) {
	var mv2, ompi npb.Result
	var err error
	for i := 0; i < b.N; i++ {
		cfg := npb.ISConfig{KeysPerRank: 20000, MaxKey: 1 << 20, Nodes: 4, PPN: 4, Lib: "mvapich2"}
		mv2, err = npb.RunIS(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.Lib, cfg.Flavor = "openmpi", core.OpenMPIJ
		ompi, err = npb.RunIS(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportKernel(b, mv2, ompi)
}
