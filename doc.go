// Package mv2j is a simulation-grade Go reproduction of "Towards
// Java-based HPC using the MVAPICH2 Library: Early Experiences"
// (Al-Attar, Shafi, Subramoni, Panda): Java bindings for a native MPI
// library, rebuilt end to end — simulated JVM (managed heap, moving
// GC, arrays, direct ByteBuffers), JNI boundary, the mpjbuf buffering
// layer, a complete native MPI runtime with MVAPICH2-like and
// OpenMPI-like tuning profiles, the OMB-J benchmark suite, and a
// harness regenerating every figure of the paper's evaluation.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results. The root package holds only the
// per-figure benchmarks (bench_test.go, bench_ablation_test.go).
package mv2j
