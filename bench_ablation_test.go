package mv2j_test

// Ablation benchmarks for the design decisions the paper argues for.
// Each reports virtual-time costs as custom metrics:
//
//   - AblationBufferPool: the buffering layer's pooled direct buffers
//     vs allocating a direct buffer per message (§IV-A's motivation);
//   - AblationJNIStrategy: Get<Type>ArrayElements copy-in/copy-out vs
//     GetPrimitiveArrayCritical pinning vs direct-buffer address
//     (§IV-B's three data paths);
//   - AblationCriticalGCStall: the hidden cost of the critical path —
//     a deferred collection bursting at region exit;
//   - AblationEagerThreshold: where the eager/rendezvous knee falls;
//   - AblationOffsetExtension: subset sends through the offset
//     argument vs staging a full copy (§IV-B).

import (
	"fmt"
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/fabric"
	"mv2j/internal/jni"
	"mv2j/internal/jvm"
	"mv2j/internal/omb"
	"mv2j/internal/profile"
	"mv2j/internal/vtime"
)

// BenchmarkAblationBufferPool compares array-mode latency with the
// mpjbuf pool enabled vs a fresh allocateDirect per message.
func BenchmarkAblationBufferPool(b *testing.B) {
	o := benchOpts(1, 65536)
	var pooledUs, unpooledUs float64
	for i := 0; i < b.N; i++ {
		cfg := benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeArrays, o)
		pooled := mustRun(b, "latency", cfg)
		cfg.Core.UnpooledBuffers = true
		unpooled := mustRun(b, "latency", cfg)
		pooledUs = at(pooled, 8).LatencyUs
		unpooledUs = at(unpooled, 8).LatencyUs
	}
	b.ReportMetric(pooledUs, "pooled-8B-us")
	b.ReportMetric(unpooledUs, "unpooled-8B-us")
	b.ReportMetric(unpooledUs/pooledUs, "pool-speedup-x")
}

// BenchmarkAblationJNIStrategy measures the virtual cost of reaching a
// 64KB payload from native code through each JNI path.
func BenchmarkAblationJNIStrategy(b *testing.B) {
	const n = 64 << 10
	var copyUs, criticalUs, directUs float64
	for i := 0; i < b.N; i++ {
		clock := vtime.NewClock()
		m := jvm.NewMachine(clock, jvm.Options{HeapSize: 8 << 20, ArenaSize: 8 << 20})
		env := jni.New(m)
		arr := m.MustArray(jvm.Byte, n)
		direct := m.MustAllocateDirect(n)

		t0 := clock.Now()
		elems := env.GetArrayElements(arr)
		env.ReleaseArrayElements(arr, elems, jni.CopyBack)
		copyUs = clock.Now().Sub(t0).Micros()

		t1 := clock.Now()
		view := env.GetPrimitiveArrayCritical(arr)
		_ = view
		env.ReleasePrimitiveArrayCritical(arr)
		criticalUs = clock.Now().Sub(t1).Micros()

		t2 := clock.Now()
		_ = env.GetDirectBufferAddress(direct)
		directUs = clock.Now().Sub(t2).Micros()
	}
	b.ReportMetric(copyUs, "copy-path-us")
	b.ReportMetric(criticalUs, "critical-path-us")
	b.ReportMetric(directUs, "direct-path-us")
}

// BenchmarkAblationCriticalGCStall shows why the critical path is "not
// recommended": a collection requested while the region is open lands
// as a burst at release time.
func BenchmarkAblationCriticalGCStall(b *testing.B) {
	var stallUs float64
	for i := 0; i < b.N; i++ {
		clock := vtime.NewClock()
		m := jvm.NewMachine(clock, jvm.Options{HeapSize: 1 << 20, ArenaSize: 1 << 20})
		env := jni.New(m)
		arr := m.MustArray(jvm.Byte, 64<<10)
		// Open the critical region, then create allocation pressure
		// that wants a collection.
		_ = env.GetPrimitiveArrayCritical(arr)
		for j := 0; j < 64; j++ {
			tmp, err := m.NewArray(jvm.Byte, 64<<10)
			if err != nil {
				break // heap saturated: the GC request is now pending
			}
			tmp.Discard()
		}
		t0 := clock.Now()
		env.ReleasePrimitiveArrayCritical(arr) // deferred GC runs here
		stallUs = clock.Now().Sub(t0).Micros()
	}
	b.ReportMetric(stallUs, "release-stall-us")
}

// BenchmarkAblationEagerThreshold sweeps the protocol threshold to
// expose the rendezvous knee in point-to-point latency.
func BenchmarkAblationEagerThreshold(b *testing.B) {
	const msg = 32 << 10
	var eagerUs, rndvUs float64
	for i := 0; i < b.N; i++ {
		run := func(threshold int) float64 {
			inter := fabric.FronteraIB()
			inter.EagerThreshold = threshold
			o := benchOpts(msg, msg)
			cfg := benchCfg("mvapich2", core.MVAPICH2J, 2, 1, omb.ModeBuffer, o)
			cfg.Core.Inter = &inter
			// Profile override must not mask the fabric threshold.
			cfg.Core.Lib.EagerInter = threshold
			rows := mustRun(b, "latency", cfg)
			return at(rows, msg).LatencyUs
		}
		eagerUs = run(64 << 10) // message below threshold: eager
		rndvUs = run(1 << 10)   // message above threshold: rendezvous
	}
	b.ReportMetric(eagerUs, "eager-32KB-us")
	b.ReportMetric(rndvUs, "rendezvous-32KB-us")
	b.ReportMetric(rndvUs-eagerUs, "handshake-cost-us")
}

// BenchmarkAblationKnomialRadix sweeps the knomial tree arity of the
// MVAPICH2 shm-aware broadcast at 64 ranks: wide trees amortise
// per-message overheads for small payloads, up to the point where the
// root's sequential sends dominate.
func BenchmarkAblationKnomialRadix(b *testing.B) {
	radixUs := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, k := range []int{2, 4, 8, 16} {
			prof := profile.MVAPICH2()
			prof.KnomialRadix = k
			o := benchOpts(64, 64)
			o.Iters = 10
			cfg := omb.Config{
				Core: core.Config{Nodes: 4, PPN: 16, Lib: prof, Flavor: core.MVAPICH2J},
				Mode: omb.ModeBuffer,
				Opts: o,
			}
			rows := mustRun(b, "bcast", cfg)
			radixUs[k] = at(rows, 64).LatencyUs
		}
	}
	for _, k := range []int{2, 4, 8, 16} {
		b.ReportMetric(radixUs[k], fmt.Sprintf("radix%d-us", k))
	}
}

// BenchmarkAblationOffsetExtension compares sending a 1KB subset of a
// 1MB array through the offset argument (stage only the subset) vs the
// Open MPI-J route (marshal, then send, with no offset support — the
// caller must copy the subset to a fresh array first).
func BenchmarkAblationOffsetExtension(b *testing.B) {
	const (
		arrayLen = 1 << 20
		subset   = 1024
		offset   = 4096
	)
	var subsetUs, copyFirstUs float64
	for i := 0; i < b.N; i++ {
		prof := profile.MVAPICH2()
		err := core.Run(core.Config{Nodes: 2, PPN: 1, Lib: prof, Flavor: core.MVAPICH2J,
			HeapSize: 8 << 20, ArenaSize: 8 << 20},
			func(mpi *core.MPI) error {
				world := mpi.CommWorld()
				me := world.Rank()
				big := mpi.JVM().MustArray(jvm.Byte, arrayLen)
				small := mpi.JVM().MustArray(jvm.Byte, subset)
				const iters = 20
				if me == 0 {
					sw := vtime.StartStopwatch(mpi.Clock())
					for k := 0; k < iters; k++ {
						if err := world.SendRange(big, offset, subset, core.BYTE, 1, 0); err != nil {
							return err
						}
					}
					subsetUs = sw.Elapsed().Micros() / iters

					sw = vtime.StartStopwatch(mpi.Clock())
					for k := 0; k < iters; k++ {
						// Without the offset argument: copy the subset
						// into a message-sized array, then send it.
						big.CopyOutBytes(offset, make([]byte, subset)) // user-level System.arraycopy
						small.CopyInBytes(0, make([]byte, subset))
						if err := world.Send(small, subset, core.BYTE, 1, 1); err != nil {
							return err
						}
					}
					copyFirstUs = sw.Elapsed().Micros() / iters
					return nil
				}
				buf := mpi.JVM().MustArray(jvm.Byte, subset)
				for k := 0; k < iters; k++ {
					if _, err := world.Recv(buf, subset, core.BYTE, 0, 0); err != nil {
						return err
					}
				}
				for k := 0; k < iters; k++ {
					if _, err := world.Recv(buf, subset, core.BYTE, 0, 1); err != nil {
						return err
					}
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(subsetUs, "offset-send-us")
	b.ReportMetric(copyFirstUs, "copy-then-send-us")
}
