// Package profile provides the two native-library personalities the
// paper evaluates: MVAPICH2-X 2.3.6 and Open MPI 4.1.2 + UCX 1.13.
//
// The paper's point-to-point results show the libraries roughly at
// parity inter-node (Figs. 9–13) with MVAPICH2 ahead intra-node for
// small messages (Fig. 5, ×2.46 average), while the collective results
// (Figs. 14–17) show large MVAPICH2 advantages that the authors
// attribute to "performance differences in the native MPI libraries".
// Those differences are expressed here as: per-message software
// overheads, protocol thresholds, per-step collective overheads, and —
// dominating the collective gap — algorithm selection.
package profile

import (
	"mv2j/internal/nativempi"
	"mv2j/internal/vtime"
)

// MVAPICH2 returns the MVAPICH2-like tuning: lean per-message software
// path, knomial/scatter-allgather broadcasts, recursive-doubling and
// ring allreduce.
func MVAPICH2() nativempi.Profile {
	return nativempi.Profile{
		Name:              "mvapich2",
		IntraSendOverhead: vtime.Nanos(45),
		IntraRecvOverhead: vtime.Nanos(45),
		InterSendOverhead: vtime.Nanos(70),
		InterRecvOverhead: vtime.Nanos(70),
		EagerIntra:        8192,
		EagerInter:        16384,
		CollMsgOverhead:   vtime.Nanos(90),
		KnomialRadix:      8,
		ReduceBandwidth:   10e9,
		SelectBcast: func(nbytes, p int) nativempi.BcastAlg {
			// At scale the single-leader trees funnel every node's
			// traffic through one rank; MVAPICH2 switches to the
			// multi-leader hierarchy once the communicator is large.
			if p >= 256 {
				return nativempi.BcastMultiLeader
			}
			if nbytes > 128*1024 {
				return nativempi.BcastScatterAllgather
			}
			return nativempi.BcastShmAware
		},
		SelectAllreduce: func(nbytes, p int) nativempi.AllreduceAlg {
			if p >= 256 {
				return nativempi.AllreduceMultiLeader
			}
			if nbytes > 32*1024 {
				return nativempi.AllreduceRabenseifner
			}
			return nativempi.AllreduceShmAware
		},
		SelectReduce: func(nbytes, p int) nativempi.ReduceAlg {
			return nativempi.ReduceBinomial
		},
		SelectAllgather: func(nbytes, p int) nativempi.AllgatherAlg {
			return nativempi.AllgatherRing
		},
		SelectAlltoall: func(nbytes, p int) nativempi.AlltoallAlg {
			return nativempi.AlltoallPairwise
		},
		SelectBarrier: func(p int) nativempi.BarrierAlg {
			return nativempi.BarrierDissemination
		},
		SelectGather: func(nbytes, p int) nativempi.GatherAlg {
			return nativempi.GatherBinomial
		},
		SelectScatter: func(nbytes, p int) nativempi.ScatterAlg {
			return nativempi.ScatterBinomial
		},
	}
}

// OpenMPI returns the Open MPI + UCX-like tuning of the paper's runs:
// heavier intra-node small-message software path (the ×2.46 of
// Fig. 5), comparable inter-node point-to-point, and costlier
// collectives — higher per-step overhead and non-segmented binary-tree
// broadcast / reduce+bcast allreduce schedules.
func OpenMPI() nativempi.Profile {
	return nativempi.Profile{
		Name:              "openmpi",
		IntraSendOverhead: vtime.Nanos(660),
		IntraRecvOverhead: vtime.Nanos(660),
		InterSendOverhead: vtime.Nanos(90),
		InterRecvOverhead: vtime.Nanos(90),
		EagerIntra:        4096,
		EagerInter:        8192,
		CollMsgOverhead:   vtime.Nanos(550),
		KnomialRadix:      2,
		ReduceBandwidth:   8e9,
		SelectBcast: func(nbytes, p int) nativempi.BcastAlg {
			// The topology-oblivious decision table of the paper's Open
			// MPI runs: a linear (root-serialised) fan-out for small
			// payloads, a binomial tree in the middle, and a
			// non-segmented binary tree for large payloads.
			switch {
			case nbytes <= 4096:
				return nativempi.BcastFlat
			case nbytes <= 32*1024:
				return nativempi.BcastBinomial
			default:
				return nativempi.BcastBinaryTree
			}
		},
		SelectAllreduce: func(nbytes, p int) nativempi.AllreduceAlg {
			if nbytes > 1024*1024 {
				return nativempi.AllreduceRabenseifner
			}
			if nbytes <= 256 {
				return nativempi.AllreduceRecursiveDoubling
			}
			return nativempi.AllreduceReduceBcast
		},
		SelectReduce: func(nbytes, p int) nativempi.ReduceAlg {
			return nativempi.ReduceBinomial
		},
		SelectAllgather: func(nbytes, p int) nativempi.AllgatherAlg {
			return nativempi.AllgatherRing
		},
		SelectAlltoall: func(nbytes, p int) nativempi.AlltoallAlg {
			return nativempi.AlltoallPairwise
		},
		SelectBarrier: func(p int) nativempi.BarrierAlg {
			return nativempi.BarrierDissemination
		},
		SelectGather: func(nbytes, p int) nativempi.GatherAlg {
			return nativempi.GatherLinear
		},
		SelectScatter: func(nbytes, p int) nativempi.ScatterAlg {
			return nativempi.ScatterLinear
		},
	}
}

// ByName resolves a profile by its CLI name ("mvapich2", "openmpi").
// Unknown names return the MVAPICH2 profile and false.
func ByName(name string) (nativempi.Profile, bool) {
	switch name {
	case "mvapich2", "mv2", "mvapich":
		return MVAPICH2(), true
	case "openmpi", "ompi":
		return OpenMPI(), true
	default:
		return MVAPICH2(), false
	}
}
