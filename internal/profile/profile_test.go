package profile

import (
	"testing"

	"mv2j/internal/nativempi"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"mvapich2", "mv2", "mvapich"} {
		p, ok := ByName(name)
		if !ok || p.Name != "mvapich2" {
			t.Fatalf("ByName(%q) = %q, %v", name, p.Name, ok)
		}
	}
	for _, name := range []string{"openmpi", "ompi"} {
		p, ok := ByName(name)
		if !ok || p.Name != "openmpi" {
			t.Fatalf("ByName(%q) = %q, %v", name, p.Name, ok)
		}
	}
	if _, ok := ByName("mpich"); ok {
		t.Fatal("unknown profile name accepted")
	}
}

func TestProfilesAreDistinctPersonalities(t *testing.T) {
	mv2, ompi := MVAPICH2(), OpenMPI()
	if mv2.IntraSendOverhead >= ompi.IntraSendOverhead {
		t.Fatal("MVAPICH2's intra-node software path must be leaner (Fig. 5)")
	}
	if mv2.CollMsgOverhead >= ompi.CollMsgOverhead {
		t.Fatal("MVAPICH2's collective per-message overhead must be lower")
	}
}

func TestAlgorithmSelection(t *testing.T) {
	mv2, ompi := MVAPICH2(), OpenMPI()

	// MVAPICH2: topology-aware small bcast, scatter-allgather large.
	if got := mv2.SelectBcast(64, 64); got != nativempi.BcastShmAware {
		t.Fatalf("mv2 small bcast = %v", got)
	}
	if got := mv2.SelectBcast(1<<20, 64); got != nativempi.BcastScatterAllgather {
		t.Fatalf("mv2 large bcast = %v", got)
	}
	// Open MPI: linear fan-out small, binary tree large.
	if got := ompi.SelectBcast(64, 64); got != nativempi.BcastFlat {
		t.Fatalf("ompi small bcast = %v", got)
	}
	if got := ompi.SelectBcast(1<<20, 64); got != nativempi.BcastBinaryTree {
		t.Fatalf("ompi large bcast = %v", got)
	}

	// Allreduce bands.
	if got := mv2.SelectAllreduce(64, 64); got != nativempi.AllreduceShmAware {
		t.Fatalf("mv2 small allreduce = %v", got)
	}
	if got := mv2.SelectAllreduce(1<<20, 64); got != nativempi.AllreduceRabenseifner {
		t.Fatalf("mv2 large allreduce = %v", got)
	}
	if got := ompi.SelectAllreduce(64, 64); got != nativempi.AllreduceRecursiveDoubling {
		t.Fatalf("ompi tiny allreduce = %v", got)
	}
	if got := ompi.SelectAllreduce(64<<10, 64); got != nativempi.AllreduceReduceBcast {
		t.Fatalf("ompi mid allreduce = %v", got)
	}
	if got := ompi.SelectAllreduce(4<<20, 64); got != nativempi.AllreduceRabenseifner {
		t.Fatalf("ompi huge allreduce = %v", got)
	}
}

func TestEagerThresholds(t *testing.T) {
	mv2, ompi := MVAPICH2(), OpenMPI()
	if mv2.EagerInter <= ompi.EagerInter {
		t.Fatal("MVAPICH2's inter-node eager threshold should be the larger one")
	}
	if mv2.EagerIntra <= 0 || ompi.EagerIntra <= 0 {
		t.Fatal("profiles must pin explicit eager thresholds")
	}
}
