package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Add(0, "pool", "hits", 3)
	r.Add(0, "pool", "hits", 2)
	r.Add(1, "pool", "hits", 7)
	if got := r.Counter(0, "pool", "hits"); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.Counter(2, "pool", "hits"); got != 0 {
		t.Fatalf("absent counter = %d, want 0", got)
	}
	r.SetGauge(0, "pool", "held", 100)
	r.SetGauge(0, "pool", "held", 42)
	if got := r.Gauge(0, "pool", "held"); got != 42 {
		t.Fatalf("gauge = %d, want 42", got)
	}
	r.SetMaxGauge(0, "pool", "hw", 10)
	r.SetMaxGauge(0, "pool", "hw", 4)
	r.SetMaxGauge(0, "pool", "hw", 25)
	if got := r.Gauge(0, "pool", "hw"); got != 25 {
		t.Fatalf("max gauge = %d, want 25", got)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	r.Add(0, "a", "b", 1)
	r.SetGauge(0, "a", "b", 1)
	r.SetMaxGauge(0, "a", "b", 1)
	r.Observe(0, "a", "b", 1)
	if r.Counter(0, "a", "b") != 0 || r.Gauge(0, "a", "b") != 0 {
		t.Fatal("nil registry reported values")
	}
	if h := r.HistogramSnapshot(0, "a", "b"); h.Count != 0 {
		t.Fatal("nil registry reported a histogram")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("nil WriteJSON: %v", err)
	}
}

// TestBucketBoundsMonotone is the bucketing invariant: upper bounds
// strictly increase and every value lands in the bucket whose bounds
// bracket it.
func TestBucketBoundsMonotone(t *testing.T) {
	for i := 1; i < NumBuckets; i++ {
		if BucketUpperBound(i) <= BucketUpperBound(i-1) {
			t.Fatalf("bounds not monotone at %d: %d <= %d",
				i, BucketUpperBound(i), BucketUpperBound(i-1))
		}
	}
	cases := []int64{math.MinInt64, -1, 0, 1, 2, 3, 4, 7, 8, 255, 256, 1 << 40, math.MaxInt64}
	for _, v := range cases {
		i := BucketIndex(v)
		if i < 0 || i >= NumBuckets {
			t.Fatalf("BucketIndex(%d) = %d out of range", v, i)
		}
		if v > BucketUpperBound(i) {
			t.Fatalf("value %d above its bucket %d bound %d", v, i, BucketUpperBound(i))
		}
		if i > 0 && v <= BucketUpperBound(i-1) {
			t.Fatalf("value %d not above bucket %d's lower boundary %d", v, i, BucketUpperBound(i-1))
		}
	}
}

// TestHistogramConservation is the count/sum conservation property:
// for arbitrary sample streams, Count equals the number of Observe
// calls, Sum the arithmetic total, and the bucket tallies partition
// the count exactly.
func TestHistogramConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		var wantCount, wantSum int64
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			// Spread samples across the full bucket range, including
			// zero and the occasional negative.
			v := int64(rng.Uint64() >> uint(1+rng.Intn(62)))
			if rng.Intn(10) == 0 {
				v = -v
			}
			h.Observe(v)
			wantCount++
			wantSum += v
		}
		if h.Count != wantCount {
			t.Fatalf("trial %d: Count = %d, want %d", trial, h.Count, wantCount)
		}
		if h.Sum != wantSum {
			t.Fatalf("trial %d: Sum = %d, want %d", trial, h.Sum, wantSum)
		}
		var bucketTotal int64
		for _, b := range h.Buckets {
			if b < 0 {
				t.Fatalf("trial %d: negative bucket count", trial)
			}
			bucketTotal += b
		}
		if bucketTotal != h.Count {
			t.Fatalf("trial %d: buckets sum to %d, Count = %d", trial, bucketTotal, h.Count)
		}
	}
}

func randomHist(rng *rand.Rand) *Histogram {
	h := &Histogram{}
	for i, n := 0, rng.Intn(100); i < n; i++ {
		h.Observe(int64(rng.Uint64() >> uint(1+rng.Intn(62))))
	}
	return h
}

// TestHistogramMergeAssociative: (a+b)+c == a+(b+c) and a+b == b+a,
// with counts and sums conserved.
func TestHistogramMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		a, b, c := randomHist(rng), randomHist(rng), randomHist(rng)

		left := *a // (a+b)+c
		left.Merge(b)
		left.Merge(c)

		bc := *b // a+(b+c)
		bc.Merge(c)
		right := *a
		right.Merge(&bc)

		if left != right {
			t.Fatalf("trial %d: merge not associative:\n%+v\n%+v", trial, left, right)
		}

		ab := *a
		ab.Merge(b)
		ba := *b
		ba.Merge(a)
		if ab != ba {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		if ab.Count != a.Count+b.Count || ab.Sum != a.Sum+b.Sum {
			t.Fatalf("trial %d: merge lost samples", trial)
		}
	}
	var h Histogram
	h.Observe(7)
	want := h
	h.Merge(nil)
	if h != want {
		t.Fatal("nil merge changed the histogram")
	}
}

func TestExportDeterministicAndSorted(t *testing.T) {
	build := func(order []int) *Registry {
		r := NewRegistry()
		for _, rank := range order {
			r.Add(rank, "p2p", "msgs", int64(rank+1))
			r.Observe(rank, "p2p", "lat_ps", int64(100*(rank+1)))
			r.Observe(rank, "p2p", "lat_ps", 0)
			r.SetGauge(rank, "pool", "held", int64(rank))
		}
		return r
	}
	var b1, b2 bytes.Buffer
	if err := build([]int{2, 0, 1}).WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build([]int{1, 2, 0}).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("export depends on insertion order:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	var snap Snapshot
	if err := json.Unmarshal(b1.Bytes(), &snap); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(snap.Counters) != 3 || len(snap.Histograms) != 3 || len(snap.Gauges) != 3 {
		t.Fatalf("snapshot shape wrong: %+v", snap)
	}
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Rank >= snap.Counters[i].Rank {
			t.Fatal("counters not sorted by rank within a label")
		}
	}
	// Sparse buckets: the zero sample and the nonzero sample occupy
	// distinct buckets, in ascending bound order.
	h := snap.Histograms[0]
	if h.Count != 2 || len(h.Buckets) != 2 || h.Buckets[0].Le >= h.Buckets[1].Le {
		t.Fatalf("histogram snapshot wrong: %+v", h)
	}
}

func TestHistogramSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Observe(0, "k", "l", 5)
	snap := r.HistogramSnapshot(0, "k", "l")
	snap.Observe(6)
	if got := r.HistogramSnapshot(0, "k", "l"); got.Count != 1 {
		t.Fatalf("snapshot aliases registry state: %+v", got)
	}
}
