// Package metrics is the deterministic metrics substrate of the
// observability layer: a registry of counters, gauges, and
// fixed-log2-bucket histograms keyed by (rank, kind, label). Every
// recorded value is either a pure count or a virtual-time quantity, so
// a registry's exported contents are a function of the simulation seed
// alone — the same run produces byte-identical exports, which is what
// lets the golden-file suites lock observability itself down.
//
// The registry is safe for concurrent use (rank goroutines record in
// parallel); all aggregates are order-independent, so host scheduling
// cannot leak into the exported values. A nil *Registry is a valid
// no-op sink, mirroring the trace.Recorder convention, so
// instrumentation sites need no guards.
package metrics

import (
	"math/bits"
	"sync"
)

// Key identifies one metric: the owning rank, the subsystem kind
// ("p2p", "pool", "jvm", ...), and the metric label within it.
type Key struct {
	Rank  int
	Kind  string
	Label string
}

// less orders keys for deterministic export: kind, then label, then
// rank — grouping a metric's per-rank series together.
func (k Key) less(o Key) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Label != o.Label {
		return k.Label < o.Label
	}
	return k.Rank < o.Rank
}

// NumBuckets is the number of log2 histogram buckets. Bucket 0 holds
// values <= 0 (and 0 itself); bucket i (1 <= i <= 62) holds values in
// [2^(i-1), 2^i - 1]; the top bucket holds everything up to MaxInt64.
// BucketIndex of a non-negative int64 never exceeds 63, so the full
// range is covered with no overflow cases.
const NumBuckets = 64

// Histogram is a fixed-log2-bucket distribution of int64 samples
// (virtual durations in picoseconds, or byte sizes). The zero value is
// ready to use. A Histogram is not internally locked; the Registry
// serialises access to the histograms it owns.
type Histogram struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// BucketIndex returns the bucket a value falls in.
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketUpperBound returns the inclusive upper bound of bucket i
// (the lower bound of bucket i is BucketUpperBound(i-1)+1; bucket 0 is
// everything <= 0).
func BucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64: top buckets saturate
	}
	return int64(1)<<uint(i) - 1
}

// Observe adds one sample.
func (h *Histogram) Observe(v int64) {
	h.Count++
	h.Sum += v
	h.Buckets[BucketIndex(v)]++
}

// Merge folds other into h. Merging is commutative and associative:
// counts, sums, and per-bucket tallies simply add.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Registry accumulates metrics from all ranks.
type Registry struct {
	mu       sync.Mutex
	counters map[Key]int64
	gauges   map[Key]int64
	hists    map[Key]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[Key]int64{},
		gauges:   map[Key]int64{},
		hists:    map[Key]*Histogram{},
	}
}

// Add increments the counter (rank, kind, label) by v. Nil receivers
// are silently ignored.
func (r *Registry) Add(rank int, kind, label string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[Key{rank, kind, label}] += v
	r.mu.Unlock()
}

// SetGauge records the current value of a gauge, replacing any prior
// value.
func (r *Registry) SetGauge(rank int, kind, label string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[Key{rank, kind, label}] = v
	r.mu.Unlock()
}

// SetMaxGauge records v only if it exceeds the gauge's current value —
// a high-water mark. Order-independent, so safe to call from racing
// rank goroutines without breaking determinism.
func (r *Registry) SetMaxGauge(rank int, kind, label string, v int64) {
	if r == nil {
		return
	}
	k := Key{rank, kind, label}
	r.mu.Lock()
	if cur, ok := r.gauges[k]; !ok || v > cur {
		r.gauges[k] = v
	}
	r.mu.Unlock()
}

// Observe adds a sample to the histogram (rank, kind, label),
// creating it on first use.
func (r *Registry) Observe(rank int, kind, label string, v int64) {
	if r == nil {
		return
	}
	k := Key{rank, kind, label}
	r.mu.Lock()
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	h.Observe(v)
	r.mu.Unlock()
}

// Counter returns the current value of a counter (0 if absent).
func (r *Registry) Counter(rank int, kind, label string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[Key{rank, kind, label}]
}

// Gauge returns the current value of a gauge (0 if absent).
func (r *Registry) Gauge(rank int, kind, label string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[Key{rank, kind, label}]
}

// HistogramSnapshot returns a copy of the histogram (zero value if
// absent).
func (r *Registry) HistogramSnapshot(rank int, kind, label string) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[Key{rank, kind, label}]; h != nil {
		return *h
	}
	return Histogram{}
}
