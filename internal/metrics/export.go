package metrics

import (
	"encoding/json"
	"io"
	"sort"
)

// The export schema. Every slice is sorted by (kind, label, rank) and
// histogram buckets are emitted sparsely in ascending bucket order, so
// marshalling a registry is a pure function of its contents —
// byte-identical across runs, platforms, and the race detector.

// ScalarSnap is one exported counter or gauge.
type ScalarSnap struct {
	Rank  int    `json:"rank"`
	Kind  string `json:"kind"`
	Label string `json:"label"`
	Value int64  `json:"value"`
}

// BucketSnap is one non-empty histogram bucket: values <= Le (and
// greater than the previous bucket's Le) were observed Count times.
type BucketSnap struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnap is one exported histogram.
type HistSnap struct {
	Rank    int          `json:"rank"`
	Kind    string       `json:"kind"`
	Label   string       `json:"label"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []BucketSnap `json:"buckets"`
}

// Snapshot is the full exported state of a registry.
type Snapshot struct {
	Counters   []ScalarSnap `json:"counters"`
	Gauges     []ScalarSnap `json:"gauges"`
	Histograms []HistSnap   `json:"histograms"`
}

// Snapshot returns the registry's contents in deterministic order.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   []ScalarSnap{},
		Gauges:     []ScalarSnap{},
		Histograms: []HistSnap{},
	}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.Counters = scalarSnaps(r.counters)
	snap.Gauges = scalarSnaps(r.gauges)
	hkeys := make([]Key, 0, len(r.hists))
	for k := range r.hists {
		hkeys = append(hkeys, k)
	}
	sort.Slice(hkeys, func(i, j int) bool { return hkeys[i].less(hkeys[j]) })
	for _, k := range hkeys {
		h := r.hists[k]
		hs := HistSnap{
			Rank: k.Rank, Kind: k.Kind, Label: k.Label,
			Count: h.Count, Sum: h.Sum, Buckets: []BucketSnap{},
		}
		for i, n := range h.Buckets {
			if n != 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{Le: BucketUpperBound(i), Count: n})
			}
		}
		snap.Histograms = append(snap.Histograms, hs)
	}
	return snap
}

func scalarSnaps(m map[Key]int64) []ScalarSnap {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	out := make([]ScalarSnap, 0, len(keys))
	for _, k := range keys {
		out = append(out, ScalarSnap{Rank: k.Rank, Kind: k.Kind, Label: k.Label, Value: m[k]})
	}
	return out
}

// WriteJSON writes the registry as indented JSON with a trailing
// newline. The output is byte-deterministic for a given registry
// state.
func (r *Registry) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
