package core

import (
	"testing"
	"testing/quick"
)

func mustGroup(t *testing.T, ranks []int) *Group {
	t.Helper()
	g, err := NewGroup(ranks)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGroupBasics(t *testing.T) {
	g := mustGroup(t, []int{3, 1, 4})
	if g.Size() != 3 {
		t.Fatalf("Size = %d", g.Size())
	}
	if g.Rank(4) != 2 || g.Rank(9) != -1 {
		t.Fatal("Rank lookup wrong")
	}
	if _, err := NewGroup([]int{1, 1}); err == nil {
		t.Fatal("duplicate ranks accepted")
	}
	if _, err := NewGroup([]int{-1}); err == nil {
		t.Fatal("negative rank accepted")
	}
}

func TestGroupInclExcl(t *testing.T) {
	g := mustGroup(t, []int{10, 20, 30, 40})
	inc, err := g.Incl([]int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Equal(mustGroup(t, []int{40, 10})) {
		t.Fatalf("Incl = %v", inc.Ranks())
	}
	exc, err := g.Excl([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !exc.Equal(mustGroup(t, []int{10, 40})) {
		t.Fatalf("Excl = %v", exc.Ranks())
	}
	if _, err := g.Incl([]int{7}); err == nil {
		t.Fatal("Incl out of range accepted")
	}
	if _, err := g.Excl([]int{-1}); err == nil {
		t.Fatal("Excl out of range accepted")
	}
}

func TestGroupSetOps(t *testing.T) {
	a := mustGroup(t, []int{1, 2, 3})
	b := mustGroup(t, []int{3, 4})
	if got := a.Union(b).Ranks(); len(got) != 4 || got[3] != 4 {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersection(b).Ranks(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Intersection = %v", got)
	}
	if got := a.Difference(b).Ranks(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Difference = %v", got)
	}
}

func TestGroupTranslate(t *testing.T) {
	a := mustGroup(t, []int{5, 6, 7})
	b := mustGroup(t, []int{7, 5})
	out, err := a.Translate([]int{0, 1, 2}, b)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != -1 || out[2] != 0 {
		t.Fatalf("Translate = %v", out)
	}
	if _, err := a.Translate([]int{5}, b); err == nil {
		t.Fatal("Translate out of range accepted")
	}
}

func TestGroupEqualSimilar(t *testing.T) {
	a := mustGroup(t, []int{1, 2})
	b := mustGroup(t, []int{2, 1})
	if a.Equal(b) {
		t.Fatal("order-insensitive Equal")
	}
	if !a.Similar(b) {
		t.Fatal("Similar should ignore order")
	}
	if a.Similar(mustGroup(t, []int{1, 3})) {
		t.Fatal("Similar with different members")
	}
}

// Property: set-operation identities over arbitrary groups.
func TestGroupAlgebraProperty(t *testing.T) {
	mk := func(raw []uint8) *Group {
		seen := map[int]bool{}
		var ranks []int
		for _, r := range raw {
			v := int(r % 16)
			if !seen[v] {
				seen[v] = true
				ranks = append(ranks, v)
			}
		}
		g, _ := NewGroup(ranks)
		return g
	}
	f := func(ra, rb []uint8) bool {
		a, b := mk(ra), mk(rb)
		u := a.Union(b)
		i := a.Intersection(b)
		d := a.Difference(b)
		// |A∪B| = |A| + |B| - |A∩B|
		if u.Size() != a.Size()+b.Size()-i.Size() {
			return false
		}
		// A\B and A∩B partition A.
		if d.Size()+i.Size() != a.Size() {
			return false
		}
		// Difference ∩ B = ∅.
		if d.Intersection(b).Size() != 0 {
			return false
		}
		// A ∩ B ⊆ A and ⊆ B.
		for _, r := range i.Ranks() {
			if a.Rank(r) < 0 || b.Rank(r) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestDatatypeShapes(t *testing.T) {
	if INT.Size() != 4 || DOUBLE.Size() != 8 || BYTE.Size() != 1 || CHAR.Size() != 2 {
		t.Fatal("basic sizes wrong")
	}
	cont, err := Contiguous(INT, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cont.Size() != 20 || cont.Extent() != 5 || !cont.contiguous() {
		t.Fatalf("contiguous shape wrong: size=%d extent=%d", cont.Size(), cont.Extent())
	}
	vec, err := Vector(DOUBLE, 3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Size() != 48 { // 3 blocks x 2 doubles
		t.Fatalf("vector size %d", vec.Size())
	}
	if vec.Extent() != 10 { // 2*4 + 2
		t.Fatalf("vector extent %d", vec.Extent())
	}
	if vec.contiguous() {
		t.Fatal("strided vector reported contiguous")
	}
	if _, err := Vector(INT, 0, 1, 1); err == nil {
		t.Fatal("invalid vector accepted")
	}
	if _, err := Vector(INT, 2, 3, 2); err == nil {
		t.Fatal("stride < blocklen accepted")
	}
	if _, err := Contiguous(cont, 2); err == nil {
		t.Fatal("nested derived accepted")
	}
}
