package core

import (
	"strings"
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/trace"
)

func TestTraceRecordsEndToEnd(t *testing.T) {
	rec := trace.New(0)
	cfg := mv2Config(2, 1)
	cfg.Trace = rec
	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 16)
		if c.Rank() == 0 {
			if err := c.Send(arr, 16, INT, 1, 0); err != nil {
				return err
			}
		} else {
			if _, err := c.Recv(arr, 16, INT, 0, 0); err != nil {
				return err
			}
		}
		if err := c.Bcast(arr, 16, INT, 0); err != nil {
			return err
		}
		win, err := c.WinCreate(m.JVM().MustAllocateDirect(64))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if err := win.Put(arr, 4, INT, 1, 0); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := rec.Summary()
	if sum[trace.KindSend].Count == 0 {
		t.Fatal("no send events recorded")
	}
	if sum[trace.KindRecv].Count == 0 {
		t.Fatal("no recv events recorded")
	}
	if sum[trace.KindColl].Count == 0 {
		t.Fatal("no collective events recorded")
	}
	if sum[trace.KindRMA].Count != 1 {
		t.Fatalf("RMA events = %d, want 1 put", sum[trace.KindRMA].Count)
	}
	// The user send moved 64 bytes at least once.
	if sum[trace.KindSend].Bytes < 64 {
		t.Fatalf("send bytes = %d", sum[trace.KindSend].Bytes)
	}
	// Events carry sane virtual spans.
	for _, ev := range rec.Events() {
		if ev.End < ev.Start {
			t.Fatalf("event ends before it starts: %+v", ev)
		}
	}
	var sb strings.Builder
	if err := rec.Timeline(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bcast") {
		t.Fatal("timeline missing the bcast span")
	}
}

func TestNoTraceNoOverhead(t *testing.T) {
	// Without a recorder the run must behave identically (deterministic
	// virtual time unchanged by hook presence).
	lat := func(rec *trace.Recorder) float64 {
		cfg := mv2Config(2, 1)
		cfg.Trace = rec
		var us float64
		err := Run(cfg, func(m *MPI) error {
			c := m.CommWorld()
			arr := m.JVM().MustArray(jvm.Byte, 512)
			for i := 0; i < 10; i++ {
				if c.Rank() == 0 {
					if err := c.Send(arr, 512, BYTE, 1, 0); err != nil {
						return err
					}
					if _, err := c.Recv(arr, 512, BYTE, 1, 0); err != nil {
						return err
					}
				} else {
					if _, err := c.Recv(arr, 512, BYTE, 0, 0); err != nil {
						return err
					}
					if err := c.Send(arr, 512, BYTE, 0, 0); err != nil {
						return err
					}
				}
			}
			if c.Rank() == 0 {
				us = float64(m.Clock().Now())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return us
	}
	if lat(nil) != lat(trace.New(0)) {
		t.Fatal("tracing changed virtual time")
	}
}
