package core

import (
	"errors"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestRMABindingsPutGet(t *testing.T) {
	err := Run(mv2Config(2, 1), func(m *MPI) error {
		c := m.CommWorld()
		exposed := m.JVM().MustAllocateDirect(256)
		win, err := c.WinCreate(exposed)
		if err != nil {
			return err
		}
		other := 1 - c.Rank()

		// Put an int array into the peer's window.
		vals := m.JVM().MustArray(jvm.Int, 8)
		fillArray(vals, int64(100*(c.Rank()+1)))
		if err := win.Put(vals, 8, INT, other, 4); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		// Window bytes 16..48 now hold the peer's ints (native layout).
		exposed.SetOrder(jvm.LittleEndian)
		for i := 0; i < 8; i++ {
			want := int64(100*(other+1) + i)
			if got := exposed.IntKindAt(jvm.Int, 16+4*i); got != want {
				return fmt.Errorf("rank %d: window[%d] = %d, want %d", c.Rank(), i, got, want)
			}
		}

		// Get the peer's window contents back.
		dst := m.JVM().MustAllocateDirect(32)
		if err := win.Get(dst, 8, INT, other, 4); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		dst.SetOrder(jvm.LittleEndian)
		for i := 0; i < 8; i++ {
			want := int64(100*(c.Rank()+1) + i) // what I put there earlier
			if got := dst.IntKindAt(jvm.Int, 4*i); got != want {
				return fmt.Errorf("rank %d: get[%d] = %d, want %d", c.Rank(), i, got, want)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMABindingsAccumulate(t *testing.T) {
	err := Run(mv2Config(1, 4), func(m *MPI) error {
		c := m.CommWorld()
		exposed := m.JVM().MustAllocateDirect(64)
		win, err := c.WinCreate(exposed)
		if err != nil {
			return err
		}
		one := m.JVM().MustArray(jvm.Long, 1)
		one.SetInt(0, int64(c.Rank()+1))
		if err := win.Accumulate(one, 1, LONG, SUM, 0, 0); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			exposed.SetOrder(jvm.LittleEndian)
			if got := exposed.IntKindAt(jvm.Long, 0); got != 10 {
				return fmt.Errorf("accumulated %d, want 10", got)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAWindowRequiresDirectBuffer(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		heap, err := m.JVM().Allocate(64)
		if err != nil {
			return err
		}
		if _, err := c.WinCreate(heap); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("heap-buffer window: err=%v, want ErrUnsupported", err)
		}
		// All ranks must fail identically, and since WinCreate bailed
		// before any collective call, no cleanup synchronisation is
		// needed.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAGetRequiresDirectOrigin(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		win, err := c.WinCreate(m.JVM().MustAllocateDirect(64))
		if err != nil {
			return err
		}
		arr := m.JVM().MustArray(jvm.Int, 4)
		if err := win.Get(arr, 4, INT, 1-c.Rank(), 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("array get: err=%v, want ErrUnsupported", err)
		}
		if err := win.Fence(); err != nil {
			return err
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}
