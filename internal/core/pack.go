package core

import (
	"fmt"

	"mv2j/internal/jvm"
)

// MPI_Pack / MPI_Unpack: explicit datatype packing into a user-held
// ByteBuffer, the application-level counterpart of what the buffering
// layer does internally for derived types. Packed buffers travel as
// BYTE messages and unpack on any rank.

// PackSize returns the bytes count dt elements occupy when packed
// (MPI_Pack_size).
func PackSize(count int, dt Datatype) int { return count * dt.Size() }

// Pack appends count dt elements of buf (starting at base-element
// offset for arrays) to dest at its position, advancing it.
func (m *MPI) Pack(buf any, offset, count int, dt Datatype, dest *jvm.ByteBuffer) error {
	dt.checkUsable("pack")
	nbytes := PackSize(count, dt)
	if dest.Remaining() < nbytes {
		return fmt.Errorf("%w: pack of %d bytes into %d remaining", ErrCount, nbytes, dest.Remaining())
	}
	switch b := buf.(type) {
	case jvm.Array:
		if b.Kind() != dt.Kind() {
			return fmt.Errorf("%w: %v array with %v datatype", ErrBufferType, b.Kind(), dt)
		}
		if err := checkCount(arrayNeed(offset, count, dt), b.Len(), "pack"); err != nil {
			return err
		}
		if dt.contiguous() {
			dest.PutArray(b, offset, count*dt.baseElems())
			m.proc.CountHostCopy(nbytes)
			return nil
		}
		for e := 0; e < count; e++ {
			elemBase := offset + e*dt.Extent()
			if err := dt.blocks(func(displ, length int) error {
				dest.PutArray(b, elemBase+displ, length)
				return nil
			}); err != nil {
				return err
			}
		}
		m.proc.CountHostCopy(nbytes)
		return nil
	case *jvm.ByteBuffer:
		if dt.IsDerived() {
			return fmt.Errorf("%w: derived datatypes pack from arrays", ErrUnsupported)
		}
		start := b.Position() + offset*dt.Size()
		if start+nbytes > b.Limit() {
			return fmt.Errorf("%w: pack source exceeds buffer limit", ErrCount)
		}
		tmp := make([]byte, nbytes)
		copy(tmp, b.RawBytes()[start:start+nbytes])
		dest.PutBytes(tmp)
		m.proc.CountHostCopy(nbytes)
		return nil
	default:
		return fmt.Errorf("%w: got %T", ErrBufferType, buf)
	}
}

// Unpack consumes count dt elements from src's position into buf.
func (m *MPI) Unpack(src *jvm.ByteBuffer, buf any, offset, count int, dt Datatype) error {
	dt.checkUsable("unpack")
	nbytes := PackSize(count, dt)
	if src.Remaining() < nbytes {
		return fmt.Errorf("%w: unpack of %d bytes from %d remaining", ErrCount, nbytes, src.Remaining())
	}
	switch b := buf.(type) {
	case jvm.Array:
		if b.Kind() != dt.Kind() {
			return fmt.Errorf("%w: %v array with %v datatype", ErrBufferType, b.Kind(), dt)
		}
		if err := checkCount(arrayNeed(offset, count, dt), b.Len(), "unpack"); err != nil {
			return err
		}
		if dt.contiguous() {
			src.GetArray(b, offset, count*dt.baseElems())
			m.proc.CountHostCopy(nbytes)
			return nil
		}
		for e := 0; e < count; e++ {
			elemBase := offset + e*dt.Extent()
			if err := dt.blocks(func(displ, length int) error {
				src.GetArray(b, elemBase+displ, length)
				return nil
			}); err != nil {
				return err
			}
		}
		m.proc.CountHostCopy(nbytes)
		return nil
	case *jvm.ByteBuffer:
		if dt.IsDerived() {
			return fmt.Errorf("%w: derived datatypes unpack into arrays", ErrUnsupported)
		}
		start := b.Position() + offset*dt.Size()
		if start+nbytes > b.Limit() {
			return fmt.Errorf("%w: unpack destination exceeds buffer limit", ErrCount)
		}
		tmp := make([]byte, nbytes)
		src.GetBytes(tmp)
		copy(b.RawBytes()[start:start+nbytes], tmp)
		m.machine.ChargeBulk(nbytes)
		m.proc.CountHostCopy(nbytes)
		return nil
	default:
		return fmt.Errorf("%w: got %T", ErrBufferType, buf)
	}
}
