package core

import (
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestPackUnpackContiguous(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		src := m.JVM().MustArray(jvm.Int, 10)
		fillArray(src, 3)
		pkt := m.JVM().MustAllocateDirect(PackSize(10, INT))
		if err := m.Pack(src, 0, 10, INT, pkt); err != nil {
			return err
		}
		pkt.Flip()
		dst := m.JVM().MustArray(jvm.Int, 10)
		if err := m.Unpack(pkt, dst, 0, 10, INT); err != nil {
			return err
		}
		return checkArray(dst, 3)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackVectorUnpackContiguous(t *testing.T) {
	// Pack a strided column, ship it as BYTEs, unpack densely — the
	// Pack/Unpack counterpart of the vector-datatype send.
	vec, err := Vector(DOUBLE, 4, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if c.Rank() == 0 {
			mat := m.JVM().MustArray(jvm.Double, 16)
			for i := 0; i < 16; i++ {
				mat.SetFloat(i, float64(i))
			}
			pkt := m.JVM().MustAllocateDirect(PackSize(1, vec))
			if err := m.Pack(mat, 2, 1, vec, pkt); err != nil { // column 2
				return err
			}
			pkt.Flip()
			return c.Send(pkt, PackSize(1, vec), BYTE, 1, 0)
		}
		pkt := m.JVM().MustAllocateDirect(PackSize(1, vec))
		if _, err := c.Recv(pkt, PackSize(1, vec), BYTE, 0, 0); err != nil {
			return err
		}
		col := m.JVM().MustArray(jvm.Double, 4)
		if err := m.Unpack(pkt, col, 0, 4, DOUBLE); err != nil {
			return err
		}
		for r := 0; r < 4; r++ {
			if col.Float(r) != float64(r*4+2) {
				return fmt.Errorf("col[%d] = %v", r, col.Float(r))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackMultipleTypesSequentially(t *testing.T) {
	// Heterogeneous payload: ints then doubles in one packed message.
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		ints := m.JVM().MustArray(jvm.Int, 3)
		dbls := m.JVM().MustArray(jvm.Double, 2)
		fillArray(ints, 9)
		dbls.SetFloat(0, 1.5)
		dbls.SetFloat(1, -2.5)
		pkt := m.JVM().MustAllocateDirect(PackSize(3, INT) + PackSize(2, DOUBLE))
		if err := m.Pack(ints, 0, 3, INT, pkt); err != nil {
			return err
		}
		if err := m.Pack(dbls, 0, 2, DOUBLE, pkt); err != nil {
			return err
		}
		pkt.Flip()
		outI := m.JVM().MustArray(jvm.Int, 3)
		outD := m.JVM().MustArray(jvm.Double, 2)
		if err := m.Unpack(pkt, outI, 0, 3, INT); err != nil {
			return err
		}
		if err := m.Unpack(pkt, outD, 0, 2, DOUBLE); err != nil {
			return err
		}
		if err := checkArray(outI, 9); err != nil {
			return err
		}
		if outD.Float(0) != 1.5 || outD.Float(1) != -2.5 {
			return fmt.Errorf("doubles corrupted: %v %v", outD.Float(0), outD.Float(1))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPackValidation(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		arr := m.JVM().MustArray(jvm.Int, 4)
		small := m.JVM().MustAllocateDirect(8)
		if err := m.Pack(arr, 0, 4, INT, small); err == nil {
			return fmt.Errorf("overflow pack accepted")
		}
		if err := m.Pack(arr, 0, 4, DOUBLE, m.JVM().MustAllocateDirect(64)); err == nil {
			return fmt.Errorf("kind mismatch accepted")
		}
		pkt := m.JVM().MustAllocateDirect(8)
		pkt.Flip() // empty
		if err := m.Unpack(pkt, arr, 0, 4, INT); err == nil {
			return fmt.Errorf("underflow unpack accepted")
		}
		if err := m.Pack("junk", 0, 1, BYTE, small); err == nil {
			return fmt.Errorf("bad buffer type accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
