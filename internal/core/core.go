// Package core implements MVAPICH2-J: Java bindings for the (simulated)
// native MVAPICH2 library, following the Open MPI Java bindings API —
// the paper's primary contribution. The design goal, as in the paper,
// is to keep the "Java" layer as minimal as possible: every MPI
// primitive is one JNI downcall into the native runtime, plus the
// buffer-management glue that the two user-visible buffer kinds need:
//
//   - direct ByteBuffers: a stable off-heap address is obtained through
//     GetDirectBufferAddress and handed to the native library — zero
//     copies (paper Fig. 4);
//   - Java arrays: the payload is staged through the mpjbuf buffering
//     layer's pool of direct ByteBuffers (paper Fig. 3) — one bulk copy
//     on each side, but no per-message direct-buffer allocation and no
//     GC hazard.
//
// A bindings Flavor selects MVAPICH2-J or the Open MPI-J behaviour the
// paper compares against, including Open MPI-J's API gaps (no Java
// arrays with non-blocking point-to-point) and its
// Get<Type>ArrayElements copy-in/copy-out array path.
package core

import (
	"errors"
	"fmt"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/jni"
	"mv2j/internal/jvm"
	"mv2j/internal/metrics"
	"mv2j/internal/mpjbuf"
	"mv2j/internal/nativempi"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Errors specific to the bindings layer.
var (
	// ErrUnsupported marks operations a bindings flavor does not offer
	// (e.g. Open MPI-J's non-blocking point-to-point with Java arrays,
	// which is why the paper's bandwidth figures have no
	// "Open MPI-J arrays" series).
	ErrUnsupported = errors.New("core: operation not supported by these bindings")
	// ErrBufferType reports a message buffer that is neither a
	// jvm.Array nor a *jvm.ByteBuffer.
	ErrBufferType = errors.New("core: buffer must be a jvm.Array or *jvm.ByteBuffer")
	// ErrCount reports invalid counts/extents.
	ErrCount = errors.New("core: invalid count")
)

// Wildcards, re-exported from the native layer.
const (
	AnySource = nativempi.AnySource
	AnyTag    = nativempi.AnyTag
)

// Flavor selects the bindings implementation being simulated.
type Flavor int

const (
	// MVAPICH2J is the paper's library: buffering-layer array staging,
	// arrays allowed everywhere, offset extension available.
	MVAPICH2J Flavor = iota
	// OpenMPIJ reproduces the Open MPI Java bindings: arrays use JNI
	// Get/Release<Type>ArrayElements (full copy in and out), and
	// non-blocking point-to-point rejects arrays.
	OpenMPIJ
)

func (f Flavor) String() string {
	if f == OpenMPIJ {
		return "OpenMPI-J"
	}
	return "MVAPICH2-J"
}

// bindingOverhead is the per-call software cost of the bindings layer
// itself (argument checking, handle resolution) on top of the JNI
// crossing. MVAPICH2-J's thinner layer is what gives it the smaller
// Java overhead in the paper's Fig. 11.
func (f Flavor) bindingOverhead() vtime.Duration {
	if f == OpenMPIJ {
		return vtime.Nanos(680)
	}
	return vtime.Nanos(520)
}

// Config describes one simulated job.
type Config struct {
	// Nodes and PPN shape the cluster (default 1x2).
	Nodes, PPN int
	// Mapping is the rank placement policy (default block).
	Mapping cluster.Mapping
	// Lib is the native library profile (default profile.MVAPICH2()
	// must be passed explicitly by callers; zero value = generic).
	Lib nativempi.Profile
	// ThreadLevel, when non-zero, overrides the profile's built thread
	// support level (MPI_THREAD_SINGLE..MULTIPLE) — the job-launch
	// knob, as opposed to Lib.ThreadLevel which models how the native
	// library was compiled. InitThread can only downgrade from here.
	ThreadLevel ThreadLevel
	// Flavor selects the bindings personality (default MVAPICH2J).
	Flavor Flavor
	// HeapSize/ArenaSize configure each rank's simulated JVM.
	HeapSize, ArenaSize int
	// Costs overrides the JVM access-cost model.
	Costs *jvm.AccessCosts
	// JNICosts overrides the JNI boundary cost model.
	JNICosts *jni.Costs
	// Intra/Inter override the fabric channels when non-nil.
	Intra, Inter *fabric.Params
	// Faults attaches a fault-injection plan to the fabric; the native
	// runtime then engages its reliability sublayer (checksums, acks,
	// retransmission). Nil = lossless fabric.
	Faults *faults.Plan
	// FT enables the ULFM-style failure policy: a rank crash (or an
	// exhausted retransmit budget) surfaces as an ErrProcFailed-class
	// error with Revoke/Shrink/AgreeFT recovery available, instead of
	// aborting the job.
	FT bool
	// UnpooledBuffers disables the mpjbuf pool (ablation: a fresh
	// direct buffer is allocated and destroyed per array message).
	UnpooledBuffers bool
	// Trace, when non-nil, records every native communication event
	// with virtual timestamps (see internal/trace).
	Trace *trace.Recorder
	// Metrics, when non-nil, aggregates counters, gauges and latency/
	// size histograms across every layer of the run (see
	// internal/metrics). Scraped once after the job completes, so the
	// registry contents are deterministic per seed.
	Metrics *metrics.Registry
	// HostStats, when non-nil, receives the world's aggregated
	// host-side reuse/queue counters after the run (mailbox batching,
	// scratch-arena traffic). Host observability only — these numbers
	// depend on host scheduling and never enter Metrics or Trace.
	HostStats *nativempi.HostStats
	// EngineWorkers sets the phase-stepped scheduler's worker-pool
	// width: 0 = GOMAXPROCS (the scale-out default), 1 = serial
	// reference execution. Every width produces byte-identical virtual
	// artifacts; the knob trades host parallelism only.
	EngineWorkers int
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1
	}
	if c.PPN == 0 {
		c.PPN = 2
	}
	return c
}

// MPI is one rank's bindings environment: the object the SPMD main
// receives, playing the role Java's static MPI class plays in the
// Open MPI bindings.
type MPI struct {
	proc    *nativempi.Proc
	machine *jvm.Machine
	env     *jni.Env
	pool    *mpjbuf.Pool
	world   *Comm
	flavor  Flavor

	// vecPath enables the non-contiguous zero-copy datapath: committed
	// derived-type array messages are described to the native runtime as
	// an iovec over a pinned (JNI-critical) view of the array instead of
	// being packed through the buffering layer. MVAPICH2-J only, and off
	// whenever the reliability sublayer may frame payloads (faults/FT) —
	// the framed pack path is the fault-tolerance fallback.
	vecPath bool

	// collPool stages collective array payloads. The prototype's
	// collective path (§IV-D) creates its staging direct buffer per
	// call instead of borrowing from the point-to-point pool — the
	// cost structure behind the paper's collective array factors
	// (2.2x/1.62x) being much smaller than its buffer factors
	// (6.2x/2.76x).
	collPool *mpjbuf.Pool
	// collStaging routes array staging to collPool while a collective
	// call is in flight. Rank-confined, like everything in MPI.
	collStaging bool
}

// Run launches the SPMD job: one goroutine per rank, each with its own
// simulated JVM, JNI environment, and buffer pool (MPI.Init +
// mpirun in one call). It returns when every rank's main returns.
func Run(cfg Config, main func(mpi *MPI) error) error {
	cfg = cfg.withDefaults()
	topo := cluster.NewMapped(cfg.Nodes, cfg.PPN, cfg.Mapping)
	intra, inter := fabric.FronteraShm(), fabric.FronteraIB()
	if cfg.Intra != nil {
		intra = *cfg.Intra
	}
	if cfg.Inter != nil {
		inter = *cfg.Inter
	}
	fab := fabric.New(topo, intra, inter)
	if cfg.Faults != nil {
		fab.WithFaults(cfg.Faults)
	}
	if cfg.ThreadLevel != 0 {
		cfg.Lib.ThreadLevel = cfg.ThreadLevel
	}
	world := nativempi.NewWorld(topo, fab, cfg.Lib)
	world.SetEngineWorkers(cfg.EngineWorkers)
	if cfg.FT {
		world.EnableFT()
	}
	world.SetRecorder(cfg.Trace)
	world.SetMetrics(cfg.Metrics)
	// Each rank parks its MPI object here (indexed by rank, so writes
	// never contend); the post-run metrics scrape walks the slice after
	// world.Run has returned and all trailing ack traffic has drained,
	// which keeps the aggregates deterministic.
	mpis := make([]*MPI, topo.Size())
	err := world.Run(func(p *nativempi.Proc) error {
		machine := jvm.NewMachine(p.Clock(), jvm.Options{
			HeapSize:  cfg.HeapSize,
			ArenaSize: cfg.ArenaSize,
			Costs:     cfg.Costs,
		})
		machine.SetGCObserver(gcObserver(world, p.Rank()))
		var env *jni.Env
		if cfg.JNICosts != nil {
			env = jni.NewWithCosts(machine, *cfg.JNICosts)
		} else {
			env = jni.New(machine)
		}
		var pool *mpjbuf.Pool
		if cfg.UnpooledBuffers {
			pool = mpjbuf.NewUnpooled(machine)
		} else {
			pool = mpjbuf.NewPool(machine)
		}
		mpi := &MPI{
			proc:     p,
			machine:  machine,
			env:      env,
			pool:     pool,
			collPool: mpjbuf.NewUnpooled(machine),
			flavor:   cfg.Flavor,
			vecPath:  cfg.Flavor == MVAPICH2J && cfg.Faults == nil && !cfg.FT,
		}
		mpi.world = &Comm{mpi: mpi, native: p.CommWorld()}
		mpis[p.Rank()] = mpi
		return main(mpi)
	})
	scrapeMetrics(cfg.Metrics, mpis)
	if cfg.HostStats != nil {
		*cfg.HostStats = world.HostStats()
	}
	return err
}

// CommWorld returns this rank's MPI.COMM_WORLD.
func (m *MPI) CommWorld() *Comm { return m.world }

// JVM returns the rank's simulated JVM, used to allocate the Java
// arrays and ByteBuffers that message calls accept.
func (m *MPI) JVM() *jvm.Machine { return m.machine }

// JNI returns the rank's JNI environment (exposed for the ablation
// benchmarks that compare boundary strategies).
func (m *MPI) JNI() *jni.Env { return m.env }

// Pool returns the rank's mpjbuf buffer pool.
func (m *MPI) Pool() *mpjbuf.Pool { return m.pool }

// Flavor reports which bindings personality is running.
func (m *MPI) Flavor() Flavor { return m.flavor }

// Clock returns the rank's virtual clock (benchmark timing).
func (m *MPI) Clock() *vtime.Clock { return m.proc.Clock() }

// Proc exposes the native process, used by the "no Java layer"
// baseline in the Fig. 11 overhead experiment.
func (m *MPI) Proc() *nativempi.Proc { return m.proc }

// Abort terminates the whole job (MPI_Abort): peers blocked in MPI
// calls are woken and unwound, and Run reports the reason.
func (m *MPI) Abort(reason string) {
	m.proc.World().Abort(m.proc.Rank(), reason)
}

// Wtime returns the rank's virtual time in seconds — MPI_Wtime for
// the simulated cluster (deterministic, unlike the real thing).
func (m *MPI) Wtime() float64 {
	return vtime.Duration(m.proc.Clock().Now()).Seconds()
}

// enterNative charges what one bindings call costs before reaching
// native code: the bindings logic plus one JNI crossing.
func (m *MPI) enterNative() {
	m.machine.Charge(m.flavor.bindingOverhead())
	m.env.CallNative()
}

// beginColl marks a collective call in flight: array staging uses the
// per-call collective pool until the returned func runs.
func (m *MPI) beginColl() func() {
	m.enterNative()
	m.collStaging = true
	return func() { m.collStaging = false }
}

// stagePool picks the staging pool for the current call.
func (m *MPI) stagePool() *mpjbuf.Pool {
	if m.collStaging {
		return m.collPool
	}
	return m.pool
}

// checkCount validates an element count against a buffer capacity.
func checkCount(count, capacity int, what string) error {
	if count < 0 {
		return fmt.Errorf("%w: negative %s count %d", ErrCount, what, count)
	}
	if count > capacity {
		return fmt.Errorf("%w: %s count %d exceeds buffer capacity %d", ErrCount, what, count, capacity)
	}
	return nil
}
