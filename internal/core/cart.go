package core

import "fmt"

// ProcNull is MPI_PROC_NULL: point-to-point operations addressed to it
// complete immediately without communicating — the idiom that keeps
// halo-exchange loops free of edge-case branches.
const ProcNull = -2

// CartComm is a communicator with Cartesian topology information
// (MPI_Cart_create and friends).
type CartComm struct {
	*Comm
	dims    []int
	periods []bool
	coords  []int
}

// DimsCreate factors nnodes into ndims near-equal dimensions
// (MPI_Dims_create with all dimensions free).
func DimsCreate(nnodes, ndims int) ([]int, error) {
	if nnodes <= 0 || ndims <= 0 {
		return nil, fmt.Errorf("%w: DimsCreate(%d, %d)", ErrCount, nnodes, ndims)
	}
	dims := make([]int, ndims)
	for i := range dims {
		dims[i] = 1
	}
	// Collect the prime factorisation, then greedily assign factors,
	// largest first, to the currently smallest dimension — yielding
	// near-cubic grids.
	var factors []int
	n := nnodes
	for f := 2; f*f <= n; f++ {
		for n%f == 0 {
			factors = append(factors, f)
			n /= f
		}
	}
	if n > 1 {
		factors = append(factors, n)
	}
	for i := len(factors) - 1; i >= 0; i-- {
		dims[smallestIdx(dims)] *= factors[i]
	}
	// Sort descending for the conventional MPI output.
	for i := 0; i < len(dims); i++ {
		for j := i + 1; j < len(dims); j++ {
			if dims[j] > dims[i] {
				dims[i], dims[j] = dims[j], dims[i]
			}
		}
	}
	return dims, nil
}

func smallestIdx(dims []int) int {
	idx := 0
	for i, d := range dims {
		if d < dims[idx] {
			idx = i
		}
	}
	return idx
}

// CreateCart builds a Cartesian communicator over the first
// prod(dims) ranks; others receive nil (MPI_COMM_NULL). Collective.
func (c *Comm) CreateCart(dims []int, periods []bool) (*CartComm, error) {
	if len(dims) == 0 || len(periods) != len(dims) {
		return nil, fmt.Errorf("%w: cart needs matching dims/periods", ErrCount)
	}
	total := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("%w: non-positive cart dimension %d", ErrCount, d)
		}
		total *= d
	}
	if total > c.Size() {
		return nil, fmt.Errorf("%w: cart of %d ranks on a %d-rank communicator", ErrCount, total, c.Size())
	}
	color := 0
	if c.Rank() >= total {
		color = nativeUndefined
	}
	sub, err := c.Split(color, c.Rank())
	if err != nil {
		return nil, err
	}
	if sub == nil {
		return nil, nil
	}
	cc := &CartComm{
		Comm:    sub,
		dims:    append([]int(nil), dims...),
		periods: append([]bool(nil), periods...),
	}
	cc.coords = cc.coordsOf(sub.Rank())
	return cc, nil
}

// Dims returns the grid shape.
func (cc *CartComm) Dims() []int { return append([]int(nil), cc.dims...) }

// Coords returns the caller's grid coordinates (MPI_Cart_coords of the
// own rank).
func (cc *CartComm) Coords() []int { return append([]int(nil), cc.coords...) }

// coordsOf converts a rank to row-major coordinates.
func (cc *CartComm) coordsOf(rank int) []int {
	coords := make([]int, len(cc.dims))
	for i := len(cc.dims) - 1; i >= 0; i-- {
		coords[i] = rank % cc.dims[i]
		rank /= cc.dims[i]
	}
	return coords
}

// RankOf converts coordinates to a rank (MPI_Cart_rank). Periodic
// dimensions wrap; out-of-range coordinates on non-periodic dimensions
// error.
func (cc *CartComm) RankOf(coords []int) (int, error) {
	if len(coords) != len(cc.dims) {
		return 0, fmt.Errorf("%w: %d coordinates for a %d-D grid", ErrCount, len(coords), len(cc.dims))
	}
	rank := 0
	for i, x := range coords {
		d := cc.dims[i]
		if cc.periods[i] {
			x = ((x % d) + d) % d
		} else if x < 0 || x >= d {
			return 0, fmt.Errorf("%w: coordinate %d out of [0,%d) on non-periodic dim %d", ErrCount, x, d, i)
		}
		rank = rank*d + x
	}
	return rank, nil
}

// Shift returns the source and destination ranks for a displacement
// along a dimension (MPI_Cart_shift). Off-grid neighbours on
// non-periodic dimensions are ProcNull.
func (cc *CartComm) Shift(dim, disp int) (src, dst int, err error) {
	if dim < 0 || dim >= len(cc.dims) {
		return 0, 0, fmt.Errorf("%w: shift dimension %d", ErrCount, dim)
	}
	at := func(delta int) int {
		coords := cc.Coords()
		coords[dim] += delta
		r, err := cc.RankOf(coords)
		if err != nil {
			return ProcNull
		}
		return r
	}
	return at(-disp), at(+disp), nil
}

// nativeUndefined mirrors nativempi.Undefined without leaking the
// import into every caller.
const nativeUndefined = -1
