package core

import (
	"fmt"
	"testing"
	"testing/quick"

	"mv2j/internal/jvm"
)

func TestIndexedShape(t *testing.T) {
	idx, err := Indexed(INT, []int{2, 1, 3}, []int{0, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Size() != 6*4 {
		t.Fatalf("Size = %d, want 24", idx.Size())
	}
	if idx.Extent() != 10 {
		t.Fatalf("Extent = %d, want 10", idx.Extent())
	}
	if idx.contiguous() || !idx.IsDerived() {
		t.Fatal("indexed must be derived and non-contiguous")
	}
	if idx.String() != "indexed<int>(3 blocks)" {
		t.Fatalf("String = %q", idx.String())
	}
}

func TestIndexedValidation(t *testing.T) {
	cases := []struct {
		lens, displs []int
	}{
		{nil, nil},
		{[]int{1}, []int{0, 1}},
		{[]int{0}, []int{0}},
		{[]int{1, 1}, []int{0, 0}}, // overlapping
		{[]int{2, 1}, []int{0, 1}}, // overlapping
		{[]int{1, 1}, []int{3, 1}}, // decreasing
		{[]int{1}, []int{-1}},      // negative displ
	}
	for i, c := range cases {
		if _, err := Indexed(INT, c.lens, c.displs); err == nil {
			t.Errorf("case %d: invalid indexed layout accepted", i)
		}
	}
	vec, _ := Vector(INT, 2, 1, 2)
	if _, err := Indexed(vec, []int{1}, []int{0}); err == nil {
		t.Error("nested derived accepted")
	}
}

func TestIndexedSendRecv(t *testing.T) {
	// Send elements {0,1, 4, 7,8,9} of a 12-int array, receive them
	// contiguously.
	idx, err := Indexed(INT, []int{2, 1, 3}, []int{0, 4, 7})
	if err != nil {
		t.Fatal(err)
	}
	err = Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if c.Rank() == 0 {
			src := m.JVM().MustArray(jvm.Int, 12)
			fillArray(src, 100)
			return c.Send(src, 1, idx, 1, 0)
		}
		dst := m.JVM().MustArray(jvm.Int, 6)
		if _, err := c.Recv(dst, 6, INT, 0, 0); err != nil {
			return err
		}
		want := []int64{100, 101, 104, 107, 108, 109}
		for i, w := range want {
			if dst.Int(i) != w {
				return fmt.Errorf("dst[%d] = %d, want %d", i, dst.Int(i), w)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexedRecvScatters(t *testing.T) {
	// Receive a contiguous message into an indexed layout: the gaps
	// must keep their old contents.
	idx, err := Indexed(SHORT, []int{1, 2}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	err = Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if c.Rank() == 0 {
			src := m.JVM().MustArray(jvm.Short, 3)
			for i := 0; i < 3; i++ {
				src.SetInt(i, int64(70+i))
			}
			return c.Send(src, 3, SHORT, 1, 0)
		}
		dst := m.JVM().MustArray(jvm.Short, 6)
		dst.Fill(-1)
		if _, err := c.Recv(dst, 1, idx, 0, 0); err != nil {
			return err
		}
		want := []int64{-1, 70, -1, -1, 71, 72}
		for i, w := range want {
			if dst.Int(i) != w {
				return fmt.Errorf("dst[%d] = %d, want %d", i, dst.Int(i), w)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIndexedBothFlavors(t *testing.T) {
	// The Open MPI-J array path packs derived types from the JNI copy;
	// results must agree with the MVAPICH2-J buffering-layer path.
	idx, err := Indexed(LONG, []int{1, 1}, []int{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{mv2Config(1, 2), ompiConfig(1, 2)} {
		cfg := cfg
		err := Run(cfg, func(m *MPI) error {
			c := m.CommWorld()
			if c.Rank() == 0 {
				src := m.JVM().MustArray(jvm.Long, 8)
				fillArray(src, 0)
				// Two indexed elements: {0,3} and {4,7}.
				return c.Send(src, 2, idx, 1, 0)
			}
			dst := m.JVM().MustArray(jvm.Long, 4)
			if _, err := c.Recv(dst, 4, LONG, 0, 0); err != nil {
				return err
			}
			want := []int64{0, 3, 4, 7}
			for i, w := range want {
				if dst.Int(i) != w {
					return fmt.Errorf("%v: dst[%d] = %d, want %d", cfg.Flavor, i, dst.Int(i), w)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Property: pack(unpack(x)) == x for random indexed layouts — the
// round trip through the buffering layer loses nothing.
func TestIndexedRoundTripProperty(t *testing.T) {
	type layout struct {
		lens, displs []int
	}
	mk := func(raw []uint8) layout {
		var l layout
		pos := 0
		for _, r := range raw {
			length := int(r%3) + 1
			gap := int(r/64) % 3
			l.lens = append(l.lens, length)
			l.displs = append(l.displs, pos+gap)
			pos += gap + length
			if len(l.lens) == 4 {
				break
			}
		}
		if len(l.lens) == 0 {
			l.lens, l.displs = []int{1}, []int{0}
		}
		return l
	}
	f := func(raw []uint8, seed int64) bool {
		l := mk(raw)
		idx, err := Indexed(BYTE, l.lens, l.displs)
		if err != nil {
			return false
		}
		ok := true
		runErr := Run(mv2Config(1, 2), func(m *MPI) error {
			c := m.CommWorld()
			ext := idx.Extent()
			if c.Rank() == 0 {
				src := m.JVM().MustArray(jvm.Byte, ext)
				for i := 0; i < ext; i++ {
					src.SetInt(i, seed+int64(i))
				}
				return c.Send(src, 1, idx, 1, 0)
			}
			// Receive into the same layout; gaps stay zero.
			dst := m.JVM().MustArray(jvm.Byte, ext)
			if _, err := c.Recv(dst, 1, idx, 0, 0); err != nil {
				return err
			}
			inBlock := make([]bool, ext)
			for b := range l.lens {
				for k := 0; k < l.lens[b]; k++ {
					inBlock[l.displs[b]+k] = true
				}
			}
			for i := 0; i < ext; i++ {
				if inBlock[i] {
					if dst.Int(i) != int64(int8(seed+int64(i))) {
						ok = false
					}
				} else if dst.Int(i) != 0 {
					ok = false
				}
			}
			return nil
		})
		return runErr == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
