package core

import (
	"errors"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

func mv2Config(nodes, ppn int) Config {
	return Config{Nodes: nodes, PPN: ppn, Lib: profile.MVAPICH2(), Flavor: MVAPICH2J}
}

func ompiConfig(nodes, ppn int) Config {
	return Config{Nodes: nodes, PPN: ppn, Lib: profile.OpenMPI(), Flavor: OpenMPIJ}
}

// fillArray populates an integral array with a deterministic pattern.
func fillArray(a jvm.Array, seed int64) {
	for i := 0; i < a.Len(); i++ {
		a.SetInt(i, seed+int64(i))
	}
}

func checkArray(a jvm.Array, seed int64) error {
	for i := 0; i < a.Len(); i++ {
		if got := a.Int(i); got != seed+int64(i) {
			return fmt.Errorf("a[%d] = %d, want %d", i, got, seed+int64(i))
		}
	}
	return nil
}

func TestSendRecvArraysBothFlavors(t *testing.T) {
	for _, cfg := range []Config{mv2Config(1, 2), ompiConfig(1, 2)} {
		cfg := cfg
		t.Run(cfg.Flavor.String(), func(t *testing.T) {
			err := Run(cfg, func(m *MPI) error {
				c := m.CommWorld()
				const n = 100
				if c.Rank() == 0 {
					arr := m.JVM().MustArray(jvm.Int, n)
					fillArray(arr, 1000)
					return c.Send(arr, n, INT, 1, 0)
				}
				arr := m.JVM().MustArray(jvm.Int, n)
				st, err := c.Recv(arr, n, INT, 0, 0)
				if err != nil {
					return err
				}
				if cnt, err := st.Count(INT); err != nil || cnt != n {
					return fmt.Errorf("count = %d, %v", cnt, err)
				}
				return checkArray(arr, 1000)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSendRecvDirectBuffers(t *testing.T) {
	err := Run(mv2Config(2, 1), func(m *MPI) error {
		c := m.CommWorld()
		const n = 4096
		buf := m.JVM().MustAllocateDirect(n)
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf.PutByteAt(i, byte(i*3))
			}
			return c.Send(buf, n, BYTE, 1, 9)
		}
		if _, err := c.Recv(buf, n, BYTE, 0, 9); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if buf.ByteAt(i) != byte(i*3) {
				return fmt.Errorf("buf[%d] corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvHeapBuffers(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		const n = 256
		buf, err := m.JVM().Allocate(n)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf.PutByteAt(i, byte(i))
			}
			return c.Send(buf, n, BYTE, 1, 0)
		}
		if _, err := c.Recv(buf, n, BYTE, 0, 0); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if buf.ByteAt(i) != byte(i) {
				return fmt.Errorf("heap buffer recv corrupted at %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedArrayToBufferWireCompatibility(t *testing.T) {
	// An array send must be byte-identical on the wire to a buffer
	// send: array sender, buffer receiver.
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		const n = 64
		if c.Rank() == 0 {
			arr := m.JVM().MustArray(jvm.Int, n)
			fillArray(arr, -5)
			return c.Send(arr, n, INT, 1, 0)
		}
		buf := m.JVM().MustAllocateDirect(n * 4)
		if _, err := c.Recv(buf, n, INT, 0, 0); err != nil {
			return err
		}
		// Arrays are little-endian native layout on the wire.
		buf.SetOrder(jvm.LittleEndian)
		for i := 0; i < n; i++ {
			if got := buf.IntKindAt(jvm.Int, i*4); got != int64(-5+i) {
				return fmt.Errorf("wire[%d] = %d, want %d", i, got, -5+i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvBuffers(t *testing.T) {
	err := Run(mv2Config(2, 1), func(m *MPI) error {
		c := m.CommWorld()
		const n = 8192
		buf := m.JVM().MustAllocateDirect(n)
		if c.Rank() == 0 {
			req, err := c.Isend(buf, n, BYTE, 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(buf, n, BYTE, 0, 0)
		if err != nil {
			return err
		}
		st, err := req.Wait()
		if err != nil {
			return err
		}
		if st.Bytes != n {
			return fmt.Errorf("bytes = %d", st.Bytes)
		}
		// Repeated Wait is idempotent.
		if _, err := req.Wait(); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendArraysMV2JWorksOMPIJDoesNot(t *testing.T) {
	// The paper's API gap: Open MPI-J rejects Java arrays on
	// non-blocking point-to-point; MVAPICH2-J supports them via the
	// buffering layer.
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Double, 32)
		if c.Rank() == 0 {
			for i := 0; i < 32; i++ {
				arr.SetFloat(i, float64(i)/4)
			}
			req, err := c.Isend(arr, 32, DOUBLE, 1, 0)
			if err != nil {
				return err
			}
			_, err = req.Wait()
			return err
		}
		req, err := c.Irecv(arr, 32, DOUBLE, 0, 0)
		if err != nil {
			return err
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		for i := 0; i < 32; i++ {
			if arr.Float(i) != float64(i)/4 {
				return fmt.Errorf("arr[%d] = %v", i, arr.Float(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	err = Run(ompiConfig(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 4)
		if _, err := c.Isend(arr, 4, INT, 1-c.Rank(), 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("Isend(array) under OpenMPI-J: err=%v, want ErrUnsupported", err)
		}
		if _, err := c.Irecv(arr, 4, INT, 1-c.Rank(), 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("Irecv(array) under OpenMPI-J: err=%v, want ErrUnsupported", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOffsetExtension(t *testing.T) {
	// MVAPICH2-J's subset send: only elements [10, 20) travel.
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 40)
		if c.Rank() == 0 {
			fillArray(arr, 0)
			return c.SendRange(arr, 10, 10, INT, 1, 0)
		}
		if _, err := c.RecvRange(arr, 5, 10, INT, 0, 0); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			if got := arr.Int(5 + i); got != int64(10+i) {
				return fmt.Errorf("offset recv [%d] = %d, want %d", i, got, 10+i)
			}
		}
		if arr.Int(0) != 0 || arr.Int(20) != 0 {
			return fmt.Errorf("offset recv wrote outside the range")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Open MPI-J dropped the offset argument.
	err = Run(ompiConfig(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 8)
		if err := c.SendRange(arr, 2, 2, INT, 1-c.Rank(), 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("SendRange under OpenMPI-J: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorDatatype(t *testing.T) {
	// A strided column out of a 8x8 matrix: vector(count=8, blocklen=1,
	// stride=8) — packed through the buffering layer.
	vec, err := Vector(DOUBLE, 8, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if c.Rank() == 0 {
			mat := m.JVM().MustArray(jvm.Double, 64)
			for r := 0; r < 8; r++ {
				for col := 0; col < 8; col++ {
					mat.SetFloat(r*8+col, float64(r*8+col))
				}
			}
			// Send column 3: the offset extension shifts the strided
			// pattern to start at base element 3.
			return c.SendRange(mat, 3, 1, vec, 1, 0)
		}
		col := m.JVM().MustArray(jvm.Double, 8)
		if _, err := c.Recv(col, 8, DOUBLE, 0, 0); err != nil {
			return err
		}
		for r := 0; r < 8; r++ {
			if col.Float(r) != float64(r*8+3) {
				return fmt.Errorf("col[%d] = %v, want %v", r, col.Float(r), float64(r*8+3))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorDatatypeRejectedOnBuffers(t *testing.T) {
	vec, err := Vector(INT, 2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	err = Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustAllocateDirect(64)
		if err := c.Send(buf, 1, vec, 1-c.Rank(), 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("derived type on ByteBuffer: %v, want ErrUnsupported", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBufferTypeValidation(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if err := c.Send("not a buffer", 1, BYTE, 1-c.Rank(), 0); !errors.Is(err, ErrBufferType) {
			return fmt.Errorf("string buffer: %v", err)
		}
		arr := m.JVM().MustArray(jvm.Int, 4)
		if err := c.Send(arr, 8, INT, 1-c.Rank(), 0); !errors.Is(err, ErrCount) {
			return fmt.Errorf("oversized count: %v", err)
		}
		if err := c.Send(arr, 4, DOUBLE, 1-c.Rank(), 0); !errors.Is(err, ErrBufferType) {
			return fmt.Errorf("kind mismatch: %v", err)
		}
		if err := c.Send(arr, -1, INT, 1-c.Rank(), 0); !errors.Is(err, ErrCount) {
			return fmt.Errorf("negative count: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZeroByteMessages(t *testing.T) {
	// Regression: a zero-count array message must not touch the pool
	// (Get(0) is invalid) — it bit the Alltoallv path when a rank owned
	// no data for some peer.
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 4)
		if c.Rank() == 0 {
			if err := c.Send(arr, 0, INT, 1, 0); err != nil {
				return err
			}
		} else {
			st, err := c.Recv(arr, 0, INT, 0, 0)
			if err != nil {
				return err
			}
			if st.Bytes != 0 {
				return fmt.Errorf("zero-byte recv reported %d bytes", st.Bytes)
			}
		}
		// Irregular collective where one rank contributes nothing.
		counts := []int{0, 3}
		displs := []int{0, 0}
		send := m.JVM().MustArray(jvm.Int, 3)
		fillArray(send, 5)
		var recv jvm.Array
		var recvAny any
		if c.Rank() == 0 {
			recv = m.JVM().MustArray(jvm.Int, 3)
			recvAny = recv
		}
		n := counts[c.Rank()]
		if err := c.Gatherv(send, n, recvAny, counts, displs, INT, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			return checkArray(recv, 5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvBindings(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		other := 1 - c.Rank()
		out := m.JVM().MustArray(jvm.Long, 16)
		in := m.JVM().MustArray(jvm.Long, 16)
		fillArray(out, int64(c.Rank()*100))
		st, err := c.Sendrecv(out, 16, LONG, other, 1, in, 16, LONG, other, 1)
		if err != nil {
			return err
		}
		if st.Source != other {
			return fmt.Errorf("sendrecv status source %d", st.Source)
		}
		return checkArray(in, int64(other*100))
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbeBindings(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if c.Rank() == 0 {
			arr := m.JVM().MustArray(jvm.Short, 10)
			return c.Send(arr, 10, SHORT, 1, 4)
		}
		st, err := c.Probe(0, 4)
		if err != nil {
			return err
		}
		n, err := st.Count(SHORT)
		if err != nil || n != 10 {
			return fmt.Errorf("probe count %d, %v", n, err)
		}
		arr := m.JVM().MustArray(jvm.Short, 10)
		_, err = c.Recv(arr, 10, SHORT, 0, 4)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}
