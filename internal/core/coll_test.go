package core

import (
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

// runBoth runs the same SPMD body under both bindings flavors.
func runBoth(t *testing.T, nodes, ppn int, body func(m *MPI) error) {
	t.Helper()
	for _, cfg := range []Config{mv2Config(nodes, ppn), ompiConfig(nodes, ppn)} {
		cfg := cfg
		t.Run(cfg.Flavor.String(), func(t *testing.T) {
			if err := Run(cfg, body); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBcastBindings(t *testing.T) {
	runBoth(t, 2, 2, func(m *MPI) error {
		c := m.CommWorld()
		const n = 50
		// Arrays.
		arr := m.JVM().MustArray(jvm.Int, n)
		if c.Rank() == 2 {
			fillArray(arr, 7)
		}
		if err := c.Bcast(arr, n, INT, 2); err != nil {
			return err
		}
		if err := checkArray(arr, 7); err != nil {
			return fmt.Errorf("rank %d array bcast: %w", c.Rank(), err)
		}
		// Direct buffers.
		buf := m.JVM().MustAllocateDirect(n)
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				buf.PutByteAt(i, byte(i+1))
			}
		}
		if err := c.Bcast(buf, n, BYTE, 0); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if buf.ByteAt(i) != byte(i+1) {
				return fmt.Errorf("rank %d: buffer bcast[%d] = %d", c.Rank(), i, buf.ByteAt(i))
			}
		}
		return nil
	})
}

func TestReduceAllreduceBindings(t *testing.T) {
	runBoth(t, 2, 2, func(m *MPI) error {
		c := m.CommWorld()
		const n = 20
		p := c.Size()
		send := m.JVM().MustArray(jvm.Long, n)
		for i := 0; i < n; i++ {
			send.SetInt(i, int64(c.Rank()+i))
		}
		want := func(i int) int64 { return int64(p*i) + int64(p*(p-1)/2) }

		// Reduce to root 1 (arrays).
		var recv jvm.Array
		if c.Rank() == 1 {
			recv = m.JVM().MustArray(jvm.Long, n)
		}
		var recvAny any
		if !recv.IsNil() {
			recvAny = recv
		}
		if err := c.Reduce(send, recvAny, n, LONG, SUM, 1); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < n; i++ {
				if recv.Int(i) != want(i) {
					return fmt.Errorf("reduce[%d] = %d, want %d", i, recv.Int(i), want(i))
				}
			}
		}

		// Allreduce (direct buffers of doubles).
		sb := m.JVM().MustAllocateDirect(8 * n)
		rb := m.JVM().MustAllocateDirect(8 * n)
		sb.SetOrder(jvm.LittleEndian)
		rb.SetOrder(jvm.LittleEndian)
		for i := 0; i < n; i++ {
			sb.PutFloatKindAt(jvm.Double, 8*i, float64(c.Rank())+float64(i))
		}
		if err := c.Allreduce(sb, rb, n, DOUBLE, SUM); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if got := rb.FloatKindAt(jvm.Double, 8*i); got != float64(want(i)) {
				return fmt.Errorf("buffer allreduce[%d] = %v, want %v", i, got, float64(want(i)))
			}
		}
		return nil
	})
}

func TestGatherScatterBindings(t *testing.T) {
	runBoth(t, 1, 4, func(m *MPI) error {
		c := m.CommWorld()
		const n = 6
		p := c.Size()
		send := m.JVM().MustArray(jvm.Int, n)
		fillArray(send, int64(c.Rank()*10))

		var recv jvm.Array
		var recvAny any
		if c.Rank() == 0 {
			recv = m.JVM().MustArray(jvm.Int, n*p)
			recvAny = recv
		}
		if err := c.Gather(send, n, recvAny, n, INT, 0); err != nil {
			return err
		}
		if c.Rank() == 0 {
			for r := 0; r < p; r++ {
				for i := 0; i < n; i++ {
					if got := recv.Int(r*n + i); got != int64(r*10+i) {
						return fmt.Errorf("gather[%d][%d] = %d", r, i, got)
					}
				}
			}
		}

		out := m.JVM().MustArray(jvm.Int, n)
		if err := c.Scatter(recvAny, n, out, n, INT, 0); err != nil {
			return err
		}
		return checkArray(out, int64(c.Rank()*10))
	})
}

func TestAllgatherAlltoallBindings(t *testing.T) {
	runBoth(t, 2, 2, func(m *MPI) error {
		c := m.CommWorld()
		const n = 4
		p := c.Size()
		send := m.JVM().MustArray(jvm.Int, n)
		fillArray(send, int64(100*c.Rank()))
		recv := m.JVM().MustArray(jvm.Int, n*p)
		if err := c.Allgather(send, n, recv, n, INT); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if got := recv.Int(r*n + i); got != int64(100*r+i) {
					return fmt.Errorf("allgather[%d][%d] = %d", r, i, got)
				}
			}
		}

		a2aSend := m.JVM().MustArray(jvm.Int, n*p)
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				a2aSend.SetInt(r*n+i, int64(1000*c.Rank()+10*r+i))
			}
		}
		a2aRecv := m.JVM().MustArray(jvm.Int, n*p)
		if err := c.Alltoall(a2aSend, n, a2aRecv, n, INT); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < n; i++ {
				if got := a2aRecv.Int(r*n + i); got != int64(1000*r+10*c.Rank()+i) {
					return fmt.Errorf("alltoall[%d][%d] = %d", r, i, got)
				}
			}
		}
		return nil
	})
}

func TestVectoredCollectivesBindings(t *testing.T) {
	runBoth(t, 1, 3, func(m *MPI) error {
		c := m.CommWorld()
		p := c.Size()
		me := c.Rank()
		counts := make([]int, p)
		displs := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		send := m.JVM().MustArray(jvm.Int, me+1)
		fillArray(send, int64(me*100))

		var gat jvm.Array
		var gatAny any
		if me == 0 {
			gat = m.JVM().MustArray(jvm.Int, total)
			gatAny = gat
		}
		if err := c.Gatherv(send, me+1, gatAny, counts, displs, INT, 0); err != nil {
			return err
		}
		if me == 0 {
			for r := 0; r < p; r++ {
				for i := 0; i < counts[r]; i++ {
					if got := gat.Int(displs[r] + i); got != int64(r*100+i) {
						return fmt.Errorf("gatherv[%d][%d] = %d", r, i, got)
					}
				}
			}
		}

		back := m.JVM().MustArray(jvm.Int, me+1)
		if err := c.Scatterv(gatAny, counts, displs, back, me+1, INT, 0); err != nil {
			return err
		}
		if err := checkArray(back, int64(me*100)); err != nil {
			return fmt.Errorf("scatterv: %w", err)
		}

		all := m.JVM().MustArray(jvm.Int, total)
		if err := c.Allgatherv(send, me+1, all, counts, displs, INT); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < counts[r]; i++ {
				if got := all.Int(displs[r] + i); got != int64(r*100+i) {
					return fmt.Errorf("allgatherv[%d][%d] = %d", r, i, got)
				}
			}
		}

		// Alltoallv: rank s sends (s+r+1) ints to rank r.
		sc := make([]int, p)
		sd := make([]int, p)
		tot := 0
		for r := 0; r < p; r++ {
			sc[r] = me + r + 1
			sd[r] = tot
			tot += sc[r]
		}
		sarr := m.JVM().MustArray(jvm.Int, tot)
		for r := 0; r < p; r++ {
			for i := 0; i < sc[r]; i++ {
				sarr.SetInt(sd[r]+i, int64(me*1000+r*10+i))
			}
		}
		rc := make([]int, p)
		rd := make([]int, p)
		tot = 0
		for r := 0; r < p; r++ {
			rc[r] = r + me + 1
			rd[r] = tot
			tot += rc[r]
		}
		rarr := m.JVM().MustArray(jvm.Int, tot)
		if err := c.Alltoallv(sarr, sc, sd, rarr, rc, rd, INT); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < rc[r]; i++ {
				if got := rarr.Int(rd[r] + i); got != int64(r*1000+me*10+i) {
					return fmt.Errorf("alltoallv[%d][%d] = %d", r, i, got)
				}
			}
		}
		return nil
	})
}

func TestScanReduceScatterBindings(t *testing.T) {
	runBoth(t, 2, 2, func(m *MPI) error {
		c := m.CommWorld()
		p := c.Size()
		me := c.Rank()

		// Scan over long arrays.
		send := m.JVM().MustArray(jvm.Long, 4)
		recv := m.JVM().MustArray(jvm.Long, 4)
		for i := 0; i < 4; i++ {
			send.SetInt(i, int64(me+i))
		}
		if err := c.Scan(send, recv, 4, LONG, SUM); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			want := int64(0)
			for r := 0; r <= me; r++ {
				want += int64(r + i)
			}
			if recv.Int(i) != want {
				return fmt.Errorf("rank %d: scan[%d] = %d, want %d", me, i, recv.Int(i), want)
			}
		}

		// ReduceScatter of 2 longs per rank.
		counts := make([]int, p)
		for r := range counts {
			counts[r] = 2
		}
		rsSend := m.JVM().MustArray(jvm.Long, 2*p)
		for i := 0; i < 2*p; i++ {
			rsSend.SetInt(i, int64(me*100+i))
		}
		rsRecv := m.JVM().MustArray(jvm.Long, 2)
		if err := c.ReduceScatter(rsSend, rsRecv, counts, LONG, SUM); err != nil {
			return err
		}
		for i := 0; i < 2; i++ {
			idx := me*2 + i
			want := int64(0)
			for r := 0; r < p; r++ {
				want += int64(r*100 + idx)
			}
			if rsRecv.Int(i) != want {
				return fmt.Errorf("rank %d: reduce_scatter[%d] = %d, want %d", me, i, rsRecv.Int(i), want)
			}
		}
		return nil
	})
}

func TestExscanBindings(t *testing.T) {
	runBoth(t, 1, 4, func(m *MPI) error {
		c := m.CommWorld()
		me := c.Rank()
		send := m.JVM().MustArray(jvm.Long, 2)
		recv := m.JVM().MustArray(jvm.Long, 2)
		send.SetInt(0, int64(me+1))
		send.SetInt(1, int64((me+1)*10))
		recv.Fill(-9)
		if err := c.Exscan(send, recv, 2, LONG, SUM); err != nil {
			return err
		}
		if me == 0 {
			if recv.Int(0) != -9 || recv.Int(1) != -9 {
				return fmt.Errorf("rank 0 exscan buffer modified: %d %d", recv.Int(0), recv.Int(1))
			}
			return nil
		}
		want := int64(me * (me + 1) / 2)
		if recv.Int(0) != want || recv.Int(1) != want*10 {
			return fmt.Errorf("rank %d: exscan = %d/%d, want %d/%d", me, recv.Int(0), recv.Int(1), want, want*10)
		}
		return nil
	})
}

func TestWtime(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		t0 := m.Wtime()
		if err := m.CommWorld().Barrier(); err != nil {
			return err
		}
		t1 := m.Wtime()
		if t1 <= t0 {
			return fmt.Errorf("Wtime did not advance across a barrier: %v -> %v", t0, t1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierBindings(t *testing.T) {
	runBoth(t, 2, 2, func(m *MPI) error {
		return m.CommWorld().Barrier()
	})
}

func TestCommSplitDupBindings(t *testing.T) {
	err := Run(mv2Config(2, 2), func(m *MPI) error {
		c := m.CommWorld()
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		if sub.Size() != 2 {
			return fmt.Errorf("split size %d", sub.Size())
		}
		arr := m.JVM().MustArray(jvm.Int, 4)
		if sub.Rank() == 0 {
			fillArray(arr, int64(c.Rank()%2))
		}
		if err := sub.Bcast(arr, 4, INT, 0); err != nil {
			return err
		}
		if err := checkArray(arr, int64(c.Rank()%2)); err != nil {
			return err
		}
		dup, err := sub.Dup()
		if err != nil {
			return err
		}
		return dup.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommCreateFromGroupBindings(t *testing.T) {
	err := Run(mv2Config(1, 4), func(m *MPI) error {
		c := m.CommWorld()
		g := c.Group()
		evens, err := g.Incl([]int{0, 2})
		if err != nil {
			return err
		}
		sub, err := c.Create(evens)
		if err != nil {
			return err
		}
		if c.Rank()%2 == 1 {
			if sub != nil {
				return fmt.Errorf("rank %d should be outside", c.Rank())
			}
			return nil
		}
		if sub.Size() != 2 || sub.Rank() != c.Rank()/2 {
			return fmt.Errorf("rank %d: sub %d/%d", c.Rank(), sub.Rank(), sub.Size())
		}
		return sub.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
