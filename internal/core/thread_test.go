package core

import (
	"fmt"
	"testing"
)

// TestInitThreadBindings: the bindings-level MPI_Init_thread grants
// min(required, job level), and Config.ThreadLevel overrides the
// profile's built level.
func TestInitThreadBindings(t *testing.T) {
	cfg := mv2Config(1, 2)
	cfg.ThreadLevel = ThreadSerialized
	err := Run(cfg, func(m *MPI) error {
		if got := m.ThreadLevel(); got != ThreadSingle {
			return fmt.Errorf("before InitThread: %v, want SINGLE", got)
		}
		if got := m.InitThread(ThreadMultiple); got != ThreadSerialized {
			return fmt.Errorf("InitThread(MULTIPLE) = %v, want SERIALIZED", got)
		}
		if got := m.ThreadLevel(); got != ThreadSerialized {
			return fmt.Errorf("ThreadLevel() = %v, want SERIALIZED", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunThreadsBindings: simulated threads drive the full bindings
// stack (JVM buffers, JNI crossings, native calls) deterministically —
// two runs produce the same virtual finish time and intact payloads.
func TestRunThreadsBindings(t *testing.T) {
	run := func() (float64, error) {
		var finish float64
		err := Run(mv2Config(2, 1), func(m *MPI) error {
			c := m.CommWorld()
			m.InitThread(ThreadMultiple)
			const T, n = 3, 2048
			err := m.RunThreads(T, func(tid int) error {
				buf := m.JVM().MustAllocateDirect(n)
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						buf.PutByteAt(i, byte(i+tid))
					}
					return c.Send(buf, n, BYTE, 1, 40+tid)
				}
				if _, err := c.Recv(buf, n, BYTE, 0, 40+tid); err != nil {
					return err
				}
				for i := 0; i < n; i++ {
					if buf.ByteAt(i) != byte(i+tid) {
						return fmt.Errorf("tid %d: buf[%d] corrupted", tid, i)
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				finish = m.Wtime()
			}
			return nil
		})
		return finish, err
	}
	t0, err := run()
	if err != nil {
		t.Fatal(err)
	}
	t1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if t0 != t1 || t0 <= 0 {
		t.Fatalf("nondeterministic multithreaded bindings run: %v vs %v", t0, t1)
	}
}
