package core

import "fmt"

// Vectored blocking collectives (§IV-D "including vector variants").
// Counts and displacements are in dt elements, as in the Java API;
// they are converted to wire bytes for the native layer.

func scaleVec(counts, displs []int, esz int) (bcounts, bdispls []int) {
	bcounts = make([]int, len(counts))
	bdispls = make([]int, len(displs))
	for i := range counts {
		bcounts[i] = counts[i] * esz
		bdispls[i] = displs[i] * esz
	}
	return
}

func vecTotal(counts, displs []int) (int, error) {
	end := 0
	for i := range counts {
		if counts[i] < 0 || displs[i] < 0 {
			return 0, fmt.Errorf("%w: negative count/displacement at %d", ErrCount, i)
		}
		if displs[i]+counts[i] > end {
			end = displs[i] + counts[i]
		}
	}
	return end, nil
}

// Gatherv collects sendCount elements from each rank into root's
// recvBuf at per-rank element displacements.
func (c *Comm) Gatherv(sendBuf any, sendCount int, recvBuf any, recvCounts, displs []int, dt Datatype, root int) error {
	defer c.mpi.beginColl()()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount, dt)
	if err != nil {
		return err
	}
	defer sfree()
	if c.Rank() != root {
		return c.native.Gatherv(sraw, nil, nil, nil, root)
	}
	total, err := vecTotal(recvCounts, displs)
	if err != nil {
		return err
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, total, dt)
	if err != nil {
		return err
	}
	defer rfree()
	bc, bd := scaleVec(recvCounts, displs, dt.Size())
	if err := c.native.Gatherv(sraw, rraw, bc, bd, root); err != nil {
		return err
	}
	return finish()
}

// Scatterv distributes per-rank slices of root's sendBuf.
func (c *Comm) Scatterv(sendBuf any, sendCounts, displs []int, recvBuf any, recvCount int, dt Datatype, root int) error {
	defer c.mpi.beginColl()()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if c.Rank() != root {
		if err := c.native.Scatterv(nil, nil, nil, rraw, root); err != nil {
			return err
		}
		return finish()
	}
	total, err := vecTotal(sendCounts, displs)
	if err != nil {
		return err
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, total, dt)
	if err != nil {
		return err
	}
	defer sfree()
	bc, bd := scaleVec(sendCounts, displs, dt.Size())
	if err := c.native.Scatterv(sraw, bc, bd, rraw, root); err != nil {
		return err
	}
	return finish()
}

// Allgatherv gathers variable-size contributions to every rank.
func (c *Comm) Allgatherv(sendBuf any, sendCount int, recvBuf any, recvCounts, displs []int, dt Datatype) error {
	defer c.mpi.beginColl()()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount, dt)
	if err != nil {
		return err
	}
	defer sfree()
	total, err := vecTotal(recvCounts, displs)
	if err != nil {
		return err
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, total, dt)
	if err != nil {
		return err
	}
	defer rfree()
	bc, bd := scaleVec(recvCounts, displs, dt.Size())
	if err := c.native.Allgatherv(sraw, rraw, bc, bd); err != nil {
		return err
	}
	return finish()
}

// Alltoallv exchanges variable-size blocks between all ranks.
func (c *Comm) Alltoallv(sendBuf any, sendCounts, sendDispls []int,
	recvBuf any, recvCounts, recvDispls []int, dt Datatype) error {
	defer c.mpi.beginColl()()
	stotal, err := vecTotal(sendCounts, sendDispls)
	if err != nil {
		return err
	}
	rtotal, err := vecTotal(recvCounts, recvDispls)
	if err != nil {
		return err
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, stotal, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, rtotal, dt)
	if err != nil {
		return err
	}
	defer rfree()
	sc, sd := scaleVec(sendCounts, sendDispls, dt.Size())
	rc, rd := scaleVec(recvCounts, recvDispls, dt.Size())
	if err := c.native.Alltoallv(sraw, sc, sd, rraw, rc, rd); err != nil {
		return err
	}
	return finish()
}
