package core

import (
	"mv2j/internal/metrics"
	"mv2j/internal/mpjbuf"
	"mv2j/internal/nativempi"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Observability glue for the bindings layer. Three responsibilities:
//
//   - copy-in/copy-out spans: sendStage and recvStage-finish are the
//     two staging copies of the array path (paper Fig. 3); bracketing
//     them in virtual time lets a transfer's end-to-end latency be
//     split into copy-in / wire / copy-out / ack / retransmit phases
//     (trace.PhasesByRank);
//   - GC spans: the simulated JVM reports each stop-the-world pause;
//   - the post-run scrape: per-rank counters from every layer (native
//     runtime, buffer pools, JVM, JNI) flow into the metrics registry
//     once, AFTER World.Run has drained trailing ack traffic — the
//     only point where their values are independent of host
//     scheduling.
//
// None of the hooks advance a virtual clock: instrumented and bare
// runs report identical times.

// recordCopy emits one staging-copy span ending now. Zero-duration
// staging (direct buffers, empty messages) is not an event.
func (m *MPI) recordCopy(kind trace.Kind, bytes int, start vtime.Time) {
	w := m.proc.World()
	rec, met := w.Recorder(), w.Metrics()
	if rec == nil && met == nil {
		return
	}
	end := m.proc.Clock().Now()
	if end <= start {
		return
	}
	if rec != nil {
		rec.Record(trace.Event{
			Rank: m.proc.Rank(), Kind: kind, Peer: -1, Bytes: bytes,
			Start: start, End: end,
		})
	}
	label := "in"
	if kind == trace.KindCopyOut {
		label = "out"
	}
	met.Observe(m.proc.Rank(), "copy", label+"_ps", int64(end.Sub(start)))
	met.Observe(m.proc.Rank(), "copy", label+"_bytes", int64(bytes))
}

// sendStage wraps the staging implementation with a copy-in span.
func (m *MPI) sendStage(buf any, offset, count int, dt Datatype) ([]byte, func(), error) {
	start := m.proc.Clock().Now()
	raw, free, err := m.sendStageImpl(buf, offset, count, dt)
	if err == nil {
		m.recordCopy(trace.KindCopyIn, len(raw), start)
	}
	return raw, free, err
}

// recvStage wraps the staging implementation so the finish (unpack)
// callback emits a copy-out span.
func (m *MPI) recvStage(buf any, offset, count int, dt Datatype) ([]byte, func() error, func(), error) {
	raw, finish, free, err := m.recvStageImpl(buf, offset, count, dt)
	if err != nil {
		return raw, finish, free, err
	}
	inner := finish
	wrapped := func() error {
		start := m.proc.Clock().Now()
		if err := inner(); err != nil {
			return err
		}
		m.recordCopy(trace.KindCopyOut, len(raw), start)
		return nil
	}
	return raw, wrapped, free, nil
}

// gcObserver builds the per-rank callback the simulated JVM invokes
// after each collection.
func gcObserver(w *nativempi.World, rank int) func(live int, start, end vtime.Time) {
	return func(live int, start, end vtime.Time) {
		if rec := w.Recorder(); rec != nil {
			rec.Record(trace.Event{
				Rank: rank, Kind: trace.KindGC, Detail: "stw-compact", Peer: -1,
				Bytes: live, Start: start, End: end,
			})
		}
		w.Metrics().Observe(rank, "jvm", "gc_pause_ps", int64(end.Sub(start)))
		w.Metrics().Observe(rank, "jvm", "gc_live_bytes", int64(live))
	}
}

// scrapeMetrics folds every layer's counters into the registry, one
// rank at a time. Ranks that never initialised (nil entries after an
// early abort) are skipped.
func scrapeMetrics(reg *metrics.Registry, mpis []*MPI) {
	if reg == nil {
		return
	}
	for rank, m := range mpis {
		if m == nil {
			continue
		}
		ps := m.proc.Stats()
		for _, c := range []struct {
			label string
			v     int64
		}{
			{"msgs_sent", ps.MsgsSent},
			{"bytes_sent", ps.BytesSent},
			{"eager_sends", ps.EagerSends},
			{"rndv_sends", ps.RndvSends},
			{"msgs_received", ps.MsgsReceived},
			{"unexpected", ps.Unexpected},
			{"retransmits", ps.Retransmits},
			{"fault_drops", ps.FaultDrops},
			{"fault_corrupts", ps.FaultCorrupts},
			{"fault_dups", ps.FaultDups},
			{"fault_delays", ps.FaultDelays},
			{"corrupt_drops", ps.CorruptDrops},
			{"dup_drops", ps.DupDrops},
			{"acks_sent", ps.AcksSent},
			{"acks_received", ps.AcksReceived},
			{"peer_failures", ps.PeerFailures},
			{"peer_suspects", ps.PeerSuspects},
			{"peer_confirms", ps.PeerConfirms},
			{"revokes_seen", ps.RevokesSeen},
		} {
			reg.Add(rank, "proc", c.label, c.v)
		}

		scrapePool(reg, rank, "pool", m.pool)
		scrapePool(reg, rank, "collpool", m.collPool)

		js := m.machine.Stats()
		reg.Add(rank, "jvm", "heap_allocs", js.HeapAllocs)
		reg.Add(rank, "jvm", "heap_alloc_bytes", js.HeapAllocBytes)
		reg.Add(rank, "jvm", "direct_allocs", js.DirectAllocs)
		reg.Add(rank, "jvm", "direct_bytes", js.DirectBytes)
		reg.Add(rank, "jvm", "collections", js.Collections)
		reg.Add(rank, "jvm", "gc_bytes_moved", js.BytesMoved)
		reg.Add(rank, "jvm", "gc_pause_total_ps", int64(js.GCPause))
		reg.SetGauge(rank, "jvm", "heap_used", int64(m.machine.HeapUsed()))
		reg.SetGauge(rank, "jvm", "live_bytes", int64(m.machine.LiveBytes()))

		ns := m.env.Stats()
		reg.Add(rank, "jni", "calls", ns.Calls)
		reg.Add(rank, "jni", "array_copy_out", ns.ArrayCopyOut)
		reg.Add(rank, "jni", "array_copy_back", ns.ArrayCopyBack)
		reg.Add(rank, "jni", "copied_bytes", ns.CopiedBytes)
		reg.Add(rank, "jni", "critical_enters", ns.CriticalEnters)
	}
}

// scrapePool folds one buffer pool's counters into the registry. The
// gauges use SetMaxGauge so an unordered scrape of many ranks still
// produces one deterministic per-rank value.
func scrapePool(reg *metrics.Registry, rank int, kind string, p *mpjbuf.Pool) {
	s := p.Stats()
	reg.Add(rank, kind, "gets", s.Gets)
	reg.Add(rank, kind, "hits", s.Hits)
	reg.Add(rank, kind, "misses", s.Misses)
	reg.Add(rank, kind, "frees", s.Frees)
	reg.Add(rank, kind, "allocated", s.Allocated)
	reg.SetGauge(rank, kind, "held_bytes", s.HeldBytes)
	reg.SetGauge(rank, kind, "in_use_bytes", s.InUseBytes)
	reg.SetMaxGauge(rank, kind, "high_water_bytes", s.HighWaterBytes)
}
