package core

import (
	"fmt"

	"mv2j/internal/jvm"
)

// Datatype describes the layout of one message element, mirroring the
// MPI datatypes the bindings expose. Predefined basic types cover the
// Java primitive kinds; Contiguous and Vector build derived types on
// top. Derived types on Java arrays are packed/unpacked through the
// buffering layer — one of the layer's design motivations (§IV-B).
type Datatype struct {
	base jvm.Kind
	// shape
	derived  bool
	count    int // blocks per element
	blocklen int // base elements per block
	stride   int // base elements between block starts
	// indexed layout (MPI_Type_indexed): per-block lengths and
	// displacements in base elements; when set, count/blocklen/stride
	// are ignored.
	idxLens, idxDispls []int
}

// Predefined basic datatypes.
var (
	BYTE    = Datatype{base: jvm.Byte, count: 1, blocklen: 1, stride: 1}
	BOOLEAN = Datatype{base: jvm.Boolean, count: 1, blocklen: 1, stride: 1}
	CHAR    = Datatype{base: jvm.Char, count: 1, blocklen: 1, stride: 1}
	SHORT   = Datatype{base: jvm.Short, count: 1, blocklen: 1, stride: 1}
	INT     = Datatype{base: jvm.Int, count: 1, blocklen: 1, stride: 1}
	LONG    = Datatype{base: jvm.Long, count: 1, blocklen: 1, stride: 1}
	FLOAT   = Datatype{base: jvm.Float, count: 1, blocklen: 1, stride: 1}
	DOUBLE  = Datatype{base: jvm.Double, count: 1, blocklen: 1, stride: 1}
)

// TypeFor returns the basic datatype for a primitive kind.
func TypeFor(k jvm.Kind) Datatype {
	return Datatype{base: k, count: 1, blocklen: 1, stride: 1}
}

// Contiguous builds a datatype of count consecutive base elements
// (MPI_Type_contiguous).
func Contiguous(base Datatype, count int) (Datatype, error) {
	if count <= 0 {
		return Datatype{}, fmt.Errorf("%w: contiguous count %d", ErrCount, count)
	}
	if base.derived {
		return Datatype{}, fmt.Errorf("%w: nested derived types not supported", ErrUnsupported)
	}
	return Datatype{base: base.base, derived: true, count: count, blocklen: 1, stride: 1}, nil
}

// Vector builds a strided datatype (MPI_Type_vector): count blocks of
// blocklen base elements, with block starts stride base elements
// apart.
func Vector(base Datatype, count, blocklen, stride int) (Datatype, error) {
	if count <= 0 || blocklen <= 0 || stride < blocklen {
		return Datatype{}, fmt.Errorf("%w: vector(count=%d, blocklen=%d, stride=%d)",
			ErrCount, count, blocklen, stride)
	}
	if base.derived {
		return Datatype{}, fmt.Errorf("%w: nested derived types not supported", ErrUnsupported)
	}
	return Datatype{base: base.base, derived: true, count: count, blocklen: blocklen, stride: stride}, nil
}

// Indexed builds an irregular datatype (MPI_Type_indexed): block i has
// blocklens[i] base elements starting at base-element displacement
// displs[i]. Blocks must be in strictly increasing, non-overlapping
// order.
func Indexed(base Datatype, blocklens, displs []int) (Datatype, error) {
	if base.derived {
		return Datatype{}, fmt.Errorf("%w: nested derived types not supported", ErrUnsupported)
	}
	if len(blocklens) == 0 || len(blocklens) != len(displs) {
		return Datatype{}, fmt.Errorf("%w: indexed needs matching non-empty blocklens/displs", ErrCount)
	}
	end := -1
	for i := range blocklens {
		if blocklens[i] <= 0 || displs[i] < 0 {
			return Datatype{}, fmt.Errorf("%w: indexed block %d (len=%d, displ=%d)", ErrCount, i, blocklens[i], displs[i])
		}
		if displs[i] <= end {
			return Datatype{}, fmt.Errorf("%w: indexed blocks must be increasing and disjoint (block %d)", ErrCount, i)
		}
		end = displs[i] + blocklens[i] - 1
	}
	return Datatype{
		base:      base.base,
		derived:   true,
		idxLens:   append([]int(nil), blocklens...),
		idxDispls: append([]int(nil), displs...),
	}, nil
}

// isIndexed reports the irregular layout.
func (d Datatype) isIndexed() bool { return len(d.idxLens) > 0 }

// blocks iterates the (displacement, length) block list of one
// datatype element, in base elements.
func (d Datatype) blocks(yield func(displ, length int) error) error {
	if d.isIndexed() {
		for i := range d.idxLens {
			if err := yield(d.idxDispls[i], d.idxLens[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for blk := 0; blk < d.count; blk++ {
		if err := yield(blk*d.stride, d.blocklen); err != nil {
			return err
		}
	}
	return nil
}

// Kind returns the base primitive kind.
func (d Datatype) Kind() jvm.Kind { return d.base }

// IsDerived reports whether the type is non-contiguous or composite.
func (d Datatype) IsDerived() bool { return d.derived }

// baseElems returns the number of base elements one datatype element
// carries on the wire.
func (d Datatype) baseElems() int {
	if d.isIndexed() {
		n := 0
		for _, l := range d.idxLens {
			n += l
		}
		return n
	}
	if d.derived {
		return d.count * d.blocklen
	}
	return 1
}

// Size returns the wire bytes of one datatype element (MPI_Type_size).
func (d Datatype) Size() int { return d.baseElems() * d.base.Size() }

// Extent returns the span, in base elements, one datatype element
// covers in the user buffer (MPI_Type_get_extent, in elements).
func (d Datatype) Extent() int {
	if d.isIndexed() {
		last := len(d.idxLens) - 1
		return d.idxDispls[last] + d.idxLens[last]
	}
	if !d.derived {
		return 1
	}
	// Last block starts at (count-1)*stride and spans blocklen.
	return (d.count-1)*d.stride + d.blocklen
}

// contiguous reports whether elements lie back-to-back in the user
// buffer (no packing needed).
func (d Datatype) contiguous() bool {
	if d.isIndexed() {
		return false
	}
	return !d.derived || d.stride == d.blocklen
}

func (d Datatype) String() string {
	if d.isIndexed() {
		return fmt.Sprintf("indexed<%v>(%d blocks)", d.base, len(d.idxLens))
	}
	if !d.derived {
		return d.base.String()
	}
	return fmt.Sprintf("vector<%v>(count=%d, blocklen=%d, stride=%d)", d.base, d.count, d.blocklen, d.stride)
}
