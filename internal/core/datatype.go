package core

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/mpjbuf"
)

// Datatype describes the layout of one message element, mirroring the
// MPI datatypes the bindings expose. Predefined basic types cover the
// Java primitive kinds; Contiguous and Vector build derived types on
// top. Derived types on Java arrays are packed/unpacked through the
// buffering layer — one of the layer's design motivations (§IV-B).
type Datatype struct {
	base jvm.Kind
	// shape
	derived  bool
	count    int // blocks per element
	blocklen int // base elements per block
	stride   int // base elements between block starts
	// indexed layout (MPI_Type_indexed): per-block lengths and
	// displacements in base elements; when set, count/blocklen/stride
	// are ignored.
	idxLens, idxDispls []int

	// structMembers, when positive, marks a TypeStruct-built type (it
	// reuses the indexed layout internally); String reports it.
	structMembers int

	// Commit lifecycle of the Type* constructor family. needsCommit
	// marks a type that must be committed before use in a message
	// operation; flat is the commit-time flattening, shared by every
	// copy of the value so Free poisons them all.
	needsCommit bool
	flat        *ddtState
}

// ddtRun is one coalesced (displacement, length) extent of a committed
// derived type, in base elements.
type ddtRun struct {
	off, length int
}

// ddtState is the commit-time flattening: the canonical ascending,
// coalesced run list (MPI's internal "dataloop" representation), plus
// the same runs in the buffering layer's element units for the typed
// pack engine. Shared via pointer so Free is visible through every
// copy of the Datatype value.
type ddtState struct {
	runs     []ddtRun
	packRuns []mpjbuf.Run
	freed    bool
}

// Predefined basic datatypes.
var (
	BYTE    = Datatype{base: jvm.Byte, count: 1, blocklen: 1, stride: 1}
	BOOLEAN = Datatype{base: jvm.Boolean, count: 1, blocklen: 1, stride: 1}
	CHAR    = Datatype{base: jvm.Char, count: 1, blocklen: 1, stride: 1}
	SHORT   = Datatype{base: jvm.Short, count: 1, blocklen: 1, stride: 1}
	INT     = Datatype{base: jvm.Int, count: 1, blocklen: 1, stride: 1}
	LONG    = Datatype{base: jvm.Long, count: 1, blocklen: 1, stride: 1}
	FLOAT   = Datatype{base: jvm.Float, count: 1, blocklen: 1, stride: 1}
	DOUBLE  = Datatype{base: jvm.Double, count: 1, blocklen: 1, stride: 1}
)

// TypeFor returns the basic datatype for a primitive kind.
func TypeFor(k jvm.Kind) Datatype {
	return Datatype{base: k, count: 1, blocklen: 1, stride: 1}
}

// Contiguous builds a datatype of count consecutive base elements
// (MPI_Type_contiguous).
func Contiguous(base Datatype, count int) (Datatype, error) {
	if count <= 0 {
		return Datatype{}, fmt.Errorf("%w: contiguous count %d", ErrCount, count)
	}
	if base.derived {
		return Datatype{}, fmt.Errorf("%w: nested derived types not supported", ErrUnsupported)
	}
	return Datatype{base: base.base, derived: true, count: count, blocklen: 1, stride: 1}, nil
}

// Vector builds a strided datatype (MPI_Type_vector): count blocks of
// blocklen base elements, with block starts stride base elements
// apart.
func Vector(base Datatype, count, blocklen, stride int) (Datatype, error) {
	if count <= 0 || blocklen <= 0 || stride < blocklen {
		return Datatype{}, fmt.Errorf("%w: vector(count=%d, blocklen=%d, stride=%d)",
			ErrCount, count, blocklen, stride)
	}
	if base.derived {
		return Datatype{}, fmt.Errorf("%w: nested derived types not supported", ErrUnsupported)
	}
	return Datatype{base: base.base, derived: true, count: count, blocklen: blocklen, stride: stride}, nil
}

// Indexed builds an irregular datatype (MPI_Type_indexed): block i has
// blocklens[i] base elements starting at base-element displacement
// displs[i]. Blocks must be in strictly increasing, non-overlapping
// order.
func Indexed(base Datatype, blocklens, displs []int) (Datatype, error) {
	if base.derived {
		return Datatype{}, fmt.Errorf("%w: nested derived types not supported", ErrUnsupported)
	}
	if len(blocklens) == 0 || len(blocklens) != len(displs) {
		return Datatype{}, fmt.Errorf("%w: indexed needs matching non-empty blocklens/displs", ErrCount)
	}
	end := -1
	for i := range blocklens {
		if blocklens[i] <= 0 || displs[i] < 0 {
			return Datatype{}, fmt.Errorf("%w: indexed block %d (len=%d, displ=%d)", ErrCount, i, blocklens[i], displs[i])
		}
		if displs[i] <= end {
			return Datatype{}, fmt.Errorf("%w: indexed blocks must be increasing and disjoint (block %d)", ErrCount, i)
		}
		end = displs[i] + blocklens[i] - 1
	}
	return Datatype{
		base:      base.base,
		derived:   true,
		idxLens:   append([]int(nil), blocklens...),
		idxDispls: append([]int(nil), displs...),
	}, nil
}

// TypeContiguous builds a committed-style datatype of count
// consecutive base elements (MPI_Type_contiguous). Unlike the legacy
// error-returning constructors, the Type* family treats invalid shape
// arguments as programming errors and panics deterministically — the
// FUNNELED/SERIALIZED precedent — and requires Commit before use.
func TypeContiguous(base Datatype, count int) Datatype {
	checkBasicMember(base, "TypeContiguous")
	if count <= 0 {
		panic(fmt.Sprintf("core: TypeContiguous(count=%d): count must be positive", count))
	}
	return Datatype{base: base.base, derived: true, count: count, blocklen: 1, stride: 1, needsCommit: true}
}

// TypeVector builds a strided datatype (MPI_Type_vector): count blocks
// of blocklen base elements, block starts stride base elements apart.
// Zero or negative counts, blocklens, or strides — and strides smaller
// than the blocklen, which would overlap blocks — panic.
func TypeVector(base Datatype, count, blocklen, stride int) Datatype {
	checkBasicMember(base, "TypeVector")
	if count <= 0 {
		panic(fmt.Sprintf("core: TypeVector(count=%d): count must be positive", count))
	}
	if blocklen <= 0 {
		panic(fmt.Sprintf("core: TypeVector(blocklen=%d): blocklen must be positive", blocklen))
	}
	if stride <= 0 {
		panic(fmt.Sprintf("core: TypeVector(stride=%d): stride must be positive", stride))
	}
	if stride < blocklen {
		panic(fmt.Sprintf("core: TypeVector(blocklen=%d, stride=%d): stride smaller than blocklen overlaps blocks", blocklen, stride))
	}
	return Datatype{base: base.base, derived: true, count: count, blocklen: blocklen, stride: stride, needsCommit: true}
}

// TypeIndexed builds an irregular datatype (MPI_Type_indexed): block i
// has blocklens[i] base elements at base-element displacement
// displs[i], in strictly increasing, non-overlapping order. Malformed
// layouts panic.
func TypeIndexed(base Datatype, blocklens, displs []int) Datatype {
	checkBasicMember(base, "TypeIndexed")
	if len(blocklens) == 0 || len(blocklens) != len(displs) {
		panic(fmt.Sprintf("core: TypeIndexed needs matching non-empty blocklens/displs (got %d/%d)", len(blocklens), len(displs)))
	}
	end := -1
	for i := range blocklens {
		if blocklens[i] <= 0 {
			panic(fmt.Sprintf("core: TypeIndexed block %d: blocklen %d must be positive", i, blocklens[i]))
		}
		if displs[i] < 0 {
			panic(fmt.Sprintf("core: TypeIndexed block %d: displacement %d is negative", i, displs[i]))
		}
		if displs[i] <= end {
			panic(fmt.Sprintf("core: TypeIndexed block %d at displacement %d overlaps or reorders the previous block ending at %d", i, displs[i], end))
		}
		end = displs[i] + blocklens[i] - 1
	}
	return Datatype{
		base:        base.base,
		derived:     true,
		idxLens:     append([]int(nil), blocklens...),
		idxDispls:   append([]int(nil), displs...),
		needsCommit: true,
	}
}

// TypeStruct builds a composite datatype (MPI_Type_create_struct):
// member i is blocklens[i] elements of types[i] at BYTE displacement
// byteDispls[i]. Members must be basic types in strictly increasing,
// non-overlapping byte order. A homogeneous struct keeps its members'
// primitive kind (so it applies to typed arrays); a mixed-kind struct
// degrades to a byte-granular layout over byte arrays.
func TypeStruct(blocklens, byteDispls []int, types []Datatype) Datatype {
	if len(blocklens) == 0 || len(blocklens) != len(byteDispls) || len(blocklens) != len(types) {
		panic(fmt.Sprintf("core: TypeStruct needs matching non-empty blocklens/byteDispls/types (got %d/%d/%d)",
			len(blocklens), len(byteDispls), len(types)))
	}
	homogeneous := true
	kind := types[0].base
	end := -1
	for i := range blocklens {
		checkBasicMember(types[i], "TypeStruct")
		if blocklens[i] <= 0 {
			panic(fmt.Sprintf("core: TypeStruct member %d: blocklen %d must be positive", i, blocklens[i]))
		}
		if byteDispls[i] < 0 {
			panic(fmt.Sprintf("core: TypeStruct member %d: displacement %d is negative", i, byteDispls[i]))
		}
		if byteDispls[i] <= end {
			panic(fmt.Sprintf("core: TypeStruct member %d at displacement %d overlaps or reorders the previous member ending at %d", i, byteDispls[i], end))
		}
		end = byteDispls[i] + blocklens[i]*types[i].Size() - 1
		if types[i].base != kind || byteDispls[i]%kind.Size() != 0 {
			homogeneous = false
		}
	}
	d := Datatype{derived: true, structMembers: len(blocklens), needsCommit: true}
	if homogeneous {
		d.base = kind
		sz := kind.Size()
		for i := range blocklens {
			d.idxLens = append(d.idxLens, blocklens[i])
			d.idxDispls = append(d.idxDispls, byteDispls[i]/sz)
		}
	} else {
		d.base = jvm.Byte
		for i := range blocklens {
			d.idxLens = append(d.idxLens, blocklens[i]*types[i].Size())
			d.idxDispls = append(d.idxDispls, byteDispls[i])
		}
	}
	return d
}

// checkBasicMember rejects nested derived types in the Type* family.
func checkBasicMember(base Datatype, ctor string) {
	if base.derived || base.needsCommit {
		panic(fmt.Sprintf("core: %s: nested derived types not supported (member %v)", ctor, base))
	}
}

// Commit flattens a Type*-built datatype into its canonical run list —
// adjacent extents coalesced — making it usable in message operations
// (MPI_Type_commit). Idempotent; a no-op on predefined and legacy
// types. Committing a freed type panics.
func (d *Datatype) Commit() {
	if !d.needsCommit {
		return
	}
	if d.flat != nil {
		if d.flat.freed {
			panic(fmt.Sprintf("core: Commit on freed datatype %v", *d))
		}
		return
	}
	st := &ddtState{}
	_ = d.blocks(func(displ, length int) error {
		if k := len(st.runs) - 1; k >= 0 && st.runs[k].off+st.runs[k].length == displ {
			st.runs[k].length += length
			st.packRuns[k].Els += length
		} else {
			st.runs = append(st.runs, ddtRun{off: displ, length: length})
			st.packRuns = append(st.packRuns, mpjbuf.Run{Off: displ, Els: length})
		}
		return nil
	})
	d.flat = st
}

// Free releases the commit-time state (MPI_Type_free). Every copy of
// the value shares it, so any later use of the type — through any copy
// — panics deterministically.
func (d *Datatype) Free() {
	if d.flat != nil {
		d.flat.freed = true
	}
}

// Committed reports whether the type may be used in a message
// operation: predefined and legacy types always can; Type*-built types
// only between Commit and Free.
func (d Datatype) Committed() bool {
	return !d.needsCommit || (d.flat != nil && !d.flat.freed)
}

// checkUsable panics when an uncommitted or freed Type*-datatype
// reaches a message operation — the deterministic-panic counterpart of
// the FUNNELED/SERIALIZED entry checks.
func (d Datatype) checkUsable(op string) {
	if !d.needsCommit {
		return
	}
	if d.flat == nil {
		panic(fmt.Sprintf("core: %s with uncommitted datatype %v (call Commit first)", op, d))
	}
	if d.flat.freed {
		panic(fmt.Sprintf("core: %s with freed datatype %v", op, d))
	}
}

// committedRuns returns the commit-time coalesced run list, or nil for
// uncommitted/legacy/predefined types.
func (d Datatype) committedRuns() []ddtRun {
	if d.flat == nil || d.flat.freed {
		return nil
	}
	return d.flat.runs
}

// packRuns returns the committed run list in the buffering layer's
// units, or nil when unavailable.
func (d Datatype) packRuns() []mpjbuf.Run {
	if d.flat == nil || d.flat.freed {
		return nil
	}
	return d.flat.packRuns
}

// isIndexed reports the irregular layout.
func (d Datatype) isIndexed() bool { return len(d.idxLens) > 0 }

// blocks iterates the (displacement, length) block list of one
// datatype element, in base elements. Committed types iterate their
// coalesced run list — same bytes, fewer callbacks.
func (d Datatype) blocks(yield func(displ, length int) error) error {
	if runs := d.committedRuns(); runs != nil {
		for _, r := range runs {
			if err := yield(r.off, r.length); err != nil {
				return err
			}
		}
		return nil
	}
	if d.isIndexed() {
		for i := range d.idxLens {
			if err := yield(d.idxDispls[i], d.idxLens[i]); err != nil {
				return err
			}
		}
		return nil
	}
	for blk := 0; blk < d.count; blk++ {
		if err := yield(blk*d.stride, d.blocklen); err != nil {
			return err
		}
	}
	return nil
}

// Kind returns the base primitive kind.
func (d Datatype) Kind() jvm.Kind { return d.base }

// IsDerived reports whether the type is non-contiguous or composite.
func (d Datatype) IsDerived() bool { return d.derived }

// baseElems returns the number of base elements one datatype element
// carries on the wire.
func (d Datatype) baseElems() int {
	if d.isIndexed() {
		n := 0
		for _, l := range d.idxLens {
			n += l
		}
		return n
	}
	if d.derived {
		return d.count * d.blocklen
	}
	return 1
}

// Size returns the wire bytes of one datatype element (MPI_Type_size).
func (d Datatype) Size() int { return d.baseElems() * d.base.Size() }

// Extent returns the span, in base elements, one datatype element
// covers in the user buffer (MPI_Type_get_extent, in elements).
func (d Datatype) Extent() int {
	if d.isIndexed() {
		last := len(d.idxLens) - 1
		return d.idxDispls[last] + d.idxLens[last]
	}
	if !d.derived {
		return 1
	}
	// Last block starts at (count-1)*stride and spans blocklen.
	return (d.count-1)*d.stride + d.blocklen
}

// contiguous reports whether elements lie back-to-back in the user
// buffer (no packing needed).
func (d Datatype) contiguous() bool {
	if d.isIndexed() {
		return false
	}
	return !d.derived || d.stride == d.blocklen
}

func (d Datatype) String() string {
	if d.structMembers > 0 {
		return fmt.Sprintf("struct<%v>(%d members)", d.base, d.structMembers)
	}
	if d.isIndexed() {
		return fmt.Sprintf("indexed<%v>(%d blocks)", d.base, len(d.idxLens))
	}
	if !d.derived {
		return d.base.String()
	}
	return fmt.Sprintf("vector<%v>(count=%d, blocklen=%d, stride=%d)", d.base, d.count, d.blocklen, d.stride)
}
