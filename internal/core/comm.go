package core

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/nativempi"
)

// Comm wraps a native communicator behind the Java-bindings API. All
// message methods accept either a jvm.Array or a *jvm.ByteBuffer as
// their buffer, dispatching on the dynamic type exactly as the Java
// bindings overload on Object.
type Comm struct {
	mpi    *MPI
	native *nativempi.Comm
}

// Rank returns the calling process's rank in this communicator.
func (c *Comm) Rank() int { return c.native.Rank() }

// Size returns the number of ranks in this communicator.
func (c *Comm) Size() int { return c.native.Size() }

// MPI returns the owning bindings environment.
func (c *Comm) MPI() *MPI { return c.mpi }

// Status describes a completed receive.
type Status struct {
	// Source is the sender's rank in this communicator.
	Source int
	// Tag is the matched tag.
	Tag int
	// Bytes is the wire payload length.
	Bytes int
}

// Count returns the number of complete dt elements received
// (MPI_Get_count). Bytes is the wire payload size, which for a derived
// datatype counts only the bytes actually transferred — never the
// holes of the user-buffer layout — so the result is in whole derived
// elements, not base elements. A payload that ends mid-element is an
// error (the MPI_UNDEFINED case); use Elements for the partial count.
func (s Status) Count(dt Datatype) (int, error) {
	sz := dt.Size()
	if sz == 0 {
		if s.Bytes == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("%w: %d bytes with zero-size datatype %v", ErrCount, s.Bytes, dt)
	}
	if s.Bytes%sz != 0 {
		return 0, fmt.Errorf("%w: %d bytes is not a whole number of %v elements", ErrCount, s.Bytes, dt)
	}
	return s.Bytes / sz, nil
}

// Elements returns the number of base (primitive) elements received
// (MPI_Get_elements): the finer-grained count that remains defined
// when a transfer ends partway through a derived element.
func (s Status) Elements(dt Datatype) (int, error) {
	esz := dt.Kind().Size()
	if esz == 0 {
		if s.Bytes == 0 {
			return 0, nil
		}
		return 0, fmt.Errorf("%w: %d bytes with zero-size base kind %v", ErrCount, s.Bytes, dt.Kind())
	}
	if s.Bytes%esz != 0 {
		return 0, fmt.Errorf("%w: %d bytes is not a whole number of %v base elements", ErrCount, s.Bytes, dt.Kind())
	}
	return s.Bytes / esz, nil
}

func fromNative(st nativempi.Status) Status {
	return Status{Source: st.Source, Tag: st.Tag, Bytes: st.Bytes}
}

// Send performs a blocking send of count dt elements from buf.
func (c *Comm) Send(buf any, count int, dt Datatype, dst, tag int) error {
	return c.SendRange(buf, 0, count, dt, dst, tag)
}

// SendRange is MVAPICH2-J's offset extension (§IV-B): send count dt
// elements starting at base-element offset of the array (the mpiJava
// 1.2 offset argument), copying only the subset through the buffering
// layer. The Open MPI-J flavor, whose API dropped the offset argument,
// rejects non-zero offsets.
func (c *Comm) SendRange(buf any, offset, count int, dt Datatype, dst, tag int) error {
	if dst == ProcNull {
		return nil // MPI_PROC_NULL: completes without communicating
	}
	if offset != 0 && c.mpi.flavor == OpenMPIJ {
		return fmt.Errorf("%w: the Open MPI Java API has no offset argument", ErrUnsupported)
	}
	c.mpi.enterNative()
	if vec, vfree, ok, err := c.mpi.sendStageVec(buf, offset, count, dt); ok {
		if err != nil {
			return err
		}
		defer vfree()
		return c.native.SendVec(vec, dst, tag)
	}
	raw, free, err := c.mpi.sendStage(buf, offset, count, dt)
	if err != nil {
		return err
	}
	defer free()
	return c.native.Send(raw, dst, tag)
}

// Recv performs a blocking receive of up to count dt elements into buf.
func (c *Comm) Recv(buf any, count int, dt Datatype, src, tag int) (Status, error) {
	return c.RecvRange(buf, 0, count, dt, src, tag)
}

// RecvRange is the receive side of the offset extension.
func (c *Comm) RecvRange(buf any, offset, count int, dt Datatype, src, tag int) (Status, error) {
	if src == ProcNull {
		// MPI_PROC_NULL: an empty receive with source PROC_NULL.
		return Status{Source: ProcNull, Tag: tag}, nil
	}
	if offset != 0 && c.mpi.flavor == OpenMPIJ {
		return Status{}, fmt.Errorf("%w: the Open MPI Java API has no offset argument", ErrUnsupported)
	}
	c.mpi.enterNative()
	if vec, vfree, ok, err := c.mpi.recvStageVec(buf, offset, count, dt); ok {
		if err != nil {
			return Status{}, err
		}
		defer vfree()
		st, err := c.native.RecvVec(vec, src, tag)
		return fromNative(st), err
	}
	raw, finish, free, err := c.mpi.recvStage(buf, offset, count, dt)
	if err != nil {
		return Status{}, err
	}
	defer free()
	st, err := c.native.Recv(raw, src, tag)
	if err != nil {
		return fromNative(st), err
	}
	if err := finish(); err != nil {
		return fromNative(st), err
	}
	return fromNative(st), nil
}

// Isend starts a non-blocking send. Under the Open MPI-J flavor, Java
// arrays are rejected — the API gap that leaves the paper's bandwidth
// plots without an "Open MPI-J arrays" series.
func (c *Comm) Isend(buf any, count int, dt Datatype, dst, tag int) (*Request, error) {
	if _, isArray := buf.(jvm.Array); isArray && c.mpi.flavor == OpenMPIJ {
		return nil, fmt.Errorf("%w: Open MPI-J does not support Java arrays with non-blocking point-to-point", ErrUnsupported)
	}
	c.mpi.enterNative()
	if vec, vfree, ok, err := c.mpi.sendStageVec(buf, 0, count, dt); ok {
		if err != nil {
			return nil, err
		}
		req, err := c.native.IsendVec(vec, dst, tag)
		if err != nil {
			vfree()
			return nil, err
		}
		return &Request{mpi: c.mpi, native: req, free: vfree}, nil
	}
	raw, free, err := c.mpi.sendStage(buf, 0, count, dt)
	if err != nil {
		return nil, err
	}
	req, err := c.native.Isend(raw, dst, tag)
	if err != nil {
		free()
		return nil, err
	}
	return &Request{mpi: c.mpi, native: req, free: free}, nil
}

// Irecv starts a non-blocking receive, with the same Open MPI-J array
// restriction as Isend.
func (c *Comm) Irecv(buf any, count int, dt Datatype, src, tag int) (*Request, error) {
	if _, isArray := buf.(jvm.Array); isArray && c.mpi.flavor == OpenMPIJ {
		return nil, fmt.Errorf("%w: Open MPI-J does not support Java arrays with non-blocking point-to-point", ErrUnsupported)
	}
	c.mpi.enterNative()
	if vec, vfree, ok, err := c.mpi.recvStageVec(buf, 0, count, dt); ok {
		if err != nil {
			return nil, err
		}
		req, err := c.native.IrecvVec(vec, src, tag)
		if err != nil {
			vfree()
			return nil, err
		}
		return &Request{mpi: c.mpi, native: req, free: vfree}, nil
	}
	raw, finish, free, err := c.mpi.recvStage(buf, 0, count, dt)
	if err != nil {
		return nil, err
	}
	req, err := c.native.Irecv(raw, src, tag)
	if err != nil {
		free()
		return nil, err
	}
	return &Request{mpi: c.mpi, native: req, finish: finish, free: free}, nil
}

// Sendrecv exchanges messages without deadlock.
func (c *Comm) Sendrecv(sendBuf any, sendCount int, sendType Datatype, dst, sendTag int,
	recvBuf any, recvCount int, recvType Datatype, src, recvTag int) (Status, error) {
	c.mpi.enterNative()
	svec, svfree, sok, err := c.mpi.sendStageVec(sendBuf, 0, sendCount, sendType)
	if sok {
		if err != nil {
			return Status{}, err
		}
		defer svfree()
	}
	rvec, rvfree, rok, err := c.mpi.recvStageVec(recvBuf, 0, recvCount, recvType)
	if rok {
		if err != nil {
			return Status{}, err
		}
		defer rvfree()
	}
	if !sok && !rok {
		sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount, sendType)
		if err != nil {
			return Status{}, err
		}
		defer sfree()
		rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount, recvType)
		if err != nil {
			return Status{}, err
		}
		defer rfree()
		st, err := c.native.Sendrecv(sraw, dst, sendTag, rraw, src, recvTag)
		if err != nil {
			return fromNative(st), err
		}
		return fromNative(st), finish()
	}
	// At least one side takes the iovec datapath: replicate the native
	// Sendrecv sequence (receive posted first, then the send, then both
	// waits) with the staging each side needs.
	finish := func() error { return nil }
	var rreq *nativempi.Request
	if rok {
		rreq, err = c.native.IrecvVec(rvec, src, recvTag)
	} else {
		var rraw []byte
		var rfree func()
		rraw, finish, rfree, err = c.mpi.recvStage(recvBuf, 0, recvCount, recvType)
		if err != nil {
			return Status{}, err
		}
		defer rfree()
		rreq, err = c.native.Irecv(rraw, src, recvTag)
	}
	if err != nil {
		return Status{}, err
	}
	var sreq *nativempi.Request
	if sok {
		sreq, err = c.native.IsendVec(svec, dst, sendTag)
	} else {
		sraw, sfree, serr := c.mpi.sendStage(sendBuf, 0, sendCount, sendType)
		if serr != nil {
			return Status{}, serr
		}
		defer sfree()
		sreq, err = c.native.Isend(sraw, dst, sendTag)
	}
	if err != nil {
		return Status{}, err
	}
	if _, err := sreq.Wait(); err != nil {
		return Status{}, err
	}
	st, err := rreq.Wait()
	if err != nil {
		return fromNative(st), err
	}
	return fromNative(st), finish()
}

// Probe blocks until a matching message can be received and returns
// its status.
func (c *Comm) Probe(src, tag int) (Status, error) {
	c.mpi.enterNative()
	st, err := c.native.Probe(src, tag)
	return fromNative(st), err
}

// Iprobe polls for a matching message.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	c.mpi.enterNative()
	st, ok, err := c.native.Iprobe(src, tag)
	return fromNative(st), ok, err
}

// Dup creates a congruent communicator (MPI_Comm_dup).
func (c *Comm) Dup() (*Comm, error) {
	c.mpi.enterNative()
	n, err := c.native.Dup()
	if err != nil {
		return nil, err
	}
	return &Comm{mpi: c.mpi, native: n}, nil
}

// Split partitions the communicator (MPI_Comm_split). Color
// nativempi.Undefined (-1) yields a nil communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	c.mpi.enterNative()
	n, err := c.native.Split(color, key)
	if err != nil || n == nil {
		return nil, err
	}
	return &Comm{mpi: c.mpi, native: n}, nil
}

// SplitType partitions by shared-memory locality
// (MPI_Comm_split_type): one subcommunicator per node.
func (c *Comm) SplitType(key int) (*Comm, error) {
	c.mpi.enterNative()
	n, err := c.native.SplitType(key)
	if err != nil || n == nil {
		return nil, err
	}
	return &Comm{mpi: c.mpi, native: n}, nil
}

// Create builds a communicator from a group (MPI_Comm_create).
// Collective over c; callers outside the group receive nil.
func (c *Comm) Create(g *Group) (*Comm, error) {
	c.mpi.enterNative()
	n, err := c.native.CreateFromGroup(g.ranks)
	if err != nil || n == nil {
		return nil, err
	}
	return &Comm{mpi: c.mpi, native: n}, nil
}

// Group returns the communicator's group (MPI_Comm_group): ranks are
// expressed as this communicator's ranks, in order.
func (c *Comm) Group() *Group {
	ranks := make([]int, c.Size())
	for i := range ranks {
		ranks[i] = i
	}
	return &Group{ranks: ranks}
}

// Request is a non-blocking operation handle.
type Request struct {
	mpi    *MPI
	native *nativempi.Request
	finish func() error
	free   func()
	waited bool
	status Status
	err    error
}

// Wait blocks until the operation completes, unpacks any staged
// receive, and releases staging resources.
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, nativempi.ErrRequest
	}
	if r.waited {
		return r.status, r.err
	}
	r.mpi.enterNative()
	return r.waitNoCharge()
}

// waitNoCharge completes the request without charging a bindings call;
// Waitall charges once for the whole batch, as the real waitAll is a
// single JNI downcall.
func (r *Request) waitNoCharge() (Status, error) {
	st, err := r.native.Wait()
	if err == nil && r.finish != nil {
		err = r.finish()
	}
	if r.free != nil {
		r.free()
	}
	r.finish, r.free = nil, nil
	r.waited = true
	r.status, r.err = fromNative(st), err
	return r.status, r.err
}

// Test polls for completion; on completion it behaves like Wait.
func (r *Request) Test() (Status, bool, error) {
	if r == nil {
		return Status{}, false, nativempi.ErrRequest
	}
	if r.waited {
		return r.status, true, r.err
	}
	r.mpi.enterNative()
	_, ok, _ := r.native.Test()
	if !ok {
		return Status{}, false, nil
	}
	st, err := r.waitNoCharge()
	return st, true, err
}

// Waitany blocks until at least one request completes (MPI_Waitany)
// and returns its index and status, unpacking that request's staged
// receive. Nil or already-completed entries are inactive and skipped;
// with no active requests the index is -1 (MPI_UNDEFINED).
func Waitany(reqs []*Request) (int, Status, error) {
	natives := make([]*nativempi.Request, len(reqs))
	charged := false
	for i, r := range reqs {
		if r == nil || r.waited {
			continue
		}
		if !charged {
			r.mpi.enterNative()
			charged = true
		}
		natives[i] = r.native
	}
	idx, _, err := nativempi.Waitany(natives)
	if idx < 0 {
		return -1, Status{}, err
	}
	st, err := reqs[idx].waitNoCharge()
	return idx, st, err
}

// Waitall completes every request as one bindings call (the Java
// waitAll is a single JNI downcall over the request array), returning
// the first error.
func Waitall(reqs []*Request) error {
	var first error
	charged := false
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if !charged {
			r.mpi.enterNative()
			charged = true
		}
		var err error
		if r.waited {
			err = r.err
		} else {
			_, err = r.waitNoCharge()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
