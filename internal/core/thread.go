package core

import "mv2j/internal/nativempi"

// Threading levels at the bindings layer. MVAPICH2-J inherits the
// native library's MPI_Init_thread contract: the job asks for a level
// and the library grants the minimum of the request and what it was
// built with. The constants alias the native runtime's so profiles
// and bindings code share one vocabulary.
type ThreadLevel = nativempi.ThreadLevel

const (
	ThreadSingle     = nativempi.ThreadSingle
	ThreadFunneled   = nativempi.ThreadFunneled
	ThreadSerialized = nativempi.ThreadSerialized
	ThreadMultiple   = nativempi.ThreadMultiple
)

// InitThread is MPI_Init_thread: request a threading level, receive
// the granted one (min of the request and the library's built level).
// Call before RunThreads; without it the rank is MPI_THREAD_SINGLE.
// Like every bindings call it charges one JNI crossing.
func (m *MPI) InitThread(required ThreadLevel) ThreadLevel {
	m.enterNative()
	return m.proc.InitThread(required)
}

// ThreadLevel reports the granted level (ThreadSingle if InitThread
// was never called).
func (m *MPI) ThreadLevel() ThreadLevel { return m.proc.ThreadLevelProvided() }

// RunThreads forks n simulated application threads on this rank and
// runs fn on each (tid 0..n-1), returning when all have finished —
// the bindings-level face of the native runtime's cooperative thread
// scheduler. Threads multiplex the rank's virtual clock and hand off
// at deterministic points only, so a multithreaded rank produces
// byte-identical artifacts on every host run; it also means the
// shared MPI object needs no host-level locking inside fn. Under
// MPI_THREAD_MULTIPLE, concurrent calls pay the library's
// lock-arbitration cost; under FUNNELED/SERIALIZED the simulated
// runtime enforces the call-pattern rules by deterministic panic.
func (m *MPI) RunThreads(n int, fn func(tid int) error) error {
	return m.proc.RunThreads(n, fn)
}
