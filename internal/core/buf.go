package core

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/mpjbuf"
	"mv2j/internal/vtime"
)

// Buffer staging: every message call reduces its user buffer — a Java
// array or a ByteBuffer — to a contiguous native byte view, the way
// the real bindings do at the JNI boundary.
//
//   - direct ByteBuffer: GetDirectBufferAddress, zero copy;
//   - heap ByteBuffer: the JVM copy JNI imposes on movable objects;
//   - array under MVAPICH2-J: staged through the mpjbuf pool (Fig. 3);
//   - array under Open MPI-J: Get/Release<Type>ArrayElements, which
//     copies the WHOLE array in each direction.
//
// offset is in base elements of the array, exactly the mpiJava
// 1.2-style argument §IV-B argues for; the Open MPI-J flavor rejects
// non-zero offsets at the API layer, so only MVAPICH2-J paths ever see
// one.

func noop() {}

// Open MPI-J's per-call native scratch allocation costs (malloc at
// stage-in, free at release).
const (
	ompijScratchAlloc = 260 * vtime.Nanosecond
	ompijScratchFree  = 95 * vtime.Nanosecond
)

// arrayNeed returns the number of base elements a (offset, count, dt)
// access touches.
func arrayNeed(offset, count int, dt Datatype) int {
	return offset + count*dt.Extent()
}

// packInto writes (offset, count, dt) elements of arr into b.
// Committed derived types stream their coalesced run list through the
// typed pack engine (mpjbuf.WriteRuns) — one bulk transfer per run;
// legacy derived types walk the per-block map.
func packInto(b *mpjbuf.Buffer, arr jvm.Array, offset, count int, dt Datatype) error {
	if dt.contiguous() {
		return b.Write(arr, offset, count*dt.baseElems())
	}
	if pr := dt.packRuns(); pr != nil {
		for e := 0; e < count; e++ {
			if err := b.WriteRuns(arr, offset+e*dt.Extent(), pr); err != nil {
				return err
			}
		}
		return nil
	}
	for e := 0; e < count; e++ {
		elemBase := offset + e*dt.Extent()
		if err := dt.blocks(func(displ, length int) error {
			return b.Write(arr, elemBase+displ, length)
		}); err != nil {
			return err
		}
	}
	return nil
}

// unpackFrom reads count dt elements out of b into arr at offset,
// mirroring packInto's typed-engine fast path.
func unpackFrom(b *mpjbuf.Buffer, arr jvm.Array, offset, count int, dt Datatype) error {
	if dt.contiguous() {
		return b.Read(arr, offset, count*dt.baseElems())
	}
	if pr := dt.packRuns(); pr != nil {
		for e := 0; e < count; e++ {
			if err := b.ReadRuns(arr, offset+e*dt.Extent(), pr); err != nil {
				return err
			}
		}
		return nil
	}
	for e := 0; e < count; e++ {
		elemBase := offset + e*dt.Extent()
		if err := dt.blocks(func(displ, length int) error {
			return b.Read(arr, elemBase+displ, length)
		}); err != nil {
			return err
		}
	}
	return nil
}

// packBytes/unpackBytes are the native-side equivalents used by the
// Open MPI-J array path, operating on the JNI array copy.
func packBytes(dst, elems []byte, offset, count int, dt Datatype) {
	esz := dt.base.Size()
	base := offset * esz
	if dt.contiguous() {
		copy(dst, elems[base:base+count*dt.Size()])
		return
	}
	pos := 0
	for e := 0; e < count; e++ {
		elemBase := base + e*dt.Extent()*esz
		_ = dt.blocks(func(displ, length int) error {
			n := length * esz
			copy(dst[pos:pos+n], elems[elemBase+displ*esz:])
			pos += n
			return nil
		})
	}
}

func unpackBytes(elems, src []byte, offset, count int, dt Datatype) {
	esz := dt.base.Size()
	base := offset * esz
	if dt.contiguous() {
		copy(elems[base:base+count*dt.Size()], src)
		return
	}
	pos := 0
	for e := 0; e < count; e++ {
		elemBase := base + e*dt.Extent()*esz
		_ = dt.blocks(func(displ, length int) error {
			n := length * esz
			copy(elems[elemBase+displ*esz:elemBase+displ*esz+n], src[pos:pos+n])
			pos += n
			return nil
		})
	}
}

// sendStageImpl produces the contiguous native view of a send buffer
// plus a release function to run once the payload is no longer needed.
// Callers go through sendStage (observe.go), which adds the copy-in
// trace span.
func (m *MPI) sendStageImpl(buf any, offset, count int, dt Datatype) (raw []byte, free func(), err error) {
	dt.checkUsable("send")
	nbytes := count * dt.Size()
	switch b := buf.(type) {
	case jvm.Array:
		if b.Kind() != dt.Kind() {
			return nil, nil, fmt.Errorf("%w: %v array with %v datatype", ErrBufferType, b.Kind(), dt)
		}
		if err := checkCount(arrayNeed(offset, count, dt), b.Len(), "send"); err != nil {
			return nil, nil, err
		}
		if m.flavor == OpenMPIJ {
			// The Open MPI bindings marshal the message region into a
			// malloc'd native scratch buffer (Get<Type>ArrayRegion) —
			// a fresh allocation per call, which is precisely the cost
			// MVAPICH2-J's buffer pool exists to avoid.
			need := arrayNeed(offset, count, dt) - offset
			region := make([]byte, need*dt.base.Size())
			m.machine.Charge(ompijScratchAlloc)
			m.env.GetArrayRegion(b, offset, need, region)
			m.proc.CountHostCopy(len(region))
			if dt.contiguous() {
				return region[:nbytes], func() { m.machine.Charge(ompijScratchFree) }, nil
			}
			packed := make([]byte, nbytes)
			packBytes(packed, region, 0, count, dt)
			m.machine.ChargeBulk(nbytes)
			m.proc.CountHostCopy(nbytes)
			return packed, func() { m.machine.Charge(ompijScratchFree) }, nil
		}
		// MVAPICH2-J: stage through the buffering layer. Zero-byte
		// messages need no staging (and the pool rejects empty
		// requests).
		if nbytes == 0 {
			return nil, noop, nil
		}
		stage, err := m.stagePool().Get(nbytes)
		if err != nil {
			return nil, nil, err
		}
		if err := packInto(stage, b, offset, count, dt); err != nil {
			stage.Free()
			return nil, nil, err
		}
		if err := stage.Commit(); err != nil {
			stage.Free()
			return nil, nil, err
		}
		m.proc.CountHostCopy(nbytes)
		return stage.Raw(), stage.Free, nil

	case *jvm.ByteBuffer:
		if dt.IsDerived() {
			return nil, nil, fmt.Errorf("%w: derived datatypes require the buffering layer (use a Java array)", ErrUnsupported)
		}
		start := b.Position() + offset*dt.Size()
		if start+nbytes > b.Limit() {
			return nil, nil, fmt.Errorf("%w: %d bytes at position %d exceed buffer limit %d",
				ErrCount, nbytes, start, b.Limit())
		}
		if b.IsDirect() {
			// Direct pass-through: the send path hands the runtime a
			// slice aliasing the buffer's off-heap storage — no mpjbuf
			// bounce, no host copy, and (matching real JNI, where
			// GetDirectBufferAddress is a pointer fetch) no virtual
			// charge either. This is the host half of the zero-copy
			// datapath: with rendezvous borrowing downstream
			// (nativempi), a large direct-buffer send moves exactly one
			// host memcpy, at the receiver. See DESIGN.md §"Copy
			// elision vs. the virtual-time invariant".
			view := m.env.GetDirectBufferAddress(b)
			return view[start : start+nbytes], noop, nil
		}
		// Heap buffer: the JVM must copy it for native code.
		tmp := make([]byte, nbytes)
		copy(tmp, b.RawBytes()[start:start+nbytes])
		m.machine.ChargeBulk(nbytes)
		m.proc.CountHostCopy(nbytes)
		return tmp, noop, nil

	case nil:
		if nbytes == 0 {
			return nil, noop, nil
		}
		return nil, nil, fmt.Errorf("%w: nil buffer with %d bytes", ErrBufferType, nbytes)
	default:
		return nil, nil, fmt.Errorf("%w: got %T", ErrBufferType, buf)
	}
}

// recvStageImpl produces the native landing area for a receive, a
// finish function that unpacks into the user buffer once data has
// landed, and a free function for the staging resources. Callers go
// through recvStage (observe.go), which adds the copy-out trace span.
func (m *MPI) recvStageImpl(buf any, offset, count int, dt Datatype) (raw []byte, finish func() error, free func(), err error) {
	dt.checkUsable("recv")
	nbytes := count * dt.Size()
	nofinish := func() error { return nil }
	switch b := buf.(type) {
	case jvm.Array:
		if b.Kind() != dt.Kind() {
			return nil, nil, nil, fmt.Errorf("%w: %v array with %v datatype", ErrBufferType, b.Kind(), dt)
		}
		if err := checkCount(arrayNeed(offset, count, dt), b.Len(), "recv"); err != nil {
			return nil, nil, nil, err
		}
		if m.flavor == OpenMPIJ {
			// Land in a malloc'd scratch, then Set<Type>ArrayRegion
			// back into the Java array.
			need := arrayNeed(offset, count, dt) - offset
			region := make([]byte, need*dt.base.Size())
			m.machine.Charge(ompijScratchAlloc)
			if dt.contiguous() {
				return region[:nbytes], func() error {
						m.env.SetArrayRegion(b, offset, region)
						m.proc.CountHostCopy(len(region))
						return nil
					},
					func() { m.machine.Charge(ompijScratchFree) }, nil
			}
			// Strided landing: read the current region out first so the
			// gaps between blocks survive the write-back.
			m.env.GetArrayRegion(b, offset, need, region)
			m.proc.CountHostCopy(len(region))
			tmp := make([]byte, nbytes)
			return tmp, func() error {
					unpackBytes(region, tmp, 0, count, dt)
					m.machine.ChargeBulk(nbytes)
					m.env.SetArrayRegion(b, offset, region)
					m.proc.CountHostCopy(nbytes + len(region))
					return nil
				},
				func() { m.machine.Charge(ompijScratchFree) }, nil
		}
		if nbytes == 0 {
			return nil, nofinish, noop, nil
		}
		stage, err := m.stagePool().Get(nbytes)
		if err != nil {
			return nil, nil, nil, err
		}
		return stage.RawCapacity()[:nbytes], func() error {
			if err := stage.SetIncoming(nbytes); err != nil {
				return err
			}
			if err := unpackFrom(stage, b, offset, count, dt); err != nil {
				return err
			}
			m.proc.CountHostCopy(nbytes)
			return nil
		}, stage.Free, nil

	case *jvm.ByteBuffer:
		if dt.IsDerived() {
			return nil, nil, nil, fmt.Errorf("%w: derived datatypes require the buffering layer (use a Java array)", ErrUnsupported)
		}
		start := b.Position() + offset*dt.Size()
		if start+nbytes > b.Limit() {
			return nil, nil, nil, fmt.Errorf("%w: %d bytes at position %d exceed buffer limit %d",
				ErrCount, nbytes, start, b.Limit())
		}
		if b.IsDirect() {
			view := m.env.GetDirectBufferAddress(b)
			return view[start : start+nbytes], nofinish, noop, nil
		}
		tmp := make([]byte, nbytes)
		return tmp, func() error {
			copy(b.RawBytes()[start:start+nbytes], tmp)
			m.machine.ChargeBulk(nbytes)
			m.proc.CountHostCopy(nbytes)
			return nil
		}, noop, nil

	case nil:
		if nbytes == 0 {
			return nil, nofinish, noop, nil
		}
		return nil, nil, nil, fmt.Errorf("%w: nil buffer with %d bytes", ErrBufferType, nbytes)
	default:
		return nil, nil, nil, fmt.Errorf("%w: got %T", ErrBufferType, buf)
	}
}
