package core

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/nativempi"
)

// One-sided communication at the bindings level. A window must be
// backed by a DIRECT ByteBuffer: the native library keeps a raw
// pointer to the exposed memory for the lifetime of the window, which
// is exactly what movable heap objects (arrays, heap buffers) cannot
// provide — the paper's off-heap argument, sharpened: for RMA there is
// no copy-based fallback at all.
type Win struct {
	mpi    *MPI
	native *nativempi.Win
	buf    *jvm.ByteBuffer
	freed  bool
}

// WinCreate exposes the direct buffer's [position, limit) region as an
// RMA window. Collective over the communicator.
func (c *Comm) WinCreate(buf *jvm.ByteBuffer) (*Win, error) {
	defer c.mpi.beginColl()()
	var region []byte
	if buf != nil {
		if !buf.IsDirect() {
			return nil, fmt.Errorf("%w: RMA windows require a direct ByteBuffer (movable heap memory cannot be exposed)", ErrUnsupported)
		}
		view := c.mpi.env.GetDirectBufferAddress(buf)
		region = view[buf.Position():buf.Limit()]
	}
	nw, err := c.native.WinCreate(region)
	if err != nil {
		return nil, err
	}
	return &Win{mpi: c.mpi, native: nw, buf: buf}, nil
}

// Buffer returns the backing buffer.
func (w *Win) Buffer() *jvm.ByteBuffer { return w.buf }

// stageOrigin resolves an origin buffer for Put/Get/Accumulate. Origin
// buffers may be arrays (they are copied/staged per operation, like
// sends); only the WINDOW memory must be direct.
func (w *Win) stageOrigin(buf any, count int, dt Datatype) ([]byte, func(), error) {
	return w.mpi.sendStage(buf, 0, count, dt)
}

// Put transfers count dt elements from origin into the target's
// window at element offset targetOff. Completes at the next Fence.
func (w *Win) Put(origin any, count int, dt Datatype, target, targetOff int) error {
	w.mpi.enterNative()
	raw, free, err := w.stageOrigin(origin, count, dt)
	if err != nil {
		return err
	}
	defer free()
	return w.native.Put(raw, target, targetOff*dt.Size())
}

// Accumulate combines count dt elements into the target's window.
func (w *Win) Accumulate(origin any, count int, dt Datatype, op Op, target, targetOff int) error {
	w.mpi.enterNative()
	raw, free, err := w.stageOrigin(origin, count, dt)
	if err != nil {
		return err
	}
	defer free()
	return w.native.Accumulate(raw, target, targetOff*dt.Size(), dt.Kind(), op)
}

// Get fetches count dt elements from the target's window into origin.
// Origin must be a direct ByteBuffer: the fetched bytes land after the
// Fence, with no bindings-level unpack hook in between.
func (w *Win) Get(origin any, count int, dt Datatype, target, targetOff int) error {
	w.mpi.enterNative()
	bb, ok := origin.(*jvm.ByteBuffer)
	if !ok || !bb.IsDirect() {
		return fmt.Errorf("%w: RMA Get requires a direct ByteBuffer origin", ErrUnsupported)
	}
	if dt.IsDerived() {
		return fmt.Errorf("%w: derived datatypes in RMA", ErrUnsupported)
	}
	nbytes := count * dt.Size()
	view := w.mpi.env.GetDirectBufferAddress(bb)
	start := bb.Position()
	if start+nbytes > bb.Limit() {
		return fmt.Errorf("%w: get of %d bytes exceeds origin buffer", ErrCount, nbytes)
	}
	return w.native.Get(view[start:start+nbytes], target, targetOff*dt.Size())
}

// Fence closes the access/exposure epoch (MPI_Win_fence).
func (w *Win) Fence() error {
	defer w.mpi.beginColl()()
	return w.native.Fence()
}

// Free releases the window. Collective.
func (w *Win) Free() error {
	if w.freed {
		return fmt.Errorf("core: window already freed")
	}
	w.freed = true
	defer w.mpi.beginColl()()
	return w.native.Free()
}
