package core

import (
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestIntercommBindings(t *testing.T) {
	err := Run(mv2Config(2, 2), func(m *MPI) error {
		world := m.CommWorld()
		half := world.Size() / 2
		color := 0
		if world.Rank() >= half {
			color = 1
		}
		local, err := world.Split(color, 0)
		if err != nil {
			return err
		}
		remoteLeader := half
		if color == 1 {
			remoteLeader = 0
		}
		ic, err := local.CreateIntercomm(0, world, remoteLeader, 50)
		if err != nil {
			return err
		}
		if ic.LocalSize() != half || ic.RemoteSize() != half {
			return fmt.Errorf("shape %d/%d", ic.LocalSize(), ic.RemoteSize())
		}

		// Exchange Java arrays across the groups.
		me := ic.Rank()
		out := m.JVM().MustArray(jvm.Int, 8)
		in := m.JVM().MustArray(jvm.Int, 8)
		fillArray(out, int64(world.Rank()*100))
		if color == 0 {
			if err := ic.Send(out, 8, INT, me, 1); err != nil {
				return err
			}
			if _, err := ic.Recv(in, 8, INT, me, 1); err != nil {
				return err
			}
		} else {
			if _, err := ic.Recv(in, 8, INT, me, 1); err != nil {
				return err
			}
			if err := ic.Send(out, 8, INT, me, 1); err != nil {
				return err
			}
		}
		peer := (world.Rank() + half) % world.Size()
		if err := checkArray(in, int64(peer*100)); err != nil {
			return fmt.Errorf("rank %d: %w", world.Rank(), err)
		}

		// Merge and run a collective over everyone.
		merged, err := ic.Merge(color == 1)
		if err != nil {
			return err
		}
		send := m.JVM().MustArray(jvm.Long, 1)
		recv := m.JVM().MustArray(jvm.Long, 1)
		send.SetInt(0, 1)
		if err := merged.Allreduce(send, recv, 1, LONG, SUM); err != nil {
			return err
		}
		if recv.Int(0) != int64(world.Size()) {
			return fmt.Errorf("merged allreduce = %d", recv.Int(0))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
