package core

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/nativempi"
)

// Non-blocking collectives — the MPI 3.0 surface whose absence from
// the older Java APIs motivated Open MPI-J's new API, and an extension
// beyond the blocking subset the MVAPICH2-J prototype ships (§I lists
// blocking collectives only; this is the natural next step the paper's
// conclusion points at). The schedule progresses inside Test/Wait
// (software progress), so compute placed between initiation and
// completion genuinely overlaps communication in virtual time.
//
// As with Isend/Irecv, the Open MPI-J personality supports these only
// for ByteBuffers.

// CollRequest is the bindings-level handle for a non-blocking
// collective.
type CollRequest struct {
	mpi    *MPI
	native *nativempi.CollRequest
	finish func() error
	free   func()
	waited bool
	err    error
}

// Wait blocks until the collective completes, then unpacks staged
// receives and releases staging resources.
func (r *CollRequest) Wait() error {
	if r == nil {
		return nativempi.ErrRequest
	}
	if r.waited {
		return r.err
	}
	r.mpi.enterNative()
	err := r.native.Wait()
	if err == nil && r.finish != nil {
		err = r.finish()
	}
	if r.free != nil {
		r.free()
	}
	r.finish, r.free = nil, nil
	r.waited = true
	r.err = err
	return err
}

// Test progresses the schedule without blocking.
func (r *CollRequest) Test() (bool, error) {
	if r == nil {
		return false, nativempi.ErrRequest
	}
	if r.waited {
		return true, r.err
	}
	r.mpi.enterNative()
	done, _ := r.native.Test()
	if !done {
		return false, nil
	}
	// Completed: run the Wait path without re-charging the call.
	err := r.native.Wait()
	if err == nil && r.finish != nil {
		err = r.finish()
	}
	if r.free != nil {
		r.free()
	}
	r.finish, r.free = nil, nil
	r.waited = true
	r.err = err
	return true, err
}

// checkNBBuf enforces the Open MPI-J array restriction on the
// non-blocking surface.
func (c *Comm) checkNBBuf(bufs ...any) error {
	if c.mpi.flavor != OpenMPIJ {
		return nil
	}
	for _, b := range bufs {
		if _, isArray := b.(jvm.Array); isArray {
			return fmt.Errorf("%w: Open MPI-J does not support Java arrays with non-blocking operations", ErrUnsupported)
		}
	}
	return nil
}

// Ibcast starts a non-blocking broadcast.
func (c *Comm) Ibcast(buf any, count int, dt Datatype, root int) (*CollRequest, error) {
	if err := c.checkNBBuf(buf); err != nil {
		return nil, err
	}
	done := c.mpi.beginColl()
	defer done()
	if c.Rank() == root {
		raw, free, err := c.mpi.sendStage(buf, 0, count, dt)
		if err != nil {
			return nil, err
		}
		req, err := c.native.Ibcast(raw, root)
		if err != nil {
			free()
			return nil, err
		}
		return &CollRequest{mpi: c.mpi, native: req, free: free}, nil
	}
	raw, finish, free, err := c.mpi.recvStage(buf, 0, count, dt)
	if err != nil {
		return nil, err
	}
	req, err := c.native.Ibcast(raw, root)
	if err != nil {
		free()
		return nil, err
	}
	return &CollRequest{mpi: c.mpi, native: req, finish: finish, free: free}, nil
}

// Iallreduce starts a non-blocking allreduce.
func (c *Comm) Iallreduce(sendBuf, recvBuf any, count int, dt Datatype, op Op) (*CollRequest, error) {
	if err := c.checkNBBuf(sendBuf, recvBuf); err != nil {
		return nil, err
	}
	done := c.mpi.beginColl()
	defer done()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, count, dt)
	if err != nil {
		return nil, err
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, count, dt)
	if err != nil {
		sfree()
		return nil, err
	}
	req, err := c.native.Iallreduce(sraw, rraw, dt.Kind(), op)
	if err != nil {
		sfree()
		rfree()
		return nil, err
	}
	return &CollRequest{mpi: c.mpi, native: req, finish: finish, free: func() { sfree(); rfree() }}, nil
}

// Ireduce starts a non-blocking reduce toward root.
func (c *Comm) Ireduce(sendBuf, recvBuf any, count int, dt Datatype, op Op, root int) (*CollRequest, error) {
	if err := c.checkNBBuf(sendBuf, recvBuf); err != nil {
		return nil, err
	}
	done := c.mpi.beginColl()
	defer done()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, count, dt)
	if err != nil {
		return nil, err
	}
	var rraw []byte
	finish := func() error { return nil }
	rfree := func() {}
	if c.Rank() == root {
		rraw, finish, rfree, err = c.mpi.recvStage(recvBuf, 0, count, dt)
		if err != nil {
			sfree()
			return nil, err
		}
	}
	req, err := c.native.Ireduce(sraw, rraw, dt.Kind(), op, root)
	if err != nil {
		sfree()
		rfree()
		return nil, err
	}
	return &CollRequest{mpi: c.mpi, native: req, finish: finish, free: func() { sfree(); rfree() }}, nil
}

// Iallgather starts a non-blocking allgather.
func (c *Comm) Iallgather(sendBuf any, sendCount int, recvBuf any, recvCount int, dt Datatype) (*CollRequest, error) {
	if err := c.checkNBBuf(sendBuf, recvBuf); err != nil {
		return nil, err
	}
	done := c.mpi.beginColl()
	defer done()
	if sendCount != recvCount {
		return nil, fmt.Errorf("%w: iallgather send count %d != recv count %d", ErrCount, sendCount, recvCount)
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount, dt)
	if err != nil {
		return nil, err
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount*c.Size(), dt)
	if err != nil {
		sfree()
		return nil, err
	}
	req, err := c.native.Iallgather(sraw, rraw)
	if err != nil {
		sfree()
		rfree()
		return nil, err
	}
	return &CollRequest{mpi: c.mpi, native: req, finish: finish, free: func() { sfree(); rfree() }}, nil
}

// Ibarrier starts a non-blocking barrier.
func (c *Comm) Ibarrier() (*CollRequest, error) {
	done := c.mpi.beginColl()
	defer done()
	req, err := c.native.Ibarrier()
	if err != nil {
		return nil, err
	}
	return &CollRequest{mpi: c.mpi, native: req}, nil
}

// WaitallColl completes a batch of non-blocking collectives as one
// bindings call.
func WaitallColl(reqs []*CollRequest) error {
	var first error
	charged := false
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if !charged {
			r.mpi.enterNative()
			charged = true
		}
		var err error
		if r.waited {
			err = r.err
		} else {
			err = r.native.Wait()
			if err == nil && r.finish != nil {
				err = r.finish()
			}
			if r.free != nil {
				r.free()
			}
			r.finish, r.free = nil, nil
			r.waited = true
			r.err = err
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}
