package core_test

import (
	"fmt"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/profile"
)

// ExampleRun shows the minimal SPMD program: a ping-pong between two
// ranks using a direct ByteBuffer (the zero-copy path) and a Java
// array (the buffering-layer path).
func ExampleRun() {
	var mu sync.Mutex
	cfg := core.Config{
		Nodes:  2,
		PPN:    1,
		Lib:    profile.MVAPICH2(),
		Flavor: core.MVAPICH2J,
	}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		if world.Rank() == 0 {
			buf := mpi.JVM().MustAllocateDirect(8)
			buf.SetOrder(jvm.LittleEndian)
			buf.PutIntKindAt(jvm.Long, 0, 12345)
			return world.Send(buf, 8, core.BYTE, 1, 0)
		}
		arr := mpi.JVM().MustArray(jvm.Byte, 8)
		if _, err := world.Recv(arr, 8, core.BYTE, 0, 0); err != nil {
			return err
		}
		raw := make([]byte, 8)
		arr.CopyOutBytes(0, raw)
		v := int64(0)
		for i := 7; i >= 0; i-- {
			v = v<<8 | int64(raw[i])
		}
		mu.Lock()
		fmt.Println("received:", v)
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
	}
	// Output: received: 12345
}

// ExampleComm_Allreduce shows a collective over Java long arrays.
func ExampleComm_Allreduce() {
	var mu sync.Mutex
	results := map[int]int64{}
	cfg := core.Config{Nodes: 1, PPN: 4, Lib: profile.MVAPICH2()}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		send := mpi.JVM().MustArray(jvm.Long, 1)
		recv := mpi.JVM().MustArray(jvm.Long, 1)
		send.SetInt(0, int64(world.Rank()+1))
		if err := world.Allreduce(send, recv, 1, core.LONG, core.SUM); err != nil {
			return err
		}
		mu.Lock()
		results[world.Rank()] = recv.Int(0)
		mu.Unlock()
		return nil
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("every rank sees:", results[0], results[1], results[2], results[3])
	// Output: every rank sees: 10 10 10 10
}

// ExampleComm_CreateCart shows a Cartesian grid with ProcNull-safe
// neighbour shifts.
func ExampleComm_CreateCart() {
	var mu sync.Mutex
	var edges int
	cfg := core.Config{Nodes: 1, PPN: 4, Lib: profile.MVAPICH2()}
	err := core.Run(cfg, func(mpi *core.MPI) error {
		world := mpi.CommWorld()
		cart, err := world.CreateCart([]int{2, 2}, []bool{false, false})
		if err != nil {
			return err
		}
		_, down, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		if down == core.ProcNull {
			mu.Lock()
			edges++ // bottom row: no down-neighbour
			mu.Unlock()
		}
		return cart.Barrier()
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("ranks on the bottom edge:", edges)
	// Output: ranks on the bottom edge: 2
}
