package core

import (
	"errors"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/nativempi"
)

func TestIbcastBindings(t *testing.T) {
	err := Run(mv2Config(2, 2), func(m *MPI) error {
		c := m.CommWorld()
		const n = 40
		arr := m.JVM().MustArray(jvm.Int, n)
		if c.Rank() == 1 {
			fillArray(arr, 55)
		}
		req, err := c.Ibcast(arr, n, INT, 1)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if err := checkArray(arr, 55); err != nil {
			return fmt.Errorf("rank %d: %w", c.Rank(), err)
		}
		// Idempotent re-wait.
		return req.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIallreduceBindings(t *testing.T) {
	err := Run(mv2Config(1, 4), func(m *MPI) error {
		c := m.CommWorld()
		const n = 8
		p := c.Size()
		send := m.JVM().MustArray(jvm.Long, n)
		recv := m.JVM().MustArray(jvm.Long, n)
		for i := 0; i < n; i++ {
			send.SetInt(i, int64(c.Rank()+i))
		}
		req, err := c.Iallreduce(send, recv, n, LONG, SUM)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			want := int64(p*i) + int64(p*(p-1)/2)
			if recv.Int(i) != want {
				return fmt.Errorf("iallreduce[%d] = %d, want %d", i, recv.Int(i), want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIreduceIallgatherIbarrierBindings(t *testing.T) {
	err := Run(mv2Config(2, 2), func(m *MPI) error {
		c := m.CommWorld()
		p := c.Size()

		// Ireduce to root 0 over direct buffers.
		sb := m.JVM().MustAllocateDirect(8)
		sb.SetOrder(jvm.LittleEndian)
		sb.PutIntKindAt(jvm.Long, 0, int64(c.Rank()+1))
		var rbAny any
		var rb *jvm.ByteBuffer
		if c.Rank() == 0 {
			rb = m.JVM().MustAllocateDirect(8)
			rb.SetOrder(jvm.LittleEndian)
			rbAny = rb
		}
		req, err := c.Ireduce(sb, rbAny, 1, LONG, SUM, 0)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			if got := rb.IntKindAt(jvm.Long, 0); got != int64(p*(p+1)/2) {
				return fmt.Errorf("ireduce = %d, want %d", got, p*(p+1)/2)
			}
		}

		// Iallgather arrays.
		send := m.JVM().MustArray(jvm.Int, 3)
		fillArray(send, int64(c.Rank()*7))
		recv := m.JVM().MustArray(jvm.Int, 3*p)
		agReq, err := c.Iallgather(send, 3, recv, 3, INT)
		if err != nil {
			return err
		}
		if err := agReq.Wait(); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			for i := 0; i < 3; i++ {
				if got := recv.Int(r*3 + i); got != int64(r*7+i) {
					return fmt.Errorf("iallgather[%d][%d] = %d", r, i, got)
				}
			}
		}

		// Ibarrier.
		bReq, err := c.Ibarrier()
		if err != nil {
			return err
		}
		return bReq.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallCollBindings(t *testing.T) {
	err := Run(mv2Config(1, 4), func(m *MPI) error {
		c := m.CommWorld()
		var reqs []*CollRequest
		bufs := make([]jvm.Array, 4)
		for k := 0; k < 4; k++ {
			bufs[k] = m.JVM().MustArray(jvm.Int, 16)
			if c.Rank() == k {
				fillArray(bufs[k], int64(k*100))
			}
			req, err := c.Ibcast(bufs[k], 16, INT, k)
			if err != nil {
				return err
			}
			reqs = append(reqs, req)
		}
		reqs = append(reqs, nil) // nil entries are skipped
		if err := WaitallColl(reqs); err != nil {
			return err
		}
		for k := 0; k < 4; k++ {
			if err := checkArray(bufs[k], int64(k*100)); err != nil {
				return fmt.Errorf("bcast %d: %w", k, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOpenMPIJNonBlockingCollectiveArrayGap(t *testing.T) {
	err := Run(ompiConfig(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 4)
		if _, err := c.Ibcast(arr, 4, INT, 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("Ibcast(array) under OpenMPI-J: %v", err)
		}
		// Direct buffers are fine.
		buf := m.JVM().MustAllocateDirect(16)
		req, err := c.Ibcast(buf, 16, BYTE, 0)
		if err != nil {
			return err
		}
		return req.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollRequestTestBindings(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustAllocateDirect(64)
		req, err := c.Ibcast(buf, 64, BYTE, 0)
		if err != nil {
			return err
		}
		for {
			done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var r *CollRequest
	if err := r.Wait(); !errors.Is(err, nativempi.ErrRequest) {
		t.Fatal("nil CollRequest.Wait must error")
	}
}
