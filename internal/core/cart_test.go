package core

import (
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestDimsCreate(t *testing.T) {
	cases := []struct {
		n, nd int
		want  []int
	}{
		{12, 2, []int{4, 3}},
		{16, 2, []int{4, 4}},
		{64, 3, []int{4, 4, 4}},
		{7, 2, []int{7, 1}},
		{6, 1, []int{6}},
	}
	for _, c := range cases {
		got, err := DimsCreate(c.n, c.nd)
		if err != nil {
			t.Fatalf("DimsCreate(%d,%d): %v", c.n, c.nd, err)
		}
		prod := 1
		for _, d := range got {
			prod *= d
		}
		if prod != c.n || len(got) != c.nd {
			t.Fatalf("DimsCreate(%d,%d) = %v", c.n, c.nd, got)
		}
		for i, d := range c.want {
			if got[i] != d {
				t.Fatalf("DimsCreate(%d,%d) = %v, want %v", c.n, c.nd, got, c.want)
			}
		}
	}
	if _, err := DimsCreate(0, 2); err == nil {
		t.Fatal("DimsCreate(0,2) accepted")
	}
}

func TestCartTopology(t *testing.T) {
	// 2x3 grid on 6 ranks, periodic in dim 1 only.
	err := Run(mv2Config(2, 3), func(m *MPI) error {
		c := m.CommWorld()
		cart, err := c.CreateCart([]int{2, 3}, []bool{false, true})
		if err != nil {
			return err
		}
		coords := cart.Coords()
		wantRow, wantCol := c.Rank()/3, c.Rank()%3
		if coords[0] != wantRow || coords[1] != wantCol {
			return fmt.Errorf("rank %d: coords %v, want [%d %d]", c.Rank(), coords, wantRow, wantCol)
		}
		back, err := cart.RankOf(coords)
		if err != nil {
			return err
		}
		if back != cart.Rank() {
			return fmt.Errorf("RankOf(Coords) = %d, want %d", back, cart.Rank())
		}

		// Vertical shift (non-periodic): top row has no up-neighbour.
		up, down, err := cart.Shift(0, 1)
		if err != nil {
			return err
		}
		if wantRow == 0 && up != ProcNull {
			return fmt.Errorf("rank %d: up = %d, want ProcNull", c.Rank(), up)
		}
		if wantRow == 1 && down != ProcNull {
			return fmt.Errorf("rank %d: down = %d, want ProcNull", c.Rank(), down)
		}

		// Horizontal shift (periodic): always wraps.
		left, right, err := cart.Shift(1, 1)
		if err != nil {
			return err
		}
		if left == ProcNull || right == ProcNull {
			return fmt.Errorf("rank %d: periodic shift gave ProcNull", c.Rank())
		}
		wantRight, _ := cart.RankOf([]int{wantRow, wantCol + 1})
		if right != wantRight {
			return fmt.Errorf("rank %d: right = %d, want %d", c.Rank(), right, wantRight)
		}

		// Halo exchange around the periodic ring: ProcNull legs are
		// no-ops, so no branching needed.
		token := m.JVM().MustArray(jvm.Int, 1)
		token.SetInt(0, int64(cart.Rank()))
		in := m.JVM().MustArray(jvm.Int, 1)
		if _, err := cart.Sendrecv(token, 1, INT, right, 0, in, 1, INT, left, 0); err != nil {
			return err
		}
		if int(in.Int(0)) != left {
			return fmt.Errorf("rank %d: ring got %d, want %d", cart.Rank(), in.Int(0), left)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartExcessRanksGetNil(t *testing.T) {
	err := Run(mv2Config(1, 5), func(m *MPI) error {
		c := m.CommWorld()
		cart, err := c.CreateCart([]int{2, 2}, []bool{false, false})
		if err != nil {
			return err
		}
		if c.Rank() < 4 && cart == nil {
			return fmt.Errorf("rank %d should be in the grid", c.Rank())
		}
		if c.Rank() == 4 && cart != nil {
			return fmt.Errorf("rank 4 should get COMM_NULL")
		}
		if cart != nil {
			return cart.Barrier()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCartValidation(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if _, err := c.CreateCart([]int{4, 4}, []bool{false, false}); err == nil {
			return fmt.Errorf("oversized grid accepted")
		}
		if _, err := c.CreateCart([]int{2}, []bool{false, true}); err == nil {
			return fmt.Errorf("mismatched periods accepted")
		}
		if _, err := c.CreateCart([]int{0}, []bool{false}); err == nil {
			return fmt.Errorf("zero dimension accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProcNullPointToPoint(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 4)
		if err := c.Send(arr, 4, INT, ProcNull, 0); err != nil {
			return err
		}
		st, err := c.Recv(arr, 4, INT, ProcNull, 0)
		if err != nil {
			return err
		}
		if st.Source != ProcNull || st.Bytes != 0 {
			return fmt.Errorf("ProcNull recv status %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
