package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"mv2j/internal/faults"
	"mv2j/internal/jvm"
	"mv2j/internal/metrics"
	"mv2j/internal/nativempi"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// ---------------------------------------------------------------------
// Constructor / commit lifecycle (deterministic panics)
// ---------------------------------------------------------------------

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic, got none", what)
		}
	}()
	fn()
}

func TestTypeConstructorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"contiguous zero count", func() { TypeContiguous(INT, 0) }},
		{"contiguous negative count", func() { TypeContiguous(INT, -3) }},
		{"vector zero count", func() { TypeVector(INT, 0, 1, 1) }},
		{"vector zero blocklen", func() { TypeVector(INT, 2, 0, 4) }},
		{"vector negative blocklen", func() { TypeVector(INT, 2, -1, 4) }},
		{"vector zero stride", func() { TypeVector(INT, 2, 1, 0) }},
		{"vector negative stride", func() { TypeVector(INT, 2, 1, -4) }},
		{"vector overlapping stride", func() { TypeVector(INT, 2, 4, 3) }},
		{"indexed empty", func() { TypeIndexed(INT, nil, nil) }},
		{"indexed length mismatch", func() { TypeIndexed(INT, []int{1, 2}, []int{0}) }},
		{"indexed zero blocklen", func() { TypeIndexed(INT, []int{0}, []int{0}) }},
		{"indexed negative displ", func() { TypeIndexed(INT, []int{1}, []int{-1}) }},
		{"indexed overlap", func() { TypeIndexed(INT, []int{3, 1}, []int{0, 2}) }},
		{"struct empty", func() { TypeStruct(nil, nil, nil) }},
		{"struct mismatch", func() { TypeStruct([]int{1}, []int{0, 4}, []Datatype{INT, INT}) }},
		{"struct zero blocklen", func() { TypeStruct([]int{0}, []int{0}, []Datatype{INT}) }},
		{"struct overlap", func() { TypeStruct([]int{2, 1}, []int{0, 4}, []Datatype{INT, INT}) }},
		{"struct nested derived", func() {
			v := TypeVector(INT, 2, 1, 2)
			TypeStruct([]int{1}, []int{0}, []Datatype{v})
		}},
		{"vector nested derived", func() {
			v := TypeVector(INT, 2, 1, 2)
			TypeVector(v, 2, 1, 2)
		}},
	}
	for _, tc := range cases {
		mustPanic(t, tc.name, tc.fn)
	}
}

func TestCommitLifecycle(t *testing.T) {
	dt := TypeVector(INT, 2, 2, 4)
	if dt.Committed() {
		t.Error("uncommitted type reports Committed")
	}
	dt.Commit()
	if !dt.Committed() {
		t.Error("committed type reports not Committed")
	}
	dt.Commit() // idempotent
	cp := dt    // value copy shares commit state
	if !cp.Committed() {
		t.Error("copy of committed type reports not Committed")
	}
	dt.Free()
	if cp.Committed() {
		t.Error("Free not visible through value copy")
	}
	mustPanic(t, "recommit after free", func() { dt.Commit() })

	// Predefined and legacy types never need a commit.
	if !INT.Committed() {
		t.Error("predefined type not usable")
	}
	leg, err := Vector(INT, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !leg.Committed() {
		t.Error("legacy vector not usable")
	}
}

// TestUncommittedUsePanics pins the deterministic panic when an
// uncommitted or freed Type*-datatype reaches a message operation, on
// every staging path.
func TestUncommittedUsePanics(t *testing.T) {
	run := func(name string, body func(m *MPI) error) {
		t.Run(name, func(t *testing.T) {
			err := Run(mv2Config(1, 2), func(m *MPI) error {
				if m.CommWorld().Rank() != 0 {
					return nil
				}
				defer func() {
					if recover() == nil {
						t.Errorf("%s: expected panic", name)
					}
				}()
				return body(m)
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
	run("uncommitted send", func(m *MPI) error {
		v := TypeVector(INT, 2, 2, 4)
		arr := m.JVM().MustArray(jvm.Int, 64)
		return m.CommWorld().Send(arr, 1, v, 1, 7)
	})
	run("freed recv", func(m *MPI) error {
		v := TypeVector(INT, 2, 2, 4)
		v.Commit()
		v.Free()
		arr := m.JVM().MustArray(jvm.Int, 64)
		_, err := m.CommWorld().Recv(arr, 1, v, 1, 7)
		return err
	})
	run("uncommitted pack", func(m *MPI) error {
		v := TypeIndexed(INT, []int{2}, []int{0})
		arr := m.JVM().MustArray(jvm.Int, 8)
		dest := m.JVM().MustAllocateDirect(64)
		return m.Pack(arr, 0, 1, v, dest)
	})
	run("freed unpack", func(m *MPI) error {
		v := TypeIndexed(INT, []int{2}, []int{0})
		v.Commit()
		v.Free()
		arr := m.JVM().MustArray(jvm.Int, 8)
		src := m.JVM().MustAllocateDirect(64)
		src.Flip()
		return m.Unpack(src, arr, 0, 1, v)
	})
}

// TestTypeVectorPanicInvalidStride is an alias-level guard: the exact
// knob combinations the issue calls out (zero and negative stride /
// blocklength) panic with a message naming the argument.
func TestTypeVectorPanicInvalidStride(t *testing.T) {
	for _, stride := range []int{0, -8} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("stride %d: no panic", stride)
				}
				if msg, ok := r.(string); !ok || !bytes.Contains([]byte(msg), []byte("stride")) {
					t.Errorf("stride %d: panic %v does not name the stride", stride, r)
				}
			}()
			TypeVector(DOUBLE, 4, 2, stride)
		}()
	}
}

// ---------------------------------------------------------------------
// Status.Count / Status.Elements (MPI_Get_count / MPI_Get_elements)
// ---------------------------------------------------------------------

func TestStatusCountDerivedUnits(t *testing.T) {
	v := TypeVector(INT, 3, 2, 4) // 6 ints = 24 bytes per element
	v.Commit()
	st := Status{Bytes: 72} // 3 whole elements
	if n, err := st.Count(v); err != nil || n != 3 {
		t.Errorf("Count = %d, %v; want 3 derived elements", n, err)
	}
	if n, err := st.Elements(v); err != nil || n != 18 {
		t.Errorf("Elements = %d, %v; want 18 base ints", n, err)
	}
	// A transfer that ends mid-element: Count is undefined (error),
	// Elements still resolves.
	st = Status{Bytes: 60}
	if _, err := st.Count(v); err == nil {
		t.Error("Count of a partial element did not error")
	}
	if n, err := st.Elements(v); err != nil || n != 15 {
		t.Errorf("Elements = %d, %v; want 15", n, err)
	}
	// Ragged byte tail: neither resolves.
	st = Status{Bytes: 61}
	if _, err := st.Elements(v); err == nil {
		t.Error("Elements of a ragged byte count did not error")
	}
	// Empty message is zero elements on both.
	st = Status{}
	if n, err := st.Count(v); err != nil || n != 0 {
		t.Errorf("empty Count = %d, %v", n, err)
	}
	if n, err := st.Elements(v); err != nil || n != 0 {
		t.Errorf("empty Elements = %d, %v", n, err)
	}
}

// ---------------------------------------------------------------------
// Round-trip correctness across constructors and call shapes
// ---------------------------------------------------------------------

// TestDDTRoundTripVector exchanges a committed vector type through
// Send/Recv (eager) and Isend/Irecv (rendezvous) and checks both the
// run payloads and the untouched gaps.
func TestDDTRoundTripVector(t *testing.T) {
	dt := TypeVector(INT, 4, 8, 16) // 32 ints payload, 56 ints extent
	dt.Commit()
	const ext = 56
	for _, count := range []int{3, 512} { // eager / rendezvous tiers
		count := count
		t.Run(fmt.Sprintf("count%d", count), func(t *testing.T) {
			err := Run(mv2Config(1, 2), func(m *MPI) error {
				c := m.CommWorld()
				arr := m.JVM().MustArray(jvm.Int, count*ext)
				if c.Rank() == 0 {
					for i := 0; i < arr.Len(); i++ {
						arr.SetInt(i, int64(3*i+1))
					}
					return c.Send(arr, count, dt, 1, 5)
				}
				arr.Fill(-1)
				st, err := c.Recv(arr, count, dt, 0, 5)
				if err != nil {
					return err
				}
				if n, err := st.Count(dt); err != nil || n != count {
					return fmt.Errorf("count = %d, %v", n, err)
				}
				for e := 0; e < count; e++ {
					for blk := 0; blk < 4; blk++ {
						for i := 0; i < 16; i++ {
							idx := e*ext + blk*16 + i
							if idx >= e*ext+ext {
								continue
							}
							got := arr.Int(idx)
							if i < 8 {
								if want := int64(3*idx + 1); got != want {
									return fmt.Errorf("run payload arr[%d] = %d, want %d", idx, got, want)
								}
							} else if got != -1 {
								return fmt.Errorf("gap arr[%d] = %d, want untouched -1", idx, got)
							}
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDDTRoundTripIndexedOffset drives TypeIndexed through the offset
// extension (SendRange/RecvRange) — the mpiJava 1.2 argument §IV-B
// argues for — on the iovec path.
func TestDDTRoundTripIndexedOffset(t *testing.T) {
	dt := TypeIndexed(INT, []int{3, 1, 4}, []int{0, 5, 9}) // 8 ints payload, 13 extent
	dt.Commit()
	const count, off, ext = 5, 7, 13
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, off+count*ext)
		if c.Rank() == 0 {
			for i := 0; i < arr.Len(); i++ {
				arr.SetInt(i, int64(i))
			}
			return c.SendRange(arr, off, count, dt, 1, 6)
		}
		arr.Fill(-1)
		if _, err := c.RecvRange(arr, off, count, dt, 0, 6); err != nil {
			return err
		}
		for e := 0; e < count; e++ {
			base := off + e*ext
			want := map[int]bool{}
			for b, d := range []int{0, 5, 9} {
				for i := 0; i < []int{3, 1, 4}[b]; i++ {
					want[base+d+i] = true
				}
			}
			for i := base; i < base+ext; i++ {
				got := arr.Int(i)
				if want[i] {
					if got != int64(i) {
						return fmt.Errorf("arr[%d] = %d, want %d", i, got, i)
					}
				} else if got != -1 {
					return fmt.Errorf("gap arr[%d] = %d, want -1", i, got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDDTRoundTripStruct covers both struct flavors: a homogeneous
// struct keeps its primitive kind; a mixed-kind struct degrades to a
// byte-granular layout over byte arrays.
func TestDDTRoundTripStruct(t *testing.T) {
	t.Run("homogeneous", func(t *testing.T) {
		dt := TypeStruct([]int{2, 3}, []int{0, 16}, []Datatype{INT, INT}) // ints at 0,1 and 4,5,6
		dt.Commit()
		if dt.Kind() != jvm.Int {
			t.Fatalf("homogeneous struct kind = %v, want Int", dt.Kind())
		}
		err := Run(mv2Config(1, 2), func(m *MPI) error {
			c := m.CommWorld()
			arr := m.JVM().MustArray(jvm.Int, 7*8)
			if c.Rank() == 0 {
				for i := 0; i < arr.Len(); i++ {
					arr.SetInt(i, int64(i+100))
				}
				return c.Send(arr, 8, dt, 1, 2)
			}
			arr.Fill(0)
			if _, err := c.Recv(arr, 8, dt, 0, 2); err != nil {
				return err
			}
			for e := 0; e < 8; e++ {
				for _, i := range []int{0, 1, 4, 5, 6} {
					idx := e*7 + i
					if arr.Int(idx) != int64(idx+100) {
						return fmt.Errorf("struct member arr[%d] = %d", idx, arr.Int(idx))
					}
				}
				for _, i := range []int{2, 3} {
					if idx := e*7 + i; arr.Int(idx) != 0 {
						return fmt.Errorf("struct hole arr[%d] overwritten", idx)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
	t.Run("mixed", func(t *testing.T) {
		// {int at 0, long at 8} on a byte array: byte-granular layout.
		dt := TypeStruct([]int{1, 1}, []int{0, 8}, []Datatype{INT, LONG})
		dt.Commit()
		if dt.Kind() != jvm.Byte {
			t.Fatalf("mixed struct kind = %v, want Byte", dt.Kind())
		}
		if dt.Size() != 12 || dt.Extent() != 16 {
			t.Fatalf("mixed struct size/extent = %d/%d, want 12/16", dt.Size(), dt.Extent())
		}
		err := Run(mv2Config(1, 2), func(m *MPI) error {
			c := m.CommWorld()
			arr := m.JVM().MustArray(jvm.Byte, 16*4)
			if c.Rank() == 0 {
				for i := 0; i < arr.Len(); i++ {
					arr.SetInt(i, int64(i%127))
				}
				return c.Send(arr, 4, dt, 1, 3)
			}
			arr.Fill(-1)
			if _, err := c.Recv(arr, 4, dt, 0, 3); err != nil {
				return err
			}
			for e := 0; e < 4; e++ {
				for i := 0; i < 16; i++ {
					idx := e*16 + i
					payload := i < 4 || (i >= 8 && i < 16)
					got := arr.Int(idx)
					if payload && got != int64(idx%127) {
						return fmt.Errorf("mixed struct arr[%d] = %d", idx, got)
					}
					if !payload && got != -1 {
						return fmt.Errorf("mixed struct pad arr[%d] overwritten", idx)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// ---------------------------------------------------------------------
// The tentpole differential: gather-direct on vs. off
// ---------------------------------------------------------------------

type ddtArtifacts struct {
	recvs  [][]byte
	clocks []vtime.Time
	trace  []byte
	met    []byte
	host   nativempi.HostStats
}

// runDDTWorkload drives committed derived types across all three
// protocol tiers — eager, zero-copy rendezvous, RDMA placement — plus
// contiguous eager traffic and a collective, capturing every
// deterministic artifact and the host counters.
func runDDTWorkload(nodes, ppn, workers int, gather nativempi.Switch) (ddtArtifacts, error) {
	rec := trace.New(0)
	met := metrics.NewRegistry()
	var host nativempi.HostStats
	cfg := mv2Config(nodes, ppn)
	cfg.HeapSize = 48 << 20
	cfg.Lib.DDTGatherDirect = gather
	cfg.EngineWorkers = workers
	cfg.Trace = rec
	cfg.Metrics = met
	cfg.HostStats = &host
	np := nodes * ppn
	a := ddtArtifacts{recvs: make([][]byte, np), clocks: make([]vtime.Time, np)}

	dtv := TypeVector(INT, 4, 8, 16) // 128 B payload, 224 B extent per element
	dtv.Commit()
	dti := TypeIndexed(INT, []int{3, 1, 4}, []int{0, 5, 9}) // 32 B payload, 52 B extent
	dti.Commit()
	const ext = 56
	// Wire sizes per tier: 3 KiB (eager, under the 8 KiB intra limit),
	// 96 KiB (rendezvous, under the 256 KiB RDMA threshold), 384 KiB
	// (RDMA placement).
	tiers := []struct{ count, tag int }{{24, 21}, {768, 22}, {3072, 23}}

	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		me, size := c.Rank(), c.Size()
		next, prev := (me+1)%size, (me-1+size)%size
		var captured []byte
		for _, tier := range tiers {
			send := m.JVM().MustArray(jvm.Int, tier.count*ext)
			recv := m.JVM().MustArray(jvm.Int, tier.count*ext)
			for i := 0; i < send.Len(); i++ {
				send.SetInt(i, int64(me*1_000_000+tier.tag*1000+i%997))
			}
			recv.Fill(-1)
			sreq, err := c.Isend(send, tier.count, dtv, next, tier.tag)
			if err != nil {
				return err
			}
			rreq, err := c.Irecv(recv, tier.count, dtv, prev, tier.tag)
			if err != nil {
				return err
			}
			if _, err := sreq.Wait(); err != nil {
				return err
			}
			st, err := rreq.Wait()
			if err != nil {
				return err
			}
			if n, err := st.Count(dtv); err != nil || n != tier.count {
				return fmt.Errorf("tier %d: Count = %d, %v", tier.tag, n, err)
			}
			for e := 0; e < tier.count; e++ {
				for blk := 0; blk < 4; blk++ {
					for i := 0; i < 16 && blk*16+i < ext; i++ {
						idx := e*ext + blk*16 + i
						got := recv.Int(idx)
						if i < 8 {
							if want := int64(prev*1_000_000 + tier.tag*1000 + idx%997); got != want {
								return fmt.Errorf("rank %d tier %d: recv[%d] = %d, want %d", me, tier.tag, idx, got, want)
							}
						} else if got != -1 {
							return fmt.Errorf("rank %d tier %d: gap recv[%d] overwritten", me, tier.tag, idx)
						}
					}
				}
			}
			captured = append(captured, recv.RawBytes()...)
			send.Discard()
			recv.Discard()
		}

		// An indexed Sendrecv exchange at the eager tier (also covers
		// the vec Sendrecv plumbing).
		isend := m.JVM().MustArray(jvm.Int, 40*13)
		irecv := m.JVM().MustArray(jvm.Int, 40*13)
		for i := 0; i < isend.Len(); i++ {
			isend.SetInt(i, int64(10_000*me+i))
		}
		irecv.Fill(-9)
		if _, err := c.Sendrecv(isend, 40, dti, next, 31, irecv, 40, dti, prev, 31); err != nil {
			return err
		}
		captured = append(captured, irecv.RawBytes()...)

		// Contiguous eager traffic plus a collective, both small enough
		// that contiguous zero-copy never engages — the off leg must
		// report zero elisions.
		small := m.JVM().MustArray(jvm.Int, 64)
		sink := m.JVM().MustArray(jvm.Int, 64)
		fillArray(small, int64(100+me))
		if _, err := c.Sendrecv(small, 64, INT, next, 32, sink, 64, INT, prev, 32); err != nil {
			return err
		}
		acc := m.JVM().MustArray(jvm.Long, 4)
		contrib := m.JVM().MustArray(jvm.Long, 4)
		fillArray(contrib, int64(me))
		if err := c.Allreduce(contrib, acc, 4, LONG, SUM); err != nil {
			return err
		}
		captured = append(captured, sink.RawBytes()...)
		captured = append(captured, acc.RawBytes()...)

		a.recvs[me] = captured
		a.clocks[me] = m.Clock().Now()
		return nil
	})
	if err != nil {
		return a, err
	}
	a.host = host
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return a, err
	}
	a.trace = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := met.WriteJSON(&buf); err != nil {
		return a, err
	}
	a.met = buf.Bytes()
	return a, nil
}

func assertSameDDTArtifacts(t *testing.T, on, off ddtArtifacts) {
	t.Helper()
	for r := range on.recvs {
		if !bytes.Equal(on.recvs[r], off.recvs[r]) {
			t.Errorf("rank %d: receive payload differs between gather-direct on/off", r)
		}
		if on.clocks[r] != off.clocks[r] {
			t.Errorf("rank %d: final clock %d (on) vs %d (off)", r, on.clocks[r], off.clocks[r])
		}
	}
	if !bytes.Equal(on.trace, off.trace) {
		t.Error("trace JSONL differs between gather-direct on/off")
	}
	if !bytes.Equal(on.met, off.met) {
		t.Error("metrics JSON differs between gather-direct on/off")
	}
}

// TestDDTZeroCopyDifferential is the tentpole guarantee: flipping
// Profile.DDTGatherDirect changes host counters ONLY. Receive arrays,
// final clocks, trace JSONL, and metrics JSON are byte-identical at
// np∈{2,4,8} under both serial and parallel engine scheduling, while
// the on leg provably elides the pack staging the off leg pays.
func TestDDTZeroCopyDifferential(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{{1, 2}, {2, 2}, {2, 4}}
	for _, sh := range shapes {
		for _, workers := range []int{1, 8} {
			sh, workers := sh, workers
			t.Run(fmt.Sprintf("np%d_w%d", sh.nodes*sh.ppn, workers), func(t *testing.T) {
				if testing.Short() && sh.nodes*sh.ppn*workers > 16 {
					t.Skip("short mode")
				}
				on, err := runDDTWorkload(sh.nodes, sh.ppn, workers, nativempi.SwitchOn)
				if err != nil {
					t.Fatal(err)
				}
				off, err := runDDTWorkload(sh.nodes, sh.ppn, workers, nativempi.SwitchOff)
				if err != nil {
					t.Fatal(err)
				}
				assertSameDDTArtifacts(t, on, off)
				if on.host.Copy.CopiesElided == 0 {
					t.Error("gather-direct on: no copies elided")
				}
				if off.host.Copy.CopiesElided != 0 {
					t.Errorf("gather-direct off: %d copies elided, want 0", off.host.Copy.CopiesElided)
				}
				if on.host.Copy.BytesCopied >= off.host.Copy.BytesCopied {
					t.Errorf("gather-direct on copied %d bytes, off copied %d — elision saved nothing",
						on.host.Copy.BytesCopied, off.host.Copy.BytesCopied)
				}
			})
		}
	}
}

// TestDDTFallbackUnderFaults pins the framed fallback: with a fault
// plan active the bindings route derived types through the classic
// pack path (retransmission needs a stable framed payload), and the
// exchange still round-trips correctly.
func TestDDTFallbackUnderFaults(t *testing.T) {
	dt := TypeVector(INT, 4, 8, 16)
	dt.Commit()
	const count, ext = 96, 56
	cfg := mv2Config(2, 1)
	cfg.Faults = faults.Uniform(7, 0.05)
	var host nativempi.HostStats
	cfg.HostStats = &host
	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, count*ext)
		if c.Rank() == 0 {
			for i := 0; i < arr.Len(); i++ {
				arr.SetInt(i, int64(2*i+5))
			}
			return c.Send(arr, count, dt, 1, 4)
		}
		arr.Fill(-1)
		if _, err := c.Recv(arr, count, dt, 0, 4); err != nil {
			return err
		}
		for e := 0; e < count; e++ {
			for blk := 0; blk < 4; blk++ {
				idx := e*ext + blk*16
				if got, want := arr.Int(idx), int64(2*idx+5); got != want {
					return fmt.Errorf("recv[%d] = %d, want %d", idx, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if host.Copy.CopiesElided != 0 {
		t.Errorf("fault plan active but %d copies elided", host.Copy.CopiesElided)
	}
}

// ---------------------------------------------------------------------
// Randomized typed pack engine differential (satellite: 20 seeds)
// ---------------------------------------------------------------------

// randomLayout builds a random committed Type* datatype plus the raw
// (lens, displs) element layout it was built from, for the naive
// reference copier.
func randomLayout(rng *rand.Rand) (Datatype, []int, []int) {
	var lens, displs []int
	switch rng.Intn(3) {
	case 0:
		count := 1 + rng.Intn(5)
		bl := 1 + rng.Intn(6)
		stride := bl + rng.Intn(5)
		for b := 0; b < count; b++ {
			lens = append(lens, bl)
			displs = append(displs, b*stride)
		}
		return TypeVector(INT, count, bl, stride), lens, displs
	case 1:
		nb := 1 + rng.Intn(5)
		pos := 0
		for b := 0; b < nb; b++ {
			pos += rng.Intn(4)
			l := 1 + rng.Intn(5)
			lens = append(lens, l)
			displs = append(displs, pos)
			pos += l
		}
		return TypeIndexed(INT, lens, displs), lens, displs
	default:
		nb := 1 + rng.Intn(4)
		bytePos := 0
		var bls, bds []int
		var tys []Datatype
		for b := 0; b < nb; b++ {
			bytePos += 4 * rng.Intn(3)
			l := 1 + rng.Intn(4)
			bls = append(bls, l)
			bds = append(bds, bytePos)
			tys = append(tys, INT)
			lens = append(lens, l)
			displs = append(displs, bytePos/4)
			bytePos += 4 * l
		}
		return TypeStruct(bls, bds, tys), lens, displs
	}
}

// checkTypedPackEquivalence packs (offset, count, dt) through the typed
// engine into a pooled buffer, unpacks into a fresh array, and compares
// against a naive per-element reference copier — byte-identical
// destination arrays, gaps included.
func checkTypedPackEquivalence(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	dt, lens, displs := randomLayout(rng)
	dt.Commit()
	count := 1 + rng.Intn(4)
	offset := rng.Intn(3)
	need := offset + count*dt.Extent()
	nbytes := count * dt.Size()

	cfg := mv2Config(1, 1)
	err := Run(cfg, func(m *MPI) error {
		src := m.JVM().MustArray(jvm.Int, need)
		for i := 0; i < need; i++ {
			src.SetInt(i, rng.Int63n(1<<31))
		}
		dstTyped := m.JVM().MustArray(jvm.Int, need)
		dstRef := m.JVM().MustArray(jvm.Int, need)
		dstTyped.Fill(-7)
		dstRef.Fill(-7)

		// Typed engine: pack to a staging image, bounce it, unpack.
		stage, err := m.Pool().Get(nbytes)
		if err != nil {
			return err
		}
		if err := packInto(stage, src, offset, count, dt); err != nil {
			return err
		}
		if err := stage.Commit(); err != nil {
			return err
		}
		land, err := m.Pool().Get(nbytes)
		if err != nil {
			return err
		}
		copy(land.RawCapacity()[:nbytes], stage.Raw())
		if err := land.SetIncoming(nbytes); err != nil {
			return err
		}
		if err := unpackFrom(land, dstTyped, offset, count, dt); err != nil {
			return err
		}
		stage.Free()
		land.Free()

		// Naive reference: element-by-element, block-by-block.
		for e := 0; e < count; e++ {
			eb := offset + e*dt.Extent()
			for b := range lens {
				for i := 0; i < lens[b]; i++ {
					dstRef.SetInt(eb+displs[b]+i, src.Int(eb+displs[b]+i))
				}
			}
		}
		for i := 0; i < need; i++ {
			if dstTyped.Int(i) != dstRef.Int(i) {
				return fmt.Errorf("seed %d (%v): dst[%d] typed=%d ref=%d",
					seed, dt, i, dstTyped.Int(i), dstRef.Int(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDDTPackUnpackDifferential sweeps 20 seeds of random vector /
// indexed / struct layouts through the typed pack engine and the naive
// reference copier.
func TestDDTPackUnpackDifferential(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			checkTypedPackEquivalence(t, seed)
		})
	}
}

// FuzzDatatypeEquivalence extends the differential across the whole
// seed space (nightly fuzz job).
func FuzzDatatypeEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkTypedPackEquivalence(t, seed)
	})
}
