package core

import (
	"fmt"

	"mv2j/internal/nativempi"
)

// Op re-exports the native reduction operations at the bindings level.
type Op = nativempi.Op

// Predefined reduction operations.
const (
	SUM  = nativempi.OpSum
	PROD = nativempi.OpProd
	MAX  = nativempi.OpMax
	MIN  = nativempi.OpMin
	LAND = nativempi.OpLAnd
	LOR  = nativempi.OpLOr
	BAND = nativempi.OpBAnd
	BOR  = nativempi.OpBOr
	BXOR = nativempi.OpBXor
)

// Blocking collectives (the subset MVAPICH2-J implements: §IV-D).
// Each is one bindings call: stage buffers, one native collective,
// unpack. Java arrays stage through the buffering layer on both sides;
// direct ByteBuffers pass straight through.

// Barrier blocks until all ranks of the communicator reach it.
func (c *Comm) Barrier() error {
	defer c.mpi.beginColl()()
	return c.native.Barrier()
}

// Bcast broadcasts count dt elements from root's buf into every other
// rank's buf (in place, as in MPI).
func (c *Comm) Bcast(buf any, count int, dt Datatype, root int) error {
	defer c.mpi.beginColl()()
	if c.Rank() == root {
		raw, free, err := c.mpi.sendStage(buf, 0, count, dt)
		if err != nil {
			return err
		}
		defer free()
		return c.native.Bcast(raw, root)
	}
	raw, finish, free, err := c.mpi.recvStage(buf, 0, count, dt)
	if err != nil {
		return err
	}
	defer free()
	if err := c.native.Bcast(raw, root); err != nil {
		return err
	}
	return finish()
}

// Reduce combines count dt elements from every rank's sendBuf into
// root's recvBuf. recvBuf may be nil on non-root ranks.
func (c *Comm) Reduce(sendBuf, recvBuf any, count int, dt Datatype, op Op, root int) error {
	defer c.mpi.beginColl()()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer sfree()
	if c.Rank() != root {
		return c.native.Reduce(sraw, nil, dt.Kind(), op, root)
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Reduce(sraw, rraw, dt.Kind(), op, root); err != nil {
		return err
	}
	return finish()
}

// Allreduce combines count dt elements across all ranks into every
// rank's recvBuf.
func (c *Comm) Allreduce(sendBuf, recvBuf any, count int, dt Datatype, op Op) error {
	defer c.mpi.beginColl()()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Allreduce(sraw, rraw, dt.Kind(), op); err != nil {
		return err
	}
	return finish()
}

// Gather collects sendCount dt elements from every rank into root's
// recvBuf, which must hold size·sendCount elements. recvBuf may be nil
// on non-root ranks.
func (c *Comm) Gather(sendBuf any, sendCount int, recvBuf any, recvCount int, dt Datatype, root int) error {
	defer c.mpi.beginColl()()
	if sendCount != recvCount {
		return fmt.Errorf("%w: gather send count %d != recv count %d", ErrCount, sendCount, recvCount)
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount, dt)
	if err != nil {
		return err
	}
	defer sfree()
	if c.Rank() != root {
		return c.native.Gather(sraw, nil, root)
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount*c.Size(), dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Gather(sraw, rraw, root); err != nil {
		return err
	}
	return finish()
}

// Scatter distributes recvCount dt elements to each rank from root's
// sendBuf (size·recvCount elements). sendBuf may be nil off-root.
func (c *Comm) Scatter(sendBuf any, sendCount int, recvBuf any, recvCount int, dt Datatype, root int) error {
	defer c.mpi.beginColl()()
	if sendCount != recvCount {
		return fmt.Errorf("%w: scatter send count %d != recv count %d", ErrCount, sendCount, recvCount)
	}
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if c.Rank() != root {
		if err := c.native.Scatter(nil, rraw, root); err != nil {
			return err
		}
		return finish()
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount*c.Size(), dt)
	if err != nil {
		return err
	}
	defer sfree()
	if err := c.native.Scatter(sraw, rraw, root); err != nil {
		return err
	}
	return finish()
}

// Allgather concatenates sendCount dt elements from every rank into
// every rank's recvBuf (size·sendCount elements).
func (c *Comm) Allgather(sendBuf any, sendCount int, recvBuf any, recvCount int, dt Datatype) error {
	defer c.mpi.beginColl()()
	if sendCount != recvCount {
		return fmt.Errorf("%w: allgather send count %d != recv count %d", ErrCount, sendCount, recvCount)
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount*c.Size(), dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Allgather(sraw, rraw); err != nil {
		return err
	}
	return finish()
}

// Scan computes the inclusive prefix reduction: rank r receives
// op(rank_0, ..., rank_r).
func (c *Comm) Scan(sendBuf, recvBuf any, count int, dt Datatype, op Op) error {
	defer c.mpi.beginColl()()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Scan(sraw, rraw, dt.Kind(), op); err != nil {
		return err
	}
	return finish()
}

// Exscan computes the exclusive prefix reduction: rank 0's recvBuf is
// untouched; rank r>0 receives op(rank_0, ..., rank_{r-1}).
func (c *Comm) Exscan(sendBuf, recvBuf any, count int, dt Datatype, op Op) error {
	defer c.mpi.beginColl()()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, count, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Exscan(sraw, rraw, dt.Kind(), op); err != nil {
		return err
	}
	if c.Rank() == 0 {
		// Rank 0's buffer is untouched by Exscan; skip the unpack so
		// the staging area's garbage never reaches the user buffer.
		return nil
	}
	return finish()
}

// ReduceScatter reduces blocks across all ranks and scatters them:
// rank r receives the reduced counts[r] elements of block r. Counts
// are in dt elements.
func (c *Comm) ReduceScatter(sendBuf, recvBuf any, counts []int, dt Datatype, op Op) error {
	defer c.mpi.beginColl()()
	if len(counts) != c.Size() {
		return fmt.Errorf("%w: reduce_scatter counts length %d != %d", ErrCount, len(counts), c.Size())
	}
	total := 0
	bcounts := make([]int, len(counts))
	for r, n := range counts {
		if n < 0 {
			return fmt.Errorf("%w: negative count for rank %d", ErrCount, r)
		}
		bcounts[r] = n * dt.Size()
		total += n
	}
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, total, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, counts[c.Rank()], dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.ReduceScatter(sraw, rraw, bcounts, dt.Kind(), op); err != nil {
		return err
	}
	return finish()
}

// Alltoall exchanges sendCount dt elements with every rank: block i of
// sendBuf goes to rank i, block j of recvBuf comes from rank j.
func (c *Comm) Alltoall(sendBuf any, sendCount int, recvBuf any, recvCount int, dt Datatype) error {
	defer c.mpi.beginColl()()
	if sendCount != recvCount {
		return fmt.Errorf("%w: alltoall send count %d != recv count %d", ErrCount, sendCount, recvCount)
	}
	p := c.Size()
	sraw, sfree, err := c.mpi.sendStage(sendBuf, 0, sendCount*p, dt)
	if err != nil {
		return err
	}
	defer sfree()
	rraw, finish, rfree, err := c.mpi.recvStage(recvBuf, 0, recvCount*p, dt)
	if err != nil {
		return err
	}
	defer rfree()
	if err := c.native.Alltoall(sraw, rraw); err != nil {
		return err
	}
	return finish()
}
