package core

import (
	"errors"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestPersistentSendRecv(t *testing.T) {
	err := Run(mv2Config(2, 1), func(m *MPI) error {
		c := m.CommWorld()
		const n = 64
		buf := m.JVM().MustArray(jvm.Int, n)
		var req *PersistentRequest
		var err error
		if c.Rank() == 0 {
			req, err = c.SendInit(buf, n, INT, 1, 3)
		} else {
			req, err = c.RecvInit(buf, n, INT, 0, 3)
		}
		if err != nil {
			return err
		}
		for round := 0; round < 8; round++ {
			if c.Rank() == 0 {
				fillArray(buf, int64(round*1000))
			}
			if err := req.Start(); err != nil {
				return err
			}
			if _, err := req.Wait(); err != nil {
				return err
			}
			if c.Rank() == 1 {
				if err := checkArray(buf, int64(round*1000)); err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
			}
			// The rounds are matched pairwise: barrier keeps the next
			// Start from racing the verification... not needed — FIFO
			// ordering per (src,dst,tag) already guarantees matching.
		}
		return req.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentStartAll(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		other := 1 - c.Rank()
		out := m.JVM().MustAllocateDirect(256)
		in := m.JVM().MustAllocateDirect(256)
		sreq, err := c.SendInit(out, 256, BYTE, other, 0)
		if err != nil {
			return err
		}
		rreq, err := c.RecvInit(in, 256, BYTE, other, 0)
		if err != nil {
			return err
		}
		reqs := []*PersistentRequest{rreq, sreq, nil}
		for round := 0; round < 5; round++ {
			if err := StartAll(reqs); err != nil {
				return err
			}
			if err := WaitAllPersistent(reqs); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentLifecycleErrors(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustAllocateDirect(16)
		req, err := c.RecvInit(buf, 16, BYTE, 1-c.Rank(), 0)
		if err != nil {
			return err
		}
		// Wait before Start.
		if _, err := req.Wait(); err == nil {
			return fmt.Errorf("Wait before Start accepted")
		}
		if c.Rank() == 1 {
			if err := c.Send(buf, 16, BYTE, 0, 0); err != nil {
				return err
			}
			// Sender side: double-start misuse checked on rank 0 only.
			return nil
		}
		if err := req.Start(); err != nil {
			return err
		}
		// Start while active.
		if err := req.Start(); err == nil {
			return fmt.Errorf("double Start accepted")
		}
		if _, err := req.Wait(); err != nil {
			return err
		}
		// Free then Start.
		if err := req.Free(); err != nil {
			return err
		}
		if err := req.Start(); err == nil {
			return fmt.Errorf("Start after Free accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentProcNull(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustArray(jvm.Int, 4)
		req, err := c.SendInit(buf, 4, INT, ProcNull, 0)
		if err != nil {
			return err
		}
		if err := req.Start(); err != nil {
			return err
		}
		_, err = req.Wait()
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPersistentOpenMPIJArrayGap(t *testing.T) {
	err := Run(ompiConfig(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Int, 4)
		if _, err := c.SendInit(arr, 4, INT, 1-c.Rank(), 0); !errors.Is(err, ErrUnsupported) {
			return fmt.Errorf("SendInit(array) under OpenMPI-J: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
