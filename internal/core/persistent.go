package core

import (
	"fmt"

	"mv2j/internal/jvm"
)

// Persistent requests (MPI_Send_init / MPI_Recv_init / MPI_Start):
// the argument checking and staging setup of a point-to-point
// operation is done once, then the operation is (re)started cheaply
// each iteration — the classic optimisation for fixed communication
// patterns like halo exchanges.
type PersistentRequest struct {
	c      *Comm
	isSend bool
	buf    any
	count  int
	dt     Datatype
	peer   int
	tag    int

	active *Request
	freed  bool
}

// SendInit prepares a persistent standard-mode send. No communication
// happens until Start.
func (c *Comm) SendInit(buf any, count int, dt Datatype, dst, tag int) (*PersistentRequest, error) {
	if err := c.persistentCheck(buf, count, dt); err != nil {
		return nil, err
	}
	if dst != ProcNull {
		if dst < 0 || dst >= c.Size() {
			return nil, fmt.Errorf("%w: rank %d", ErrCount, dst)
		}
	}
	return &PersistentRequest{c: c, isSend: true, buf: buf, count: count, dt: dt, peer: dst, tag: tag}, nil
}

// RecvInit prepares a persistent receive.
func (c *Comm) RecvInit(buf any, count int, dt Datatype, src, tag int) (*PersistentRequest, error) {
	if err := c.persistentCheck(buf, count, dt); err != nil {
		return nil, err
	}
	if src != ProcNull && src != AnySource {
		if src < 0 || src >= c.Size() {
			return nil, fmt.Errorf("%w: rank %d", ErrCount, src)
		}
	}
	return &PersistentRequest{c: c, isSend: false, buf: buf, count: count, dt: dt, peer: src, tag: tag}, nil
}

func (c *Comm) persistentCheck(buf any, count int, dt Datatype) error {
	if count < 0 {
		return fmt.Errorf("%w: count %d", ErrCount, count)
	}
	if _, isArray := buf.(jvm.Array); isArray && c.mpi.flavor == OpenMPIJ {
		return fmt.Errorf("%w: Open MPI-J does not support Java arrays with request-based operations", ErrUnsupported)
	}
	return nil
}

// Start activates the operation. A request may not be started while a
// previous activation is still in flight.
func (p *PersistentRequest) Start() error {
	if p.freed {
		return fmt.Errorf("core: Start on a freed persistent request")
	}
	if p.active != nil && !p.active.waited {
		return fmt.Errorf("core: persistent request started while still active")
	}
	if p.peer == ProcNull {
		p.active = &Request{mpi: p.c.mpi, waited: true, status: Status{Source: ProcNull, Tag: p.tag}}
		return nil
	}
	var req *Request
	var err error
	if p.isSend {
		req, err = p.c.Isend(p.buf, p.count, p.dt, p.peer, p.tag)
	} else {
		req, err = p.c.Irecv(p.buf, p.count, p.dt, p.peer, p.tag)
	}
	if err != nil {
		return err
	}
	p.active = req
	return nil
}

// Wait completes the current activation; the request can be Started
// again afterwards.
func (p *PersistentRequest) Wait() (Status, error) {
	if p.active == nil {
		return Status{}, fmt.Errorf("core: Wait on an inactive persistent request")
	}
	return p.active.Wait()
}

// Free releases the request (MPI_Request_free on an inactive
// persistent request).
func (p *PersistentRequest) Free() error {
	if p.active != nil && !p.active.waited {
		return fmt.Errorf("core: Free on an active persistent request")
	}
	p.freed = true
	return nil
}

// StartAll starts a set of persistent requests (MPI_Startall).
func StartAll(reqs []*PersistentRequest) error {
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Start(); err != nil {
			return err
		}
	}
	return nil
}

// WaitAllPersistent completes every started request.
func WaitAllPersistent(reqs []*PersistentRequest) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
