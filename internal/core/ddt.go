package core

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/nativempi"
)

// Non-contiguous zero-copy staging: when a committed derived datatype
// meets a Java array on the MVAPICH2-J point-to-point path, the message
// is not packed through the buffering layer at all. Instead the
// bindings pin the array with GetPrimitiveArrayCritical and hand the
// native runtime an iovec — the commit-time run list replicated across
// the element count, in bytes — so the transport gathers/scatters
// directly between the user arrays (see internal/nativempi/iovec.go).
// The critical region stays open until the operation completes, which
// is exactly the pin the real zero-copy protocols need: GC cannot move
// the array while the NIC (or the peer, on the borrow path) still
// references it.
//
// The path is gated off whenever payloads may be framed or replayed —
// fault injection, FT — where the copy-through pack path is the
// fallback; and off for collectives, whose staging model (§IV-D) is
// per-call by design.

// vecEligible reports whether (buf, count, dt) takes the iovec
// datapath. Eligibility is decided before any validation: an
// ineligible call falls through to the classic staging path, which
// performs the same checks and reports the same errors.
func (m *MPI) vecEligible(buf any, count int, dt Datatype) bool {
	if !m.vecPath || m.collStaging {
		return false
	}
	if !dt.needsCommit || dt.contiguous() {
		return false
	}
	if _, isArray := buf.(jvm.Array); !isArray {
		return false
	}
	return count > 0 && count*dt.Size() > 0
}

// buildVec flattens (offset, count, dt) over arr into a byte-granular
// iovec rooted at the message's first base element. The commit-time run
// list is already coalesced within one datatype element; replication
// across elements coalesces the seam when one element's last run abuts
// the next element's first.
func buildVec(arr jvm.Array, raw []byte, offset, count int, dt Datatype) *nativempi.IOVec {
	esz := dt.Kind().Size()
	ext := dt.Extent() * esz
	base := offset * esz
	full := raw[base : base+count*ext]
	elemRuns := dt.committedRuns()
	runs := make([]nativempi.Run, 0, count*len(elemRuns))
	for e := 0; e < count; e++ {
		eb := e * ext
		for _, r := range elemRuns {
			off, ln := eb+r.off*esz, r.length*esz
			if k := len(runs) - 1; k >= 0 && runs[k].Off+runs[k].Len == off {
				runs[k].Len += ln
			} else {
				runs = append(runs, nativempi.Run{Off: off, Len: ln})
			}
		}
	}
	return nativempi.NewIOVec(full, runs)
}

// stageVec pins the array and builds the send/recv iovec. The returned
// free closes the critical region; callers must run it only after the
// native operation has completed (Wait), because the transport may
// still be reading from — or landing payload into — the pinned view.
func (m *MPI) stageVec(buf any, offset, count int, dt Datatype, what string) (*nativempi.IOVec, func(), error) {
	dt.checkUsable(what)
	arr := buf.(jvm.Array)
	if arr.Kind() != dt.Kind() {
		return nil, nil, fmt.Errorf("%w: %v array with %v datatype", ErrBufferType, arr.Kind(), dt)
	}
	if err := checkCount(arrayNeed(offset, count, dt), arr.Len(), what); err != nil {
		return nil, nil, err
	}
	raw := m.env.GetPrimitiveArrayCritical(arr)
	vec := buildVec(arr, raw, offset, count, dt)
	return vec, func() { m.env.ReleasePrimitiveArrayCritical(arr) }, nil
}

// sendStageVec stages a send iovec; ok reports eligibility (callers
// fall back to sendStage when false).
func (m *MPI) sendStageVec(buf any, offset, count int, dt Datatype) (vec *nativempi.IOVec, free func(), ok bool, err error) {
	if !m.vecEligible(buf, count, dt) {
		return nil, nil, false, nil
	}
	vec, free, err = m.stageVec(buf, offset, count, dt, "send")
	return vec, free, true, err
}

// recvStageVec stages a receive iovec; the transport scatters the
// payload in place, so there is no finish step — only the pin release.
func (m *MPI) recvStageVec(buf any, offset, count int, dt Datatype) (vec *nativempi.IOVec, free func(), ok bool, err error) {
	if !m.vecEligible(buf, count, dt) {
		return nil, nil, false, nil
	}
	vec, free, err = m.stageVec(buf, offset, count, dt, "recv")
	return vec, free, true, err
}
