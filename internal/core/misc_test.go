package core

import (
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestStatusCountBindings(t *testing.T) {
	st := Status{Bytes: 24}
	if n, err := st.Count(DOUBLE); err != nil || n != 3 {
		t.Fatalf("Count(DOUBLE) = %d, %v", n, err)
	}
	st.Bytes = 25
	if _, err := st.Count(DOUBLE); err == nil {
		t.Fatal("non-multiple count accepted")
	}
}

func TestFlavorStrings(t *testing.T) {
	if MVAPICH2J.String() != "MVAPICH2-J" || OpenMPIJ.String() != "OpenMPI-J" {
		t.Fatal("Flavor strings wrong")
	}
}

func TestAccessors(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		if c.MPI() != m {
			return fmt.Errorf("Comm.MPI() wrong")
		}
		if m.Flavor() != MVAPICH2J {
			return fmt.Errorf("Flavor() wrong")
		}
		if m.JVM() == nil || m.JNI() == nil || m.Pool() == nil || m.Proc() == nil || m.Clock() == nil {
			return fmt.Errorf("nil accessor")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTypeFor(t *testing.T) {
	for _, k := range jvm.Kinds() {
		dt := TypeFor(k)
		if dt.Kind() != k || dt.IsDerived() || dt.Size() != k.Size() {
			t.Fatalf("TypeFor(%v) wrong: %v", k, dt)
		}
	}
}

func TestAbortBindings(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		if m.CommWorld().Rank() == 0 {
			m.Abort("user abort")
			return nil
		}
		arr := m.JVM().MustArray(jvm.Byte, 4)
		_, err := m.CommWorld().Recv(arr, 4, BYTE, 0, 0) // never satisfied
		return err
	})
	if err == nil {
		t.Fatal("aborted job reported success")
	}
}

func TestHeapBufferSendBothFlavors(t *testing.T) {
	// Heap (non-direct) ByteBuffers go through the JVM-copy path in
	// both flavors.
	for _, cfg := range []Config{mv2Config(1, 2), ompiConfig(1, 2)} {
		cfg := cfg
		err := Run(cfg, func(m *MPI) error {
			c := m.CommWorld()
			buf, err := m.JVM().Allocate(128)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				for i := 0; i < 128; i++ {
					buf.PutByteAt(i, byte(i^0x55))
				}
				return c.Send(buf, 128, BYTE, 1, 0)
			}
			if _, err := c.Recv(buf, 128, BYTE, 0, 0); err != nil {
				return err
			}
			for i := 0; i < 128; i++ {
				if buf.ByteAt(i) != byte(i^0x55) {
					return fmt.Errorf("%v: heap buffer payload corrupted at %d", cfg.Flavor, i)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestBufferPositionRespected(t *testing.T) {
	// Sends read from the buffer's position, as the Java bindings do.
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustAllocateDirect(64)
		if c.Rank() == 0 {
			for i := 0; i < 64; i++ {
				buf.PutByteAt(i, byte(i))
			}
			buf.SetPosition(16)
			return c.Send(buf, 8, BYTE, 1, 0)
		}
		if _, err := c.Recv(buf, 8, BYTE, 0, 0); err != nil {
			return err
		}
		for i := 0; i < 8; i++ {
			if buf.ByteAt(i) != byte(16+i) {
				return fmt.Errorf("position-relative send wrong at %d: %d", i, buf.ByteAt(i))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendBeyondBufferLimit(t *testing.T) {
	err := Run(mv2Config(1, 2), func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustAllocateDirect(16)
		buf.SetPosition(12)
		if err := c.Send(buf, 8, BYTE, 1-c.Rank(), 0); err == nil {
			return fmt.Errorf("send past the limit accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
