package core

import (
	"fmt"

	"mv2j/internal/nativempi"
)

// InterComm is the bindings-level intercommunicator: point-to-point
// messaging addressed by REMOTE-group ranks, plus Merge back to an
// ordinary communicator for collectives.
type InterComm struct {
	mpi    *MPI
	native *nativempi.InterComm
}

// CreateIntercomm connects this communicator's group with a remote
// group over a bridge communicator (MPI_Intercomm_create). Collective
// over c.
func (c *Comm) CreateIntercomm(localLeader int, bridge *Comm, bridgeRemoteLeader, tag int) (*InterComm, error) {
	c.mpi.enterNative()
	if bridge == nil {
		return nil, fmt.Errorf("%w: nil bridge communicator", ErrCount)
	}
	n, err := c.native.CreateIntercomm(localLeader, bridge.native, bridgeRemoteLeader, tag)
	if err != nil {
		return nil, err
	}
	return &InterComm{mpi: c.mpi, native: n}, nil
}

// Rank returns the caller's rank in the local group.
func (ic *InterComm) Rank() int { return ic.native.Rank() }

// LocalSize and RemoteSize report the two group sizes.
func (ic *InterComm) LocalSize() int  { return ic.native.LocalSize() }
func (ic *InterComm) RemoteSize() int { return ic.native.RemoteSize() }

// Send transmits count dt elements to a remote-group rank.
func (ic *InterComm) Send(buf any, count int, dt Datatype, remoteRank, tag int) error {
	ic.mpi.enterNative()
	raw, free, err := ic.mpi.sendStage(buf, 0, count, dt)
	if err != nil {
		return err
	}
	defer free()
	return ic.native.Send(raw, remoteRank, tag)
}

// Recv receives count dt elements from a remote-group rank.
func (ic *InterComm) Recv(buf any, count int, dt Datatype, remoteRank, tag int) (Status, error) {
	ic.mpi.enterNative()
	raw, finish, free, err := ic.mpi.recvStage(buf, 0, count, dt)
	if err != nil {
		return Status{}, err
	}
	defer free()
	st, err := ic.native.Recv(raw, remoteRank, tag)
	if err != nil {
		return fromNative(st), err
	}
	return fromNative(st), finish()
}

// Merge converts the intercommunicator into an ordinary communicator
// (MPI_Intercomm_merge). Collective over both sides.
func (ic *InterComm) Merge(high bool) (*Comm, error) {
	ic.mpi.enterNative()
	n, err := ic.native.Merge(high)
	if err != nil {
		return nil, err
	}
	return &Comm{mpi: ic.mpi, native: n}, nil
}
