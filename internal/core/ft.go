package core

import (
	"errors"

	"mv2j/internal/nativempi"
)

// ULFM-style fault tolerance surface of the bindings layer. Enabled by
// Config.FT; each call is one JNI downcall into the native recovery
// machinery (see internal/nativempi/ft.go for the failure model).

// Failure-class errors, re-exported so applications can classify
// without importing the native layer.
var (
	// ErrProcFailed reports an operation that involved a failed
	// process (MPI_ERR_PROC_FAILED).
	ErrProcFailed = nativempi.ErrProcFailed
	// ErrRevoked reports an operation on a revoked communicator
	// (MPI_ERR_REVOKED).
	ErrRevoked = nativempi.ErrRevoked
)

// IsFailure reports whether err is either failure-class error — the
// condition under which a fault-tolerant application should recover
// (revoke, shrink, roll back) rather than propagate.
func IsFailure(err error) bool {
	return errors.Is(err, ErrProcFailed) || errors.Is(err, ErrRevoked)
}

// Revoke poisons the communicator on every member (MPIX_Comm_revoke):
// all pending and future operations on it fail with ErrRevoked,
// flushing survivors out of half-finished collectives.
func (c *Comm) Revoke() error {
	c.mpi.enterNative()
	return c.native.Revoke()
}

// Shrink agrees on the failed membership and returns the survivors'
// communicator (MPIX_Comm_shrink). Collective over the live members.
func (c *Comm) Shrink() (*Comm, error) {
	c.mpi.enterNative()
	n, err := c.native.Shrink()
	if err != nil {
		return nil, err
	}
	return &Comm{mpi: c.mpi, native: n}, nil
}

// AgreeFT performs fault-tolerant agreement on a flag word
// (MPIX_Comm_agree): every live member receives the bitwise AND of
// the contributions, despite failures mid-protocol.
func (c *Comm) AgreeFT(flag uint64) (uint64, error) {
	c.mpi.enterNative()
	return c.native.AgreeFT(flag)
}

// AgreeShrink couples agreement with communicator repair: one
// collective round returns the agreed flag, the communicator to
// continue on (the receiver itself when nobody failed, the survivors'
// rebuild otherwise), and the failed member ranks. A member that
// finished its work and a member that hit a failure can call this
// concurrently and land on the same decision, which makes it the
// natural epoch boundary for checkpointed loops.
func (c *Comm) AgreeShrink(flag uint64) (uint64, *Comm, []int, error) {
	c.mpi.enterNative()
	out, nn, failed, err := c.native.AgreeShrink(flag)
	if err != nil {
		return 0, nil, nil, err
	}
	if nn == c.native {
		return out, c, failed, nil
	}
	return out, &Comm{mpi: c.mpi, native: nn}, failed, nil
}

// FailedMembers returns the communicator ranks this rank knows to be
// dead, ascending.
func (c *Comm) FailedMembers() []int { return c.native.FailedMembers() }

// Revoked reports whether this communicator has been revoked, as seen
// by the calling rank.
func (c *Comm) Revoked() bool { return c.native.Revoked() }
