package core

import (
	"fmt"
	"sort"
)

// Group is an ordered set of communicator ranks (MPI_Group). Group
// operations are pure local computations; only Comm.Create turns a
// group back into communication state.
type Group struct {
	ranks []int
}

// NewGroup builds a group from explicit ranks. It rejects duplicates,
// which MPI groups cannot contain.
func NewGroup(ranks []int) (*Group, error) {
	seen := map[int]bool{}
	out := make([]int, len(ranks))
	for i, r := range ranks {
		if r < 0 {
			return nil, fmt.Errorf("%w: negative rank %d", ErrCount, r)
		}
		if seen[r] {
			return nil, fmt.Errorf("%w: duplicate rank %d", ErrCount, r)
		}
		seen[r] = true
		out[i] = r
	}
	return &Group{ranks: out}, nil
}

// Size returns the number of members.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns a copy of the member list.
func (g *Group) Ranks() []int {
	out := make([]int, len(g.ranks))
	copy(out, g.ranks)
	return out
}

// Rank returns the position of parent rank r in the group, or -1.
func (g *Group) Rank(r int) int {
	for i, x := range g.ranks {
		if x == r {
			return i
		}
	}
	return -1
}

// Incl returns the subgroup containing the listed members, in the
// given order (MPI_Group_incl). Indices are positions in g.
func (g *Group) Incl(indices []int) (*Group, error) {
	out := make([]int, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= len(g.ranks) {
			return nil, fmt.Errorf("%w: group index %d out of range [0,%d)", ErrCount, idx, len(g.ranks))
		}
		out[i] = g.ranks[idx]
	}
	return NewGroup(out)
}

// Excl returns the group minus the listed positions (MPI_Group_excl),
// preserving order.
func (g *Group) Excl(indices []int) (*Group, error) {
	drop := map[int]bool{}
	for _, idx := range indices {
		if idx < 0 || idx >= len(g.ranks) {
			return nil, fmt.Errorf("%w: group index %d out of range [0,%d)", ErrCount, idx, len(g.ranks))
		}
		drop[idx] = true
	}
	out := []int{}
	for i, r := range g.ranks {
		if !drop[i] {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}, nil
}

// Union returns g ∪ other: members of g in order, then members of
// other not already present (MPI_Group_union).
func (g *Group) Union(other *Group) *Group {
	seen := map[int]bool{}
	out := []int{}
	for _, r := range g.ranks {
		seen[r] = true
		out = append(out, r)
	}
	for _, r := range other.ranks {
		if !seen[r] {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// Intersection returns members of g also present in other, in g's
// order (MPI_Group_intersection).
func (g *Group) Intersection(other *Group) *Group {
	in := map[int]bool{}
	for _, r := range other.ranks {
		in[r] = true
	}
	out := []int{}
	for _, r := range g.ranks {
		if in[r] {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// Difference returns members of g not in other, in g's order
// (MPI_Group_difference).
func (g *Group) Difference(other *Group) *Group {
	in := map[int]bool{}
	for _, r := range other.ranks {
		in[r] = true
	}
	out := []int{}
	for _, r := range g.ranks {
		if !in[r] {
			out = append(out, r)
		}
	}
	return &Group{ranks: out}
}

// Translate maps positions in g to positions in other
// (MPI_Group_translate_ranks); absent members map to -1.
func (g *Group) Translate(indices []int, other *Group) ([]int, error) {
	out := make([]int, len(indices))
	for i, idx := range indices {
		if idx < 0 || idx >= len(g.ranks) {
			return nil, fmt.Errorf("%w: group index %d out of range [0,%d)", ErrCount, idx, len(g.ranks))
		}
		out[i] = other.Rank(g.ranks[idx])
	}
	return out, nil
}

// Equal reports whether both groups have identical members in
// identical order (MPI_IDENT).
func (g *Group) Equal(other *Group) bool {
	if len(g.ranks) != len(other.ranks) {
		return false
	}
	for i := range g.ranks {
		if g.ranks[i] != other.ranks[i] {
			return false
		}
	}
	return true
}

// Similar reports whether both groups have the same members in any
// order (MPI_SIMILAR).
func (g *Group) Similar(other *Group) bool {
	if len(g.ranks) != len(other.ranks) {
		return false
	}
	a := g.Ranks()
	b := other.Ranks()
	sort.Ints(a)
	sort.Ints(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
