package core

import (
	"errors"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

// TestCorrectnessUnderGCPressure runs message traffic on a tiny heap,
// forcing collections (which MOVE the arrays) between and during
// communication epochs. Payload integrity across compactions is the
// whole point of the copy-based JNI discipline.
func TestCorrectnessUnderGCPressure(t *testing.T) {
	cfg := mv2Config(1, 2)
	cfg.HeapSize = 256 << 10 // 256 KiB: tiny
	cfg.ArenaSize = 1 << 20
	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		const n = 1024
		keeper := m.JVM().MustArray(jvm.Int, n) // survives all collections
		if c.Rank() == 0 {
			fillArray(keeper, 7)
		}
		for round := 0; round < 30; round++ {
			// Churn the heap so allocation pressure forces GC; the
			// keeper array's payload must move and stay intact.
			garbage, err := m.JVM().NewArray(jvm.Byte, 100<<10)
			if err != nil {
				return err
			}
			garbage.Discard()
			if c.Rank() == 0 {
				if err := c.Send(keeper, n, INT, 1, round); err != nil {
					return err
				}
			} else {
				got := m.JVM().MustArray(jvm.Int, n)
				if _, err := c.Recv(got, n, INT, 0, round); err != nil {
					return err
				}
				if err := checkArray(got, 7); err != nil {
					return fmt.Errorf("round %d: %w", round, err)
				}
				got.Discard()
			}
		}
		if m.JVM().Stats().Collections == 0 {
			return fmt.Errorf("rank %d: no collections ran — stress test vacuous", c.Rank())
		}
		if err := checkArrayIfRoot(c, keeper); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func checkArrayIfRoot(c *Comm, a jvm.Array) error {
	if c.Rank() != 0 {
		return nil
	}
	return checkArray(a, 7)
}

// TestHeapExhaustionSurfacesCleanly: an allocation that cannot fit
// must surface jvm.ErrOutOfMemory through the bindings, not corrupt
// state or hang the peer.
func TestHeapExhaustionSurfacesCleanly(t *testing.T) {
	cfg := mv2Config(1, 2)
	cfg.HeapSize = 64 << 10
	err := Run(cfg, func(m *MPI) error {
		if _, err := m.JVM().NewArray(jvm.Byte, 1<<20); !errors.Is(err, jvm.ErrOutOfMemory) {
			return fmt.Errorf("huge allocation: err=%v, want ErrOutOfMemory", err)
		}
		// The job continues normally afterwards.
		return m.CommWorld().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestArenaExhaustionInStaging: when the direct arena cannot stage an
// array message, the send fails with a descriptive error on the
// CALLING rank (both ranks here, so the job still terminates).
func TestArenaExhaustionInStaging(t *testing.T) {
	cfg := mv2Config(1, 2)
	cfg.HeapSize = 8 << 20
	cfg.ArenaSize = 4 << 10 // too small to stage 16 KiB
	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Byte, 16<<10)
		err := c.Send(arr, 16<<10, BYTE, 1-c.Rank(), 0)
		if !errors.Is(err, jvm.ErrOutOfMemory) {
			return fmt.Errorf("staging into a full arena: err=%v, want ErrOutOfMemory", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolReuseAcrossManyMessages: thousands of messages must not grow
// the arena beyond the pool's working set (no leaks in the staging
// path).
func TestPoolReuseAcrossManyMessages(t *testing.T) {
	cfg := mv2Config(1, 2)
	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		arr := m.JVM().MustArray(jvm.Byte, 2048)
		for i := 0; i < 500; i++ {
			if c.Rank() == 0 {
				if err := c.Send(arr, 2048, BYTE, 1, 0); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(arr, 2048, BYTE, 0, 0); err != nil {
					return err
				}
			}
		}
		st := m.Pool().Stats()
		if st.Allocated > 4 {
			return fmt.Errorf("rank %d: pool allocated %d buffers for a steady 2KB stream", c.Rank(), st.Allocated)
		}
		if st.Hits < 400 {
			return fmt.Errorf("rank %d: only %d pool hits across 500 messages", c.Rank(), st.Hits)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDirectBufferSurvivesGCDuringComm: direct buffers keep their
// address across collections even while in flight.
func TestDirectBufferSurvivesGCDuringComm(t *testing.T) {
	cfg := mv2Config(1, 2)
	cfg.HeapSize = 128 << 10
	err := Run(cfg, func(m *MPI) error {
		c := m.CommWorld()
		buf := m.JVM().MustAllocateDirect(4096)
		addr := buf.Address()
		for round := 0; round < 10; round++ {
			junk, err := m.JVM().NewArray(jvm.Byte, 64<<10)
			if err != nil {
				return err
			}
			junk.Discard()
			if c.Rank() == 0 {
				for i := 0; i < 64; i++ {
					buf.PutByteAt(i, byte(round*64+i))
				}
				if err := c.Send(buf, 64, BYTE, 1, 0); err != nil {
					return err
				}
			} else {
				if _, err := c.Recv(buf, 64, BYTE, 0, 0); err != nil {
					return err
				}
				for i := 0; i < 64; i++ {
					if buf.ByteAt(i) != byte(round*64+i) {
						return fmt.Errorf("round %d: direct buffer corrupted", round)
					}
				}
			}
		}
		if buf.Address() != addr {
			return fmt.Errorf("direct buffer moved: %d -> %d", addr, buf.Address())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
