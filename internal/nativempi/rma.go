package nativempi

import (
	"fmt"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// One-sided communication (MPI-2/3 RMA) with active-target
// fence synchronisation: Win exposes a region of local memory;
// Put/Get/Accumulate issue RMA operations that complete at the next
// Fence, which also applies all incoming operations. The OSU
// Micro-Benchmarks cover these (osu_put_latency & co.); OMB-J gains
// the same coverage here.
//
// Epoch protocol at Fence: the ranks exchange per-target operation
// counts (Alltoall), then each rank progresses until it has applied
// exactly the operations addressed to it and received every reply to
// its own Gets, and finally a barrier closes the epoch.

// winState is the per-rank state of one window.
type winState struct {
	base     []byte
	incoming []*packet // unapplied RMA packets for this window
}

// Win is one rank's handle on a window.
type Win struct {
	c  *Comm
	id int32
	st *winState

	// outstanding ops this epoch
	sentTo     []int // ops issued per target (comm ranks)
	getPending map[uint64]*rmaGet
	nextGet    uint64
	freed      bool
}

type rmaGet struct {
	dst  []byte
	done bool
	at   vtime.Time
}

// rmaHeader packs (window id, op kind, element kind, reduce op) into
// packet fields: ctx carries the window id; tag carries the byte
// offset; nbytes the payload size; reqID correlates Get replies.
// The accumulate's (kind, op) ride in the two low bytes of dst... of
// the packet's src field's upper bits — packed explicitly below.

const (
	rmaPut = iota
	rmaAcc
	rmaGetReq
	rmaGetReply
)

// rmaMeta packs op metadata into an int64 for the packet.
func rmaMeta(op int, kind jvm.Kind, rop Op) int64 {
	return int64(op) | int64(kind)<<8 | int64(rop)<<16
}

func rmaMetaUnpack(meta int64) (op int, kind jvm.Kind, rop Op) {
	return int(meta & 0xff), jvm.Kind(meta >> 8 & 0xff), Op(meta >> 16 & 0xff)
}

// WinCreate exposes base as an RMA window. Collective over the
// communicator; every rank must call it (base may differ per rank, and
// may be nil for a zero-size exposure).
func (c *Comm) WinCreate(base []byte) (*Win, error) {
	id, err := c.allocCtxCollective(1)
	if err != nil {
		return nil, err
	}
	st := &winState{base: base}
	w := &Win{
		c:          c,
		id:         id,
		st:         st,
		sentTo:     make([]int, c.Size()),
		getPending: map[uint64]*rmaGet{},
	}
	if c.p.windows == nil {
		c.p.windows = map[int32]*winState{}
	}
	c.p.windows[id] = st
	// Exposing memory for one-sided access REQUIRES it pinned: the
	// window's base is registered sticky (exempt from LRU eviction)
	// for the window's lifetime, and the one-time pin-down cost lands
	// here — which is why MPI_Win_create is expensive and per-op RMA
	// is cheap, the trade the crossover benchmark measures.
	if c.p.rdmaOK() && len(base) > 0 {
		c.p.clock.Advance(c.p.reg.acquireLocked(base, c.p.clock.Now()))
	}
	// Window creation synchronises (MPI_Win_create is collective).
	if err := c.Barrier(); err != nil {
		return nil, err
	}
	return w, nil
}

// Free detaches the window. Collective.
func (w *Win) Free() error {
	if w.freed {
		return fmt.Errorf("nativempi: window already freed")
	}
	w.freed = true
	delete(w.c.p.windows, w.id)
	// The exposure ends but deregistration is lazy (the regcache bet):
	// the entry merely loses its eviction exemption.
	w.c.p.reg.unlock(w.st.base)
	return w.c.Barrier()
}

func (w *Win) check(target, off, n int) error {
	if w.freed {
		return fmt.Errorf("nativempi: operation on freed window")
	}
	if err := w.c.checkRank(target); err != nil {
		return err
	}
	if off < 0 || n < 0 {
		return fmt.Errorf("%w: rma range [%d,%d)", ErrCount, off, off+n)
	}
	return nil
}

// opRDMA reports whether a one-sided transfer of n bytes toward the
// target rides the RDMA channel: any large operation qualifies when
// the protocol is available, because the target's window is already
// pinned (WinCreate) — only the origin's buffer registration remains,
// and the cache amortizes that.
func (w *Win) opRDMA(n, target int) bool {
	p := w.c.p
	return p.rdmaOK() && n > p.eagerLimit(w.c.group[target])
}

// injectRMA ships an RMA packet toward the target. Small operations
// use eager-style injection (no handshake; the window exposure IS the
// standing rendezvous). A large operation either rides the RDMA
// channel — the origin registers its buffer (rdma true; cost already
// charged by the caller for Get, charged here for Put/Accumulate) and
// the transfer bypasses the target's CPU — or, when the protocol is
// unavailable, pays the staged fallback: per-RDMAStageChunk CPU
// overheads at both ends, the pipelined copy cost an RDMA-less
// library cannot avoid. nicAt, when non-zero, marks a NIC-served
// reply (an RDMA read): the payload streams out at max(nicAt,
// nicFree) without touching this rank's clock at all.
func (w *Win) injectRMA(target int, kind pktKind, meta int64, off int, data []byte, reqID uint64, rdma bool, nicAt vtime.Time) {
	p := w.c.p
	wdst := w.c.group[target]
	ch := p.channel(wdst)
	n := len(data)
	var start vtime.Time
	if nicAt > 0 {
		start = vtime.Max(nicAt, p.nicFree)
		p.nicFree = start.Add(ch.SerializeTime(n))
	} else {
		p.clock.Advance(p.sendSoft(wdst) + ch.SendOverhead)
		if rdma && n > 0 {
			p.clock.Advance(p.reg.acquire(data, p.clock.Now()))
		} else if !rdma && n > p.eagerLimit(wdst) {
			chunk := p.w.prof.RDMAStageChunk
			p.clock.Advance(vtime.Duration((n-1)/chunk) * ch.SendOverhead)
		}
		start = vtime.Max(p.clock.Now(), p.nicFree)
		p.nicFree = start.Add(ch.SerializeTime(n))
		p.clock.AdvanceTo(p.nicFree)
	}
	var payload []byte
	if n > 0 {
		payload = getWire(n)
		copy(payload, data)
		p.copyStats.count(n)
	}
	pkt := getPacket()
	pkt.kind = kind
	pkt.src = p.rank
	pkt.dst = wdst
	pkt.tag = off
	pkt.ctx = w.id
	pkt.data = payload
	pkt.ownsData = true
	pkt.rdma = rdma
	pkt.nbytes = int(meta)
	pkt.reqID = reqID
	pkt.sentAt = start
	pkt.arriveAt = start.Add(ch.TransferTime(n))
	p.post(wdst, pkt)
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(n)
}

// Put transfers src into the target's window at byte offset targetOff.
// Completes at the next Fence.
func (w *Win) Put(src []byte, target, targetOff int) error {
	if err := w.check(target, targetOff, len(src)); err != nil {
		return err
	}
	start := w.c.p.clock.Now()
	w.injectRMA(target, pktRMA, rmaMeta(rmaPut, 0, 0), targetOff, src, 0, w.opRDMA(len(src), target), 0)
	w.sentTo[target]++
	w.rmaSpan("put", target, len(src), start)
	return nil
}

// Accumulate combines src into the target's window with op.
func (w *Win) Accumulate(src []byte, target, targetOff int, kind jvm.Kind, op Op) error {
	if err := w.check(target, targetOff, len(src)); err != nil {
		return err
	}
	start := w.c.p.clock.Now()
	w.injectRMA(target, pktRMA, rmaMeta(rmaAcc, kind, op), targetOff, src, 0, w.opRDMA(len(src), target), 0)
	w.sentTo[target]++
	w.rmaSpan("accumulate", target, len(src), start)
	return nil
}

// Get fetches len(dst) bytes from the target's window at targetOff
// into dst. dst is valid after the next Fence.
func (w *Win) Get(dst []byte, target, targetOff int) error {
	if err := w.check(target, targetOff, len(dst)); err != nil {
		return err
	}
	w.nextGet++
	id := w.nextGet
	w.getPending[id] = &rmaGet{dst: dst}
	// The request carries the wanted length in the meta field's upper
	// bits.
	meta := rmaMeta(rmaGetReq, 0, 0) | int64(len(dst))<<24
	start := w.c.p.clock.Now()
	rdma := w.opRDMA(len(dst), target)
	if rdma {
		// An RDMA read lands in dst directly, so the origin pins its
		// destination buffer up front; the target side is already
		// pinned by the window exposure.
		p := w.c.p
		p.clock.Advance(p.reg.acquire(dst, p.clock.Now()))
	}
	w.injectRMA(target, pktRMA, meta, targetOff, nil, id, rdma, 0)
	w.sentTo[target]++
	w.rmaSpan("get", target, len(dst), start)
	return nil
}

// rmaLandCost is the target-side CPU charge of landing one incoming
// put/accumulate: the NIC completion event only when the transfer rode
// the RDMA channel, RecvOverhead per staged chunk otherwise (one chunk
// for small operations — the pre-RDMA cost unchanged).
func (w *Win) rmaLandCost(pkt *packet) vtime.Duration {
	ch := w.c.p.channel(pkt.src)
	if pkt.rdma {
		return ch.RDMAFinOverhead
	}
	n := len(pkt.data)
	chunks := 1 + (n-1)/w.c.p.w.prof.RDMAStageChunk
	if chunks < 1 {
		chunks = 1
	}
	return vtime.Duration(chunks) * ch.RecvOverhead
}

// applyIncoming processes one queued RMA packet at the target.
func (w *Win) applyIncoming(pkt *packet) error {
	p := w.c.p
	op, kind, rop := rmaMetaUnpack(int64(pkt.nbytes))
	switch op {
	case rmaPut:
		if pkt.tag+len(pkt.data) > len(w.st.base) {
			return fmt.Errorf("%w: put beyond window (%d+%d > %d)", ErrCount, pkt.tag, len(pkt.data), len(w.st.base))
		}
		p.clock.AdvanceTo(pkt.arriveAt)
		copy(w.st.base[pkt.tag:], pkt.data)
		p.copyStats.count(len(pkt.data))
		p.clock.Advance(w.rmaLandCost(pkt))
	case rmaAcc:
		if pkt.tag+len(pkt.data) > len(w.st.base) {
			return fmt.Errorf("%w: accumulate beyond window", ErrCount)
		}
		p.clock.AdvanceTo(pkt.arriveAt)
		if err := reduceInto(w.st.base[pkt.tag:pkt.tag+len(pkt.data)], pkt.data, kind, rop); err != nil {
			return err
		}
		w.c.chargeCompute(len(pkt.data))
		p.clock.Advance(w.rmaLandCost(pkt))
	case rmaGetReq:
		n := int(int64(pkt.nbytes) >> 24)
		if pkt.tag+n > len(w.st.base) {
			// Still reply (empty) so the origin's fence does not hang
			// on a get that can never be served.
			src := w.c.commRankOfWorld(pkt.src)
			w.injectRMA(src, pktRMAReply, rmaMeta(rmaGetReply, 0, 0), pkt.tag, nil, pkt.reqID, false, 0)
			return fmt.Errorf("%w: get beyond window (%d+%d > %d)", ErrCount, pkt.tag, n, len(w.st.base))
		}
		// Reply with the data (the RDMA-read completion). Replies are
		// transport, not epoch operations: they are tracked by the
		// origin's getPending set, not by the fence counts. An RDMA
		// read is served by the target's NIC at the request's arrival
		// instant without involving its CPU; the staged fallback runs
		// through the CPU exactly as before.
		src := w.c.commRankOfWorld(pkt.src)
		if pkt.rdma {
			w.injectRMA(src, pktRMAReply, rmaMeta(rmaGetReply, 0, 0), pkt.tag, w.st.base[pkt.tag:pkt.tag+n], pkt.reqID, true, pkt.arriveAt)
		} else {
			p.clock.AdvanceTo(pkt.arriveAt)
			w.injectRMA(src, pktRMAReply, rmaMeta(rmaGetReply, 0, 0), pkt.tag, w.st.base[pkt.tag:pkt.tag+n], pkt.reqID, false, 0)
		}
	default:
		return fmt.Errorf("nativempi: unknown RMA op %d", op)
	}
	return nil
}

// completeReply lands a Get reply at the origin.
func (w *Win) completeReply(pkt *packet) {
	g, ok := w.getPending[pkt.reqID]
	if !ok {
		panic(fmt.Sprintf("nativempi: rank %d got RMA reply for unknown get %d", w.c.p.rank, pkt.reqID))
	}
	copy(g.dst, pkt.data)
	g.done = true
	g.at = pkt.arriveAt
}

// Fence closes the current epoch: all operations issued before it (by
// anyone, toward anyone) are complete when it returns.
func (w *Win) Fence() error {
	if w.freed {
		return fmt.Errorf("nativempi: fence on freed window")
	}
	c := w.c
	p := c.p
	np := c.Size()

	// Exchange per-target op counts so each rank knows how many
	// operations it must apply this epoch.
	sendCounts := make([]byte, 8*np)
	recvCounts := make([]byte, 8*np)
	for r := 0; r < np; r++ {
		putIntNative(sendCounts, 8*r, jvm.Long, int64(w.sentTo[r]))
		w.sentTo[r] = 0
	}
	if err := c.Alltoall(sendCounts, recvCounts); err != nil {
		return err
	}
	expected := 0
	for r := 0; r < np; r++ {
		expected += int(getIntNative(recvCounts, 8*r, jvm.Long))
	}

	// Apply queued + arriving operations until the epoch's incoming
	// count is met; also wait out replies for our own gets. A faulty
	// operation (e.g. out-of-window put) is recorded but the epoch
	// protocol still completes — returning early would leave the other
	// ranks stuck in the closing barrier.
	var firstErr error
	applied := 0
	apply := func() {
		// Indexed drain, then reset to the array start: nothing appends
		// to incoming while apply runs (arrivals land in dispatch, which
		// only the Fence loop's own polling reaches), so the backing
		// array can be recycled for the next batch instead of being
		// abandoned one head-retaining reslice at a time.
		for i, pkt := range w.st.incoming {
			w.st.incoming[i] = nil // release now, or the array pins the packet
			if pkt.kind == pktRMAReply {
				w.completeReply(pkt)
				freePacket(pkt)
				continue
			}
			err := w.applyIncoming(pkt)
			freePacket(pkt)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			applied++
		}
		w.st.incoming = w.st.incoming[:0]
	}
	getsDone := func() bool {
		for _, g := range w.getPending {
			if !g.done {
				return false
			}
		}
		return true
	}
	apply()
	for applied < expected || !getsDone() {
		p.progressOnce()
		apply()
	}
	// Get destinations become valid now.
	for id, g := range w.getPending {
		p.clock.AdvanceTo(g.at)
		delete(w.getPending, id)
	}
	if err := c.Barrier(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
