package nativempi

import "mv2j/internal/jvm"

// Topology-aware (shared-memory-leader-based) collectives — the
// algorithms behind MVAPICH2's collective advantage on multi-node
// runs: stage inter-node traffic through one leader rank per node, so
// the expensive network carries O(nodes) messages while the cheap
// intra-node channel fans out within each node.

// nodePlan partitions a communicator's members by node.
type nodePlan struct {
	// myNodeMembers lists comm ranks on the caller's node, in comm
	// order; myNodeIdx is the caller's position among them.
	myNodeMembers []int
	// leaders holds one comm rank per node (the lowest comm rank on
	// the node), ordered by node id.
	leaders []int
}

func (c *Comm) planNodes() nodePlan {
	topo := c.p.w.topo
	myNode := topo.NodeOf(c.group[c.myRank])
	leaderOf := map[int]int{} // node -> lowest comm rank
	var pl nodePlan
	var nodes []int
	for r, wr := range c.group {
		n := topo.NodeOf(wr)
		if _, ok := leaderOf[n]; !ok {
			leaderOf[n] = r
			nodes = append(nodes, n)
		}
		if n == myNode {
			pl.myNodeMembers = append(pl.myNodeMembers, r)
		}
	}
	// nodes were appended in comm-rank order, which is deterministic
	// and identical on every member.
	for _, n := range nodes {
		pl.leaders = append(pl.leaders, leaderOf[n])
	}
	return pl
}

func indexOf(list []int, v int) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}

// bcastKnomialSubset broadcasts buf over the comm ranks in members,
// rooted at members[rootIdx], with a k-ary tree. Only members call it.
func (c *Comm) bcastKnomialSubset(buf []byte, members []int, rootIdx, tag, k int) error {
	m := len(members)
	if m <= 1 {
		return nil
	}
	my := indexOf(members, c.myRank)
	v := (my - rootIdx + m) % m
	mask := 1
	for mask < m && v%(mask*k) == 0 {
		mask *= k
	}
	if v != 0 {
		parent := members[((v-v%(mask*k))+rootIdx)%m]
		if err := c.crecv(buf, parent, tag); err != nil {
			return err
		}
	}
	for mm := mask / k; mm >= 1; mm /= k {
		for j := 1; j < k; j++ {
			child := v + j*mm
			if child < m {
				if err := c.csend(buf, members[(child+rootIdx)%m], tag); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// reduceBinomialSubset reduces members' acc vectors onto
// members[rootIdx]; on return the root's acc holds the combined value.
func (c *Comm) reduceBinomialSubset(acc []byte, members []int, rootIdx, tag int, kind jvm.Kind, op Op) error {
	m := len(members)
	if m <= 1 {
		return nil
	}
	my := indexOf(members, c.myRank)
	v := (my - rootIdx + m) % m
	scratch := c.borrowScratch(len(acc))
	defer c.returnScratch(scratch)
	for mask := 1; mask < m; mask <<= 1 {
		if v&mask != 0 {
			parent := members[((v^mask)+rootIdx)%m]
			return c.csend(acc, parent, tag)
		}
		partner := v + mask
		if partner < m {
			if err := c.crecv(scratch, members[(partner+rootIdx)%m], tag); err != nil {
				return err
			}
			if err := reduceInto(acc, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(len(acc))
		}
	}
	return nil
}

// allreduceRecDblSubset runs recursive doubling over members (with the
// standard non-power-of-two fold); every member ends with the combined
// vector in acc.
func (c *Comm) allreduceRecDblSubset(acc []byte, members []int, tag int, kind jvm.Kind, op Op) error {
	m := len(members)
	if m <= 1 {
		return nil
	}
	my := indexOf(members, c.myRank)
	scratch := c.borrowScratch(len(acc))
	defer c.returnScratch(scratch)
	pof2 := 1
	for pof2*2 <= m {
		pof2 *= 2
	}
	rem := m - pof2
	v := -1
	switch {
	case my < 2*rem && my%2 != 0:
		if err := c.csend(acc, members[my-1], tag); err != nil {
			return err
		}
	case my < 2*rem:
		if err := c.crecv(scratch, members[my+1], tag); err != nil {
			return err
		}
		if err := reduceInto(acc, scratch, kind, op); err != nil {
			return err
		}
		c.chargeCompute(len(acc))
		v = my / 2
	default:
		v = my - rem
	}
	if v >= 0 {
		toReal := func(vr int) int {
			if vr < rem {
				return vr * 2
			}
			return vr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := members[toReal(v^mask)]
			if err := c.csendrecv(acc, partner, scratch, partner, tag); err != nil {
				return err
			}
			if err := reduceInto(acc, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(len(acc))
		}
	}
	if my < 2*rem {
		if my%2 == 0 {
			return c.csend(acc, members[my+1], tag)
		}
		return c.crecv(acc, members[my-1], tag)
	}
	return nil
}

// bcastShmAware is the two-level broadcast: root hands the payload to
// its node leader set (k-nomial over the network), then each leader
// fans out over shared memory.
func (c *Comm) bcastShmAware(buf []byte, root, tag, k int) error {
	pl := c.planNodes()
	// Use the root itself as its node's representative in the leader
	// phase, so the payload starts the inter-node phase immediately.
	rootNode := c.p.w.topo.NodeOf(c.group[root])
	leaders := make([]int, len(pl.leaders))
	copy(leaders, pl.leaders)
	rootLeaderIdx := -1
	for i, l := range leaders {
		if c.p.w.topo.NodeOf(c.group[l]) == rootNode {
			leaders[i] = root
			rootLeaderIdx = i
		}
	}
	myLeader := leaders[0]
	for _, l := range leaders {
		if c.p.w.topo.NodeOf(c.group[l]) == c.p.w.topo.NodeOf(c.group[c.myRank]) {
			myLeader = l
		}
	}
	// Phase 1: inter-node, leaders only.
	if indexOf(leaders, c.myRank) >= 0 {
		if err := c.bcastKnomialSubset(buf, leaders, rootLeaderIdx, tag, k); err != nil {
			return err
		}
	}
	// Phase 2: intra-node fan-out from each node's representative.
	members := pl.myNodeMembers
	// The representative may be the root (on the root's node) rather
	// than the lowest rank.
	repIdx := indexOf(members, myLeader)
	if repIdx < 0 {
		// Root is this node's representative but not its lowest rank:
		// member list still contains it (it is on this node).
		repIdx = indexOf(members, root)
	}
	return c.bcastKnomialSubset(buf, members, repIdx, tag, k)
}

// planNodeMembers partitions the communicator's members by node: one
// comm-rank list per node, members in comm order, node groups ordered
// by first appearance in the comm — deterministic and identical on
// every member. Memoized per Comm (membership is immutable; shrink
// builds a fresh Comm), because rebuilding it on every collective is
// O(p) per rank — O(p²) per operation across the job.
func (c *Comm) planNodeMembers() [][]int {
	if c.nodesML != nil {
		return c.nodesML
	}
	topo := c.p.w.topo
	idx := map[int]int{}
	var nodes [][]int
	for r, wr := range c.group {
		n := topo.NodeOf(wr)
		i, ok := idx[n]
		if !ok {
			i = len(nodes)
			idx[n] = i
			nodes = append(nodes, nil)
		}
		nodes[i] = append(nodes[i], r)
	}
	c.nodesML = nodes
	return nodes
}

// sectionBounds returns the [start, end) bounds of section s when a
// member list of length m is split into secCount contiguous
// near-equal sections (the first m%secCount sections get one extra).
func sectionBounds(m, secCount, s int) (int, int) {
	base, rem := m/secCount, m%secCount
	start := s*base + min(s, rem)
	size := base
	if s < rem {
		size++
	}
	return start, start + size
}

// sectionCount picks the uniform per-node section count for the
// multi-leader collectives: the profile's LeadersPerNode, capped by
// the SMALLEST node's member count. Uniformity matters for
// correctness — the inter-node phase pairs same-index sections across
// nodes, so every node must field the same number of sections.
func sectionCount(nodes [][]int, leadersPerNode int) int {
	sc := leadersPerNode
	for _, mem := range nodes {
		if len(mem) < sc {
			sc = len(mem)
		}
	}
	if sc < 1 {
		sc = 1
	}
	return sc
}

// allreduceMultiLeader is the four-phase multi-leader allreduce for
// fat nodes at scale. Each node's members split into secCount
// contiguous sections; (1) each section reduces onto its leader over
// shared memory, (2) same-index section leaders recursive-double
// ACROSS nodes — secCount concurrent inter-node streams per node
// instead of one, (3) each node's section leaders recursive-double
// intra-node to combine the per-section global partials into the full
// sum, (4) each leader broadcasts k-nomially back over its section.
func (c *Comm) allreduceMultiLeader(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, k, leadersPerNode int) error {
	nodes := c.planNodeMembers()
	copy(recvBuf, sendBuf)
	secCount := sectionCount(nodes, leadersPerNode)
	tag1 := c.collTag()
	tag2 := c.collTag()
	tag3 := c.collTag()
	tag4 := c.collTag()
	myNode := -1
	for i, mem := range nodes {
		if indexOf(mem, c.myRank) >= 0 {
			myNode = i
			break
		}
	}
	members := nodes[myNode]
	my := indexOf(members, c.myRank)
	mySec := 0
	var sec []int
	for s := 0; s < secCount; s++ {
		lo, hi := sectionBounds(len(members), secCount, s)
		if my >= lo && my < hi {
			mySec = s
			sec = members[lo:hi]
			break
		}
	}
	// Phase 1: intra-section reduce onto the section leader.
	if err := c.reduceBinomialSubset(recvBuf, sec, 0, tag1, kind, op); err != nil {
		return err
	}
	if c.myRank == sec[0] {
		// Phase 2: inter-node allreduce among same-index section
		// leaders. Groups for distinct section indices are disjoint rank
		// sets, so the secCount exchanges proceed concurrently.
		group := make([]int, len(nodes))
		for i, mem := range nodes {
			lo, _ := sectionBounds(len(mem), secCount, mySec)
			group[i] = mem[lo]
		}
		if err := c.allreduceRecDblSubset(recvBuf, group, tag2, kind, op); err != nil {
			return err
		}
		// Phase 3: intra-node combine across this node's section
		// leaders — each holds the global sum of ITS section group, and
		// the allreduce over them yields the full global sum everywhere.
		secLeaders := make([]int, secCount)
		for s := range secLeaders {
			lo, _ := sectionBounds(len(members), secCount, s)
			secLeaders[s] = members[lo]
		}
		if err := c.allreduceRecDblSubset(recvBuf, secLeaders, tag3, kind, op); err != nil {
			return err
		}
	}
	// Phase 4: intra-section fan-out from the leader.
	return c.bcastKnomialSubset(recvBuf, sec, 0, tag4, k)
}

// bcastMultiLeader is the three-level broadcast: k-nomial among node
// representatives over the network (the root represents its own
// node), k-nomial from each node's representative to its section
// leaders over shared memory, then k-nomial within each section. A
// root that is not a section leader receives its own payload back in
// phase 3 — redundant but deterministic, and it keeps every phase a
// uniform subset broadcast.
func (c *Comm) bcastMultiLeader(buf []byte, root, tag, k int) error {
	nodes := c.planNodeMembers()
	secCount := sectionCount(nodes, c.p.w.prof.LeadersPerNode)
	topo := c.p.w.topo
	rootNode := topo.NodeOf(c.group[root])
	myNode := -1
	for i, mem := range nodes {
		if indexOf(mem, c.myRank) >= 0 {
			myNode = i
			break
		}
	}
	members := nodes[myNode]
	// Phase 1: inter-node, one representative per node.
	reps := make([]int, len(nodes))
	rootRepIdx := 0
	for i, mem := range nodes {
		reps[i] = mem[0]
		if topo.NodeOf(c.group[mem[0]]) == rootNode {
			reps[i] = root
			rootRepIdx = i
		}
	}
	if indexOf(reps, c.myRank) >= 0 {
		if err := c.bcastKnomialSubset(buf, reps, rootRepIdx, tag, k); err != nil {
			return err
		}
	}
	// Phase 2: representative → this node's section leaders.
	rep := reps[myNode]
	leaders := []int{rep}
	for s := 0; s < secCount; s++ {
		lo, _ := sectionBounds(len(members), secCount, s)
		if members[lo] != rep {
			leaders = append(leaders, members[lo])
		}
	}
	if indexOf(leaders, c.myRank) >= 0 {
		if err := c.bcastKnomialSubset(buf, leaders, 0, tag, k); err != nil {
			return err
		}
	}
	// Phase 3: section leader → section members.
	my := indexOf(members, c.myRank)
	for s := 0; s < secCount; s++ {
		lo, hi := sectionBounds(len(members), secCount, s)
		if my >= lo && my < hi {
			return c.bcastKnomialSubset(buf, members[lo:hi], 0, tag, k)
		}
	}
	return nil
}

// allreduceShmAware combines three phases: an intra-node reduce onto
// each node leader (shared memory), a recursive-doubling allreduce
// among leaders (network), and an intra-node broadcast.
func (c *Comm) allreduceShmAware(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, k int) error {
	pl := c.planNodes()
	copy(recvBuf, sendBuf)
	tag1 := c.collTag()
	tag2 := c.collTag()
	tag3 := c.collTag()
	members := pl.myNodeMembers
	if err := c.reduceBinomialSubset(recvBuf, members, 0, tag1, kind, op); err != nil {
		return err
	}
	if c.myRank == members[0] {
		if err := c.allreduceRecDblSubset(recvBuf, pl.leaders, tag2, kind, op); err != nil {
			return err
		}
	}
	return c.bcastKnomialSubset(recvBuf, members, 0, tag3, k)
}
