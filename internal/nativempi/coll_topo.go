package nativempi

import "mv2j/internal/jvm"

// Topology-aware (shared-memory-leader-based) collectives — the
// algorithms behind MVAPICH2's collective advantage on multi-node
// runs: stage inter-node traffic through one leader rank per node, so
// the expensive network carries O(nodes) messages while the cheap
// intra-node channel fans out within each node.

// nodePlan partitions a communicator's members by node.
type nodePlan struct {
	// myNodeMembers lists comm ranks on the caller's node, in comm
	// order; myNodeIdx is the caller's position among them.
	myNodeMembers []int
	// leaders holds one comm rank per node (the lowest comm rank on
	// the node), ordered by node id.
	leaders []int
}

func (c *Comm) planNodes() nodePlan {
	topo := c.p.w.topo
	myNode := topo.NodeOf(c.group[c.myRank])
	leaderOf := map[int]int{} // node -> lowest comm rank
	var pl nodePlan
	var nodes []int
	for r, wr := range c.group {
		n := topo.NodeOf(wr)
		if _, ok := leaderOf[n]; !ok {
			leaderOf[n] = r
			nodes = append(nodes, n)
		}
		if n == myNode {
			pl.myNodeMembers = append(pl.myNodeMembers, r)
		}
	}
	// nodes were appended in comm-rank order, which is deterministic
	// and identical on every member.
	for _, n := range nodes {
		pl.leaders = append(pl.leaders, leaderOf[n])
	}
	return pl
}

func indexOf(list []int, v int) int {
	for i, x := range list {
		if x == v {
			return i
		}
	}
	return -1
}

// bcastKnomialSubset broadcasts buf over the comm ranks in members,
// rooted at members[rootIdx], with a k-ary tree. Only members call it.
func (c *Comm) bcastKnomialSubset(buf []byte, members []int, rootIdx, tag, k int) error {
	m := len(members)
	if m <= 1 {
		return nil
	}
	my := indexOf(members, c.myRank)
	v := (my - rootIdx + m) % m
	mask := 1
	for mask < m && v%(mask*k) == 0 {
		mask *= k
	}
	if v != 0 {
		parent := members[((v-v%(mask*k))+rootIdx)%m]
		if err := c.crecv(buf, parent, tag); err != nil {
			return err
		}
	}
	for mm := mask / k; mm >= 1; mm /= k {
		for j := 1; j < k; j++ {
			child := v + j*mm
			if child < m {
				if err := c.csend(buf, members[(child+rootIdx)%m], tag); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// reduceBinomialSubset reduces members' acc vectors onto
// members[rootIdx]; on return the root's acc holds the combined value.
func (c *Comm) reduceBinomialSubset(acc []byte, members []int, rootIdx, tag int, kind jvm.Kind, op Op) error {
	m := len(members)
	if m <= 1 {
		return nil
	}
	my := indexOf(members, c.myRank)
	v := (my - rootIdx + m) % m
	scratch := c.borrowScratch(len(acc))
	defer c.returnScratch(scratch)
	for mask := 1; mask < m; mask <<= 1 {
		if v&mask != 0 {
			parent := members[((v^mask)+rootIdx)%m]
			return c.csend(acc, parent, tag)
		}
		partner := v + mask
		if partner < m {
			if err := c.crecv(scratch, members[(partner+rootIdx)%m], tag); err != nil {
				return err
			}
			if err := reduceInto(acc, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(len(acc))
		}
	}
	return nil
}

// allreduceRecDblSubset runs recursive doubling over members (with the
// standard non-power-of-two fold); every member ends with the combined
// vector in acc.
func (c *Comm) allreduceRecDblSubset(acc []byte, members []int, tag int, kind jvm.Kind, op Op) error {
	m := len(members)
	if m <= 1 {
		return nil
	}
	my := indexOf(members, c.myRank)
	scratch := c.borrowScratch(len(acc))
	defer c.returnScratch(scratch)
	pof2 := 1
	for pof2*2 <= m {
		pof2 *= 2
	}
	rem := m - pof2
	v := -1
	switch {
	case my < 2*rem && my%2 != 0:
		if err := c.csend(acc, members[my-1], tag); err != nil {
			return err
		}
	case my < 2*rem:
		if err := c.crecv(scratch, members[my+1], tag); err != nil {
			return err
		}
		if err := reduceInto(acc, scratch, kind, op); err != nil {
			return err
		}
		c.chargeCompute(len(acc))
		v = my / 2
	default:
		v = my - rem
	}
	if v >= 0 {
		toReal := func(vr int) int {
			if vr < rem {
				return vr * 2
			}
			return vr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := members[toReal(v^mask)]
			if err := c.csendrecv(acc, partner, scratch, partner, tag); err != nil {
				return err
			}
			if err := reduceInto(acc, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(len(acc))
		}
	}
	if my < 2*rem {
		if my%2 == 0 {
			return c.csend(acc, members[my+1], tag)
		}
		return c.crecv(acc, members[my-1], tag)
	}
	return nil
}

// bcastShmAware is the two-level broadcast: root hands the payload to
// its node leader set (k-nomial over the network), then each leader
// fans out over shared memory.
func (c *Comm) bcastShmAware(buf []byte, root, tag, k int) error {
	pl := c.planNodes()
	// Use the root itself as its node's representative in the leader
	// phase, so the payload starts the inter-node phase immediately.
	rootNode := c.p.w.topo.NodeOf(c.group[root])
	leaders := make([]int, len(pl.leaders))
	copy(leaders, pl.leaders)
	rootLeaderIdx := -1
	for i, l := range leaders {
		if c.p.w.topo.NodeOf(c.group[l]) == rootNode {
			leaders[i] = root
			rootLeaderIdx = i
		}
	}
	myLeader := leaders[0]
	for _, l := range leaders {
		if c.p.w.topo.NodeOf(c.group[l]) == c.p.w.topo.NodeOf(c.group[c.myRank]) {
			myLeader = l
		}
	}
	// Phase 1: inter-node, leaders only.
	if indexOf(leaders, c.myRank) >= 0 {
		if err := c.bcastKnomialSubset(buf, leaders, rootLeaderIdx, tag, k); err != nil {
			return err
		}
	}
	// Phase 2: intra-node fan-out from each node's representative.
	members := pl.myNodeMembers
	// The representative may be the root (on the root's node) rather
	// than the lowest rank.
	repIdx := indexOf(members, myLeader)
	if repIdx < 0 {
		// Root is this node's representative but not its lowest rank:
		// member list still contains it (it is on this node).
		repIdx = indexOf(members, root)
	}
	return c.bcastKnomialSubset(buf, members, repIdx, tag, k)
}

// allreduceShmAware combines three phases: an intra-node reduce onto
// each node leader (shared memory), a recursive-doubling allreduce
// among leaders (network), and an intra-node broadcast.
func (c *Comm) allreduceShmAware(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, k int) error {
	pl := c.planNodes()
	copy(recvBuf, sendBuf)
	tag1 := c.collTag()
	tag2 := c.collTag()
	tag3 := c.collTag()
	members := pl.myNodeMembers
	if err := c.reduceBinomialSubset(recvBuf, members, 0, tag1, kind, op); err != nil {
		return err
	}
	if c.myRank == members[0] {
		if err := c.allreduceRecDblSubset(recvBuf, pl.leaders, tag2, kind, op); err != nil {
			return err
		}
	}
	return c.bcastKnomialSubset(recvBuf, members, 0, tag3, k)
}
