package nativempi

import (
	"fmt"
	"math/rand"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/vtime"
)

// Reference-spec proof for the pin-down registration cache: regcache.go
// is an intrusive-ring LRU with sticky entries and byte/entry budgets;
// this file re-implements the SAME semantics as a naive map + ordered
// slice and drives both with randomized register/lock/unlock sequences,
// comparing every returned cost and every counter step by step — the
// matcher_test.go methodology applied to the RDMA channel's cache.

// refRegCache is the executable specification: entries live in a plain
// slice ordered least → most recently used; every operation is a
// linear scan. Costs use the profile's knobs via the same formulas.
type refRegCache struct {
	prof    *Profile
	maxEnt  int
	maxByte int64
	order   []*refRegEntry // index 0 = LRU, last = MRU
	hits    int64
	misses  int64
	evicts  int64
	bytes   int64
	peak    int64
}

type refRegEntry struct {
	key    *byte
	n      int
	locked bool
}

func (rc *refRegCache) find(key *byte) int {
	for i, e := range rc.order {
		if e.key == key {
			return i
		}
	}
	return -1
}

func (rc *refRegCache) covered(buf []byte) bool {
	if len(buf) == 0 {
		return false
	}
	i := rc.find(&buf[0])
	return i >= 0 && rc.order[i].n >= len(buf)
}

func (rc *refRegCache) acquire(buf []byte, lock bool) vtime.Duration {
	n := len(buf)
	if n == 0 {
		return 0
	}
	key := &buf[0]
	if i := rc.find(key); i >= 0 && rc.order[i].n >= n {
		rc.hits++
		e := rc.order[i]
		e.locked = e.locked || lock
		rc.order = append(append(rc.order[:i:i], rc.order[i+1:]...), e)
		return 0
	}
	var cost vtime.Duration
	if i := rc.find(key); i >= 0 {
		cost += rc.prof.DeregisterBase
		lock = lock || rc.order[i].locked
		rc.bytes -= int64(rc.order[i].n)
		rc.order = append(rc.order[:i:i], rc.order[i+1:]...)
	}
	rc.misses++
	for len(rc.order)+1 > rc.maxEnt || rc.bytes+int64(n) > rc.maxByte {
		vi := -1
		for i, e := range rc.order {
			if !e.locked {
				vi = i
				break
			}
		}
		if vi < 0 {
			break
		}
		cost += rc.prof.DeregisterBase
		rc.evicts++
		rc.bytes -= int64(rc.order[vi].n)
		rc.order = append(rc.order[:vi:vi], rc.order[vi+1:]...)
	}
	pages := (n + 4095) / 4096
	cost += rc.prof.RegisterBase + vtime.Duration(pages)*rc.prof.RegisterPerPage
	rc.order = append(rc.order, &refRegEntry{key: key, n: n, locked: lock})
	rc.bytes += int64(n)
	if rc.bytes > rc.peak {
		rc.peak = rc.bytes
	}
	return cost
}

func (rc *refRegCache) unlock(buf []byte) {
	if len(buf) == 0 {
		return
	}
	if i := rc.find(&buf[0]); i >= 0 {
		rc.order[i].locked = false
	}
}

// regWorldKnobs builds a 1-rank world whose rank's cache runs with the
// given capacity knobs, returning the rank's cache.
func regWorldKnobs(entries int, capBytes int64) (*World, *regCache) {
	topo := cluster.New(1, 1)
	w := NewWorld(topo, fabric.Default(topo), Profile{
		RegCacheEntries: entries,
		RegCacheBytes:   capBytes,
	})
	return w, w.Proc(0).reg
}

// TestRegCacheReference drives 20 seeds × 2000 randomized steps of
// acquire / acquireLocked / unlock / covered over a pool of buffers
// (including sub-slices of shared backing arrays, which exercise the
// grow-remiss path) and demands the production cache and the naive
// model agree on every cost, every counter, and every peek.
func TestRegCacheReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			entries := 2 + rng.Intn(6)
			capBytes := int64(16<<10) + int64(rng.Intn(64<<10))
			w, rc := regWorldKnobs(entries, capBytes)
			ref := &refRegCache{prof: &w.prof, maxEnt: entries, maxByte: capBytes}

			// Buffer pool: a dozen backing arrays of assorted sizes;
			// each op registers a prefix slice, so the same base shows
			// up at several lengths.
			pool := make([][]byte, 12)
			for i := range pool {
				pool[i] = make([]byte, 1<<10+rng.Intn(24<<10))
			}
			for step := 0; step < 2000; step++ {
				b := pool[rng.Intn(len(pool))]
				buf := b[:1+rng.Intn(len(b))]
				switch op := rng.Intn(10); {
				case op < 6:
					got := rc.acquire(buf, 0)
					want := ref.acquire(buf, false)
					if got != want {
						t.Fatalf("step %d: acquire cost %v, reference %v", step, got, want)
					}
				case op < 7:
					got := rc.acquireLocked(buf, 0)
					want := ref.acquire(buf, true)
					if got != want {
						t.Fatalf("step %d: acquireLocked cost %v, reference %v", step, got, want)
					}
				case op < 8:
					rc.unlock(buf)
					ref.unlock(buf)
				default:
					if got, want := rc.covered(buf), ref.covered(buf); got != want {
						t.Fatalf("step %d: covered=%v, reference %v", step, got, want)
					}
				}
				st := rc.stats
				if st.Hits != ref.hits || st.Misses != ref.misses || st.Evictions != ref.evicts {
					t.Fatalf("step %d: counters (h%d m%d e%d) vs reference (h%d m%d e%d)",
						step, st.Hits, st.Misses, st.Evictions, ref.hits, ref.misses, ref.evicts)
				}
				if st.PinnedBytes != ref.bytes || st.PinnedPeak != ref.peak {
					t.Fatalf("step %d: pinned %d/%d vs reference %d/%d",
						step, st.PinnedBytes, st.PinnedPeak, ref.bytes, ref.peak)
				}
				if rc.count != len(ref.order) {
					t.Fatalf("step %d: %d entries vs reference %d", step, rc.count, len(ref.order))
				}
			}
		})
	}
}

// TestRegCacheAccounting pins the hit/miss/evict economics on a
// scripted sequence against hand-computed numbers.
func TestRegCacheAccounting(t *testing.T) {
	w, rc := regWorldKnobs(2, 1<<30) // entry-capacity pressure only
	pr := &w.prof
	a := make([]byte, 4096)
	b := make([]byte, 8192)
	c := make([]byte, 100)

	regCost := func(n int) vtime.Duration {
		return pr.RegisterBase + vtime.Duration((n+4095)/4096)*pr.RegisterPerPage
	}

	if got := rc.acquire(a, 0); got != regCost(4096) {
		t.Fatalf("cold register: %v, want %v", got, regCost(4096))
	}
	if got := rc.acquire(a, 0); got != 0 {
		t.Fatalf("warm hit should be free, cost %v", got)
	}
	if got := rc.acquire(b, 0); got != regCost(8192) {
		t.Fatalf("second register: %v, want %v", got, regCost(8192))
	}
	// Third distinct buffer: capacity 2 forces an eviction of a (LRU).
	if got, want := rc.acquire(c, 0), pr.DeregisterBase+regCost(100); got != want {
		t.Fatalf("evicting register: %v, want %v", got, want)
	}
	// a was evicted: re-acquiring is a miss (and evicts b).
	if got, want := rc.acquire(a, 0), pr.DeregisterBase+regCost(4096); got != want {
		t.Fatalf("re-register after evict: %v, want %v", got, want)
	}
	st := rc.stats
	if st.Hits != 1 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("counters h%d m%d e%d, want h1 m4 e2", st.Hits, st.Misses, st.Evictions)
	}
	// Grow: register a prefix (a capacity eviction makes room), hit it,
	// then present the full backing array — a remiss that tears the
	// stale mapping down first. Removing the stale entry frees its
	// capacity slot, so the grow itself pays exactly one deregistration
	// and is counted as a miss, never an eviction.
	big := make([]byte, 16<<10)
	rc.acquire(big[:4096], 0) // miss; evicts the LRU entry (c)
	if rc.acquire(big[:4096], 0) != 0 {
		t.Fatal("prefix re-acquire should hit")
	}
	if got, want := rc.acquire(big, 0), pr.DeregisterBase+regCost(16<<10); got != want {
		t.Fatalf("grow: %v, want %v", got, want)
	}
	if rc.stats.Evictions != 3 {
		t.Fatalf("grow must not count as eviction: e%d, want 3", rc.stats.Evictions)
	}
	if rc.stats.Misses != 6 || rc.stats.Hits != 2 {
		t.Fatalf("final counters h%d m%d, want h2 m6", rc.stats.Hits, rc.stats.Misses)
	}
}

// TestRegCacheLockedPinning pins the sticky-entry contract: locked
// registrations (exposed RMA windows) are exempt from LRU eviction,
// the cache over-subscribes rather than evicting them, and unlock
// restores eviction eligibility.
func TestRegCacheLockedPinning(t *testing.T) {
	_, rc := regWorldKnobs(2, 1<<30)
	win := make([]byte, 4096)
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	rc.acquireLocked(win, 0)
	rc.acquire(a, 0)
	rc.acquire(b, 0) // evicts a (LRU unlocked), never win
	if !rc.covered(win) {
		t.Fatal("locked entry was evicted")
	}
	if rc.covered(a) {
		t.Fatal("unlocked LRU entry survived capacity pressure")
	}
	// Only locked entries left at capacity: over-subscribe.
	c := make([]byte, 4096)
	rc.acquireLocked(b, 0)
	rc.acquire(c, 0)
	if rc.count != 3 {
		t.Fatalf("locked-full cache should over-subscribe, count %d", rc.count)
	}
	rc.unlock(win)
	d := make([]byte, 4096)
	rc.acquire(d, 0)
	if rc.covered(win) {
		t.Fatal("unlocked window entry should be evictable again")
	}
}

// TestRegCacheHitAllocFree pins the warm-hit fast path at zero host
// allocations: the amortized case runs on every above-threshold
// message, and an alloc there would tax exactly the traffic the cache
// exists to speed up.
func TestRegCacheHitAllocFree(t *testing.T) {
	_, rc := regWorldKnobs(8, 1<<30)
	buf := make([]byte, 64<<10)
	rc.acquire(buf, 0)
	if avg := testing.AllocsPerRun(200, func() {
		if rc.acquire(buf, 0) != 0 {
			t.Fatal("expected warm hit")
		}
	}); avg != 0 {
		t.Fatalf("warm-hit acquire allocates %.2f/op, want 0", avg)
	}
}
