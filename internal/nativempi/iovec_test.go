package nativempi

import (
	"bytes"
	"strings"
	"testing"

	"mv2j/internal/vtime"
)

func iovecMustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestNewIOVecValidation(t *testing.T) {
	full := make([]byte, 64)
	iovecMustPanic(t, "no runs", func() { NewIOVec(full, nil) })
	iovecMustPanic(t, "zero length", func() { NewIOVec(full, []Run{{Off: 0, Len: 0}}) })
	iovecMustPanic(t, "negative length", func() { NewIOVec(full, []Run{{Off: 0, Len: -4}}) })
	iovecMustPanic(t, "overlap", func() { NewIOVec(full, []Run{{Off: 0, Len: 8}, {Off: 4, Len: 8}}) })
	iovecMustPanic(t, "reorder", func() { NewIOVec(full, []Run{{Off: 16, Len: 8}, {Off: 0, Len: 8}}) })
	iovecMustPanic(t, "out of range", func() { NewIOVec(full, []Run{{Off: 60, Len: 8}}) })
}

func TestNewIOVecCoalescing(t *testing.T) {
	full := make([]byte, 64)
	v := NewIOVec(full, []Run{{Off: 0, Len: 8}, {Off: 8, Len: 8}, {Off: 24, Len: 4}, {Off: 28, Len: 4}})
	if len(v.Runs) != 2 {
		t.Fatalf("coalesced into %d runs, want 2", len(v.Runs))
	}
	if v.Runs[0] != (Run{Off: 0, Len: 16}) || v.Runs[1] != (Run{Off: 24, Len: 8}) {
		t.Errorf("runs = %v", v.Runs)
	}
	if v.N != 24 {
		t.Errorf("N = %d, want 24", v.N)
	}
}

func TestIOVecGatherScatter(t *testing.T) {
	full := make([]byte, 32)
	for i := range full {
		full[i] = byte(i)
	}
	v := NewIOVec(full, []Run{{Off: 2, Len: 4}, {Off: 10, Len: 2}, {Off: 20, Len: 6}})
	img := make([]byte, v.N)
	if moved := v.gatherInto(img); moved != 12 {
		t.Fatalf("gathered %d bytes, want 12", moved)
	}
	want := []byte{2, 3, 4, 5, 10, 11, 20, 21, 22, 23, 24, 25}
	if !bytes.Equal(img, want) {
		t.Fatalf("gather = %v, want %v", img, want)
	}

	dstFull := make([]byte, 32)
	d := NewIOVec(dstFull, []Run{{Off: 1, Len: 6}, {Off: 12, Len: 6}})
	if moved := d.scatterFrom(img); moved != 12 {
		t.Fatalf("scattered %d bytes, want 12", moved)
	}
	if !bytes.Equal(dstFull[1:7], want[:6]) || !bytes.Equal(dstFull[12:18], want[6:]) {
		t.Errorf("scatter mismatch: %v", dstFull)
	}
	if dstFull[0] != 0 || dstFull[7] != 0 || dstFull[18] != 0 {
		t.Error("scatter wrote outside its runs")
	}
}

// TestVecCopyMismatchedRuns streams strided-to-strided layouts whose
// run boundaries do not line up: the two-pointer merge must move the
// same bytes a gather-then-scatter bounce would.
func TestVecCopyMismatchedRuns(t *testing.T) {
	srcFull := make([]byte, 48)
	for i := range srcFull {
		srcFull[i] = byte(i + 1)
	}
	src := NewIOVec(srcFull, []Run{{Off: 0, Len: 5}, {Off: 8, Len: 7}, {Off: 30, Len: 4}})
	mkDst := func() (*IOVec, []byte) {
		dstFull := make([]byte, 48)
		return NewIOVec(dstFull, []Run{{Off: 2, Len: 3}, {Off: 10, Len: 9}, {Off: 25, Len: 4}}), dstFull
	}

	direct, directFull := mkDst()
	if moved := vecCopy(direct, src); moved != 16 {
		t.Fatalf("vecCopy moved %d bytes, want 16", moved)
	}

	bounce, bounceFull := mkDst()
	img := make([]byte, src.N)
	src.gatherInto(img)
	bounce.scatterFrom(img)

	if !bytes.Equal(directFull, bounceFull) {
		t.Errorf("vecCopy differs from gather+scatter bounce:\n direct %v\n bounce %v", directFull, bounceFull)
	}
}

func TestVecCopyTruncates(t *testing.T) {
	src := NewIOVec(bytes.Repeat([]byte{7}, 16), []Run{{Off: 0, Len: 16}})
	dst := NewIOVec(make([]byte, 16), []Run{{Off: 0, Len: 4}, {Off: 8, Len: 4}})
	if moved := vecCopy(dst, src); moved != 8 {
		t.Errorf("vecCopy into smaller dst moved %d, want 8", moved)
	}
	if moved := vecCopy(NewIOVec(make([]byte, 32), []Run{{Off: 0, Len: 32}}), src); moved != 16 {
		t.Errorf("vecCopy from smaller src moved %d, want 16", moved)
	}
}

// TestProfileValidateDDTKnobs pins the Validate rejections for the
// derived-datatype profile knobs.
func TestProfileValidateDDTKnobs(t *testing.T) {
	base := Profile{Name: "t"}
	if err := base.Validate(); err != nil {
		t.Fatalf("baseline profile invalid: %v", err)
	}

	bad := base
	bad.DDTPackRun = -vtime.Nanosecond
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "DDTPackRun") {
		t.Errorf("negative DDTPackRun: err = %v", err)
	}

	bad = base
	bad.DDTGatherDirect = Switch(99)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "DDTGatherDirect") {
		t.Errorf("bogus DDTGatherDirect: err = %v", err)
	}
	bad.DDTGatherDirect = Switch(-1)
	if err := bad.Validate(); err == nil {
		t.Error("negative DDTGatherDirect accepted")
	}

	good := base
	good.DDTGatherDirect = SwitchOff
	good.DDTPackRun = 20 * vtime.Nanosecond
	if err := good.Validate(); err != nil {
		t.Errorf("valid DDT knobs rejected: %v", err)
	}
}
