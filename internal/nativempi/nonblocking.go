package nativempi

import (
	"fmt"

	"mv2j/internal/jvm"
)

// Non-blocking collectives (MPI 3.0's MPI_Ibcast and friends), built
// the way libnbc-style implementations build them: the operation is
// compiled into a SCHEDULE — rounds of point-to-point posts and local
// reductions — and the schedule advances only inside Test/Wait calls.
// That is software progress: a rank that computes between posting the
// collective and waiting on it delays its part of the tree, exactly as
// real progress-threadless MPI libraries do.

// nbOpKind enumerates schedule operations.
type nbOpKind uint8

const (
	nbSend nbOpKind = iota
	nbRecv
	nbCopy   // dst <- src (local)
	nbReduce // dst <- op(dst, src) (local)
)

// nbOp is one operation in a schedule round.
type nbOp struct {
	kind nbOpKind
	buf  []byte // send source or recv destination
	peer int    // comm rank for send/recv
	// local ops
	dst, src []byte
	rkind    jvm.Kind
	rop      Op
}

// nbRound is a set of operations that may be in flight together; a
// round completes when all of its posted requests complete, then its
// local ops run, then the next round is posted.
type nbRound struct {
	ops []nbOp
}

// CollRequest is the handle for a non-blocking collective.
type CollRequest struct {
	c       *Comm
	tag     int
	rounds  []nbRound
	cur     int
	pending []*Request
	started bool
	done    bool
	err     error
	scratch [][]byte // arena buffers on loan until the schedule completes
}

// releaseScratch hands the schedule's working buffers back to the
// arena once the last round has run (the rounds reference them).
func (r *CollRequest) releaseScratch() {
	for i, b := range r.scratch {
		r.c.returnScratch(b)
		r.scratch[i] = nil
	}
	r.scratch = r.scratch[:0]
}

// postRound posts the point-to-point operations of round i.
func (r *CollRequest) postRound(i int) {
	round := &r.rounds[i]
	r.pending = r.pending[:0]
	for _, op := range round.ops {
		switch op.kind {
		case nbSend:
			r.pending = append(r.pending,
				r.c.p.isendOn(op.buf, r.c.group[op.peer], r.tag, sendOpts{ctx: r.c.collCtx, coll: true}))
		case nbRecv:
			r.pending = append(r.pending,
				r.c.p.irecvOn(op.buf, r.c.group[op.peer], r.tag, sendOpts{ctx: r.c.collCtx, coll: true}))
		}
	}
}

// runLocals executes the round's local copies and reductions after its
// communication completes.
func (r *CollRequest) runLocals(i int) error {
	for _, op := range r.rounds[i].ops {
		switch op.kind {
		case nbCopy:
			copy(op.dst, op.src)
			r.c.chargeCompute(len(op.dst))
		case nbReduce:
			if err := reduceInto(op.dst, op.src, op.rkind, op.rop); err != nil {
				return err
			}
			r.c.chargeCompute(len(op.dst))
		}
	}
	return nil
}

// start posts the first round.
func (r *CollRequest) start() {
	if r.started {
		return
	}
	r.started = true
	if len(r.rounds) == 0 {
		r.done = true
		r.releaseScratch()
		return
	}
	r.postRound(0)
}

// Test advances the schedule without blocking and reports completion.
func (r *CollRequest) Test() (bool, error) {
	if r == nil {
		return false, ErrRequest
	}
	if r.done {
		return true, r.err
	}
	r.c.p.gateEnter()
	defer r.c.p.gateLeave()
	r.start()
	for !r.done {
		r.c.p.poll()
		allDone := true
		for _, req := range r.pending {
			if !req.done {
				allDone = false
				break
			}
		}
		if !allDone {
			// Schedule stalled on in-flight communication: a caller
			// spinning on Test must yield to the phase engine so peer
			// emissions flush and the rounds can advance.
			r.c.p.engYield()
			return false, nil
		}
		// Round communication finished: absorb completion times, run
		// locals, move on. Absorption consumes the round's requests —
		// they are never handed to the caller, so they recycle here.
		for i, req := range r.pending {
			r.c.p.clock.AdvanceTo(req.completeAt)
			req.consume()
			if req.err != nil && r.err == nil {
				r.err = req.err
			}
			r.c.p.putReq(req)
			r.pending[i] = nil
		}
		if err := r.runLocals(r.cur); err != nil && r.err == nil {
			r.err = err
		}
		r.cur++
		if r.cur >= len(r.rounds) {
			r.done = true
			r.releaseScratch()
			return true, r.err
		}
		r.postRound(r.cur)
	}
	return true, r.err
}

// Wait blocks (progressing the engine) until the collective completes.
func (r *CollRequest) Wait() error {
	if r == nil {
		return ErrRequest
	}
	r.c.p.gateEnter()
	defer r.c.p.gateLeave()
	for {
		done, err := r.Test()
		if done {
			return err
		}
		r.c.p.progressOnce()
	}
}

// Done reports completion without progressing.
func (r *CollRequest) Done() bool { return r != nil && r.done }

// --- schedule builders ---

// Ibcast starts a non-blocking binomial-tree broadcast.
func (c *Comm) Ibcast(buf []byte, root int) (*CollRequest, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	c.p.gateEnter()
	defer c.p.gateLeave()
	p := c.Size()
	r := &CollRequest{c: c, tag: c.collTag()}
	if p == 1 {
		r.start()
		return r, nil
	}
	v := (c.myRank - root + p) % p

	mask := 1
	for mask < p && v%(mask*2) == 0 {
		mask *= 2
	}
	if v != 0 {
		parent := ((v - v%(mask*2)) + root) % p
		r.rounds = append(r.rounds, nbRound{ops: []nbOp{{kind: nbRecv, buf: buf, peer: parent}}})
	}
	var sends []nbOp
	for m := mask / 2; m >= 1; m /= 2 {
		if child := v + m; child < p {
			sends = append(sends, nbOp{kind: nbSend, buf: buf, peer: (child + root) % p})
		}
	}
	if len(sends) > 0 {
		r.rounds = append(r.rounds, nbRound{ops: sends})
	}
	r.start()
	return r, nil
}

// Ibarrier starts a non-blocking dissemination barrier.
func (c *Comm) Ibarrier() (*CollRequest, error) {
	c.p.gateEnter()
	defer c.p.gateLeave()
	p := c.Size()
	r := &CollRequest{c: c, tag: c.collTag()}
	token := []byte{}
	for mask := 1; mask < p; mask <<= 1 {
		dst := (c.myRank + mask) % p
		src := (c.myRank - mask + p) % p
		r.rounds = append(r.rounds, nbRound{ops: []nbOp{
			{kind: nbSend, buf: token, peer: dst},
			{kind: nbRecv, buf: token, peer: src},
		}})
	}
	r.start()
	return r, nil
}

// Iallreduce starts a non-blocking recursive-doubling allreduce.
// sendBuf is read at post time (copied into recvBuf immediately);
// recvBuf must stay untouched until completion.
func (c *Comm) Iallreduce(sendBuf, recvBuf []byte, kind jvm.Kind, op Op) (*CollRequest, error) {
	n := len(sendBuf)
	if len(recvBuf) != n {
		return nil, fmt.Errorf("%w: iallreduce recv buffer %d != send %d", ErrCount, len(recvBuf), n)
	}
	c.p.gateEnter()
	defer c.p.gateLeave()
	p := c.Size()
	r := &CollRequest{c: c, tag: c.collTag()}
	copy(recvBuf, sendBuf)
	if p == 1 {
		r.start()
		return r, nil
	}

	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	// Scratch areas: one per exchange round, so rounds do not alias.
	steps := 0
	for mask := 1; mask < pof2; mask <<= 1 {
		steps++
	}
	scratch := make([][]byte, steps+1)
	for i := range scratch {
		scratch[i] = c.borrowScratch(n)
	}
	r.scratch = append(r.scratch, scratch...)

	v := -1
	switch {
	case c.myRank < 2*rem && c.myRank%2 != 0:
		r.rounds = append(r.rounds, nbRound{ops: []nbOp{{kind: nbSend, buf: recvBuf, peer: c.myRank - 1}}})
	case c.myRank < 2*rem:
		r.rounds = append(r.rounds, nbRound{ops: []nbOp{
			{kind: nbRecv, buf: scratch[steps], peer: c.myRank + 1},
			{kind: nbReduce, dst: recvBuf, src: scratch[steps], rkind: kind, rop: op},
		}})
		v = c.myRank / 2
	default:
		v = c.myRank - rem
	}

	if v >= 0 {
		toReal := func(vr int) int {
			if vr < rem {
				return vr * 2
			}
			return vr + rem
		}
		i := 0
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := toReal(v ^ mask)
			r.rounds = append(r.rounds, nbRound{ops: []nbOp{
				{kind: nbSend, buf: recvBuf, peer: partner},
				{kind: nbRecv, buf: scratch[i], peer: partner},
				{kind: nbReduce, dst: recvBuf, src: scratch[i], rkind: kind, rop: op},
			}})
			i++
		}
	}

	if c.myRank < 2*rem {
		if c.myRank%2 == 0 {
			r.rounds = append(r.rounds, nbRound{ops: []nbOp{{kind: nbSend, buf: recvBuf, peer: c.myRank + 1}}})
		} else {
			r.rounds = append(r.rounds, nbRound{ops: []nbOp{{kind: nbRecv, buf: recvBuf, peer: c.myRank - 1}}})
		}
	}
	r.start()
	return r, nil
}

// Iallgather starts a non-blocking ring allgather.
func (c *Comm) Iallgather(sendBuf, recvBuf []byte) (*CollRequest, error) {
	p := c.Size()
	n := len(sendBuf)
	if len(recvBuf) != n*p {
		return nil, fmt.Errorf("%w: iallgather recv buffer %d != %d", ErrCount, len(recvBuf), n*p)
	}
	c.p.gateEnter()
	defer c.p.gateLeave()
	r := &CollRequest{c: c, tag: c.collTag()}
	me := c.myRank
	copy(recvBuf[me*n:(me+1)*n], sendBuf)
	right := (me + 1) % p
	left := (me - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendBlk := (me - s + p) % p
		recvBlk := (me - s - 1 + p) % p
		r.rounds = append(r.rounds, nbRound{ops: []nbOp{
			{kind: nbSend, buf: recvBuf[sendBlk*n : (sendBlk+1)*n], peer: right},
			{kind: nbRecv, buf: recvBuf[recvBlk*n : (recvBlk+1)*n], peer: left},
		}})
	}
	r.start()
	return r, nil
}

// Ireduce starts a non-blocking binomial reduce toward root.
func (c *Comm) Ireduce(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, root int) (*CollRequest, error) {
	if err := c.checkRank(root); err != nil {
		return nil, err
	}
	n := len(sendBuf)
	if c.myRank == root && len(recvBuf) != n {
		return nil, fmt.Errorf("%w: ireduce recv buffer %d != send %d", ErrCount, len(recvBuf), n)
	}
	c.p.gateEnter()
	defer c.p.gateLeave()
	p := c.Size()
	r := &CollRequest{c: c, tag: c.collTag()}
	v := (c.myRank - root + p) % p

	acc := c.borrowScratch(n)
	r.scratch = append(r.scratch, acc)
	copy(acc, sendBuf)
	for mask := 1; mask < p; mask <<= 1 {
		if v&mask != 0 {
			parent := ((v ^ mask) + root) % p
			r.rounds = append(r.rounds, nbRound{ops: []nbOp{{kind: nbSend, buf: acc, peer: parent}}})
			break
		}
		if partner := v + mask; partner < p {
			scratch := c.borrowScratch(n)
			r.scratch = append(r.scratch, scratch)
			r.rounds = append(r.rounds, nbRound{ops: []nbOp{
				{kind: nbRecv, buf: scratch, peer: (partner + root) % p},
				{kind: nbReduce, dst: acc, src: scratch, rkind: kind, rop: op},
			}})
		}
	}
	if v == 0 {
		r.rounds = append(r.rounds, nbRound{ops: []nbOp{{kind: nbCopy, dst: recvBuf, src: acc}}})
	}
	r.start()
	return r, nil
}

// WaitallColl completes a set of non-blocking collectives.
func WaitallColl(reqs []*CollRequest) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
