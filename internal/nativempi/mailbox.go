package nativempi

import "sync"

// mailbox is an unbounded MPSC queue of packets. Senders never block —
// essential, because a blocking transport would introduce artificial
// deadlocks the real (buffered, flow-controlled) network does not have.
// The owning rank pops packets inside its MPI calls, which is exactly
// the software-progress model of a polling MPI library.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []*packet
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues p and wakes the owner if it is blocked in pop.
func (m *mailbox) push(p *packet) {
	m.mu.Lock()
	m.q = append(m.q, p)
	m.mu.Unlock()
	m.cond.Signal()
}

// tryPop dequeues the oldest packet without blocking.
func (m *mailbox) tryPop() (*packet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.q) == 0 {
		return nil, false
	}
	p := m.q[0]
	m.q = m.q[1:]
	return p, true
}

// pop dequeues the oldest packet, blocking until one is available.
func (m *mailbox) pop() *packet {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 {
		m.cond.Wait()
	}
	p := m.q[0]
	m.q = m.q[1:]
	return p
}
