package nativempi

import "sync"

// mailbox is an unbounded MPSC queue of packets. Senders never block —
// essential, because a blocking transport would introduce artificial
// deadlocks the real (buffered, flow-controlled) network does not have.
// The owning rank pops packets inside its MPI calls, which is exactly
// the software-progress model of a polling MPI library.
//
// The queue is a two-list design (Ibdxnet-style): producers append to
// tail under the mutex; the consumer drains a private head list without
// any locking and, only when it runs dry, swaps the lists in one lock
// acquisition. A burst of packets therefore costs the consumer one
// lock round trip instead of one per packet, and no pop ever reslices
// a head-retaining q[1:] — consumed slots are nilled immediately, and
// the drained head buffer is recycled as the next tail, so steady-state
// traffic allocates nothing.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	tail []*packet // producer side, guarded by mu

	// Consumer-private state: only the owning rank touches these.
	head    []*packet
	headIdx int
	spare   []*packet // drained buffer awaiting reuse as tail

	stats MailboxStats
}

// MailboxStats counts host-side queue activity. These are HOST
// observability numbers — swap batch sizes depend on when the consumer
// happened to poll relative to producers, i.e. on host scheduling —
// so they are deliberately kept out of the deterministic metrics
// registry and the trace artifacts. The hostbench harness reports them.
type MailboxStats struct {
	Pushes      int64 `json:"pushes"`       // packets enqueued
	PushBatches int64 `json:"push_batches"` // multi-packet producer batches (pushBatch calls)
	MaxPush     int64 `json:"max_push"`     // largest single producer batch
	Swaps       int64 `json:"swaps"`        // head/tail swaps (lock acquisitions that found work)
	Batched     int64 `json:"batched"`      // packets obtained via swaps (== Pushes at drain)
	MaxBatch    int64 `json:"max_batch"`    // largest single swap
	MaxTail     int64 `json:"max_tail"`     // peak producer-side backlog (saturation indicator)
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues p and wakes the owner if it is blocked in pop.
func (m *mailbox) push(p *packet) {
	m.mu.Lock()
	m.tail = append(m.tail, p)
	m.stats.Pushes++
	if n := int64(len(m.tail)); n > m.stats.MaxTail {
		m.stats.MaxTail = n
	}
	m.mu.Unlock()
	m.cond.Signal()
}

// pushBatch enqueues a burst of packets in FIFO order under a single
// lock acquisition (and a single wakeup) — the producer-side analogue
// of the consumer's head/tail swap. A reliability-layer retransmission
// schedule, for example, materialises every copy of a message at once;
// delivering them one push at a time would pay one lock round trip per
// copy for packets that are all bound for the same mailbox anyway.
func (m *mailbox) pushBatch(pkts []*packet) {
	if len(pkts) == 0 {
		return
	}
	m.mu.Lock()
	m.tail = append(m.tail, pkts...)
	n := int64(len(pkts))
	m.stats.Pushes += n
	if n > 1 {
		m.stats.PushBatches++
		if n > m.stats.MaxPush {
			m.stats.MaxPush = n
		}
	}
	if t := int64(len(m.tail)); t > m.stats.MaxTail {
		m.stats.MaxTail = t
	}
	m.mu.Unlock()
	m.cond.Signal()
}

// takeHead pops the next packet from the consumer-private head list.
func (m *mailbox) takeHead() *packet {
	p := m.head[m.headIdx]
	m.head[m.headIdx] = nil // no head retention: drop the reference now
	m.headIdx++
	if m.headIdx == len(m.head) {
		// Head drained: park the buffer for reuse as a future tail.
		m.spare = m.head[:0]
		m.head = nil
		m.headIdx = 0
	}
	return p
}

// swapLocked moves the tail to the consumer side. Caller holds mu and
// has verified the tail is non-empty.
func (m *mailbox) swapLocked() {
	m.head = m.tail
	m.headIdx = 0
	m.tail = m.spare // recycle the drained head buffer
	m.spare = nil
	m.stats.Swaps++
	n := int64(len(m.head))
	m.stats.Batched += n
	if n > m.stats.MaxBatch {
		m.stats.MaxBatch = n
	}
}

// tryPop dequeues the oldest packet without blocking.
func (m *mailbox) tryPop() (*packet, bool) {
	if m.headIdx < len(m.head) {
		return m.takeHead(), true
	}
	m.mu.Lock()
	if len(m.tail) == 0 {
		m.mu.Unlock()
		return nil, false
	}
	m.swapLocked()
	m.mu.Unlock()
	return m.takeHead(), true
}

// empty reports whether the mailbox holds no packets. Used by the
// phase-stepped engine's barrier (under eng.mu, with the owning rank
// parked) to decide promotion; the head check is safe there because a
// parked owner cannot be mutating its consumer-private state.
func (m *mailbox) empty() bool {
	if m.headIdx < len(m.head) {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.tail) == 0
}

// pop dequeues the oldest packet, blocking until one is available.
func (m *mailbox) pop() *packet {
	if m.headIdx < len(m.head) {
		return m.takeHead()
	}
	m.mu.Lock()
	for len(m.tail) == 0 {
		m.cond.Wait()
	}
	m.swapLocked()
	m.mu.Unlock()
	return m.takeHead()
}

// Stats snapshots the host-side counters. Only meaningful from the
// owning rank's goroutine or after the world has quiesced.
func (m *mailbox) Stats() MailboxStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
