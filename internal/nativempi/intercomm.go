package nativempi

import "fmt"

// Intercommunicators (MPI_Intercomm_create / MPI_Intercomm_merge):
// point-to-point communication between two disjoint groups, addressed
// by the peer group's ranks. Collectives on intercommunicators are out
// of scope (the paper's libraries only expose intracommunicator
// collectives); Merge converts to an ordinary communicator when
// collectives are needed.

// InterComm is one rank's handle on an intercommunicator.
type InterComm struct {
	local  *Comm
	remote []int // world ranks of the remote group, in remote-rank order
	ptCtx  int32
}

// CreateIntercomm connects this communicator's group with a remote
// group (MPI_Intercomm_create). localLeader is a rank of c; the two
// leaders must be able to talk over bridge (typically MPI_COMM_WORLD)
// where they are bridgeLocalLeader/bridgeRemoteLeader; tag
// disambiguates concurrent constructions. Collective over c.
func (c *Comm) CreateIntercomm(localLeader int, bridge *Comm, bridgeRemoteLeader, tag int) (*InterComm, error) {
	if err := c.checkRank(localLeader); err != nil {
		return nil, err
	}
	if bridge == nil {
		return nil, fmt.Errorf("%w: nil bridge communicator", ErrComm)
	}

	// Phase 1: the leaders exchange group lists (world ranks) and
	// agree on a context id over the bridge.
	var remote []int
	var ctx int32
	if c.myRank == localLeader {
		if err := bridge.checkRank(bridgeRemoteLeader); err != nil {
			return nil, err
		}
		// Serialize my group.
		mine := make([]byte, 4+4*len(c.group))
		putI32(mine, 0, int32(len(c.group)))
		for i, wr := range c.group {
			putI32(mine, 4+4*i, int32(wr))
		}
		// The lexicographically smaller world-rank leader allocates
		// the context and ships it with its group list; the other
		// replies with its group only.
		myWorld := bridge.group[bridge.myRank]
		peerWorld := bridge.group[bridgeRemoteLeader]
		if myWorld < peerWorld {
			ctx = c.p.w.allocCtx(1)
			hdr := make([]byte, 4)
			putI32(hdr, 0, ctx)
			if err := bridge.Send(append(hdr, mine...), bridgeRemoteLeader, tag); err != nil {
				return nil, err
			}
			buf := make([]byte, 4+4*bridge.p.w.Size())
			st, err := bridge.Recv(buf, bridgeRemoteLeader, tag)
			if err != nil {
				return nil, err
			}
			remote = decodeGroup(buf[:st.Bytes])
		} else {
			buf := make([]byte, 8+4*bridge.p.w.Size())
			st, err := bridge.Recv(buf, bridgeRemoteLeader, tag)
			if err != nil {
				return nil, err
			}
			ctx = getI32(buf, 0)
			remote = decodeGroup(buf[4:st.Bytes])
			if err := bridge.Send(mine, bridgeRemoteLeader, tag); err != nil {
				return nil, err
			}
		}
	}

	// Phase 2: the leader broadcasts (ctx, remote group) within the
	// local communicator.
	meta := make([]byte, 8)
	if c.myRank == localLeader {
		putI32(meta, 0, ctx)
		putI32(meta, 4, int32(len(remote)))
	}
	if err := c.Bcast(meta, localLeader); err != nil {
		return nil, err
	}
	ctx = getI32(meta, 0)
	n := int(getI32(meta, 4))
	table := make([]byte, 4*n)
	if c.myRank == localLeader {
		for i, wr := range remote {
			putI32(table, 4*i, int32(wr))
		}
	}
	if err := c.Bcast(table, localLeader); err != nil {
		return nil, err
	}
	remote = make([]int, n)
	for i := range remote {
		remote[i] = int(getI32(table, 4*i))
	}
	return &InterComm{local: c, remote: remote, ptCtx: ctx}, nil
}

func decodeGroup(b []byte) []int {
	n := int(getI32(b, 0))
	out := make([]int, n)
	for i := range out {
		out[i] = int(getI32(b, 4+4*i))
	}
	return out
}

// Rank returns the caller's rank in the LOCAL group.
func (ic *InterComm) Rank() int { return ic.local.Rank() }

// LocalSize and RemoteSize report the two group sizes.
func (ic *InterComm) LocalSize() int  { return ic.local.Size() }
func (ic *InterComm) RemoteSize() int { return len(ic.remote) }

func (ic *InterComm) checkRemote(rank int) error {
	if rank < 0 || rank >= len(ic.remote) {
		return fmt.Errorf("%w: remote rank %d not in [0,%d)", ErrRank, rank, len(ic.remote))
	}
	return nil
}

// Send transmits to a REMOTE-group rank.
func (ic *InterComm) Send(buf []byte, remoteRank, tag int) error {
	if err := ic.checkRemote(remoteRank); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("%w: tag %d", ErrTag, tag)
	}
	req := ic.local.p.isendOn(buf, ic.remote[remoteRank], tag, sendOpts{ctx: ic.ptCtx})
	_, err := req.Wait()
	return err
}

// Recv receives from a REMOTE-group rank (AnySource allowed).
func (ic *InterComm) Recv(buf []byte, remoteRank, tag int) (Status, error) {
	wsrc := AnySource
	if remoteRank != AnySource {
		if err := ic.checkRemote(remoteRank); err != nil {
			return Status{}, err
		}
		wsrc = ic.remote[remoteRank]
	}
	req := ic.local.p.irecvOn(buf, wsrc, tag, sendOpts{ctx: ic.ptCtx})
	st, err := req.Wait()
	// Translate the world source into a remote-group rank.
	for i, wr := range ic.remote {
		if wr == st.Source {
			st.Source = i
			break
		}
	}
	return st, err
}

// Merge builds an intracommunicator over the union of both groups
// (MPI_Intercomm_merge): the group passing high=false orders first.
// Collective over both sides.
func (ic *InterComm) Merge(high bool) (*Comm, error) {
	// Exchange the high flags through the leaders so both sides order
	// identically. Leaders are local rank 0 and remote rank 0.
	myFlag := []byte{0}
	if high {
		myFlag[0] = 1
	}
	peerFlag := make([]byte, 1)
	if ic.local.Rank() == 0 {
		// Deterministic order: smaller leader world rank sends first.
		myWorld := ic.local.group[0]
		peerWorld := ic.remote[0]
		if myWorld < peerWorld {
			if err := ic.Send(myFlag, 0, 0); err != nil {
				return nil, err
			}
			if _, err := ic.Recv(peerFlag, 0, 0); err != nil {
				return nil, err
			}
		} else {
			if _, err := ic.Recv(peerFlag, 0, 0); err != nil {
				return nil, err
			}
			if err := ic.Send(myFlag, 0, 0); err != nil {
				return nil, err
			}
		}
	}
	if err := ic.local.Bcast(peerFlag, 0); err != nil {
		return nil, err
	}
	if myFlag[0] == peerFlag[0] {
		// Equal flags: MPI orders by leader world rank; encode that as
		// an effective flag on the larger-leader side.
		if ic.local.group[0] > ic.remote[0] {
			myFlag[0] = 1
			peerFlag[0] = 0
		} else {
			myFlag[0] = 0
			peerFlag[0] = 1
		}
	}

	// Build the merged world-rank list identically on both sides.
	var lo, hi []int
	if myFlag[0] == 0 {
		lo, hi = ic.local.Group(), append([]int(nil), ic.remote...)
	} else {
		lo, hi = append([]int(nil), ic.remote...), ic.local.Group()
	}
	merged := append(lo, hi...)

	// Context agreement: the rank-0 member of the merged group (which
	// is a leader of one side) allocates and distributes over the
	// intercommunicator, then each side broadcasts locally.
	base := make([]byte, 4)
	iOwnCtx := merged[0] == ic.local.group[ic.local.Rank()]
	if iOwnCtx {
		putI32(base, 0, ic.local.p.w.allocCtx(2))
		if err := ic.Send(base, 0, 1); err != nil {
			return nil, err
		}
	} else if ic.local.Rank() == 0 && merged[0] == ic.remote[0] {
		if _, err := ic.Recv(base, 0, 1); err != nil {
			return nil, err
		}
	}
	if err := ic.local.Bcast(base, 0); err != nil {
		return nil, err
	}
	ctx := getI32(base, 0)

	myWorld := ic.local.group[ic.local.Rank()]
	myRank := -1
	for i, wr := range merged {
		if wr == myWorld {
			myRank = i
			break
		}
	}
	if myRank < 0 {
		return nil, fmt.Errorf("%w: caller missing from merged group", ErrComm)
	}
	return &Comm{
		p:       ic.local.p,
		group:   merged,
		myRank:  myRank,
		ptCtx:   ctx,
		collCtx: ctx + 1,
	}, nil
}
