package nativempi

import (
	"bytes"
	"fmt"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// The RDMA channel's differential contract, mirroring the zero-copy
// suite: the placement switch selects HOW payload bytes move on the
// host (a direct remote-memory write into the receiver's buffer versus
// a framed DATA packet), while every virtual-time consequence of the
// protocol — registration charges, CTS delay, completion arithmetic —
// is decided by the protocol alone. Toggling placement may change host
// counters only; the deterministic artifacts may not move by one byte.

// rdmaWorld builds a differential world: clean fabric, lossy fabric
// (reliability layer engaged), or crash-fault FT world, with the RDMA
// placement switch and a threshold low enough that the zero-copy
// workload's ring traffic crosses it.
func rdmaWorld(t *testing.T, mode string, nodes, ppn int, place Switch) *World {
	t.Helper()
	topo := cluster.New(nodes, ppn)
	fab := fabric.Default(topo)
	switch mode {
	case "clean":
	case "loss":
		fab.WithFaults(faults.Uniform(42, 0.05))
	case "crash":
		plan, err := faults.ParseSpec("crash=1:op3")
		if err != nil {
			t.Fatal(err)
		}
		fab.WithFaults(plan)
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	w := NewWorld(topo, fab, Profile{RDMAPlacement: place, RDMAThreshold: 64 << 10})
	if mode == "crash" {
		w.EnableFT()
	}
	return w
}

// TestRDMADifferential is the tentpole guarantee for the RDMA channel:
// across np ∈ {2,4,8}, worker-pool widths {1,8}, and clean / lossy /
// crash fabrics, a placement-on run and a placement-off run produce
// byte-identical receive payloads, final clocks, trace JSONL, and
// metrics JSON. Faulty fabrics disable the protocol entirely
// (retransmission needs a stable framed payload; FT needs revocable
// channels), so those legs also pin the fallback: zero placements,
// zero registrations.
func TestRDMADifferential(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{{1, 2}, {2, 2}, {2, 4}}
	modes := []string{"clean", "loss", "crash"}
	const size = 128 << 10 // above eager limits and the 64 KiB threshold
	for _, sh := range shapes {
		for _, mode := range modes {
			sh, mode := sh, mode
			np := sh.nodes * sh.ppn
			t.Run(fmt.Sprintf("np%d/%s", np, mode), func(t *testing.T) {
				run := func(workers int, place Switch) zcArtifacts {
					w := rdmaWorld(t, mode, sh.nodes, sh.ppn, place)
					w.SetEngineWorkers(workers)
					var a zcArtifacts
					var err error
					if mode == "crash" {
						a, err = runCrashWorkload(w)
					} else {
						a, err = runZCWorkload(w, size)
					}
					if err != nil {
						t.Fatalf("workers=%d place=%v: %v", workers, place, err)
					}
					return a
				}
				ref := run(1, SwitchOn)
				for _, workers := range []int{1, 8} {
					for _, place := range []Switch{SwitchOn, SwitchOff} {
						if workers == 1 && place == SwitchOn {
							continue
						}
						assertSameArtifacts(t, run(workers, place), ref)
					}
				}

				on := run(1, SwitchOn)
				off := run(1, SwitchOff)
				if mode == "clean" {
					if on.host.RDMA.Writes < int64(np) {
						t.Errorf("placement on: %d remote writes, want >= %d", on.host.RDMA.Writes, np)
					}
					if on.host.Reg.Misses == 0 {
						t.Error("clean RDMA run registered nothing")
					}
					// Registration is protocol state: identical economics
					// whichever way the bytes moved.
					if on.host.Reg != off.host.Reg {
						t.Errorf("registration stats differ: on %+v, off %+v", on.host.Reg, off.host.Reg)
					}
				} else {
					if on.host.Reg.Misses != 0 || on.host.RDMA.Writes != 0 {
						t.Errorf("%s fabric: protocol active (reg misses %d, writes %d), want fallback",
							mode, on.host.Reg.Misses, on.host.RDMA.Writes)
					}
				}
				if off.host.RDMA.Writes != 0 {
					t.Errorf("placement off: %d remote writes, want 0", off.host.RDMA.Writes)
				}
			})
		}
	}
}

// TestRDMAWarmColdCounters pins the cache economics end to end over
// the wire protocol: a repeated large transfer registers both ends
// exactly once (cold misses) and rides warm hits thereafter, with the
// placement datapath writing every payload and the counters surfacing
// in HostStats and the deterministic metrics JSON.
func TestRDMAWarmColdCounters(t *testing.T) {
	w := rdmaWorld(t, "clean", 2, 1, SwitchOn)
	const size = 512 << 10
	a, err := runRepeatSend(w, size, 3)
	if err != nil {
		t.Fatal(err)
	}
	hs := a.host
	if hs.RDMA.Writes != 3 || hs.RDMA.BytesPlaced != 3*size {
		t.Errorf("placement: %d writes / %d bytes, want 3 / %d", hs.RDMA.Writes, hs.RDMA.BytesPlaced, 3*size)
	}
	// Iteration 1 registers the send buffer and the receive buffer
	// (cold misses); iterations 2 and 3 hit both.
	if hs.Reg.Misses != 2 {
		t.Errorf("cold misses %d, want 2", hs.Reg.Misses)
	}
	if hs.Reg.Hits != 4 {
		t.Errorf("warm hits %d, want 4", hs.Reg.Hits)
	}
	if hs.Reg.Evictions != 0 {
		t.Errorf("evictions %d, want 0", hs.Reg.Evictions)
	}
	// PinnedBytes sums across ranks (each end pins its buffer);
	// PinnedPeak is the per-rank high-water maximum.
	if hs.Reg.PinnedBytes != 2*size || hs.Reg.PinnedPeak != size {
		t.Errorf("pinned %d/%d, want %d/%d", hs.Reg.PinnedBytes, hs.Reg.PinnedPeak, 2*size, size)
	}
	for _, counter := range []string{"reg_hits", "reg_misses"} {
		if !bytes.Contains(a.met, []byte(counter)) {
			t.Errorf("metrics JSON missing %q", counter)
		}
	}
}

// runRepeatSend drives iters sequential rank0→rank1 transfers of the
// SAME buffers, the warm-cache workload, capturing the artifacts.
func runRepeatSend(w *World, size, iters int) (zcArtifacts, error) {
	a, err := captureArtifacts(w, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			buf := pattern(size, 0x5a)
			for k := 0; k < iters; k++ {
				if err := c.Send(buf, 1, 7); err != nil {
					return err
				}
			}
			return nil
		}
		rbuf := make([]byte, size)
		for k := 0; k < iters; k++ {
			if _, err := c.Recv(rbuf, 0, 7); err != nil {
				return err
			}
			if want := pattern(size, 0x5a); !bytes.Equal(rbuf, want) {
				return fmt.Errorf("iter %d: payload corrupted", k)
			}
		}
		a := rbuf // keep the buffer's address live across iterations
		_ = a
		return nil
	})
	return a, err
}

// TestRDMAAdaptivePromotion pins the adaptive protocol switch: a
// rendezvous message BELOW the RDMA threshold still rides the RDMA
// channel when its buffer is already covered by a live registration —
// the transfer is free to place — while a fresh sub-threshold buffer
// stays on the framed rendezvous path.
func TestRDMAAdaptivePromotion(t *testing.T) {
	topo := cluster.New(2, 1)
	w := NewWorld(topo, fabric.Default(topo), Profile{}) // default 256 KiB threshold
	const big = 512 << 10
	const small = 64 << 10 // rendezvous (above eager), below the threshold
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			buf := pattern(big, 1)
			if err := c.Send(buf, 1, 1); err != nil { // above threshold: registers buf
				return err
			}
			if err := c.Send(buf[:small], 1, 2); err != nil { // covered: promoted
				return err
			}
			return c.Send(pattern(small, 3), 1, 3) // fresh buffer: framed rendezvous
		}
		rbuf := make([]byte, big)
		for tag := 1; tag <= 3; tag++ {
			n := big
			if tag > 1 {
				n = small
			}
			if _, err := c.Recv(rbuf[:n], 0, tag); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := w.HostStats()
	if hs.RDMA.Writes != 2 {
		t.Errorf("remote writes %d, want 2 (threshold send + promoted warm send)", hs.RDMA.Writes)
	}
	if hs.Reg.Hits != 2 || hs.Reg.Misses != 2 {
		t.Errorf("reg counters h%d m%d, want h2 m2", hs.Reg.Hits, hs.Reg.Misses)
	}
}

// TestRDMAFallbackUnderFaults mirrors TestZeroCopyDisabledUnderFaults
// for the RDMA channel: a fault plan forces the framed path, and the
// artifacts still match a placement-off world byte for byte.
func TestRDMAFallbackUnderFaults(t *testing.T) {
	const size = 96 << 10
	run := func(place Switch) zcArtifacts {
		topo := cluster.New(2, 1)
		fab := fabric.Default(topo).WithFaults(faults.Uniform(5, 0.05))
		w := NewWorld(topo, fab, Profile{RDMAPlacement: place, RDMAThreshold: 64 << 10})
		a, err := runZCWorkload(w, size)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	on := run(SwitchOn)
	if on.host.RDMA.Writes != 0 || on.host.Reg.Misses != 0 {
		t.Errorf("fault plan active but protocol engaged (writes %d, misses %d)",
			on.host.RDMA.Writes, on.host.Reg.Misses)
	}
	assertSameArtifacts(t, on, run(SwitchOff))
}

// TestRMACrossover demonstrates the protocol trade the rebase of
// rma.go exists to expose, as exact virtual-time arithmetic: below the
// eager limit a fence-bounded put epoch LOSES to plain send/recv (the
// epoch synchronisation costs more than the two-sided handshake), and
// at RDMA sizes it WINS (the window's standing registration plus
// one-sided placement beat the per-message rendezvous round trip).
func TestRMACrossover(t *testing.T) {
	const iters = 8
	perTransfer := func(size int) (put, p2p vtime.Duration) {
		topo := cluster.New(2, 1)
		w := NewWorld(topo, fabric.Default(topo), Profile{})
		var putSpan, p2pSpan [2]vtime.Duration
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			me := p.Rank()
			src := pattern(size, 9)
			exposed := make([]byte, size)

			win, err := c.WinCreate(exposed)
			if err != nil {
				return err
			}
			// Warm-up epoch and exchange: first-touch registration
			// charges land here, outside the measured phases, so both
			// variants are measured with a warm cache.
			if me == 0 {
				if err := win.Put(src, 1, 0); err != nil {
					return err
				}
			}
			if err := win.Fence(); err != nil {
				return err
			}
			if me == 0 {
				if err := c.Send(src, 1, 99); err != nil {
					return err
				}
			} else if _, err := c.Recv(exposed, 0, 99); err != nil {
				return err
			}

			if err := c.Barrier(); err != nil {
				return err
			}
			start := p.Clock().Now()
			if me == 0 {
				for k := 0; k < iters; k++ {
					if err := win.Put(src, 1, 0); err != nil {
						return err
					}
				}
			}
			if err := win.Fence(); err != nil {
				return err
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			putSpan[me] = p.Clock().Now().Sub(start)

			if err := c.Barrier(); err != nil {
				return err
			}
			start = p.Clock().Now()
			for k := 0; k < iters; k++ {
				if me == 0 {
					if err := c.Send(src, 1, 100+k); err != nil {
						return err
					}
				} else if _, err := c.Recv(exposed, 0, 100+k); err != nil {
					return err
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			p2pSpan[me] = p.Clock().Now().Sub(start)
			return win.Free()
		})
		if err != nil {
			t.Fatal(err)
		}
		putMax, p2pMax := putSpan[0], p2pSpan[0]
		if putSpan[1] > putMax {
			putMax = putSpan[1]
		}
		if p2pSpan[1] > p2pMax {
			p2pMax = p2pSpan[1]
		}
		return putMax / iters, p2pMax / iters
	}

	smallPut, smallP2P := perTransfer(1 << 10)   // eager on both paths
	largePut, largeP2P := perTransfer(512 << 10) // RDMA put vs rendezvous send
	if smallPut <= smallP2P {
		t.Errorf("1 KiB: put+fence %v <= send/recv %v; epoch sync should dominate", smallPut, smallP2P)
	}
	if largePut >= largeP2P {
		t.Errorf("512 KiB: put+fence %v >= send/recv %v; one-sided placement should win", largePut, largeP2P)
	}
	t.Logf("crossover: 1KiB put %v vs p2p %v; 512KiB put %v vs p2p %v",
		smallPut, smallP2P, largePut, largeP2P)
}

// captureArtifacts runs body under a fresh recorder/registry and
// captures the full artifact surface, like runZCWorkload but for
// custom workloads.
func captureArtifacts(w *World, body func(*Proc) error) (zcArtifacts, error) {
	rec := trace.New(0)
	met := metrics.NewRegistry()
	w.SetRecorder(rec)
	w.SetMetrics(met)
	n := w.Size()
	a := zcArtifacts{recvs: make([][]byte, n), clocks: make([]vtime.Time, n)}
	err := w.Run(func(p *Proc) error {
		if err := body(p); err != nil {
			return err
		}
		a.clocks[p.Rank()] = p.Clock().Now()
		return nil
	})
	if err != nil {
		return a, err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return a, err
	}
	a.trace = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := met.WriteJSON(&buf); err != nil {
		return a, err
	}
	a.met = buf.Bytes()
	a.host = w.HostStats()
	return a, nil
}

// FuzzRDMAEquivalence drives the placement differential across the
// (message size × eager limit × RDMA threshold × cache capacity ×
// fault plan) space: whatever protocol tier each message lands in and
// however hard the cache churns, placement on and off must agree on
// every virtual artifact.
func FuzzRDMAEquivalence(f *testing.F) {
	f.Add(uint32(64), uint32(0), uint32(0), uint32(0), false)
	f.Add(uint32(128<<10), uint32(0), uint32(64<<10), uint32(0), false)
	f.Add(uint32(200_000), uint32(8192), uint32(100), uint32(2), false)
	f.Add(uint32(96<<10), uint32(1), uint32(1), uint32(1), true)
	f.Add(uint32(256<<10), uint32(32<<10), uint32(300<<10), uint32(3), false)
	f.Fuzz(func(t *testing.T, rawSize, rawEager, rawThresh, rawCache uint32, faulty bool) {
		size := int(rawSize%(256<<10)) + 1
		eager := int(rawEager % (64 << 10))    // 0 = fabric default
		thresh := int(rawThresh%(320<<10)) - 1 // -1 disables the protocol
		cacheEntries := int(rawCache % 9)      // 0 = default capacity
		run := func(place Switch) zcArtifacts {
			topo := cluster.New(2, 1)
			fab := fabric.Default(topo)
			if faulty {
				plan := faults.Uniform(uint64(rawSize)^uint64(rawThresh)<<32, 0.05)
				fab = fab.WithFaults(plan)
			}
			w := NewWorld(topo, fab, Profile{
				RDMAPlacement:   place,
				RDMAThreshold:   thresh,
				RegCacheEntries: cacheEntries,
				EagerInter:      eager,
				EagerIntra:      eager,
			})
			a, err := runZCWorkload(w, size)
			if err != nil {
				t.Fatal(err)
			}
			return a
		}
		on := run(SwitchOn)
		off := run(SwitchOff)
		assertSameArtifacts(t, on, off)
		if faulty && on.host.RDMA.Writes != 0 {
			t.Errorf("fault plan active but %d placements", on.host.RDMA.Writes)
		}
		if off.host.RDMA.Writes != 0 {
			t.Errorf("placement off but %d placements", off.host.RDMA.Writes)
		}
		if on.host.Reg != off.host.Reg {
			t.Errorf("registration stats differ: on %+v, off %+v", on.host.Reg, off.host.Reg)
		}
	})
}
