package nativempi

import (
	"bytes"
	"errors"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// testWorld builds a world with the generic profile.
func testWorld(nodes, ppn int) *World {
	topo := cluster.New(nodes, ppn)
	return NewWorld(topo, fabric.Default(topo), Profile{})
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i*7)
	}
	return b
}

func TestBlockingSendRecvEager(t *testing.T) {
	w := testWorld(1, 2)
	msg := pattern(64, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			return c.Send(msg, 1, 7)
		default:
			buf := make([]byte, 64)
			st, err := c.Recv(buf, 0, 7)
			if err != nil {
				return err
			}
			if !bytes.Equal(buf, msg) {
				t.Error("payload corrupted")
			}
			if st.Source != 0 || st.Tag != 7 || st.Bytes != 64 {
				t.Errorf("status = %+v", st)
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockingSendRecvRendezvous(t *testing.T) {
	w := testWorld(2, 1) // inter-node, eager threshold 16K
	msg := pattern(256*1024, 9)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(msg, 1, 0)
		}
		buf := make([]byte, len(msg))
		if _, err := c.Recv(buf, 0, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			t.Error("rendezvous payload corrupted")
		}
		if p.Stats().MsgsReceived != 1 {
			t.Errorf("MsgsReceived = %d", p.Stats().MsgsReceived)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Proc(0).Stats().RndvSends != 1 || w.Proc(0).Stats().EagerSends != 0 {
		t.Fatalf("protocol selection wrong: %+v", w.Proc(0).Stats())
	}
}

// TestRendezvousAlignedSenderIDs: request ids are a per-rank counter,
// so two senders in their first rendezvous carry the same id. With
// both transfers pending at one receiver, the pending-receive table
// must key by (source, id) — keyed by id alone, the entries collide:
// the first DATA completes the wrong request and the second panics
// with "DATA for unknown request".
func TestRendezvousAlignedSenderIDs(t *testing.T) {
	w := testWorld(3, 1) // inter-node, so 256 KiB goes rendezvous
	msgs := [3][]byte{nil, pattern(256*1024, 1), pattern(256*1024, 2)}
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() != 0 {
			r, err := c.Isend(msgs[p.Rank()], 0, 5)
			if err != nil {
				return err
			}
			_, err = r.Wait()
			return err
		}
		bufs := [2][]byte{make([]byte, 256*1024), make([]byte, 256*1024)}
		reqs := make([]*Request, 2)
		// Post both receives before waiting so both rendezvous are
		// in flight — and in recvPending — at the same time.
		for i, src := range []int{1, 2} {
			r, err := c.Irecv(bufs[i], src, 5)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		if err := Waitall(reqs); err != nil {
			return err
		}
		for i, src := range []int{1, 2} {
			if !bytes.Equal(bufs[i], msgs[src]) {
				t.Errorf("payload from rank %d corrupted", src)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Proc(1).Stats().RndvSends; got != 1 {
		t.Fatalf("sender 1 should have gone rendezvous: %+v", w.Proc(1).Stats())
	}
}

func TestEagerProtocolSelected(t *testing.T) {
	w := testWorld(2, 1)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(make([]byte, 1024), 1, 0)
		}
		_, err := c.Recv(make([]byte, 1024), 0, 0)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Proc(0).Stats().EagerSends != 1 {
		t.Fatalf("1KB inter-node should be eager: %+v", w.Proc(0).Stats())
	}
}

func TestNonBlockingWaitall(t *testing.T) {
	w := testWorld(1, 2)
	const k = 16
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			reqs := make([]*Request, k)
			for i := 0; i < k; i++ {
				r, err := c.Isend(pattern(128, byte(i)), 1, i)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			return Waitall(reqs)
		}
		reqs := make([]*Request, k)
		bufs := make([][]byte, k)
		for i := 0; i < k; i++ {
			bufs[i] = make([]byte, 128)
			r, err := c.Irecv(bufs[i], 0, i)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		if err := Waitall(reqs); err != nil {
			return err
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(bufs[i], pattern(128, byte(i))) {
				t.Errorf("message %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderingSameTag(t *testing.T) {
	// Non-overtaking: two same-tag messages must arrive in send order.
	w := testWorld(1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, 5); err != nil {
				return err
			}
			return c.Send([]byte{2}, 1, 5)
		}
		a := make([]byte, 1)
		b := make([]byte, 1)
		if _, err := c.Recv(a, 0, 5); err != nil {
			return err
		}
		if _, err := c.Recv(b, 0, 5); err != nil {
			return err
		}
		if a[0] != 1 || b[0] != 2 {
			t.Errorf("overtaking: got %d then %d", a[0], b[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := testWorld(1, 3)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		switch p.Rank() {
		case 0:
			got := map[int]bool{}
			for i := 0; i < 2; i++ {
				buf := make([]byte, 4)
				st, err := c.Recv(buf, AnySource, AnyTag)
				if err != nil {
					return err
				}
				got[st.Source] = true
				if st.Tag != st.Source*10 {
					t.Errorf("tag %d from source %d", st.Tag, st.Source)
				}
			}
			if !got[1] || !got[2] {
				t.Errorf("wildcard receive missed a source: %v", got)
			}
			return nil
		default:
			return c.Send(pattern(4, 0), 0, p.Rank()*10)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTruncation(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(make([]byte, 100), 1, 0)
		}
		buf := make([]byte, 10)
		_, err := c.Recv(buf, 0, 0)
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v, want ErrTruncated", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if _, err := c.Isend(nil, 5, 0); !errors.Is(err, ErrRank) {
			t.Errorf("bad rank: %v", err)
		}
		if _, err := c.Isend(nil, 0, -3); !errors.Is(err, ErrTag) {
			t.Errorf("bad tag: %v", err)
		}
		if _, err := c.Irecv(nil, 9, 0); !errors.Is(err, ErrRank) {
			t.Errorf("bad recv rank: %v", err)
		}
		if _, err := c.Irecv(nil, 0, -2); !errors.Is(err, ErrTag) {
			t.Errorf("bad recv tag: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		other := 1 - p.Rank()
		out := pattern(2048, byte(p.Rank()))
		in := make([]byte, 2048)
		if _, err := c.Sendrecv(out, other, 1, in, other, 1); err != nil {
			return err
		}
		if !bytes.Equal(in, pattern(2048, byte(other))) {
			t.Errorf("rank %d: exchange corrupted", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLargeSendrecvBothDirections(t *testing.T) {
	// Simultaneous rendezvous in both directions must not deadlock
	// when posted via Sendrecv.
	w := testWorld(2, 1)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		other := 1 - p.Rank()
		out := pattern(1<<20, byte(p.Rank()+1))
		in := make([]byte, 1<<20)
		if _, err := c.Sendrecv(out, other, 0, in, other, 0); err != nil {
			return err
		}
		if !bytes.Equal(in, pattern(1<<20, byte(other+1))) {
			t.Errorf("rank %d: large exchange corrupted", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProbe(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(make([]byte, 48), 1, 3)
		}
		st, err := c.Probe(0, 3)
		if err != nil {
			return err
		}
		if st.Bytes != 48 || st.Source != 0 || st.Tag != 3 {
			t.Errorf("probe status %+v", st)
		}
		// The message is still there to receive.
		buf := make([]byte, 48)
		_, err = c.Recv(buf, 0, 3)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIprobeMiss(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 1 {
			if _, ok, err := c.Iprobe(0, 99); err != nil || ok {
				t.Errorf("Iprobe hit nothing-sent: ok=%v err=%v", ok, err)
			}
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRequestNilSafety(t *testing.T) {
	var r *Request
	if _, err := r.Wait(); !errors.Is(err, ErrRequest) {
		t.Fatalf("nil Wait: %v", err)
	}
	if _, _, err := r.Test(); !errors.Is(err, ErrRequest) {
		t.Fatalf("nil Test: %v", err)
	}
}

func TestStatusCount(t *testing.T) {
	st := Status{Bytes: 32}
	if n, err := st.Count(kindInt()); err != nil || n != 8 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	st.Bytes = 33
	if _, err := st.Count(kindInt()); err == nil {
		t.Fatal("non-multiple byte count must error")
	}
}

// --- virtual-time behaviour ---

func pingPongLatency(t *testing.T, w *World, n int) vtime.Duration {
	t.Helper()
	var lat vtime.Duration
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, n)
		const iters = 10
		if p.Rank() == 0 {
			sw := vtime.StartStopwatch(p.Clock())
			for i := 0; i < iters; i++ {
				if err := c.Send(buf, 1, 0); err != nil {
					return err
				}
				if _, err := c.Recv(buf, 1, 0); err != nil {
					return err
				}
			}
			lat = vtime.Duration(int64(sw.Elapsed()) / (2 * iters))
			return nil
		}
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(buf, 0, 0); err != nil {
				return err
			}
			if err := c.Send(buf, 0, 0); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return lat
}

func TestIntraNodeFasterThanInterNode(t *testing.T) {
	intra := pingPongLatency(t, testWorld(1, 2), 8)
	inter := pingPongLatency(t, testWorld(2, 1), 8)
	if intra >= inter {
		t.Fatalf("intra %v should beat inter %v for small messages", intra, inter)
	}
	if inter < vtime.Micros(0.5) || inter > vtime.Micros(3) {
		t.Fatalf("native inter-node small latency %v outside [0.5us,3us]", inter)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	small := pingPongLatency(t, testWorld(2, 1), 8)
	large := pingPongLatency(t, testWorld(2, 1), 1<<20)
	if large < 10*small {
		t.Fatalf("1MB latency %v should dwarf 8B latency %v", large, small)
	}
	// 1MB at 12.5 GB/s is ~84us of pure wire time, one way.
	if large < vtime.Micros(80) {
		t.Fatalf("1MB latency %v below wire time", large)
	}
}

func TestDeterministicTimes(t *testing.T) {
	// The same workload must produce bit-identical virtual times on
	// every run, whatever the host scheduler does.
	run := func() vtime.Duration { return pingPongLatency(t, testWorld(2, 1), 4096) }
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: latency %v != %v — simulation is non-deterministic", i, got, first)
		}
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// A windowed stream of large messages must approach the link
	// bandwidth (12.5 GB/s inter-node), not exceed it.
	w := testWorld(2, 1)
	const (
		msg    = 1 << 20
		window = 32
	)
	var mbps float64
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			buf := make([]byte, msg)
			sw := vtime.StartStopwatch(p.Clock())
			reqs := make([]*Request, window)
			for i := range reqs {
				r, err := c.Isend(buf, 1, 0)
				if err != nil {
					return err
				}
				reqs[i] = r
			}
			if err := Waitall(reqs); err != nil {
				return err
			}
			ack := make([]byte, 1)
			if _, err := c.Recv(ack, 1, 1); err != nil {
				return err
			}
			elapsed := sw.Elapsed().Seconds()
			mbps = float64(msg) * window / elapsed / 1e6
			return nil
		}
		buf := make([]byte, msg)
		reqs := make([]*Request, window)
		for i := range reqs {
			r, err := c.Irecv(buf, 0, 0)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		if err := Waitall(reqs); err != nil {
			return err
		}
		return c.Send(make([]byte, 1), 0, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if mbps > 12500 {
		t.Fatalf("measured %0.f MB/s exceeds the 12500 MB/s link", mbps)
	}
	if mbps < 8000 {
		t.Fatalf("measured %0.f MB/s; windowed large messages should approach link rate", mbps)
	}
}

func TestUnexpectedMessageCopyCost(t *testing.T) {
	// A message that hit the wire before the receive was posted sat in
	// a bounce buffer and pays an extra copy at Recv time — so the
	// Recv-call cost of an already-queued message must grow with its
	// size at roughly the channel copy rate.
	lateRecvCost := func(n int) vtime.Duration {
		w := testWorld(1, 2)
		var cost vtime.Duration
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			if p.Rank() == 0 {
				return c.Send(make([]byte, n), 1, 0)
			}
			// Stall in virtual time so the message is certainly on the
			// unexpected queue (in virtual terms) before posting.
			p.Clock().Advance(vtime.Micros(500))
			sw := vtime.StartStopwatch(p.Clock())
			buf := make([]byte, n)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				return err
			}
			cost = sw.Elapsed()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	small := lateRecvCost(64)
	big := lateRecvCost(8192)
	grow := big - small
	wire := vtime.PerByte(8192-64, fabric.FronteraShm().Bandwidth)
	if grow < wire*9/10 {
		t.Fatalf("unexpected-copy growth %v below expected copy cost %v (small=%v big=%v)",
			grow, wire, small, big)
	}
}

func kindInt() jvm.Kind { return jvm.Int }
