package nativempi

import (
	"fmt"
	"testing"
)

func TestWaitany(t *testing.T) {
	w := testWorld(1, 3)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if pr.Rank() != 0 {
			// Rank 2 sends promptly; rank 1 after a virtual delay.
			if pr.Rank() == 1 {
				pr.Clock().Advance(1 << 28)
			}
			return c.Send(pattern(8, byte(pr.Rank())), 0, pr.Rank())
		}
		buf1 := make([]byte, 8)
		buf2 := make([]byte, 8)
		r1, err := c.Irecv(buf1, 1, 1)
		if err != nil {
			return err
		}
		r2, err := c.Irecv(buf2, 2, 2)
		if err != nil {
			return err
		}
		reqs := []*Request{nil, r1, r2}
		i, st, err := Waitany(reqs)
		if err != nil {
			return err
		}
		if i == 0 {
			return fmt.Errorf("Waitany returned the nil slot")
		}
		if _, _, err := Waitany(reqs); err != nil { // completes the other
			return err
		}
		_ = st
		if buf1[0] != pattern(8, 1)[0] || buf2[0] != pattern(8, 2)[0] {
			return fmt.Errorf("payloads corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitanyNoActive(t *testing.T) {
	i, _, err := Waitany([]*Request{nil, nil})
	if err != nil || i != -1 {
		t.Fatalf("Waitany(nil...) = %d, %v", i, err)
	}
}

func TestTestallAndWaitsome(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if pr.Rank() == 1 {
			for k := 0; k < 3; k++ {
				if err := c.Send(pattern(16, byte(k)), 0, k); err != nil {
					return err
				}
			}
			return nil
		}
		var reqs []*Request
		bufs := make([][]byte, 3)
		for k := 0; k < 3; k++ {
			bufs[k] = make([]byte, 16)
			r, err := c.Irecv(bufs[k], 1, k)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		// Drive Testall until everything lands.
		for {
			done, err := Testall(reqs)
			if err != nil {
				return err
			}
			if done {
				break
			}
			pr.progressOnce()
		}
		for k := 0; k < 3; k++ {
			if bufs[k][0] != pattern(16, byte(k))[0] {
				return fmt.Errorf("message %d corrupted", k)
			}
		}

		// Waitsome on already-consumed requests: no active entries.
		idx, err := Waitsome(reqs)
		if err != nil {
			return err
		}
		if idx != nil {
			return fmt.Errorf("Waitsome on consumed requests returned %v", idx)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitsomeReturnsBatch(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		const k = 5
		if pr.Rank() == 1 {
			for i := 0; i < k; i++ {
				if err := c.Send(pattern(8, byte(i)), 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		var reqs []*Request
		for i := 0; i < k; i++ {
			r, err := c.Irecv(make([]byte, 8), 1, i)
			if err != nil {
				return err
			}
			reqs = append(reqs, r)
		}
		seen := map[int]bool{}
		for len(seen) < k {
			idx, err := Waitsome(reqs)
			if err != nil {
				return err
			}
			if len(idx) == 0 {
				return fmt.Errorf("Waitsome returned empty with work pending")
			}
			for _, i := range idx {
				if seen[i] {
					return fmt.Errorf("index %d returned twice", i)
				}
				seen[i] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestallEmpty(t *testing.T) {
	done, err := Testall(nil)
	if err != nil || !done {
		t.Fatalf("Testall(nil) = %v, %v", done, err)
	}
}
