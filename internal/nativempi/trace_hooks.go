package nativempi

import (
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Observability hooks. A World optionally carries a trace.Recorder
// (event spans) and a metrics.Registry (order-independent aggregates);
// all hooks are nil-safe no-ops without them, keeping the hot paths
// free of conditionals beyond one pointer test. Neither sink ever
// advances a virtual clock, so instrumented and bare runs report
// identical times.

// SetRecorder attaches a recorder to the world. Attach before Run.
func (w *World) SetRecorder(r *trace.Recorder) { w.rec = r }

// Recorder returns the attached recorder (nil if none).
func (w *World) Recorder() *trace.Recorder { return w.rec }

// SetMetrics attaches a metrics registry to the world. Attach before
// Run.
func (w *World) SetMetrics(m *metrics.Registry) { w.met = m }

// Metrics returns the attached registry (nil if none).
func (w *World) Metrics() *metrics.Registry { return w.met }

// recordSend logs a completed send injection.
func (p *Proc) recordSend(peer, bytes int, start, end vtime.Time) {
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindSend, Peer: peer, Bytes: bytes,
			Start: start, End: end,
		})
	}
	if p.w.met != nil {
		p.w.met.Observe(p.rank, "p2p", "send_ps", int64(end.Sub(start)))
		p.w.met.Observe(p.rank, "p2p", "send_bytes", int64(bytes))
	}
}

// recordRecv logs a completed receive.
func (p *Proc) recordRecv(peer, bytes int, start, end vtime.Time) {
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindRecv, Peer: peer, Bytes: bytes,
			Start: start, End: end,
		})
	}
	if p.w.met != nil {
		p.w.met.Observe(p.rank, "p2p", "recv_ps", int64(end.Sub(start)))
		p.w.met.Observe(p.rank, "p2p", "recv_bytes", int64(bytes))
	}
}

// recordRel logs a reliability-layer event (fault, ack-drop notice) at
// a single virtual instant.
func (p *Proc) recordRel(kind trace.Kind, detail string, peer, bytes int, at vtime.Time) {
	p.recordRelSpan(kind, detail, peer, bytes, at, at)
}

// recordRelSpan logs a reliability-layer event with a virtual extent:
// the RTO wait behind a retransmission, or a message's send-to-ack
// round trip.
func (p *Proc) recordRelSpan(kind trace.Kind, detail string, peer, bytes int, start, end vtime.Time) {
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: kind, Detail: detail, Peer: peer, Bytes: bytes,
			Start: start, End: end,
		})
	}
	if p.w.met != nil && end > start {
		switch kind {
		case trace.KindRetransmit:
			p.w.met.Observe(p.rank, "rel", "retx_wait_ps", int64(end.Sub(start)))
		case trace.KindAck:
			p.w.met.Observe(p.rank, "rel", "ack_rtt_ps", int64(end.Sub(start)))
		}
	}
}

// collSpan opens a collective span; the returned func closes it. It
// doubles as the entry-serialization hook for every blocking
// collective: the span open takes the rank's thread gate and the
// close releases it, so the thread-level rules (FUNNELED main-thread
// check, SERIALIZED overlap check, MULTIPLE lock arbitration) cover
// the whole collective family through this one seam.
func (c *Comm) collSpan(name string, bytes int) func() {
	c.p.gateEnter()
	if c.p.w.rec == nil && c.p.w.met == nil {
		return c.p.leaveFn
	}
	start := c.p.clock.Now()
	return func() {
		end := c.p.clock.Now()
		if c.p.w.rec != nil {
			c.p.w.rec.Record(trace.Event{
				Rank: c.p.rank, Kind: trace.KindColl, Detail: name, Peer: -1,
				Bytes: bytes, Start: start, End: end,
			})
		}
		if c.p.w.met != nil {
			c.p.w.met.Observe(c.p.rank, "coll", name+"_ps", int64(end.Sub(start)))
			c.p.w.met.Observe(c.p.rank, "coll", name+"_bytes", int64(bytes))
		}
		c.p.gateLeave()
	}
}

// recordLock logs one contended entry-lock arbitration: the span from
// the thread's attempted entry to the instant it holds the lock.
// Uncontended entries emit nothing, so runs that never contend are
// byte-identical with runs that predate threading support. The
// arbitration wait is virtual state — a pure function of the
// deterministic handoff order — so it is safe in the registry.
func (p *Proc) recordLock(tid int, start, end vtime.Time) {
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindLock, Detail: "arb", Peer: tid,
			Start: start, End: end,
		})
	}
	if p.w.met != nil {
		p.w.met.Add(p.rank, "thread", "arb_waits", 1)
		p.w.met.Observe(p.rank, "thread", "arb_wait_ps", int64(end.Sub(start)))
	}
}

// recordReg logs one charged registration-cache operation: pinning a
// buffer ("register") or a capacity eviction's deregistration
// ("evict"). Hits are free and emit nothing. Registration work is
// protocol state — identical whatever the host datapath — so it is
// safe in the deterministic registry.
func (p *Proc) recordReg(detail string, bytes int, start, end vtime.Time) {
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindReg, Detail: detail, Peer: -1,
			Bytes: bytes, Start: start, End: end,
		})
	}
	if p.w.met != nil && end > start {
		p.w.met.Observe(p.rank, "rdma", "reg_ps", int64(end.Sub(start)))
	}
}

// regCounter bumps one registration-cache counter (reg_hits,
// reg_misses, reg_evicts) in the deterministic registry.
func (p *Proc) regCounter(name string) {
	if p.w.met != nil {
		p.w.met.Add(p.rank, "rdma", name, 1)
	}
}

// rmaSpan logs a one-sided operation injection.
func (w *Win) rmaSpan(name string, peer, bytes int, start vtime.Time) {
	p := w.c.p
	end := p.clock.Now()
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindRMA, Detail: name, Peer: peer,
			Bytes: bytes, Start: start, End: end,
		})
	}
	if p.w.met != nil {
		p.w.met.Observe(p.rank, "rma", name+"_ps", int64(end.Sub(start)))
		p.w.met.Observe(p.rank, "rma", name+"_bytes", int64(bytes))
	}
}
