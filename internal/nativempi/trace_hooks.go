package nativempi

import (
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Tracing hooks. A World optionally carries a trace.Recorder; all
// hooks are nil-safe no-ops without one, keeping the hot paths free of
// conditionals beyond one pointer test.

// SetRecorder attaches a recorder to the world. Attach before Run.
func (w *World) SetRecorder(r *trace.Recorder) { w.rec = r }

// Recorder returns the attached recorder (nil if none).
func (w *World) Recorder() *trace.Recorder { return w.rec }

// recordSend logs a completed send injection.
func (p *Proc) recordSend(peer, bytes int, start, end vtime.Time) {
	if p.w.rec == nil {
		return
	}
	p.w.rec.Record(trace.Event{
		Rank: p.rank, Kind: trace.KindSend, Peer: peer, Bytes: bytes,
		Start: start, End: end,
	})
}

// recordRecv logs a completed receive.
func (p *Proc) recordRecv(peer, bytes int, start, end vtime.Time) {
	if p.w.rec == nil {
		return
	}
	p.w.rec.Record(trace.Event{
		Rank: p.rank, Kind: trace.KindRecv, Peer: peer, Bytes: bytes,
		Start: start, End: end,
	})
}

// recordRel logs a reliability-layer event (fault, retransmit, ack)
// at a single virtual instant.
func (p *Proc) recordRel(kind trace.Kind, detail string, peer, bytes int, at vtime.Time) {
	if p.w.rec == nil {
		return
	}
	p.w.rec.Record(trace.Event{
		Rank: p.rank, Kind: kind, Detail: detail, Peer: peer, Bytes: bytes,
		Start: at, End: at,
	})
}

// collSpan opens a collective span; the returned func closes it.
func (c *Comm) collSpan(name string, bytes int) func() {
	if c.p.w.rec == nil {
		return func() {}
	}
	start := c.p.clock.Now()
	return func() {
		c.p.w.rec.Record(trace.Event{
			Rank: c.p.rank, Kind: trace.KindColl, Detail: name, Peer: -1,
			Bytes: bytes, Start: start, End: c.p.clock.Now(),
		})
	}
}

// rmaSpan logs a one-sided operation injection.
func (w *Win) rmaSpan(name string, peer, bytes int, start vtime.Time) {
	if w.c.p.w.rec == nil {
		return
	}
	w.c.p.w.rec.Record(trace.Event{
		Rank: w.c.p.rank, Kind: trace.KindRMA, Detail: name, Peer: peer,
		Bytes: bytes, Start: start, End: w.c.p.clock.Now(),
	})
}
