package nativempi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/jvm"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// ftWorld builds a fault-tolerant world, optionally with a fault spec
// ("crash=1:op1", "seed=7,drop=0.05,crash=2@40us", ...).
func ftWorld(t *testing.T, nodes, ppn int, spec string) *World {
	t.Helper()
	topo := cluster.New(nodes, ppn)
	fab := fabric.Default(topo)
	if spec != "" {
		plan, err := faults.ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		fab.WithFaults(plan)
	}
	w := NewWorld(topo, fab, Profile{})
	w.EnableFT()
	return w
}

// runGuarded runs the world with a hang guard: a recovery bug that
// deadlocks survivors must fail the test, not wedge the suite.
func runGuarded(t *testing.T, w *World, fn func(p *Proc) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.Run(fn) }()
	select {
	case err := <-done:
		return err
	case <-time.After(60 * time.Second):
		t.Fatal("fault-tolerant run hung")
		return nil
	}
}

// isFailure mirrors what a fault-tolerant application tests for.
func isFailure(err error) bool {
	return errors.Is(err, ErrProcFailed) || errors.Is(err, ErrRevoked)
}

// ftAllreduceSum is the canonical shrink-and-continue loop the OMB FT
// driver uses, reduced to its skeleton: run iterations of a validated
// allreduce; on a failure-class error revoke, shrink, agree on the
// slowest survivor's iteration (checkpoint rollback), and continue on
// the shrunken communicator. Each rank contributes its world rank + 1,
// so the expected sum identifies exactly which members took part.
func ftAllreduceSum(p *Proc, iters int) (*Comm, uint64, error) {
	c := p.CommWorld()
	contrib := uint64(p.Rank() + 1)
	var last uint64
	for iter := 0; iter < iters; {
		var send, recv [8]byte
		binary.LittleEndian.PutUint64(send[:], contrib)
		err := c.Allreduce(send[:], recv[:], jvm.Long, OpSum)
		if err == nil {
			last = binary.LittleEndian.Uint64(recv[:])
			iter++
			continue
		}
		if !isFailure(err) {
			return nil, 0, err
		}
		for {
			if err := c.Revoke(); err != nil {
				return nil, 0, err
			}
			nc, serr := c.Shrink()
			if serr != nil {
				if isFailure(serr) {
					continue
				}
				return nil, 0, serr
			}
			// Roll back to the slowest survivor's iteration boundary.
			var ib, ob [8]byte
			binary.LittleEndian.PutUint64(ib[:], uint64(iter))
			if aerr := nc.Allreduce(ib[:], ob[:], jvm.Long, OpMin); aerr != nil {
				if isFailure(aerr) {
					c = nc
					continue
				}
				return nil, 0, aerr
			}
			c = nc
			iter = int(binary.LittleEndian.Uint64(ob[:]))
			break
		}
	}
	return c, last, nil
}

// sumOfRanksPlusOne is the expected allreduce result for a member set.
func sumOfRanksPlusOne(ranks []int) uint64 {
	var s uint64
	for _, r := range ranks {
		s += uint64(r + 1)
	}
	return s
}

// The failure detector must wake a survivor blocked in a matched
// receive from the dead rank, exactly one heartbeat period after the
// suspect transition, charged to the virtual clock.
func TestFTDetectorWakesBlockedRecv(t *testing.T) {
	w := ftWorld(t, 1, 2, "crash=1:op1")
	var recvErr error
	var errAt vtime.Time
	err := runGuarded(t, w, func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, 8)
		if p.Rank() == 1 {
			return c.Send(buf, 0, 7) // dies on entry to its first operation
		}
		_, recvErr = c.Recv(buf, 1, 7)
		errAt = p.Clock().Now()
		if recvErr == nil {
			return errors.New("receive from crashed rank succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(recvErr, ErrProcFailed) {
		t.Fatalf("recv error = %v, want ErrProcFailed", recvErr)
	}
	detect := vtime.Duration(w.Profile().SuspectBeats+1) * w.Profile().HeartbeatPeriod
	if min := vtime.Time(0).Add(detect); errAt < min {
		t.Fatalf("failure surfaced at %v, before the detector could confirm (min %v)", errAt, min)
	}
	if got := w.FailedRanks(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("FailedRanks = %v, want [1]", got)
	}
	st := w.Proc(0).Stats()
	if st.PeerSuspects != 1 || st.PeerConfirms != 1 {
		t.Fatalf("suspects/confirms = %d/%d, want 1/1", st.PeerSuspects, st.PeerConfirms)
	}
}

// Without EnableFT the same crash must abort the job exactly as any
// unrecoverable failure does today.
func TestFTCrashWithoutFTAborts(t *testing.T) {
	topo := cluster.New(1, 2)
	fab := fabric.Default(topo)
	plan, err := faults.ParseSpec("crash=1:op1")
	if err != nil {
		t.Fatal(err)
	}
	fab.WithFaults(plan)
	w := NewWorld(topo, fab, Profile{}) // FT deliberately not enabled
	runErr := runGuarded(t, w, func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, 8)
		if p.Rank() == 1 {
			return c.Send(buf, 0, 7)
		}
		_, rerr := c.Recv(buf, 1, 7)
		return rerr
	})
	if runErr == nil {
		t.Fatal("crash without FT did not abort the job")
	}
	if !strings.Contains(runErr.Error(), "crashed") || !strings.Contains(runErr.Error(), "no fault tolerance") {
		t.Fatalf("abort reason %q does not name the crash", runErr)
	}
}

// Eager sends toward a confirmed-dead destination complete locally and
// evaporate (MPI buffered-send semantics); the payload is drained as a
// dead letter after the run.
func TestFTEagerSendToDeadPeerVanishes(t *testing.T) {
	w := ftWorld(t, 1, 2, "crash=1:op1")
	var sendErr error
	err := runGuarded(t, w, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 1 {
			return c.Send(make([]byte, 4), 0, 1)
		}
		if _, rerr := c.Recv(make([]byte, 4), 1, 1); !errors.Is(rerr, ErrProcFailed) {
			return fmt.Errorf("recv error = %v, want ErrProcFailed", rerr)
		}
		// Rank 1 is now confirmed dead; a small send must still succeed.
		sendErr = c.Send(make([]byte, 8), 1, 2)
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if sendErr != nil {
		t.Fatalf("eager send to dead peer failed: %v", sendErr)
	}
	if w.DeadLetters() == 0 {
		t.Fatal("no dead letters drained from the dead rank's mailbox")
	}
}

// Revoke must wake a peer blocked in a receive that no one will ever
// match — the mechanism that flushes survivors out of half-finished
// collectives.
func TestFTRevokeWakesBlockedPeer(t *testing.T) {
	w := ftWorld(t, 1, 2, "")
	var recvErr error
	err := runGuarded(t, w, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			_, recvErr = c.Recv(make([]byte, 4), 1, 9)
			if recvErr == nil {
				return errors.New("revoked receive succeeded")
			}
			return nil
		}
		if err := c.Revoke(); err != nil {
			return err
		}
		if !c.Revoked() {
			return errors.New("revoking rank does not see the communicator revoked")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !errors.Is(recvErr, ErrRevoked) {
		t.Fatalf("recv error = %v, want ErrRevoked", recvErr)
	}
}

// Revoke without EnableFT is a configuration error, not a silent no-op.
func TestFTRevokeRequiresFT(t *testing.T) {
	topo := cluster.New(1, 2)
	w := NewWorld(topo, fabric.Default(topo), Profile{})
	err := runGuarded(t, w, func(p *Proc) error {
		if p.Rank() != 0 {
			return nil
		}
		if err := p.CommWorld().Revoke(); err == nil {
			return errors.New("Revoke succeeded without EnableFT")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// AgreeFT returns the bitwise AND of every contribution when nobody
// fails.
func TestFTAgreeANDSemantics(t *testing.T) {
	w := ftWorld(t, 1, 4, "")
	out := make([]uint64, 4)
	err := runGuarded(t, w, func(p *Proc) error {
		flag := ^uint64(0) &^ (uint64(1) << uint(p.Rank()))
		v, aerr := p.CommWorld().AgreeFT(flag)
		if aerr != nil {
			return aerr
		}
		out[p.Rank()] = v
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	want := ^uint64(0) &^ 0xF
	for r, v := range out {
		if v != want {
			t.Fatalf("rank %d agreed %#x, want %#x", r, v, want)
		}
	}
}

// AgreeShrink with no failure returns the original communicator; the
// flag still carries the AND.
func TestFTAgreeShrinkNoFailureKeepsComm(t *testing.T) {
	w := ftWorld(t, 1, 3, "")
	err := runGuarded(t, w, func(p *Proc) error {
		c := p.CommWorld()
		out, nc, failed, aerr := c.AgreeShrink(^uint64(0) &^ 2)
		if aerr != nil {
			return aerr
		}
		if nc != c {
			return errors.New("failure-free AgreeShrink replaced the communicator")
		}
		if len(failed) != 0 {
			return fmt.Errorf("failure-free AgreeShrink reported failed = %v", failed)
		}
		if out != ^uint64(0)&^2 {
			return fmt.Errorf("agreed flag = %#x", out)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
}

// The full recovery path: a rank dies inside an allreduce; survivors
// revoke, shrink, roll back to the slowest survivor's iteration, and
// finish with results validated against the surviving membership.
func TestFTShrinkAndContinueAllreduce(t *testing.T) {
	w := ftWorld(t, 1, 4, "crash=2:op6")
	rec := trace.New(0)
	w.SetRecorder(rec)
	sums := make([]uint64, 4)
	groups := make([][]int, 4)
	err := runGuarded(t, w, func(p *Proc) error {
		c, last, ferr := ftAllreduceSum(p, 4)
		if ferr != nil {
			return ferr
		}
		sums[p.Rank()] = last
		groups[p.Rank()] = c.Group()
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := w.FailedRanks(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("FailedRanks = %v, want [2]", got)
	}
	survivors := []int{0, 1, 3}
	want := sumOfRanksPlusOne(survivors)
	for _, r := range survivors {
		if sums[r] != want {
			t.Errorf("rank %d final sum = %d, want %d (survivors only)", r, sums[r], want)
		}
		if !reflect.DeepEqual(groups[r], survivors) {
			t.Errorf("rank %d final group = %v, want %v", r, groups[r], survivors)
		}
	}
	var detects, shrinks, agrees int
	for _, ev := range rec.Events() {
		switch {
		case ev.Kind == trace.KindDetect:
			detects++
		case ev.Kind == trace.KindRecovery && strings.HasPrefix(ev.Detail, "shrink"):
			shrinks++
		case ev.Kind == trace.KindRecovery && strings.HasPrefix(ev.Detail, "agree"):
			agrees++
		}
	}
	if detects == 0 || shrinks == 0 || agrees == 0 {
		t.Fatalf("recovery trace incomplete: %d detect, %d shrink, %d agree events", detects, shrinks, agrees)
	}
	// Survivors' reliability protocol settled against the corpse too.
	for _, r := range survivors {
		if n := w.Proc(r).UnackedSends(); n != 0 {
			t.Errorf("rank %d still has %d unacked sends after drain", r, n)
		}
	}
}

// A second crash taking out the recovery coordinator (world rank 0,
// the lowest rank, which coordinates the first shrink agreement) must
// not wedge the protocol: the remaining survivors re-agree under the
// next coordinator and finish on their own communicator.
func TestFTCoordinatorDeathDuringRecovery(t *testing.T) {
	w := ftWorld(t, 1, 4, "crash=3:op1,crash=0:op14")
	sums := make([]uint64, 4)
	groups := make([][]int, 4)
	err := runGuarded(t, w, func(p *Proc) error {
		c, last, ferr := ftAllreduceSum(p, 6)
		if ferr != nil {
			return ferr
		}
		sums[p.Rank()] = last
		groups[p.Rank()] = c.Group()
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := w.FailedRanks(); !reflect.DeepEqual(got, []int{0, 3}) {
		t.Fatalf("FailedRanks = %v, want [0 3]", got)
	}
	survivors := []int{1, 2}
	want := sumOfRanksPlusOne(survivors)
	for _, r := range survivors {
		if sums[r] != want {
			t.Errorf("rank %d final sum = %d, want %d", r, sums[r], want)
		}
		if !reflect.DeepEqual(groups[r], survivors) {
			t.Errorf("rank %d final group = %v, want %v", r, groups[r], survivors)
		}
	}
}

// Leak regression (mailbox/teardown audit): after a recovered run, no
// rank — dead or alive — may hold queued packets, posted receives,
// rendezvous state, or unacked sends. The dead rank's mailbox must
// have been drained with its payload traffic accounted as dead
// letters.
func TestFTNoLeaksAfterRecovery(t *testing.T) {
	w := ftWorld(t, 1, 4, "crash=2:op6")
	err := runGuarded(t, w, func(p *Proc) error {
		_, _, ferr := ftAllreduceSum(p, 4)
		return ferr
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	dead := map[int]bool{}
	for _, r := range w.FailedRanks() {
		dead[r] = true
	}
	for r := 0; r < 4; r++ {
		p := w.Proc(r)
		if pkt, ok := p.mb.tryPop(); ok {
			t.Errorf("rank %d mailbox not drained: leftover %v packet from %d", r, pkt.kind, pkt.src)
		}
		if n := p.posted.pending(); n != 0 {
			t.Errorf("rank %d leaks %d posted receives", r, n)
		}
		if n := p.unexp.pendingFromLive(dead); n != 0 {
			t.Errorf("rank %d leaks %d unexpected packets from live ranks", r, n)
		}
		if n := len(p.finPending); n != 0 {
			t.Errorf("rank %d leaks %d zero-copy fences", r, n)
		}
		if n := len(p.recvPending); n != 0 {
			t.Errorf("rank %d leaks %d rendezvous receive states", r, n)
		}
		if n := len(p.sendPending); n != 0 {
			t.Errorf("rank %d leaks %d rendezvous send states", r, n)
		}
		if n := p.UnackedSends(); n != 0 {
			t.Errorf("rank %d leaks %d unacked sends", r, n)
		}
	}
}

// Determinism: the whole observable outcome of a single-crash recovery
// — trace events with virtual timestamps, per-rank counters (dead rank
// included), failure registry, dead letters, makespan, results — must
// be byte-identical across runs. The scenario keeps two survivors, so
// every packet a blocked rank can race on comes from one sender and
// mailbox FIFO order pins the outcome (see the failure-model notes in
// DESIGN.md for why wider jobs only promise value determinism).
func TestFTDeterministicRecoveryArtifacts(t *testing.T) {
	type snapshot struct {
		Events  []trace.Event
		Stats   []ProcStats
		Failed  []int
		Letters int64
		Max     vtime.Time
		Sums    []uint64
	}
	run := func() snapshot {
		w := ftWorld(t, 1, 3, "crash=2:op4")
		rec := trace.New(0)
		w.SetRecorder(rec)
		sums := make([]uint64, 3)
		err := runGuarded(t, w, func(p *Proc) error {
			_, last, ferr := ftAllreduceSum(p, 4)
			if ferr != nil {
				return ferr
			}
			sums[p.Rank()] = last
			return nil
		})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		stats := make([]ProcStats, 3)
		for r := range stats {
			stats[r] = w.Proc(r).Stats()
		}
		return snapshot{rec.Events(), stats, w.FailedRanks(), w.DeadLetters(), w.MaxClock(), sums}
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("recovery artifacts differ across identical runs:\n%+v\nvs\n%+v", a, b)
	}
	want := sumOfRanksPlusOne([]int{0, 1})
	for _, r := range []int{0, 1} {
		if a.Sums[r] != want {
			t.Fatalf("rank %d final sum = %d, want %d", r, a.Sums[r], want)
		}
	}
	if a.Failed == nil || a.Failed[0] != 2 {
		t.Fatalf("FailedRanks = %v, want [2]", a.Failed)
	}
}

// Chaos soak: a crash on top of 5%% packet loss. Values must stay
// exact and the run must terminate; timing is not compared (loss
// retries interleave with recovery).
func TestFTChaosCrashUnderLoss(t *testing.T) {
	w := ftWorld(t, 1, 4, "seed=7,drop=0.05,crash=2@40us")
	sums := make([]uint64, 4)
	err := runGuarded(t, w, func(p *Proc) error {
		_, last, ferr := ftAllreduceSum(p, 6)
		if ferr != nil {
			return ferr
		}
		sums[p.Rank()] = last
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := w.FailedRanks(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("FailedRanks = %v, want [2]", got)
	}
	want := sumOfRanksPlusOne([]int{0, 1, 3})
	for _, r := range []int{0, 1, 3} {
		if sums[r] != want {
			t.Errorf("rank %d final sum = %d, want %d", r, sums[r], want)
		}
	}
}
