package nativempi

import (
	"fmt"
	"sort"
)

// Communicator management. New context ids must be agreed by all
// members, so creation is collective: rank 0 of the parent reserves
// ids from the world-wide counter and broadcasts them.

// Undefined is the color value for MPI_UNDEFINED in Split: the caller
// gets no new communicator.
const Undefined = -1

func putI32(b []byte, off int, v int32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func getI32(b []byte, off int) int32 {
	return int32(b[off]) | int32(b[off+1])<<8 | int32(b[off+2])<<16 | int32(b[off+3])<<24
}

// allocCtxCollective reserves n context ids, agreed across the
// communicator.
func (c *Comm) allocCtxCollective(n int32) (int32, error) {
	buf := make([]byte, 4)
	if c.myRank == 0 {
		putI32(buf, 0, c.p.w.allocCtx(n))
	}
	if err := c.Bcast(buf, 0); err != nil {
		return 0, err
	}
	return getI32(buf, 0), nil
}

// Dup creates a congruent communicator with fresh contexts
// (MPI_Comm_dup).
func (c *Comm) Dup() (*Comm, error) {
	base, err := c.allocCtxCollective(2)
	if err != nil {
		return nil, err
	}
	return &Comm{
		p:       c.p,
		group:   c.Group(),
		myRank:  c.myRank,
		ptCtx:   base,
		collCtx: base + 1,
	}, nil
}

// Split partitions the communicator by color; within each color, new
// ranks are ordered by (key, old rank) — MPI_Comm_split semantics.
// Callers passing color Undefined receive (nil, nil).
func (c *Comm) Split(color, key int) (*Comm, error) {
	p := c.Size()
	// Gather everyone's (color, key) and broadcast the table, so each
	// rank computes the identical partition locally.
	mine := make([]byte, 8)
	putI32(mine, 0, int32(color))
	putI32(mine, 4, int32(key))
	table := make([]byte, 8*p)
	if err := c.Gather(mine, table, 0); err != nil {
		return nil, err
	}
	if err := c.Bcast(table, 0); err != nil {
		return nil, err
	}

	colors := make([]int, p)
	keys := make([]int, p)
	distinct := []int{}
	seen := map[int]bool{}
	for r := 0; r < p; r++ {
		colors[r] = int(getI32(table, 8*r))
		keys[r] = int(getI32(table, 8*r+4))
		if colors[r] >= 0 && !seen[colors[r]] {
			seen[colors[r]] = true
			distinct = append(distinct, colors[r])
		}
	}
	sort.Ints(distinct)

	// One collective allocation covers every new communicator: two
	// contexts per distinct color, assigned in sorted color order.
	base, err := c.allocCtxCollective(int32(2 * len(distinct)))
	if err != nil {
		return nil, err
	}
	if color == Undefined {
		return nil, nil
	}
	if color < 0 {
		return nil, fmt.Errorf("nativempi: negative color %d (use Undefined)", color)
	}

	idx := sort.SearchInts(distinct, color)
	members := []int{}
	for r := 0; r < p; r++ {
		if colors[r] == color {
			members = append(members, r)
		}
	}
	sort.SliceStable(members, func(i, j int) bool {
		if keys[members[i]] != keys[members[j]] {
			return keys[members[i]] < keys[members[j]]
		}
		return members[i] < members[j]
	})
	group := make([]int, len(members))
	myRank := -1
	for i, r := range members {
		group[i] = c.group[r]
		if r == c.myRank {
			myRank = i
		}
	}
	return &Comm{
		p:       c.p,
		group:   group,
		myRank:  myRank,
		ptCtx:   base + int32(2*idx),
		collCtx: base + int32(2*idx) + 1,
	}, nil
}

// SplitType partitions the communicator by hardware locality
// (MPI_Comm_split_type with MPI_COMM_TYPE_SHARED): each node's ranks
// form one shared-memory subcommunicator, ordered by key then rank.
func (c *Comm) SplitType(key int) (*Comm, error) {
	return c.Split(c.p.w.topo.NodeOf(c.group[c.myRank]), key)
}

// CreateFromGroup builds a communicator over an explicit list of
// parent ranks. Collective over the parent; ranks outside the group
// must still call it (they receive nil), matching MPI_Comm_create.
func (c *Comm) CreateFromGroup(parentRanks []int) (*Comm, error) {
	for _, r := range parentRanks {
		if err := c.checkRank(r); err != nil {
			return nil, err
		}
	}
	base, err := c.allocCtxCollective(2)
	if err != nil {
		return nil, err
	}
	group := make([]int, len(parentRanks))
	myRank := -1
	for i, r := range parentRanks {
		group[i] = c.group[r]
		if r == c.myRank {
			myRank = i
		}
	}
	if myRank < 0 {
		return nil, nil
	}
	return &Comm{p: c.p, group: group, myRank: myRank, ptCtx: base, collCtx: base + 1}, nil
}
