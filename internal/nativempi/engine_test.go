package nativempi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// The phase-stepped engine's contract: for ANY worker-pool width, the
// virtual artifacts — receive payloads, final clocks, trace JSONL,
// metrics JSON — are byte-identical to serial (workers=1) execution.
// Host-side counters (mailbox batches, phase shapes) may differ; the
// deterministic surface may not, by a single byte.

// engWorld builds a world for one differential mode: clean fabric,
// lossy fabric (drop faults + reliability layer), or a crash-fault
// fault-tolerant world.
func engWorld(t *testing.T, mode string, nodes, ppn int) *World {
	t.Helper()
	topo := cluster.New(nodes, ppn)
	fab := fabric.Default(topo)
	switch mode {
	case "clean":
	case "loss":
		fab.WithFaults(faults.Uniform(42, 0.05))
	case "crash":
		plan, err := faults.ParseSpec("crash=1:op3")
		if err != nil {
			t.Fatal(err)
		}
		fab.WithFaults(plan)
	default:
		t.Fatalf("unknown mode %q", mode)
	}
	w := NewWorld(topo, fab, Profile{})
	if mode == "crash" {
		w.EnableFT()
	}
	return w
}

// runCrashWorkload is the FT differential workload: iterated validated
// allreduce with revoke/shrink/agree recovery after rank 1's scheduled
// death. Artifacts: each survivor's final sum + shrunken comm size,
// final clocks, trace, metrics.
func runCrashWorkload(w *World) (zcArtifacts, error) {
	n := w.Size()
	rec := trace.New(0)
	met := metrics.NewRegistry()
	w.SetRecorder(rec)
	w.SetMetrics(met)
	a := zcArtifacts{
		recvs:  make([][]byte, n),
		clocks: make([]vtime.Time, n),
	}
	err := w.Run(func(p *Proc) error {
		c, last, err := ftAllreduceSum(p, 6)
		if err != nil {
			return err
		}
		var out [16]byte
		binary.LittleEndian.PutUint64(out[:8], last)
		binary.LittleEndian.PutUint64(out[8:], uint64(c.Size()))
		a.recvs[p.Rank()] = append([]byte(nil), out[:]...)
		a.clocks[p.Rank()] = p.Clock().Now()
		return nil
	})
	if err != nil {
		return a, err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return a, err
	}
	a.trace = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := met.WriteJSON(&buf); err != nil {
		return a, err
	}
	a.met = buf.Bytes()
	a.host = w.HostStats()
	return a, nil
}

// TestEngineDifferential is the tentpole guarantee: parallel execution
// (workers 2 and 8) is byte-identical to serial (workers 1) on every
// virtual artifact, across np ∈ {2, 8, 64} and clean / loss-fault /
// crash-fault fabrics.
func TestEngineDifferential(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{{1, 2}, {2, 4}, {8, 8}}
	modes := []string{"clean", "loss", "crash"}
	const size = 64 << 10 // above the eager limits: rendezvous traffic too
	for _, sh := range shapes {
		for _, mode := range modes {
			sh, mode := sh, mode
			np := sh.nodes * sh.ppn
			t.Run(fmt.Sprintf("np%d/%s", np, mode), func(t *testing.T) {
				run := func(workers int) zcArtifacts {
					w := engWorld(t, mode, sh.nodes, sh.ppn)
					w.SetEngineWorkers(workers)
					var a zcArtifacts
					var err error
					if mode == "crash" {
						a, err = runCrashWorkload(w)
					} else {
						a, err = runZCWorkload(w, size)
					}
					if err != nil {
						t.Fatalf("workers=%d: %v", workers, err)
					}
					return a
				}
				serial := run(1)
				for _, workers := range []int{2, 8} {
					par := run(workers)
					// Crash mode kills rank 1: its artifact slot stays
					// empty in both runs, which bytes.Equal(nil, nil)
					// accepts — the comparison still covers it.
					assertSameArtifacts(t, par, serial)
				}
			})
		}
	}
}

// TestSameTickMatchOrder is the regression for the latent
// drain-order-equals-delivery-order assumption: two ranks posting to a
// third at the SAME virtual tick must match in (tick, src, seq) order,
// whatever the goroutine interleaving. Before the phase-stepped merge,
// whichever sender's goroutine pushed first won the wildcard match;
// now the sorted flush delivers rank 1's packet first, every run.
func TestSameTickMatchOrder(t *testing.T) {
	for rep := 0; rep < 25; rep++ {
		topo := cluster.New(1, 3)
		w := NewWorld(topo, fabric.Default(topo), Profile{})
		var order [2]int
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			if p.Rank() == 0 {
				buf := make([]byte, 8)
				for i := 0; i < 2; i++ {
					st, err := c.Recv(buf, AnySource, 9)
					if err != nil {
						return err
					}
					order[i] = st.Source
				}
				return nil
			}
			// Ranks 1 and 2 send from identical virtual clocks over
			// identical intra-node channels: same arriveAt tick.
			return c.Send(pattern(8, byte(p.Rank())), 0, 9)
		})
		if err != nil {
			t.Fatal(err)
		}
		if order != [2]int{1, 2} {
			t.Fatalf("rep %d: same-tick wildcard matches arrived as %v, want [1 2]", rep, order)
		}
	}
}

// TestEngineDeadlockAbort pins the scheduler's liveness backstop: when
// every live rank is blocked and a barrier delivers nothing, the job
// aborts with a deadlock diagnosis instead of hanging the harness.
func TestEngineDeadlockAbort(t *testing.T) {
	topo := cluster.New(1, 2)
	w := NewWorld(topo, fabric.Default(topo), Profile{})
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(p *Proc) error {
			buf := make([]byte, 8)
			// Both ranks receive, nobody sends: a true deadlock.
			_, err := p.CommWorld().Recv(buf, (p.Rank()+1)%2, 1)
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "deadlock") {
			t.Fatalf("want deadlock abort, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlocked job was not aborted")
	}
}

// TestEngineWorkersKnob checks the scheduler reports activity and
// respects the width cap.
func TestEngineWorkersKnob(t *testing.T) {
	topo := cluster.New(2, 2)
	w := NewWorld(topo, fabric.Default(topo), Profile{})
	w.SetEngineWorkers(3)
	if _, err := runZCWorkload(w, 4096); err != nil {
		t.Fatal(err)
	}
	es := w.EngineStats()
	if es.Handoffs == 0 {
		t.Error("engine reported zero token handoffs")
	}
	if es.Phases == 0 || es.Delivered == 0 {
		t.Errorf("engine reported no barrier deliveries: %+v", es)
	}
}

// FuzzPhaseMerge fuzzes the barrier merge over randomized same-tick
// event sets: however the emissions are permuted (i.e. whatever host
// interleaving produced them), sorting by vtime.PhaseKey yields ONE
// canonical order, and the key is total — no two distinct events tie.
func FuzzPhaseMerge(f *testing.F) {
	f.Add(uint64(1), 8, 3)
	f.Add(uint64(42), 64, 1)
	f.Add(uint64(7), 33, 5)
	f.Fuzz(func(t *testing.T, seed uint64, n, ticks int) {
		if n <= 0 || n > 512 || ticks <= 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(seed)))
		// Build packets the way ranks emit them: per-source monotone
		// seq, arrival ticks drawn from a small set to force ties.
		seqOf := map[int]uint64{}
		pkts := make([]*packet, n)
		for i := range pkts {
			src := rng.Intn(8)
			pkts[i] = &packet{
				src:      src,
				dst:      rng.Intn(8),
				arriveAt: vtime.Time(rng.Intn(ticks)),
				emitSeq:  seqOf[src],
			}
			seqOf[src]++
		}
		sortKeys := func(perm []int) []vtime.PhaseKey {
			shuffled := make([]*packet, n)
			for i, j := range perm {
				shuffled[i] = pkts[j]
			}
			sortPhase(shuffled)
			keys := make([]vtime.PhaseKey, n)
			for i, p := range shuffled {
				keys[i] = vtime.PhaseKey{At: p.arriveAt, Src: p.src, Seq: p.emitSeq}
			}
			return keys
		}
		ref := sortKeys(rng.Perm(n))
		for trial := 0; trial < 4; trial++ {
			got := sortKeys(rng.Perm(n))
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("trial %d: merge order diverged at %d: %v vs %v", trial, i, got[i], ref[i])
				}
			}
		}
		// Totality: distinct events never compare equal.
		for i := 1; i < n; i++ {
			if ref[i-1].Compare(ref[i]) == 0 && ref[i-1] != ref[i] {
				t.Fatalf("distinct events %v and %v compare equal", ref[i-1], ref[i])
			}
		}
	})
}

// sortPhase sorts packets with the engine's merge comparator (a thin
// indirection so the fuzzer exercises exactly the production key).
func sortPhase(pkts []*packet) {
	sortPackets(pkts)
}

// TestAbortFromOutsideRun pins that MPI_Abort still works when called
// from a goroutine that is not one of the engine's ranks (a watchdog,
// say): the engine is reached through the atomic pointer and every
// rank — blocked or spinning — unwinds. Rank 0 spins on Test (stays
// runnable, so the deadlock backstop never fires) while rank 1 blocks.
func TestAbortFromOutsideRun(t *testing.T) {
	topo := cluster.New(1, 2)
	w := NewWorld(topo, fabric.Default(topo), Profile{})
	started := make(chan struct{}, 1)
	go func() {
		<-started
		time.Sleep(10 * time.Millisecond)
		w.Abort(-1, "watchdog")
	}()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, 8)
		if p.Rank() == 0 {
			req, err := c.Irecv(buf, 1, 1) // never satisfied
			if err != nil {
				return err
			}
			started <- struct{}{}
			for {
				if _, ok, err := req.Test(); ok || err != nil {
					return err
				}
			}
		}
		_, err := c.Recv(buf, 0, 1) // never satisfied
		return err
	})
	if err == nil || !strings.Contains(err.Error(), "watchdog") {
		t.Fatalf("want watchdog abort, got %v", err)
	}
}
