package nativempi

import (
	"fmt"
	"sync"

	"mv2j/internal/vtime"
)

// ThreadLevel is an MPI threading support level, mirroring the
// `threads=single|funneled|serialized|multiple` build variant of an
// MVAPICH2 install. The zero value means "unspecified" (a profile
// defaults it to ThreadMultiple; a rank that never calls InitThread
// runs at ThreadSingle, the MPI_Init semantics).
type ThreadLevel int

const (
	// ThreadSingle: only one thread exists per rank.
	ThreadSingle ThreadLevel = iota + 1
	// ThreadFunneled: the process may be multithreaded, but only the
	// main thread (tid 0) makes MPI calls.
	ThreadFunneled
	// ThreadSerialized: any thread may call MPI, but never two at
	// once — the application serializes the calls itself.
	ThreadSerialized
	// ThreadMultiple: any thread may call MPI at any time; the library
	// arbitrates its entry lock and charges the contention to virtual
	// time.
	ThreadMultiple
)

func (l ThreadLevel) String() string {
	switch l {
	case ThreadSingle:
		return "MPI_THREAD_SINGLE"
	case ThreadFunneled:
		return "MPI_THREAD_FUNNELED"
	case ThreadSerialized:
		return "MPI_THREAD_SERIALIZED"
	case ThreadMultiple:
		return "MPI_THREAD_MULTIPLE"
	default:
		return fmt.Sprintf("ThreadLevel(%d)", int(l))
	}
}

// ThreadStats counts host-side activity of the simulated-thread
// multiplexer. Contended and ArbWaitPs are virtual quantities (they
// are also exported through the deterministic metrics registry as
// thread/* series); the rest are host-side scheduling counters.
type ThreadStats struct {
	Groups     int64 // RunThreads invocations with n > 1
	Threads    int64 // simulated threads launched (including tid 0)
	Handoffs   int64 // baton handoffs between simulated threads
	RankBlocks int64 // whole-rank engine blocks taken on behalf of a group
	Contended  int64 // contended entry-lock acquisitions
	ArbWaitPs  int64 // virtual picoseconds spent arbitrating the entry lock
}

func (a *ThreadStats) add(b ThreadStats) {
	a.Groups += b.Groups
	a.Threads += b.Threads
	a.Handoffs += b.Handoffs
	a.RankBlocks += b.RankBlocks
	a.Contended += b.Contended
	a.ArbWaitPs += b.ArbWaitPs
}

// InitThread negotiates the rank's threading level — MPI_Init_thread.
// The provided level is the smaller of the requested level and the
// profile's build-time ThreadLevel; it is what RunThreads and the
// per-call gating enforce. Calling InitThread again renegotiates.
func (p *Proc) InitThread(required ThreadLevel) ThreadLevel {
	if required < ThreadSingle {
		required = ThreadSingle
	}
	if required > ThreadMultiple {
		required = ThreadMultiple
	}
	provided := required
	if lib := p.w.prof.ThreadLevel; provided > lib {
		provided = lib
	}
	p.thrLevel = provided
	return provided
}

// ThreadLevelProvided returns the level InitThread negotiated, or
// ThreadSingle if it was never called.
func (p *Proc) ThreadLevelProvided() ThreadLevel {
	if p.thrLevel == 0 {
		return ThreadSingle
	}
	return p.thrLevel
}

// Simulated-thread states. Exactly one thread of a group runs at any
// host instant (the baton invariant); the rest are parked on their
// wake channels in one of the waiting states.
type tstate uint8

const (
	tReady    tstate = iota // created, never run: always schedulable
	tRunning                // holds the baton
	tPopWait                // parked in popBlocking, waiting for dispatch progress
	tSpinWait               // parked at a spin checkpoint (Test/Iprobe)
	tJoin                   // main thread parked in the join pump
	tDone                   // body returned (or unwound)
)

// simThread is one simulated thread of a rank. Its virtual timeline
// lives in now while parked and in the rank's clock while running.
type simThread struct {
	tid      int
	state    tstate
	parkedAt uint64     // tg.epoch at park time: schedulable once stale
	now      vtime.Time // saved clock while not running
	csDepth  int        // reentrant depth inside the library's entry lock
	wake     chan struct{}
	err      error
}

// threadGroup multiplexes n simulated threads onto one rank goroutine
// family under a cooperative single-baton scheduler. The baton handoff
// order is a pure function of virtual state — the schedulable thread
// with the smallest (saved clock, tid) key runs next, the thread-level
// analogue of the engine's (arriveAt, src, seq) phase merge — so
// multithreaded runs produce byte-identical virtual artifacts whatever
// the host scheduler does.
type threadGroup struct {
	p       *Proc
	level   ThreadLevel
	threads []*simThread
	cur     int // tid holding the baton

	// epoch counts dispatches (and retirements). A parked thread is
	// schedulable only when its park epoch is stale: its wake condition
	// can only have changed if a packet was dispatched (all blocking
	// conditions — request completion, probe matches, credit grants —
	// are mail-driven), so fresher parks would just ping-pong the baton.
	epoch uint64

	// lockFree is the virtual instant the library's entry lock was
	// last released. An entry (or a reacquire after a condition wait)
	// whose clock is behind it is contended: the thread advances to
	// lockFree and pays LockArbitrationCost. Parking inside a call
	// releases the lock, as the real progress engine's condition waits
	// do.
	lockFree vtime.Time

	// gateHolders counts threads positioned inside an MPI call (parked
	// or running). Under SERIALIZED a second concurrent caller is an
	// application error and panics deterministically.
	gateHolders int
	gateOwner   int // tid of the most recent depth-0 entry

	aborted bool
	abortE  abortError
	wg      sync.WaitGroup
}

// RunThreads runs fn concurrently on n simulated threads of this rank
// and joins them — the harness's stand-in for a Java application
// spawning worker threads that share one MPI process. tid 0 runs on
// the rank goroutine itself; each other tid gets its own goroutine,
// but the group is cooperatively scheduled so exactly one thread runs
// at a time and every interleaving decision is made on virtual state.
//
// n == 1 runs fn(0) inline. n > 1 requires a negotiated level above
// ThreadSingle (see InitThread) and is unavailable under fault plans
// or fault tolerance: the reliability timers and failure sweeps assume
// one timeline per rank. The returned error is the first non-nil
// thread error; a panic in any thread aborts the job, exactly as a
// rank panic does.
func (p *Proc) RunThreads(n int, fn func(tid int) error) error {
	if fn == nil {
		return fmt.Errorf("nativempi: rank %d: RunThreads with nil body", p.rank)
	}
	if n <= 0 {
		return fmt.Errorf("nativempi: rank %d: RunThreads needs n >= 1, got %d", p.rank, n)
	}
	if n == 1 {
		return fn(0)
	}
	if p.tg != nil {
		return fmt.Errorf("nativempi: rank %d: nested RunThreads", p.rank)
	}
	level := p.ThreadLevelProvided()
	if level == ThreadSingle {
		return fmt.Errorf("nativempi: rank %d: %d threads need InitThread >= %v (provided %v)",
			p.rank, n, ThreadFunneled, ThreadSingle)
	}
	if p.w.ft || p.w.fab.Faults() != nil {
		return fmt.Errorf("nativempi: rank %d: RunThreads is unavailable under fault plans or fault tolerance", p.rank)
	}

	tg := &threadGroup{p: p, level: level, cur: 0}
	tg.threads = make([]*simThread, n)
	start := p.clock.Now()
	for i := range tg.threads {
		tg.threads[i] = &simThread{tid: i, state: tReady, now: start, wake: make(chan struct{}, 1)}
	}
	tg.threads[0].state = tRunning
	p.tg = tg
	p.threadStats.Groups++
	p.threadStats.Threads += int64(n)

	// Endpoint fan-out: under MULTIPLE each thread injects through
	// endpoint tid % len(nicEp); below MULTIPLE at most one thread is
	// inside the library at a time, so the single NIC slot stands.
	if level == ThreadMultiple {
		eps := min(p.w.prof.InjectEndpoints, n)
		p.nicEp = p.nicEp[:0]
		for i := 0; i < eps; i++ {
			p.nicEp = append(p.nicEp, p.nicFree)
		}
	}

	for _, t := range tg.threads[1:] {
		tg.wg.Add(1)
		go tg.threadMain(t, fn)
	}

	// Main thread body, then the join pump. Both may unwind on an
	// abort packet; the recover turns that into the group-wide abort
	// cascade, and RunThreads re-raises it after the join so World.Run
	// sees the same panic a single-threaded rank would.
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			ae, ok := r.(abortError)
			if !ok {
				// A real bug in the harness or a user panic on the main
				// thread: abort the job and unwind the siblings before
				// letting it propagate to World.Run's recover.
				tg.noteAbort(abortError{origin: p.rank, reason: fmt.Sprint(r)})
				tg.abortWakeNext()
				tg.wg.Wait()
				panic(r)
			}
			tg.noteAbort(ae)
		}()
		tg.runBody(tg.threads[0], fn)
		tg.join()
	}()
	if tg.aborted {
		tg.abortWakeNext()
	}
	tg.wg.Wait()
	p.tg = nil

	// Fold the thread timelines back into the rank: the rank's clock
	// joins at the latest thread exit, and the endpoint slots collapse
	// into the single NIC cursor.
	joined := p.clock.Now()
	for _, t := range tg.threads {
		joined = vtime.Max(joined, t.now)
	}
	p.clock.AdvanceTo(joined)
	for _, ep := range p.nicEp {
		p.nicFree = vtime.Max(p.nicFree, ep)
	}
	p.nicEp = p.nicEp[:0]

	if tg.aborted {
		panic(tg.abortE)
	}
	for _, t := range tg.threads {
		if t.err != nil {
			return t.err
		}
	}
	return nil
}

// threadMain is the goroutine body of tids 1..n-1: wait for the first
// baton, run, retire.
func (tg *threadGroup) threadMain(t *simThread, fn func(int) error) {
	defer tg.wg.Done()
	<-t.wake
	if !tg.aborted {
		tg.runBody(t, fn)
	}
	tg.retire(t)
}

// runBody executes fn(tid) under the thread's recover shield: an abort
// packet popped by this thread is noted for the group (retire
// continues the cascade); any other panic aborts the whole job.
func (tg *threadGroup) runBody(t *simThread, fn func(int) error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ae, ok := r.(abortError); ok {
			tg.noteAbort(ae)
			return
		}
		t.err = fmt.Errorf("nativempi: rank %d thread %d panicked: %v", tg.p.rank, t.tid, r)
		tg.noteAbort(abortError{origin: tg.p.rank, reason: fmt.Sprintf("thread %d panic: %v", t.tid, r)})
		tg.p.w.Abort(tg.p.rank, fmt.Sprintf("thread %d panic: %v", t.tid, r))
	}()
	t.err = fn(t.tid)
}

// retire marks t done and moves the baton on — to the next schedulable
// thread on the normal path, or down the abort cascade.
func (tg *threadGroup) retire(t *simThread) {
	t.state = tDone
	t.now = tg.p.clock.Now()
	tg.epoch++
	if tg.aborted {
		tg.abortWakeNext()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			ae, ok := r.(abortError)
			if !ok {
				panic(r)
			}
			tg.noteAbort(ae)
			tg.abortWakeNext()
		}
	}()
	tg.releaseBaton()
}

// noteAbort records the first abort the group observed.
func (tg *threadGroup) noteAbort(ae abortError) {
	if !tg.aborted {
		tg.aborted = true
		tg.abortE = ae
	}
}

// abortWakeNext continues the abort cascade: wake exactly one parked,
// not-yet-done thread so it can unwind (its park point panics the
// abort, its retire calls back here). The chain is strictly
// sequential — each link wakes at most one successor — so the group
// unwinds without ever running two threads at once.
func (tg *threadGroup) abortWakeNext() {
	for _, t := range tg.threads {
		if t.state == tDone || t.state == tRunning {
			continue
		}
		t.state = tRunning
		tg.cur = t.tid
		t.wake <- struct{}{}
		return
	}
}

// schedulable reports whether t could take the baton now.
func (tg *threadGroup) schedulable(t *simThread) bool {
	switch t.state {
	case tReady:
		return true
	case tPopWait, tSpinWait, tJoin:
		return t.parkedAt != tg.epoch
	default:
		return false
	}
}

// pickRunnable returns the schedulable thread with the smallest
// (saved clock, tid) key. The key is total (tids are unique), so the
// handoff order — the rank's lock-arbitration order — is a pure
// function of virtual state, never of host scheduling.
func (tg *threadGroup) pickRunnable() *simThread {
	var best *simThread
	for _, t := range tg.threads {
		if !tg.schedulable(t) {
			continue
		}
		if best == nil || t.now < best.now || (t.now == best.now && t.tid < best.tid) {
			best = t
		}
	}
	return best
}

// resume hands the baton to next: restore its virtual timeline, then
// signal. The SetNow-before-signal order rides the channel's
// happens-before edge, so the woken thread always sees its own time.
func (tg *threadGroup) resume(next *simThread) {
	next.state = tRunning
	tg.cur = next.tid
	tg.p.clock.SetNow(next.now)
	next.wake <- struct{}{}
}

// park saves the current thread's timeline, hands the baton to next,
// and blocks until it comes back. If the group aborted meanwhile the
// thread unwinds via the abort panic, exactly as a poison packet
// does. A thread parked inside an MPI call releases the entry lock
// for the duration and re-arbitrates it on wake.
func (tg *threadGroup) park(st tstate, next *simThread) {
	cur := tg.threads[tg.cur]
	cur.state = st
	cur.parkedAt = tg.epoch
	cur.now = tg.p.clock.Now()
	if cur.csDepth > 0 && cur.now > tg.lockFree {
		tg.lockFree = cur.now
	}
	tg.resume(next)
	<-cur.wake
	if tg.aborted {
		panic(tg.abortE)
	}
	if cur.csDepth > 0 {
		tg.arbitrate()
	}
}

// yieldTo parks the current thread in state st if another simulated
// thread can run. Reports whether a handoff happened (and the baton
// has since returned) — the caller must then recheck its wake
// condition rather than assume mail arrived.
func (tg *threadGroup) yieldTo(st tstate) bool {
	next := tg.pickRunnable()
	if next == nil {
		return false
	}
	tg.p.threadStats.Handoffs++
	tg.park(st, next)
	return true
}

// releaseBaton moves the baton onward after the current thread
// retired: to the best schedulable thread, or — when every live
// thread waits on future mail — by pumping the rank's mailbox until a
// dispatch makes one schedulable.
func (tg *threadGroup) releaseBaton() {
	p := tg.p
	for {
		if next := tg.pickRunnable(); next != nil {
			p.threadStats.Handoffs++
			tg.resume(next)
			return
		}
		p.dispatch(p.rankPop())
	}
}

// join is the main thread's pump after its body returned: keep the
// rank making progress until every sibling retires. While parked in
// tJoin the main thread is an ordinary schedulable target, so
// retiring threads hand it the baton back through the same
// deterministic pick.
func (tg *threadGroup) join() {
	p := tg.p
	for {
		done := true
		for _, t := range tg.threads[1:] {
			if t.state != tDone {
				done = false
				break
			}
		}
		if done {
			return
		}
		if next := tg.pickRunnable(); next != nil {
			p.threadStats.Handoffs++
			tg.park(tJoin, next)
			continue
		}
		p.dispatch(p.rankPop())
	}
}

// rankPop blocks the WHOLE rank until a packet arrives — used by the
// baton holder when no simulated thread can progress without new
// mail. Engine aborts are observed through the poison packet
// abortLocked guarantees is in the mailbox before any wake.
func (p *Proc) rankPop() *packet {
	for {
		if pkt, ok := p.mb.tryPop(); ok {
			return pkt
		}
		eng := p.w.eng.Load()
		if eng == nil {
			return p.mb.pop()
		}
		eng.block(p.rank)
		if p.tg != nil {
			p.threadStats.RankBlocks++
		}
	}
}

// gateEnter models the library's per-call entry serialization. Under
// FUNNELED a non-main caller is an application error and panics
// deterministically; under SERIALIZED a second thread entering while
// another is inside a call does too. Under MULTIPLE a contended entry
// advances the thread to the lock's release instant and charges
// LockArbitrationCost — the coarse-lock tax that bounds thread-
// multiple message rates. Reentrant (csDepth tracks nesting, so a
// public call composed of public calls arbitrates once).
func (p *Proc) gateEnter() {
	tg := p.tg
	if tg == nil {
		return
	}
	t := tg.threads[tg.cur]
	switch tg.level {
	case ThreadFunneled:
		if t.tid != 0 {
			panic(fmt.Sprintf("nativempi: rank %d thread %d made an MPI call under %v: only the main thread may",
				p.rank, t.tid, ThreadFunneled))
		}
		return
	case ThreadSerialized:
		if t.csDepth == 0 && tg.gateHolders > 0 {
			panic(fmt.Sprintf("nativempi: rank %d thread %d entered MPI while thread %d is inside a call: %v forbids overlapping calls",
				p.rank, t.tid, tg.gateOwner, ThreadSerialized))
		}
	}
	if t.csDepth == 0 {
		tg.gateHolders++
		tg.gateOwner = t.tid
		tg.arbitrate()
	}
	t.csDepth++
}

// gateLeave releases the entry lock at depth 0, stamping its release
// instant for the next contender.
func (p *Proc) gateLeave() {
	tg := p.tg
	if tg == nil || tg.level == ThreadFunneled {
		return
	}
	t := tg.threads[tg.cur]
	t.csDepth--
	if t.csDepth == 0 {
		tg.gateHolders--
		if now := p.clock.Now(); now > tg.lockFree {
			tg.lockFree = now
		}
	}
}

// arbitrate charges the entry lock's acquisition when the current
// thread's clock falls inside the last holder's critical section.
// Uncontended acquisitions are free and record nothing, so runs that
// never contend are byte-identical to runs without threading at all.
func (tg *threadGroup) arbitrate() {
	p := tg.p
	start := p.clock.Now()
	if start >= tg.lockFree {
		return
	}
	p.clock.AdvanceTo(tg.lockFree)
	p.clock.Advance(p.w.prof.LockArbitrationCost)
	end := p.clock.Now()
	p.threadStats.Contended++
	p.threadStats.ArbWaitPs += int64(end.Sub(start))
	p.recordLock(tg.threads[tg.cur].tid, start, end)
}

// nicSlot returns the injection cursor for endpoint ep (-1, or any
// value outside the active endpoint fan, selects the rank's shared
// NIC slot).
func (p *Proc) nicSlot(ep int) *vtime.Time {
	if ep >= 0 && ep < len(p.nicEp) {
		return &p.nicEp[ep]
	}
	return &p.nicFree
}

// curEndpoint returns the endpoint index the current simulated thread
// injects through, or -1 when the rank runs single-threaded (or the
// endpoint fan is inactive).
func (p *Proc) curEndpoint() int {
	if p.tg == nil || len(p.nicEp) == 0 {
		return -1
	}
	return p.tg.cur % len(p.nicEp)
}

// ThreadStatsSnapshot returns the rank's thread-multiplexer counters.
func (p *Proc) ThreadStatsSnapshot() ThreadStats { return p.threadStats }
