package nativempi

import (
	"fmt"
	"math/bits"
	"sync"
)

// Host-side memory reuse. The simulator used to pay a fresh allocation
// for every packet struct, every eager/rendezvous wire payload, and
// every collective scratch buffer — the host-side analogue of the
// bounce-buffer tax the paper's mpjbuf pool exists to avoid. Three
// reuse layers remove that tax:
//
//   - a sync.Pool of packet structs (packets cross goroutines, so the
//     pool must be concurrency-safe);
//   - size-classed sync.Pools of wire payload buffers (ditto);
//   - a per-Comm scratch arena for collective working buffers
//     (rank-confined, so a plain free list with no locking).
//
// None of this can affect virtual time: buffers are fully overwritten
// or explicitly zeroed before reuse, and no pool ever touches a clock.

// pktPool recycles packet structs. A packet's life ends at exactly one
// point (delivery, ack settlement, control handling); freePacket
// documents each such point and guards against double frees.
var pktPool = sync.Pool{New: func() any { return new(packet) }}

// getPacket returns a zeroed packet.
func getPacket() *packet {
	p := pktPool.Get().(*packet)
	*p = packet{}
	return p
}

// freePacket returns a packet (and its pooled payload, if it owns one)
// for reuse. Freeing the same packet twice is a bug in the ownership
// protocol and panics loudly rather than corrupting a later message.
func freePacket(p *packet) {
	if p == nil {
		return
	}
	if p.freed {
		panic("nativempi: packet double-free")
	}
	if p.borrowed && p.ownsData {
		// A borrowed payload aliases a live USER buffer. Returning it to
		// the wire pool would hand that memory to a later message and
		// corrupt the user's data; the ownership protocol guarantees
		// borrowed packets never claim pool ownership, so a violation is
		// a bug worth a loud stop.
		panic("nativempi: pool release of borrowed payload")
	}
	p.freed = true
	if p.ownsData && p.data != nil {
		putWire(p.data)
	}
	p.data = nil
	p.vec = nil
	p.wire = nil
	pktPool.Put(p)
}

// wireClasses pools wire payload slices in power-of-two size classes.
// Class i holds buffers of capacity 1<<i; minWireClass keeps tiny
// messages in one class.
const (
	minWireClass = 6 // 64 bytes
	maxWireClass = 63
)

// The class pools traffic in *[]byte, not []byte: storing a bare slice
// in a sync.Pool boxes its three-word header into an interface, which
// is itself a heap allocation — one alloc per putWire, the exact tax
// the pool exists to remove (it dominated the allocation profile).
// Pointers are interface-direct, so a recycled header makes the whole
// round trip allocation-free. hdrPool recycles the headers themselves.
var wireClasses [maxWireClass + 1]sync.Pool

var hdrPool = sync.Pool{New: func() any { return new([]byte) }}

// wireClassFor returns the class index whose capacity fits n bytes.
func wireClassFor(n int) int {
	if n <= 1<<minWireClass {
		return minWireClass
	}
	return bits.Len(uint(n - 1))
}

// getWire returns an n-byte slice backed by a pooled buffer. The
// caller is expected to overwrite all n bytes (every producer does a
// full copy into it), so the contents are unspecified.
func getWire(n int) []byte {
	if n == 0 {
		return nil
	}
	cls := wireClassFor(n)
	if v := wireClasses[cls].Get(); v != nil {
		hdr := v.(*[]byte)
		b := (*hdr)[:n]
		*hdr = nil
		hdrPool.Put(hdr)
		return b
	}
	return make([]byte, n, 1<<cls)
}

// putWire parks a buffer obtained from getWire.
func putWire(b []byte) {
	if cap(b) == 0 {
		return
	}
	cls := bits.Len(uint(cap(b) - 1))
	if cap(b) != 1<<cls || cls > maxWireClass {
		return // not one of ours; let the GC have it
	}
	hdr := hdrPool.Get().(*[]byte)
	*hdr = b[:cap(b)]
	wireClasses[cls].Put(hdr)
}

// ArenaStats counts scratch-arena activity for one rank, aggregated
// across its communicators. Like MailboxStats these are host-side
// numbers (reported by hostbench), kept out of the deterministic
// registry so goldens are unaffected by host-speed work.
type ArenaStats struct {
	Borrows        int64 `json:"borrows"`
	Hits           int64 `json:"hits"`   // borrows served from the free list
	Misses         int64 `json:"misses"` // borrows that had to allocate
	Returns        int64 `json:"returns"`
	InUseBytes     int64 `json:"in_use_bytes"`
	HighWaterBytes int64 `json:"high_water_bytes"` // peak borrowed footprint, mpjbuf-style
}

// scratchArena lends working buffers to the collective algorithms —
// the acc/scratch/partial temporaries that used to be a make([]byte, n)
// per call. It is confined to its rank goroutine, so borrowing is a
// lock-free free-list pop. Borrowed buffers are zeroed, preserving the
// exact semantics of make, so converting a call site cannot change any
// simulated artifact.
type scratchArena struct {
	p       *Proc
	classes map[int][][]byte
}

func newScratchArena(p *Proc) *scratchArena {
	return &scratchArena{p: p, classes: map[int][][]byte{}}
}

// borrow returns a zeroed n-byte slice.
func (a *scratchArena) borrow(n int) []byte {
	if n == 0 {
		return nil
	}
	st := &a.p.arenaStats
	st.Borrows++
	cls := wireClassFor(n)
	st.InUseBytes += int64(int(1) << cls)
	if st.InUseBytes > st.HighWaterBytes {
		st.HighWaterBytes = st.InUseBytes
	}
	if free := a.classes[cls]; len(free) > 0 {
		b := free[len(free)-1]
		free[len(free)-1] = nil
		a.classes[cls] = free[:len(free)-1]
		st.Hits++
		b = b[:n]
		clear(b)
		return b
	}
	st.Misses++
	return make([]byte, n, 1<<cls)
}

// giveBack parks a borrowed buffer. Returning a buffer that is already
// parked (a double return) panics: the aliasing it would create — two
// later borrowers handed the same memory — corrupts payloads in ways
// that are much harder to debug than a crash here.
func (a *scratchArena) giveBack(b []byte) {
	if cap(b) == 0 {
		return
	}
	cls := bits.Len(uint(cap(b) - 1))
	if cap(b) != 1<<cls {
		panic(fmt.Sprintf("nativempi: arena return of foreign buffer (cap %d)", cap(b)))
	}
	b = b[:cap(b)]
	for _, f := range a.classes[cls] {
		if &f[0] == &b[0] {
			panic("nativempi: arena double-return")
		}
	}
	st := &a.p.arenaStats
	st.Returns++
	st.InUseBytes -= int64(int(1) << cls)
	a.classes[cls] = append(a.classes[cls], b)
}

// arena returns the communicator's scratch arena, created on first
// use. Comms are rank-confined, so lazy init needs no synchronization.
func (c *Comm) arena() *scratchArena {
	if c.scr == nil {
		c.scr = newScratchArena(c.p)
	}
	return c.scr
}

// borrowScratch / returnScratch are the call-site API: n zeroed bytes
// on loan for the duration of one collective.
func (c *Comm) borrowScratch(n int) []byte { return c.arena().borrow(n) }
func (c *Comm) returnScratch(b []byte)     { c.arena().giveBack(b) }

// CopyStats counts host-side payload data movement for one rank: the
// actual memcpys the simulator performs to carry message bytes from
// the sender's buffer to the receiver's, and the copies the zero-copy
// rendezvous datapath elided. Like the other host-side counters these
// never enter the deterministic registry — eliding a host memcpy must
// not move a virtual timestamp (see DESIGN.md), so the only place the
// savings can show up is here and in BENCH_OMB.json.
type CopyStats struct {
	Copies       int64 `json:"copies"`
	BytesCopied  int64 `json:"bytes_copied"`
	CopiesElided int64 `json:"copies_elided"`
	BytesElided  int64 `json:"bytes_elided"`
}

// count records one n-byte host memcpy of payload data.
func (c *CopyStats) count(n int) {
	c.Copies++
	c.BytesCopied += int64(n)
}

// elide records one n-byte copy avoided by borrowing.
func (c *CopyStats) elide(n int) {
	c.CopiesElided++
	c.BytesElided += int64(n)
}

// HostStats aggregates the host-side reuse and queue counters of a
// world across its ranks — the numbers cmd/mv2jbench reports. They
// describe how much host work the simulation cost, never what the
// simulation computed, and are therefore kept out of the deterministic
// metrics registry and the trace artifacts.
type HostStats struct {
	Mailbox MailboxStats `json:"mailbox"`
	Arena   ArenaStats   `json:"arena"`
	Copy    CopyStats    `json:"copy"`
	Match   MatchStats   `json:"match"`
	Engine  EngineStats  `json:"engine"`
	Reg     RegStats     `json:"reg"`
	RDMA    RDMAStats    `json:"rdma"`
	Flow    FlowStats    `json:"flow"`
	Threads ThreadStats  `json:"threads"`
}

// HostStats sums the per-rank host-side counters. Call after Run has
// returned; the ranks' goroutines must have quiesced.
func (w *World) HostStats() HostStats {
	var hs HostStats
	for _, p := range w.procs {
		mb := p.mb.Stats()
		hs.Mailbox.Pushes += mb.Pushes
		hs.Mailbox.PushBatches += mb.PushBatches
		hs.Mailbox.Swaps += mb.Swaps
		hs.Mailbox.Batched += mb.Batched
		if mb.MaxPush > hs.Mailbox.MaxPush {
			hs.Mailbox.MaxPush = mb.MaxPush
		}
		if mb.MaxBatch > hs.Mailbox.MaxBatch {
			hs.Mailbox.MaxBatch = mb.MaxBatch
		}
		if mb.MaxTail > hs.Mailbox.MaxTail {
			hs.Mailbox.MaxTail = mb.MaxTail
		}
		ar := p.arenaStats
		hs.Arena.Borrows += ar.Borrows
		hs.Arena.Hits += ar.Hits
		hs.Arena.Misses += ar.Misses
		hs.Arena.Returns += ar.Returns
		hs.Arena.InUseBytes += ar.InUseBytes
		hs.Arena.HighWaterBytes += ar.HighWaterBytes
		cs := p.copyStats
		hs.Copy.Copies += cs.Copies
		hs.Copy.BytesCopied += cs.BytesCopied
		hs.Copy.CopiesElided += cs.CopiesElided
		hs.Copy.BytesElided += cs.BytesElided
		ms := p.matchStats
		hs.Match.PostedLookups += ms.PostedLookups
		hs.Match.PostedProbes += ms.PostedProbes
		hs.Match.UnexpLookups += ms.UnexpLookups
		hs.Match.UnexpProbes += ms.UnexpProbes
		if ms.MaxBucket > hs.Match.MaxBucket {
			hs.Match.MaxBucket = ms.MaxBucket
		}
		if ms.UnexpDepthHiWater > hs.Match.UnexpDepthHiWater {
			hs.Match.UnexpDepthHiWater = ms.UnexpDepthHiWater
		}
		if ms.UnexpBytesHiWater > hs.Match.UnexpBytesHiWater {
			hs.Match.UnexpBytesHiWater = ms.UnexpBytesHiWater
		}
		rs := p.reg.stats
		hs.Reg.Hits += rs.Hits
		hs.Reg.Misses += rs.Misses
		hs.Reg.Evictions += rs.Evictions
		hs.Reg.BytesReg += rs.BytesReg
		hs.Reg.PinnedBytes += rs.PinnedBytes
		if rs.PinnedPeak > hs.Reg.PinnedPeak {
			hs.Reg.PinnedPeak = rs.PinnedPeak
		}
		hs.RDMA.Writes += p.rdmaStats.Writes
		hs.RDMA.BytesPlaced += p.rdmaStats.BytesPlaced
		fs := p.FlowStats()
		hs.Flow.CreditFrames += fs.CreditFrames
		hs.Flow.Piggybacks += fs.Piggybacks
		hs.Flow.GrantsApplied += fs.GrantsApplied
		hs.Flow.RNRParks += fs.RNRParks
		hs.Flow.RNRWaitPs += fs.RNRWaitPs
		hs.Flow.DemotedSends += fs.DemotedSends
		hs.Threads.add(p.threadStats)
	}
	hs.Engine = w.engStats
	return hs
}

// clearTail nils the retained tail slots left behind by the
// filter-in-place idiom (kept := s[:0]; ... ; s = kept): without it the
// backing array keeps the filtered-out pointers alive indefinitely.
func clearTail[T any](s []T, from int) {
	var zero T
	for i := from; i < len(s); i++ {
		s[i] = zero
	}
}
