package nativempi

import "fmt"

// Allgather concatenates every rank's n-byte sendBuf into every
// rank's recvBuf (size·n bytes, rank-ordered).
func (c *Comm) Allgather(sendBuf, recvBuf []byte) error {
	defer c.collSpan("allgather", len(sendBuf))()
	p := c.Size()
	n := len(sendBuf)
	if len(recvBuf) != n*p {
		return fmt.Errorf("%w: allgather recv buffer %d != %d", ErrCount, len(recvBuf), n*p)
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectAllgather(n, p) {
	case AllgatherLinear:
		// Gather to 0 then broadcast: the naive composition.
		if err := c.gatherLinear(sendBuf, recvBuf, 0, tag); err != nil {
			return err
		}
		return c.Bcast(recvBuf, 0)
	default:
		return c.allgatherRing(sendBuf, recvBuf, tag)
	}
}

// allgatherRing circulates blocks around the ring in p-1 steps.
func (c *Comm) allgatherRing(sendBuf, recvBuf []byte, tag int) error {
	p := c.Size()
	n := len(sendBuf)
	me := c.myRank
	copy(recvBuf[me*n:(me+1)*n], sendBuf)
	right := (me + 1) % p
	left := (me - 1 + p) % p
	for s := 0; s < p-1; s++ {
		sendBlk := (me - s + p) % p
		recvBlk := (me - s - 1 + p) % p
		if err := c.csendrecv(recvBuf[sendBlk*n:(sendBlk+1)*n], right,
			recvBuf[recvBlk*n:(recvBlk+1)*n], left, tag); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall sends block i of sendBuf to rank i and receives block j of
// recvBuf from rank j; blocks are n bytes (len/size).
func (c *Comm) Alltoall(sendBuf, recvBuf []byte) error {
	defer c.collSpan("alltoall", len(sendBuf))()
	p := c.Size()
	if len(sendBuf)%p != 0 || len(recvBuf) != len(sendBuf) {
		return fmt.Errorf("%w: alltoall buffers %d/%d not divisible across %d ranks",
			ErrCount, len(sendBuf), len(recvBuf), p)
	}
	n := len(sendBuf) / p
	me := c.myRank
	copy(recvBuf[me*n:(me+1)*n], sendBuf[me*n:(me+1)*n])
	if p == 1 {
		return nil
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectAlltoall(n, p) {
	case AlltoallLinear:
		reqs := make([]*Request, 0, 2*(p-1))
		for off := 1; off < p; off++ {
			src := (me - off + p) % p
			reqs = append(reqs, c.cirecv(recvBuf[src*n:(src+1)*n], src, tag))
		}
		for off := 1; off < p; off++ {
			dst := (me + off) % p
			reqs = append(reqs, c.cisend(sendBuf[dst*n:(dst+1)*n], dst, tag))
		}
		return Waitall(reqs)
	default: // pairwise exchange
		for step := 1; step < p; step++ {
			dst := (me + step) % p
			src := (me - step + p) % p
			if err := c.csendrecv(sendBuf[dst*n:(dst+1)*n], dst,
				recvBuf[src*n:(src+1)*n], src, tag); err != nil {
				return err
			}
		}
		return nil
	}
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	defer c.collSpan("barrier", 0)()
	p := c.Size()
	if p == 1 {
		return nil
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectBarrier(p) {
	case BarrierLinear:
		// Gather a token at rank 0, then broadcast the release.
		token := []byte{}
		if c.myRank == 0 {
			for r := 1; r < p; r++ {
				if err := c.crecv(token, r, tag); err != nil {
					return err
				}
			}
		} else {
			if err := c.csend(token, 0, tag); err != nil {
				return err
			}
		}
		return c.Bcast(token, 0)
	default: // dissemination
		var token []byte
		for mask := 1; mask < p; mask <<= 1 {
			dst := (c.myRank + mask) % p
			src := (c.myRank - mask + p) % p
			if err := c.csendrecv(token, dst, token, src, tag); err != nil {
				return err
			}
		}
		return nil
	}
}
