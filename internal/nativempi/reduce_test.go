package nativempi

import (
	"testing"
	"testing/quick"

	"mv2j/internal/jvm"
)

func TestReduceIntoLengthMismatch(t *testing.T) {
	if err := reduceInto(make([]byte, 8), make([]byte, 4), jvm.Int, OpSum); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := reduceInto(make([]byte, 7), make([]byte, 7), jvm.Int, OpSum); err == nil {
		t.Fatal("non-multiple length accepted")
	}
}

func TestReduceIntoAllOpsAllKinds(t *testing.T) {
	intKinds := []jvm.Kind{jvm.Byte, jvm.Short, jvm.Int, jvm.Long, jvm.Char}
	intOps := []Op{OpSum, OpProd, OpMax, OpMin, OpLAnd, OpLOr, OpBAnd, OpBOr, OpBXor}
	for _, k := range intKinds {
		for _, op := range intOps {
			dst := make([]byte, 4*k.Size())
			src := make([]byte, 4*k.Size())
			for i := 0; i < 4; i++ {
				putIntNative(dst, i*k.Size(), k, int64(i+1))
				putIntNative(src, i*k.Size(), k, int64(i+3))
			}
			if err := reduceInto(dst, src, k, op); err != nil {
				t.Fatalf("%v/%v: %v", k, op, err)
			}
		}
	}
	floatOps := []Op{OpSum, OpProd, OpMax, OpMin, OpLAnd, OpLOr}
	for _, k := range []jvm.Kind{jvm.Float, jvm.Double} {
		for _, op := range floatOps {
			dst := make([]byte, 4*k.Size())
			src := make([]byte, 4*k.Size())
			if err := reduceInto(dst, src, k, op); err != nil {
				t.Fatalf("%v/%v: %v", k, op, err)
			}
		}
	}
	// Bitwise ops on floats are undefined.
	if err := reduceInto(make([]byte, 8), make([]byte, 8), jvm.Double, OpBAnd); err == nil {
		t.Fatal("bitwise op on double accepted")
	}
}

// Property: the fast kernels must agree with the generic element-wise
// path for every (kind, op) pair they cover.
func TestFastReduceMatchesGenericProperty(t *testing.T) {
	covered := []struct {
		kind jvm.Kind
		op   Op
	}{
		{jvm.Byte, OpSum}, {jvm.Byte, OpMax}, {jvm.Double, OpSum}, {jvm.Long, OpSum},
	}
	f := func(raw []byte, sel uint8) bool {
		c := covered[int(sel)%len(covered)]
		sz := c.kind.Size()
		n := (len(raw) / (2 * sz)) * sz
		if n == 0 {
			return true
		}
		dstFast := append([]byte(nil), raw[:n]...)
		srcFast := append([]byte(nil), raw[n:2*n]...)
		dstGen := append([]byte(nil), raw[:n]...)
		srcGen := append([]byte(nil), raw[n:2*n]...)

		if !fastReduce(dstFast, srcFast, c.kind, c.op) {
			return false
		}
		var err error
		if c.kind.IsFloating() {
			err = reduceFloat(dstGen, srcGen, c.kind, c.op, n/sz)
		} else {
			err = reduceInt(dstGen, srcGen, c.kind, c.op, n/sz)
		}
		if err != nil {
			return false
		}
		for i := range dstFast {
			if dstFast[i] != dstGen[i] {
				// NaN payload bits may differ legally for float ops; for
				// SUM of finite values they must match bit-exactly.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: OpSum over int kinds is commutative and associative in
// two's-complement arithmetic: reducing in either order agrees.
func TestReduceSumCommutativeProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		n -= n % 8
		if n == 0 {
			return true
		}
		x1 := append([]byte(nil), a[:n]...)
		y1 := append([]byte(nil), b[:n]...)
		x2 := append([]byte(nil), b[:n]...)
		y2 := append([]byte(nil), a[:n]...)
		if err := reduceInto(x1, y1, jvm.Long, OpSum); err != nil {
			return false
		}
		if err := reduceInto(x2, y2, jvm.Long, OpSum); err != nil {
			return false
		}
		for i := range x1 {
			if x1[i] != x2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Max/Min are idempotent (x op x == x) and ordered
// (min <= max elementwise).
func TestReduceMinMaxProperty(t *testing.T) {
	f := func(a, b []byte) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		n -= n % 4
		if n == 0 {
			return true
		}
		self := append([]byte(nil), a[:n]...)
		dup := append([]byte(nil), a[:n]...)
		if err := reduceInto(self, dup, jvm.Int, OpMax); err != nil {
			return false
		}
		for i := range self {
			if self[i] != a[i] {
				return false
			}
		}
		mx := append([]byte(nil), a[:n]...)
		mn := append([]byte(nil), a[:n]...)
		if err := reduceInto(mx, b[:n], jvm.Int, OpMax); err != nil {
			return false
		}
		if err := reduceInto(mn, b[:n], jvm.Int, OpMin); err != nil {
			return false
		}
		for i := 0; i+4 <= n; i += 4 {
			lo := getIntNative(mn, i, jvm.Int)
			hi := getIntNative(mx, i, jvm.Int)
			if lo > hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpSum: "MPI_SUM", OpProd: "MPI_PROD", OpMax: "MPI_MAX", OpMin: "MPI_MIN",
		OpLAnd: "MPI_LAND", OpLOr: "MPI_LOR", OpBAnd: "MPI_BAND", OpBOr: "MPI_BOR", OpBXor: "MPI_BXOR",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(op), op.String(), want)
		}
	}
	if Op(99).String() != "Op(99)" {
		t.Error("unknown op string wrong")
	}
}
