package nativempi

import (
	"bytes"
	"fmt"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/jvm"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// zcArtifacts is everything a run is allowed to produce that the
// deterministic contract covers: receive payloads, per-rank final
// clocks, the trace JSONL, and the metrics JSON. The zero-copy switch
// must not move a single byte of any of them.
type zcArtifacts struct {
	recvs  [][]byte
	clocks []vtime.Time
	trace  []byte
	met    []byte
	host   HostStats
}

// runZCWorkload drives a mixed eager/rendezvous workload — a ring of
// nonblocking large sends, a small eager exchange with rank 0, and an
// allreduce — and captures every deterministic artifact plus the
// host-side counters.
func runZCWorkload(w *World, size int) (zcArtifacts, error) {
	n := w.Size()
	rec := trace.New(0)
	met := metrics.NewRegistry()
	w.SetRecorder(rec)
	w.SetMetrics(met)
	a := zcArtifacts{
		recvs:  make([][]byte, n),
		clocks: make([]vtime.Time, n),
	}
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		me := p.Rank()
		next := (me + 1) % n
		prev := (me - 1 + n) % n

		// Ring shift at the sweep size (rendezvous when size is above
		// the eager limit).
		big := pattern(size, byte(me+1))
		rbuf := make([]byte, size)
		sreq, err := c.Isend(big, next, 11)
		if err != nil {
			return err
		}
		rreq, err := c.Irecv(rbuf, prev, 11)
		if err != nil {
			return err
		}
		if _, err := sreq.Wait(); err != nil {
			return err
		}
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		if want := pattern(size, byte(prev+1)); !bytes.Equal(rbuf, want) {
			return fmt.Errorf("rank %d: ring payload corrupted", me)
		}

		// Small eager exchange against rank 0 (n=2 degenerates to one
		// pair, still exercising unexpected-queue traffic).
		small := pattern(32, byte(0x40+me))
		sink := make([]byte, 32)
		if me == 0 {
			for r := 1; r < n; r++ {
				if _, err := c.Recv(sink, r, 13); err != nil {
					return err
				}
			}
			for r := 1; r < n; r++ {
				if err := c.Send(small, r, 14); err != nil {
					return err
				}
			}
		} else {
			if err := c.Send(small, 0, 13); err != nil {
				return err
			}
			if _, err := c.Recv(sink, 0, 14); err != nil {
				return err
			}
		}

		// One collective on top, so the indexed matcher sees the
		// collTag stream too.
		acc := make([]byte, 8)
		if err := c.Allreduce(pattern(8, byte(me)), acc, jvm.Long, OpSum); err != nil {
			return err
		}

		a.recvs[me] = append(append([]byte(nil), rbuf...), acc...)
		a.clocks[me] = p.Clock().Now()
		return nil
	})
	if err != nil {
		return a, err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return a, err
	}
	a.trace = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := met.WriteJSON(&buf); err != nil {
		return a, err
	}
	a.met = buf.Bytes()
	a.host = w.HostStats()
	return a, nil
}

func zcWorld(nodes, ppn int, zc Switch, plan *faults.Plan, eagerInter int) *World {
	topo := cluster.New(nodes, ppn)
	fab := fabric.Default(topo)
	if plan != nil {
		fab = fab.WithFaults(plan)
	}
	return NewWorld(topo, fab, Profile{ZeroCopyRndv: zc, EagerInter: eagerInter, EagerIntra: eagerInter})
}

// assertSameArtifacts checks the full deterministic surface matches.
func assertSameArtifacts(t *testing.T, on, off zcArtifacts) {
	t.Helper()
	for r := range on.recvs {
		if !bytes.Equal(on.recvs[r], off.recvs[r]) {
			t.Errorf("rank %d: receive payload differs between zero-copy on/off", r)
		}
		if on.clocks[r] != off.clocks[r] {
			t.Errorf("rank %d: final clock %d (on) vs %d (off)", r, on.clocks[r], off.clocks[r])
		}
	}
	if !bytes.Equal(on.trace, off.trace) {
		t.Error("trace JSONL differs between zero-copy on/off")
	}
	if !bytes.Equal(on.met, off.met) {
		t.Error("metrics JSON differs between zero-copy on/off")
	}
}

// TestZeroCopyDifferential is the core tentpole guarantee: switching
// the rendezvous datapath between borrowed-payload zero-copy and the
// framed wire copy changes host counters ONLY. Every virtual artifact
// — receive buffers, final clocks, trace JSONL, metrics JSON — is
// byte-identical at np∈{2,4,8}.
func TestZeroCopyDifferential(t *testing.T) {
	const size = 128 << 10 // above both eager thresholds
	shapes := []struct{ nodes, ppn int }{{1, 2}, {2, 2}, {2, 4}}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("np%d", sh.nodes*sh.ppn), func(t *testing.T) {
			on, err := runZCWorkload(zcWorld(sh.nodes, sh.ppn, SwitchOn, nil, 0), size)
			if err != nil {
				t.Fatal(err)
			}
			off, err := runZCWorkload(zcWorld(sh.nodes, sh.ppn, SwitchOff, nil, 0), size)
			if err != nil {
				t.Fatal(err)
			}
			assertSameArtifacts(t, on, off)
			if on.host.Copy.CopiesElided == 0 {
				t.Error("zero-copy on: no copies elided")
			}
			if off.host.Copy.CopiesElided != 0 {
				t.Errorf("zero-copy off: %d copies elided, want 0", off.host.Copy.CopiesElided)
			}
			if on.host.Copy.BytesCopied >= off.host.Copy.BytesCopied {
				t.Errorf("zero-copy on copied %d bytes, off copied %d — elision saved nothing",
					on.host.Copy.BytesCopied, off.host.Copy.BytesCopied)
			}
		})
	}
}

// TestZeroCopyDisabledUnderFaults pins the fallback: a fault plan on
// the fabric forces the framed wire-copy datapath (retransmission
// needs a stable payload image), and the artifacts still match a
// plain wire-copy world byte for byte under the same plan.
func TestZeroCopyDisabledUnderFaults(t *testing.T) {
	const size = 96 << 10
	plan := faults.Uniform(5, 0.05)
	on, err := runZCWorkload(zcWorld(2, 1, SwitchOn, plan, 0), size)
	if err != nil {
		t.Fatal(err)
	}
	if on.host.Copy.CopiesElided != 0 {
		t.Errorf("fault plan active but %d copies elided", on.host.Copy.CopiesElided)
	}
	off, err := runZCWorkload(zcWorld(2, 1, SwitchOff, plan, 0), size)
	if err != nil {
		t.Fatal(err)
	}
	assertSameArtifacts(t, on, off)
}

// FuzzZeroCopyEquivalence drives the same differential across the
// (message size × eager limit × fault plan) space: whatever the
// protocol boundary and datapath, zero-copy on and off must agree on
// every virtual artifact.
func FuzzZeroCopyEquivalence(f *testing.F) {
	f.Add(uint32(64), uint32(0), false)
	f.Add(uint32(16<<10), uint32(0), false)
	f.Add(uint32(128<<10), uint32(0), false)
	f.Add(uint32(8192), uint32(8192), false)
	f.Add(uint32(8193), uint32(8192), true)
	f.Add(uint32(200_000), uint32(1), true)
	f.Fuzz(func(t *testing.T, rawSize, rawEager uint32, faulty bool) {
		size := int(rawSize%(256<<10)) + 1
		eager := int(rawEager % (64 << 10)) // 0 = fabric default
		var plan *faults.Plan
		if faulty {
			plan = faults.Uniform(uint64(rawSize^rawEager), 0.05)
		}
		on, err := runZCWorkload(zcWorld(1, 2, SwitchOn, plan, eager), size)
		if err != nil {
			t.Fatal(err)
		}
		off, err := runZCWorkload(zcWorld(1, 2, SwitchOff, plan, eager), size)
		if err != nil {
			t.Fatal(err)
		}
		assertSameArtifacts(t, on, off)
		if faulty && on.host.Copy.CopiesElided != 0 {
			t.Errorf("fault plan active but %d copies elided", on.host.Copy.CopiesElided)
		}
	})
}
