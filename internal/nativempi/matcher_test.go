package nativempi

import (
	"math/rand"
	"testing"
)

// refMatcher is the original pair of linear scans, kept as the
// executable specification the indexed matcher must agree with.
type refMatcher struct {
	posted []*Request
	unexp  []*packet
}

func (r *refMatcher) postRecv(req *Request) *packet {
	for i, pkt := range r.unexp {
		if matches(req, pkt) {
			r.unexp = append(r.unexp[:i], r.unexp[i+1:]...)
			return pkt
		}
	}
	r.posted = append(r.posted, req)
	return nil
}

func (r *refMatcher) arrive(pkt *packet) *Request {
	for i, req := range r.posted {
		if matches(req, pkt) {
			r.posted = append(r.posted[:i], r.posted[i+1:]...)
			return req
		}
	}
	r.unexp = append(r.unexp, pkt)
	return nil
}

func (r *refMatcher) probe(req *Request) *packet {
	for _, pkt := range r.unexp {
		if matches(req, pkt) {
			return pkt
		}
	}
	return nil
}

// idxMatcher drives the production queues through the same operations
// dispatch/irecvOn perform.
type idxMatcher struct {
	posted postedQueue
	unexp  unexpQueue
}

func newIdxMatcher() *idxMatcher {
	m := &idxMatcher{}
	var stats MatchStats
	m.posted.init(&stats)
	m.unexp.init(&stats)
	return m
}

func (m *idxMatcher) postRecv(req *Request) *packet {
	if pkt := m.unexp.take(req); pkt != nil {
		return pkt
	}
	m.posted.add(req)
	return nil
}

func (m *idxMatcher) arrive(pkt *packet) *Request {
	if req := m.posted.take(pkt); req != nil {
		return req
	}
	m.unexp.add(pkt)
	return nil
}

// TestMatcherAgreesWithReference drives both matchers through long
// randomized workloads over a small (ctx, src, tag) space — so
// collisions, wildcard interleavings, and deep buckets all occur —
// and requires identical matches at every step.
func TestMatcherAgreesWithReference(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ref := &refMatcher{}
		idx := newIdxMatcher()
		var reqID int
		for step := 0; step < 4000; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // post a receive
				reqID++
				req := &Request{id: uint64(reqID), ctx: int32(rng.Intn(2)), src: rng.Intn(3), tag: rng.Intn(4)}
				if rng.Intn(5) == 0 {
					req.src = AnySource
				}
				if rng.Intn(5) == 0 {
					req.tag = AnyTag
				}
				got := idx.postRecv(req)
				want := ref.postRecv(req)
				if got != want {
					t.Fatalf("seed %d step %d: postRecv(src=%d tag=%d) matched %p, reference %p",
						seed, step, req.src, req.tag, got, want)
				}
			case op < 9: // a packet arrives
				pkt := &packet{kind: pktEager, ctx: int32(rng.Intn(2)), src: rng.Intn(3), tag: rng.Intn(4)}
				got := idx.arrive(pkt)
				want := ref.arrive(pkt)
				if got != want {
					t.Fatalf("seed %d step %d: arrive(src=%d tag=%d) matched req %v, reference %v",
						seed, step, pkt.src, pkt.tag, got, want)
				}
			default: // probe
				req := &Request{ctx: int32(rng.Intn(2)), src: rng.Intn(3), tag: rng.Intn(4)}
				if rng.Intn(3) == 0 {
					req.src = AnySource
				}
				if rng.Intn(3) == 0 {
					req.tag = AnyTag
				}
				got := idx.unexp.peek(req)
				want := ref.probe(req)
				if got != want {
					t.Fatalf("seed %d step %d: probe(src=%d tag=%d) saw %p, reference %p",
						seed, step, req.src, req.tag, got, want)
				}
			}
			if got, want := idx.posted.pending(), len(ref.posted); got != want {
				t.Fatalf("seed %d step %d: posted pending %d, reference %d", seed, step, got, want)
			}
			if got, want := idx.unexp.pending(), len(ref.unexp); got != want {
				t.Fatalf("seed %d step %d: unexp pending %d, reference %d", seed, step, got, want)
			}
		}
	}
}
