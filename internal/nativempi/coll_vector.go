package nativempi

import "fmt"

// Vector ("v") collective variants, with per-rank byte counts and
// displacements — the blocking vectored collectives MVAPICH2-J exposes.
// All use linear root-based schedules, as the reference MPI
// implementations do for the irregular variants.

func checkVector(buf []byte, counts, displs []int, p int) error {
	if len(counts) != p || len(displs) != p {
		return fmt.Errorf("%w: counts/displs length %d/%d, want %d", ErrCount, len(counts), len(displs), p)
	}
	for r := 0; r < p; r++ {
		if counts[r] < 0 || displs[r] < 0 || displs[r]+counts[r] > len(buf) {
			return fmt.Errorf("%w: rank %d slice [%d,%d) outside buffer of %d",
				ErrCount, r, displs[r], displs[r]+counts[r], len(buf))
		}
	}
	return nil
}

// Gatherv gathers sendBuf from every rank into root's recvBuf at
// per-rank displacements.
func (c *Comm) Gatherv(sendBuf, recvBuf []byte, counts, displs []int, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	p := c.Size()
	tag := c.collTag()
	if c.myRank != root {
		return c.csend(sendBuf, root, tag)
	}
	if err := checkVector(recvBuf, counts, displs, p); err != nil {
		return err
	}
	if len(sendBuf) != counts[root] {
		return fmt.Errorf("%w: root send %d != counts[root] %d", ErrCount, len(sendBuf), counts[root])
	}
	copy(recvBuf[displs[root]:displs[root]+counts[root]], sendBuf)
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		if err := c.crecv(recvBuf[displs[r]:displs[r]+counts[r]], r, tag); err != nil {
			return err
		}
	}
	return nil
}

// Scatterv scatters slices of root's sendBuf to every rank's recvBuf.
func (c *Comm) Scatterv(sendBuf []byte, counts, displs []int, recvBuf []byte, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	p := c.Size()
	tag := c.collTag()
	if c.myRank != root {
		return c.crecv(recvBuf, root, tag)
	}
	if err := checkVector(sendBuf, counts, displs, p); err != nil {
		return err
	}
	if len(recvBuf) != counts[root] {
		return fmt.Errorf("%w: root recv %d != counts[root] %d", ErrCount, len(recvBuf), counts[root])
	}
	for r := 0; r < p; r++ {
		if r == root {
			continue
		}
		if err := c.csend(sendBuf[displs[r]:displs[r]+counts[r]], r, tag); err != nil {
			return err
		}
	}
	copy(recvBuf, sendBuf[displs[root]:displs[root]+counts[root]])
	return nil
}

// Allgatherv gathers variable-size blocks to every rank: a Gatherv to
// rank 0 followed by a broadcast of the filled region.
func (c *Comm) Allgatherv(sendBuf, recvBuf []byte, counts, displs []int) error {
	p := c.Size()
	if err := checkVector(recvBuf, counts, displs, p); err != nil {
		return err
	}
	if err := c.Gatherv(sendBuf, recvBuf, counts, displs, 0); err != nil {
		return err
	}
	// Broadcast the whole rank-addressed region in one message.
	end := 0
	for r := 0; r < p; r++ {
		if displs[r]+counts[r] > end {
			end = displs[r] + counts[r]
		}
	}
	return c.Bcast(recvBuf[:end], 0)
}

// Alltoallv exchanges variable-size blocks between all ranks.
func (c *Comm) Alltoallv(sendBuf []byte, sendCounts, sendDispls []int,
	recvBuf []byte, recvCounts, recvDispls []int) error {
	p := c.Size()
	if err := checkVector(sendBuf, sendCounts, sendDispls, p); err != nil {
		return err
	}
	if err := checkVector(recvBuf, recvCounts, recvDispls, p); err != nil {
		return err
	}
	me := c.myRank
	if sendCounts[me] != recvCounts[me] {
		return fmt.Errorf("%w: self block %d != %d", ErrCount, sendCounts[me], recvCounts[me])
	}
	copy(recvBuf[recvDispls[me]:recvDispls[me]+recvCounts[me]],
		sendBuf[sendDispls[me]:sendDispls[me]+sendCounts[me]])
	tag := c.collTag()
	reqs := make([]*Request, 0, 2*(p-1))
	for off := 1; off < p; off++ {
		src := (me - off + p) % p
		reqs = append(reqs, c.cirecv(recvBuf[recvDispls[src]:recvDispls[src]+recvCounts[src]], src, tag))
	}
	for off := 1; off < p; off++ {
		dst := (me + off) % p
		reqs = append(reqs, c.cisend(sendBuf[sendDispls[dst]:sendDispls[dst]+sendCounts[dst]], dst, tag))
	}
	return Waitall(reqs)
}
