package nativempi

import (
	"sync"
	"testing"
)

// TestMailboxMaxTailSaturation pins the high-water accounting when the
// consumer never drains: every push grows the producer-side backlog,
// and MaxTail must track the peak exactly.
func TestMailboxMaxTailSaturation(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 100; i++ {
		m.push(&packet{kind: pktEager})
	}
	if got := m.Stats().MaxTail; got != 100 {
		t.Errorf("MaxTail = %d after 100 undrained pushes, want 100", got)
	}
	// Draining must not shrink the recorded peak.
	for {
		if _, ok := m.tryPop(); !ok {
			break
		}
	}
	if got := m.Stats().MaxTail; got != 100 {
		t.Errorf("MaxTail = %d after drain, want peak 100 retained", got)
	}
	// A smaller refill cannot lower it; exceeding it raises it.
	for i := 0; i < 50; i++ {
		m.push(&packet{kind: pktEager})
	}
	if got := m.Stats().MaxTail; got != 100 {
		t.Errorf("MaxTail = %d after smaller refill, want 100", got)
	}
	for i := 0; i < 75; i++ {
		m.push(&packet{kind: pktEager})
	}
	if got := m.Stats().MaxTail; got != 125 {
		t.Errorf("MaxTail = %d, want 125", got)
	}
}

// TestMailboxPushBatchSaturation covers the batch producer path: batch
// counters, per-batch peaks, and MaxTail across accumulating batches
// with a consumer that never drains.
func TestMailboxPushBatchSaturation(t *testing.T) {
	m := newMailbox()
	mkBatch := func(n int) []*packet {
		b := make([]*packet, n)
		for i := range b {
			b[i] = &packet{kind: pktEager}
		}
		return b
	}
	m.pushBatch(nil)        // no-op
	m.pushBatch(mkBatch(1)) // single packet: counts as push, not batch
	m.pushBatch(mkBatch(8))
	m.pushBatch(mkBatch(3))
	st := m.Stats()
	if st.Pushes != 12 {
		t.Errorf("Pushes = %d, want 12", st.Pushes)
	}
	if st.PushBatches != 2 {
		t.Errorf("PushBatches = %d, want 2 (singletons excluded)", st.PushBatches)
	}
	if st.MaxPush != 8 {
		t.Errorf("MaxPush = %d, want 8", st.MaxPush)
	}
	if st.MaxTail != 12 {
		t.Errorf("MaxTail = %d, want 12 (undrained accumulation)", st.MaxTail)
	}
}

// TestMailboxPushBatchFIFO asserts batch contents interleave in strict
// arrival order with single pushes.
func TestMailboxPushBatchFIFO(t *testing.T) {
	m := newMailbox()
	var want []*packet
	add := func(pkts ...*packet) {
		want = append(want, pkts...)
	}
	p1 := &packet{tag: 1}
	m.push(p1)
	add(p1)
	batch := []*packet{{tag: 2}, {tag: 3}, {tag: 4}}
	m.pushBatch(batch)
	add(batch...)
	p5 := &packet{tag: 5}
	m.push(p5)
	add(p5)
	for i, w := range want {
		got, ok := m.tryPop()
		if !ok {
			t.Fatalf("pop %d: mailbox empty", i)
		}
		if got != w {
			t.Fatalf("pop %d: got tag %d, want tag %d", i, got.tag, w.tag)
		}
	}
	if _, ok := m.tryPop(); ok {
		t.Error("mailbox not empty after draining expected packets")
	}
}

// TestMailboxSaturationRace is the -race stress leg: many producers
// flooding (push and pushBatch) against one consumer that drains only
// intermittently, leaving a persistent backlog. Run with -race this
// exercises the mu/cond protocol and the stats updates under real
// contention; the final packet count and the MaxTail lower bound are
// asserted either way.
func TestMailboxSaturationRace(t *testing.T) {
	const (
		producers = 8
		perProd   = 500
		batchLen  = 5
	)
	m := newMailbox()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProd/batchLen; i++ {
				if i%2 == 0 {
					b := make([]*packet, batchLen)
					for j := range b {
						b[j] = &packet{kind: pktEager}
					}
					m.pushBatch(b)
				} else {
					for j := 0; j < batchLen; j++ {
						m.push(&packet{kind: pktEager})
					}
				}
			}
		}()
	}
	// The consumer drains lazily — a token sip per round — so the tail
	// stays saturated while producers run.
	var drained int
	done := make(chan struct{})
	go func() {
		defer close(done)
		for drained < producers*perProd {
			if _, ok := m.tryPop(); ok {
				drained++
			}
		}
	}()
	wg.Wait()
	<-done
	st := m.Stats()
	if st.Pushes != producers*perProd {
		t.Errorf("Pushes = %d, want %d", st.Pushes, producers*perProd)
	}
	if drained != producers*perProd {
		t.Errorf("drained %d packets, want %d", drained, producers*perProd)
	}
	if st.MaxTail < int64(batchLen) {
		t.Errorf("MaxTail = %d, want at least one full batch (%d)", st.MaxTail, batchLen)
	}
}
