package nativempi

import (
	"fmt"

	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/vtime"
)

type pktKind uint8

const (
	pktEager pktKind = iota
	pktRTS
	pktCTS
	pktData
	pktRMA      // one-sided operation toward a window
	pktRMAReply // data reply to an RMA Get
	pktAbort      // job abort: wakes and kills blocked ranks
	pktAck        // reliability-layer acknowledgement (fault plans only)
	pktFailNotice // failure-detector verdict: src is the dead rank (FT worlds)
	pktRevoke     // ULFM revoke poison: ctx/tag carry the comm's two contexts
)

// packet is one unit on the simulated wire. arriveAt is the virtual
// time its last byte is available at the destination; the mailbox
// itself is only an event transport, so host scheduling never affects
// measured times.
type packet struct {
	kind     pktKind
	src, dst int // world ranks
	tag      int
	ctx      int32
	data     []byte // payload (eager, data)
	nbytes   int    // full payload size (meaningful for RTS)
	arriveAt vtime.Time
	reqID    uint64 // rendezvous correlation (RTS/CTS/Data)

	// Reliability-layer fields, populated only under a fault plan.
	sentAt    vtime.Time    // when this transmission left the sender
	wire      []byte        // framed image (header + checksum + payload)
	relStream faults.Stream // sequence-number stream
	relSeq    uint64        // sequence number within the stream
	attempt   int           // transmission attempt (0 = first)
}

// ProcStats counts per-rank runtime activity.
type ProcStats struct {
	MsgsSent     int64
	BytesSent    int64
	EagerSends   int64
	RndvSends    int64
	MsgsReceived int64
	Unexpected   int64 // receives that found the message already queued

	// Reliability-layer counters (non-zero only under a fault plan).
	Retransmits   int64 // attempts after an ack timeout
	FaultDrops    int64 // transmissions the fabric swallowed
	FaultCorrupts int64 // transmissions injected with a flipped byte
	FaultDups     int64 // transmissions the fabric duplicated
	FaultDelays   int64 // transmissions the fabric delayed
	CorruptDrops  int64 // frames this rank rejected on checksum
	DupDrops      int64 // duplicate frames this rank suppressed
	AcksSent      int64
	AcksReceived  int64
	PeerFailures  int64 // retransmit budgets exhausted (abort, or ErrProcFailed under FT)

	// Failure-detector counters (non-zero only in fault-tolerant
	// worlds). Each peer death drives this rank through one
	// suspect→confirm transition, charged to the virtual clock.
	PeerSuspects int64 // peers this rank's detector moved to suspected
	PeerConfirms int64 // suspected peers confirmed dead
	RevokesSeen  int64 // distinct communicator revocations applied
}

// Proc is one MPI rank: its clock, mailbox, matching queues, and
// injection resource. A Proc is confined to its rank goroutine.
type Proc struct {
	w     *World
	rank  int
	clock *vtime.Clock
	mb    *mailbox

	// nicFree is when the rank's injection resource (NIC / memory
	// port) next becomes idle; successive sends serialize on it.
	nicFree vtime.Time

	posted      []*Request          // posted receives, FIFO
	unexpected  []*packet           // arrived-but-unmatched eager/RTS packets
	sendPending map[uint64]*Request // rendezvous sends awaiting CTS
	recvPending map[uint64]*Request // rendezvous receives awaiting data
	nextReq     uint64

	world *Comm
	stats ProcStats

	// windows maps window ids to their per-rank state (see rma.go).
	windows map[int32]*winState

	// rel is the reliability-sublayer state, non-nil exactly when the
	// fabric carries a fault plan (see reliability.go).
	rel *relState

	// Fault-tolerance state (see ft.go), live only in FT worlds.
	crash       *faults.Crash        // this rank's scheduled death, if any
	crashed     bool                 // the schedule has fired
	crashHold   int                  // >0 suppresses checkCrash (atomic protocol commits)
	opCount     uint64               // MPI operations entered (crash trigger odometer)
	inflight    int                  // requests issued but not yet consumed by Wait/Test
	failedPeers map[int]vtime.Time   // world rank → virtual time its death was confirmed here
	revokedAt   map[int32]vtime.Time // revoked context id → poison time
}

func newProc(w *World, rank int) *Proc {
	p := &Proc{
		w:           w,
		rank:        rank,
		clock:       vtime.NewClock(),
		mb:          newMailbox(),
		sendPending: map[uint64]*Request{},
		recvPending: map[uint64]*Request{},
	}
	if w.fab.Faults() != nil {
		p.rel = newRelState()
	}
	if c, ok := w.fab.CrashOf(rank); ok {
		crash := c
		p.crash = &crash
	}
	p.world = &Comm{
		p:       p,
		group:   identity(w.Size()),
		myRank:  rank,
		ptCtx:   worldPtCtx,
		collCtx: worldCollCtx,
	}
	return p
}

func identity(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Clock returns the rank's virtual clock.
func (p *Proc) Clock() *vtime.Clock { return p.clock }

// CommWorld returns this rank's view of MPI_COMM_WORLD.
func (p *Proc) CommWorld() *Comm { return p.world }

// Stats returns a snapshot of the rank's counters.
func (p *Proc) Stats() ProcStats { return p.stats }

// World returns the job this rank belongs to.
func (p *Proc) World() *World { return p.w }

// channel returns the fabric parameters toward world rank dst.
func (p *Proc) channel(dst int) fabric.Params { return p.w.fab.Channel(p.rank, dst) }

// overheads returns the library software overheads toward dst.
func (p *Proc) sendSoft(dst int) vtime.Duration {
	if p.w.fab.IsIntra(p.rank, dst) {
		return p.w.prof.IntraSendOverhead
	}
	return p.w.prof.InterSendOverhead
}

func (p *Proc) recvSoft(src int) vtime.Duration {
	if p.w.fab.IsIntra(p.rank, src) {
		return p.w.prof.IntraRecvOverhead
	}
	return p.w.prof.InterRecvOverhead
}

// eagerLimit returns the protocol threshold toward dst.
func (p *Proc) eagerLimit(dst int) int {
	ch := p.channel(dst)
	if p.w.fab.IsIntra(p.rank, dst) {
		if p.w.prof.EagerIntra > 0 {
			return p.w.prof.EagerIntra
		}
	} else if p.w.prof.EagerInter > 0 {
		return p.w.prof.EagerInter
	}
	return ch.EagerThreshold
}

// post delivers a packet toward world rank dst: straight into the
// mailbox on a lossless fabric, through the reliability sublayer's
// ack/retransmit protocol under a fault plan. The error is non-nil
// only in fault-tolerant worlds, when the retransmit budget toward dst
// is exhausted (ErrProcFailed); without FT that condition aborts the
// job instead.
func (p *Proc) post(dst int, pkt *packet) error {
	if p.rel == nil {
		p.postRaw(dst, pkt)
		return nil
	}
	return p.reliablePost(dst, pkt)
}

// postRaw bypasses the reliability layer (acks, aborts, and the
// transmissions reliablePost has already adjudicated).
func (p *Proc) postRaw(dst int, pkt *packet) { p.w.procs[dst].mb.push(pkt) }

// matches reports whether a posted receive (req) matches a packet.
func matches(req *Request, pkt *packet) bool {
	if req.ctx != pkt.ctx {
		return false
	}
	if req.src != AnySource && req.src != pkt.src {
		return false
	}
	if req.tag != AnyTag && req.tag != pkt.tag {
		return false
	}
	return true
}

// dispatch routes one arrived packet. Under a fault plan, transport
// packets first pass the reliability layer's admission check (checksum
// verification, duplicate suppression, acknowledgement).
func (p *Proc) dispatch(pkt *packet) {
	if p.rel != nil {
		switch pkt.kind {
		case pktAbort, pktFailNotice, pktRevoke:
			// Control traffic bypasses reliability: aborts, detector
			// verdicts, and revocations must get through even when the
			// fabric is on fire.
		case pktAck:
			p.handleAck(pkt)
			return
		default:
			if !p.admit(pkt) {
				return
			}
		}
	}
	switch pkt.kind {
	case pktEager, pktRTS:
		for i, req := range p.posted {
			if matches(req, pkt) {
				p.posted = append(p.posted[:i], p.posted[i+1:]...)
				p.deliver(req, pkt)
				return
			}
		}
		p.unexpected = append(p.unexpected, pkt)
	case pktCTS:
		req, ok := p.sendPending[pkt.reqID]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got CTS for unknown request %d", p.rank, pkt.reqID))
		}
		delete(p.sendPending, pkt.reqID)
		p.rndvSendData(req, pkt)
	case pktData:
		req, ok := p.recvPending[pkt.reqID]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got DATA for unknown request %d", p.rank, pkt.reqID))
		}
		delete(p.recvPending, pkt.reqID)
		p.completeRndvRecv(req, pkt)
	case pktRMA, pktRMAReply:
		st, ok := p.windows[pkt.ctx]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got RMA traffic for unknown window %d", p.rank, pkt.ctx))
		}
		st.incoming = append(st.incoming, pkt)
	case pktFailNotice:
		p.handleFailNotice(pkt)
	case pktRevoke:
		p.handleRevoke(pkt)
	case pktAbort:
		// Propagates as a panic so even deeply nested blocking calls
		// unwind; World.Run recovers it into this rank's error.
		panic(abortError{origin: pkt.src, reason: string(pkt.data)})
	}
}

// progressOnce processes one packet, blocking until one arrives.
func (p *Proc) progressOnce() { p.dispatch(p.mb.pop()) }

// poll drains already-arrived packets without blocking.
func (p *Proc) poll() {
	for {
		pkt, ok := p.mb.tryPop()
		if !ok {
			return
		}
		p.dispatch(pkt)
	}
}

// deliver completes the receive req with an eager payload or, for an
// RTS, starts the rendezvous reply.
func (p *Proc) deliver(req *Request, pkt *packet) {
	ch := p.channel(pkt.src)
	switch pkt.kind {
	case pktEager:
		n := len(pkt.data)
		if n > len(req.buf) {
			req.err = fmt.Errorf("%w: %d-byte message into %d-byte buffer", ErrTruncated, n, len(req.buf))
			n = len(req.buf)
		}
		copy(req.buf[:n], pkt.data[:n])
		complete := vtime.Max(req.postedAt, pkt.arriveAt).
			Add(ch.RecvOverhead + p.recvSoft(pkt.src) + req.extraRecvCost)
		// A message that hit the wire before the receive was posted
		// sat in a bounce buffer and pays one extra copy now. The
		// comparison uses virtual times only, keeping runs
		// deterministic under host scheduling.
		if pkt.arriveAt < req.postedAt {
			complete = complete.Add(vtime.PerByte(n, ch.Bandwidth))
			p.stats.Unexpected++
		}
		req.status = Status{Source: pkt.src, Tag: pkt.tag, Bytes: len(pkt.data)}
		req.completeAt = complete
		req.done = true
		p.stats.MsgsReceived++
		p.recordRecv(pkt.src, len(pkt.data), req.postedAt, complete)
	case pktRTS:
		if pkt.nbytes > len(req.buf) {
			req.err = fmt.Errorf("%w: %d-byte rendezvous into %d-byte buffer", ErrTruncated, pkt.nbytes, len(req.buf))
		}
		readyAt := vtime.Max(req.postedAt, pkt.arriveAt)
		req.rndvFrom = pkt.src
		req.rndvTag = pkt.tag
		p.recvPending[pkt.reqID] = req
		cts := &packet{
			kind:     pktCTS,
			src:      p.rank,
			dst:      pkt.src,
			ctx:      pkt.ctx,
			reqID:    pkt.reqID,
			sentAt:   readyAt,
			arriveAt: readyAt.Add(ch.Latency),
		}
		if err := p.post(pkt.src, cts); err != nil {
			// The rendezvous partner is unreachable: the receive fails
			// in place instead of waiting for data that will never come.
			delete(p.recvPending, pkt.reqID)
			p.failReq(req, readyAt, err)
		}
	default:
		panic("nativempi: deliver on control packet")
	}
}

// rndvSendData runs the data phase after a CTS: inject the payload,
// complete the send request when the injection resource is done.
func (p *Proc) rndvSendData(req *Request, cts *packet) {
	ch := p.channel(req.dst)
	// The data phase is driven by the CTS arrival and the injection
	// resource, not by when this rank's CPU happened to poll the
	// mailbox: rendezvous transfers are RDMA-offloaded, and using
	// clock.Now() here would let host scheduling leak into virtual
	// time (the CTS is dispatched at whichever poll point it rides
	// in on).
	start := vtime.Max(cts.arriveAt, p.nicFree)
	start = start.Add(ch.RndvHandshake)
	data := make([]byte, len(req.sendBuf))
	copy(data, req.sendBuf)
	// The send completes when the first injection clears the NIC;
	// reliablePost may keep the NIC busy later for retransmissions,
	// but those never block the sender's CPU.
	injected := start.Add(ch.SerializeTime(len(data)))
	p.nicFree = injected
	pkt := &packet{
		kind:     pktData,
		src:      p.rank,
		dst:      req.dst,
		tag:      req.tag,
		ctx:      req.ctx,
		data:     data,
		reqID:    req.id,
		sentAt:   start,
		arriveAt: start.Add(ch.TransferTime(len(data))),
	}
	err := p.post(req.dst, pkt)
	req.completeAt = injected
	req.err = err
	req.done = true
	p.recordSend(req.dst, len(data), start, req.completeAt)
}

// completeRndvRecv lands the data phase in the user buffer.
func (p *Proc) completeRndvRecv(req *Request, pkt *packet) {
	ch := p.channel(pkt.src)
	n := len(pkt.data)
	if n > len(req.buf) {
		n = len(req.buf) // error already recorded at RTS time
	}
	copy(req.buf[:n], pkt.data[:n])
	req.status = Status{Source: pkt.src, Tag: pkt.tag, Bytes: len(pkt.data)}
	req.completeAt = pkt.arriveAt.Add(ch.RecvOverhead + p.recvSoft(pkt.src) + req.extraRecvCost)
	req.done = true
	p.stats.MsgsReceived++
	p.recordRecv(pkt.src, len(pkt.data), req.postedAt, req.completeAt)
}
