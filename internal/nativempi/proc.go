package nativempi

import (
	"fmt"

	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/vtime"
)

type pktKind uint8

const (
	pktEager pktKind = iota
	pktRTS
	pktCTS
	pktData
	pktRMA        // one-sided operation toward a window
	pktRMAReply   // data reply to an RMA Get
	pktAbort      // job abort: wakes and kills blocked ranks
	pktAck        // reliability-layer acknowledgement (fault plans only)
	pktFailNotice // failure-detector verdict: src is the dead rank (FT worlds)
	pktRevoke     // ULFM revoke poison: ctx/tag carry the comm's two contexts
	pktRndvFin    // zero-copy completion fence: receiver has copied a borrowed payload
	pktCredit     // explicit flow-control grant (one-sided traffic; see flowctl.go)
)

// packet is one unit on the simulated wire. arriveAt is the virtual
// time its last byte is available at the destination; the mailbox
// itself is only an event transport, so host scheduling never affects
// measured times.
type packet struct {
	kind     pktKind
	src, dst int // world ranks
	tag      int
	ctx      int32
	data     []byte // payload (eager, data)
	nbytes   int    // full payload size (meaningful for RTS)
	arriveAt vtime.Time
	reqID    uint64 // rendezvous correlation (RTS/CTS/Data)
	emitSeq  uint64 // per-source emission counter (phase-merge sort key)

	// vec, non-nil only on a gather-direct DATA packet, is a read-only
	// borrow of the sender's non-contiguous payload descriptor: the
	// receiver performs the only host copy, scattering (or streaming)
	// the runs straight out of the sender's live user array. Such
	// packets always carry borrowed=true and nil data, and settle
	// through the same pktRndvFin fence as contiguous borrows.
	vec *IOVec

	// rdma marks a message riding the RDMA channel: an RTS advertising
	// an RDMA-mode rendezvous, the CTS answering it (carrying the
	// receiver's registered landing buffer when the placement datapath
	// is on), the DATA completion notification (payload already placed
	// remotely, data nil), or a one-sided operation that bypassed the
	// target's CPU. Both endpoints derive their virtual charges from
	// this flag identically whatever the host datapath.
	rdma bool

	// Host-side reuse bookkeeping (see pool.go). ownsData marks a
	// payload borrowed from the wire pool; freed guards against a
	// double free of the packet struct itself. borrowed marks a
	// zero-copy DATA packet whose data aliases the SENDER's live
	// buffer — or, on the RDMA placement path, a CTS whose data aliases
	// the RECEIVER's registered landing buffer: read-only, never
	// pool-owned — freePacket panics if such a payload ever claims pool
	// ownership.
	ownsData bool
	freed    bool
	borrowed bool

	// Reliability-layer fields, populated only under a fault plan.
	sentAt    vtime.Time    // when this transmission left the sender
	wire      []byte        // framed image (header + checksum + payload)
	relStream faults.Stream // sequence-number stream
	relSeq    uint64        // sequence number within the stream
	attempt   int           // transmission attempt (0 = first)

	// Flow-control piggyback fields (see flowctl.go): the sender's
	// cumulative eager-consumption total toward pkt.dst and the
	// receiver-saturation demote bit. Metadata, not payload: they ride
	// outside the reliability frame (every materialised copy carries
	// them) and are applied idempotently before admission.
	fcGrant  uint64
	fcDemote bool
}

// ProcStats counts per-rank runtime activity.
type ProcStats struct {
	MsgsSent     int64
	BytesSent    int64
	EagerSends   int64
	RndvSends    int64
	MsgsReceived int64
	Unexpected   int64 // receives that found the message already queued

	// Reliability-layer counters (non-zero only under a fault plan).
	Retransmits   int64 // attempts after an ack timeout
	FaultDrops    int64 // transmissions the fabric swallowed
	FaultCorrupts int64 // transmissions injected with a flipped byte
	FaultDups     int64 // transmissions the fabric duplicated
	FaultDelays   int64 // transmissions the fabric delayed
	CorruptDrops  int64 // frames this rank rejected on checksum
	DupDrops      int64 // duplicate frames this rank suppressed
	AcksSent      int64
	AcksReceived  int64
	PeerFailures  int64 // retransmit budgets exhausted (abort, or ErrProcFailed under FT)

	// Failure-detector counters (non-zero only in fault-tolerant
	// worlds). Each peer death drives this rank through one
	// suspect→confirm transition, charged to the virtual clock.
	PeerSuspects int64 // peers this rank's detector moved to suspected
	PeerConfirms int64 // suspected peers confirmed dead
	RevokesSeen  int64 // distinct communicator revocations applied
}

// Proc is one MPI rank: its clock, mailbox, matching queues, and
// injection resource. A Proc is confined to its rank goroutine.
type Proc struct {
	w     *World
	rank  int
	clock *vtime.Clock
	mb    *mailbox

	// nicFree is when the rank's injection resource (NIC / memory
	// port) next becomes idle; successive sends serialize on it.
	nicFree vtime.Time

	// nicEp is the per-endpoint injection fan, non-empty only while a
	// MULTIPLE-level thread group is live: thread tid injects through
	// slot tid % len(nicEp), so concurrent threads stop serializing on
	// one NIC cursor (see thread.go). Folded back into nicFree when
	// the group joins.
	nicEp []vtime.Time

	// Simulated-thread multiplexer state (see thread.go): the live
	// thread group (nil when the rank runs single-threaded), the level
	// InitThread negotiated (0 = never called = SINGLE), and the
	// host-side scheduling counters.
	tg          *threadGroup
	thrLevel    ThreadLevel
	threadStats ThreadStats

	// leaveFn is the cached no-observer collSpan closure: gateLeave
	// bound once per rank so the collective fast path stays
	// allocation-free.
	leaveFn func()

	posted      postedQueue          // posted receives, indexed (see match.go)
	unexp       unexpQueue           // arrived-but-unmatched eager/RTS packets, indexed
	sendPending map[uint64]*Request  // rendezvous sends awaiting CTS
	recvPending map[rndvKey]*Request // rendezvous receives awaiting data
	finPending  map[uint64]*Request  // zero-copy sends awaiting the receiver's copy fence
	nextReq     uint64

	world *Comm
	stats ProcStats

	// windows maps window ids to their per-rank state (see rma.go).
	windows map[int32]*winState

	// rel is the reliability-sublayer state, non-nil exactly when the
	// fabric carries a fault plan (see reliability.go).
	rel *relState

	// flow is the credit-based flow-control state, non-nil exactly when
	// the profile enables it (EagerCredits > 0; see flowctl.go).
	flow *flowState

	// Host-side reuse state (see pool.go): a free list of Request
	// structs for the internal collective paths that fully own their
	// requests, and the rank's aggregated scratch-arena, payload-copy
	// and matcher counters.
	reqFree    []*Request
	arenaStats ArenaStats
	copyStats  CopyStats
	matchStats MatchStats

	// reg is the rank's pin-down registration cache (see regcache.go);
	// rdmaStats counts the placement datapath's host-side writes.
	reg       *regCache
	rdmaStats RDMAStats

	// Fault-tolerance state (see ft.go), live only in FT worlds.
	crash       *faults.Crash        // this rank's scheduled death, if any
	crashed     bool                 // the schedule has fired
	crashHold   int                  // >0 suppresses checkCrash (atomic protocol commits)
	opCount     uint64               // MPI operations entered (crash trigger odometer)
	inflight    int                  // requests issued but not yet consumed by Wait/Test
	failedPeers map[int]vtime.Time   // world rank → virtual time its death was confirmed here
	revokedAt   map[int32]vtime.Time // revoked context id → poison time
}

// rndvKey names a pending rendezvous receive. Request ids are a
// per-rank counter, so the id alone is ambiguous on the receiver:
// two senders whose counters happen to align (symmetric workloads do
// this constantly) would collide in recvPending, completing the wrong
// request with the first DATA and panicking on the second.
type rndvKey struct {
	src int
	id  uint64
}

func newProc(w *World, rank int) *Proc {
	p := &Proc{
		w:           w,
		rank:        rank,
		clock:       vtime.NewClock(),
		mb:          newMailbox(),
		sendPending: map[uint64]*Request{},
		recvPending: map[rndvKey]*Request{},
		finPending:  map[uint64]*Request{},
	}
	p.posted.init(&p.matchStats)
	p.unexp.init(&p.matchStats)
	p.leaveFn = p.gateLeave
	p.reg = newRegCache(p)
	if w.fab.Faults() != nil {
		p.rel = newRelState()
	}
	if w.flowOn {
		p.flow = newFlowState(&w.prof)
	}
	if c, ok := w.fab.CrashOf(rank); ok {
		crash := c
		p.crash = &crash
	}
	p.world = &Comm{
		p:       p,
		group:   identity(w.Size()),
		myRank:  rank,
		ptCtx:   worldPtCtx,
		collCtx: worldCollCtx,
	}
	return p
}

func identity(n int) []int {
	g := make([]int, n)
	for i := range g {
		g[i] = i
	}
	return g
}

// Rank returns this process's world rank.
func (p *Proc) Rank() int { return p.rank }

// Clock returns the rank's virtual clock.
func (p *Proc) Clock() *vtime.Clock { return p.clock }

// CommWorld returns this rank's view of MPI_COMM_WORLD.
func (p *Proc) CommWorld() *Comm { return p.world }

// Stats returns a snapshot of the rank's counters.
func (p *Proc) Stats() ProcStats { return p.stats }

// World returns the job this rank belongs to.
func (p *Proc) World() *World { return p.w }

// channel returns the fabric parameters toward world rank dst.
func (p *Proc) channel(dst int) fabric.Params { return p.w.fab.Channel(p.rank, dst) }

// overheads returns the library software overheads toward dst.
func (p *Proc) sendSoft(dst int) vtime.Duration {
	if p.w.fab.IsIntra(p.rank, dst) {
		return p.w.prof.IntraSendOverhead
	}
	return p.w.prof.InterSendOverhead
}

func (p *Proc) recvSoft(src int) vtime.Duration {
	if p.w.fab.IsIntra(p.rank, src) {
		return p.w.prof.IntraRecvOverhead
	}
	return p.w.prof.InterRecvOverhead
}

// eagerLimit returns the protocol threshold toward dst.
func (p *Proc) eagerLimit(dst int) int {
	ch := p.channel(dst)
	if p.w.fab.IsIntra(p.rank, dst) {
		if p.w.prof.EagerIntra > 0 {
			return p.w.prof.EagerIntra
		}
	} else if p.w.prof.EagerInter > 0 {
		return p.w.prof.EagerInter
	}
	return ch.EagerThreshold
}

// post delivers a packet toward world rank dst: straight into the
// mailbox on a lossless fabric, through the reliability sublayer's
// ack/retransmit protocol under a fault plan. The error is non-nil
// only in fault-tolerant worlds, when the retransmit budget toward dst
// is exhausted (ErrProcFailed); without FT that condition aborts the
// job instead.
func (p *Proc) post(dst int, pkt *packet) error {
	if p.flow != nil {
		// Piggyback the current credit grant toward dst. Payload frames
		// always settle (delivered or the job is dead), so the grant
		// counts as advertised.
		p.fcAttachGrant(dst, pkt, true)
	}
	if p.rel == nil {
		p.postRaw(dst, pkt)
		return nil
	}
	// reliablePost materialises framed copies; the original packet (and
	// its pooled payload, already encoded into the frames) is done.
	err := p.reliablePost(dst, pkt)
	freePacket(pkt)
	return err
}

// postRaw bypasses the reliability layer (acks, aborts, and the
// transmissions reliablePost has already adjudicated). Under the
// phase-stepped engine the packet is buffered in this rank's outbox
// and delivered at the next barrier, in merged (arriveAt, src,
// emitSeq) order; without an engine it goes straight into the
// destination mailbox, the legacy serialized path.
func (p *Proc) postRaw(dst int, pkt *packet) {
	if eng := p.w.eng.Load(); eng != nil {
		eng.emit(p.rank, dst, pkt)
		return
	}
	p.w.procs[dst].mb.push(pkt)
}

// postRawBatch delivers a same-destination burst (e.g. a reliability
// layer's whole retransmission schedule) into dst's mailbox under a
// single lock acquisition, preserving FIFO order.
func (p *Proc) postRawBatch(dst int, pkts []*packet) {
	if eng := p.w.eng.Load(); eng != nil {
		for _, pkt := range pkts {
			eng.emit(p.rank, dst, pkt)
		}
		return
	}
	p.w.procs[dst].mb.pushBatch(pkts)
}

// matches reports whether a posted receive (req) matches a packet.
func matches(req *Request, pkt *packet) bool {
	if req.ctx != pkt.ctx {
		return false
	}
	if req.src != AnySource && req.src != pkt.src {
		return false
	}
	if req.tag != AnyTag && req.tag != pkt.tag {
		return false
	}
	return true
}

// dispatch routes one arrived packet. Under a fault plan, transport
// packets first pass the reliability layer's admission check (checksum
// verification, duplicate suppression, acknowledgement).
func (p *Proc) dispatch(pkt *packet) {
	if p.tg != nil {
		// Every dispatch may satisfy a parked simulated thread's wake
		// condition (request completion, probe match, credit grant —
		// all are mail-driven), so it advances the group's epoch and
		// makes parked threads schedulable again (see thread.go).
		p.tg.epoch++
	}
	if p.flow != nil && pkt.fcGrant > 0 && pkt.src != p.rank {
		// Apply the piggybacked credit grant BEFORE reliability
		// admission: grants are cumulative maxima, so even a frame the
		// checksum or duplicate filter is about to reject carries valid
		// metadata, and applying it twice is a no-op.
		p.fcApplyGrant(pkt)
	}
	if p.rel != nil {
		switch pkt.kind {
		case pktAbort, pktFailNotice, pktRevoke, pktCredit:
			// Control traffic bypasses reliability: aborts, detector
			// verdicts, revocations, and cumulative credit grants (their
			// own retransmission) must get through even when the fabric
			// is on fire.
		case pktAck:
			p.handleAck(pkt)
			freePacket(pkt)
			return
		default:
			if !p.admit(pkt) {
				freePacket(pkt) // checksum/duplicate reject: life ends here
				return
			}
		}
	}
	switch pkt.kind {
	case pktEager, pktRTS:
		if p.w.ft {
			if _, revoked := p.revokedAt[pkt.ctx]; revoked {
				// Late arrival on a poisoned context. Receives on it fail
				// at entry and every posted one was failed by the revoke
				// sweep, so the packet is unmatchable forever — free it
				// rather than queue it. (applyRevoke purges the ones that
				// arrived first; this catches the stragglers.) No metric:
				// whether a packet lands before or after the revoke is
				// host scheduling, not simulation.
				freePacket(pkt)
				return
			}
		}
		if req := p.posted.take(pkt); req != nil {
			p.deliver(req, pkt)
			return
		}
		p.unexp.add(pkt)
		p.noteUnexpGrowth()
	case pktCTS:
		req, ok := p.sendPending[pkt.reqID]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got CTS for unknown request %d", p.rank, pkt.reqID))
		}
		delete(p.sendPending, pkt.reqID)
		p.rndvSendData(req, pkt)
		freePacket(pkt)
	case pktData:
		k := rndvKey{src: pkt.src, id: pkt.reqID}
		req, ok := p.recvPending[k]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got DATA for unknown request %d from rank %d", p.rank, pkt.reqID, pkt.src))
		}
		delete(p.recvPending, k)
		p.completeRndvRecv(req, pkt)
		freePacket(pkt)
	case pktRMA, pktRMAReply:
		st, ok := p.windows[pkt.ctx]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got RMA traffic for unknown window %d", p.rank, pkt.ctx))
		}
		st.incoming = append(st.incoming, pkt)
	case pktFailNotice:
		p.handleFailNotice(pkt)
		freePacket(pkt)
	case pktRevoke:
		p.handleRevoke(pkt)
		freePacket(pkt)
	case pktRndvFin:
		// The receiver has copied a borrowed rendezvous payload out of
		// this rank's buffer; the send may now complete. The fence is a
		// pure host-side ordering event: the request's completion TIME
		// was fixed at injection, identically to the wire-copy path.
		req, ok := p.finPending[pkt.reqID]
		if !ok {
			panic(fmt.Sprintf("nativempi: rank %d got FIN for unknown request %d", p.rank, pkt.reqID))
		}
		delete(p.finPending, pkt.reqID)
		req.done = true
		freePacket(pkt)
	case pktCredit:
		// The grant it carried was applied above; the frame itself is
		// pure metadata.
		freePacket(pkt)
	case pktAbort:
		// Propagates as a panic so even deeply nested blocking calls
		// unwind; World.Run recovers it into this rank's error.
		panic(abortError{origin: pkt.src, reason: string(pkt.data)})
	}
}

// progressOnce makes one unit of progress, blocking until it can:
// dispatch the next packet, or — inside a thread group — let another
// simulated thread run. A nil pop means the baton travelled and came
// back; every caller loops on its own wake condition, so "no packet,
// but siblings ran" is progress too.
func (p *Proc) progressOnce() {
	if pkt := p.popBlocking(); pkt != nil {
		p.dispatch(pkt)
	}
}

// popBlocking dequeues the next packet, parking the rank in the
// phase-stepped engine while its mailbox is empty (the engine's ONLY
// blocking point). Without an engine it falls back to the mailbox's
// condition-variable pop. After an engine abort the final tryPop is
// guaranteed to find the poison packet: abortLocked pushes it to every
// mailbox before waking anyone.
//
// Inside a thread group the empty-mailbox case first hands the baton
// to any schedulable sibling thread and returns nil once it comes
// back — the caller must recheck its wake condition, which sibling
// dispatches may have satisfied. The whole rank blocks in the engine
// only when no simulated thread can progress without new mail, so the
// engine's deadlock accounting keeps seeing one state per rank.
func (p *Proc) popBlocking() *packet {
	for {
		if pkt, ok := p.mb.tryPop(); ok {
			return pkt
		}
		if tg := p.tg; tg != nil && tg.yieldTo(tPopWait) {
			return nil
		}
		eng := p.w.eng.Load()
		if eng == nil {
			return p.mb.pop()
		}
		eng.block(p.rank)
		if p.tg != nil {
			p.threadStats.RankBlocks++
		}
	}
}

// engYield lets spin-polling paths (Test/Iprobe loops that never
// block) cooperate with the phase-stepped engine; a no-op without one.
// Inside a thread group the spin checkpoint first offers the baton to
// a schedulable sibling — the cooperative analogue of the OS
// preempting a polling thread.
func (p *Proc) engYield() {
	if tg := p.tg; tg != nil && tg.yieldTo(tSpinWait) {
		return
	}
	if eng := p.w.eng.Load(); eng != nil {
		eng.yield(p.rank)
	}
}

// poll drains already-arrived packets without blocking.
func (p *Proc) poll() {
	for {
		pkt, ok := p.mb.tryPop()
		if !ok {
			return
		}
		p.dispatch(pkt)
	}
}

// zeroCopyRndv reports whether the rendezvous data phase may borrow
// the sender's buffer instead of copying into a wire buffer. The
// profile switch enables it; a fault plan (frames must be mutable for
// corruption/retransmission) or fault tolerance (failure sweeps may
// orphan the borrow) forces the wire-copy path.
func (p *Proc) zeroCopyRndv() bool {
	return p.w.zeroCopy && p.rel == nil && !p.w.ft
}

// rdmaOK reports whether the RDMA protocol tier is available on this
// rank: enabled in the profile, no fault plan (a remote placement
// cannot be framed, checksummed, or retransmitted), no fault tolerance
// (a failure sweep could orphan a remote key mid-placement). The
// PROTOCOL — registration charges, completion arithmetic — is what
// this gates; the host datapath has its own switch (w.rdmaPlace).
func (p *Proc) rdmaOK() bool {
	return p.w.rdmaProto && p.rel == nil && !p.w.ft
}

// rdmaRndv decides the protocol tier of one rendezvous send: RDMA when
// the payload crosses the threshold, or — the adaptive switch keyed on
// registration-cache state — when the sender's buffer is already
// registered, making the RDMA path strictly cheaper than a DATA
// landing. The covered peek reads deterministic cache state only.
func (p *Proc) rdmaRndv(n int, buf []byte) bool {
	if !p.rdmaOK() {
		return false
	}
	return n >= p.w.prof.RDMAThreshold || p.reg.covered(buf)
}

// getReq returns a zeroed Request from the rank-confined free list.
func (p *Proc) getReq() *Request {
	if n := len(p.reqFree); n > 0 {
		r := p.reqFree[n-1]
		p.reqFree[n-1] = nil
		p.reqFree = p.reqFree[:n-1]
		*r = Request{p: p}
		return r
	}
	return &Request{p: p}
}

// putReq parks a completed Request for reuse. Only callers that fully
// own a request may release it: the internal collective/engine paths
// that issued it, waited it to completion, and hold the last
// reference. User-facing requests are never recycled.
func (p *Proc) putReq(r *Request) {
	if r == nil || !r.done {
		return
	}
	p.reqFree = append(p.reqFree, r)
}

// deliver completes the receive req with an eager payload or, for an
// RTS, starts the rendezvous reply. The packet's life ends here: both
// the eager payload (copied out) and the RTS metadata (answered with a
// CTS) are consumed, so deliver frees it on behalf of every caller.
func (p *Proc) deliver(req *Request, pkt *packet) {
	ch := p.channel(pkt.src)
	switch pkt.kind {
	case pktEager:
		n := len(pkt.data)
		if n > req.recvCap() {
			req.err = fmt.Errorf("%w: %d-byte message into %d-byte buffer", ErrTruncated, n, req.recvCap())
			n = req.recvCap()
		}
		if req.recvVec != nil {
			// Strided landing: the CPU scatters the contiguous eager
			// image into the runs, paying the per-run unpack cost below.
			req.recvVec.scatterFrom(pkt.data[:n])
		} else {
			copy(req.buf[:n], pkt.data[:n])
		}
		p.copyStats.count(n)
		complete := vtime.Max(req.postedAt, pkt.arriveAt).
			Add(ch.RecvOverhead + p.recvSoft(pkt.src) + req.extraRecvCost + p.ddtUnpackCost(req))
		// A message that hit the wire before the receive was posted
		// sat in a bounce buffer and pays one extra copy now. The
		// comparison uses virtual times only, keeping runs
		// deterministic under host scheduling.
		if pkt.arriveAt < req.postedAt {
			complete = complete.Add(vtime.PerByte(n, ch.Bandwidth))
			p.stats.Unexpected++
		}
		req.status = Status{Source: pkt.src, Tag: pkt.tag, Bytes: len(pkt.data)}
		req.completeAt = complete
		req.done = true
		p.stats.MsgsReceived++
		p.recordRecv(pkt.src, len(pkt.data), req.postedAt, complete)
		p.fcConsumed(pkt.src, complete)
		freePacket(pkt)
	case pktRTS:
		if pkt.nbytes > req.recvCap() {
			req.err = fmt.Errorf("%w: %d-byte rendezvous into %d-byte buffer", ErrTruncated, pkt.nbytes, req.recvCap())
		}
		readyAt := vtime.Max(req.postedAt, pkt.arriveAt)
		req.rndvFrom = pkt.src
		req.rndvTag = pkt.tag
		p.recvPending[rndvKey{src: pkt.src, id: pkt.reqID}] = req
		cts := getPacket()
		cts.kind = pktCTS
		cts.src = p.rank
		cts.dst = pkt.src
		cts.ctx = pkt.ctx
		cts.reqID = pkt.reqID
		if pkt.rdma {
			// RDMA-mode rendezvous: the CTS carries the remote key, so
			// the landing buffer must be registered before it can be
			// issued — the pin-down cost (zero on a cache hit) delays
			// the CTS, never the receiver's other work. When the
			// placement datapath is on, the CTS also carries the landing
			// buffer itself for the sender's direct write; host movement
			// only, every virtual quantity is placement-independent. A
			// strided landing registers its whole spanning region (the
			// NIC pins pages, not runs) and travels as the iovec.
			n := pkt.nbytes
			if n > req.recvCap() {
				n = req.recvCap()
			}
			if req.recvVec != nil {
				readyAt = readyAt.Add(p.reg.acquire(req.recvVec.Full, readyAt))
				cts.rdma = true
				if p.w.rdmaPlace {
					cts.vec = req.recvVec
					cts.borrowed = true
				}
			} else {
				readyAt = readyAt.Add(p.reg.acquire(req.buf[:n], readyAt))
				cts.rdma = true
				if p.w.rdmaPlace {
					cts.data = req.buf[:n]
					cts.borrowed = true
				}
			}
		}
		cts.sentAt = readyAt
		cts.arriveAt = readyAt.Add(ch.Latency)
		src, reqID := pkt.src, pkt.reqID
		freePacket(pkt)
		if err := p.post(src, cts); err != nil {
			// The rendezvous partner is unreachable: the receive fails
			// in place instead of waiting for data that will never come.
			delete(p.recvPending, rndvKey{src: src, id: reqID})
			p.failReq(req, readyAt, err)
		}
	default:
		panic("nativempi: deliver on control packet")
	}
}

// rndvSendData runs the data phase after a CTS: inject the payload,
// complete the send request when the injection resource is done.
func (p *Proc) rndvSendData(req *Request, cts *packet) {
	ch := p.channel(req.dst)
	// The data phase is driven by the CTS arrival and the injection
	// resource, not by when this rank's CPU happened to poll the
	// mailbox: rendezvous transfers are RDMA-offloaded, and using
	// clock.Now() here would let host scheduling leak into virtual
	// time (the CTS is dispatched at whichever poll point it rides
	// in on). The injection endpoint was fixed when the send was
	// issued (req.ep), not re-derived here: whichever thread's poll
	// the CTS rides in on, the charge lands on the issuing thread's
	// endpoint.
	nic := p.nicSlot(req.ep)
	start := vtime.Max(cts.arriveAt, *nic)
	start = start.Add(ch.RndvHandshake)
	n := len(req.sendBuf)
	if req.sendVec != nil {
		n = req.sendVec.N
	}
	if cts.rdma {
		// RDMA mode: the NIC reads the source buffer directly, so it
		// too must be pinned — same cache, same amortization as the
		// receiver's side. A strided source pins its spanning region.
		if req.sendVec != nil {
			start = start.Add(p.reg.acquire(req.sendVec.Full, start))
		} else {
			start = start.Add(p.reg.acquire(req.sendBuf, start))
		}
	}
	// Host datapath selection. On the RDMA placement path the sender
	// performs the transfer's only memcpy — the remote write — straight
	// into the receiver's registered landing buffer (carried by the
	// CTS), and the DATA packet degenerates to a payload-less
	// completion notification. The write is host-safe: the buffer
	// reference travelled receiver→sender through the mailbox, and the
	// receiver only reads it after popping the completion packet, so
	// both directions carry a happens-before edge. Otherwise the
	// zero-copy borrow or the framed wire copy runs exactly as before.
	// Non-contiguous endpoints add a layout dimension: gather-direct
	// (w.ddtDirect) borrows the iovec outright or streams runs straight
	// into the strided landing; off, the payload is packed through a
	// wire image first — the framed fallback. Every virtual quantity
	// below — start, injection, arrival, completion — is computed
	// identically on all paths.
	place := cts.rdma && (len(cts.data) > 0 || cts.vec != nil)
	zc := !place && p.zeroCopyRndv()
	borrow := false
	var data []byte
	var vec *IOVec
	switch {
	case place:
		p.placeRndv(cts, req, n)
	case zc && req.sendVec == nil:
		data = req.sendBuf
		borrow = true
		p.copyStats.elide(n)
	case zc && p.w.ddtDirect:
		vec = req.sendVec
		borrow = true
		p.copyStats.elide(n)
	default:
		data = getWire(n)
		if req.sendVec != nil {
			req.sendVec.gatherInto(data)
		} else {
			copy(data, req.sendBuf)
		}
		p.copyStats.count(n)
	}
	// The send completes when the first injection clears the NIC;
	// reliablePost may keep the NIC busy later for retransmissions,
	// but those never block the sender's CPU.
	injected := start.Add(ch.SerializeTime(n))
	*nic = injected
	pkt := getPacket()
	pkt.kind = pktData
	pkt.src = p.rank
	pkt.dst = req.dst
	pkt.tag = req.tag
	pkt.ctx = req.ctx
	pkt.data = data
	pkt.vec = vec
	pkt.ownsData = !borrow && data != nil
	pkt.borrowed = borrow
	pkt.rdma = cts.rdma
	pkt.nbytes = n
	pkt.reqID = req.id
	pkt.sentAt = start
	pkt.arriveAt = start.Add(ch.TransferTime(n))
	err := p.post(req.dst, pkt)
	req.completeAt = injected
	req.err = err
	if borrow {
		// Completion TIME is fixed now; completion ITSELF waits for the
		// receiver's fence so the sender cannot reuse the buffer while
		// the borrow is outstanding (a host-correctness gate only —
		// Wait/Test still report completeAt = injected).
		p.finPending[req.id] = req
	} else {
		req.done = true
	}
	p.recordSend(req.dst, n, start, req.completeAt)
}

// placeRndv performs the RDMA placement write for one rendezvous with
// at least one non-contiguous (or switched-off) endpoint. Gather-direct
// on, the sender streams source runs straight into the landing runs —
// one host memcpy, the intermediate pack image elided. Off, it stages
// through a packed wire image: gather, place, free — two memcpys, the
// honest fallback cost. Contiguous-to-contiguous placements never reach
// here (rndvSendData keeps the original single-copy path for them).
func (p *Proc) placeRndv(cts *packet, req *Request, n int) {
	var placed int
	direct := p.w.ddtDirect
	if req.sendVec == nil && cts.vec == nil {
		// Both ends contiguous: the classic placement write.
		placed = copy(cts.data, req.sendBuf)
		p.copyStats.count(placed)
	} else if direct {
		switch {
		case req.sendVec != nil && cts.vec != nil:
			placed = vecCopy(cts.vec, req.sendVec)
		case req.sendVec != nil:
			placed = req.sendVec.gatherInto(cts.data)
		default:
			placed = cts.vec.scatterFrom(req.sendBuf[:n])
		}
		p.copyStats.count(placed)
		p.copyStats.elide(placed) // the staging copy the fallback would pay
	} else {
		tmp := getWire(n)
		if req.sendVec != nil {
			req.sendVec.gatherInto(tmp)
		} else {
			copy(tmp, req.sendBuf[:n])
		}
		p.copyStats.count(n)
		if cts.vec != nil {
			placed = cts.vec.scatterFrom(tmp)
		} else {
			placed = copy(cts.data, tmp)
		}
		p.copyStats.count(placed)
		putWire(tmp)
	}
	p.rdmaStats.Writes++
	p.rdmaStats.BytesPlaced += int64(placed)
}

// ddtPackCost is the eager tier's CPU charge for packing (sender) or
// unpacking (receiver) a non-contiguous payload: DDTPackRun per run
// boundary beyond the first. Zero for contiguous messages, and
// identical on both gather-direct settings — the charge is protocol
// level, the switch is host level.
func (p *Proc) ddtPackCost(runs int) vtime.Duration {
	if runs <= 1 {
		return 0
	}
	return p.w.prof.DDTPackRun * vtime.Duration(runs-1)
}

// ddtUnpackCost is ddtPackCost for a receive's landing layout.
func (p *Proc) ddtUnpackCost(req *Request) vtime.Duration {
	if req.recvVec == nil {
		return 0
	}
	return p.ddtPackCost(len(req.recvVec.Runs))
}

// completeRndvRecv lands the data phase in the user buffer.
func (p *Proc) completeRndvRecv(req *Request, pkt *packet) {
	ch := p.channel(pkt.src)
	total := len(pkt.data)
	if pkt.vec != nil {
		total = pkt.vec.N
	}
	if pkt.rdma && pkt.data == nil && pkt.vec == nil {
		// Placement write: the payload is already in the user buffer —
		// this packet is only the completion notification. nbytes
		// carries the transfer size for the status.
		total = pkt.nbytes
	}
	n := total
	if n > req.recvCap() {
		n = req.recvCap() // error already recorded at RTS time
	}
	switch {
	case pkt.vec != nil && req.recvVec != nil:
		// Gather-direct borrow into a strided landing: the receiver
		// streams the sender's runs straight into its own — the
		// transfer's only host copy, on either side.
		vecCopy(req.recvVec, pkt.vec)
		p.copyStats.count(n)
	case pkt.vec != nil:
		pkt.vec.gatherInto(req.buf[:n])
		p.copyStats.count(n)
	case pkt.data != nil && req.recvVec != nil:
		req.recvVec.scatterFrom(pkt.data[:n])
		p.copyStats.count(n)
	case pkt.data != nil:
		copy(req.buf[:n], pkt.data[:n])
		p.copyStats.count(n)
	}
	req.status = Status{Source: pkt.src, Tag: pkt.tag, Bytes: total}
	if pkt.rdma {
		// The one-sided placement bypasses the receiver's protocol
		// stack: completion costs the NIC's completion-event handling
		// only, not RecvOverhead plus the library's software receive
		// path — the large-message win the RDMA channel exists for.
		req.completeAt = pkt.arriveAt.Add(ch.RDMAFinOverhead + req.extraRecvCost)
	} else {
		req.completeAt = pkt.arriveAt.Add(ch.RecvOverhead + p.recvSoft(pkt.src) + req.extraRecvCost)
	}
	req.done = true
	p.stats.MsgsReceived++
	p.recordRecv(pkt.src, total, req.postedAt, req.completeAt)
	if pkt.borrowed {
		// Release the sender's buffer: the copy-out above was the last
		// read of the borrow. The fence is raw host traffic — borrowed
		// payloads only exist on lossless fabrics — and carries no
		// virtual stamps anyone reads.
		fin := getPacket()
		fin.kind = pktRndvFin
		fin.src = p.rank
		fin.dst = pkt.src
		fin.reqID = pkt.reqID
		p.postRaw(pkt.src, fin)
	}
}
