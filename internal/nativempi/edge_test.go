package nativempi

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func TestProbeRendezvousReportsFullSize(t *testing.T) {
	// Probing an RTS must report the advertised payload size even
	// though no data has moved yet.
	w := testWorld(2, 1)
	const n = 1 << 20
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if pr.Rank() == 0 {
			return c.Send(pattern(n, 1), 1, 5)
		}
		st, err := c.Probe(0, 5)
		if err != nil {
			return err
		}
		if st.Bytes != n {
			return fmt.Errorf("probe of rendezvous reported %d bytes, want %d", st.Bytes, n)
		}
		buf := make([]byte, n)
		if _, err := c.Recv(buf, 0, 5); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(n, 1)) {
			return fmt.Errorf("payload corrupted after probe")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRendezvousTruncation(t *testing.T) {
	// A rendezvous message into a short buffer reports MPI_ERR_TRUNCATE
	// and still completes the protocol (no hang).
	w := testWorld(2, 1)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if pr.Rank() == 0 {
			return c.Send(make([]byte, 1<<20), 1, 0)
		}
		buf := make([]byte, 1024)
		_, err := c.Recv(buf, 0, 0)
		if !errors.Is(err, ErrTruncated) {
			return fmt.Errorf("rendezvous truncation: err=%v, want ErrTruncated", err)
		}
		return nil
	})
	// Rank 1 returns nil (it asserted the truncation); the job must
	// not report an error.
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnyTagMatchesFirstArrival(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if pr.Rank() == 0 {
			if err := c.Send([]byte{1}, 1, 42); err != nil {
				return err
			}
			return c.Send([]byte{2}, 1, 43)
		}
		buf := make([]byte, 1)
		st, err := c.Recv(buf, 0, AnyTag)
		if err != nil {
			return err
		}
		if st.Tag != 42 || buf[0] != 1 {
			return fmt.Errorf("AnyTag matched tag %d value %d; FIFO requires 42/1", st.Tag, buf[0])
		}
		st, err = c.Recv(buf, 0, AnyTag)
		if err != nil {
			return err
		}
		if st.Tag != 43 || buf[0] != 2 {
			return fmt.Errorf("second AnyTag matched %d/%d", st.Tag, buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestPollsWithoutBlocking(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if pr.Rank() == 0 {
			// Delay (in virtual terms nothing; in real terms let rank 1
			// poll a bit first), then send.
			return c.Send([]byte{9}, 1, 0)
		}
		buf := make([]byte, 1)
		req, err := c.Irecv(buf, 0, 0)
		if err != nil {
			return err
		}
		for {
			st, done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				if st.Bytes != 1 || buf[0] != 9 {
					return fmt.Errorf("Test completion wrong: %+v %d", st, buf[0])
				}
				return nil
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendToSelf(t *testing.T) {
	// Eager self-send: post the receive first (nonblocking), then
	// send; both must complete.
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() != 0 {
			return nil
		}
		c := pr.CommWorld()
		in := make([]byte, 16)
		rreq, err := c.Irecv(in, 0, 7)
		if err != nil {
			return err
		}
		if err := c.Send(pattern(16, 3), 0, 7); err != nil {
			return err
		}
		if _, err := rreq.Wait(); err != nil {
			return err
		}
		if !bytes.Equal(in, pattern(16, 3)) {
			return fmt.Errorf("self-send payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxClockReflectsSlowestRank(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() == 1 {
			pr.Clock().Advance(1 << 30)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MaxClock() < 1<<30 {
		t.Fatalf("MaxClock = %v", w.MaxClock())
	}
}

func TestWorldAccessors(t *testing.T) {
	w := testWorld(2, 3)
	if w.Size() != 6 || w.Topology().Nodes() != 2 || w.Fabric() == nil {
		t.Fatal("world accessors wrong")
	}
	if w.Profile().Name == "" {
		t.Fatal("profile not normalized")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Proc out of range did not panic")
		}
	}()
	w.Proc(9)
}

func TestStatusCountErrors(t *testing.T) {
	st := Status{Bytes: 10}
	if _, err := st.Count(kindInt()); err == nil {
		t.Fatal("10 bytes of int accepted")
	}
}
