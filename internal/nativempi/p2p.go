package nativempi

import (
	"fmt"

	"mv2j/internal/vtime"
)

// Comm is one rank's view of a communicator: the member group (as
// world ranks), this rank's position in it, and the pair of context
// ids separating its point-to-point and collective traffic.
type Comm struct {
	p       *Proc
	group   []int
	myRank  int
	ptCtx   int32
	collCtx int32
	collSeq int           // rolling tag for collective operations
	ftSeq   int           // rolling agreement counter for recovery operations (ft.go)
	scr     *scratchArena // lazily created scratch arena (pool.go)
	nodesML [][]int       // memoized planNodeMembers (comm membership is immutable)
}

// Rank returns the calling process's rank within the communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.group) }

// Proc returns the owning process.
func (c *Comm) Proc() *Proc { return c.p }

// Group returns a copy of the member list as world ranks, in
// communicator-rank order.
func (c *Comm) Group() []int {
	g := make([]int, len(c.group))
	copy(g, c.group)
	return g
}

// WorldRank translates a communicator rank to a world rank.
func (c *Comm) WorldRank(rank int) int {
	if rank < 0 || rank >= len(c.group) {
		panic(fmt.Sprintf("nativempi: comm rank %d out of range [0,%d)", rank, len(c.group)))
	}
	return c.group[rank]
}

// commRankOfWorld maps a world rank back into this communicator
// (linear scan; groups are small and this is off the hot path).
func (c *Comm) commRankOfWorld(world int) int {
	for i, w := range c.group {
		if w == world {
			return i
		}
	}
	return -1
}

func (c *Comm) checkRank(rank int) error {
	if rank < 0 || rank >= len(c.group) {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrRank, rank, len(c.group))
	}
	return nil
}

func (c *Comm) checkSendTag(tag int) error {
	if tag < 0 {
		return fmt.Errorf("%w: send tag %d must be non-negative", ErrTag, tag)
	}
	return nil
}

// Request is a non-blocking operation handle (MPI_Request).
type Request struct {
	p          *Proc
	done       bool
	completeAt vtime.Time
	status     Status
	err        error

	// receive state. recvVec, when non-nil, is the strided landing
	// layout of a derived-datatype receive; buf is nil then and the
	// payload scatters into the runs.
	buf           []byte
	recvVec       *IOVec
	src           int // world rank or AnySource
	tag           int
	ctx           int32
	postedAt      vtime.Time
	extraRecvCost vtime.Duration
	rndvFrom      int
	rndvTag       int

	// rendezvous send state. sendVec, when non-nil, is the strided
	// source layout of a derived-datatype send; sendBuf is nil then.
	id      uint64
	sendBuf []byte
	sendVec *IOVec
	dst     int // world rank
	ep      int // injection endpoint fixed at issue time (-1 = rank's shared NIC)

	// comm, when set, translates the status source from world rank to
	// communicator rank.
	comm *Comm
	// waited records that a Wait consumed this request (used by
	// Waitsome to report each completion exactly once).
	waited bool
}

// recvCap returns the receive's landing capacity in bytes, whatever
// its layout.
func (r *Request) recvCap() int {
	if r.recvVec != nil {
		return r.recvVec.N
	}
	return len(r.buf)
}

// sendOpts parameterise internal sends (collective traffic uses the
// collective context and pays the profile's per-message collective
// overhead; vec carries a non-contiguous payload layout).
type sendOpts struct {
	ctx  int32
	coll bool
	vec  *IOVec
}

// isendOn injects a message toward world rank wdst.
func (p *Proc) isendOn(buf []byte, wdst, tag int, o sendOpts) *Request {
	p.checkCrash()
	p.inflight++
	sendStart := p.clock.Now()
	ch := p.channel(wdst)
	soft := p.sendSoft(wdst)
	if o.coll {
		soft += p.w.prof.CollMsgOverhead
	}
	p.clock.Advance(soft + ch.SendOverhead)
	n := len(buf)
	if o.vec != nil {
		n = o.vec.N
	}
	p.stats.MsgsSent++
	p.stats.BytesSent += int64(n)

	if n <= p.eagerLimit(wdst) && p.fcEagerOK(wdst) {
		// Eager: the CPU copies the payload into a wire buffer; the
		// send completes locally as soon as the copy is injected.
		// Deliberately NO dead-peer or revocation check here: like an
		// MPI buffered send, an eager send to a dead rank completes
		// locally and the payload evaporates. Failing it would make
		// control flow depend on when this rank's knowledge arrived —
		// a host-scheduling race the buffered semantics avoid.
		// Under flow control the injection first waits for eager credit
		// toward wdst — the receiver-not-ready park (flowctl.go) that
		// bounds how far a flood can run ahead of the receiver.
		p.stats.EagerSends++
		p.fcWaitCredit(wdst)
		p.fcChargeSend(wdst)
		if o.vec != nil {
			// The eager tier always ships a contiguous wire image, so a
			// strided payload pays the CPU pack cost per run boundary
			// before injection — on both gather-direct settings alike.
			p.clock.Advance(p.ddtPackCost(len(o.vec.Runs)))
		}
		// Under a MULTIPLE-level thread group the injection lands on the
		// calling thread's endpoint slot, so concurrent threads stop
		// serializing on one NIC cursor (see thread.go).
		nic := p.nicSlot(p.curEndpoint())
		start := vtime.Max(p.clock.Now(), *nic)
		*nic = start.Add(ch.SerializeTime(n))
		p.clock.AdvanceTo(*nic)
		data := getWire(n)
		if o.vec != nil {
			o.vec.gatherInto(data)
		} else {
			copy(data, buf)
		}
		p.copyStats.count(n)
		pkt := getPacket()
		pkt.kind = pktEager
		pkt.src = p.rank
		pkt.dst = wdst
		pkt.tag = tag
		pkt.ctx = o.ctx
		pkt.data = data
		pkt.ownsData = true
		pkt.nbytes = n
		pkt.sentAt = start
		pkt.arriveAt = start.Add(ch.TransferTime(n))
		err := p.post(wdst, pkt)
		p.recordSend(wdst, n, sendStart, p.clock.Now())
		req := p.getReq()
		req.done = true
		req.completeAt = p.clock.Now()
		req.status = Status{Source: wdst, Tag: tag, Bytes: n}
		req.err = err
		return req
	}

	// Rendezvous: advertise with an RTS; the payload moves (and the
	// request completes) when the CTS comes back. A rendezvous toward a
	// confirmed-dead peer or on a revoked context fails at entry: no
	// CTS is coming, and the failure time the pending request would
	// reach via the notice is the same deterministic instant.
	p.stats.RndvSends++
	if req, failed := p.entryCheckSend(wdst, tag, o.ctx); failed {
		return req
	}
	p.nextReq++
	req := p.getReq()
	req.id = p.nextReq
	req.sendBuf = buf
	req.sendVec = o.vec
	req.dst = wdst
	req.ep = p.curEndpoint()
	req.tag = tag
	req.ctx = o.ctx
	req.postedAt = p.clock.Now()
	p.sendPending[req.id] = req
	rts := getPacket()
	rts.kind = pktRTS
	rts.src = p.rank
	rts.dst = wdst
	rts.tag = tag
	rts.ctx = o.ctx
	rts.nbytes = n
	// Protocol tier: an RTS above the RDMA threshold — or from a
	// buffer whose registration is still warm in the pin-down cache —
	// negotiates a remote placement instead of a DATA landing. A
	// strided source keys the covered peek on its spanning region,
	// which is what the cache pins.
	rdmabuf := buf
	if o.vec != nil {
		rdmabuf = o.vec.Full
	}
	rts.rdma = p.rdmaRndv(n, rdmabuf)
	rts.reqID = req.id
	rts.sentAt = p.clock.Now()
	rts.arriveAt = p.clock.Now().Add(ch.Latency)
	if err := p.post(wdst, rts); err != nil {
		delete(p.sendPending, req.id)
		p.failReq(req, p.clock.Now(), err)
	}
	return req
}

// irecvOn posts a receive for (wsrc, tag) on a context. wsrc may be
// AnySource.
func (p *Proc) irecvOn(buf []byte, wsrc, tag int, o sendOpts) *Request {
	p.checkCrash()
	p.inflight++
	req := p.getReq()
	req.buf = buf
	req.recvVec = o.vec
	req.src = wsrc
	req.tag = tag
	req.ctx = o.ctx
	req.postedAt = p.clock.Now()
	if o.coll {
		req.extraRecvCost = p.w.prof.CollMsgOverhead
	}
	// Drain arrived traffic, then look for an already-queued match.
	// The mailbox's FIFO guarantee means a dead peer's pre-death sends
	// are always dispatched before its failure notice, so the
	// already-arrived match (if any) wins over the failure check below.
	p.poll()
	if pkt := p.unexp.take(req); pkt != nil {
		p.deliver(req, pkt)
		return req
	}
	if p.entryCheckRecv(req) {
		return req
	}
	p.posted.add(req)
	return req
}

// Isend starts a non-blocking standard-mode send of buf to dst.
// The buffer must not be modified until the request completes.
func (c *Comm) Isend(buf []byte, dst, tag int) (*Request, error) {
	if err := c.checkRank(dst); err != nil {
		return nil, err
	}
	if err := c.checkSendTag(tag); err != nil {
		return nil, err
	}
	c.p.gateEnter()
	req := c.p.isendOn(buf, c.group[dst], tag, sendOpts{ctx: c.ptCtx})
	req.comm = c
	c.p.gateLeave()
	return req, nil
}

// Irecv starts a non-blocking receive into buf from src (AnySource
// allowed) with tag (AnyTag allowed).
func (c *Comm) Irecv(buf []byte, src, tag int) (*Request, error) {
	wsrc := AnySource
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return nil, err
		}
		wsrc = c.group[src]
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("%w: recv tag %d", ErrTag, tag)
	}
	c.p.gateEnter()
	req := c.p.irecvOn(buf, wsrc, tag, sendOpts{ctx: c.ptCtx})
	req.comm = c
	c.p.gateLeave()
	return req, nil
}

// IsendVec starts a non-blocking send of a non-contiguous payload
// described by vec — the derived-datatype datapath. The runs (and the
// spanning region they alias) must stay unmodified until the request
// completes, exactly like an Isend buffer.
func (c *Comm) IsendVec(vec *IOVec, dst, tag int) (*Request, error) {
	if vec == nil || len(vec.Runs) == 0 {
		return nil, fmt.Errorf("%w: nil or empty iovec send", ErrRequest)
	}
	if err := c.checkRank(dst); err != nil {
		return nil, err
	}
	if err := c.checkSendTag(tag); err != nil {
		return nil, err
	}
	c.p.gateEnter()
	req := c.p.isendOn(nil, c.group[dst], tag, sendOpts{ctx: c.ptCtx, vec: vec})
	req.comm = c
	c.p.gateLeave()
	return req, nil
}

// IrecvVec starts a non-blocking receive whose landing layout is the
// given iovec: the payload scatters into the runs as it lands.
func (c *Comm) IrecvVec(vec *IOVec, src, tag int) (*Request, error) {
	if vec == nil || len(vec.Runs) == 0 {
		return nil, fmt.Errorf("%w: nil or empty iovec receive", ErrRequest)
	}
	wsrc := AnySource
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return nil, err
		}
		wsrc = c.group[src]
	}
	if tag < 0 && tag != AnyTag {
		return nil, fmt.Errorf("%w: recv tag %d", ErrTag, tag)
	}
	c.p.gateEnter()
	req := c.p.irecvOn(nil, wsrc, tag, sendOpts{ctx: c.ptCtx, vec: vec})
	req.comm = c
	c.p.gateLeave()
	return req, nil
}

// SendVec is the blocking form of IsendVec.
func (c *Comm) SendVec(vec *IOVec, dst, tag int) error {
	req, err := c.IsendVec(vec, dst, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// RecvVec is the blocking form of IrecvVec.
func (c *Comm) RecvVec(vec *IOVec, src, tag int) (Status, error) {
	req, err := c.IrecvVec(vec, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Send is the blocking standard-mode send.
func (c *Comm) Send(buf []byte, dst, tag int) error {
	req, err := c.Isend(buf, dst, tag)
	if err != nil {
		return err
	}
	_, err = req.Wait()
	return err
}

// Recv is the blocking receive. It returns the completion status
// (with the source expressed as a communicator rank).
func (c *Comm) Recv(buf []byte, src, tag int) (Status, error) {
	req, err := c.Irecv(buf, src, tag)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// Sendrecv runs a send and a receive concurrently — the classic
// exchange primitive that cannot deadlock where paired blocking calls
// would.
func (c *Comm) Sendrecv(sendBuf []byte, dst, sendTag int, recvBuf []byte, src, recvTag int) (Status, error) {
	rreq, err := c.Irecv(recvBuf, src, recvTag)
	if err != nil {
		return Status{}, err
	}
	sreq, err := c.Isend(sendBuf, dst, sendTag)
	if err != nil {
		return Status{}, err
	}
	if _, err := sreq.Wait(); err != nil {
		return Status{}, err
	}
	return rreq.Wait()
}

// Probe blocks until a message matching (src, tag) is available and
// returns its status without receiving it.
func (c *Comm) Probe(src, tag int) (Status, error) {
	c.p.gateEnter()
	defer c.p.gateLeave()
	for {
		st, ok, err := c.Iprobe(src, tag)
		if err != nil || ok {
			return st, err
		}
		c.p.progressOnce()
	}
}

// Iprobe polls for a matching message.
func (c *Comm) Iprobe(src, tag int) (Status, bool, error) {
	wsrc := AnySource
	if src != AnySource {
		if err := c.checkRank(src); err != nil {
			return Status{}, false, err
		}
		wsrc = c.group[src]
	}
	c.p.gateEnter()
	defer c.p.gateLeave()
	c.p.poll()
	probe := &Request{src: wsrc, tag: tag, ctx: c.ptCtx}
	if pkt := c.p.unexp.peek(probe); pkt != nil {
		n := len(pkt.data)
		if pkt.kind == pktRTS {
			n = pkt.nbytes
		}
		src := c.commRankOfWorld(pkt.src)
		return Status{Source: src, Tag: pkt.tag, Bytes: n}, true, nil
	}
	c.p.engYield() // probe spins must cooperate with the phase engine
	return Status{}, false, nil
}

// Wait blocks until the request completes, advances the rank's clock
// to the completion time, and returns the status. Waiting on an
// already-waited request returns the recorded result (like
// MPI_REQUEST_NULL being a no-op).
func (r *Request) Wait() (Status, error) {
	if r == nil {
		return Status{}, ErrRequest
	}
	p := r.p
	p.gateEnter()
	p.poll()
	for !r.done {
		p.progressOnce()
	}
	p.clock.AdvanceTo(r.completeAt)
	r.consume()
	p.gateLeave()
	return r.commStatus(), r.err
}

// consume marks the request as handed back to the program, balancing
// the inflight count taken at issue time. The count is pure program
// order — issue and consumption both happen on the rank's own call
// path — which is what lets checkCrash use it as a quiescence gate
// without depending on host-scheduling-sensitive engine state.
func (r *Request) consume() {
	if !r.waited {
		r.waited = true
		r.p.inflight--
	}
}

// Test polls for completion without blocking. A successful Test
// consumes the request, exactly as MPI_Test frees it on completion.
func (r *Request) Test() (Status, bool, error) {
	if r == nil {
		return Status{}, false, ErrRequest
	}
	r.p.gateEnter()
	defer r.p.gateLeave()
	r.p.poll()
	if !r.done {
		// A pure Test spin never blocks, so under the phase-stepped
		// engine it must yield or its peers' packets would never flush.
		r.p.engYield()
		return Status{}, false, nil
	}
	r.p.clock.AdvanceTo(r.completeAt)
	r.consume()
	return r.commStatus(), true, r.err
}

// Done reports whether the request has completed (without progressing
// the engine).
func (r *Request) Done() bool { return r.done }

// commStatus returns the status with the source translated from the
// internal world rank to the caller's communicator rank.
func (r *Request) commStatus() Status {
	st := r.status
	if r.comm != nil && st.Source >= 0 {
		if cr := r.comm.commRankOfWorld(st.Source); cr >= 0 {
			st.Source = cr
		}
	}
	return st
}

// Waitall completes every request, returning the first error.
func Waitall(reqs []*Request) error {
	var first error
	for _, r := range reqs {
		if r == nil {
			continue
		}
		if _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
