package nativempi

// Request-set completion operations (MPI_Waitany / MPI_Testall /
// MPI_Waitsome). Completed or nil entries follow the MPI convention of
// being skipped (inactive requests).

// Waitany blocks until at least one of the requests completes and
// returns its index and status. Nil or already-completed requests
// count as immediately ready (MPI returns any such index first). With
// no active requests it returns index -1, as MPI_UNDEFINED.
func Waitany(reqs []*Request) (int, Status, error) {
	var p *Proc
	for _, r := range reqs {
		if r != nil && !r.waited {
			p = r.p
			break
		}
	}
	if p == nil {
		return -1, Status{}, nil
	}
	p.poll()
	for {
		for i, r := range reqs {
			if r == nil || r.waited {
				continue // inactive: consumed by an earlier Wait
			}
			if r.done {
				st, err := r.Wait() // completes bookkeeping; no blocking
				return i, st, err
			}
		}
		p.progressOnce()
	}
}

// Testall reports whether every request has completed; when it returns
// true all requests are finalized.
func Testall(reqs []*Request) (bool, error) {
	var p *Proc
	for _, r := range reqs {
		if r != nil {
			p = r.p
			break
		}
	}
	if p == nil {
		return true, nil
	}
	p.poll()
	for _, r := range reqs {
		if r != nil && !r.done {
			p.engYield() // Testall spins must cooperate with the phase engine
			return false, nil
		}
	}
	return true, Waitall(reqs)
}

// Waitsome blocks until at least one request completes, then finalizes
// and returns the indices of ALL currently-complete requests. Returns
// nil indices when no active requests remain (MPI_UNDEFINED).
func Waitsome(reqs []*Request) ([]int, error) {
	var p *Proc
	for _, r := range reqs {
		if r != nil && !r.completedAndWaited() {
			p = r.p
			break
		}
	}
	if p == nil {
		return nil, nil
	}
	p.poll()
	var idx []int
	var first error
	collect := func() {
		for i, r := range reqs {
			if r == nil || r.waitedFlag() {
				continue
			}
			if r.done {
				if _, err := r.Wait(); err != nil && first == nil {
					first = err
				}
				idx = append(idx, i)
			}
		}
	}
	collect()
	for len(idx) == 0 {
		p.progressOnce()
		collect()
	}
	return idx, first
}

// completedAndWaited reports whether the request has been fully
// consumed by a prior Wait.
func (r *Request) completedAndWaited() bool { return r.waited }

// waitedFlag exposes the consumed state for Waitsome's bookkeeping.
func (r *Request) waitedFlag() bool { return r.waited }
