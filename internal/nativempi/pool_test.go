package nativempi

import (
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/jvm"
)

func TestWirePoolSizing(t *testing.T) {
	if b := getWire(0); b != nil {
		t.Errorf("getWire(0) = %v, want nil", b)
	}
	for _, n := range []int{1, 63, 64, 65, 1000, 1024, 1025, 1 << 20} {
		b := getWire(n)
		if len(b) != n {
			t.Errorf("getWire(%d): len %d", n, len(b))
		}
		if c := cap(b); c&(c-1) != 0 || c < n || c < 1<<minWireClass {
			t.Errorf("getWire(%d): cap %d not a fitting power of two", n, c)
		}
		putWire(b)
	}
	// Foreign buffers (capacity not a class size) are silently dropped.
	putWire(make([]byte, 100))
	putWire(nil)
}

func TestWirePoolReuse(t *testing.T) {
	b := getWire(1000)
	b[0] = 0xFF
	putWire(b)
	// Pools are per-P; with no contention the very next Get should see
	// the parked buffer. Contents are unspecified by contract, so only
	// identity is checked.
	c := getWire(900)
	if &b[0] != &c[0] {
		t.Skip("sync.Pool did not hand the buffer back (GC or P migration); nothing to assert")
	}
	putWire(c)
}

func newTestProc() *Proc {
	topo := cluster.New(1, 2)
	return NewWorld(topo, fabric.Default(topo), Profile{}).Proc(0)
}

func TestScratchArenaZeroesReusedBuffers(t *testing.T) {
	a := newScratchArena(newTestProc())
	b := a.borrow(512)
	for i := range b {
		b[i] = 0xAA
	}
	a.giveBack(b)
	c := a.borrow(300)
	if &b[0] != &c[0] {
		t.Fatal("free list did not hand back the parked buffer")
	}
	for i, v := range c {
		if v != 0 {
			t.Fatalf("reused scratch byte %d = %#x, want 0 (make-equivalence broken)", i, v)
		}
	}
	st := a.p.arenaStats
	if st.Borrows != 2 || st.Hits != 1 || st.Misses != 1 || st.Returns != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestScratchArenaHighWater(t *testing.T) {
	a := newScratchArena(newTestProc())
	b1 := a.borrow(1024)
	b2 := a.borrow(2048)
	if hw := a.p.arenaStats.HighWaterBytes; hw != 1024+2048 {
		t.Errorf("high water %d, want %d", hw, 1024+2048)
	}
	a.giveBack(b1)
	a.giveBack(b2)
	st := a.p.arenaStats
	if st.InUseBytes != 0 {
		t.Errorf("in-use %d after all returns", st.InUseBytes)
	}
	if st.HighWaterBytes != 1024+2048 {
		t.Errorf("high water moved on return: %d", st.HighWaterBytes)
	}
}

func TestScratchArenaDoubleReturnPanics(t *testing.T) {
	a := newScratchArena(newTestProc())
	b := a.borrow(256)
	a.giveBack(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double return did not panic")
		}
	}()
	a.giveBack(b)
}

func TestScratchArenaForeignReturnPanics(t *testing.T) {
	a := newScratchArena(newTestProc())
	defer func() {
		if recover() == nil {
			t.Fatal("foreign (non-class-sized) return did not panic")
		}
	}()
	a.giveBack(make([]byte, 100))
}

func TestPacketDoubleFreePanics(t *testing.T) {
	p := getPacket()
	freePacket(p)
	defer func() {
		if recover() == nil {
			t.Fatal("packet double free did not panic")
		}
	}()
	freePacket(p)
}

// A packet whose payload is borrowed from the sender's user buffer
// must never claim pool ownership: putting that aliased memory on the
// wire pool would hand the user's live bytes to a later message.
func TestPacketBorrowedPayloadReleasePanics(t *testing.T) {
	p := getPacket()
	p.data = []byte("user buffer bytes")
	p.borrowed = true
	p.ownsData = true // protocol violation under test
	defer func() {
		if recover() == nil {
			t.Fatal("pool release of borrowed payload did not panic")
		}
	}()
	freePacket(p)
}

// The legal shape — borrowed payload, no ownership — frees quietly
// and never touches the wire pool.
func TestPacketBorrowedPayloadWithoutOwnershipFreesCleanly(t *testing.T) {
	p := getPacket()
	user := []byte("user buffer bytes")
	p.data = user
	p.borrowed = true
	freePacket(p)
	if string(user) != "user buffer bytes" {
		t.Error("freeing a borrowed packet disturbed the user buffer")
	}
}

// TestAllreduceAllocsRegression pins steady-state host allocations for
// a 1 KiB np=8 allreduce. Before the pooling work (mailbox reslice,
// per-call make for packets/payloads/scratch) this figure was ~127.7
// allocs per operation; the pooled runtime measures ~1.9. The ceiling
// of 12 leaves slack for GC-emptied sync.Pools while still proving far
// more than the required 5x reduction (127.7/5 = 25.5).
func TestAllreduceAllocsRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomly discards sync.Pool puts; allocs/op is not meaningful")
	}
	const iters = 128
	const n = 1024
	perRun := testing.AllocsPerRun(3, func() {
		topo := cluster.New(2, 4) // np=8
		w := NewWorld(topo, fabric.Default(topo), Profile{})
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			send := make([]byte, n)
			recv := make([]byte, n)
			for i := 0; i < iters; i++ {
				if err := c.Allreduce(send, recv, jvm.Long, OpSum); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	})
	perOp := perRun / iters
	t.Logf("allocs: %.1f per world-run, %.2f per allreduce (np=8, 1 KiB)", perRun, perOp)
	if perOp > 12 {
		t.Errorf("allocs per allreduce = %.2f, want <= 12 (pre-pooling baseline: 127.7)", perOp)
	}
}

// BenchmarkAllreduceHost measures the host-side cost of the same
// operation (ns/op is wall time spent simulating, not virtual
// latency). Steady state should report 0 allocs/op.
func BenchmarkAllreduceHost(b *testing.B) {
	topo := cluster.New(2, 4)
	w := NewWorld(topo, fabric.Default(topo), Profile{})
	const n = 1024
	b.ReportAllocs()
	b.ResetTimer()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		send := make([]byte, n)
		recv := make([]byte, n)
		for i := 0; i < b.N; i++ {
			if err := c.Allreduce(send, recv, jvm.Long, OpSum); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Error(err)
	}
}
