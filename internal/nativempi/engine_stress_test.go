package nativempi

import (
	"fmt"
	"runtime"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/jvm"
)

// Race-detector stress: hammer every shared structure the worker pool
// touches — mailboxes (push vs two-list drain), the packet pool and
// wire pool (the PR-4 double-free panics), the scratch arena and its
// foreign-return guard (PR 5), and the indexed matcher — from
// concurrently executing rank goroutines, rotating GOMAXPROCS so the
// scheduler shapes differ between rounds. The suite asserts nothing
// about timing; under `go test -race` (CI's vet-race job) it exists to
// make the detector light up on any engine synchronization hole.

// stressWorkload mixes every traffic class: wildcard eager receives,
// zero-copy rendezvous rings, nonblocking collectives advanced by Test
// spins, and blocking allreduces.
func stressWorkload(p *Proc) error {
	c := p.CommWorld()
	n := c.Size()
	me := p.Rank()
	next, prev := (me+1)%n, (me-1+n)%n
	for iter := 0; iter < 4; iter++ {
		// Rendezvous ring (borrowed payloads + FIN fences when clean).
		big := pattern(32<<10, byte(me+iter+1))
		rbuf := make([]byte, len(big))
		sreq, err := c.Isend(big, next, 21)
		if err != nil {
			return err
		}
		rreq, err := c.Irecv(rbuf, prev, 21)
		if err != nil {
			return err
		}
		// Advance via Test spins (exercises engine yield) then Wait.
		for {
			if _, ok, err := rreq.Test(); err != nil {
				return err
			} else if ok {
				break
			}
		}
		if _, err := sreq.Wait(); err != nil {
			return err
		}

		// Wildcard eager fan-in at rank 0 (indexed matcher under load).
		small := pattern(64, byte(0x20+me))
		sink := make([]byte, 64)
		if me == 0 {
			for r := 1; r < n; r++ {
				if _, err := c.Recv(sink, AnySource, AnyTag); err != nil {
					return err
				}
			}
			for r := 1; r < n; r++ {
				if err := c.Send(small, r, 23); err != nil {
					return err
				}
			}
		} else {
			if err := c.Send(small, 0, 22+me); err != nil {
				return err
			}
			if _, err := c.Recv(sink, 0, 23); err != nil {
				return err
			}
		}

		// Nonblocking collective advanced by its own Test spin.
		acc := make([]byte, 16)
		creq, err := c.Iallreduce(pattern(16, byte(me)), acc, jvm.Long, OpSum)
		if err != nil {
			return err
		}
		for {
			done, err := creq.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
		}

		// Blocking collective on top (scratch arena traffic).
		out := make([]byte, 256)
		if err := c.Allreduce(pattern(256, byte(me+1)), out, jvm.Int, OpMax); err != nil {
			return err
		}
	}
	return nil
}

// TestEngineRaceStress rotates GOMAXPROCS and worker widths over clean
// and lossy fabrics at np=16.
func TestEngineRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite in -short mode")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		for _, lossy := range []bool{false, true} {
			procs, lossy := procs, lossy
			t.Run(fmt.Sprintf("gomaxprocs%d/lossy=%v", procs, lossy), func(t *testing.T) {
				runtime.GOMAXPROCS(procs)
				topo := cluster.New(4, 4)
				fab := fabric.Default(topo)
				if lossy {
					fab.WithFaults(faults.Uniform(uint64(procs), 0.03))
				}
				w := NewWorld(topo, fab, Profile{})
				if err := w.Run(stressWorkload); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestEngineStressParallelWorlds runs several engine-scheduled worlds
// concurrently — separate engines must never share state through the
// global pools without synchronization.
func TestEngineStressParallelWorlds(t *testing.T) {
	if testing.Short() {
		t.Skip("stress suite in -short mode")
	}
	const worlds = 4
	errs := make(chan error, worlds)
	for i := 0; i < worlds; i++ {
		go func() {
			topo := cluster.New(2, 4)
			w := NewWorld(topo, fabric.Default(topo), Profile{})
			errs <- w.Run(stressWorkload)
		}()
	}
	for i := 0; i < worlds; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
