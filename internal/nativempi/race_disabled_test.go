//go:build !race

package nativempi

const raceEnabled = false
