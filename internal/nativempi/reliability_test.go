package nativempi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/vtime"
)

// faultyWorld builds a world over a fabric carrying the given fault
// plan (attach before NewWorld: the runtime decides at construction
// time whether the reliability sublayer is engaged).
func faultyWorld(nodes, ppn int, plan *faults.Plan, prof Profile) *World {
	topo := cluster.New(nodes, ppn)
	return NewWorld(topo, fabric.Default(topo).WithFaults(plan), prof)
}

func worldStats(w *World) ProcStats {
	var total ProcStats
	for r := 0; r < w.Size(); r++ {
		s := w.Proc(r).Stats()
		total.Retransmits += s.Retransmits
		total.FaultDrops += s.FaultDrops
		total.FaultCorrupts += s.FaultCorrupts
		total.FaultDups += s.FaultDups
		total.CorruptDrops += s.CorruptDrops
		total.DupDrops += s.DupDrops
		total.AcksSent += s.AcksSent
		total.AcksReceived += s.AcksReceived
		total.PeerFailures += s.PeerFailures
	}
	return total
}

func TestEagerRecoveryUnderDrops(t *testing.T) {
	w := faultyWorld(2, 1, faults.Uniform(99, 0.2), Profile{})
	const msgs = 50
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(pattern(128, byte(i)), 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 128)
		for i := 0; i < msgs; i++ {
			st, err := c.Recv(buf, 0, i)
			if err != nil {
				return err
			}
			if st.Tag != i || !bytes.Equal(buf, pattern(128, byte(i))) {
				return fmt.Errorf("message %d corrupted or reordered (tag %d)", i, st.Tag)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := worldStats(w)
	if st.FaultDrops == 0 || st.Retransmits == 0 {
		t.Fatalf("20%% drop plan injected nothing: %+v", st)
	}
	if st.AcksSent == 0 {
		t.Fatal("no acknowledgements flowed")
	}
}

func TestChecksumRejectsCorruption(t *testing.T) {
	plan := &faults.Plan{
		Seed:  4,
		Intra: faults.Rates{Corrupt: 0.3},
		Inter: faults.Rates{Corrupt: 0.3},
	}
	w := faultyWorld(1, 2, plan, Profile{})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < 40; i++ {
				if err := c.Send(pattern(256, byte(i)), 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 256)
		for i := 0; i < 40; i++ {
			if _, err := c.Recv(buf, 0, i); err != nil {
				return err
			}
			if !bytes.Equal(buf, pattern(256, byte(i))) {
				return fmt.Errorf("corrupted payload reached the application at message %d", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := worldStats(w)
	if st.FaultCorrupts == 0 {
		t.Fatal("corruption plan injected nothing")
	}
	if st.CorruptDrops == 0 {
		t.Fatal("no frame was rejected on checksum")
	}
}

func TestTargetedDropRecoveredByRetransmit(t *testing.T) {
	// Drop exactly the 3rd eager message from rank 0 to rank 1; the
	// retransmission recovers it and delivery order is preserved.
	plan := &faults.Plan{
		Seed: 1,
		Targets: []faults.Target{
			{Kind: faults.Drop, Src: 0, Dst: 1, Stream: faults.StreamMatch, Nth: 3},
		},
	}
	w := faultyWorld(1, 2, plan, Profile{})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			for i := 0; i < 5; i++ {
				if err := c.Send(pattern(64, byte(i)), 1, i); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 64)
		for i := 0; i < 5; i++ {
			if _, err := c.Recv(buf, 0, i); err != nil {
				return err
			}
			if !bytes.Equal(buf, pattern(64, byte(i))) {
				return fmt.Errorf("message %d corrupted", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := worldStats(w)
	if st.FaultDrops != 1 || st.Retransmits != 1 {
		t.Fatalf("one-shot target should cost exactly one drop and one retransmit, got %+v", st)
	}
}

func TestRendezvousUnderDrops(t *testing.T) {
	w := faultyWorld(2, 1, faults.Uniform(31, 0.1), Profile{})
	msg := pattern(256*1024, 5) // well above the 16K inter-node eager threshold
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(msg, 1, 0)
		}
		buf := make([]byte, len(msg))
		if _, err := c.Recv(buf, 0, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, msg) {
			return fmt.Errorf("rendezvous payload corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAUnderDrops(t *testing.T) {
	w := faultyWorld(1, 2, faults.Uniform(77, 0.15), Profile{})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		window := make([]byte, 512)
		win, err := c.WinCreate(window)
		if err != nil {
			return err
		}
		if p.Rank() == 0 {
			if err := win.Put(pattern(256, 9), 1, 0); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 1 && !bytes.Equal(window[:256], pattern(256, 9)) {
			return fmt.Errorf("put payload corrupted under loss")
		}
		got := make([]byte, 256)
		if p.Rank() == 1 {
			if err := win.Get(got, 0, 0); err != nil {
				return err
			}
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if p.Rank() == 0 {
			copy(window, pattern(512, 3)) // not part of the epoch; just exercise memory
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAnySourceDuplicateNotMatchedTwice(t *testing.T) {
	// Every transmission is duplicated. A wildcard (ANY_SOURCE,
	// ANY_TAG) receive matches the original; the duplicate must be
	// suppressed by the reliability layer rather than completing the
	// next wildcard receive with a stale copy.
	plan := &faults.Plan{
		Seed:  5,
		Intra: faults.Rates{Duplicate: 1},
		Inter: faults.Rates{Duplicate: 1},
	}
	w := faultyWorld(1, 2, plan, Profile{})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 1 {
			if err := c.Send(pattern(32, 1), 0, 1); err != nil {
				return err
			}
			return c.Send(pattern(32, 2), 0, 2)
		}
		b1 := make([]byte, 32)
		b2 := make([]byte, 32)
		r1, err := c.Irecv(b1, AnySource, AnyTag)
		if err != nil {
			return err
		}
		st1, err := r1.Wait()
		if err != nil {
			return err
		}
		r2, err := c.Irecv(b2, AnySource, AnyTag)
		if err != nil {
			return err
		}
		st2, err := r2.Wait()
		if err != nil {
			return err
		}
		if st1.Tag == st2.Tag {
			return fmt.Errorf("duplicate matched twice: tags %d and %d", st1.Tag, st2.Tag)
		}
		if !bytes.Equal(b1, pattern(32, byte(st1.Tag))) || !bytes.Equal(b2, pattern(32, byte(st2.Tag))) {
			return fmt.Errorf("wildcard receive payload mismatch")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := worldStats(w); st.DupDrops == 0 {
		t.Fatal("no duplicate was suppressed")
	}
}

func TestWaitanyWaitsomeWithRetransmittedDuplicates(t *testing.T) {
	// Waitany/Waitsome over wildcard receives while the fabric both
	// drops (forcing retransmissions) and duplicates traffic: each
	// posted receive must complete exactly once, with distinct
	// messages.
	plan := &faults.Plan{
		Seed:  21,
		Intra: faults.Rates{Drop: 0.3, Duplicate: 0.5},
		Inter: faults.Rates{Drop: 0.3, Duplicate: 0.5},
	}
	w := faultyWorld(1, 2, plan, Profile{})
	const msgs = 6
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 1 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(pattern(48, byte(i)), 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		bufs := make([][]byte, msgs)
		reqs := make([]*Request, msgs)
		for i := range reqs {
			bufs[i] = make([]byte, 48)
			r, err := c.Irecv(bufs[i], AnySource, AnyTag)
			if err != nil {
				return err
			}
			reqs[i] = r
		}
		seen := map[int]bool{}
		// Half through Waitany, the rest through Waitsome.
		for len(seen) < msgs/2 {
			i, st, err := Waitany(reqs)
			if err != nil {
				return err
			}
			if seen[st.Tag] {
				return fmt.Errorf("tag %d completed twice (req %d)", st.Tag, i)
			}
			seen[st.Tag] = true
		}
		for len(seen) < msgs {
			idxs, err := Waitsome(reqs)
			if err != nil {
				return err
			}
			for _, i := range idxs {
				tag := reqs[i].status.Tag
				if seen[tag] {
					return fmt.Errorf("tag %d completed twice (req %d)", tag, i)
				}
				seen[tag] = true
			}
		}
		// Posted receives match in FIFO order against the sender's
		// program order, so request i holds message i.
		for i := range reqs {
			if !bytes.Equal(bufs[i], pattern(48, byte(i))) {
				return fmt.Errorf("request %d payload mismatch", i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllDropsEscalateToAbort(t *testing.T) {
	// A fully black-holed fabric must abort the job through the
	// peer-failure path, not deadlock it.
	prof := Profile{RetransmitRTO: 5 * vtime.Microsecond, MaxRetransmits: 3}
	w := faultyWorld(2, 1, faults.Uniform(8, 1.0), prof)
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(pattern(64, 1), 1, 0)
		}
		buf := make([]byte, 64)
		_, err := c.Recv(buf, 0, 0)
		return err
	})
	if err == nil {
		t.Fatal("black-holed fabric did not abort")
	}
	if !strings.Contains(err.Error(), "unreachable") {
		t.Fatalf("abort reason should name the unreachable peer, got: %v", err)
	}
	if st := worldStats(w); st.PeerFailures == 0 {
		t.Fatal("peer-failure counter not bumped")
	}
}

func TestFaultyRunsDeterministic(t *testing.T) {
	// Identical seeds must give identical virtual end times, message
	// counts, and fault counters across runs — regardless of host
	// goroutine scheduling.
	run := func() (vtime.Time, ProcStats) {
		w := faultyWorld(2, 2, faults.Uniform(2024, 0.1), Profile{})
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			buf := make([]byte, 4096)
			for i := 0; i < 10; i++ {
				if err := c.Bcast(buf, 0); err != nil {
					return err
				}
				if err := c.Barrier(); err != nil {
					return err
				}
			}
			right := (p.Rank() + 1) % c.Size()
			left := (p.Rank() + c.Size() - 1) % c.Size()
			_, err := c.Sendrecv(pattern(512, 1), right, 0, buf[:512], left, 0)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxClock(), worldStats(w)
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 {
		t.Fatalf("virtual end time differs across runs: %v vs %v", t1, t2)
	}
	if s1 != s2 {
		t.Fatalf("fault counters differ across runs:\n%+v\nvs\n%+v", s1, s2)
	}
}

func TestZeroRatePlanStillChecksums(t *testing.T) {
	// Engaged-but-clean reliability: frames flow with headers and
	// checksums, nothing is dropped, and payloads survive exactly.
	w := faultyWorld(1, 2, faults.Uniform(1, 0), Profile{})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			return c.Send(pattern(1024, 7), 1, 0)
		}
		buf := make([]byte, 1024)
		if _, err := c.Recv(buf, 0, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(1024, 7)) {
			return fmt.Errorf("payload corrupted on clean reliable path")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := worldStats(w)
	if st.AcksSent == 0 {
		t.Fatal("reliability layer not engaged under zero-rate plan")
	}
	if st.FaultDrops != 0 || st.Retransmits != 0 || st.CorruptDrops != 0 {
		t.Fatalf("zero-rate plan injected faults: %+v", st)
	}
}
