package nativempi

import (
	"fmt"

	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Credit-based eager flow control — the backpressure tier that makes a
// many-to-one flood degrade gracefully instead of growing the
// receiver's unexpected queue without bound (MVAPICH2's RC-channel
// credit scheme; see Liu et al. and the Ibdxnet receiver-side
// backpressure design in PAPERS.md).
//
// The protocol is cumulative-counter based, which makes every message
// idempotent and loss-tolerant:
//
//   - The sender tracks, per peer, how many eager messages it has
//     injected (sent) and the highest consumption total the peer has
//     advertised back (granted). Available credit is
//     EagerCredits - (sent - granted); at zero the sender parks.
//   - The receiver counts eager consumptions per source (consumed) and
//     advertises the running total — a GRANT — back to the source:
//     piggybacked on every frame it sends that way anyway (payloads
//     under post, reliability acks under admit), and, when traffic is
//     one-sided and CreditBatch consumptions have accumulated with no
//     piggyback opportunity, as an explicit CREDIT frame.
//   - A grant also carries the receiver's demote bit: set while the
//     unexpected queue sits above half of UnexpectedQueueBytes. A
//     demoted sender routes eager-sized messages through the
//     rendezvous handshake, so the payload stays at the sender until a
//     receive is posted — the eager→rendezvous degradation tier.
//
// Because grants are cumulative maxima, applying one twice (duplicated
// reliability copies all inherit the piggyback fields) or out of order
// is harmless, and a lost grant is subsumed by the next one. Explicit
// CREDIT frames are NIC-autonomous control traffic, exactly like acks:
// no CPU charge, no injection-resource use, and they bypass the
// reliability layer's framing (the modelled transport is an RC channel;
// a cumulative grant needs no retransmission of its own). Below the
// credit limit flow control therefore moves NOTHING virtual — no clock,
// no trace event, no deterministic metric — which the differential
// suite checks byte for byte.
//
// When credit runs out the sender parks in VIRTUAL time: it polls for
// the freeing grant on an exponential receiver-not-ready schedule
// (RetransmitRTO, then ×RetransmitBackoff per probe, like the RTO
// ladder) and resumes at the first probe instant at or after the
// grant's arrival. The wait is charged to the sender's clock as a
// KindFlow span — real stall time, accounted like retransmission waits
// (see DESIGN.md, "Backpressure vs. the virtual-time invariant").

// maxRNRWait caps the receiver-not-ready backoff step so the probe
// ladder cannot overflow however long a receiver stays saturated.
const maxRNRWait = vtime.Duration(1) << 42 // ~4.4 virtual seconds

// FlowStats counts host-side flow-control activity for one rank. Like
// MailboxStats these are HOST observability numbers (whether a grant
// travelled piggybacked or explicit is protocol plumbing, and keeping
// frame counts out of the registry is what lets a below-limit run
// export byte-identical artifacts with flow control on or off). The
// deterministic registry carries only the quantities that are zero
// below the credit limit: rnr_parks, rnr_wait_ps, demoted_sends.
type FlowStats struct {
	CreditFrames  int64 `json:"credit_frames"`  // explicit CREDIT frames emitted
	Piggybacks    int64 `json:"piggybacks"`     // grants advanced on outbound payloads
	GrantsApplied int64 `json:"grants_applied"` // fresh grants applied at the sender
	RNRParks      int64 `json:"rnr_parks"`      // credit-exhaustion parks
	RNRWaitPs     int64 `json:"rnr_wait_ps"`    // total virtual park time
	DemotedSends  int64 `json:"demoted_sends"`  // eager-sized sends routed via rendezvous
}

// flowState is one rank's credit bookkeeping, confined to the rank
// goroutine like everything else on a Proc. All counters are
// cumulative; maps are keyed by world rank.
type flowState struct {
	credits int   // Profile.EagerCredits (>0, or no flowState exists)
	batch   int   // Profile.CreditBatch (normalized)
	qbytes  int64 // Profile.UnexpectedQueueBytes (normalized)

	// Sender side, per destination.
	sent    map[int]uint64     // eager messages injected
	granted map[int]uint64     // highest consumption total advertised back
	grantAt map[int]vtime.Time // arrival of the grant that set granted
	demoted map[int]bool       // receiver's demote bit from the freshest grant

	// Receiver side, per source.
	consumed map[int]uint64 // eager messages matched to receives
	advert   map[int]uint64 // highest total reliably advertised back
	// demoting latches the over-watermark state between the raise
	// threshold (qbytes/2) and the clear condition (empty queue) —
	// see fcOverWatermark.
	demoting bool

	stats FlowStats
}

func newFlowState(prof *Profile) *flowState {
	return &flowState{
		credits:  prof.EagerCredits,
		batch:    prof.CreditBatch,
		qbytes:   prof.UnexpectedQueueBytes,
		sent:     map[int]uint64{},
		granted:  map[int]uint64{},
		grantAt:  map[int]vtime.Time{},
		demoted:  map[int]bool{},
		consumed: map[int]uint64{},
		advert:   map[int]uint64{},
	}
}

// fcAvailable returns the sender's remaining eager credit toward dst.
// A confirmed-dead peer has infinite credit: its grants will never
// come, and eager sends toward it complete locally and evaporate
// (buffered-send semantics), so gating them would deadlock the park.
func (p *Proc) fcAvailable(dst int) int {
	f := p.flow
	if _, dead := p.failedPeers[dst]; dead {
		return f.credits
	}
	return f.credits - int(f.sent[dst]-f.granted[dst])
}

// fcEagerOK reports whether an eager-sized message toward dst may use
// the eager path. False only for a flow-controlled sender the receiver
// has demoted: the message routes through rendezvous instead, keeping
// the payload out of the receiver's unexpected queue.
func (p *Proc) fcEagerOK(dst int) bool {
	if p.flow == nil || dst == p.rank {
		return true
	}
	if _, dead := p.failedPeers[dst]; dead {
		// A corpse cannot demote anyone; its last grant is stale.
		return true
	}
	if p.flow.demoted[dst] {
		p.flow.stats.DemotedSends++
		p.w.met.Add(p.rank, "flow", "demoted_sends", 1)
		return false
	}
	return true
}

// fcChargeSend consumes one credit for an eager injection toward dst.
func (p *Proc) fcChargeSend(dst int) {
	if p.flow == nil || dst == p.rank {
		return
	}
	p.flow.sent[dst]++
}

// fcWaitCredit parks the sender until eager credit toward dst is
// available. The no-credit case is the ONLY one that touches the
// clock: a sender with credit returns without any effect, which is
// what keeps below-limit runs byte-identical to flow-control-off.
//
// The park models the library's receiver-not-ready loop: the CPU
// probes for returned credit at exponentially backed-off instants
// (RetransmitRTO, ×RetransmitBackoff per probe — the RTO ladder reused
// as the RNR ladder) and the send resumes at the first probe at or
// after the freeing grant arrived. Packets dispatched while parked are
// processed normally — none of those paths read this rank's paused
// clock, so progress inside the park cannot leak host scheduling into
// virtual time.
func (p *Proc) fcWaitCredit(dst int) {
	if p.flow == nil || dst == p.rank || p.fcAvailable(dst) > 0 {
		return
	}
	// Drain already-arrived traffic first: a grant sitting in the
	// mailbox frees the send with no park at all.
	p.poll()
	if p.fcAvailable(dst) > 0 {
		return
	}
	f := p.flow
	parkStart := p.clock.Now()
	for p.fcAvailable(dst) <= 0 {
		p.progressOnce()
	}
	// The freeing signal's arrival instant: the grant that advanced
	// granted[dst], or — when the park ended because the peer was
	// confirmed dead — the confirmation time.
	grantAt := f.grantAt[dst]
	if at, dead := p.failedPeers[dst]; dead && at > grantAt {
		grantAt = at
	}
	resume := parkStart
	wait := p.w.prof.RetransmitRTO
	for {
		resume = resume.Add(wait)
		if resume >= grantAt {
			break
		}
		if wait < maxRNRWait {
			wait *= vtime.Duration(p.w.prof.RetransmitBackoff)
		}
	}
	p.clock.AdvanceTo(resume)
	f.stats.RNRParks++
	f.stats.RNRWaitPs += int64(resume.Sub(parkStart))
	p.recordFlow(fmt.Sprintf("rnr dst=%d", dst), dst, parkStart, resume)
}

// fcApplyGrant applies a piggybacked or explicit grant carried by an
// arrived packet. Grants are cumulative consumption totals, so only a
// FRESH grant (higher than anything seen) advances state; stale and
// duplicated copies — every materialised reliability copy of a frame
// carries the same piggyback fields — are no-ops, which is what makes
// application safe before the admission check and idempotent under
// loss, duplication, and corruption.
func (p *Proc) fcApplyGrant(pkt *packet) {
	f := p.flow
	src := pkt.src
	if pkt.fcGrant <= f.granted[src] {
		return
	}
	f.granted[src] = pkt.fcGrant
	f.grantAt[src] = pkt.arriveAt
	f.demoted[src] = pkt.fcDemote
	f.stats.GrantsApplied++
}

// fcOverWatermark reports whether this receiver is demoting its
// senders. The state latches with hysteresis, like the SRQ
// limit-reached handling it models: crossing half the configured byte
// bound raises it, and only a fully drained queue clears it. A
// transient per-instant reading would be unobservable in
// request/reply traffic — the grant a sender acts on is the latest
// one applied, and a receiver that just granted has just consumed,
// momentarily dipping below any threshold.
func (p *Proc) fcOverWatermark() bool {
	f := p.flow
	if f.qbytes <= 0 {
		return false
	}
	if p.unexp.bytes >= f.qbytes/2 {
		f.demoting = true
	} else if p.unexp.bytes == 0 {
		f.demoting = false
	}
	return f.demoting
}

// fcAttachGrant stamps an outbound packet toward dst with the current
// consumption total and demote bit. advance marks transports with
// guaranteed delivery (payload frames: the settled attempt always
// arrives), which lets the receiver count the grant as advertised;
// acks can be lost for good, so they carry the grant opportunistically
// without advancing the advertisement.
func (p *Proc) fcAttachGrant(dst int, pkt *packet, advance bool) {
	f := p.flow
	if f == nil || dst == p.rank {
		return
	}
	c := f.consumed[dst]
	if c == 0 {
		return
	}
	pkt.fcGrant = c
	pkt.fcDemote = p.fcOverWatermark()
	if advance && c > f.advert[dst] {
		f.advert[dst] = c
		f.stats.Piggybacks++
	}
}

// fcConsumed returns one credit to src: an eager payload was matched
// to a receive (or purged with its revoked context) at virtual instant
// at. When CreditBatch consumptions have accumulated with nothing
// heading back toward src to piggyback on, an explicit CREDIT frame
// carries the grant — the one-sided-traffic path.
func (p *Proc) fcConsumed(src int, at vtime.Time) {
	f := p.flow
	if f == nil || src == p.rank {
		return
	}
	f.consumed[src]++
	if f.consumed[src]-f.advert[src] >= uint64(f.batch) {
		p.fcSendCredit(src, at)
	}
}

// fcSendCredit emits an explicit CREDIT frame toward src. Like an ack
// it is NIC-autonomous: generated at the consumption instant with no
// CPU charge and no injection-resource use, and it bypasses the
// reliability layer (a cumulative grant is its own retransmission).
func (p *Proc) fcSendCredit(src int, at vtime.Time) {
	f := p.flow
	ck := getPacket()
	ck.kind = pktCredit
	ck.src = p.rank
	ck.dst = src
	ck.fcGrant = f.consumed[src]
	ck.fcDemote = p.fcOverWatermark()
	ck.sentAt = at
	ck.arriveAt = at.Add(p.channel(src).Latency)
	p.postRaw(src, ck)
	f.advert[src] = f.consumed[src]
	f.stats.CreditFrames++
}

// noteUnexpGrowth refreshes the unexpected-queue high-water marks
// after a packet was queued. The queue's content at every poll point
// is a pure function of program order and the engine's canonical
// delivery order, so — unlike bucket shapes or mailbox batches — the
// high-water marks are deterministic and safe in the registry. The
// MatchStats mirror feeds hostbench.
func (p *Proc) noteUnexpGrowth() {
	uq := &p.unexp
	if uq.bytes > p.matchStats.UnexpBytesHiWater {
		p.matchStats.UnexpBytesHiWater = uq.bytes
		p.w.met.SetMaxGauge(p.rank, "match", "unexp_bytes_hiwater", uq.bytes)
	}
	if uq.depth > p.matchStats.UnexpDepthHiWater {
		p.matchStats.UnexpDepthHiWater = uq.depth
		p.w.met.SetMaxGauge(p.rank, "match", "unexp_depth_hiwater", uq.depth)
	}
}

// recordFlow logs one receiver-not-ready park span and its registry
// quantities. Only saturated runs ever call this, so below the credit
// limit the flow subsystem contributes nothing to any artifact.
func (p *Proc) recordFlow(detail string, peer int, start, end vtime.Time) {
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindFlow, Detail: detail, Peer: peer,
			Start: start, End: end,
		})
	}
	if p.w.met != nil {
		p.w.met.Add(p.rank, "flow", "rnr_parks", 1)
		p.w.met.Observe(p.rank, "flow", "rnr_wait_ps", int64(end.Sub(start)))
	}
}

// FlowStats returns a snapshot of the rank's host-side flow-control
// counters (zero when flow control is off).
func (p *Proc) FlowStats() FlowStats {
	if p.flow == nil {
		return FlowStats{}
	}
	return p.flow.stats
}
