package nativempi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

// Scale-out coverage: the phase-stepped engine plus the multi-leader
// collectives must carry np=1024 jobs in CI-feasible wall time, and
// the multi-leader algorithms must agree value-for-value with the
// reference algorithms on the same communicator.

// sumLongs runs one long-vector allreduce and checks every rank got
// the exact global sum.
func sumLongs(t *testing.T, w *World, elems int) {
	t.Helper()
	n := w.Size()
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		send := make([]byte, elems*8)
		for i := 0; i < elems; i++ {
			binary.LittleEndian.PutUint64(send[i*8:], uint64(p.Rank()+i))
		}
		recv := make([]byte, elems*8)
		if err := c.Allreduce(send, recv, jvm.Long, OpSum); err != nil {
			return err
		}
		for i := 0; i < elems; i++ {
			want := uint64(n*(n-1)/2 + i*n)
			if got := binary.LittleEndian.Uint64(recv[i*8:]); got != want {
				return fmt.Errorf("rank %d elem %d: got %d want %d", p.Rank(), i, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScaleAllreduce1024 drives the default MVAPICH2-shaped selector
// at np=1024 (32 nodes x 32 ppn), which routes through the
// multi-leader hierarchy, under the full worker pool.
func TestScaleAllreduce1024(t *testing.T) {
	if testing.Short() {
		t.Skip("np=1024 job in -short mode")
	}
	w := worldWith(Profile{}, 32, 32)
	sumLongs(t, w, 16)
}

// TestScaleBcast1024 checks the three-level multi-leader broadcast at
// np=1024 with a root away from rank 0.
func TestScaleBcast1024(t *testing.T) {
	if testing.Short() {
		t.Skip("np=1024 job in -short mode")
	}
	const root = 777
	w := worldWith(Profile{}, 32, 32)
	want := pattern(4096, byte(root%251))
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		buf := make([]byte, len(want))
		if p.Rank() == root {
			copy(buf, want)
		}
		if err := c.Bcast(buf, root); err != nil {
			return err
		}
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("rank %d: bcast payload corrupted", p.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultiLeaderMatchesReference pins the multi-leader algorithms
// value-for-value against the reference algorithms at np=64 and
// np=256: same inputs, same reduced vector and broadcast payload on
// every rank, whatever the schedule shape.
func TestMultiLeaderMatchesReference(t *testing.T) {
	shapes := []struct{ nodes, ppn int }{{8, 8}, {16, 16}}
	for _, sh := range shapes {
		sh := sh
		t.Run(fmt.Sprintf("np%d", sh.nodes*sh.ppn), func(t *testing.T) {
			run := func(prof Profile) [][]byte {
				w := worldWith(prof, sh.nodes, sh.ppn)
				out := make([][]byte, w.Size())
				err := w.Run(func(p *Proc) error {
					c := p.CommWorld()
					send := pattern(64, byte(p.Rank()+3))
					recv := make([]byte, 64)
					if err := c.Allreduce(send, recv, jvm.Int, OpMax); err != nil {
						return err
					}
					bc := make([]byte, 100)
					if p.Rank() == 5 {
						copy(bc, pattern(100, 0x5a))
					}
					if err := c.Bcast(bc, 5); err != nil {
						return err
					}
					out[p.Rank()] = append(recv, bc...)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				return out
			}
			ml := run(Profile{
				SelectBcast:     func(n, p int) BcastAlg { return BcastMultiLeader },
				SelectAllreduce: func(n, p int) AllreduceAlg { return AllreduceMultiLeader },
			})
			ref := run(Profile{
				SelectBcast:     func(n, p int) BcastAlg { return BcastBinomial },
				SelectAllreduce: func(n, p int) AllreduceAlg { return AllreduceRecursiveDoubling },
			})
			for r := range ml {
				if !bytes.Equal(ml[r], ref[r]) {
					t.Errorf("rank %d: multi-leader result differs from reference", r)
				}
			}
		})
	}
}

// TestMultiLeaderLeadersKnob checks the LeadersPerNode knob: every
// width yields the same values, and widths beyond the node size are
// capped rather than dropping sections.
func TestMultiLeaderLeadersKnob(t *testing.T) {
	for _, L := range []int{1, 2, 4, 7, 64} {
		L := L
		t.Run(fmt.Sprintf("L%d", L), func(t *testing.T) {
			w := worldWith(Profile{
				LeadersPerNode:  L,
				SelectAllreduce: func(n, p int) AllreduceAlg { return AllreduceMultiLeader },
			}, 4, 6)
			sumLongs(t, w, 8)
		})
	}
}
