package nativempi

import (
	"strings"
	"testing"
	"time"
)

// TestFailedRankAbortsBlockedPeers: a rank erroring out of the SPMD
// body must wake peers stuck in blocking MPI calls — the whole job
// fails instead of hanging.
func TestFailedRankAbortsBlockedPeers(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		w := testWorld(1, 3)
		done <- w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			if pr.Rank() == 2 {
				return errTestFailure
			}
			// Ranks 0 and 1 wait on a barrier rank 2 never joins.
			return c.Barrier()
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("job with a failed rank reported success")
		}
		if !strings.Contains(err.Error(), "aborted by rank 2") {
			t.Fatalf("peers not aborted: %v", err)
		}
		if !strings.Contains(err.Error(), errTestFailure.Error()) {
			t.Fatalf("original failure lost: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job hung despite the abort mechanism")
	}
}

var errTestFailure = errTest("deliberate failure")

type errTest string

func (e errTest) Error() string { return string(e) }

// TestPanicAbortsBlockedPeers: a panicking rank likewise tears the job
// down.
func TestPanicAbortsBlockedPeers(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		w := testWorld(1, 2)
		done <- w.Run(func(pr *Proc) error {
			if pr.Rank() == 1 {
				panic("kaboom")
			}
			buf := make([]byte, 8)
			_, err := pr.CommWorld().Recv(buf, 1, 0) // never satisfied
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "kaboom") {
			t.Fatalf("panic not propagated: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job hung on a peer panic")
	}
}

// TestExplicitAbort: MPI_Abort semantics through World.Abort.
func TestExplicitAbort(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		w := testWorld(1, 2)
		done <- w.Run(func(pr *Proc) error {
			if pr.Rank() == 0 {
				pr.World().Abort(0, "operator abort")
				return nil
			}
			buf := make([]byte, 8)
			_, err := pr.CommWorld().Recv(buf, 0, 0)
			return err
		})
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "operator abort") {
			t.Fatalf("explicit abort not delivered: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("job hung on explicit abort")
	}
}

// TestCleanJobUnaffectedByAbortMachinery: normal completion stays
// error-free.
func TestCleanJobUnaffectedByAbortMachinery(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		return pr.CommWorld().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
