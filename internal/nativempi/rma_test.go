package nativempi

import (
	"bytes"
	"fmt"
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

func TestRMAPut(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		base := make([]byte, 256)
		win, err := c.WinCreate(base)
		if err != nil {
			return err
		}
		// Every rank puts its signature into the next rank's window.
		target := (pr.Rank() + 1) % c.Size()
		if err := win.Put(pattern(32, byte(pr.Rank()+1)), target, 64); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		src := (pr.Rank() - 1 + c.Size()) % c.Size()
		if !bytes.Equal(base[64:96], pattern(32, byte(src+1))) {
			return fmt.Errorf("rank %d: put payload wrong", pr.Rank())
		}
		// Outside the put range the window is untouched.
		if base[0] != 0 || base[96] != 0 {
			return fmt.Errorf("rank %d: put spilled", pr.Rank())
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAGet(t *testing.T) {
	w := testWorld(2, 1)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		base := pattern(128, byte(10*(pr.Rank()+1)))
		win, err := c.WinCreate(base)
		if err != nil {
			return err
		}
		dst := make([]byte, 64)
		other := 1 - pr.Rank()
		if err := win.Get(dst, other, 32); err != nil {
			return err
		}
		// dst is undefined until the fence...
		if err := win.Fence(); err != nil {
			return err
		}
		want := pattern(128, byte(10*(other+1)))[32:96]
		if !bytes.Equal(dst, want) {
			return fmt.Errorf("rank %d: get payload wrong", pr.Rank())
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAAccumulate(t *testing.T) {
	w := testWorld(1, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		base := make([]byte, 64)
		win, err := c.WinCreate(base)
		if err != nil {
			return err
		}
		// Everyone accumulates (rank+1) into rank 0's first long.
		contrib := make([]byte, 8)
		putIntNative(contrib, 0, jvm.Long, int64(pr.Rank()+1))
		if err := win.Accumulate(contrib, 0, 0, jvm.Long, OpSum); err != nil {
			return err
		}
		if err := win.Fence(); err != nil {
			return err
		}
		if pr.Rank() == 0 {
			if got := getIntNative(base, 0, jvm.Long); got != 10 { // 1+2+3+4
				return fmt.Errorf("accumulate = %d, want 10", got)
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAMultipleEpochs(t *testing.T) {
	w := testWorld(2, 1)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		base := make([]byte, 8)
		win, err := c.WinCreate(base)
		if err != nil {
			return err
		}
		for epoch := 1; epoch <= 5; epoch++ {
			if pr.Rank() == 0 {
				v := make([]byte, 8)
				putIntNative(v, 0, jvm.Long, int64(epoch*epoch))
				if err := win.Put(v, 1, 0); err != nil {
					return err
				}
			}
			if err := win.Fence(); err != nil {
				return err
			}
			if pr.Rank() == 1 {
				if got := getIntNative(base, 0, jvm.Long); got != int64(epoch*epoch) {
					return fmt.Errorf("epoch %d: window holds %d", epoch, got)
				}
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAFenceWithNoOps(t *testing.T) {
	w := testWorld(1, 3)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		win, err := c.WinCreate(make([]byte, 16))
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			if err := win.Fence(); err != nil {
				return err
			}
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAValidation(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		win, err := c.WinCreate(make([]byte, 16))
		if err != nil {
			return err
		}
		if err := win.Put(make([]byte, 4), 9, 0); err == nil {
			return fmt.Errorf("bad target accepted")
		}
		if err := win.Put(make([]byte, 4), 0, -1); err == nil {
			return fmt.Errorf("negative offset accepted")
		}
		// A put past the target window errors at the TARGET's fence.
		if pr.Rank() == 0 {
			if err := win.Put(make([]byte, 16), 1, 8); err != nil {
				return fmt.Errorf("origin-side rejection too early: %v", err)
			}
		}
		fenceErr := win.Fence()
		if pr.Rank() == 1 && fenceErr == nil {
			return fmt.Errorf("out-of-window put not caught at target fence")
		}
		// After Free, operations fail.
		_ = win
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAFreedWindow(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		win, err := c.WinCreate(make([]byte, 8))
		if err != nil {
			return err
		}
		if err := win.Free(); err != nil {
			return err
		}
		if err := win.Put(make([]byte, 4), 0, 0); err == nil {
			return fmt.Errorf("put on freed window accepted")
		}
		if err := win.Fence(); err == nil {
			return fmt.Errorf("fence on freed window accepted")
		}
		if err := win.Free(); err == nil {
			return fmt.Errorf("double free accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAPutLatencyIsOneSided(t *testing.T) {
	// A put epoch's cost at the origin is dominated by injection plus
	// the fence synchronisation; the target does not need a matching
	// receive call. Sanity: a small put+fence costs only a few
	// microseconds of virtual time.
	w := testWorld(2, 1)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		win, err := c.WinCreate(make([]byte, 4096))
		if err != nil {
			return err
		}
		if err := win.Fence(); err != nil { // open epoch
			return err
		}
		sw := vtime.StartStopwatch(pr.Clock())
		const iters = 10
		for i := 0; i < iters; i++ {
			if pr.Rank() == 0 {
				if err := win.Put(make([]byte, 8), 1, 0); err != nil {
					return err
				}
			}
			if err := win.Fence(); err != nil {
				return err
			}
		}
		perEpoch := vtime.Duration(int64(sw.Elapsed()) / iters)
		if perEpoch > vtime.Micros(20) {
			return fmt.Errorf("put+fence epoch %v too expensive", perEpoch)
		}
		return win.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRMAConcurrentWindows(t *testing.T) {
	// Two windows on the same communicator do not cross-talk.
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		a := make([]byte, 16)
		b := make([]byte, 16)
		winA, err := c.WinCreate(a)
		if err != nil {
			return err
		}
		winB, err := c.WinCreate(b)
		if err != nil {
			return err
		}
		if pr.Rank() == 0 {
			if err := winA.Put(pattern(8, 0xA0), 1, 0); err != nil {
				return err
			}
			if err := winB.Put(pattern(8, 0xB0), 1, 8); err != nil {
				return err
			}
		}
		if err := winA.Fence(); err != nil {
			return err
		}
		if err := winB.Fence(); err != nil {
			return err
		}
		if pr.Rank() == 1 {
			if !bytes.Equal(a[:8], pattern(8, 0xA0)) || a[8] != 0 {
				return fmt.Errorf("window A contents wrong")
			}
			if !bytes.Equal(b[8:16], pattern(8, 0xB0)) || b[0] != 0 {
				return fmt.Errorf("window B contents wrong")
			}
		}
		if err := winA.Free(); err != nil {
			return err
		}
		return winB.Free()
	})
	if err != nil {
		t.Fatal(err)
	}
}
