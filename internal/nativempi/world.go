package nativempi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// World is one simulated MPI job: a set of rank processes on a
// topology, bound to a fabric and a library profile.
type World struct {
	topo      *cluster.Topology
	fab       *fabric.Fabric
	prof      Profile
	procs     []*Proc
	nextCtx   atomic.Int32
	rec       *trace.Recorder
	met       *metrics.Registry
	abortOnce sync.Once

	// eng is the phase-stepped scale-out scheduler, non-nil exactly
	// while Run executes (atomic: Abort may be called from outside the
	// rank goroutines, and tests drive bare Procs with no engine at
	// all). engWorkers configures the worker-pool width for the next
	// Run: 0 = GOMAXPROCS, 1 = serial reference execution.
	eng        atomic.Pointer[engine]
	engWorkers int
	engStats   EngineStats

	// zeroCopy caches the world-level half of the zero-copy rendezvous
	// decision: profile switch on AND no fault plan (framed
	// retransmission needs a mutable payload image). Procs additionally
	// require !ft at use time (see Proc.zeroCopyRndv).
	zeroCopy bool

	// flowOn caches whether the profile enables credit-based eager flow
	// control (EagerCredits > 0; see flowctl.go).
	flowOn bool

	// rdmaProto caches the world-level half of the RDMA protocol
	// decision (threshold enabled AND no fault plan; Procs additionally
	// require !ft, see Proc.rdmaOK) and rdmaPlace the host-only
	// placement-datapath switch — the RDMA analogue of zeroCopy.
	rdmaProto bool
	rdmaPlace bool

	// ddtDirect caches the host-only gather-direct switch for
	// non-contiguous (derived-datatype) payloads (see Profile.
	// DDTGatherDirect): off stages strided rendezvous and placement
	// traffic through a packed wire image instead.
	ddtDirect bool

	// Fault-tolerance state (see ft.go). ft selects the ULFM-style
	// policy: a rank crash becomes a survivable event instead of a job
	// abort. deathAt is the global failure registry (virtual death
	// times), guarded by failMu while rank goroutines run.
	ft          bool
	failMu      sync.Mutex
	deathAt     map[int]vtime.Time
	deadLetters int64
}

// Context ids 0 and 1 are MPI_COMM_WORLD's point-to-point and
// collective contexts.
const (
	worldPtCtx   int32 = 0
	worldCollCtx int32 = 1
)

// NewWorld creates a world of topo.Size() ranks.
func NewWorld(topo *cluster.Topology, fab *fabric.Fabric, prof Profile) *World {
	if topo == nil || fab == nil {
		panic("nativempi: nil topology or fabric")
	}
	w := &World{topo: topo, fab: fab, prof: prof.normalize()}
	w.zeroCopy = w.prof.ZeroCopyRndv == SwitchOn && fab.Faults() == nil
	w.flowOn = w.prof.EagerCredits > 0
	w.rdmaProto = w.prof.RDMAThreshold > 0 && fab.Faults() == nil
	w.rdmaPlace = w.prof.RDMAPlacement == SwitchOn
	w.ddtDirect = w.prof.DDTGatherDirect == SwitchOn
	w.nextCtx.Store(2)
	w.procs = make([]*Proc, topo.Size())
	for r := range w.procs {
		w.procs[r] = newProc(w, r)
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.topo.Size() }

// Topology returns the machine shape.
func (w *World) Topology() *cluster.Topology { return w.topo }

// Fabric returns the interconnect model.
func (w *World) Fabric() *fabric.Fabric { return w.fab }

// Profile returns the library profile in effect.
func (w *World) Profile() Profile { return w.prof }

// Proc returns the process object for a rank. Intended for tests and
// for the SPMD harness; application code receives its Proc from Run.
func (w *World) Proc(rank int) *Proc {
	if rank < 0 || rank >= len(w.procs) {
		panic(fmt.Sprintf("nativempi: rank %d out of range", rank))
	}
	return w.procs[rank]
}

// allocCtx reserves n fresh context ids and returns the first.
func (w *World) allocCtx(n int32) int32 {
	return w.nextCtx.Add(n) - n
}

// abortError is the panic payload the abort packet raises in blocked
// ranks.
type abortError struct {
	origin int
	reason string
}

func (e abortError) Error() string {
	return fmt.Sprintf("aborted by rank %d: %s", e.origin, e.reason)
}

// Abort wakes every rank of the job and fails it with the given
// reason — MPI_Abort. Blocked ranks unwind out of their MPI calls;
// ranks that already finished are unaffected.
func (w *World) Abort(origin int, reason string) {
	w.abortOnce.Do(func() {
		if eng := w.eng.Load(); eng != nil {
			eng.abort(origin, reason)
			return
		}
		for _, q := range w.procs {
			q.mb.push(&packet{kind: pktAbort, src: origin, data: []byte(reason)})
		}
	})
}

// SetEngineWorkers configures the phase-stepped engine's worker-pool
// width for subsequent Run calls: 0 (the default) sizes the pool to
// GOMAXPROCS, 1 forces serial reference execution, and any n is capped
// at the rank count. Virtual artifacts are byte-identical at every
// width — the knob trades host parallelism only.
func (w *World) SetEngineWorkers(n int) {
	if n < 0 {
		n = 0
	}
	w.engWorkers = n
}

// EngineStats reports the scheduler's host-side counters, accumulated
// across Run calls.
func (w *World) EngineStats() EngineStats { return w.engStats }

// Run executes fn once per rank, each on its own goroutine, and waits
// for all of them — the SPMD model of mpirun. A panic in any rank is
// captured and reported as that rank's error; the first few rank
// errors are joined into the returned error.
//
// A rank that fails (error or panic) ABORTS the job: peers blocked in
// MPI calls are woken and unwound, so one rank's failure can never
// deadlock the harness.
func (w *World) Run(fn func(p *Proc) error) error {
	errs := make([]error, len(w.procs))
	eng := newEngine(w, w.engWorkers)
	w.eng.Store(eng)
	var wg sync.WaitGroup
	for _, p := range w.procs {
		wg.Add(1)
		go func(p *Proc) {
			defer wg.Done()
			defer eng.done(p.rank)
			defer func() {
				if r := recover(); r != nil {
					if ae, ok := r.(abortError); ok {
						errs[p.rank] = ae
						return
					}
					if _, ok := r.(rankCrash); ok {
						// A scheduled death under fault tolerance is
						// scenario, not job failure: the rank simply
						// stops contributing and survivors recover.
						return
					}
					errs[p.rank] = fmt.Errorf("rank %d panicked: %v", p.rank, r)
					w.Abort(p.rank, fmt.Sprintf("peer panic: %v", r))
				}
			}()
			eng.enter(p.rank)
			errs[p.rank] = fn(p)
			if errs[p.rank] != nil {
				w.Abort(p.rank, errs[p.rank].Error())
			}
		}(p)
	}
	wg.Wait()
	w.engStats.Phases += eng.stats.Phases
	w.engStats.Delivered += eng.stats.Delivered
	if eng.stats.MaxPhase > w.engStats.MaxPhase {
		w.engStats.MaxPhase = eng.stats.MaxPhase
	}
	w.engStats.Handoffs += eng.stats.Handoffs
	w.engStats.Yields += eng.stats.Yields
	w.eng.Store(nil)
	w.drainPending()
	var first []error
	for r, err := range errs {
		if err != nil {
			first = append(first, fmt.Errorf("rank %d: %w", r, err))
			if len(first) == 4 {
				first = append(first, fmt.Errorf("... further rank errors suppressed"))
				break
			}
		}
	}
	if len(first) > 0 {
		return joinErrors(first)
	}
	return nil
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msg := errs[0].Error()
	for _, e := range errs[1:] {
		msg += "; " + e.Error()
	}
	return fmt.Errorf("%s", msg)
}

// drainPending processes reliability traffic still sitting in
// mailboxes after every rank's function has returned: acks (and stale
// retransmitted copies) pushed after their destination's last poll.
// The set of packets ever sent is deterministic, but which of them a
// rank's final poll happens to catch is a host-scheduling race — so
// without this drain, counters like AcksReceived would vary run to
// run. Only the reliability layer's bookkeeping runs here (ack
// settlement, duplicate suppression, re-acking); payload delivery is
// never attempted, the ranks are done. Draining one rank can push
// fresh acks into another's mailbox, hence the fixpoint loop; rank
// order keeps it deterministic.
// In fault-tolerant worlds the drain has a second job: a dead rank's
// mailbox keeps accumulating traffic after its death (peers that had
// not yet learned, acks, detector notices), and every payload-class
// packet must still pass the reliability layer's admission exactly as
// it would have in life — generating the ack the sender's protocol
// settled on. The NIC acks posthumously: without this, whether a
// sender's counters see an ack would depend on when the victim died
// relative to host scheduling. Packets admitted at a dead rank are
// counted as dead letters; nothing is delivered. Detector notices and
// revocations are processed here too, so knowledge counters reach the
// same fixpoint whether a rank saw them in life or not.
func (w *World) drainPending() {
	if w.fab.Faults() == nil && !w.ft {
		return
	}
	for {
		again := false
		for _, p := range w.procs {
			_, dead := w.deathAt[p.rank]
			for {
				pkt, ok := p.mb.tryPop()
				if !ok {
					break
				}
				again = true
				if p.flow != nil && pkt.fcGrant > 0 && pkt.src != p.rank {
					// Apply straggler credit grants so the flow counters
					// reach the same fixpoint regardless of when each
					// rank's last poll ran.
					p.fcApplyGrant(pkt)
				}
				switch pkt.kind {
				case pktAck:
					p.handleAck(pkt)
				case pktAbort:
					// The job is already past the point of aborting.
				case pktFailNotice:
					p.handleFailNotice(pkt)
				case pktRevoke:
					p.handleRevoke(pkt)
				case pktCredit:
					// Grant already applied above; the frame has no
					// reliability image to admit.
				default:
					if dead {
						w.deadLetters++
						w.met.Add(p.rank, "ft", "dead_letters", 1)
					}
					if p.rel != nil {
						p.admit(pkt)
					}
				}
			}
		}
		if !again {
			return
		}
	}
}

// MaxClock returns the latest virtual time across all ranks — the
// job's makespan after Run returns.
func (w *World) MaxClock() vtime.Time {
	var maxT vtime.Time
	for _, p := range w.procs {
		maxT = vtime.Max(maxT, p.clock.Now())
	}
	return maxT
}
