package nativempi

import (
	"bytes"
	"fmt"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// profiles under test: every collective must be correct under every
// algorithm selection, so we sweep both library personalities plus
// forced-algorithm profiles.
func collProfiles() map[string]Profile {
	force := func(name string, b BcastAlg, a AllreduceAlg) Profile {
		return Profile{
			Name:            name,
			SelectBcast:     func(n, p int) BcastAlg { return b },
			SelectAllreduce: func(n, p int) AllreduceAlg { return a },
		}
	}
	return map[string]Profile{
		"default":         {},
		"binomial-recdbl": force("f1", BcastBinomial, AllreduceRecursiveDoubling),
		"knomial-ring":    force("f2", BcastKnomial, AllreduceRabenseifner),
		"scatterag-redbc": force("f3", BcastScatterAllgather, AllreduceReduceBcast),
		"binarytree":      force("f4", BcastBinaryTree, AllreduceRecursiveDoubling),
		"flat":            force("f5", BcastFlat, AllreduceReduceBcast),
		"shmaware":        force("f6", BcastShmAware, AllreduceShmAware),
		"multileader":     force("f7", BcastMultiLeader, AllreduceMultiLeader),
		"linear-everything": {
			Name:            "lin",
			SelectReduce:    func(n, p int) ReduceAlg { return ReduceLinear },
			SelectAllgather: func(n, p int) AllgatherAlg { return AllgatherLinear },
			SelectAlltoall:  func(n, p int) AlltoallAlg { return AlltoallLinear },
			SelectBarrier:   func(p int) BarrierAlg { return BarrierLinear },
			SelectGather:    func(n, p int) GatherAlg { return GatherLinear },
			SelectScatter:   func(n, p int) ScatterAlg { return ScatterLinear },
		},
	}
}

func worldWith(prof Profile, nodes, ppn int) *World {
	topo := cluster.New(nodes, ppn)
	return NewWorld(topo, fabric.Default(topo), prof)
}

// sizes exercised: straddle header/chunk boundaries and both
// protocols; communicator sizes include non-powers of two.
var collSizes = []int{0, 8, 64, 1000, 65536}

func forEachConfig(t *testing.T, fn func(t *testing.T, w func() *World, p int)) {
	shapes := [][2]int{{1, 4}, {2, 3}, {4, 4}, {1, 7}}
	for name, prof := range collProfiles() {
		for _, sh := range shapes {
			prof, sh := prof, sh
			t.Run(fmt.Sprintf("%s/%dx%d", name, sh[0], sh[1]), func(t *testing.T) {
				fn(t, func() *World { return worldWith(prof, sh[0], sh[1]) }, sh[0]*sh[1])
			})
		}
	}
}

func TestBcastCorrectness(t *testing.T) {
	forEachConfig(t, func(t *testing.T, mk func() *World, p int) {
		for _, n := range collSizes {
			for _, root := range []int{0, p - 1, p / 2} {
				w := mk()
				want := pattern(n, byte(root+1))
				err := w.Run(func(pr *Proc) error {
					c := pr.CommWorld()
					buf := make([]byte, n)
					if pr.Rank() == root {
						copy(buf, want)
					}
					if err := c.Bcast(buf, root); err != nil {
						return err
					}
					if !bytes.Equal(buf, want) {
						return fmt.Errorf("rank %d: bcast payload wrong (n=%d root=%d)", pr.Rank(), n, root)
					}
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
			}
		}
	})
}

func encodeInts(vals []int64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		putIntNative(b, i*8, jvm.Long, v)
	}
	return b
}

func decodeInts(b []byte) []int64 {
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = getIntNative(b, i*8, jvm.Long)
	}
	return out
}

func TestReduceAndAllreduceSum(t *testing.T) {
	forEachConfig(t, func(t *testing.T, mk func() *World, p int) {
		const elems = 17
		w := mk()
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			vals := make([]int64, elems)
			for i := range vals {
				vals[i] = int64(pr.Rank()*100 + i)
			}
			send := encodeInts(vals)
			recv := make([]byte, len(send))

			// Reduce to root 0.
			if err := c.Reduce(send, recv, jvm.Long, OpSum, 0); err != nil {
				return err
			}
			if pr.Rank() == 0 {
				got := decodeInts(recv)
				for i := range got {
					want := int64(0)
					for r := 0; r < p; r++ {
						want += int64(r*100 + i)
					}
					if got[i] != want {
						return fmt.Errorf("reduce[%d] = %d, want %d", i, got[i], want)
					}
				}
			}

			// Allreduce: everyone gets the same totals.
			recv2 := make([]byte, len(send))
			if err := c.Allreduce(send, recv2, jvm.Long, OpSum); err != nil {
				return err
			}
			got := decodeInts(recv2)
			for i := range got {
				want := int64(0)
				for r := 0; r < p; r++ {
					want += int64(r*100 + i)
				}
				if got[i] != want {
					return fmt.Errorf("rank %d: allreduce[%d] = %d, want %d", pr.Rank(), i, got[i], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllreduceLargeRing(t *testing.T) {
	// Force the ring algorithm on a payload big enough to chunk.
	prof := Profile{SelectAllreduce: func(n, p int) AllreduceAlg { return AllreduceRabenseifner }}
	w := worldWith(prof, 2, 3)
	const elems = 4096
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		vals := make([]int64, elems)
		for i := range vals {
			vals[i] = int64(pr.Rank() + i)
		}
		send := encodeInts(vals)
		recv := make([]byte, len(send))
		if err := c.Allreduce(send, recv, jvm.Long, OpSum); err != nil {
			return err
		}
		got := decodeInts(recv)
		p := c.Size()
		for i := range got {
			want := int64(p*i) + int64(p*(p-1)/2)
			if got[i] != want {
				return fmt.Errorf("rank %d: ring allreduce[%d] = %d, want %d", pr.Rank(), i, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceOps(t *testing.T) {
	w := testWorld(1, 4)
	type c struct {
		op   Op
		want int64 // over ranks 1,2,3,4 (rank+1)
	}
	cases := []c{
		{OpSum, 10}, {OpProd, 24}, {OpMax, 4}, {OpMin, 1},
		{OpBAnd, 0}, {OpBOr, 7}, {OpBXor, 4}, {OpLAnd, 1}, {OpLOr, 1},
	}
	err := w.Run(func(pr *Proc) error {
		comm := pr.CommWorld()
		for _, tc := range cases {
			send := encodeInts([]int64{int64(pr.Rank() + 1)})
			recv := make([]byte, 8)
			if err := comm.Allreduce(send, recv, jvm.Long, tc.op); err != nil {
				return err
			}
			if got := decodeInts(recv)[0]; got != tc.want {
				return fmt.Errorf("%v = %d, want %d", tc.op, got, tc.want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloatReduce(t *testing.T) {
	w := testWorld(1, 3)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		send := make([]byte, 8)
		putFloatNative(send, 0, jvm.Double, float64(pr.Rank())+0.5)
		recv := make([]byte, 8)
		if err := c.Allreduce(send, recv, jvm.Double, OpSum); err != nil {
			return err
		}
		if got := getFloatNative(recv, 0, jvm.Double); got != 4.5 {
			return fmt.Errorf("float sum = %v, want 4.5", got)
		}
		if err := c.Allreduce(send, recv, jvm.Double, OpMax); err != nil {
			return err
		}
		if got := getFloatNative(recv, 0, jvm.Double); got != 2.5 {
			return fmt.Errorf("float max = %v, want 2.5", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatterCorrectness(t *testing.T) {
	forEachConfig(t, func(t *testing.T, mk func() *World, p int) {
		const n = 24
		for _, root := range []int{0, p - 1} {
			w := mk()
			err := w.Run(func(pr *Proc) error {
				c := pr.CommWorld()
				// Gather
				send := pattern(n, byte(pr.Rank()))
				var recv []byte
				if pr.Rank() == root {
					recv = make([]byte, n*p)
				}
				if err := c.Gather(send, recv, root); err != nil {
					return err
				}
				if pr.Rank() == root {
					for r := 0; r < p; r++ {
						if !bytes.Equal(recv[r*n:(r+1)*n], pattern(n, byte(r))) {
							return fmt.Errorf("gather block %d corrupted (root=%d)", r, root)
						}
					}
				}
				// Scatter back
				out := make([]byte, n)
				if err := c.Scatter(recv, out, root); err != nil {
					return err
				}
				if !bytes.Equal(out, pattern(n, byte(pr.Rank()))) {
					return fmt.Errorf("rank %d: scatter block corrupted (root=%d)", pr.Rank(), root)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestAllgatherCorrectness(t *testing.T) {
	forEachConfig(t, func(t *testing.T, mk func() *World, p int) {
		const n = 16
		w := mk()
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			recv := make([]byte, n*p)
			if err := c.Allgather(pattern(n, byte(pr.Rank())), recv); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				if !bytes.Equal(recv[r*n:(r+1)*n], pattern(n, byte(r))) {
					return fmt.Errorf("rank %d: allgather block %d corrupted", pr.Rank(), r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestAlltoallCorrectness(t *testing.T) {
	forEachConfig(t, func(t *testing.T, mk func() *World, p int) {
		const n = 8
		w := mk()
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			send := make([]byte, n*p)
			for r := 0; r < p; r++ {
				copy(send[r*n:(r+1)*n], pattern(n, byte(pr.Rank()*16+r)))
			}
			recv := make([]byte, n*p)
			if err := c.Alltoall(send, recv); err != nil {
				return err
			}
			for r := 0; r < p; r++ {
				want := pattern(n, byte(r*16+pr.Rank()))
				if !bytes.Equal(recv[r*n:(r+1)*n], want) {
					return fmt.Errorf("rank %d: alltoall block from %d corrupted", pr.Rank(), r)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestBarrierSynchronises(t *testing.T) {
	forEachConfig(t, func(t *testing.T, mk func() *World, p int) {
		w := mk()
		err := w.Run(func(pr *Proc) error {
			// Rank p-1 arrives late; after the barrier everyone's clock
			// must be at least its arrival time.
			if pr.Rank() == pr.CommWorld().Size()-1 {
				pr.Clock().Advance(vtime.Micros(777))
			}
			if err := pr.CommWorld().Barrier(); err != nil {
				return err
			}
			if pr.Clock().Now() < vtime.Time(vtime.Micros(777)) {
				return fmt.Errorf("rank %d left the barrier at %v, before the last arrival",
					pr.Rank(), pr.Clock().Now())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestVectorCollectives(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		p := c.Size()
		me := pr.Rank()
		// Rank r contributes r+1 bytes.
		counts := make([]int, p)
		displs := make([]int, p)
		total := 0
		for r := 0; r < p; r++ {
			counts[r] = r + 1
			displs[r] = total
			total += counts[r]
		}
		send := pattern(me+1, byte(me+40))

		// Gatherv to root 1.
		var gbuf []byte
		if me == 1 {
			gbuf = make([]byte, total)
		}
		if err := c.Gatherv(send, gbuf, counts, displs, 1); err != nil {
			return err
		}
		if me == 1 {
			for r := 0; r < p; r++ {
				if !bytes.Equal(gbuf[displs[r]:displs[r]+counts[r]], pattern(r+1, byte(r+40))) {
					return fmt.Errorf("gatherv block %d corrupted", r)
				}
			}
		}

		// Scatterv from root 1.
		out := make([]byte, me+1)
		if err := c.Scatterv(gbuf, counts, displs, out, 1); err != nil {
			return err
		}
		if !bytes.Equal(out, send) {
			return fmt.Errorf("rank %d: scatterv round-trip corrupted", me)
		}

		// Allgatherv.
		abuf := make([]byte, total)
		if err := c.Allgatherv(send, abuf, counts, displs); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if !bytes.Equal(abuf[displs[r]:displs[r]+counts[r]], pattern(r+1, byte(r+40))) {
				return fmt.Errorf("rank %d: allgatherv block %d corrupted", me, r)
			}
		}

		// Alltoallv: rank s sends s+r+1 bytes to rank r.
		sc := make([]int, p)
		sd := make([]int, p)
		tot := 0
		for r := 0; r < p; r++ {
			sc[r] = me + r + 1
			sd[r] = tot
			tot += sc[r]
		}
		sbuf := make([]byte, tot)
		for r := 0; r < p; r++ {
			copy(sbuf[sd[r]:sd[r]+sc[r]], pattern(sc[r], byte(me*8+r)))
		}
		rc := make([]int, p)
		rd := make([]int, p)
		tot = 0
		for r := 0; r < p; r++ {
			rc[r] = r + me + 1
			rd[r] = tot
			tot += rc[r]
		}
		rbuf := make([]byte, tot)
		if err := c.Alltoallv(sbuf, sc, sd, rbuf, rc, rd); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if !bytes.Equal(rbuf[rd[r]:rd[r]+rc[r]], pattern(rc[r], byte(r*8+me))) {
				return fmt.Errorf("rank %d: alltoallv block from %d corrupted", me, r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVectorValidation(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		bad := []int{1, 1, 1} // wrong length
		displs := []int{0, 1}
		if pr.Rank() == 0 {
			err := c.Gatherv(make([]byte, 1), make([]byte, 2), bad, displs, 0)
			if err == nil {
				return fmt.Errorf("Gatherv accepted mismatched counts")
			}
			// Out-of-range displacement.
			err = c.Gatherv(make([]byte, 1), make([]byte, 2), []int{1, 5}, displs, 0)
			if err == nil {
				return fmt.Errorf("Gatherv accepted out-of-range slice")
			}
			// Consume the send rank 1 issued for the first (failed on
			// root, but rank 1 doesn't know) call... rank 1 sends
			// nothing because the calls validate before communicating
			// on the root; non-roots validate only their own args.
			return nil
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSuccessiveCollectivesDoNotInterfere(t *testing.T) {
	// Back-to-back collectives with different payloads must not
	// cross-match (rolling tags).
	w := testWorld(1, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		for round := 0; round < 20; round++ {
			buf := make([]byte, 32)
			want := pattern(32, byte(round))
			if pr.Rank() == round%4 {
				copy(buf, want)
			}
			if err := c.Bcast(buf, round%4); err != nil {
				return err
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("round %d corrupted on rank %d", round, pr.Rank())
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastInvalidRoot(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		if err := pr.CommWorld().Bcast(nil, 5); err == nil {
			return fmt.Errorf("Bcast accepted invalid root")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfCommCollectives(t *testing.T) {
	w := testWorld(1, 1)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if err := c.Bcast(make([]byte, 8), 0); err != nil {
			return err
		}
		send := encodeInts([]int64{42})
		recv := make([]byte, 8)
		if err := c.Allreduce(send, recv, jvm.Long, OpSum); err != nil {
			return err
		}
		if decodeInts(recv)[0] != 42 {
			return fmt.Errorf("single-rank allreduce wrong")
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
