package nativempi

import (
	"fmt"
	"testing"

	"mv2j/internal/jvm"
)

func TestScanCorrectness(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {1, 4}, {2, 3}, {1, 7}} {
		w := testWorld(shape[0], shape[1])
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			const elems = 5
			vals := make([]int64, elems)
			for i := range vals {
				vals[i] = int64((pr.Rank() + 1) * (i + 1))
			}
			send := encodeInts(vals)
			recv := make([]byte, len(send))
			if err := c.Scan(send, recv, jvm.Long, OpSum); err != nil {
				return err
			}
			got := decodeInts(recv)
			for i := range got {
				want := int64(0)
				for r := 0; r <= pr.Rank(); r++ {
					want += int64((r + 1) * (i + 1))
				}
				if got[i] != want {
					return fmt.Errorf("rank %d: scan[%d] = %d, want %d", pr.Rank(), i, got[i], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
	}
}

func TestScanMaxOp(t *testing.T) {
	w := testWorld(1, 5)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		// Values zig-zag so the running max is interesting: 3,1,4,1,5.
		vals := []int64{3, 1, 4, 1, 5}
		send := encodeInts([]int64{vals[pr.Rank()]})
		recv := make([]byte, 8)
		if err := c.Scan(send, recv, jvm.Long, OpMax); err != nil {
			return err
		}
		want := []int64{3, 3, 4, 4, 5}[pr.Rank()]
		if got := decodeInts(recv)[0]; got != want {
			return fmt.Errorf("rank %d: scan max = %d, want %d", pr.Rank(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExscanCorrectness(t *testing.T) {
	for _, shape := range [][2]int{{1, 2}, {1, 5}, {2, 4}} {
		w := testWorld(shape[0], shape[1])
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			send := encodeInts([]int64{int64(pr.Rank() + 1), int64(10 * (pr.Rank() + 1))})
			recv := encodeInts([]int64{-7, -7}) // sentinel: rank 0 keeps it
			if err := c.Exscan(send, recv, jvm.Long, OpSum); err != nil {
				return err
			}
			got := decodeInts(recv)
			if pr.Rank() == 0 {
				if got[0] != -7 || got[1] != -7 {
					return fmt.Errorf("rank 0 exscan buffer must be untouched, got %v", got)
				}
				return nil
			}
			r := pr.Rank()
			want0 := int64(r * (r + 1) / 2)
			if got[0] != want0 || got[1] != want0*10 {
				return fmt.Errorf("rank %d: exscan = %v, want [%d %d]", r, got, want0, want0*10)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
	}
}

func TestScanValidation(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if err := c.Scan(make([]byte, 8), make([]byte, 4), jvm.Long, OpSum); err == nil {
			return fmt.Errorf("mismatched scan buffers accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterUniform(t *testing.T) {
	for _, shape := range [][2]int{{1, 4}, {2, 3}} {
		w := testWorld(shape[0], shape[1])
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			p := c.Size()
			const elems = 3 // per block
			counts := make([]int, p)
			for r := range counts {
				counts[r] = elems * 8
			}
			vals := make([]int64, elems*p)
			for i := range vals {
				vals[i] = int64(pr.Rank()*1000 + i)
			}
			send := encodeInts(vals)
			recv := make([]byte, elems*8)
			if err := c.ReduceScatter(send, recv, counts, jvm.Long, OpSum); err != nil {
				return err
			}
			got := decodeInts(recv)
			for i := range got {
				idx := pr.Rank()*elems + i
				want := int64(0)
				for r := 0; r < p; r++ {
					want += int64(r*1000 + idx)
				}
				if got[i] != want {
					return fmt.Errorf("rank %d: reduce_scatter[%d] = %d, want %d", pr.Rank(), i, got[i], want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
	}
}

func TestReduceScatterIrregular(t *testing.T) {
	w := testWorld(1, 3)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		// Blocks of 1, 2, 3 longs.
		counts := []int{8, 16, 24}
		vals := make([]int64, 6)
		for i := range vals {
			vals[i] = int64(pr.Rank() + i)
		}
		send := encodeInts(vals)
		recv := make([]byte, counts[pr.Rank()])
		if err := c.ReduceScatter(send, recv, counts, jvm.Long, OpSum); err != nil {
			return err
		}
		got := decodeInts(recv)
		base := []int{0, 1, 3}[pr.Rank()]
		for i := range got {
			want := int64(3*(base+i)) + 3 // sum over ranks 0..2 of (r + idx)
			if got[i] != want {
				return fmt.Errorf("rank %d: irregular rs[%d] = %d, want %d", pr.Rank(), i, got[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceScatterValidation(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if err := c.ReduceScatter(make([]byte, 16), make([]byte, 8), []int{8}, jvm.Long, OpSum); err == nil {
			return fmt.Errorf("short counts accepted")
		}
		if err := c.ReduceScatter(make([]byte, 12), make([]byte, 8), []int{8, 8}, jvm.Long, OpSum); err == nil {
			return fmt.Errorf("bad send size accepted")
		}
		if err := c.ReduceScatter(make([]byte, 16), make([]byte, 4), []int{8, 8}, jvm.Long, OpSum); err == nil {
			return fmt.Errorf("bad recv size accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
