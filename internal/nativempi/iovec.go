package nativempi

import "fmt"

// Non-contiguous payload descriptors. A derived-datatype message is not
// one span of bytes but an ordered set of (offset, length) runs over a
// single spanning user region. The bindings layer flattens a committed
// datatype into this canonical form once, and the transport moves the
// runs directly — gathering into a wire buffer at the eager tier,
// borrowing the whole descriptor on the zero-copy rendezvous path, or
// scattering straight into the receiver's strided destination on the
// RDMA placement path — without ever materialising an intermediate
// packed image unless the datapath switch forces one.

// Run is one contiguous byte extent of an IOVec, relative to Full[0].
type Run struct {
	Off int
	Len int
}

// IOVec describes a non-contiguous payload: ascending, disjoint,
// pre-coalesced byte runs over one spanning region of the user's
// buffer. Full covers the whole strided footprint (first byte of the
// first run through last byte of the last run lie inside it) — the
// registration cache pins Full, exactly as an RDMA NIC registers the
// page range, while only the runs carry payload. N is the payload byte
// total across runs.
type IOVec struct {
	Full []byte
	Runs []Run
	N    int
}

// NewIOVec validates a run list against its spanning region and
// returns the descriptor. Malformed layouts are construction bugs in
// the bindings layer, not runtime conditions, so they panic
// deterministically (the FUNNELED/SERIALIZED precedent) rather than
// surface as corrupted payloads later. Adjacent runs are coalesced.
func NewIOVec(full []byte, runs []Run) *IOVec {
	if len(runs) == 0 {
		panic("nativempi: IOVec with no runs")
	}
	v := &IOVec{Full: full, Runs: make([]Run, 0, len(runs))}
	end := 0
	for i, r := range runs {
		if r.Len <= 0 {
			panic(fmt.Sprintf("nativempi: IOVec run %d has non-positive length %d", i, r.Len))
		}
		if r.Off < end {
			panic(fmt.Sprintf("nativempi: IOVec run %d at offset %d overlaps or reorders the previous run ending at %d", i, r.Off, end))
		}
		if r.Off+r.Len > len(full) {
			panic(fmt.Sprintf("nativempi: IOVec run %d [%d,%d) exceeds the %d-byte spanning region", i, r.Off, r.Off+r.Len, len(full)))
		}
		if k := len(v.Runs) - 1; k >= 0 && v.Runs[k].Off+v.Runs[k].Len == r.Off {
			v.Runs[k].Len += r.Len
		} else {
			v.Runs = append(v.Runs, r)
		}
		end = r.Off + r.Len
		v.N += r.Len
	}
	return v
}

// gatherInto packs the runs into dst in order, stopping when dst is
// full, and returns the bytes moved — one logical host memcpy however
// many runs it touches.
func (v *IOVec) gatherInto(dst []byte) int {
	moved := 0
	for _, r := range v.Runs {
		if moved >= len(dst) {
			break
		}
		moved += copy(dst[moved:], v.Full[r.Off:r.Off+r.Len])
	}
	return moved
}

// scatterFrom unpacks a contiguous image into the runs in order,
// stopping when src is exhausted, and returns the bytes moved.
func (v *IOVec) scatterFrom(src []byte) int {
	moved := 0
	for _, r := range v.Runs {
		if moved >= len(src) {
			break
		}
		moved += copy(v.Full[r.Off:r.Off+r.Len], src[moved:])
	}
	return moved
}

// vecCopy streams src's runs into dst's runs two-pointer style — the
// strided-to-strided direct placement — and returns the bytes moved
// (min of the two payload totals).
func vecCopy(dst, src *IOVec) int {
	moved := 0
	di, doff := 0, 0
	for _, sr := range src.Runs {
		soff := 0
		for soff < sr.Len && di < len(dst.Runs) {
			dr := dst.Runs[di]
			n := sr.Len - soff
			if rem := dr.Len - doff; rem < n {
				n = rem
			}
			copy(dst.Full[dr.Off+doff:dr.Off+doff+n], src.Full[sr.Off+soff:sr.Off+soff+n])
			moved += n
			soff += n
			doff += n
			if doff == dr.Len {
				di, doff = di+1, 0
			}
		}
		if di == len(dst.Runs) {
			break
		}
	}
	return moved
}

// CountHostCopy records one n-byte host payload memcpy performed by a
// layer above the native runtime — bindings staging, MPI.Pack/Unpack,
// heap-buffer bounce copies — so BENCH_OMB.json's bytes_copied
// guardrail sees the whole datapath, not just the transport's own
// memcpys. Host accounting only; no clock is touched.
func (p *Proc) CountHostCopy(n int) {
	if n > 0 {
		p.copyStats.count(n)
	}
}
