package nativempi

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"

	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

func TestIbcastCorrectness(t *testing.T) {
	for _, shape := range [][2]int{{1, 4}, {2, 3}, {2, 4}} {
		w := testWorld(shape[0], shape[1])
		want := pattern(512, 5)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			buf := make([]byte, 512)
			if p.Rank() == 0 {
				copy(buf, want)
			}
			req, err := c.Ibcast(buf, 0)
			if err != nil {
				return err
			}
			if err := req.Wait(); err != nil {
				return err
			}
			if !bytes.Equal(buf, want) {
				return fmt.Errorf("rank %d: ibcast payload wrong", p.Rank())
			}
			// Waiting again is a no-op.
			return req.Wait()
		})
		if err != nil {
			t.Fatalf("%dx%d: %v", shape[0], shape[1], err)
		}
	}
}

func TestIallreduceCorrectness(t *testing.T) {
	for _, shape := range [][2]int{{1, 4}, {2, 3}, {1, 7}} {
		w := testWorld(shape[0], shape[1])
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			p := c.Size()
			send := encodeInts([]int64{int64(pr.Rank()), int64(pr.Rank() * 10)})
			recv := make([]byte, len(send))
			req, err := c.Iallreduce(send, recv, jvm.Long, OpSum)
			if err != nil {
				return err
			}
			if err := req.Wait(); err != nil {
				return err
			}
			got := decodeInts(recv)
			wantA := int64(p * (p - 1) / 2)
			if got[0] != wantA || got[1] != wantA*10 {
				return fmt.Errorf("rank %d: iallreduce = %v, want [%d %d]", pr.Rank(), got, wantA, wantA*10)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%dx%d: %v", shape[0], shape[1], err)
		}
	}
}

func TestIreduceCorrectness(t *testing.T) {
	w := testWorld(2, 3)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		send := encodeInts([]int64{int64(pr.Rank() + 1)})
		var recv []byte
		if pr.Rank() == 2 {
			recv = make([]byte, 8)
		}
		req, err := c.Ireduce(send, recv, jvm.Long, OpProd, 2)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if pr.Rank() == 2 {
			if got := decodeInts(recv)[0]; got != 720 { // 6!
				return fmt.Errorf("ireduce = %d, want 720", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIallgatherCorrectness(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		p := c.Size()
		const n = 16
		recv := make([]byte, n*p)
		req, err := c.Iallgather(pattern(n, byte(pr.Rank())), recv)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		for r := 0; r < p; r++ {
			if !bytes.Equal(recv[r*n:(r+1)*n], pattern(n, byte(r))) {
				return fmt.Errorf("rank %d: iallgather block %d corrupted", pr.Rank(), r)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIbarrierSynchronises(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() == 3 {
			pr.Clock().Advance(vtime.Micros(321))
		}
		req, err := pr.CommWorld().Ibarrier()
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if pr.Clock().Now() < vtime.Time(vtime.Micros(321)) {
			return fmt.Errorf("rank %d passed the ibarrier before the last arrival", pr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingOverlapsCompute(t *testing.T) {
	// The point of non-blocking collectives: compute inserted between
	// initiation and Wait hides the communication. A receiving rank
	// that computes while its (eager) message is in flight pays
	// max(compute, arrival), not compute + arrival. The payload stays
	// below the eager thresholds: a rendezvous transfer cannot overlap
	// without software progress, which is its own test below.
	const computeUs = 80.0
	run := func(overlap bool) vtime.Duration {
		w := testWorld(2, 2)
		var total vtime.Duration
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			buf := make([]byte, 4096)
			sw := vtime.StartStopwatch(pr.Clock())
			compute := func() {
				if pr.Rank() == 2 { // a direct child on the remote node
					pr.Clock().Advance(vtime.Micros(computeUs))
				}
			}
			if overlap {
				req, err := c.Ibcast(buf, 0)
				if err != nil {
					return err
				}
				compute()
				if err := req.Wait(); err != nil {
					return err
				}
			} else {
				if err := c.Bcast(buf, 0); err != nil {
					return err
				}
				compute()
			}
			if pr.Rank() == 2 {
				total = sw.Elapsed()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	overlapped := run(true)
	serial := run(false)
	if overlapped.Micros() > serial.Micros()-1 {
		t.Fatalf("ibcast+compute (%v) must clearly beat bcast;compute (%v) on the computing rank",
			overlapped, serial)
	}
}

func TestSoftwareProgressSemantics(t *testing.T) {
	// A middle-of-tree rank that computes before waiting delays its
	// subtree: software progress, no progress thread. Rank 0 is the
	// root of the binomial tree over 4 ranks (children 2 and 1; rank 2
	// serves rank 3).
	stallRank2 := func(stallUs float64) vtime.Time {
		w := testWorld(1, 4)
		var leafDone vtime.Time
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			buf := make([]byte, 4096)
			req, err := c.Ibcast(buf, 0)
			if err != nil {
				return err
			}
			if pr.Rank() == 2 {
				pr.Clock().Advance(vtime.Micros(stallUs))
			}
			if err := req.Wait(); err != nil {
				return err
			}
			if pr.Rank() == 3 {
				leafDone = pr.Clock().Now()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return leafDone
	}
	prompt := stallRank2(0)
	delayed := stallRank2(200)
	if delayed < prompt.Add(vtime.Micros(150)) {
		t.Fatalf("rank 3 finished at %v despite its parent stalling (prompt: %v); schedules must progress only in Test/Wait",
			delayed, prompt)
	}
}

func TestCollRequestTestPolling(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		buf := make([]byte, 128)
		req, err := c.Ibcast(buf, 0)
		if err != nil {
			return err
		}
		// Poll until done; must terminate. The peer's packet arrival
		// is a host-scheduling race, so yield between polls.
		for i := 0; ; i++ {
			done, err := req.Test()
			if err != nil {
				return err
			}
			if done {
				break
			}
			if i > 1_000_000 {
				return fmt.Errorf("rank %d: Test never completed", pr.Rank())
			}
			runtime.Gosched()
		}
		if !req.Done() {
			return fmt.Errorf("Done() false after completion")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNilCollRequest(t *testing.T) {
	var r *CollRequest
	if err := r.Wait(); err == nil {
		t.Fatal("nil Wait must error")
	}
	if _, err := r.Test(); err == nil {
		t.Fatal("nil Test must error")
	}
	if r.Done() {
		t.Fatal("nil Done must be false")
	}
}

func TestIallreduceValidation(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		if _, err := c.Iallreduce(make([]byte, 8), make([]byte, 4), jvm.Long, OpSum); err == nil {
			return fmt.Errorf("mismatched iallreduce buffers accepted")
		}
		if _, err := c.Ibcast(nil, 7); err == nil {
			return fmt.Errorf("invalid ibcast root accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
