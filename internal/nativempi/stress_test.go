package nativempi

import (
	"bytes"
	"fmt"
	"testing"

	"mv2j/internal/vtime"
)

// xorshift is a tiny deterministic PRNG for schedule generation.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// TestRandomTrafficProperty generates deterministic pseudo-random
// matched traffic schedules — every rank knows the full schedule and
// plays its part with a mix of blocking and non-blocking calls,
// eager and rendezvous sizes — then verifies every payload and that
// the run terminates. This is the closest thing to a model-checking
// pass over the matching engine.
func TestRandomTrafficProperty(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runRandomSchedule(t, seed)
		})
	}
}

type xferOp struct {
	src, dst int
	tag      int
	size     int
	nonBlock bool
}

func runRandomSchedule(t *testing.T, seed uint64) {
	t.Helper()
	rng := xorshift(seed*2654435761 + 1)
	nodes := int(rng.next()%2) + 1
	ppn := int(rng.next()%3) + 2
	w := testWorld(nodes, ppn)
	p := w.Size()

	// Generate the schedule: a list of transfers, each with a unique
	// tag so the verification is exact regardless of completion order.
	nOps := 20 + int(rng.next()%30)
	ops := make([]xferOp, nOps)
	for i := range ops {
		src := int(rng.next() % uint64(p))
		dst := int(rng.next() % uint64(p))
		if dst == src {
			dst = (dst + 1) % p
		}
		size := 1 << (rng.next() % 16) // 1B .. 32KB: spans both protocols
		ops[i] = xferOp{
			src: src, dst: dst, tag: i,
			size:     size,
			nonBlock: rng.next()%2 == 0,
		}
	}

	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		me := pr.Rank()
		// Post all my non-blocking operations first, then run the
		// blocking ones in schedule order, then drain.
		var pending []*Request
		var checks []func() error
		for _, op := range ops {
			op := op
			switch {
			case op.src == me && op.nonBlock:
				req, err := c.Isend(pattern(op.size, byte(op.tag)), op.dst, op.tag)
				if err != nil {
					return err
				}
				pending = append(pending, req)
			case op.dst == me && op.nonBlock:
				buf := make([]byte, op.size)
				req, err := c.Irecv(buf, op.src, op.tag)
				if err != nil {
					return err
				}
				pending = append(pending, req)
				checks = append(checks, func() error {
					if !bytes.Equal(buf, pattern(op.size, byte(op.tag))) {
						return fmt.Errorf("op %d: payload corrupted", op.tag)
					}
					return nil
				})
			}
		}
		for _, op := range ops {
			op := op
			switch {
			case op.src == me && !op.nonBlock:
				if err := c.Send(pattern(op.size, byte(op.tag)), op.dst, op.tag); err != nil {
					return err
				}
			case op.dst == me && !op.nonBlock:
				buf := make([]byte, op.size)
				if _, err := c.Recv(buf, op.src, op.tag); err != nil {
					return err
				}
				if !bytes.Equal(buf, pattern(op.size, byte(op.tag))) {
					return fmt.Errorf("op %d: payload corrupted (blocking)", op.tag)
				}
			}
		}
		if err := Waitall(pending); err != nil {
			return err
		}
		for _, check := range checks {
			if err := check(); err != nil {
				return err
			}
		}
		// Everyone must agree the schedule is over.
		return c.Barrier()
	})
	if err != nil {
		t.Fatalf("seed %d (%d ranks, %d ops): %v", seed, p, nOps, err)
	}
}

// TestRandomTrafficDeterministicTimes: the same schedule must produce
// identical per-rank virtual end times across runs.
func TestRandomTrafficDeterministicTimes(t *testing.T) {
	run := func() []vtime.Time {
		rng := xorshift(99)
		w := testWorld(2, 2)
		p := w.Size()
		nOps := 24
		type op struct{ src, dst, tag, size int }
		ops := make([]op, nOps)
		for i := range ops {
			src := int(rng.next() % uint64(p))
			dst := (src + 1 + int(rng.next()%uint64(p-1))) % p
			ops[i] = op{src, dst, i, 1 << (rng.next() % 14)}
		}
		err := w.Run(func(pr *Proc) error {
			c := pr.CommWorld()
			var pending []*Request
			for _, o := range ops {
				if o.src == pr.Rank() {
					req, err := c.Isend(make([]byte, o.size), o.dst, o.tag)
					if err != nil {
						return err
					}
					pending = append(pending, req)
				}
				if o.dst == pr.Rank() {
					req, err := c.Irecv(make([]byte, o.size), o.src, o.tag)
					if err != nil {
						return err
					}
					pending = append(pending, req)
				}
			}
			return Waitall(pending)
		})
		if err != nil {
			t.Fatal(err)
		}
		times := make([]vtime.Time, p)
		for r := 0; r < p; r++ {
			times[r] = w.Proc(r).Clock().Now()
		}
		return times
	}
	a := run()
	for trial := 0; trial < 4; trial++ {
		b := run()
		for r := range a {
			if a[r] != b[r] {
				t.Fatalf("trial %d: rank %d time %v != %v — nondeterministic", trial, r, b[r], a[r])
			}
		}
	}
}
