package nativempi

import (
	"bytes"
	"fmt"
	"testing"
)

func TestDup(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		dup, err := c.Dup()
		if err != nil {
			return err
		}
		if dup.Rank() != c.Rank() || dup.Size() != c.Size() {
			return fmt.Errorf("dup shape wrong: %d/%d", dup.Rank(), dup.Size())
		}
		// Traffic on the two communicators must not cross-match, even
		// with identical (src, tag): send on dup, then on world, and
		// receive world-first.
		if pr.Rank() == 0 {
			if err := dup.Send([]byte{0xDD}, 1, 0); err != nil {
				return err
			}
			if err := c.Send([]byte{0xEE}, 1, 0); err != nil {
				return err
			}
			return nil
		}
		if pr.Rank() == 1 {
			buf := make([]byte, 1)
			if _, err := c.Recv(buf, 0, 0); err != nil {
				return err
			}
			if buf[0] != 0xEE {
				return fmt.Errorf("world recv got dup traffic: %#x", buf[0])
			}
			if _, err := dup.Recv(buf, 0, 0); err != nil {
				return err
			}
			if buf[0] != 0xDD {
				return fmt.Errorf("dup recv got %#x", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitByParity(t *testing.T) {
	w := testWorld(2, 3) // 6 ranks
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		color := pr.Rank() % 2
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if sub == nil {
			return fmt.Errorf("rank %d got nil subcomm", pr.Rank())
		}
		if sub.Size() != 3 {
			return fmt.Errorf("subcomm size %d, want 3", sub.Size())
		}
		if want := pr.Rank() / 2; sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank %d, want %d", pr.Rank(), sub.Rank(), want)
		}
		// A collective inside the subcomm sees only its members.
		buf := make([]byte, 8)
		if sub.Rank() == 0 {
			copy(buf, pattern(8, byte(color+1)))
		}
		if err := sub.Bcast(buf, 0); err != nil {
			return err
		}
		if !bytes.Equal(buf, pattern(8, byte(color+1))) {
			return fmt.Errorf("rank %d: subcomm bcast leaked across colors", pr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyReordersRanks(t *testing.T) {
	w := testWorld(1, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		// One color; keys reverse the order.
		sub, err := c.Split(0, c.Size()-pr.Rank())
		if err != nil {
			return err
		}
		if want := c.Size() - 1 - pr.Rank(); sub.Rank() != want {
			return fmt.Errorf("rank %d: sub rank %d, want %d", pr.Rank(), sub.Rank(), want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitUndefined(t *testing.T) {
	w := testWorld(1, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		color := Undefined
		if pr.Rank() < 2 {
			color = 0
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if pr.Rank() < 2 {
			if sub == nil || sub.Size() != 2 {
				return fmt.Errorf("rank %d: expected 2-rank subcomm", pr.Rank())
			}
			return sub.Barrier()
		}
		if sub != nil {
			return fmt.Errorf("rank %d: Undefined color must yield nil comm", pr.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateFromGroup(t *testing.T) {
	w := testWorld(1, 5)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		sub, err := c.CreateFromGroup([]int{4, 1, 3})
		if err != nil {
			return err
		}
		inGroup := pr.Rank() == 4 || pr.Rank() == 1 || pr.Rank() == 3
		if !inGroup {
			if sub != nil {
				return fmt.Errorf("rank %d should be outside the group", pr.Rank())
			}
			return nil
		}
		// Group order defines ranks: 4->0, 1->1, 3->2.
		want := map[int]int{4: 0, 1: 1, 3: 2}[pr.Rank()]
		if sub.Rank() != want {
			return fmt.Errorf("rank %d: group rank %d, want %d", pr.Rank(), sub.Rank(), want)
		}
		if sub.WorldRank(0) != 4 {
			return fmt.Errorf("WorldRank(0) = %d", sub.WorldRank(0))
		}
		// Point-to-point within the subcomm with status translation.
		if sub.Rank() == 0 {
			return sub.Send([]byte{7}, 2, 0)
		}
		if sub.Rank() == 2 {
			buf := make([]byte, 1)
			st, err := sub.Recv(buf, 0, 0)
			if err != nil {
				return err
			}
			if st.Source != 0 {
				return fmt.Errorf("status source %d, want comm rank 0", st.Source)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitTypeShared(t *testing.T) {
	w := testWorld(3, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		node, err := c.SplitType(0)
		if err != nil {
			return err
		}
		if node.Size() != 4 {
			return fmt.Errorf("node comm size %d, want 4", node.Size())
		}
		want := w.Topology().LocalRank(pr.Rank())
		if node.Rank() != want {
			return fmt.Errorf("rank %d: node rank %d, want %d", pr.Rank(), node.Rank(), want)
		}
		// Every member must really share the node.
		for _, wr := range node.Group() {
			if !w.Topology().SameNode(wr, pr.Rank()) {
				return fmt.Errorf("rank %d grouped with off-node rank %d", pr.Rank(), wr)
			}
		}
		return node.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	// Split a split: node-local communicators out of parity comms.
	w := testWorld(2, 4)
	err := w.Run(func(pr *Proc) error {
		c := pr.CommWorld()
		sub, err := c.Split(pr.Rank()%2, 0)
		if err != nil {
			return err
		}
		node := w.Topology().NodeOf(pr.Rank())
		sub2, err := sub.Split(node, 0)
		if err != nil {
			return err
		}
		if sub2.Size() != 2 {
			return fmt.Errorf("nested split size %d, want 2", sub2.Size())
		}
		return sub2.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankBounds(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() != 0 {
			return nil
		}
		defer func() {
			if recover() == nil {
				t.Error("WorldRank out of range did not panic")
			}
		}()
		pr.CommWorld().WorldRank(5)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	w := testWorld(1, 2)
	err := w.Run(func(pr *Proc) error {
		if pr.Rank() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("Run swallowed a rank panic")
	}
}
