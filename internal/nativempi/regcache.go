package nativempi

import "mv2j/internal/vtime"

// Pin-down registration cache. RDMA requires both endpoints of a
// placement to register (pin) the pages backing their buffers with the
// NIC — an expensive driver operation. MVAPICH2's regcache amortizes
// that cost by keeping registrations alive across reuses of the same
// buffer: a repeat transfer from a cached buffer pays nothing, and only
// capacity pressure (entry count or pinned-byte budget) deregisters the
// least recently used entry. This file models those economics — every
// register/deregister charge is virtual time returned to the caller —
// plus the host-side hit/miss/evict accounting hostbench reports.
//
// Determinism: the cache is keyed by the buffer's base address, which
// differs run to run — but the HIT/MISS PATTERN cannot. An entry
// retains a reference to the registered buffer, so the Go allocator
// cannot reuse a live entry's address for a different object; a lookup
// therefore hits exactly when the program re-presents the same buffer
// it registered earlier, which is pure program order. Evicted entries
// drop both the map slot and the reference together, so a recycled
// address can only ever miss. The cache is per-rank and rank-confined,
// like the clock it charges.

// regEntry is one live registration. Entries form an intrusive ring
// ordered least → most recently used around the cache's sentinel.
type regEntry struct {
	key        *byte  // base address, also the map key
	buf        []byte // retained: keeps the address from being recycled
	n          int    // registered length in bytes
	locked     bool   // sticky (an exposed RMA window): never evicted
	prev, next *regEntry
}

// RegStats is the host-side accounting of one rank's registration
// cache, aggregated into HostStats. Hits/Misses/Evictions also feed
// the deterministic metrics registry (they are protocol state, not
// host-speed state); the byte gauges are hostbench material only.
type RegStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	BytesReg    int64 `json:"bytes_registered"` // cumulative bytes pinned
	PinnedBytes int64 `json:"pinned_bytes"`     // currently pinned
	PinnedPeak  int64 `json:"pinned_peak"`      // high-water pinned footprint
}

// RDMAStats counts host-side placement activity: the remote-memory
// writes the placement datapath performed in lieu of framed DATA
// packets. Purely host accounting — toggling the placement switch must
// not move a virtual timestamp — so it never enters the registry.
type RDMAStats struct {
	Writes      int64 `json:"writes"`
	BytesPlaced int64 `json:"bytes_placed"`
}

// regCache is one rank's pin-down cache.
type regCache struct {
	p          *Proc
	entries    map[*byte]*regEntry
	lru        regEntry // sentinel: lru.next is LRU, lru.prev is MRU
	count      int
	bytes      int64
	maxEntries int
	maxBytes   int64
	stats      RegStats
}

func newRegCache(p *Proc) *regCache {
	rc := &regCache{
		p:          p,
		entries:    map[*byte]*regEntry{},
		maxEntries: p.w.prof.RegCacheEntries,
		maxBytes:   p.w.prof.RegCacheBytes,
	}
	rc.lru.prev = &rc.lru
	rc.lru.next = &rc.lru
	return rc
}

// covered reports whether buf is already fully registered — the pure
// peek behind the adaptive protocol switch. No accounting, no
// reordering: the decision must not perturb the cache it reads.
func (rc *regCache) covered(buf []byte) bool {
	if len(buf) == 0 {
		return false
	}
	e, ok := rc.entries[&buf[0]]
	return ok && e.n >= len(buf)
}

// acquire registers buf (or refreshes its registration) and returns
// the virtual cost: zero on a hit, deregistration charges for every
// entry evicted to make room plus the registration charge on a miss.
// at is the virtual instant the charge begins; trace/metrics events
// for the charged work are emitted against it.
func (rc *regCache) acquire(buf []byte, at vtime.Time) vtime.Duration {
	return rc.acquireMode(buf, at, false)
}

// acquireLocked is acquire for sticky registrations (exposed RMA
// windows): the entry is exempt from LRU eviction until unlock.
func (rc *regCache) acquireLocked(buf []byte, at vtime.Time) vtime.Duration {
	return rc.acquireMode(buf, at, true)
}

func (rc *regCache) acquireMode(buf []byte, at vtime.Time, lock bool) vtime.Duration {
	n := len(buf)
	if n == 0 {
		return 0
	}
	pr := &rc.p.w.prof
	key := &buf[0]
	if e, ok := rc.entries[key]; ok && e.n >= n {
		rc.stats.Hits++
		rc.p.regCounter("reg_hits")
		e.locked = e.locked || lock
		rc.unlink(e)
		rc.pushMRU(e)
		return 0
	}
	var cost vtime.Duration
	if e, ok := rc.entries[key]; ok {
		// The buffer grew past its registered extent: the stale mapping
		// must be torn down before the full range is pinned. Counted as
		// a miss (the transfer could not ride the cache), not an
		// eviction (no capacity pressure was involved).
		cost += pr.DeregisterBase
		lock = lock || e.locked
		rc.remove(e)
	}
	rc.stats.Misses++
	rc.p.regCounter("reg_misses")
	for rc.count+1 > rc.maxEntries || rc.bytes+int64(n) > rc.maxBytes {
		v := rc.lruVictim()
		if v == nil {
			break // everything left is locked: over-subscribe rather than fail
		}
		cost += pr.DeregisterBase
		rc.stats.Evictions++
		rc.p.regCounter("reg_evicts")
		rc.p.recordReg("evict", v.n, at.Add(cost-pr.DeregisterBase), at.Add(cost))
		rc.remove(v)
	}
	pages := (n + 4095) / 4096
	reg := pr.RegisterBase + vtime.Duration(pages)*pr.RegisterPerPage
	rc.p.recordReg("register", n, at.Add(cost), at.Add(cost+reg))
	cost += reg
	e := &regEntry{key: key, buf: buf, n: n, locked: lock}
	rc.entries[key] = e
	rc.pushMRU(e)
	rc.count++
	rc.bytes += int64(n)
	rc.stats.BytesReg += int64(n)
	rc.stats.PinnedBytes = rc.bytes
	if rc.bytes > rc.stats.PinnedPeak {
		rc.stats.PinnedPeak = rc.bytes
	}
	return cost
}

// unlock releases a sticky registration (RMA window teardown). The
// entry stays cached — deregistration is lazy, exactly the regcache
// bet — but becomes an ordinary eviction candidate. Unknown buffers
// are a no-op: a zero-size window never registered.
func (rc *regCache) unlock(buf []byte) {
	if len(buf) == 0 {
		return
	}
	if e, ok := rc.entries[&buf[0]]; ok {
		e.locked = false
	}
}

// lruVictim returns the least recently used unlocked entry, nil if
// every cached entry is locked.
func (rc *regCache) lruVictim() *regEntry {
	for e := rc.lru.next; e != &rc.lru; e = e.next {
		if !e.locked {
			return e
		}
	}
	return nil
}

func (rc *regCache) unlink(e *regEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (rc *regCache) pushMRU(e *regEntry) {
	e.prev = rc.lru.prev
	e.next = &rc.lru
	rc.lru.prev.next = e
	rc.lru.prev = e
}

func (rc *regCache) remove(e *regEntry) {
	rc.unlink(e)
	delete(rc.entries, e.key)
	rc.count--
	rc.bytes -= int64(e.n)
	rc.stats.PinnedBytes = rc.bytes
	e.buf = nil
	e.key = nil
}
