package nativempi

import (
	"bytes"
	"fmt"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// The flow-control differential contract, in two halves:
//
//   - BELOW the credit limit, enabling flow control must change
//     nothing: receive payloads, final clocks, trace JSONL, and
//     metrics JSON byte-identical to a flow-off run. Credits ride as
//     metadata and credit frames are NIC-autonomous, so the only
//     permitted difference is host-side FlowStats bookkeeping.
//   - SATURATED, runs must stay deterministic across worker widths and
//     fault scenarios, and the receiver's unexpected-queue bytes
//     high-water must stay within UnexpectedQueueBytes — while the
//     same flood with flow control off blows straight through it.

// fcProfile builds the flow-control test profile. credits=0 turns the
// subsystem off; eager bounds both channel classes so message size
// alone selects the protocol.
func fcProfile(credits int, qbytes int64, eager int) Profile {
	return Profile{
		EagerCredits:         credits,
		UnexpectedQueueBytes: qbytes,
		EagerIntra:           eager,
		EagerInter:           eager,
	}
}

func fcWorld(np int, prof Profile, plan *faults.Plan, ft bool, workers int) *World {
	topo := cluster.New(1, np)
	fab := fabric.Default(topo)
	if plan != nil {
		fab = fab.WithFaults(plan)
	}
	w := NewWorld(topo, fab, prof)
	if ft {
		w.EnableFT()
	}
	w.SetEngineWorkers(workers)
	return w
}

// runFlood drives the many-to-one overload workload: every rank except
// 0 sends msgs eager-sized messages to rank 0; rank 0 receives them
// round-robin, tolerating sender deaths in fault-tolerant runs. The
// full deterministic artifact set is captured (zcArtifacts is shared
// with the zero-copy differential suite).
func runFlood(w *World, msgs, msgSize int) (zcArtifacts, error) {
	n := w.Size()
	rec := trace.New(0)
	met := metrics.NewRegistry()
	w.SetRecorder(rec)
	w.SetMetrics(met)
	a := zcArtifacts{
		recvs:  make([][]byte, n),
		clocks: make([]vtime.Time, n),
	}
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		me := p.Rank()
		if me == 0 {
			buf := make([]byte, msgSize)
			dead := make([]bool, n)
			var sum byte
			var got int
			for i := 0; i < msgs; i++ {
				for s := 1; s < n; s++ {
					if dead[s] {
						continue
					}
					if _, err := c.Recv(buf, s, 7); err != nil {
						if isFailure(err) {
							dead[s] = true
							continue
						}
						return err
					}
					sum ^= buf[0] ^ buf[msgSize-1]
					got++
				}
			}
			a.recvs[0] = []byte{sum, byte(got), byte(got >> 8)}
		} else {
			msg := pattern(msgSize, byte(me+1))
			for i := 0; i < msgs; i++ {
				if err := c.Send(msg, 0, 7); err != nil {
					if isFailure(err) {
						break
					}
					return err
				}
			}
		}
		a.clocks[me] = p.Clock().Now()
		return nil
	})
	if err != nil {
		return a, err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return a, err
	}
	a.trace = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := met.WriteJSON(&buf); err != nil {
		return a, err
	}
	a.met = buf.Bytes()
	a.host = w.HostStats()
	return a, nil
}

// TestFlowControlDifferential is the tentpole acceptance test.
func TestFlowControlDifferential(t *testing.T) {
	const (
		np      = 4
		msgSize = 1024
		eager   = 2048
	)

	t.Run("below-limit-identical", func(t *testing.T) {
		// Each sender's total (8 messages) never exhausts its 16
		// credits and the watermark is unreachable, so flow control has
		// nothing to do — and must visibly do nothing.
		const msgs, credits = 8, 16
		on, err := runFlood(fcWorld(np, fcProfile(credits, 1<<30, eager), nil, false, 0), msgs, msgSize)
		if err != nil {
			t.Fatal(err)
		}
		off, err := runFlood(fcWorld(np, fcProfile(0, 0, eager), nil, false, 0), msgs, msgSize)
		if err != nil {
			t.Fatal(err)
		}
		assertSameArtifacts(t, on, off)
		if on.host.Flow.RNRParks != 0 {
			t.Errorf("below the credit limit but %d RNR parks", on.host.Flow.RNRParks)
		}
		if on.host.Flow.DemotedSends != 0 {
			t.Errorf("below the watermark but %d demoted sends", on.host.Flow.DemotedSends)
		}
		// The flood is one-sided, so credits return as explicit frames.
		// (Senders finish before the frames land, so GrantsApplied may
		// legitimately be zero — the receiver-side emission counter is
		// the witness that the machinery ran.)
		if on.host.Flow.CreditFrames == 0 {
			t.Error("flow control on: receiver emitted no credit frames")
		}
	})

	// Saturated: 64 messages per sender against 8 credits. The bound
	// is exactly what credit accounting guarantees: at most credits
	// un-consumed messages per sender may occupy the receiver's queue,
	// (np-1) * credits * msgSize = UnexpectedQueueBytes.
	const (
		msgs    = 64
		credits = 8
		qbytes  = int64((np - 1) * credits * msgSize)
	)
	prof := fcProfile(credits, qbytes, eager)
	scenarios := []struct {
		name string
		plan func() *faults.Plan
		ft   bool
	}{
		{name: "clean", plan: func() *faults.Plan { return nil }},
		{name: "lossy", plan: func() *faults.Plan { return faults.Uniform(0xF10DE, 0.05) }},
		{name: "crash", plan: func() *faults.Plan {
			plan, err := faults.ParseSpec("crash=2:op30")
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			return plan
		}, ft: true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run("saturated-"+sc.name, func(t *testing.T) {
			w1, err := runFlood(fcWorld(np, prof, sc.plan(), sc.ft, 1), msgs, msgSize)
			if err != nil {
				t.Fatal(err)
			}
			w8, err := runFlood(fcWorld(np, prof, sc.plan(), sc.ft, 8), msgs, msgSize)
			if err != nil {
				t.Fatal(err)
			}
			assertSameArtifacts(t, w1, w8) // worker width must be invisible
			if w8.host.Flow.RNRParks == 0 {
				t.Error("saturated flood produced no RNR parks")
			}
			if hw := w8.host.Match.UnexpBytesHiWater; hw > qbytes {
				t.Errorf("flow on: unexpected-queue bytes high-water %d exceeds bound %d", hw, qbytes)
			}
			off, err := runFlood(fcWorld(np, fcProfile(0, 0, eager), sc.plan(), sc.ft, 8), msgs, msgSize)
			if err != nil {
				t.Fatal(err)
			}
			if hw := off.host.Match.UnexpBytesHiWater; hw <= qbytes {
				t.Errorf("flow off: high-water %d did not exceed bound %d — flood too small to prove anything", hw, qbytes)
			}
		})
	}
}

// TestFlowControlOverloadDegradation pins the eager→rendezvous tier:
// a saturated receiver pushes the queue past the demote watermark, the
// senders are demoted, and demoted traffic reroutes through rendezvous
// (visible as demoted_sends and a rendezvous count in a flood that
// would otherwise be all-eager).
func TestFlowControlOverloadDegradation(t *testing.T) {
	const (
		np, msgs, msgSize, eager = 4, 64, 1024, 2048
		credits                  = 8
	)
	// A tight queue bound (demote watermark at qbytes/2 = two queued
	// messages) guarantees the flood crosses it while credits alone
	// would still admit up to credits*(np-1) queued messages.
	qbytes := int64(4 * msgSize)
	a, err := runFlood(fcWorld(np, fcProfile(credits, qbytes, eager), nil, false, 0), msgs, msgSize)
	if err != nil {
		t.Fatal(err)
	}
	if a.host.Flow.DemotedSends == 0 {
		t.Error("saturated flood past the watermark demoted no sends")
	}
	if a.host.Flow.CreditFrames == 0 {
		t.Error("one-sided flood returned no explicit credit frames")
	}
	if a.host.Flow.RNRWaitPs == 0 {
		t.Error("RNR parks recorded no virtual wait time")
	}
	// The trace must carry the stall time as flow spans, and the phase
	// rollup must bank them in the Flow phase.
	events, _, err := trace.ParseJSONL(bytes.NewReader(a.trace))
	if err != nil {
		t.Fatal(err)
	}
	phases := trace.PhasesByRank(events)
	var flowTime vtime.Duration
	for _, ph := range phases {
		flowTime += ph.Flow
	}
	if int64(flowTime) != a.host.Flow.RNRWaitPs {
		t.Errorf("trace flow phase %d ps != host RNR wait %d ps", int64(flowTime), a.host.Flow.RNRWaitPs)
	}
}

// TestFlowControlDeadSenderPark pins the fault-tolerance bailout: a
// sender parked on credit toward a peer that is then confirmed dead
// must resume (the dead peer's credits become infinite) instead of
// waiting forever. Rank 1 floods rank 0, which dies early; the flood
// must complete without hanging the world.
func TestFlowControlDeadSenderPark(t *testing.T) {
	const msgs, msgSize, eager = 32, 512, 2048
	plan, err := faults.ParseSpec("crash=0:op5")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	w := fcWorld(2, fcProfile(4, 1<<20, eager), plan, true, 0)
	err = runGuarded(t, w, func(p *Proc) error {
		c := p.CommWorld()
		if p.Rank() == 0 {
			buf := make([]byte, msgSize)
			for {
				if _, err := c.Recv(buf, 1, 7); err != nil {
					return err
				}
			}
		}
		msg := pattern(msgSize, 3)
		for i := 0; i < msgs; i++ {
			if err := c.Send(msg, 0, 7); err != nil {
				if isFailure(err) {
					return nil
				}
				return err
			}
		}
		return nil
	})
	if err != nil && !isFailure(err) {
		t.Fatalf("flood against dying receiver: %v", err)
	}
}

// TestFlowControlChaosOverload is the CI chaos-overload leg: a np=16
// many-to-one flood crossed with message loss and a rank crash, under
// flow control tight enough that every sender parks repeatedly. Each
// scenario must be deterministic across worker widths, and the root's
// queue must honor the byte bound whatever the fabric does to the
// traffic.
func TestFlowControlChaosOverload(t *testing.T) {
	const (
		np, msgs, msgSize, eager = 16, 32, 1024, 2048
		credits                  = 4
	)
	qbytes := int64((np - 1) * credits * msgSize)
	prof := fcProfile(credits, qbytes, eager)
	scenarios := []struct {
		name string
		plan func() *faults.Plan
		ft   bool
	}{
		{name: "clean", plan: func() *faults.Plan { return nil }},
		{name: "lossy", plan: func() *faults.Plan { return faults.Uniform(0xC4A05, 0.03) }},
		{name: "crash", plan: func() *faults.Plan {
			plan, err := faults.ParseSpec("crash=7:op20")
			if err != nil {
				t.Fatalf("ParseSpec: %v", err)
			}
			return plan
		}, ft: true},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			w1, err := runFlood(fcWorld(np, prof, sc.plan(), sc.ft, 1), msgs, msgSize)
			if err != nil {
				t.Fatal(err)
			}
			w8, err := runFlood(fcWorld(np, prof, sc.plan(), sc.ft, 8), msgs, msgSize)
			if err != nil {
				t.Fatal(err)
			}
			assertSameArtifacts(t, w1, w8)
			if w8.host.Flow.RNRParks == 0 {
				t.Error("np=16 incast produced no RNR parks")
			}
			if hw := w8.host.Match.UnexpBytesHiWater; hw > qbytes {
				t.Errorf("unexpected-queue bytes high-water %d exceeds bound %d", hw, qbytes)
			}
		})
	}
}

// FuzzFlowControlEquivalence drives the differential across the
// (credits × eager limit × queue bound × fault plan) space:
// determinism across worker widths always; full on/off artifact
// identity whenever the traffic is provably below both the credit
// limit and the demote watermark.
func FuzzFlowControlEquivalence(f *testing.F) {
	f.Add(uint32(16), uint32(2048), uint32(1<<20), false)
	f.Add(uint32(2), uint32(1024), uint32(4096), false)
	f.Add(uint32(4), uint32(512), uint32(2048), true)
	f.Add(uint32(1), uint32(64), uint32(1024), true)
	f.Add(uint32(31), uint32(4096), uint32(512), false)
	f.Fuzz(func(t *testing.T, rawCredits, rawEager, rawQBytes uint32, faulty bool) {
		const np, msgs = 3, 12
		credits := int(rawCredits%32) + 1
		eager := int(rawEager%4096) + 64
		msgSize := max(1, eager/2)
		qbytes := int64(rawQBytes%(1<<20)) + 1024
		var plan *faults.Plan
		if faulty {
			plan = faults.Uniform(uint64(rawCredits)<<32|uint64(rawEager), 0.05)
		}
		prof := fcProfile(credits, qbytes, eager)
		on1, err := runFlood(fcWorld(np, prof, plan, false, 1), msgs, msgSize)
		if err != nil {
			t.Fatal(err)
		}
		on8, err := runFlood(fcWorld(np, prof, plan, false, 8), msgs, msgSize)
		if err != nil {
			t.Fatal(err)
		}
		assertSameArtifacts(t, on1, on8)
		belowLimit := msgs <= credits &&
			int64((np-1)*msgs*msgSize) < qbytes/2
		if belowLimit {
			off, err := runFlood(fcWorld(np, fcProfile(0, 0, eager), plan, false, 8), msgs, msgSize)
			if err != nil {
				t.Fatal(err)
			}
			assertSameArtifacts(t, on8, off)
			if on8.host.Flow.RNRParks != 0 {
				t.Errorf("below limit but %d parks", on8.host.Flow.RNRParks)
			}
		}
	})
}

// TestProfileValidate covers the reject table: each bad combination
// must fail with a profile-naming error, and the zero-value profile
// (every knob defaulted) plus a sane flow-control setup must pass.
func TestProfileValidate(t *testing.T) {
	good := []Profile{
		{},
		{EagerCredits: 32},
		{EagerCredits: 32, CreditBatch: 32, UnexpectedQueueBytes: 1 << 20},
		{RDMAThreshold: 256 << 10, EagerInter: 16 << 10},
		{RDMAThreshold: -1},
	}
	for i, pr := range good {
		if err := pr.Validate(); err != nil {
			t.Errorf("good[%d]: unexpected Validate error: %v", i, err)
		}
	}
	bad := []Profile{
		{EagerCredits: -1},
		{CreditBatch: -2},
		{CreditBatch: 4},                  // batch without flow control
		{EagerCredits: 4, CreditBatch: 5}, // batch exceeds credits: grant starvation
		{UnexpectedQueueBytes: -1},
		{UnexpectedQueueBytes: 4096}, // bound without flow control
		{RetransmitRTO: -vtime.Microsecond},
		{RetransmitBackoff: -1},
		{MaxRetransmits: -1},
		{EagerIntra: -1},
		{EagerInter: -1},
		{RDMAThreshold: 8192, EagerInter: 16 << 10}, // RDMA below eager limit
		{HeartbeatPeriod: -vtime.Microsecond},
	}
	for i, pr := range bad {
		err := pr.Validate()
		if err == nil {
			t.Errorf("bad[%d]: Validate accepted %+v", i, pr)
			continue
		}
		if want := fmt.Sprintf("profile %q", pr.Name); !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("bad[%d]: error %q does not name the profile", i, err)
		}
	}
}
