package nativempi

import (
	"fmt"
	"mv2j/internal/jvm"

	"mv2j/internal/vtime"
)

// Collective implementations. Every algorithm is built from the same
// point-to-point engine on the communicator's collective context, so
// virtual time propagates through the real message dependency graph —
// the latency of a bcast IS the critical path of its tree.
//
// One rolling tag per collective invocation separates successive
// collectives; within one invocation, per-(src,dst) FIFO ordering makes
// multi-step exchanges unambiguous.

func (c *Comm) collTag() int {
	c.collSeq++
	return c.collSeq
}

// waitRelease waits an internally issued request and recycles it.
// Requests created inside a collective never escape it, so once Wait
// observes completion (or failure — failReq also marks done and
// unlinks) the engine holds no reference and the struct can be reused.
func (c *Comm) waitRelease(req *Request) error {
	_, err := req.Wait()
	c.p.putReq(req)
	return err
}

// csend/crecv are blocking sends/receives on the collective context.
func (c *Comm) csend(buf []byte, dst, tag int) error {
	return c.waitRelease(c.p.isendOn(buf, c.group[dst], tag, sendOpts{ctx: c.collCtx, coll: true}))
}

func (c *Comm) crecv(buf []byte, src, tag int) error {
	return c.waitRelease(c.p.irecvOn(buf, c.group[src], tag, sendOpts{ctx: c.collCtx, coll: true}))
}

func (c *Comm) cisend(buf []byte, dst, tag int) *Request {
	return c.p.isendOn(buf, c.group[dst], tag, sendOpts{ctx: c.collCtx, coll: true})
}

func (c *Comm) cirecv(buf []byte, src, tag int) *Request {
	return c.p.irecvOn(buf, c.group[src], tag, sendOpts{ctx: c.collCtx, coll: true})
}

func (c *Comm) csendrecv(sendBuf []byte, dst int, recvBuf []byte, src, tag int) error {
	rreq := c.cirecv(recvBuf, src, tag)
	sreq := c.cisend(sendBuf, dst, tag)
	if err := c.waitRelease(sreq); err != nil {
		return err // rreq may still be pending: it stays with the engine
	}
	return c.waitRelease(rreq)
}

// chargeCompute charges local reduction/copy work of n bytes.
func (c *Comm) chargeCompute(n int) {
	c.p.clock.Advance(vtime.PerByte(n, c.p.w.prof.ReduceBandwidth))
}

// Bcast broadcasts root's buf to every rank (in place), using the
// profile-selected algorithm.
func (c *Comm) Bcast(buf []byte, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	defer c.collSpan("bcast", len(buf))()
	p := c.Size()
	if p == 1 {
		return nil
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectBcast(len(buf), p) {
	case BcastBinomial:
		return c.bcastKnomial(buf, root, tag, 2)
	case BcastKnomial:
		return c.bcastKnomial(buf, root, tag, c.p.w.prof.KnomialRadix)
	case BcastScatterAllgather:
		return c.bcastScatterAllgather(buf, root, tag)
	case BcastBinaryTree:
		return c.bcastBinaryTree(buf, root, tag)
	case BcastFlat:
		return c.bcastFlat(buf, root, tag)
	case BcastShmAware:
		// Wide fan-out amortises per-message overhead for small
		// payloads; for large ones sequential full-payload sends at
		// the tree nodes dominate, so the radix drops to binomial —
		// mirroring MVAPICH2's size-tuned knomial radix.
		k := c.p.w.prof.KnomialRadix
		if len(buf) > 8192 {
			k = 2
		}
		return c.bcastShmAware(buf, root, tag, k)
	case BcastMultiLeader:
		// Same size-tuned radix as the shm-aware path: wide trees for
		// small payloads, binomial once full-payload forwards dominate.
		k := c.p.w.prof.KnomialRadix
		if len(buf) > 8192 {
			k = 2
		}
		return c.bcastMultiLeader(buf, root, tag, k)
	case BcastChain:
		return c.bcastChain(buf, root, tag)
	default:
		return fmt.Errorf("nativempi: unknown bcast algorithm")
	}
}

// bcastKnomial runs a k-ary tree broadcast rooted at root; k=2 is the
// classic binomial tree.
func (c *Comm) bcastKnomial(buf []byte, root, tag, k int) error {
	p := c.Size()
	v := (c.myRank - root + p) % p // virtual rank: root becomes 0

	// Receive phase: find the level of my lowest non-zero base-k digit.
	mask := 1
	for mask < p && v%(mask*k) == 0 {
		mask *= k
	}
	if v != 0 {
		parent := ((v - v%(mask*k)) + root) % p
		if err := c.crecv(buf, parent, tag); err != nil {
			return err
		}
	}
	// Send phase: serve subtrees below my level, widest first.
	for m := mask / k; m >= 1; m /= k {
		for j := 1; j < k; j++ {
			child := v + j*m
			if child < p {
				if err := c.csend(buf, (child+root)%p, tag); err != nil {
					return err
				}
			}
		}
		if m == 1 {
			break
		}
	}
	return nil
}

// bcastBinaryTree forwards the full payload down a non-segmented
// binary tree — the cheap-to-implement algorithm whose n·log(p) bytes
// per path hurt at large sizes.
func (c *Comm) bcastBinaryTree(buf []byte, root, tag int) error {
	p := c.Size()
	v := (c.myRank - root + p) % p
	if v != 0 {
		parent := ((v-1)/2 + root) % p
		if err := c.crecv(buf, parent, tag); err != nil {
			return err
		}
	}
	for _, child := range []int{2*v + 1, 2*v + 2} {
		if child < p {
			if err := c.csend(buf, (child+root)%p, tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// bcastChain forwards the payload rank-to-rank down one chain.
func (c *Comm) bcastChain(buf []byte, root, tag int) error {
	p := c.Size()
	v := (c.myRank - root + p) % p
	if v > 0 {
		if err := c.crecv(buf, (v-1+root)%p, tag); err != nil {
			return err
		}
	}
	if v < p-1 {
		return c.csend(buf, (v+1+root)%p, tag)
	}
	return nil
}

// bcastFlat has the root send to every other rank in turn.
func (c *Comm) bcastFlat(buf []byte, root, tag int) error {
	if c.myRank != root {
		return c.crecv(buf, root, tag)
	}
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.csend(buf, r, tag); err != nil {
			return err
		}
	}
	return nil
}

// chunkRange returns the byte range of chunk i when n bytes are split
// into p near-equal chunks.
func chunkRange(n, p, i int) (lo, hi int) {
	lo = i * n / p
	hi = (i + 1) * n / p
	return
}

// bcastScatterAllgather is the van de Geijn large-message broadcast:
// a binomial scatter of chunks followed by a ring allgather, moving
// ~2n bytes per rank instead of n per tree level.
func (c *Comm) bcastScatterAllgather(buf []byte, root, tag int) error {
	p := c.Size()
	n := len(buf)
	v := (c.myRank - root + p) % p
	ringTag := c.collTag()

	// Binomial scatter over virtual ranks: the owner of range [lo,hi)
	// (vrank lo) holds the bytes of chunks lo..hi-1 and hands the top
	// half to vrank mid at each level.
	lo, hi := 0, p
	for hi-lo > 1 {
		mid := (lo + hi + 1) / 2
		bLo, _ := chunkRange(n, p, mid)
		_, bHi := chunkRange(n, p, hi-1)
		if v < mid {
			if v == lo && bHi > bLo {
				if err := c.csend(buf[bLo:bHi], (mid+root)%p, tag); err != nil {
					return err
				}
			}
			hi = mid
		} else {
			if v == mid && bHi > bLo {
				if err := c.crecv(buf[bLo:bHi], (lo+root)%p, tag); err != nil {
					return err
				}
			}
			lo = mid
		}
	}

	// Ring allgather of the chunks.
	right := ((v+1)%p + root) % p
	left := ((v-1+p)%p + root) % p
	for s := 0; s < p-1; s++ {
		sendChunk := (v - s + p) % p
		recvChunk := (v - s - 1 + p) % p
		sLo, sHi := chunkRange(n, p, sendChunk)
		rLo, rHi := chunkRange(n, p, recvChunk)
		if err := c.csendrecv(buf[sLo:sHi], right, buf[rLo:rHi], left, ringTag); err != nil {
			return err
		}
	}
	return nil
}

// Reduce combines every rank's sendBuf with op into recvBuf at root.
// recvBuf may be nil on non-root ranks.
func (c *Comm) Reduce(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	defer c.collSpan("reduce", len(sendBuf))()
	n := len(sendBuf)
	if c.myRank == root && len(recvBuf) != n {
		return fmt.Errorf("%w: reduce recv buffer %d != send %d", ErrCount, len(recvBuf), n)
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectReduce(n, c.Size()) {
	case ReduceLinear:
		return c.reduceLinear(sendBuf, recvBuf, kind, op, root, tag)
	default:
		return c.reduceBinomial(sendBuf, recvBuf, kind, op, root, tag)
	}
}

func (c *Comm) reduceBinomial(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, root, tag int) error {
	p := c.Size()
	n := len(sendBuf)
	v := (c.myRank - root + p) % p
	acc := c.borrowScratch(n)
	defer c.returnScratch(acc)
	copy(acc, sendBuf)
	scratch := c.borrowScratch(n)
	defer c.returnScratch(scratch)
	for mask := 1; mask < p; mask <<= 1 {
		if v&mask != 0 {
			parent := ((v ^ mask) + root) % p
			return c.csend(acc, parent, tag)
		}
		partner := v + mask
		if partner < p {
			if err := c.crecv(scratch, (partner+root)%p, tag); err != nil {
				return err
			}
			if err := reduceInto(acc, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(n)
		}
	}
	copy(recvBuf, acc)
	return nil
}

func (c *Comm) reduceLinear(sendBuf, recvBuf []byte, kind jvm.Kind, op Op, root, tag int) error {
	if c.myRank != root {
		return c.csend(sendBuf, root, tag)
	}
	n := len(sendBuf)
	copy(recvBuf, sendBuf)
	scratch := c.borrowScratch(n)
	defer c.returnScratch(scratch)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.crecv(scratch, r, tag); err != nil {
			return err
		}
		if err := reduceInto(recvBuf, scratch, kind, op); err != nil {
			return err
		}
		c.chargeCompute(n)
	}
	return nil
}

// Allreduce combines every rank's sendBuf into every rank's recvBuf.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, kind jvm.Kind, op Op) error {
	defer c.collSpan("allreduce", len(sendBuf))()
	n := len(sendBuf)
	if len(recvBuf) != n {
		return fmt.Errorf("%w: allreduce recv buffer %d != send %d", ErrCount, len(recvBuf), n)
	}
	if c.Size() == 1 {
		copy(recvBuf, sendBuf)
		return nil
	}
	switch c.p.w.prof.SelectAllreduce(n, c.Size()) {
	case AllreduceRabenseifner:
		return c.allreduceRing(sendBuf, recvBuf, kind, op)
	case AllreduceReduceBcast:
		if err := c.Reduce(sendBuf, recvBuf, kind, op, 0); err != nil {
			return err
		}
		return c.Bcast(recvBuf, 0)
	case AllreduceShmAware:
		return c.allreduceShmAware(sendBuf, recvBuf, kind, op, c.p.w.prof.KnomialRadix)
	case AllreduceMultiLeader:
		return c.allreduceMultiLeader(sendBuf, recvBuf, kind, op,
			c.p.w.prof.KnomialRadix, c.p.w.prof.LeadersPerNode)
	default:
		return c.allreduceRecursiveDoubling(sendBuf, recvBuf, kind, op)
	}
}

// allreduceRecursiveDoubling exchanges-and-combines over log2 steps,
// with the standard fold-in/fold-out handling for non-power-of-two
// sizes.
func (c *Comm) allreduceRecursiveDoubling(sendBuf, recvBuf []byte, kind jvm.Kind, op Op) error {
	p := c.Size()
	n := len(sendBuf)
	tag := c.collTag()
	copy(recvBuf, sendBuf)
	scratch := c.borrowScratch(n)
	defer c.returnScratch(scratch)

	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2

	// Fold-in: the first 2*rem ranks pair up; odd ranks hand their
	// vector to the even partner and sit out.
	var v int // rank within the power-of-two group, -1 if sitting out
	switch {
	case c.myRank < 2*rem && c.myRank%2 != 0:
		if err := c.csend(recvBuf, c.myRank-1, tag); err != nil {
			return err
		}
		v = -1
	case c.myRank < 2*rem:
		if err := c.crecv(scratch, c.myRank+1, tag); err != nil {
			return err
		}
		if err := reduceInto(recvBuf, scratch, kind, op); err != nil {
			return err
		}
		c.chargeCompute(n)
		v = c.myRank / 2
	default:
		v = c.myRank - rem
	}

	if v >= 0 {
		toReal := func(vr int) int {
			if vr < rem {
				return vr * 2
			}
			return vr + rem
		}
		for mask := 1; mask < pof2; mask <<= 1 {
			partner := toReal(v ^ mask)
			if err := c.csendrecv(recvBuf, partner, scratch, partner, tag); err != nil {
				return err
			}
			if err := reduceInto(recvBuf, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(n)
		}
	}

	// Fold-out: even partners return the result to the odd ranks.
	if c.myRank < 2*rem {
		if c.myRank%2 == 0 {
			return c.csend(recvBuf, c.myRank+1, tag)
		}
		return c.crecv(recvBuf, c.myRank-1, tag)
	}
	return nil
}

// allreduceRing is the bandwidth-optimal large-message algorithm:
// a ring reduce-scatter followed by a ring allgather (the composition
// Rabenseifner's algorithm reduces to on a ring), moving ~2n bytes per
// rank regardless of p.
func (c *Comm) allreduceRing(sendBuf, recvBuf []byte, kind jvm.Kind, op Op) error {
	p := c.Size()
	n := len(sendBuf)
	// Element-aligned chunking so reductions see whole elements.
	esz := kind.Size()
	if n%esz != 0 {
		return fmt.Errorf("%w: %d bytes not a multiple of %v", ErrCount, n, kind)
	}
	tagRS := c.collTag()
	tagAG := c.collTag()
	copy(recvBuf, sendBuf)
	elems := n / esz
	chunk := func(i int) (int, int) {
		lo := i * elems / p * esz
		hi := (i + 1) * elems / p * esz
		return lo, hi
	}
	right := (c.myRank + 1) % p
	left := (c.myRank - 1 + p) % p
	scratch := c.borrowScratch(n)
	defer c.returnScratch(scratch)

	// Reduce-scatter: after p-1 steps, rank r owns the fully reduced
	// chunk (r+1)%p.
	for s := 0; s < p-1; s++ {
		sendChunk := (c.myRank - s + p) % p
		recvChunk := (c.myRank - s - 1 + p) % p
		sLo, sHi := chunk(sendChunk)
		rLo, rHi := chunk(recvChunk)
		if err := c.csendrecv(recvBuf[sLo:sHi], right, scratch[rLo:rHi], left, tagRS); err != nil {
			return err
		}
		if err := reduceInto(recvBuf[rLo:rHi], scratch[rLo:rHi], kind, op); err != nil {
			return err
		}
		c.chargeCompute(rHi - rLo)
	}

	// Allgather the reduced chunks around the ring.
	for s := 0; s < p-1; s++ {
		sendChunk := (c.myRank + 1 - s + p) % p
		recvChunk := (c.myRank - s + p) % p
		sLo, sHi := chunk(sendChunk)
		rLo, rHi := chunk(recvChunk)
		if err := c.csendrecv(recvBuf[sLo:sHi], right, recvBuf[rLo:rHi], left, tagAG); err != nil {
			return err
		}
	}
	return nil
}
