package nativempi

import (
	"sync"
	"testing"
)

// TestMailboxFIFO: packets come out in the order they went in, across
// both the single-push and the batch producer paths.
func TestMailboxFIFO(t *testing.T) {
	m := newMailbox()
	var want []*packet
	for i := 0; i < 5; i++ {
		p := &packet{relSeq: uint64(i)}
		want = append(want, p)
		m.push(p)
	}
	batch := make([]*packet, 4)
	for i := range batch {
		batch[i] = &packet{relSeq: uint64(5 + i)}
	}
	want = append(want, batch...)
	m.pushBatch(batch)

	for i, w := range want {
		got, ok := m.tryPop()
		if !ok || got != w {
			t.Fatalf("pop %d: got %v ok=%v, want %v", i, got, ok, w)
		}
	}
	if _, ok := m.tryPop(); ok {
		t.Fatal("tryPop on empty mailbox reported a packet")
	}
}

// TestMailboxSwapStats: a burst drained after the fact costs the
// consumer one swap, and the producer batch counters see pushBatch.
func TestMailboxSwapStats(t *testing.T) {
	m := newMailbox()
	batch := make([]*packet, 5)
	for i := range batch {
		batch[i] = &packet{relSeq: uint64(i)}
	}
	m.pushBatch(batch)
	for range batch {
		m.pop()
	}
	st := m.Stats()
	if st.Pushes != 5 || st.PushBatches != 1 || st.MaxPush != 5 {
		t.Errorf("producer stats: %+v", st)
	}
	if st.Swaps != 1 || st.Batched != 5 || st.MaxBatch != 5 {
		t.Errorf("consumer stats: %+v", st)
	}
}

// TestMailboxNoHeadRetention: consumed slots must be nilled in place —
// the drained head buffer is recycled as the next tail, so a stale
// reference would keep dead packets alive for the queue's lifetime.
func TestMailboxNoHeadRetention(t *testing.T) {
	m := newMailbox()
	for i := 0; i < 4; i++ {
		m.push(&packet{relSeq: uint64(i)})
	}
	m.pop() // forces the swap: head now holds the 4-packet list
	head := m.head
	m.pop()
	m.pop()
	for i := 0; i < 3; i++ {
		if head[i] != nil {
			t.Errorf("consumed head slot %d still holds a packet", i)
		}
	}
}

// TestMailboxConcurrentStress drives the MPSC queue from many
// producers at once (run under -race in CI). Per-producer FIFO order
// must survive batching, swapping, and buffer recycling.
func TestMailboxConcurrentStress(t *testing.T) {
	const producers = 8
	const perProducer = 2000
	m := newMailbox()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			seq := uint64(0)
			for seq < perProducer {
				if seq%3 == 0 && perProducer-seq >= 4 {
					// Burst path: four packets, one lock acquisition.
					batch := make([]*packet, 4)
					for i := range batch {
						batch[i] = &packet{src: pr, relSeq: seq}
						seq++
					}
					m.pushBatch(batch)
				} else {
					m.push(&packet{src: pr, relSeq: seq})
					seq++
				}
			}
		}(pr)
	}

	next := make([]uint64, producers)
	for n := 0; n < producers*perProducer; n++ {
		pkt := m.pop()
		if pkt.relSeq != next[pkt.src] {
			t.Fatalf("producer %d: popped seq %d, want %d", pkt.src, pkt.relSeq, next[pkt.src])
		}
		next[pkt.src]++
	}
	wg.Wait()
	if _, ok := m.tryPop(); ok {
		t.Fatal("mailbox non-empty after all packets consumed")
	}
	if st := m.Stats(); st.Pushes != producers*perProducer {
		t.Errorf("Pushes = %d, want %d", st.Pushes, producers*perProducer)
	}
}
