package nativempi

import (
	"fmt"

	"mv2j/internal/faults"
	"mv2j/internal/mpjbuf"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Reliability sublayer. A lossless fabric delivers every packet
// exactly once, so the runtime normally posts straight into the
// destination mailbox. When a fault plan is attached to the fabric,
// every packet instead goes through reliablePost: it is framed with a
// sequence number and a CRC32-C checksum (mpjbuf's reliability codec),
// and an ack/retransmit protocol with exponential backoff recovers
// from loss and corruption.
//
// The fault plan is a pure function of the transfer identity, so the
// sender can evaluate, at injection time, the fate of every
// transmission attempt AND of its acknowledgement: which attempts the
// fabric drops, which arrive corrupted (the receiver's checksum will
// reject them), and which acks survive. It materialises exactly the
// packets that would reach the destination, each stamped with the
// virtual time retransmission delays push it to — so retransmits
// visibly inflate measured latencies while the simulation stays
// deterministic and free of wall-clock timers. The receiver
// independently verifies checksums, suppresses duplicates, and
// acknowledges accepted copies using the same coin flips, keeping both
// sides of the protocol honest.
//
// A message still unacknowledged after Profile.MaxRetransmits attempts
// means the peer is unreachable. Without fault tolerance the sender
// escalates to the MPI_Abort path (waking every blocked rank) instead
// of deadlocking; in an FT world the same condition surfaces as an
// ErrProcFailed-class error on the operation, one recovery policy
// among several (see ft.go).

// ErrPeerUnreachable is the failure-detection error: a peer did not
// acknowledge a transfer within the retransmission budget.
var ErrPeerUnreachable = fmt.Errorf("nativempi: peer unreachable (retransmit limit exceeded)")

// relPair identifies a directed per-stream channel to or from a peer.
type relPair struct {
	peer   int
	stream faults.Stream
}

// relKey identifies one reliable message (for ack bookkeeping).
type relKey struct {
	peer   int
	stream faults.Stream
	seq    uint64
}

// relState is the per-rank protocol state. Like everything on a Proc
// it is confined to the rank goroutine.
type relState struct {
	// sendSeq numbers outgoing messages per (destination, stream) for
	// the streams that use a counter (match, rma, rmareply); the
	// rendezvous ctl/bulk streams reuse the rendezvous request id,
	// whose assignment order is deterministic where a shared counter's
	// would not be.
	sendSeq map[relPair]uint64
	// seen records accepted sequence numbers per (source, stream):
	// the duplicate-suppression window.
	seen map[relPair]map[uint64]struct{}
	// await tracks unacknowledged sends for the stats/trace view of
	// the ack stream: payload bytes and the settled attempt's send
	// time, so the eventual ack can be traced as a full round trip.
	await map[relKey]relAwait
	// verdicts/burst are per-message scratch reused across reliablePost
	// calls: the whole transmission schedule is adjudicated, then
	// materialised, then delivered as one mailbox batch.
	verdicts []faults.Verdict
	burst    []*packet
}

// relAwait is the sender-side record of one in-flight acknowledgement.
type relAwait struct {
	bytes  int
	sentAt vtime.Time
}

func newRelState() *relState {
	return &relState{
		sendSeq: map[relPair]uint64{},
		seen:    map[relPair]map[uint64]struct{}{},
		await:   map[relKey]relAwait{},
	}
}

// streamOf classifies a packet kind into its sequence-number stream.
func streamOf(k pktKind) faults.Stream {
	switch k {
	case pktEager, pktRTS:
		return faults.StreamMatch
	case pktCTS:
		return faults.StreamCtl
	case pktData:
		return faults.StreamBulk
	case pktRMA:
		return faults.StreamRMA
	case pktRMAReply:
		return faults.StreamRMAReply
	default:
		panic(fmt.Sprintf("nativempi: no reliability stream for packet kind %d", k))
	}
}

// relSeqFor assigns the message's sequence number (1-based). The
// rendezvous control and bulk streams are keyed by the rendezvous
// request id — unique per originating sender and assigned in its
// program order — because CTS/DATA emission order between a pair can
// legitimately vary with matching order, which would make a shared
// counter nondeterministic.
func (p *Proc) relSeqFor(dst int, pkt *packet, stream faults.Stream) uint64 {
	switch stream {
	case faults.StreamCtl, faults.StreamBulk:
		return pkt.reqID
	default:
		pr := relPair{dst, stream}
		s := p.rel.sendSeq[pr] + 1
		p.rel.sendSeq[pr] = s
		return s
	}
}

// reliablePost runs the sender half of the ack/retransmit protocol for
// one packet whose first transmission leaves at pkt.sentAt and would
// arrive at pkt.arriveAt on a clean wire. It returns an error only in
// fault-tolerant worlds, when the retransmit budget is exhausted.
func (p *Proc) reliablePost(dst int, pkt *packet) error {
	stream := streamOf(pkt.kind)
	seq := p.relSeqFor(dst, pkt, stream)
	ch := p.channel(dst)
	prof := &p.w.prof
	fab := p.w.fab
	wireTime := pkt.arriveAt.Sub(pkt.sentAt)
	n := len(pkt.data)
	hdr := mpjbuf.RelHeader{Stream: uint8(stream), Kind: uint8(pkt.kind), Seq: seq}

	// Adjudicate the whole burst in one fabric call, then materialise
	// exactly the copies that reach the destination. They all target
	// one mailbox, so they are delivered as a single batch below —
	// one lock acquisition for the burst instead of one per copy.
	rel := p.rel
	var settled int
	rel.verdicts, settled = fab.BurstVerdicts(p.rank, dst, stream, seq, prof.MaxRetransmits, rel.verdicts[:0])

	rto := prof.RetransmitRTO
	sendT := pkt.sentAt
	prevSendT := pkt.sentAt
	lastSendT := pkt.sentAt
	for k, v := range rel.verdicts {
		if k > 0 {
			p.stats.Retransmits++
			// The span is the RTO wait that expired to trigger this
			// attempt: retransmission time a phase breakdown can add up.
			p.recordRelSpan(trace.KindRetransmit,
				fmt.Sprintf("%v seq=%d attempt=%d", stream, seq, k), dst, n, prevSendT, sendT)
		}
		if v.Drop {
			p.stats.FaultDrops++
			p.recordRel(trace.KindFault,
				fmt.Sprintf("drop %v seq=%d attempt=%d", stream, seq, k), dst, n, sendT)
		} else {
			hdr.Attempt = uint16(k)
			frame := mpjbuf.EncodeRelFrame(hdr, pkt.data)
			// Framing copies the payload into the frame image — host
			// data movement the zero-copy path can never elide, which is
			// why a fault plan forces wire-copy rendezvous.
			p.copyStats.count(n)
			if v.CorruptPos >= 0 {
				frame[v.CorruptPos%len(frame)] ^= 0xA5
				p.stats.FaultCorrupts++
				p.recordRel(trace.KindFault,
					fmt.Sprintf("corrupt %v seq=%d attempt=%d", stream, seq, k), dst, n, sendT)
			}
			if v.Delay > 0 {
				p.stats.FaultDelays++
				p.recordRel(trace.KindFault,
					fmt.Sprintf("delay %v seq=%d attempt=%d by %v", stream, seq, k, v.Delay), dst, n, sendT)
			}
			cp := getPacket()
			*cp = *pkt
			cp.freed = false
			cp.wire = frame
			cp.data = nil // the receiver recovers the payload from the frame
			cp.ownsData = false
			cp.relStream, cp.relSeq, cp.attempt = stream, seq, k
			cp.sentAt = sendT
			cp.arriveAt = sendT.Add(wireTime + v.Delay)
			rel.burst = append(rel.burst, cp)
			lastSendT = sendT
			if v.Duplicate {
				dup := getPacket()
				*dup = *cp
				dup.freed = false
				dup.arriveAt = cp.arriveAt.Add(ch.Latency / 2)
				rel.burst = append(rel.burst, dup)
				p.stats.FaultDups++
				p.recordRel(trace.KindFault,
					fmt.Sprintf("dup %v seq=%d attempt=%d", stream, seq, k), dst, n, sendT)
			}
			if k == settled {
				// This copy is intact and its ack will make it back:
				// the protocol settles on attempt k.
				p.rel.await[relKey{dst, stream, seq}] = relAwait{bytes: n, sentAt: sendT}
			}
		}
		prevSendT = sendT
		sendT = sendT.Add(rto)
		rto *= vtime.Duration(prof.RetransmitBackoff)
	}
	// Deliver the burst: every materialised copy, in attempt order,
	// under one lock acquisition at the destination mailbox.
	p.postRawBatch(dst, rel.burst)
	clearTail(rel.burst, 0)
	rel.burst = rel.burst[:0]
	if settled < 0 {
		reason := fmt.Sprintf("rank %d: peer %d unreachable: no ack for %v seq %d after %d attempts",
			p.rank, dst, stream, seq, prof.MaxRetransmits)
		p.stats.PeerFailures++
		p.recordRel(trace.KindFault, "peer-failure: "+reason, dst, n, sendT)
		if p.w.ft {
			// ULFM policy: declare the peer failed locally and let the
			// operation report MPI_ERR_PROC_FAILED instead of
			// escalating to MPI_Abort.
			if p.failedPeers == nil {
				p.failedPeers = map[int]vtime.Time{}
			}
			if _, known := p.failedPeers[dst]; !known {
				p.failedPeers[dst] = sendT
			}
			return fmt.Errorf("%w: rank %d unreachable after %d attempts", ErrProcFailed, dst, prof.MaxRetransmits)
		}
		p.w.Abort(p.rank, reason)
		panic(abortError{origin: p.rank, reason: reason})
	}
	// Retransmissions occupy the injection resource at their (future)
	// send times; later sends serialize behind the last one.
	if n > 0 && lastSendT > pkt.sentAt {
		p.nicFree = vtime.Max(p.nicFree, lastSendT.Add(ch.SerializeTime(n)))
	}
	return nil
}

// admit runs the receiver half: checksum verification, duplicate
// suppression, and acknowledgement. It reports whether the packet
// should proceed to dispatch, and on acceptance restores pkt.data from
// the decoded frame.
func (p *Proc) admit(pkt *packet) bool {
	hdr, payload, err := mpjbuf.DecodeRelFrame(pkt.wire)
	if err != nil {
		// Corrupt on the wire: reject silently (no ack), exactly as a
		// drop. The sender's precomputation reached the same verdict
		// and has already scheduled the retransmission.
		p.stats.CorruptDrops++
		p.recordRel(trace.KindFault, "checksum reject: "+err.Error(), pkt.src, len(pkt.wire), pkt.arriveAt)
		return false
	}
	stream := faults.Stream(hdr.Stream)
	pr := relPair{pkt.src, stream}
	seenSet := p.rel.seen[pr]
	if seenSet == nil {
		seenSet = map[uint64]struct{}{}
		p.rel.seen[pr] = seenSet
	}
	_, dup := seenSet[hdr.Seq]
	if !dup {
		seenSet[hdr.Seq] = struct{}{}
	}
	// Acknowledge every intact copy (duplicates are re-acked, as in
	// any ARQ protocol: the first ack may have been the casualty).
	if !p.w.fab.AckDropped(pkt.src, p.rank, stream, hdr.Seq, int(hdr.Attempt)) {
		ch := p.channel(pkt.src)
		p.stats.AcksSent++
		ack := getPacket()
		ack.kind = pktAck
		ack.src = p.rank
		ack.dst = pkt.src
		ack.relStream = stream
		ack.relSeq = hdr.Seq
		ack.attempt = int(hdr.Attempt)
		ack.arriveAt = pkt.arriveAt.Add(ch.Latency)
		// Piggyback the credit grant opportunistically: an ack can be
		// permanently lost, so it never counts as advertised.
		p.fcAttachGrant(pkt.src, ack, false)
		p.postRaw(pkt.src, ack)
	} else {
		p.recordRel(trace.KindFault,
			fmt.Sprintf("ack drop %v seq=%d attempt=%d", stream, hdr.Seq, hdr.Attempt), pkt.src, 0, pkt.arriveAt)
	}
	if dup {
		p.stats.DupDrops++
		p.recordRel(trace.KindFault,
			fmt.Sprintf("dup reject %v seq=%d attempt=%d", stream, hdr.Seq, hdr.Attempt), pkt.src, len(payload), pkt.arriveAt)
		return false
	}
	pkt.data = payload
	return true
}

// handleAck clears the sender-side bookkeeping for an acknowledged
// message. Re-acks of already-cleared messages are ignored.
func (p *Proc) handleAck(pkt *packet) {
	k := relKey{pkt.src, pkt.relStream, pkt.relSeq}
	if aw, ok := p.rel.await[k]; ok {
		delete(p.rel.await, k)
		p.stats.AcksReceived++
		// The span is the settled attempt's full send-to-ack round
		// trip — the reliability layer's latency contribution.
		p.recordRelSpan(trace.KindAck,
			fmt.Sprintf("%v seq=%d attempt=%d", pkt.relStream, pkt.relSeq, pkt.attempt),
			pkt.src, aw.bytes, aw.sentAt, pkt.arriveAt)
	}
}

// UnackedSends reports how many reliable sends are still awaiting
// their acknowledgement packet (their delivery is already settled;
// this is the in-flight ack view, exposed for tests and stats).
func (p *Proc) UnackedSends() int {
	if p.rel == nil {
		return 0
	}
	return len(p.rel.await)
}
