package nativempi

import (
	"runtime"
	"slices"
	"sync"

	"mv2j/internal/vtime"
)

// This file is the multicore scale-out engine: a conservative
// phase-stepped scheduler that runs per-rank host work (matching,
// copies, collectives, reliability) on a bounded worker pool while
// keeping every virtual artifact byte-identical to serial execution.
//
// The model. Each rank is a goroutine, as before, but at most
// `workers` of them hold an execution token at any instant. A running
// rank buffers every packet it emits into a private per-rank outbox
// instead of pushing straight into destination mailboxes. When every
// live rank is blocked (no one runnable, no one running) the engine
// has reached a PHASE BARRIER: all outboxes are flushed, merged, and
// sorted by the total key (arriveAt, src, emitSeq) — vtime.PhaseKey —
// then delivered to destination mailboxes in that order. Blocked ranks
// whose mailboxes became non-empty are promoted back to runnable and
// tokens are re-granted in rank order.
//
// Why this is deterministic: rank execution is rank-confined (a
// running rank touches only its own state plus its outbox), so the
// only inter-rank channel is packet delivery — and delivery order is
// canonicalized by the sorted merge, whose key is total (same source
// implies distinct emitSeq). Which worker ran which rank, and in what
// host order, cannot be observed by the simulation.
//
// Lock order: eng.mu → mailbox.mu, never the reverse. A running rank
// appends to its outbox without any lock (owner-only); the barrier
// reads outboxes under eng.mu, and the happens-before edge is the
// rank's own state transition (block/yield/done), which acquires
// eng.mu after its last append.

// rankState is a rank's position in the engine's state machine.
type rankState uint8

const (
	rsReady   rankState = iota // waiting for an execution token
	rsRunning                  // holds a token, executing user code
	rsBlocked                  // parked in popBlocking, mailbox empty
	rsYielded                  // parked at a spin-loop checkpoint (Test/Iprobe)
	rsDone                     // rank function returned
)

// EngineStats counts host-side scheduler activity. Like MailboxStats
// these are HOST observability numbers (phase shapes depend on worker
// count) and stay out of the deterministic artifacts.
type EngineStats struct {
	Phases    int64 `json:"phases"`    // barrier flushes performed
	Delivered int64 `json:"delivered"` // packets merged and delivered at barriers
	MaxPhase  int64 `json:"max_phase"` // largest single merge
	Handoffs  int64 `json:"handoffs"`  // execution-token grants
	Yields    int64 `json:"yields"`    // cooperative yields from spin loops
}

// engineCell is one rank's scheduling state. The out slice and seq
// counter are owner-private while the rank is RUNNING; the engine
// reads them only at barriers, under mu, when no rank is running.
type engineCell struct {
	cond  *sync.Cond
	state rankState
	out   []*packet // buffered emissions of the current phase
	seq   uint64    // per-rank emission counter (never reset: key stays total)
}

// engine is the per-Run scheduler instance. It is created by World.Run
// and discarded when the run ends; a nil engine (w.eng empty) means
// legacy direct-push serial semantics, used by the SPMD harness's
// bare Proc access and by drainPending.
type engine struct {
	w       *World
	workers int

	mu        sync.Mutex
	cells     []engineCell
	readyq    []int // FIFO of rank ids awaiting a token
	readyHead int
	runningN  int
	doneN     int
	aborted   bool
	merged    []*packet // reusable barrier merge buffer
	stats     EngineStats
}

func newEngine(w *World, workers int) *engine {
	n := len(w.procs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	eng := &engine{w: w, workers: workers}
	eng.cells = make([]engineCell, n)
	eng.readyq = make([]int, 0, n)
	for r := range eng.cells {
		eng.cells[r].cond = sync.NewCond(&eng.mu)
		eng.cells[r].state = rsReady
		eng.readyq = append(eng.readyq, r)
	}
	eng.mu.Lock()
	eng.grantLocked()
	eng.mu.Unlock()
	return eng
}

func (e *engine) readyN() int { return len(e.readyq) - e.readyHead }

// grantLocked hands execution tokens to ready ranks until the worker
// budget is spent or the ready queue drains. FIFO over the queue; the
// queue itself is filled in rank order at promotion time, so grant
// order is deterministic — though it would not matter if it weren't:
// rank execution is rank-confined and delivery order is fixed by the
// barrier merge, so grant order is pure host scheduling.
func (e *engine) grantLocked() {
	for e.runningN < e.workers && e.readyHead < len(e.readyq) {
		r := e.readyq[e.readyHead]
		e.readyHead++
		if e.readyHead == len(e.readyq) {
			e.readyq = e.readyq[:0]
			e.readyHead = 0
		}
		c := &e.cells[r]
		if c.state != rsReady {
			continue // stale entry (rank aborted or promoted elsewhere)
		}
		c.state = rsRunning
		e.runningN++
		e.stats.Handoffs++
		c.cond.Signal()
	}
}

// enter blocks the calling rank until it is granted its first token.
func (e *engine) enter(rank int) {
	e.mu.Lock()
	c := &e.cells[rank]
	for c.state != rsRunning && !e.aborted {
		c.cond.Wait()
	}
	e.mu.Unlock()
}

// emit buffers one packet emitted by src toward dst. Owner-only,
// lock-free: src is RUNNING and nobody else touches its cell until its
// next state transition publishes the appends.
func (e *engine) emit(src, dst int, pkt *packet) {
	c := &e.cells[src]
	pkt.dst = dst
	pkt.emitSeq = c.seq
	c.seq++
	c.out = append(c.out, pkt)
}

// block parks the calling rank: its mailbox is empty and it is inside
// a blocking MPI call. Returns false when the job aborted while the
// rank was parked (the caller re-polls and finds the abort packet).
func (e *engine) block(rank int) bool {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return false
	}
	c := &e.cells[rank]
	c.state = rsBlocked
	e.runningN--
	e.grantLocked()
	e.maybePhaseLocked()
	for c.state != rsRunning {
		if e.aborted {
			break
		}
		c.cond.Wait()
	}
	ok := c.state == rsRunning
	e.mu.Unlock()
	return ok
}

// maybePhaseLocked runs a barrier when no rank is running or runnable
// — every live rank is parked at a block or yield checkpoint. If the
// barrier promotes nobody while live ranks remain, the job is
// deadlocked — every live rank waits on a message that no one can
// ever send — and the engine aborts it rather than hanging the
// harness. (Yielded ranks are always promoted, so a spinning rank can
// never produce a false deadlock verdict.)
func (e *engine) maybePhaseLocked() {
	if e.runningN > 0 || e.readyN() > 0 || e.aborted {
		return
	}
	e.phaseLocked()
	if e.runningN == 0 && e.readyN() == 0 && e.doneN < len(e.cells) && !e.aborted {
		e.abortLocked(-1, "deadlock: every live rank is blocked with no deliverable events")
	}
}

// phaseLocked is the barrier: flush all outboxes, sort by the total
// (arriveAt, src, emitSeq) key, deliver in that order, promote blocked
// ranks that received mail, and re-grant tokens. Steady state
// allocates nothing: the merge buffer, outbox slices, and ready queue
// are all recycled.
func (e *engine) phaseLocked() {
	m := e.merged[:0]
	for r := range e.cells {
		c := &e.cells[r]
		if len(c.out) == 0 {
			continue
		}
		m = append(m, c.out...)
		for i := range c.out {
			c.out[i] = nil
		}
		c.out = c.out[:0]
	}
	if len(m) > 0 {
		e.stats.Phases++
		e.stats.Delivered += int64(len(m))
		if int64(len(m)) > e.stats.MaxPhase {
			e.stats.MaxPhase = int64(len(m))
		}
		sortPackets(m)
		for i, pkt := range m {
			e.w.procs[pkt.dst].mb.push(pkt)
			m[i] = nil
		}
	}
	e.merged = m[:0]
	// Promote, in rank order: every yielded rank (runnable by
	// definition — it was spinning, not waiting), and every blocked
	// rank whose mailbox now has mail.
	for r := range e.cells {
		c := &e.cells[r]
		if c.state == rsYielded || (c.state == rsBlocked && !e.w.procs[r].mb.empty()) {
			c.state = rsReady
			e.readyq = append(e.readyq, r)
		}
	}
	e.grantLocked()
}

// sortPackets orders a merge buffer by the canonical phase key. The
// fuzzer drives this exact function over permuted event sets.
func sortPackets(pkts []*packet) { slices.SortFunc(pkts, comparePhase) }

// comparePhase is the merge comparator — a package-level func so
// slices.SortFunc takes no closure allocation on the hot path.
func comparePhase(a, b *packet) int {
	return vtime.PhaseKey{At: a.arriveAt, Src: a.src, Seq: a.emitSeq}.
		Compare(vtime.PhaseKey{At: b.arriveAt, Src: b.src, Seq: b.emitSeq})
}

// yield is the cooperative checkpoint for spin loops: a rank polling
// Test/Iprobe in a pure spin never blocks, so under strict phase
// stepping its peers' packets would sit in outboxes forever (and two
// mutual spinners would livelock). A yielding rank parks in rsYielded
// — structurally like blocking, except the next barrier ALWAYS
// promotes it. The run therefore advances in deterministic BSP-style
// rounds: every live rank executes from its previous checkpoint to
// its next block-or-yield point, then one barrier flushes and the
// next round begins. Round boundaries depend only on each rank's own
// deterministic execution, never on worker count or host scheduling.
func (e *engine) yield(rank int) {
	e.mu.Lock()
	if e.aborted {
		e.mu.Unlock()
		return
	}
	e.stats.Yields++
	c := &e.cells[rank]
	c.state = rsYielded
	e.runningN--
	e.grantLocked()
	e.maybePhaseLocked()
	for c.state != rsRunning {
		if e.aborted {
			break
		}
		c.cond.Wait()
	}
	e.mu.Unlock()
}

// done retires the calling rank. The LAST rank out always flushes a
// final barrier — even after an abort — so trailing reliability acks
// and detector notices reach mailboxes for drainPending to settle.
func (e *engine) done(rank int) {
	e.mu.Lock()
	c := &e.cells[rank]
	if c.state == rsRunning {
		e.runningN--
	}
	c.state = rsDone
	e.doneN++
	if e.doneN == len(e.cells) {
		e.phaseLocked()
	} else {
		e.grantLocked()
		e.maybePhaseLocked()
	}
	e.mu.Unlock()
}

// abort wakes every rank with a poison packet — MPI_Abort under the
// engine. Out-of-band: the abort packets are pushed directly (not
// through outboxes) BEFORE ranks are woken, so every woken rank's next
// poll finds one.
func (e *engine) abort(origin int, reason string) {
	e.mu.Lock()
	e.abortLocked(origin, reason)
	e.mu.Unlock()
}

func (e *engine) abortLocked(origin int, reason string) {
	if e.aborted {
		return
	}
	for _, q := range e.w.procs {
		q.mb.push(&packet{kind: pktAbort, src: origin, data: []byte(reason)})
	}
	e.aborted = true
	for r := range e.cells {
		c := &e.cells[r]
		if c.state == rsBlocked || c.state == rsReady || c.state == rsYielded {
			c.state = rsRunning
			e.runningN++
		}
		c.cond.Signal()
	}
	e.readyq = e.readyq[:0]
	e.readyHead = 0
}
