// Package nativempi is the simulated "native MPI library" under the
// Java bindings — the role MVAPICH2 (or Open MPI + UCX) plays in the
// paper. It is a complete message-passing runtime: per-rank processes
// with tag/source matching (posted-receive and unexpected-message
// queues, MPI wildcards), eager and rendezvous point-to-point
// protocols, non-blocking requests, reduction operations, and a suite
// of collective algorithms whose selection is governed by a library
// Profile (see profile.go) — the mechanism by which the MVAPICH2-like
// and OpenMPI-like libraries differ.
//
// Ranks are goroutines; real bytes move through per-rank mailboxes.
// All costs are charged to per-rank virtual clocks, and message
// timestamps propagate those clocks, so reported latencies are
// deterministic functions of the cost model, independent of host
// scheduling.
package nativempi

import (
	"errors"
	"fmt"

	"mv2j/internal/jvm"
)

// Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// Errors surfaced by the runtime (the analogues of MPI error classes).
var (
	// ErrTruncated is MPI_ERR_TRUNCATE: a message longer than the
	// posted receive buffer.
	ErrTruncated = errors.New("nativempi: message truncated")
	// ErrRank is MPI_ERR_RANK.
	ErrRank = errors.New("nativempi: rank out of range")
	// ErrTag is MPI_ERR_TAG: negative tags are reserved.
	ErrTag = errors.New("nativempi: invalid tag")
	// ErrCount is MPI_ERR_COUNT.
	ErrCount = errors.New("nativempi: invalid count")
	// ErrComm covers operations on invalid communicators.
	ErrComm = errors.New("nativempi: invalid communicator")
	// ErrRequest covers operations on completed/void requests.
	ErrRequest = errors.New("nativempi: invalid request")
)

// Op identifies a predefined reduction operation.
type Op int

const (
	OpSum Op = iota
	OpProd
	OpMax
	OpMin
	OpLAnd
	OpLOr
	OpBAnd
	OpBOr
	OpBXor
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "MPI_SUM"
	case OpProd:
		return "MPI_PROD"
	case OpMax:
		return "MPI_MAX"
	case OpMin:
		return "MPI_MIN"
	case OpLAnd:
		return "MPI_LAND"
	case OpLOr:
		return "MPI_LOR"
	case OpBAnd:
		return "MPI_BAND"
	case OpBOr:
		return "MPI_BOR"
	case OpBXor:
		return "MPI_BXOR"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Status describes a completed receive, like MPI_Status.
type Status struct {
	// Source is the world... communicator rank the message came from.
	Source int
	// Tag is the matched tag.
	Tag int
	// Bytes is the received payload length (MPI_Get_count in bytes).
	Bytes int
}

// Count returns the element count for the given component kind,
// mirroring MPI_Get_count. It errors if the byte count is not a
// multiple of the element size (MPI_UNDEFINED in the standard).
func (s Status) Count(kind jvm.Kind) (int, error) {
	sz := kind.Size()
	if s.Bytes%sz != 0 {
		return 0, fmt.Errorf("nativempi: %d bytes is not a whole number of %v elements", s.Bytes, kind)
	}
	return s.Bytes / sz, nil
}
