package nativempi

import (
	"fmt"

	"mv2j/internal/jvm"
)

// Scan computes the inclusive prefix reduction: rank r's recvBuf holds
// op(sendBuf_0, ..., sendBuf_r). The classic log-step algorithm: at
// step k, rank r receives from r-2^k (accumulating) and sends its
// current prefix to r+2^k.
func (c *Comm) Scan(sendBuf, recvBuf []byte, kind jvm.Kind, op Op) error {
	defer c.collSpan("scan", len(sendBuf))()
	n := len(sendBuf)
	if len(recvBuf) != n {
		return fmt.Errorf("%w: scan recv buffer %d != send %d", ErrCount, len(recvBuf), n)
	}
	p := c.Size()
	tag := c.collTag()
	copy(recvBuf, sendBuf)
	if p == 1 {
		return nil
	}
	// partial holds the reduction of my block with everything received
	// from lower ranks so far; at each step I forward the partial (the
	// prefix of the contiguous range I currently represent).
	scratch := c.borrowScratch(n)
	defer c.returnScratch(scratch)
	for mask := 1; mask < p; mask <<= 1 {
		dst := c.myRank + mask
		src := c.myRank - mask
		// Both directions may be active in one step; use non-blocking
		// posts to avoid rendezvous deadlock at large sizes.
		var rreq, sreq *Request
		if src >= 0 {
			rreq = c.cirecv(scratch, src, tag)
		}
		if dst < p {
			sreq = c.cisend(recvBuf, dst, tag)
		}
		if sreq != nil {
			if err := c.waitRelease(sreq); err != nil {
				return err
			}
		}
		if rreq != nil {
			if err := c.waitRelease(rreq); err != nil {
				return err
			}
			// Incoming partial covers lower ranks: combine on the left.
			if err := reduceInto(recvBuf, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(n)
		}
	}
	return nil
}

// Exscan computes the exclusive prefix reduction: rank 0's recvBuf is
// left untouched (MPI leaves it undefined; we preserve its contents),
// and rank r>0 receives op(sendBuf_0, ..., sendBuf_{r-1}).
func (c *Comm) Exscan(sendBuf, recvBuf []byte, kind jvm.Kind, op Op) error {
	defer c.collSpan("exscan", len(sendBuf))()
	n := len(sendBuf)
	if len(recvBuf) != n {
		return fmt.Errorf("%w: exscan recv buffer %d != send %d", ErrCount, len(recvBuf), n)
	}
	p := c.Size()
	if p == 1 {
		return nil
	}
	tag := c.collTag()
	// partial accumulates my own contribution for forwarding; recvBuf
	// accumulates everything strictly before me.
	partial := c.borrowScratch(n)
	defer c.returnScratch(partial)
	copy(partial, sendBuf)
	scratch := c.borrowScratch(n)
	defer c.returnScratch(scratch)
	seeded := false
	for mask := 1; mask < p; mask <<= 1 {
		dst := c.myRank + mask
		src := c.myRank - mask
		var rreq, sreq *Request
		if src >= 0 {
			rreq = c.cirecv(scratch, src, tag)
		}
		if dst < p {
			sreq = c.cisend(partial, dst, tag)
		}
		if sreq != nil {
			if err := c.waitRelease(sreq); err != nil {
				return err
			}
		}
		if rreq != nil {
			if err := c.waitRelease(rreq); err != nil {
				return err
			}
			if seeded {
				if err := reduceInto(recvBuf, scratch, kind, op); err != nil {
					return err
				}
			} else {
				copy(recvBuf, scratch)
				seeded = true
			}
			if err := reduceInto(partial, scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(2 * n)
		}
	}
	return nil
}

// ReduceScatter reduces size·p elements across all ranks and scatters
// the result: rank r receives the reduced block r. counts are byte
// lengths per rank (uniform blocks use the same value everywhere).
// Implemented as the ring reduce-scatter for uniform blocks, and the
// reduce-then-scatterv composition otherwise.
func (c *Comm) ReduceScatter(sendBuf, recvBuf []byte, counts []int, kind jvm.Kind, op Op) error {
	defer c.collSpan("reduce_scatter", len(sendBuf))()
	p := c.Size()
	if len(counts) != p {
		return fmt.Errorf("%w: reduce_scatter counts length %d != %d", ErrCount, len(counts), p)
	}
	total := 0
	uniform := true
	for r := 0; r < p; r++ {
		if counts[r] < 0 {
			return fmt.Errorf("%w: negative count for rank %d", ErrCount, r)
		}
		if counts[r] != counts[0] {
			uniform = false
		}
		total += counts[r]
	}
	if len(sendBuf) != total {
		return fmt.Errorf("%w: reduce_scatter send buffer %d != sum(counts) %d", ErrCount, len(sendBuf), total)
	}
	if len(recvBuf) != counts[c.myRank] {
		return fmt.Errorf("%w: reduce_scatter recv buffer %d != counts[me] %d", ErrCount, len(recvBuf), counts[c.myRank])
	}
	esz := kind.Size()
	if total%esz != 0 {
		return fmt.Errorf("%w: %d bytes not a multiple of %v", ErrCount, total, kind)
	}

	if uniform && p > 1 && counts[0] > 0 && counts[0]%esz == 0 {
		// Ring reduce-scatter: p-1 steps, each moving one block.
		n := counts[0]
		tag := c.collTag()
		work := c.borrowScratch(total)
		defer c.returnScratch(work)
		copy(work, sendBuf)
		scratch := c.borrowScratch(n)
		defer c.returnScratch(scratch)
		right := (c.myRank + 1) % p
		left := (c.myRank - 1 + p) % p
		for s := 0; s < p-1; s++ {
			sendBlk := (c.myRank - s + p) % p
			recvBlk := (c.myRank - s - 1 + p) % p
			if err := c.csendrecv(work[sendBlk*n:(sendBlk+1)*n], right, scratch, left, tag); err != nil {
				return err
			}
			if err := reduceInto(work[recvBlk*n:(recvBlk+1)*n], scratch, kind, op); err != nil {
				return err
			}
			c.chargeCompute(n)
		}
		mine := (c.myRank + 1) % p
		owned := c.borrowScratch(n)
		defer c.returnScratch(owned)
		copy(owned, work[mine*n:(mine+1)*n])
		// The ring leaves rank r owning block (r+1)%p; block r sits at
		// rank r-1, so one neighbour exchange (send right, receive
		// left) restores rank-aligned ownership.
		tag2 := c.collTag()
		if err := c.csendrecv(owned, right, recvBuf, left, tag2); err != nil {
			return err
		}
		return nil
	}

	// General case: reduce everything to rank 0, scatter the blocks.
	var full []byte
	if c.myRank == 0 {
		full = c.borrowScratch(total)
		defer c.returnScratch(full)
	}
	if err := c.Reduce(sendBuf, full, kind, op, 0); err != nil {
		return err
	}
	displs := make([]int, p)
	off := 0
	for r := 0; r < p; r++ {
		displs[r] = off
		off += counts[r]
	}
	return c.Scatterv(full, counts, displs, recvBuf, 0)
}
