package nativempi

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Fault tolerance: simulation-grade ULFM.
//
// Without fault tolerance a rank failure has exactly one outcome —
// the retransmit budget toward the dead peer runs dry and the job
// aborts. EnableFT converts that into the ULFM policy instead:
//
//   - A scheduled crash (faults.Crash) kills its rank at the first
//     QUIESCENT operation entry at or past the trigger: no receives
//     posted, no rendezvous handshake in flight. This models a process
//     failing between MPI calls, and it is the determinism anchor —
//     a rank never dies owing protocol steps, so there is never a
//     half-open rendezvous whose fate depends on host scheduling.
//   - The death fans out as failure-notice packets carrying a
//     virtual-time heartbeat verdict: peers suspect the silence after
//     Profile.SuspectBeats missed beats and confirm it one beat
//     later. Pending operations toward the dead rank fail at confirm
//     time with ErrProcFailed — survivors blocked in matched receives
//     or collectives wake instead of deadlocking.
//   - The dead rank's mailbox keeps absorbing traffic; World.drainPending
//     admits (and acks) all of it after the run, so a sender's
//     reliability protocol settles identically whether its target died
//     or not — the simulated NIC acks posthumously. Eager sends toward
//     a dead or revoked destination likewise complete locally and
//     evaporate, exactly like MPI buffered sends; only rendezvous
//     operations, which need the peer's cooperation, fail.
//   - Comm.Revoke poisons a communicator (MPIX_Comm_revoke),
//     Comm.Shrink agrees on the failed set and rebuilds a live-ranks
//     communicator (MPIX_Comm_shrink), and Comm.AgreeFT is
//     fault-tolerant agreement (MPIX_Comm_agree).
//
// What is NOT modeled, deliberately: ERA's full multi-phase agreement
// (our coordinator's decision broadcast commits atomically with
// respect to its own scheduled death instead), failure detection of
// non-crashed-but-slow processes (virtual time has no stragglers), and
// failure awareness for wildcard (AnySource) receives, which in ULFM
// only raise an advisory MPI_ERR_PROC_FAILED_PENDING anyway.

// ErrProcFailed is the MPI_ERR_PROC_FAILED-class error: the operation
// involved a process that has failed.
var ErrProcFailed = errors.New("nativempi: peer process failed")

// ErrRevoked is the MPI_ERR_REVOKED-class error: the communicator was
// revoked by some member.
var ErrRevoked = errors.New("nativempi: communicator revoked")

// recoveryCtx is the reserved context id carrying agreement traffic.
// Recovery must flow on a context that can never be revoked and never
// collides with application communicators (real ids are >= 0).
const recoveryCtx int32 = -2

// rankCrash is the panic payload that unwinds a rank at its scheduled
// death. World.Run recovers it silently: a scheduled death is
// scenario, not job failure.
type rankCrash struct {
	rank int
	at   vtime.Time
}

// EnableFT switches the world to the ULFM-style failure policy. Call
// before Run.
func (w *World) EnableFT() { w.ft = true }

// FTEnabled reports whether the ULFM policy is active.
func (w *World) FTEnabled() bool { return w.ft }

// FailedRanks returns the world ranks that have died, ascending.
func (w *World) FailedRanks() []int {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	var out []int
	for r := range w.deathAt {
		out = append(out, r)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// DeadLetters reports how many payload packets were drained from dead
// ranks' mailboxes after the run (see drainPending).
func (w *World) DeadLetters() int64 { return w.deadLetters }

// confirmTime maps a death instant to the virtual time survivors
// confirm it: SuspectBeats missed heartbeats to suspect, one more to
// confirm.
func (w *World) confirmTime(deathAt vtime.Time) vtime.Time {
	return deathAt.Add(vtime.Duration(w.prof.SuspectBeats+1) * w.prof.HeartbeatPeriod)
}

// markDead registers a death and fans the detector verdict out to
// every peer. Runs on the dying rank's goroutine.
func (w *World) markDead(rank int, at vtime.Time) {
	w.failMu.Lock()
	if w.deathAt == nil {
		w.deathAt = map[int]vtime.Time{}
	}
	if _, dup := w.deathAt[rank]; dup {
		w.failMu.Unlock()
		return
	}
	w.deathAt[rank] = at
	w.failMu.Unlock()
	if w.rec != nil {
		w.rec.Record(trace.Event{
			Rank: rank, Kind: trace.KindFault, Detail: "crash", Peer: -1,
			Start: at, End: at,
		})
	}
	w.met.Add(rank, "ft", "crashes", 1)
	confirmAt := w.confirmTime(at)
	eng := w.eng.Load()
	for _, q := range w.procs {
		if q.rank == rank {
			continue
		}
		// sentAt carries the death instant, arriveAt the confirm time;
		// the receiver derives the suspect transition from the profile.
		pkt := &packet{
			kind: pktFailNotice, src: rank, dst: q.rank,
			sentAt: at, arriveAt: confirmAt,
		}
		// markDead runs on the dying rank's goroutine while it still
		// holds its execution token, so under the engine the notices go
		// through its outbox like any other emission — flushed at the
		// barrier its retirement triggers, in canonical merge order.
		if eng != nil {
			eng.emit(rank, q.rank, pkt)
		} else {
			q.mb.push(pkt)
		}
	}
}

// revokeTime computes the canonical poison instant for revoking a
// communicator: one heartbeat after the latest registered member
// death is confirmed, so concurrent revokers of the same failure
// compute the same instant and the poison's effect on any pending
// operation is order-invariant. A revoke with no registered member
// failure (legal, like MPIX_Comm_revoke) anchors on the caller's
// clock instead.
func (w *World) revokeTime(group []int, fallback vtime.Time) vtime.Time {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	var base vtime.Time
	for _, wr := range group {
		if at, ok := w.deathAt[wr]; ok {
			if c := w.confirmTime(at); c > base {
				base = c
			}
		}
	}
	if base == 0 {
		return fallback.Add(w.prof.HeartbeatPeriod)
	}
	return base
}

// checkCrash is the death trigger, evaluated at every MPI operation
// entry. The rank dies only when quiescent — every request it issued
// has been consumed by a Wait/Test — so death defers past any protocol
// steps the rank still owes its peers (they complete or fail
// deterministically first, never dangle).
//
// Quiescence is judged by the program-order inflight count, never by
// engine state like the posted-receive list: whether an already-posted
// receive has matched depends on when the peer's packet was drained in
// HOST time (the packet may sit in the mailbox long before its virtual
// arrival), and a gate reading that state would make the death instant
// host-scheduling-dependent.
func (p *Proc) checkCrash() {
	p.opCount++
	if p.crash == nil || p.crashed || p.crashHold > 0 {
		return
	}
	c := p.crash
	if !(c.At > 0 && p.clock.Now() >= c.At) && !(c.AfterOps > 0 && p.opCount >= c.AfterOps) {
		return
	}
	if p.inflight > 0 {
		return
	}
	p.die()
}

// die executes the scheduled crash. Without fault tolerance it is the
// MPI_Abort escalation, exactly as an exhausted retransmit budget
// would be; with it, the rank unwinds silently and survivors recover.
func (p *Proc) die() {
	p.crashed = true
	at := p.clock.Now()
	if !p.w.ft {
		reason := fmt.Sprintf("rank %d crashed at %v (no fault tolerance)", p.rank, at)
		p.w.Abort(p.rank, reason)
		panic(abortError{origin: p.rank, reason: reason})
	}
	p.w.markDead(p.rank, at)
	panic(rankCrash{rank: p.rank, at: at})
}

// holdCrash suppresses the crash trigger across a protocol section
// that must commit atomically; the returned func releases it.
func (p *Proc) holdCrash() func() {
	p.crashHold++
	return func() { p.crashHold-- }
}

// failReq completes a request exceptionally at the given virtual
// time (never before it was posted).
func (p *Proc) failReq(req *Request, at vtime.Time, err error) {
	if req.done {
		return
	}
	req.err = err
	req.completeAt = vtime.Max(req.postedAt, at)
	req.done = true
}

// procFailedErr builds the per-peer ErrProcFailed instance.
func procFailedErr(rank int) error {
	return fmt.Errorf("%w: rank %d", ErrProcFailed, rank)
}

// handleFailNotice applies one detector verdict: record the
// suspect→confirm transition and fail every pending operation that
// depends on the dead peer, all at confirm time.
func (p *Proc) handleFailNotice(pkt *packet) {
	dead, deathAt, confirmAt := pkt.src, pkt.sentAt, pkt.arriveAt
	if p.failedPeers == nil {
		p.failedPeers = map[int]vtime.Time{}
	}
	if at, known := p.failedPeers[dead]; known {
		if confirmAt < at {
			p.failedPeers[dead] = confirmAt
		}
		return
	}
	p.failedPeers[dead] = confirmAt
	p.stats.PeerSuspects++
	p.stats.PeerConfirms++
	suspectAt := confirmAt.Add(-p.w.prof.HeartbeatPeriod)
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindDetect,
			Detail: fmt.Sprintf("confirm rank %d dead", dead), Peer: dead,
			Start: suspectAt, End: confirmAt,
		})
	}
	p.w.met.Add(p.rank, "ft", "suspects", 1)
	p.w.met.Add(p.rank, "ft", "confirms", 1)
	p.w.met.Observe(p.rank, "ft", "detect_ps", int64(confirmAt.Sub(deathAt)))

	err := procFailedErr(dead)
	p.posted.failWhere(
		func(req *Request) bool { return req.src == dead },
		func(req *Request) { p.failReq(req, confirmAt, err) })
	for id, req := range p.recvPending {
		if req.rndvFrom == dead {
			delete(p.recvPending, id)
			p.failReq(req, confirmAt, err)
		}
	}
	for id, req := range p.sendPending {
		if req.dst == dead {
			delete(p.sendPending, id)
			p.failReq(req, confirmAt, err)
		}
	}
}

// handleRevoke applies one revocation packet: ctx carries the
// point-to-point context, tag the collective one, arriveAt the
// canonical poison time.
func (p *Proc) handleRevoke(pkt *packet) {
	p.applyRevoke(pkt.ctx, int32(pkt.tag), pkt.arriveAt)
}

// applyRevoke poisons a communicator's two contexts and fails every
// pending operation on them. Later revocations of the same contexts
// min-merge the poison time but have no further effect.
func (p *Proc) applyRevoke(ptCtx, collCtx int32, at vtime.Time) {
	if p.revokedAt == nil {
		p.revokedAt = map[int32]vtime.Time{}
	}
	fresh := false
	for _, ctx := range [2]int32{ptCtx, collCtx} {
		if old, ok := p.revokedAt[ctx]; !ok {
			p.revokedAt[ctx] = at
			fresh = true
		} else if at < old {
			p.revokedAt[ctx] = at
		}
	}
	if !fresh {
		return
	}
	p.stats.RevokesSeen++
	p.w.met.Add(p.rank, "ft", "revokes_applied", 1)
	err := fmt.Errorf("%w: contexts %d/%d", ErrRevoked, ptCtx, collCtx)
	onCtx := func(ctx int32) bool { return ctx == ptCtx || ctx == collCtx }
	p.posted.failWhere(
		func(req *Request) bool { return onCtx(req.ctx) },
		func(req *Request) { p.failReq(req, at, err) })
	for id, req := range p.recvPending {
		if onCtx(req.ctx) {
			delete(p.recvPending, id)
			p.failReq(req, at, err)
		}
	}
	for id, req := range p.sendPending {
		if onCtx(req.ctx) {
			delete(p.sendPending, id)
			p.failReq(req, at, err)
		}
	}
	// Unexpected packets on the revoked contexts can never match a
	// receive again (receives on them fail at entry); drop them so
	// their pooled payloads return instead of leaking. Purging counts
	// as consumption for flow control — the queue space is reclaimed at
	// the poison time, so the credits travel back to their senders.
	p.unexp.purgeWhere(func(k matchKey) bool { return onCtx(k.ctx) }, func(pkt *packet) {
		if pkt.kind == pktEager {
			p.fcConsumed(pkt.src, at)
		}
		freePacket(pkt)
	})
}

// entryCheckSend fails a rendezvous send at entry when its context is
// revoked or its destination confirmed dead — the same deterministic
// outcome the pending request would reach when the notice arrived,
// taken early so no RTS toward a corpse is ever emitted.
func (p *Proc) entryCheckSend(wdst, tag int, ctx int32) (*Request, bool) {
	if !p.w.ft {
		return nil, false
	}
	req := func(at vtime.Time, err error) *Request {
		r := &Request{p: p, dst: wdst, tag: tag, ctx: ctx, postedAt: p.clock.Now()}
		p.failReq(r, at, err)
		return r
	}
	if at, ok := p.revokedAt[ctx]; ok {
		return req(at, fmt.Errorf("%w: context %d", ErrRevoked, ctx)), true
	}
	if at, ok := p.failedPeers[wdst]; ok {
		return req(at, procFailedErr(wdst)), true
	}
	return nil, false
}

// entryCheckRecv fails a just-posted receive when its context is
// revoked or its (named) source confirmed dead. Wildcard receives are
// not failure-checked against peers: see the package comment.
func (p *Proc) entryCheckRecv(req *Request) bool {
	if !p.w.ft {
		return false
	}
	if at, ok := p.revokedAt[req.ctx]; ok {
		p.failReq(req, at, fmt.Errorf("%w: context %d", ErrRevoked, req.ctx))
		return true
	}
	if req.src != AnySource {
		if at, ok := p.failedPeers[req.src]; ok {
			p.failReq(req, at, procFailedErr(req.src))
			return true
		}
	}
	return false
}

// Revoke poisons the communicator on every member — MPIX_Comm_revoke.
// Any pending or future operation on it completes with ErrRevoked (at
// the canonical poison time), which is how survivors blocked against
// departed peers are flushed out of a half-finished collective.
// Revoke is not collective: any member may call it, concurrent calls
// are idempotent, and it never blocks.
func (c *Comm) Revoke() error {
	p := c.p
	if !p.w.ft {
		return fmt.Errorf("%w: Revoke requires fault tolerance (EnableFT)", ErrComm)
	}
	revAt := p.w.revokeTime(c.group, p.clock.Now())
	p.applyRevoke(c.ptCtx, c.collCtx, revAt)
	for i, wr := range c.group {
		if i == c.myRank {
			continue
		}
		// Pushed to every member, dead ones included: a corpse's
		// mailbox counters must not depend on what the revoker knew.
		p.postRaw(wr, &packet{
			kind: pktRevoke, src: p.rank, dst: wr,
			ctx: c.ptCtx, tag: int(c.collCtx),
			sentAt: p.clock.Now(), arriveAt: revAt,
		})
	}
	p.w.met.Add(p.rank, "ft", "revokes", 1)
	return nil
}

// Revoked reports whether this communicator has been revoked (as seen
// by the calling rank).
func (c *Comm) Revoked() bool {
	_, ok := c.p.revokedAt[c.ptCtx]
	return ok
}

// FailedMembers returns the communicator ranks this rank knows to be
// dead, ascending.
func (c *Comm) FailedMembers() []int {
	var out []int
	for i, wr := range c.group {
		if _, dead := c.p.failedPeers[wr]; dead {
			out = append(out, i)
		}
	}
	return out
}

// AgreeFT is fault-tolerant agreement — MPIX_Comm_agree. Every live
// member contributes a flag word; all of them receive the bitwise AND
// of the contributions that made it into the decision. The protocol
// terminates despite members (including the coordinator) dying
// mid-protocol. It must be called by every live member.
func (c *Comm) AgreeFT(flag uint64) (uint64, error) {
	out, _, _, err := c.agree(flag)
	return out, err
}

// Shrink agrees on the failed membership and builds the survivors'
// communicator — MPIX_Comm_shrink. Member order is preserved; fresh
// context ids are agreed as part of the decision so every survivor
// lands on the same pair.
func (c *Comm) Shrink() (*Comm, error) {
	p := c.p
	start := p.clock.Now()
	_, failed, ctxBase, err := c.agree(^uint64(0))
	if err != nil {
		return nil, err
	}
	return c.rebuildWithout(failed, ctxBase, start), nil
}

// AgreeShrink couples agreement on a flag word with communicator
// repair: one protocol round decides the flag AND the failed
// membership. When no member failed, the original communicator comes
// back unchanged; otherwise every survivor gets the same shrunken
// rebuild. Because every agreement allocates a context pair, a member
// calling AgreeShrink as a completion barrier and a member calling it
// (or Shrink) for recovery merge into the same decision — the
// property the benchmark drivers' exit protocol depends on.
func (c *Comm) AgreeShrink(flag uint64) (uint64, *Comm, []int, error) {
	p := c.p
	start := p.clock.Now()
	out, failed, ctxBase, err := c.agree(flag)
	if err != nil {
		return 0, nil, nil, err
	}
	if len(failed) == 0 {
		return out, c, nil, nil
	}
	return out, c.rebuildWithout(failed, ctxBase, start), failed, nil
}

// rebuildWithout materialises the post-agreement communicator: the
// agreed failed members removed, member order preserved, contexts from
// the agreed base.
func (c *Comm) rebuildWithout(failed []int, ctxBase int32, start vtime.Time) *Comm {
	p := c.p
	dead := map[int]bool{}
	for _, f := range failed {
		dead[f] = true
	}
	var group []int
	myNew := -1
	for i, wr := range c.group {
		if dead[i] {
			continue
		}
		if i == c.myRank {
			myNew = len(group)
		}
		group = append(group, wr)
	}
	nc := &Comm{p: p, group: group, myRank: myNew, ptCtx: ctxBase, collCtx: ctxBase + 1}
	p.w.met.Add(p.rank, "ft", "shrinks", 1)
	p.w.met.Observe(p.rank, "ft", "shrink_ps", int64(p.clock.Now().Sub(start)))
	if p.w.rec != nil {
		p.w.rec.Record(trace.Event{
			Rank: p.rank, Kind: trace.KindRecovery,
			Detail: fmt.Sprintf("shrink %d->%d", len(c.group), len(group)), Peer: -1,
			Start: start, End: p.clock.Now(),
		})
	}
	return nc
}

// Agreement wire format (all traffic on recoveryCtx, eager-sized):
//
//	contribution (follower → coordinator), tag agreeTag(c, seq, 0):
//	    [8] flag
//	result (coordinator → follower), tag agreeTag(c, seq, 1):
//	    [1] kind (agreeResult | agreeRestart)
//	    [8] flag (AND of heard contributions; zero for restart)
//	    [4] ctxBase (freshly allocated pair for a possible rebuild)
//	    [(size+7)/8] failed-member bitmap (restart: coordinator's view)
const (
	agreeResult  = 0
	agreeRestart = 1
)

// agreeTag gives each (communicator, agreement, direction) its own tag
// on the shared recovery context.
func agreeTag(c *Comm, seq, dir int) int {
	return (int(c.collCtx)*2048+seq)*2 + dir
}

// agree runs one agreement round set: the lowest live comm rank (by
// this rank's failure knowledge) coordinates — it gathers one
// contribution per live member, ANDs them, and broadcasts the
// decision. A member death mid-gather triggers a restart broadcast
// (carrying the coordinator's grown failure view); a coordinator
// death fails the followers' result receive, and they re-run against
// the next live coordinator. Each retry permanently excludes at least
// one confirmed-dead member, so the protocol terminates. The decision
// broadcast itself commits atomically with respect to the
// coordinator's own scheduled death — the simulation's stand-in for
// ERA's result-recovery sub-protocol.
func (c *Comm) agree(flag uint64) (uint64, []int, int32, error) {
	p := c.p
	if !p.w.ft {
		return 0, nil, 0, fmt.Errorf("%w: agreement requires fault tolerance (EnableFT)", ErrComm)
	}
	c.ftSeq++
	seq := c.ftSeq
	size := len(c.group)
	bm := (size + 7) / 8
	tagC := agreeTag(c, seq, 0)
	tagR := agreeTag(c, seq, 1)
	start := p.clock.Now()
	rounds := 0

	// view accumulates comm ranks known failed for THIS agreement:
	// seeded from detector knowledge each round, grown by restart
	// bitmaps adopted from a coordinator.
	view := map[int]bool{}
	syncView := func() {
		for i, wr := range c.group {
			if i == c.myRank {
				continue
			}
			if _, dead := p.failedPeers[wr]; dead {
				view[i] = true
			}
		}
	}
	finish := func(out uint64, failed []int, ctxBase int32) (uint64, []int, int32, error) {
		p.w.met.Add(p.rank, "ft", "agrees", 1)
		p.w.met.Observe(p.rank, "ft", "agree_rounds", int64(rounds))
		if p.w.rec != nil {
			p.w.rec.Record(trace.Event{
				Rank: p.rank, Kind: trace.KindRecovery,
				Detail: fmt.Sprintf("agree seq=%d rounds=%d", seq, rounds), Peer: -1,
				Start: start, End: p.clock.Now(),
			})
		}
		return out, failed, ctxBase, nil
	}

	for guard := 0; guard < 2*size+4; guard++ {
		rounds++
		syncView()
		coord := -1
		for i := 0; i < size; i++ {
			if i == c.myRank || !view[i] {
				coord = i
				break
			}
		}

		if coord != c.myRank {
			// Follower: contribute to the best coordinator guess, then
			// await its decision. A wrong (already dead) guess costs one
			// round: the contribution evaporates and the result receive
			// fails at the coordinator's confirm time.
			var cbuf [8]byte
			binary.LittleEndian.PutUint64(cbuf[:], flag)
			sreq := p.isendOn(cbuf[:], c.group[coord], tagC, sendOpts{ctx: recoveryCtx})
			if _, err := sreq.Wait(); err != nil && !errors.Is(err, ErrProcFailed) {
				return 0, nil, 0, err
			}
			rbuf := make([]byte, 1+8+4+bm)
			rreq := p.irecvOn(rbuf, c.group[coord], tagR, sendOpts{ctx: recoveryCtx})
			if _, err := rreq.Wait(); err != nil {
				if errors.Is(err, ErrProcFailed) {
					continue
				}
				return 0, nil, 0, err
			}
			if rbuf[0] == agreeRestart {
				for i := 0; i < size; i++ {
					if rbuf[13+i/8]&(1<<(i%8)) != 0 {
						view[i] = true
					}
				}
				continue
			}
			out := binary.LittleEndian.Uint64(rbuf[1:9])
			ctxBase := int32(binary.LittleEndian.Uint32(rbuf[9:13]))
			var failed []int
			for i := 0; i < size; i++ {
				if rbuf[13+i/8]&(1<<(i%8)) != 0 {
					failed = append(failed, i)
				}
			}
			return finish(out, failed, ctxBase)
		}

		// Coordinator: gather one contribution per member outside the
		// view. A receive failing means that member died since the view
		// was built — restart with the grown view.
		agreed := flag
		newDeath := false
		for i := 0; i < size; i++ {
			if i == c.myRank || view[i] {
				continue
			}
			var buf [8]byte
			rreq := p.irecvOn(buf[:], c.group[i], tagC, sendOpts{ctx: recoveryCtx})
			if _, err := rreq.Wait(); err != nil {
				if errors.Is(err, ErrProcFailed) {
					newDeath = true
					continue
				}
				return 0, nil, 0, err
			}
			agreed &= binary.LittleEndian.Uint64(buf[:])
		}
		if newDeath {
			syncView()
			msg := make([]byte, 1+8+4+bm)
			msg[0] = agreeRestart
			for i := range view {
				msg[13+i/8] |= 1 << (i % 8)
			}
			if err := c.agreeBroadcast(view, msg, tagR); err != nil {
				return 0, nil, 0, err
			}
			continue
		}
		// A context pair is allocated for EVERY decision, used or not:
		// it keeps the decision self-contained, so callers that reached
		// the agreement with different intents (completion barrier vs
		// shrink) still converge on one identical result.
		ctxBase := p.w.allocCtx(2)
		msg := make([]byte, 1+8+4+bm)
		msg[0] = agreeResult
		binary.LittleEndian.PutUint64(msg[1:9], agreed)
		binary.LittleEndian.PutUint32(msg[9:13], uint32(ctxBase))
		var failed []int
		for i := 0; i < size; i++ {
			if view[i] {
				failed = append(failed, i)
				msg[13+i/8] |= 1 << (i % 8)
			}
		}
		// The decision is committed: survivors that receive it return
		// from the agreement and will not answer a retry, so the
		// broadcast must not be severed by this rank's own scheduled
		// death halfway through.
		release := p.holdCrash()
		err := c.agreeBroadcast(view, msg, tagR)
		release()
		if err != nil {
			return 0, nil, 0, err
		}
		return finish(agreed, failed, ctxBase)
	}
	return 0, nil, 0, fmt.Errorf("%w: agreement did not converge", ErrProcFailed)
}

// agreeBroadcast sends a result/restart message to every member
// outside the view. Sends toward members that died since are buffered
// sends into the void; only non-failure errors propagate.
func (c *Comm) agreeBroadcast(view map[int]bool, msg []byte, tag int) error {
	p := c.p
	for i := 0; i < len(c.group); i++ {
		if i == c.myRank || view[i] {
			continue
		}
		sreq := p.isendOn(msg, c.group[i], tag, sendOpts{ctx: recoveryCtx})
		if _, err := sreq.Wait(); err != nil && !errors.Is(err, ErrProcFailed) {
			return err
		}
	}
	return nil
}
