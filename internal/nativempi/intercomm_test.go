package nativempi

import (
	"bytes"
	"fmt"
	"mv2j/internal/jvm"
	"testing"
)

// splitHalves partitions the world into two intracommunicators and
// builds an intercommunicator between them over the world bridge.
func splitHalves(pr *Proc) (*Comm, *InterComm, error) {
	world := pr.CommWorld()
	half := world.Size() / 2
	color := 0
	if pr.Rank() >= half {
		color = 1
	}
	local, err := world.Split(color, 0)
	if err != nil {
		return nil, nil, err
	}
	remoteLeader := half // world rank of group 1's leader
	if color == 1 {
		remoteLeader = 0
	}
	ic, err := local.CreateIntercomm(0, world, remoteLeader, 99)
	if err != nil {
		return nil, nil, err
	}
	return local, ic, nil
}

func TestIntercommCreateAndShape(t *testing.T) {
	w := testWorld(2, 3) // 6 ranks -> two groups of 3
	err := w.Run(func(pr *Proc) error {
		_, ic, err := splitHalves(pr)
		if err != nil {
			return err
		}
		if ic.LocalSize() != 3 || ic.RemoteSize() != 3 {
			return fmt.Errorf("intercomm shape %d/%d", ic.LocalSize(), ic.RemoteSize())
		}
		if ic.Rank() != pr.Rank()%3 {
			return fmt.Errorf("local rank %d, want %d", ic.Rank(), pr.Rank()%3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommPointToPoint(t *testing.T) {
	w := testWorld(2, 2) // groups of 2
	err := w.Run(func(pr *Proc) error {
		_, ic, err := splitHalves(pr)
		if err != nil {
			return err
		}
		me := ic.Rank()
		// Pairwise exchange with the same-ranked member of the peer
		// group, addressed by REMOTE rank.
		out := pattern(64, byte(pr.Rank()+1))
		in := make([]byte, 64)
		lowSide := pr.Rank() < 2
		if lowSide {
			if err := ic.Send(out, me, 7); err != nil {
				return err
			}
			st, err := ic.Recv(in, me, 7)
			if err != nil {
				return err
			}
			if st.Source != me {
				return fmt.Errorf("status source %d, want remote rank %d", st.Source, me)
			}
		} else {
			if _, err := ic.Recv(in, me, 7); err != nil {
				return err
			}
			if err := ic.Send(out, me, 7); err != nil {
				return err
			}
		}
		peerWorld := (pr.Rank() + 2) % 4
		if !bytes.Equal(in, pattern(64, byte(peerWorld+1))) {
			return fmt.Errorf("rank %d: intercomm payload corrupted", pr.Rank())
		}
		// Remote-rank validation.
		if err := ic.Send(out, 5, 0); err == nil {
			return fmt.Errorf("out-of-range remote rank accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommTrafficIsolated(t *testing.T) {
	// Intercomm traffic must not cross-match with world traffic that
	// uses identical (src, tag).
	w := testWorld(1, 4)
	err := w.Run(func(pr *Proc) error {
		world := pr.CommWorld()
		_, ic, err := splitHalves(pr)
		if err != nil {
			return err
		}
		if pr.Rank() == 0 {
			// World message first, then intercomm message, same tag,
			// same (world) destination 2 = remote rank 0.
			if err := world.Send([]byte{0xAA}, 2, 3); err != nil {
				return err
			}
			if err := ic.Send([]byte{0xBB}, 0, 3); err != nil {
				return err
			}
		}
		if pr.Rank() == 2 {
			buf := make([]byte, 1)
			// Receive intercomm FIRST: must get 0xBB even though the
			// world message arrived earlier.
			if _, err := ic.Recv(buf, 0, 3); err != nil {
				return err
			}
			if buf[0] != 0xBB {
				return fmt.Errorf("intercomm recv got world traffic: %#x", buf[0])
			}
			if _, err := world.Recv(buf, 0, 3); err != nil {
				return err
			}
			if buf[0] != 0xAA {
				return fmt.Errorf("world recv got %#x", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommMerge(t *testing.T) {
	w := testWorld(2, 2)
	err := w.Run(func(pr *Proc) error {
		_, ic, err := splitHalves(pr)
		if err != nil {
			return err
		}
		// Low group stays low.
		high := pr.Rank() >= 2
		merged, err := ic.Merge(high)
		if err != nil {
			return err
		}
		if merged.Size() != 4 {
			return fmt.Errorf("merged size %d", merged.Size())
		}
		if merged.Rank() != pr.Rank() {
			return fmt.Errorf("merged rank %d, want %d (low group first)", merged.Rank(), pr.Rank())
		}
		// The merged communicator is a full intracommunicator:
		// collectives work.
		buf := encodeInts([]int64{int64(pr.Rank())})
		out := make([]byte, 8)
		if err := merged.Allreduce(buf, out, jvm.Long, OpSum); err != nil {
			return err
		}
		if got := decodeInts(out)[0]; got != 6 {
			return fmt.Errorf("merged allreduce = %d, want 6", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIntercommMergeBothHigh(t *testing.T) {
	// Equal flags: ordering falls back to leader world ranks (group 0
	// first).
	w := testWorld(1, 4)
	err := w.Run(func(pr *Proc) error {
		_, ic, err := splitHalves(pr)
		if err != nil {
			return err
		}
		merged, err := ic.Merge(true)
		if err != nil {
			return err
		}
		if merged.Rank() != pr.Rank() {
			return fmt.Errorf("merged rank %d, want %d", merged.Rank(), pr.Rank())
		}
		return merged.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
