package nativempi

// Indexed tag matching. MPI matching is defined by two ordered queues
// per rank — posted receives and unexpected messages — and the
// standard's non-overtaking rule: a packet matches the EARLIEST posted
// receive it satisfies, a receive matches the EARLIEST arrived packet.
// The original implementation was the textbook pair of linear scans,
// O(queue length) per operation, which dominates host time once the
// window benchmarks keep dozens of operations in flight.
//
// This file replaces both scans with hash-bucketed FIFOs keyed by the
// fully-concrete (ctx, src, tag) triple, plus an ordered wildcard
// side-list for the cases hashing cannot index:
//
//   - posted side: a receive naming both its source and tag lands in
//     its bucket; a receive using AnySource/AnyTag goes to the
//     side-list. An arriving packet is concrete by construction, so at
//     most ONE bucket can hold a match — the candidate set is that
//     bucket's head plus the first matching wildcard entry, and a
//     monotonic post-sequence number picks the earlier of the two.
//     This reproduces the linear scan's answer exactly.
//   - unexpected side: every queued packet is concrete, so a concrete
//     receive can only match its own bucket (head = earliest arrival);
//     a wildcard receive walks the arrival-ordered side-list, which
//     indexes EVERY queued packet. A packet taken through one view is
//     tombstoned in the other and reclaimed lazily.
//
// The structures affect host-side data movement only: which (receive,
// packet) pair matches — and therefore every virtual timestamp — is
// identical to the linear scans, a property matcher_test.go checks
// against a reference implementation under randomized workloads.

// matchKey is the fully-concrete matching triple.
type matchKey struct {
	ctx int32
	src int
	tag int
}

// MatchStats counts matcher activity for one rank. Probes are the
// number of candidate entries examined; a perfectly-indexed workload
// does one probe per lookup, while wildcard traffic degrades toward
// the old linear scan. Bucket shapes depend on host-side arrival
// interleavings, so like MailboxStats the lookup/probe numbers are
// host-only (reported by hostbench), never part of the deterministic
// artifacts. The unexpected-queue HIGH-WATER marks are the exception:
// the queue's content at every dispatch point is a pure function of
// program order and the engine's canonical delivery order, so they are
// deterministic — mirrored into the metrics registry (flowctl.go) and
// the -report rollup, and the quantity the flow-control differential
// suite bounds.
type MatchStats struct {
	PostedLookups int64 `json:"posted_lookups"`
	PostedProbes  int64 `json:"posted_probes"`
	UnexpLookups  int64 `json:"unexp_lookups"`
	UnexpProbes   int64 `json:"unexp_probes"`
	MaxBucket     int64 `json:"max_bucket"` // deepest bucket ever observed

	// Unexpected-queue occupancy high-waters: the deepest the queue
	// ever got, in live packets and queued payload bytes.
	UnexpDepthHiWater int64 `json:"unexp_depth_hiwater"`
	UnexpBytesHiWater int64 `json:"unexp_bytes_hiwater"`
}

// postedEntry is one posted receive with its post-order stamp.
type postedEntry struct {
	req *Request
	seq uint64
}

// postedFIFO is one concrete bucket: append at the tail, pop at the
// head through an index so dequeue is O(1) amortized. Popped and
// vacated slots are nilled so the backing array retains nothing.
type postedFIFO struct {
	q    []postedEntry
	head int
}

func (f *postedFIFO) empty() bool { return f.head == len(f.q) }

func (f *postedFIFO) push(e postedEntry) {
	if f.empty() && f.head > 0 {
		clearTail(f.q, 0)
		f.q, f.head = f.q[:0], 0
	}
	f.q = append(f.q, e)
}

func (f *postedFIFO) peek() postedEntry { return f.q[f.head] }

func (f *postedFIFO) pop() {
	f.q[f.head] = postedEntry{}
	f.head++
	if f.empty() {
		f.q, f.head = f.q[:0], 0
	}
}

// postedQueue indexes a rank's posted receives. Emptied buckets are
// deleted from the map and their FIFO structs recycled: tag-rolling
// traffic (every collective invocation uses a fresh tag) would
// otherwise grow the map and allocate a bucket per invocation.
type postedQueue struct {
	buckets  map[matchKey]*postedFIFO
	wild     []postedEntry // AnySource/AnyTag receives, post order
	seq      uint64
	fifoFree []*postedFIFO
	stats    *MatchStats
}

func (pq *postedQueue) init(stats *MatchStats) {
	pq.buckets = map[matchKey]*postedFIFO{}
	pq.stats = stats
}

func (pq *postedQueue) getFIFO() *postedFIFO {
	if n := len(pq.fifoFree); n > 0 {
		f := pq.fifoFree[n-1]
		pq.fifoFree[n-1] = nil
		pq.fifoFree = pq.fifoFree[:n-1]
		return f
	}
	return &postedFIFO{}
}

// dropBucket removes an emptied bucket, keeping its storage for reuse.
func (pq *postedQueue) dropBucket(key matchKey, f *postedFIFO) {
	delete(pq.buckets, key)
	f.q, f.head = f.q[:0], 0
	pq.fifoFree = append(pq.fifoFree, f)
}

// add appends a receive in post order.
func (pq *postedQueue) add(req *Request) {
	pq.seq++
	e := postedEntry{req: req, seq: pq.seq}
	if req.src == AnySource || req.tag == AnyTag {
		pq.wild = append(pq.wild, e)
		return
	}
	key := matchKey{ctx: req.ctx, src: req.src, tag: req.tag}
	f := pq.buckets[key]
	if f == nil {
		f = pq.getFIFO()
		pq.buckets[key] = f
	}
	f.push(e)
	if depth := int64(len(f.q) - f.head); depth > pq.stats.MaxBucket {
		pq.stats.MaxBucket = depth
	}
}

// take removes and returns the earliest-posted receive matching pkt,
// or nil. pkt carries concrete (ctx, src, tag) values, so the
// candidates are exactly one bucket head and the first matching
// wildcard entry; the post-sequence stamp picks the earlier.
func (pq *postedQueue) take(pkt *packet) *Request {
	pq.stats.PostedLookups++
	key := matchKey{ctx: pkt.ctx, src: pkt.src, tag: pkt.tag}
	f := pq.buckets[key]
	haveConcrete := f != nil && !f.empty()
	if haveConcrete {
		pq.stats.PostedProbes++
	}
	wi := -1
	for i := range pq.wild {
		pq.stats.PostedProbes++
		if matches(pq.wild[i].req, pkt) {
			wi = i
			break
		}
	}
	switch {
	case wi >= 0 && (!haveConcrete || pq.wild[wi].seq < f.peek().seq):
		req := pq.wild[wi].req
		pq.removeWild(wi)
		return req
	case haveConcrete:
		req := f.peek().req
		f.pop()
		if f.empty() {
			pq.dropBucket(key, f)
		}
		return req
	default:
		return nil
	}
}

// removeWild deletes the wildcard entry at index i, preserving order.
func (pq *postedQueue) removeWild(i int) {
	copy(pq.wild[i:], pq.wild[i+1:])
	last := len(pq.wild) - 1
	pq.wild[last] = postedEntry{}
	pq.wild = pq.wild[:last]
}

// failWhere removes every posted receive for which pred is true,
// invoking fail on each. Used by the fault-tolerance sweeps (peer
// death, revocation); fail assigns the same deterministic completion
// to every victim, so visiting buckets in map order is safe.
func (pq *postedQueue) failWhere(pred func(*Request) bool, fail func(*Request)) {
	for key, f := range pq.buckets {
		kept := f.q[:f.head]
		for _, e := range f.q[f.head:] {
			if pred(e.req) {
				fail(e.req)
				continue
			}
			kept = append(kept, e)
		}
		clearTail(f.q, len(kept))
		f.q = kept
		if f.empty() {
			pq.dropBucket(key, f)
		}
	}
	kept := pq.wild[:0]
	for _, e := range pq.wild {
		if pred(e.req) {
			fail(e.req)
			continue
		}
		kept = append(kept, e)
	}
	clearTail(pq.wild, len(kept))
	pq.wild = kept
}

// pending returns the number of posted receives still queued (tests
// and invariant checks only; walks every bucket).
func (pq *postedQueue) pending() int {
	n := len(pq.wild)
	for _, f := range pq.buckets {
		n += len(f.q) - f.head
	}
	return n
}

// unexpEntry is one queued unexpected packet. An entry lives in two
// views at once — its concrete bucket and the arrival-ordered list —
// so removal through one view tombstones it (taken) in the other,
// which reclaims it lazily. The entry, not the packet, carries the
// tombstone: a freed packet struct is recycled through a global pool
// and may be live again elsewhere while a stale slot still points at
// the entry.
type unexpEntry struct {
	pkt      *packet
	key      matchKey
	seq      uint64
	taken    bool
	inBucket bool
	inAll    bool
	freed    bool // on the free list; guards double release
}

// unexpFIFO is one concrete bucket of unexpected entries.
type unexpFIFO struct {
	q    []*unexpEntry
	head int
}

func (f *unexpFIFO) empty() bool { return f.head == len(f.q) }

func (f *unexpFIFO) push(e *unexpEntry) {
	if f.empty() && f.head > 0 {
		clearTail(f.q, 0)
		f.q, f.head = f.q[:0], 0
	}
	f.q = append(f.q, e)
}

func (f *unexpFIFO) pop() *unexpEntry {
	e := f.q[f.head]
	f.q[f.head] = nil
	f.head++
	if f.empty() {
		f.q, f.head = f.q[:0], 0
	}
	return e
}

// unexpQueue indexes a rank's arrived-but-unmatched packets.
type unexpQueue struct {
	buckets  map[matchKey]*unexpFIFO
	all      []*unexpEntry // arrival order, every queued entry
	allHead  int
	stale    int // taken entries still occupying the all-list
	seq      uint64
	free     []*unexpEntry // rank-confined entry recycler
	fifoFree []*unexpFIFO  // emptied-bucket recycler
	stats    *MatchStats

	// Live occupancy, charged in add and discharged in claim (the sole
	// point every removal path — bucket take, wildcard take, purge —
	// funnels through). bytes counts queued payload bytes, so an RTS
	// (data still at the sender) charges zero: exactly the memory an
	// unbounded eager flood grows and flow control's demote watermark
	// bounds.
	bytes int64
	depth int64
}

func (uq *unexpQueue) init(stats *MatchStats) {
	uq.buckets = map[matchKey]*unexpFIFO{}
	uq.stats = stats
}

func (uq *unexpQueue) getFIFO() *unexpFIFO {
	if n := len(uq.fifoFree); n > 0 {
		f := uq.fifoFree[n-1]
		uq.fifoFree[n-1] = nil
		uq.fifoFree = uq.fifoFree[:n-1]
		return f
	}
	return &unexpFIFO{}
}

// dropBucket removes an emptied bucket, keeping its storage for reuse.
func (uq *unexpQueue) dropBucket(key matchKey, f *unexpFIFO) {
	delete(uq.buckets, key)
	f.q, f.head = f.q[:0], 0
	uq.fifoFree = append(uq.fifoFree, f)
}

func (uq *unexpQueue) getEntry() *unexpEntry {
	if n := len(uq.free); n > 0 {
		e := uq.free[n-1]
		uq.free[n-1] = nil
		uq.free = uq.free[:n-1]
		e.freed = false
		return e
	}
	return &unexpEntry{}
}

// release reclaims an entry once neither view holds it. Releasing an
// entry that is already on the free list would hand the same struct to
// two future packets (the bucket-corruption bug class the freed flag
// exists to catch), so it panics.
func (uq *unexpQueue) release(e *unexpEntry) {
	if e.inBucket || e.inAll {
		return
	}
	if e.freed {
		panic("nativempi: unexpected-queue entry double release")
	}
	*e = unexpEntry{}
	e.freed = true
	uq.free = append(uq.free, e)
}

// add queues an arrived packet, taking ownership until a receive (or
// probe-free drop at world teardown) claims it.
func (uq *unexpQueue) add(pkt *packet) {
	uq.seq++
	e := uq.getEntry()
	e.pkt = pkt
	e.key = matchKey{ctx: pkt.ctx, src: pkt.src, tag: pkt.tag}
	e.seq = uq.seq
	e.inBucket, e.inAll = true, true
	uq.bytes += int64(len(pkt.data))
	uq.depth++
	f := uq.buckets[e.key]
	if f == nil {
		f = uq.getFIFO()
		uq.buckets[e.key] = f
	}
	f.push(e)
	uq.all = append(uq.all, e)
	if depth := int64(len(f.q) - f.head); depth > uq.stats.MaxBucket {
		uq.stats.MaxBucket = depth
	}
}

// claim tombstones a live entry and returns its packet, discharging
// its occupancy.
func (uq *unexpQueue) claim(e *unexpEntry) *packet {
	pkt := e.pkt
	uq.bytes -= int64(len(pkt.data))
	uq.depth--
	e.pkt = nil
	e.taken = true
	return pkt
}

// bucketFront returns the bucket's earliest live entry, discarding
// tombstones left by wildcard takes.
func (uq *unexpQueue) bucketFront(key matchKey) (*unexpFIFO, *unexpEntry) {
	f := uq.buckets[key]
	if f == nil {
		return nil, nil
	}
	for !f.empty() {
		e := f.q[f.head]
		if !e.taken {
			return f, e
		}
		f.pop()
		e.inBucket = false
		uq.release(e)
	}
	uq.dropBucket(key, f)
	return nil, nil
}

// take removes and returns the earliest-arrived packet matching req,
// or nil. Concrete receives hit their bucket; wildcard receives walk
// the arrival list. Invariant: stale counts the taken entries still
// occupying all[allHead:].
func (uq *unexpQueue) take(req *Request) *packet {
	uq.stats.UnexpLookups++
	if req.src != AnySource && req.tag != AnyTag {
		key := matchKey{ctx: req.ctx, src: req.src, tag: req.tag}
		f, e := uq.bucketFront(key)
		if e == nil {
			return nil
		}
		uq.stats.UnexpProbes++
		pkt := uq.claim(e)
		f.pop()
		if f.empty() {
			uq.dropBucket(key, f)
		}
		e.inBucket = false
		// e remains tombstoned in the all-list until trimAllHead or
		// maybeCompact reclaims it; releasing it here as well would
		// double-insert it into the free list once compaction runs.
		uq.stale++
		uq.maybeCompact()
		return pkt
	}
	uq.trimAllHead()
	for i := uq.allHead; i < len(uq.all); i++ {
		e := uq.all[i]
		if e.taken {
			continue
		}
		uq.stats.UnexpProbes++
		if uq.entryMatches(req, e) {
			pkt := uq.claim(e)
			if i == uq.allHead {
				uq.popAllHead()
			} else {
				// Interior removal: tombstone in place; its bucket
				// discards it the next time that head is inspected.
				uq.stale++
				uq.maybeCompact()
			}
			return pkt
		}
	}
	return nil
}

// trimAllHead pops leading tombstones off the arrival list.
func (uq *unexpQueue) trimAllHead() {
	for uq.allHead < len(uq.all) && uq.all[uq.allHead].taken {
		uq.stale--
		uq.popAllHead()
	}
}

// popAllHead removes the arrival-list head slot.
func (uq *unexpQueue) popAllHead() {
	e := uq.all[uq.allHead]
	uq.all[uq.allHead] = nil
	uq.allHead++
	if uq.allHead == len(uq.all) {
		uq.all, uq.allHead = uq.all[:0], 0
	}
	e.inAll = false
	uq.release(e)
}

// peek returns the earliest-arrived matching packet without removing
// it (Iprobe).
func (uq *unexpQueue) peek(req *Request) *packet {
	uq.stats.UnexpLookups++
	if req.src != AnySource && req.tag != AnyTag {
		_, e := uq.bucketFront(matchKey{ctx: req.ctx, src: req.src, tag: req.tag})
		if e == nil {
			return nil
		}
		uq.stats.UnexpProbes++
		return e.pkt
	}
	for i := uq.allHead; i < len(uq.all); i++ {
		e := uq.all[i]
		if e.taken {
			continue
		}
		uq.stats.UnexpProbes++
		if uq.entryMatches(req, e) {
			return e.pkt
		}
	}
	return nil
}

// entryMatches mirrors matches() against an entry's cached key.
func (uq *unexpQueue) entryMatches(req *Request, e *unexpEntry) bool {
	if req.ctx != e.key.ctx {
		return false
	}
	if req.src != AnySource && req.src != e.key.src {
		return false
	}
	if req.tag != AnyTag && req.tag != e.key.tag {
		return false
	}
	return true
}

// maybeCompact rebuilds the all-list once tombstones dominate it,
// bounding memory on workloads that never run a wildcard scan.
func (uq *unexpQueue) maybeCompact() {
	if uq.stale < 32 || uq.stale*2 < len(uq.all)-uq.allHead {
		return
	}
	kept := uq.all[:0]
	for _, e := range uq.all[uq.allHead:] {
		if e == nil {
			continue
		}
		if e.taken {
			e.inAll = false
			uq.release(e)
			continue
		}
		kept = append(kept, e)
	}
	clearTail(uq.all, len(kept))
	uq.all = kept
	uq.allHead = 0
	uq.stale = 0
}

// pending returns the number of live queued packets (tests only).
func (uq *unexpQueue) pending() int {
	n := 0
	for i := uq.allHead; i < len(uq.all); i++ {
		if e := uq.all[i]; e != nil && !e.taken {
			n++
		}
	}
	return n
}

// purgeWhere drops every queued packet whose key satisfies pred,
// handing each to free. Used when a context is revoked: packets on it
// can never match again (receives on the context fail at entry), so
// holding them — and their pooled payloads — is pure leakage. All
// entries of a bucket share its key, so purging is a whole-bucket
// operation; the arrival-list tombstones reclaim lazily as usual.
func (uq *unexpQueue) purgeWhere(pred func(matchKey) bool, free func(*packet)) {
	for key, f := range uq.buckets {
		if !pred(key) {
			continue
		}
		for !f.empty() {
			e := f.pop()
			e.inBucket = false
			if !e.taken {
				free(uq.claim(e))
				uq.stale++
			}
			uq.release(e)
		}
		uq.dropBucket(key, f)
	}
	uq.trimAllHead()
	uq.maybeCompact()
}

// pendingFromLive counts queued packets whose source is not in dead
// (tests only). Messages a rank sent before dying legitimately outlive
// it unreceived — eager sends complete locally, like MPI buffered
// sends — so leak audits exclude them.
func (uq *unexpQueue) pendingFromLive(dead map[int]bool) int {
	n := 0
	for i := uq.allHead; i < len(uq.all); i++ {
		if e := uq.all[i]; e != nil && !e.taken && !dead[e.key.src] {
			n++
		}
	}
	return n
}
