package nativempi

import (
	"fmt"
	"math"

	"mv2j/internal/jvm"
)

// reduceInto combines src into dst elementwise: dst = op(dst, src),
// interpreting both byte slices as arrays of kind elements in native
// (little-endian) layout. This is the kernel behind MPI_Reduce and
// friends; the caller charges compute cost separately.
func reduceInto(dst, src []byte, kind jvm.Kind, op Op) error {
	if len(dst) != len(src) {
		return fmt.Errorf("%w: reduce length mismatch %d vs %d", ErrCount, len(dst), len(src))
	}
	sz := kind.Size()
	if len(dst)%sz != 0 {
		return fmt.Errorf("%w: %d bytes not a multiple of %v", ErrCount, len(dst), kind)
	}
	n := len(dst) / sz
	if fastReduce(dst, src, kind, op) {
		return nil
	}
	if kind.IsFloating() {
		return reduceFloat(dst, src, kind, op, n)
	}
	return reduceInt(dst, src, kind, op, n)
}

// fastReduce handles the hot (kind, op) pairs the benchmarks exercise
// without going through the generic element codec. It reports whether
// it handled the combination.
func fastReduce(dst, src []byte, kind jvm.Kind, op Op) bool {
	switch {
	case kind == jvm.Byte && op == OpSum:
		for i := range dst {
			dst[i] += src[i]
		}
		return true
	case kind == jvm.Byte && op == OpMax:
		for i := range dst {
			if int8(src[i]) > int8(dst[i]) {
				dst[i] = src[i]
			}
		}
		return true
	case kind == jvm.Double && op == OpSum:
		for i := 0; i+8 <= len(dst); i += 8 {
			putFloatNative(dst, i, jvm.Double, getFloatNative(dst, i, jvm.Double)+getFloatNative(src, i, jvm.Double))
		}
		return true
	case kind == jvm.Long && op == OpSum:
		for i := 0; i+8 <= len(dst); i += 8 {
			putIntNative(dst, i, jvm.Long, getIntNative(dst, i, jvm.Long)+getIntNative(src, i, jvm.Long))
		}
		return true
	default:
		return false
	}
}

func reduceInt(dst, src []byte, kind jvm.Kind, op Op, n int) error {
	sz := kind.Size()
	for i := 0; i < n; i++ {
		a := getIntNative(dst, i*sz, kind)
		b := getIntNative(src, i*sz, kind)
		var r int64
		switch op {
		case OpSum:
			r = a + b
		case OpProd:
			r = a * b
		case OpMax:
			r = a
			if b > a {
				r = b
			}
		case OpMin:
			r = a
			if b < a {
				r = b
			}
		case OpLAnd:
			r = boolToInt(a != 0 && b != 0)
		case OpLOr:
			r = boolToInt(a != 0 || b != 0)
		case OpBAnd:
			r = a & b
		case OpBOr:
			r = a | b
		case OpBXor:
			r = a ^ b
		default:
			return fmt.Errorf("nativempi: unknown op %v", op)
		}
		putIntNative(dst, i*sz, kind, r)
	}
	return nil
}

func reduceFloat(dst, src []byte, kind jvm.Kind, op Op, n int) error {
	sz := kind.Size()
	for i := 0; i < n; i++ {
		a := getFloatNative(dst, i*sz, kind)
		b := getFloatNative(src, i*sz, kind)
		var r float64
		switch op {
		case OpSum:
			r = a + b
		case OpProd:
			r = a * b
		case OpMax:
			r = math.Max(a, b)
		case OpMin:
			r = math.Min(a, b)
		case OpLAnd:
			r = float64(boolToInt(a != 0 && b != 0))
		case OpLOr:
			r = float64(boolToInt(a != 0 || b != 0))
		default:
			return fmt.Errorf("nativempi: op %v undefined for %v", op, kind)
		}
		putFloatNative(dst, i*sz, kind, r)
	}
	return nil
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Native-layout element accessors (little-endian, matching the jvm
// package's array payload layout).

func getIntNative(b []byte, off int, kind jvm.Kind) int64 {
	var bits uint64
	sz := kind.Size()
	for i := sz - 1; i >= 0; i-- {
		bits = bits<<8 | uint64(b[off+i])
	}
	switch kind {
	case jvm.Byte:
		return int64(int8(bits))
	case jvm.Boolean:
		return int64(bits & 1)
	case jvm.Char:
		return int64(uint16(bits))
	case jvm.Short:
		return int64(int16(bits))
	case jvm.Int:
		return int64(int32(bits))
	case jvm.Long:
		return int64(bits)
	default:
		panic("nativempi: getIntNative on " + kind.String())
	}
}

func putIntNative(b []byte, off int, kind jvm.Kind, v int64) {
	sz := kind.Size()
	bits := uint64(v)
	for i := 0; i < sz; i++ {
		b[off+i] = byte(bits >> (8 * i))
	}
}

func getFloatNative(b []byte, off int, kind jvm.Kind) float64 {
	var bits uint64
	sz := kind.Size()
	for i := sz - 1; i >= 0; i-- {
		bits = bits<<8 | uint64(b[off+i])
	}
	if kind == jvm.Float {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

func putFloatNative(b []byte, off int, kind jvm.Kind, v float64) {
	var bits uint64
	if kind == jvm.Float {
		bits = uint64(math.Float32bits(float32(v)))
	} else {
		bits = math.Float64bits(v)
	}
	sz := kind.Size()
	for i := 0; i < sz; i++ {
		b[off+i] = byte(bits >> (8 * i))
	}
}
