package nativempi

import "fmt"

// Gather collects every rank's n-byte sendBuf into recvBuf at root
// (size·n bytes, rank-ordered). recvBuf may be nil elsewhere.
func (c *Comm) Gather(sendBuf, recvBuf []byte, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	defer c.collSpan("gather", len(sendBuf))()
	p := c.Size()
	n := len(sendBuf)
	if c.myRank == root && len(recvBuf) != n*p {
		return fmt.Errorf("%w: gather recv buffer %d != %d", ErrCount, len(recvBuf), n*p)
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectGather(n, p) {
	case GatherLinear:
		return c.gatherLinear(sendBuf, recvBuf, root, tag)
	default:
		return c.gatherBinomial(sendBuf, recvBuf, root, tag)
	}
}

func (c *Comm) gatherLinear(sendBuf, recvBuf []byte, root, tag int) error {
	if c.myRank != root {
		return c.csend(sendBuf, root, tag)
	}
	n := len(sendBuf)
	copy(recvBuf[root*n:(root+1)*n], sendBuf)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.crecv(recvBuf[r*n:(r+1)*n], r, tag); err != nil {
			return err
		}
	}
	return nil
}

// gatherBinomial funnels blocks up a binomial tree: at each level a
// rank holds the contiguous blocks of its (virtual-rank-ordered)
// subtree. The root un-rotates block positions at the end.
func (c *Comm) gatherBinomial(sendBuf, recvBuf []byte, root, tag int) error {
	p := c.Size()
	n := len(sendBuf)
	v := (c.myRank - root + p) % p

	// acc holds blocks for vranks [v, v+cnt); subtree blocks are
	// received straight into the tail of the borrowed buffer.
	accBuf := c.borrowScratch(n * p)
	defer c.returnScratch(accBuf)
	acc := accBuf[:0]
	acc = append(acc, sendBuf...)
	cnt := 1
	for mask := 1; mask < p; mask <<= 1 {
		if v&mask != 0 {
			parent := ((v ^ mask) + root) % p
			return c.csend(acc, parent, tag)
		}
		partner := v + mask
		if partner < p {
			sub := mask
			if p-partner < sub {
				sub = p - partner
			}
			chunk := acc[len(acc) : len(acc)+sub*n]
			if err := c.crecv(chunk, (partner+root)%p, tag); err != nil {
				return err
			}
			acc = acc[:len(acc)+sub*n]
			cnt += sub
		}
	}
	// Root: acc is vrank-ordered; rotate back to true rank order.
	for vr := 0; vr < p; vr++ {
		r := (vr + root) % p
		copy(recvBuf[r*n:(r+1)*n], acc[vr*n:(vr+1)*n])
	}
	c.chargeCompute(n * p)
	return nil
}

// Scatter distributes root's rank-ordered sendBuf (size·n bytes) into
// every rank's n-byte recvBuf.
func (c *Comm) Scatter(sendBuf, recvBuf []byte, root int) error {
	if err := c.checkRank(root); err != nil {
		return err
	}
	defer c.collSpan("scatter", len(recvBuf))()
	p := c.Size()
	n := len(recvBuf)
	if c.myRank == root && len(sendBuf) != n*p {
		return fmt.Errorf("%w: scatter send buffer %d != %d", ErrCount, len(sendBuf), n*p)
	}
	tag := c.collTag()
	switch c.p.w.prof.SelectScatter(n, p) {
	case ScatterLinear:
		return c.scatterLinear(sendBuf, recvBuf, root, tag)
	default:
		return c.scatterBinomial(sendBuf, recvBuf, root, tag)
	}
}

func (c *Comm) scatterLinear(sendBuf, recvBuf []byte, root, tag int) error {
	if c.myRank != root {
		return c.crecv(recvBuf, root, tag)
	}
	n := len(recvBuf)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		if err := c.csend(sendBuf[r*n:(r+1)*n], r, tag); err != nil {
			return err
		}
	}
	copy(recvBuf, sendBuf[root*n:(root+1)*n])
	return nil
}

// scatterBinomial pushes subtree block ranges down a binomial tree
// (the reverse of gatherBinomial).
func (c *Comm) scatterBinomial(sendBuf, recvBuf []byte, root, tag int) error {
	p := c.Size()
	n := len(recvBuf)
	v := (c.myRank - root + p) % p

	// Each rank receives the blocks of its subtree, vrank-ordered.
	var acc []byte
	defer func() { c.returnScratch(acc) }()
	if v == 0 {
		// Rotate into vrank order once.
		acc = c.borrowScratch(p * n)
		for vr := 0; vr < p; vr++ {
			r := (vr + root) % p
			copy(acc[vr*n:(vr+1)*n], sendBuf[r*n:(r+1)*n])
		}
		c.chargeCompute(n * p)
	} else {
		// Find my receive level: largest mask with v&mask set is where
		// my parent sent me my whole subtree.
		mask := 1
		for mask < p && v%(mask*2) == 0 {
			mask *= 2
		}
		sub := mask
		if p-v < sub {
			sub = p - v
		}
		acc = c.borrowScratch(sub * n)
		parent := ((v - v%(mask*2)) + root) % p
		if err := c.crecv(acc, parent, tag); err != nil {
			return err
		}
	}

	// Forward sub-subtrees downward, widest first.
	myMask := 1
	for myMask < p && v%(myMask*2) == 0 {
		myMask *= 2
	}
	for m := myMask / 2; m >= 1; m /= 2 {
		child := v + m
		if child < p {
			sub := m
			if p-child < sub {
				sub = p - child
			}
			if err := c.csend(acc[m*n:(m+sub)*n], (child+root)%p, tag); err != nil {
				return err
			}
		}
	}
	copy(recvBuf, acc[:n])
	return nil
}
