package nativempi

import (
	"fmt"

	"mv2j/internal/vtime"
)

// Collective algorithm identifiers. Which one runs for a given
// (message size, communicator size) is the library's tuning decision —
// the paper attributes the MVAPICH2-J vs Open MPI-J collective gaps
// "largely to the performance differences of the native libraries",
// and algorithm selection plus per-message software overhead is where
// those differences live.
type (
	BcastAlg     int
	ReduceAlg    int
	AllreduceAlg int
	AllgatherAlg int
	AlltoallAlg  int
	BarrierAlg   int
	GatherAlg    int
	ScatterAlg   int
)

const (
	// BcastBinomial is the classic log2(p)-step binomial tree.
	BcastBinomial BcastAlg = iota
	// BcastKnomial is a k-ary tree: fewer, wider steps; MVAPICH2's
	// default for small messages.
	BcastKnomial
	// BcastScatterAllgather is the van de Geijn large-message
	// algorithm: scatter then ring allgather, moving ~2n bytes per
	// rank instead of n·log(p).
	BcastScatterAllgather
	// BcastBinaryTree is a non-segmented binary tree: every internal
	// hop forwards the full payload — cheap to implement, slow for
	// large messages.
	BcastBinaryTree
	// BcastFlat has the root send to every rank in turn.
	BcastFlat
	// BcastShmAware is the two-level leader-based broadcast: k-nomial
	// among node leaders over the network, then k-nomial fan-out over
	// shared memory within each node — MVAPICH2's multi-node strategy.
	BcastShmAware
	// BcastChain forwards rank-to-rank down a single chain. With
	// segmentation it pipelines large payloads; without it (as here) it
	// degenerates to a p-deep pipe — the pathological small-message
	// choice behind the paper's large broadcast gap.
	BcastChain
	// BcastMultiLeader is the three-level scale-out broadcast: k-nomial
	// among node representatives over the network, k-nomial among each
	// node's SECTION leaders over shared memory, then k-nomial within
	// each section — MVAPICH2's multi-leader design for fat nodes,
	// which keeps several network streams and several memory ports busy
	// per node instead of funnelling everything through one leader.
	BcastMultiLeader
)

const (
	ReduceBinomial ReduceAlg = iota
	ReduceLinear
)

const (
	// AllreduceRecursiveDoubling: log2(p) exchange-and-combine steps.
	AllreduceRecursiveDoubling AllreduceAlg = iota
	// AllreduceRabenseifner: reduce-scatter + allgather; optimal
	// bandwidth for large payloads.
	AllreduceRabenseifner
	// AllreduceReduceBcast: naive composition of a reduce and a bcast.
	AllreduceReduceBcast
	// AllreduceShmAware: intra-node reduce onto node leaders, recursive
	// doubling among leaders, intra-node broadcast.
	AllreduceShmAware
	// AllreduceMultiLeader: each node's ranks are split into
	// LeadersPerNode sections; sections reduce onto their leader,
	// same-index leaders recursive-double ACROSS nodes concurrently
	// (multiple network streams per node), the node's section leaders
	// combine intra-node, and sections broadcast back. The multi-leader
	// shape MVAPICH2 uses once single-leader trees saturate at scale.
	AllreduceMultiLeader
)

const (
	AllgatherRing AllgatherAlg = iota
	AllgatherLinear
)

const (
	AlltoallPairwise AlltoallAlg = iota
	AlltoallLinear
)

const (
	BarrierDissemination BarrierAlg = iota
	BarrierLinear
)

const (
	GatherBinomial GatherAlg = iota
	GatherLinear
)

const (
	ScatterBinomial ScatterAlg = iota
	ScatterLinear
)

// Switch is a three-state feature toggle: the zero value defers to the
// profile's default, so a zero-valued Profile literal keeps its
// documented behaviour.
type Switch int

const (
	// SwitchDefault resolves to the feature's documented default.
	SwitchDefault Switch = iota
	// SwitchOn forces the feature on.
	SwitchOn
	// SwitchOff forces the feature off.
	SwitchOff
)

// Profile is a native library's tuning personality: software overheads
// layered on the raw fabric costs, protocol thresholds, and collective
// algorithm selection. internal/profile provides the MVAPICH2-like and
// OpenMPI-like instances used throughout the evaluation.
type Profile struct {
	Name string

	// Per-message software overhead the library adds at the sender and
	// receiver, by channel class. This is stack depth: request
	// allocation, header matching, completion bookkeeping.
	IntraSendOverhead vtime.Duration
	IntraRecvOverhead vtime.Duration
	InterSendOverhead vtime.Duration
	InterRecvOverhead vtime.Duration

	// EagerIntra/EagerInter override the fabric's protocol thresholds
	// when positive.
	EagerIntra int
	EagerInter int

	// CollMsgOverhead is extra per-message software cost inside
	// collective algorithms (argument checking, schedule interpretation
	// — notably higher in Open MPI's libnbc-style framework).
	CollMsgOverhead vtime.Duration

	// KnomialRadix is the tree arity for BcastKnomial (default 4).
	KnomialRadix int

	// LeadersPerNode is the section-leader count per node for the
	// multi-leader collectives (default 4). Each leader drives its own
	// inter-node stream, so the effective network concurrency per node
	// is min(LeadersPerNode, ranks on the node).
	LeadersPerNode int

	// ReduceBandwidth is the local elementwise-combine rate in
	// bytes/second for reduction computation.
	ReduceBandwidth float64

	// Reliability sublayer tuning, engaged only when a fault plan is
	// attached to the fabric. RetransmitRTO is the initial ack timeout;
	// each unacknowledged attempt multiplies it by RetransmitBackoff
	// (exponential backoff). After MaxRetransmits attempts without an
	// ack the peer is declared failed and the job aborts (the
	// MPI_Abort escalation path, instead of deadlocking).
	RetransmitRTO     vtime.Duration
	RetransmitBackoff int
	MaxRetransmits    int

	// ZeroCopyRndv selects the rendezvous data-phase datapath. On (the
	// default), the DATA packet carries a read-only borrow of the
	// sender's buffer and the receiver performs the only host memcpy —
	// the RDMA-style single-copy path. Off restores the framed
	// wire-buffer copy. The switch governs HOST data movement only:
	// every virtual timestamp is computed identically on both paths, so
	// traces, metrics, and measured times are byte-identical either
	// way. A fault plan or fault tolerance forces the wire-copy path
	// regardless (retransmission and corruption need a mutable framed
	// image of the payload).
	ZeroCopyRndv Switch

	// RDMA transport tuning. Rendezvous messages of at least
	// RDMAThreshold bytes complete via a single remote-memory placement
	// (an RDMA write issued after the RTS/CTS key exchange) instead of a
	// receiver-side DATA landing: both endpoints register their buffers
	// — cost charged to virtual time, amortized by the pin-down
	// registration cache below — and the completion bypasses the
	// receiver's protocol stack (fabric.Params.RDMAFinOverhead replaces
	// RecvOverhead plus software receive overhead). A rendezvous BELOW
	// the threshold is also promoted to RDMA when the sender's buffer is
	// already registered — the adaptive switch keyed on cache state,
	// since a warm registration makes the RDMA path strictly cheaper.
	// Zero selects the 256 KiB default; negative disables the RDMA
	// protocol entirely. A fault plan or fault tolerance disables it
	// too: remote placement cannot be framed, checksummed, or
	// retransmitted, and a failure sweep could orphan a remote key.
	RDMAThreshold int

	// RDMAPlacement selects the HOST datapath of an RDMA-mode
	// rendezvous, exactly as ZeroCopyRndv does for the framed path: on
	// (the default), the receiver's buffer travels back in the CTS and
	// the sender performs the transfer's only host memcpy directly into
	// it — the placement write. Off stages the payload through the
	// framed DATA path instead. The switch governs host data movement
	// ONLY; every virtual quantity (registration charges, completion
	// times, traces, metrics) is computed identically on both settings.
	RDMAPlacement Switch

	// DDTGatherDirect selects the HOST datapath of a non-contiguous
	// (derived-datatype) transfer above the eager limit, exactly as
	// ZeroCopyRndv and RDMAPlacement do for contiguous payloads: on (the
	// default), a strided rendezvous send borrows the sender's iovec
	// outright (the receiver scatters straight from the user array) and
	// a strided RDMA placement gathers from the sender's runs directly
	// into the receiver's strided landing runs — no intermediate pack
	// buffer on either side. Off stages the payload through a packed
	// wire image instead — the framed fallback that fault plans and
	// fault tolerance always use. The switch governs host data movement
	// ONLY: every virtual quantity is computed identically on both
	// settings, which TestDDTZeroCopyDifferential enforces.
	DDTGatherDirect Switch

	// DDTPackRun is the per-run CPU cost of packing (or unpacking) a
	// non-contiguous EAGER payload: the eager tier always materialises a
	// contiguous wire image, and the CPU pays this much for each run
	// boundary beyond the first — zero for contiguous messages, so
	// existing clocks are untouched. Rendezvous-tier gathers are
	// NIC-offloaded and charge nothing per run. Protocol-level (both
	// datapath settings charge it identically); zero selects 15 ns.
	DDTPackRun vtime.Duration

	// Pin-down registration-cache economics (MVAPICH2's regcache). The
	// cache holds up to RegCacheEntries buffer registrations totalling
	// at most RegCacheBytes; exceeding either evicts the least recently
	// used unpinned entry, charging DeregisterBase. A registration
	// (cache miss) costs RegisterBase plus RegisterPerPage per 4 KiB
	// page — the driver/NIC pinning cost Liu et al. measure. Zero
	// values select the defaults (128 entries, 64 MiB, 5 µs, 200 ns,
	// 2 µs).
	RegCacheEntries int
	RegCacheBytes   int64
	RegisterBase    vtime.Duration
	RegisterPerPage vtime.Duration
	DeregisterBase  vtime.Duration

	// RDMAStageChunk is the pipeline chunk size of the NON-RDMA
	// large-message fallback for one-sided operations: when the RDMA
	// protocol is unavailable (disabled, faults, FT), a large Put/Get/
	// Accumulate is staged through send/recv machinery in chunks of
	// this size, paying per-chunk CPU overheads at both ends — the
	// honest cost the RDMA channel exists to avoid. Zero selects the
	// 16 KiB default.
	RDMAStageChunk int

	// Credit-based eager flow control (MVAPICH2's RC-channel credit
	// scheme). EagerCredits is the per-peer budget of eager messages a
	// sender may have outstanding — injected but not yet consumed by a
	// matching receive at the destination. Zero (the default) disables
	// flow control entirely: eager senders inject without limit, as
	// before. When positive, a sender that exhausts its budget parks in
	// virtual time with exponential receiver-not-ready backoff (polling
	// at RetransmitRTO, RetransmitRTO*Backoff, ...) until the receiver
	// returns credit. Credits travel back piggybacked on every frame
	// the receiver sends toward the sender (payloads and reliability
	// acks alike); CreditBatch bounds the staleness for one-sided
	// traffic — after that many consumptions with no piggyback
	// opportunity the receiver emits an explicit CREDIT frame. Zero
	// selects half of EagerCredits (at least one). Like acks, credit
	// frames are NIC-autonomous: they charge no CPU time, so below the
	// credit limit a flow-controlled run is byte-identical to an
	// uncontrolled one.
	EagerCredits int
	CreditBatch  int

	// UnexpectedQueueBytes is the receiver's backpressure watermark:
	// when the unexpected-message queue holds at least half this many
	// payload bytes, returned credits carry a demote signal and the
	// affected senders route further eager-sized messages through the
	// rendezvous handshake (payload stays at the sender until a receive
	// is posted), so a sustained flood degrades into sender-side stalls
	// instead of unbounded receiver memory. Zero selects
	// EagerCredits * 64 KiB when flow control is on; ignored when off.
	UnexpectedQueueBytes int64

	// ThreadLevel is the highest MPI threading level this library build
	// supports — the `threads=single|funneled|serialized|multiple`
	// variant of an MVAPICH2 build. InitThread negotiates downward:
	// provided = min(required, ThreadLevel). Zero selects
	// ThreadMultiple (the variant a Java-HPC deployment builds with).
	ThreadLevel ThreadLevel

	// LockArbitrationCost is the virtual CPU cost a thread pays each
	// time it acquires the library's coarse entry lock while another
	// thread's critical section is still in flight — the MPICH-style
	// global-lock arbitration that bounds MPI_THREAD_MULTIPLE message
	// rates. Charged only on contended entries, so single-threaded
	// programs (and uncontended multithreaded ones) are byte-identical
	// with the cost set or not. Zero selects 150 ns.
	LockArbitrationCost vtime.Duration

	// InjectEndpoints is the number of independent injection resources
	// (NIC send queues) a rank fans its threads over under
	// MPI_THREAD_MULTIPLE — fewer endpoints than threads means sends
	// from different threads still serialize on shared hardware. Zero
	// selects 4; single-threaded execution always uses one.
	InjectEndpoints int

	// Failure-detector tuning (fault-tolerant worlds only). Every rank
	// conceptually heartbeats every HeartbeatPeriod; a silent peer is
	// suspected after SuspectBeats missed beats and confirmed dead one
	// beat later. Like ack timing, the detector is charged to virtual
	// clocks: survivors learn of a death (and their pending operations
	// toward it fail) at confirm time, never instantaneously.
	HeartbeatPeriod vtime.Duration
	SuspectBeats    int

	// Algorithm selectors, by payload bytes and communicator size.
	// Nil selectors fall back to reasonable defaults (see normalize).
	SelectBcast     func(nbytes, p int) BcastAlg
	SelectReduce    func(nbytes, p int) ReduceAlg
	SelectAllreduce func(nbytes, p int) AllreduceAlg
	SelectAllgather func(nbytes, p int) AllgatherAlg
	SelectAlltoall  func(nbytes, p int) AlltoallAlg
	SelectBarrier   func(p int) BarrierAlg
	SelectGather    func(nbytes, p int) GatherAlg
	SelectScatter   func(nbytes, p int) ScatterAlg
}

// normalize fills unset fields with safe defaults.
func (pr Profile) normalize() Profile {
	if pr.Name == "" {
		pr.Name = "generic"
	}
	if pr.KnomialRadix < 2 {
		pr.KnomialRadix = 4
	}
	if pr.LeadersPerNode < 1 {
		pr.LeadersPerNode = 4
	}
	if pr.ReduceBandwidth <= 0 {
		pr.ReduceBandwidth = 8e9
	}
	if pr.RetransmitRTO <= 0 {
		pr.RetransmitRTO = 25 * vtime.Microsecond
	}
	if pr.RetransmitBackoff < 2 {
		pr.RetransmitBackoff = 2
	}
	if pr.MaxRetransmits < 1 {
		pr.MaxRetransmits = 12
	}
	if pr.EagerCredits > 0 {
		if pr.CreditBatch <= 0 {
			pr.CreditBatch = max(1, pr.EagerCredits/2)
		}
		if pr.UnexpectedQueueBytes <= 0 {
			pr.UnexpectedQueueBytes = int64(pr.EagerCredits) * (64 << 10)
		}
	}
	if pr.ThreadLevel == 0 {
		pr.ThreadLevel = ThreadMultiple
	}
	if pr.LockArbitrationCost <= 0 {
		pr.LockArbitrationCost = 150 * vtime.Nanosecond
	}
	if pr.InjectEndpoints <= 0 {
		pr.InjectEndpoints = 4
	}
	if pr.HeartbeatPeriod <= 0 {
		pr.HeartbeatPeriod = 20 * vtime.Microsecond
	}
	if pr.SuspectBeats < 1 {
		pr.SuspectBeats = 3
	}
	if pr.ZeroCopyRndv == SwitchDefault {
		pr.ZeroCopyRndv = SwitchOn
	}
	if pr.RDMAThreshold == 0 {
		pr.RDMAThreshold = 256 << 10
	}
	if pr.RDMAPlacement == SwitchDefault {
		pr.RDMAPlacement = SwitchOn
	}
	if pr.RegCacheEntries <= 0 {
		pr.RegCacheEntries = 128
	}
	if pr.RegCacheBytes <= 0 {
		pr.RegCacheBytes = 64 << 20
	}
	if pr.RegisterBase <= 0 {
		pr.RegisterBase = 5 * vtime.Microsecond
	}
	if pr.RegisterPerPage <= 0 {
		pr.RegisterPerPage = 200 * vtime.Nanosecond
	}
	if pr.DeregisterBase <= 0 {
		pr.DeregisterBase = 2 * vtime.Microsecond
	}
	if pr.RDMAStageChunk <= 0 {
		pr.RDMAStageChunk = 16 << 10
	}
	if pr.DDTGatherDirect == SwitchDefault {
		pr.DDTGatherDirect = SwitchOn
	}
	if pr.DDTPackRun <= 0 {
		pr.DDTPackRun = 15 * vtime.Nanosecond
	}
	if pr.SelectBcast == nil {
		pr.SelectBcast = func(nbytes, p int) BcastAlg {
			if p >= 256 {
				return BcastMultiLeader
			}
			if nbytes > 64*1024 {
				return BcastScatterAllgather
			}
			return BcastBinomial
		}
	}
	if pr.SelectReduce == nil {
		pr.SelectReduce = func(nbytes, p int) ReduceAlg { return ReduceBinomial }
	}
	if pr.SelectAllreduce == nil {
		pr.SelectAllreduce = func(nbytes, p int) AllreduceAlg {
			if p >= 256 {
				return AllreduceMultiLeader
			}
			if nbytes > 64*1024 {
				return AllreduceRabenseifner
			}
			return AllreduceRecursiveDoubling
		}
	}
	if pr.SelectAllgather == nil {
		pr.SelectAllgather = func(nbytes, p int) AllgatherAlg { return AllgatherRing }
	}
	if pr.SelectAlltoall == nil {
		pr.SelectAlltoall = func(nbytes, p int) AlltoallAlg { return AlltoallPairwise }
	}
	if pr.SelectBarrier == nil {
		pr.SelectBarrier = func(p int) BarrierAlg { return BarrierDissemination }
	}
	if pr.SelectGather == nil {
		pr.SelectGather = func(nbytes, p int) GatherAlg { return GatherBinomial }
	}
	if pr.SelectScatter == nil {
		pr.SelectScatter = func(nbytes, p int) ScatterAlg { return ScatterBinomial }
	}
	return pr
}

// Validate rejects knob combinations that normalize would otherwise
// paper over with a silent clamp but that almost certainly indicate a
// misconfigured run. The zero-means-default convention is preserved:
// zero values are always valid. The CLIs call this before building a
// world so a typo fails the launch with a message instead of quietly
// running a different experiment.
func (pr Profile) Validate() error {
	if pr.EagerCredits < 0 {
		return fmt.Errorf("profile %q: EagerCredits %d is negative (0 disables flow control)", pr.Name, pr.EagerCredits)
	}
	if pr.CreditBatch < 0 {
		return fmt.Errorf("profile %q: CreditBatch %d is negative (0 selects half of EagerCredits)", pr.Name, pr.CreditBatch)
	}
	if pr.EagerCredits == 0 && pr.CreditBatch > 0 {
		return fmt.Errorf("profile %q: CreditBatch %d set but flow control is off (EagerCredits 0)", pr.Name, pr.CreditBatch)
	}
	if pr.EagerCredits > 0 && pr.CreditBatch > pr.EagerCredits {
		return fmt.Errorf("profile %q: CreditBatch %d exceeds EagerCredits %d; a parked sender could wait forever for a grant",
			pr.Name, pr.CreditBatch, pr.EagerCredits)
	}
	if pr.UnexpectedQueueBytes < 0 {
		return fmt.Errorf("profile %q: UnexpectedQueueBytes %d is negative", pr.Name, pr.UnexpectedQueueBytes)
	}
	if pr.EagerCredits == 0 && pr.UnexpectedQueueBytes > 0 {
		return fmt.Errorf("profile %q: UnexpectedQueueBytes %d set but flow control is off (EagerCredits 0)", pr.Name, pr.UnexpectedQueueBytes)
	}
	if pr.RetransmitRTO < 0 {
		return fmt.Errorf("profile %q: RetransmitRTO %v is negative (0 selects the default); the reliability and RNR timers need a positive period", pr.Name, pr.RetransmitRTO)
	}
	if pr.RetransmitBackoff < 0 {
		return fmt.Errorf("profile %q: RetransmitBackoff %d is negative", pr.Name, pr.RetransmitBackoff)
	}
	if pr.MaxRetransmits < 0 {
		return fmt.Errorf("profile %q: MaxRetransmits %d is negative", pr.Name, pr.MaxRetransmits)
	}
	if pr.EagerIntra < 0 || pr.EagerInter < 0 {
		return fmt.Errorf("profile %q: negative eager threshold (intra %d, inter %d)", pr.Name, pr.EagerIntra, pr.EagerInter)
	}
	if pr.RDMAThreshold > 0 {
		if lim := max(pr.EagerIntra, pr.EagerInter); lim > 0 && pr.RDMAThreshold <= lim {
			return fmt.Errorf("profile %q: RDMAThreshold %d is at or below the eager limit %d; such messages would be eager and RDMA at once",
				pr.Name, pr.RDMAThreshold, lim)
		}
	}
	if pr.HeartbeatPeriod < 0 {
		return fmt.Errorf("profile %q: HeartbeatPeriod %v is negative", pr.Name, pr.HeartbeatPeriod)
	}
	if pr.ThreadLevel < 0 || pr.ThreadLevel > ThreadMultiple {
		return fmt.Errorf("profile %q: ThreadLevel %d is not a threading level (0 selects MULTIPLE; valid: %d..%d)",
			pr.Name, pr.ThreadLevel, ThreadSingle, ThreadMultiple)
	}
	if pr.LockArbitrationCost < 0 {
		return fmt.Errorf("profile %q: LockArbitrationCost %v is negative (0 selects the default)", pr.Name, pr.LockArbitrationCost)
	}
	if pr.ThreadLevel == ThreadSingle && pr.LockArbitrationCost > 0 {
		return fmt.Errorf("profile %q: LockArbitrationCost %v set but ThreadLevel is SINGLE; a single-threaded build has no entry lock to arbitrate",
			pr.Name, pr.LockArbitrationCost)
	}
	if pr.InjectEndpoints < 0 {
		return fmt.Errorf("profile %q: InjectEndpoints %d is negative (0 selects the default)", pr.Name, pr.InjectEndpoints)
	}
	if pr.InjectEndpoints > 1 && pr.ThreadLevel >= ThreadSingle && pr.ThreadLevel < ThreadMultiple {
		return fmt.Errorf("profile %q: InjectEndpoints %d needs ThreadLevel MULTIPLE (got %v); below it at most one thread injects at a time",
			pr.Name, pr.InjectEndpoints, pr.ThreadLevel)
	}
	if pr.DDTPackRun < 0 {
		return fmt.Errorf("profile %q: DDTPackRun %v is negative (0 selects the default)", pr.Name, pr.DDTPackRun)
	}
	if pr.DDTGatherDirect < SwitchDefault || pr.DDTGatherDirect > SwitchOff {
		return fmt.Errorf("profile %q: DDTGatherDirect %d is not a Switch value (valid: %d..%d)",
			pr.Name, pr.DDTGatherDirect, SwitchDefault, SwitchOff)
	}
	return nil
}
