//go:build race

package nativempi

// raceEnabled reports whether the race detector instruments this
// binary. Under -race, sync.Pool deliberately drops puts at random to
// widen race coverage, so allocation-count assertions are meaningless.
const raceEnabled = true
