package nativempi

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"mv2j/internal/cluster"
	"mv2j/internal/fabric"
	"mv2j/internal/faults"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

func thrWorld(nodes, ppn int, prof Profile) *World {
	topo := cluster.New(nodes, ppn)
	return NewWorld(topo, fabric.Default(topo), prof)
}

// TestInitThreadDowngrade: provided = min(required, build level), and
// a rank that never calls InitThread is SINGLE.
func TestInitThreadDowngrade(t *testing.T) {
	cases := []struct {
		build    ThreadLevel
		required ThreadLevel
		want     ThreadLevel
	}{
		{ThreadSingle, ThreadMultiple, ThreadSingle},
		{ThreadFunneled, ThreadMultiple, ThreadFunneled},
		{ThreadSerialized, ThreadSerialized, ThreadSerialized},
		{ThreadMultiple, ThreadMultiple, ThreadMultiple},
		{ThreadMultiple, ThreadFunneled, ThreadFunneled},
		{0, ThreadMultiple, ThreadMultiple}, // zero build level defaults to MULTIPLE
	}
	for _, tc := range cases {
		w := thrWorld(1, 1, Profile{ThreadLevel: tc.build})
		err := w.Run(func(p *Proc) error {
			if got := p.ThreadLevelProvided(); got != ThreadSingle {
				return fmt.Errorf("before InitThread: provided %v, want %v", got, ThreadSingle)
			}
			if got := p.InitThread(tc.required); got != tc.want {
				return fmt.Errorf("build %v, required %v: provided %v, want %v", tc.build, tc.required, got, tc.want)
			}
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}
}

// TestRunThreadsGates: the launch preconditions fail with errors, not
// panics — SINGLE level, nesting, bad arguments.
func TestRunThreadsGates(t *testing.T) {
	w := thrWorld(1, 1, Profile{ThreadLevel: ThreadSingle})
	err := w.Run(func(p *Proc) error {
		p.InitThread(ThreadMultiple) // downgraded to SINGLE
		if err := p.RunThreads(2, func(int) error { return nil }); err == nil {
			return fmt.Errorf("RunThreads(2) under SINGLE did not fail")
		}
		if err := p.RunThreads(0, func(int) error { return nil }); err == nil {
			return fmt.Errorf("RunThreads(0) did not fail")
		}
		if err := p.RunThreads(1, nil); err == nil {
			return fmt.Errorf("RunThreads with nil body did not fail")
		}
		// n == 1 runs inline regardless of level.
		ran := false
		if err := p.RunThreads(1, func(tid int) error { ran = tid == 0; return nil }); err != nil {
			return err
		}
		if !ran {
			return fmt.Errorf("RunThreads(1) did not run the body inline")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	w = thrWorld(1, 1, Profile{})
	err = w.Run(func(p *Proc) error {
		p.InitThread(ThreadMultiple)
		return p.RunThreads(2, func(tid int) error {
			if err := p.RunThreads(2, func(int) error { return nil }); err == nil {
				return fmt.Errorf("nested RunThreads did not fail")
			}
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
}

// thrArtifacts captures the full deterministic surface of one run.
type thrArtifacts struct {
	recvs  [][]byte
	clocks []vtime.Time
	trace  []byte
	met    []byte
	host   HostStats
}

func captureThrArtifacts(w *World, n int, body func(p *Proc, out *[][]byte) error) (thrArtifacts, error) {
	rec := trace.New(0)
	met := metrics.NewRegistry()
	w.SetRecorder(rec)
	w.SetMetrics(met)
	a := thrArtifacts{recvs: make([][]byte, n), clocks: make([]vtime.Time, n)}
	err := w.Run(func(p *Proc) error {
		if err := body(p, &a.recvs); err != nil {
			return err
		}
		a.clocks[p.Rank()] = p.Clock().Now()
		return nil
	})
	if err != nil {
		return a, err
	}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		return a, err
	}
	a.trace = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := met.WriteJSON(&buf); err != nil {
		return a, err
	}
	a.met = buf.Bytes()
	a.host = w.HostStats()
	return a, nil
}

func sameArtifacts(t *testing.T, label string, a, b thrArtifacts) {
	t.Helper()
	for r := range a.recvs {
		if !bytes.Equal(a.recvs[r], b.recvs[r]) {
			t.Errorf("%s: rank %d receive payloads differ", label, r)
		}
		if a.clocks[r] != b.clocks[r] {
			t.Errorf("%s: rank %d final clock %d vs %d", label, r, a.clocks[r], b.clocks[r])
		}
	}
	if !bytes.Equal(a.trace, b.trace) {
		t.Errorf("%s: trace JSONL differs", label)
	}
	if !bytes.Equal(a.met, b.met) {
		t.Errorf("%s: metrics JSON differs", label)
	}
}

// singleThreadedWorkload is a fixed mixed eager/rendezvous/collective
// program that never calls RunThreads.
func singleThreadedWorkload(p *Proc, out *[][]byte) error {
	c := p.CommWorld()
	me := p.Rank()
	n := c.Size()
	next := (me + 1) % n
	prev := (me - 1 + n) % n
	big := pattern(256<<10, byte(me+1)) // rendezvous-sized
	rbuf := make([]byte, len(big))
	sreq, err := c.Isend(big, next, 7)
	if err != nil {
		return err
	}
	rreq, err := c.Irecv(rbuf, prev, 7)
	if err != nil {
		return err
	}
	if _, err := sreq.Wait(); err != nil {
		return err
	}
	if _, err := rreq.Wait(); err != nil {
		return err
	}
	small := pattern(64, byte(0x20+me))
	sink := make([]byte, 64)
	if _, err := c.Sendrecv(small, next, 9, sink, prev, 9); err != nil {
		return err
	}
	if err := c.Barrier(); err != nil {
		return err
	}
	(*out)[me] = append(append([]byte(nil), rbuf[:128]...), sink...)
	return nil
}

// TestThreadLevelDifferential: a single-threaded program produces
// byte-identical artifacts whatever ThreadLevel the library was built
// with — including when it formally wraps itself in InitThread and a
// one-thread RunThreads. The thread machinery must cost nothing until
// threads actually contend.
func TestThreadLevelDifferential(t *testing.T) {
	levels := []ThreadLevel{ThreadSingle, ThreadFunneled, ThreadSerialized, ThreadMultiple}
	var base thrArtifacts
	for i, lvl := range levels {
		w := thrWorld(2, 2, Profile{ThreadLevel: lvl})
		a, err := captureThrArtifacts(w, 4, singleThreadedWorkload)
		if err != nil {
			t.Fatalf("level %v: %v", lvl, err)
		}
		if i == 0 {
			base = a
			continue
		}
		sameArtifacts(t, fmt.Sprintf("%v vs %v", lvl, levels[0]), a, base)
	}

	// Same program under MULTIPLE, wrapped in RunThreads(1) and an
	// explicit InitThread: still byte-identical.
	w := thrWorld(2, 2, Profile{ThreadLevel: ThreadMultiple})
	a, err := captureThrArtifacts(w, 4, func(p *Proc, out *[][]byte) error {
		if got := p.InitThread(ThreadMultiple); got != ThreadMultiple {
			return fmt.Errorf("provided %v", got)
		}
		return p.RunThreads(1, func(int) error { return singleThreadedWorkload(p, out) })
	})
	if err != nil {
		t.Fatal(err)
	}
	sameArtifacts(t, "RunThreads(1) vs bare", a, base)
}

// mtWorkload is a multithreaded exchange: every rank runs T threads,
// each thread streams a window of eager messages to the same thread id
// on the next rank and receives from the previous rank — a miniature
// of the mr-mt benchmark, with enough traffic to contend the entry
// lock.
func mtWorkload(T int) func(p *Proc, out *[][]byte) error {
	return func(p *Proc, out *[][]byte) error {
		c := p.CommWorld()
		me := p.Rank()
		n := c.Size()
		next := (me + 1) % n
		prev := (me - 1 + n) % n
		if got := p.InitThread(ThreadMultiple); got != ThreadMultiple {
			return fmt.Errorf("provided %v", got)
		}
		sums := make([][]byte, T)
		err := p.RunThreads(T, func(tid int) error {
			const window = 8
			buf := pattern(512, byte(me*T+tid+1))
			rbuf := make([]byte, 512)
			sum := make([]byte, 0, window)
			reqs := make([]*Request, 0, 2*window)
			for i := 0; i < window; i++ {
				sreq, err := c.Isend(buf, next, 100+tid)
				if err != nil {
					return err
				}
				rreq, err := c.Irecv(rbuf, prev, 100+tid)
				if err != nil {
					return err
				}
				if _, err := sreq.Wait(); err != nil {
					return err
				}
				if _, err := rreq.Wait(); err != nil {
					return err
				}
				sum = append(sum, rbuf[0])
			}
			_ = reqs
			sums[tid] = sum
			return nil
		})
		if err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		var all []byte
		for _, s := range sums {
			all = append(all, s...)
		}
		(*out)[me] = all
		return nil
	}
}

// TestThreadMultipleDeterministic: a multithreaded run's artifacts are
// a pure function of virtual state — byte-stable across repeats and
// engine worker-pool widths (the host knobs most likely to perturb a
// schedule-dependent implementation).
func TestThreadMultipleDeterministic(t *testing.T) {
	prof := Profile{ThreadLevel: ThreadMultiple, LockArbitrationCost: 200 * vtime.Nanosecond}
	run := func(workers int) thrArtifacts {
		t.Helper()
		w := thrWorld(2, 2, prof)
		w.SetEngineWorkers(workers)
		a, err := captureThrArtifacts(w, 4, mtWorkload(4))
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	base := run(0)
	for _, workers := range []int{1, 2, 0} {
		sameArtifacts(t, fmt.Sprintf("workers=%d", workers), run(workers), base)
	}
	if base.host.Threads.Groups == 0 || base.host.Threads.Handoffs == 0 {
		t.Errorf("thread multiplexer saw no activity: %+v", base.host.Threads)
	}
}

// TestThreadArbitrationCharged: contended entries pay the arbitration
// cost, show up in HostStats and the deterministic thread/* metrics,
// and raising the cost moves virtual time.
func TestThreadArbitrationCharged(t *testing.T) {
	elapsed := func(cost vtime.Duration) (vtime.Time, HostStats, []byte) {
		w := thrWorld(2, 2, Profile{ThreadLevel: ThreadMultiple, LockArbitrationCost: cost})
		met := metrics.NewRegistry()
		w.SetMetrics(met)
		var max vtime.Time
		clocks := make([]vtime.Time, 4)
		err := w.Run(func(p *Proc) error {
			out := make([][]byte, 4)
			if err := mtWorkload(4)(p, &out); err != nil {
				return err
			}
			clocks[p.Rank()] = p.Clock().Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range clocks {
			if c > max {
				max = c
			}
		}
		var buf bytes.Buffer
		if err := met.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return max, w.HostStats(), buf.Bytes()
	}
	cheapT, cheapHS, _ := elapsed(vtime.Nanosecond)
	dearT, dearHS, dearMet := elapsed(10 * vtime.Microsecond)
	if cheapHS.Threads.Contended == 0 || dearHS.Threads.Contended == 0 {
		t.Fatalf("expected contended entries: cheap %+v dear %+v", cheapHS.Threads, dearHS.Threads)
	}
	if dearT <= cheapT {
		t.Errorf("raising LockArbitrationCost did not move virtual time: %d vs %d", dearT, cheapT)
	}
	if dearHS.Threads.ArbWaitPs <= cheapHS.Threads.ArbWaitPs {
		t.Errorf("ArbWaitPs did not grow with the cost: %d vs %d", dearHS.Threads.ArbWaitPs, cheapHS.Threads.ArbWaitPs)
	}
	if !bytes.Contains(dearMet, []byte(`"thread"`)) {
		t.Errorf("deterministic registry is missing the thread/* series")
	}
}

// TestThreadFunneledViolation: an MPI call from a non-main thread
// under FUNNELED panics deterministically; the job aborts with the
// violation in the error.
func TestThreadFunneledViolation(t *testing.T) {
	w := thrWorld(1, 2, Profile{ThreadLevel: ThreadFunneled})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		p.InitThread(ThreadFunneled)
		return p.RunThreads(2, func(tid int) error {
			if tid != 1 {
				return nil
			}
			_, _, err := c.Iprobe(AnySource, AnyTag) // any MPI call must trip the gate
			return err
		})
	})
	if err == nil || !strings.Contains(err.Error(), "MPI_THREAD_FUNNELED") {
		t.Fatalf("expected a FUNNELED violation abort, got %v", err)
	}
}

// TestThreadSerializedOverlap: two threads inside MPI at once under
// SERIALIZED is an application error and panics deterministically.
func TestThreadSerializedOverlap(t *testing.T) {
	w := thrWorld(1, 2, Profile{ThreadLevel: ThreadSerialized})
	err := w.Run(func(p *Proc) error {
		c := p.CommWorld()
		me := p.Rank()
		p.InitThread(ThreadSerialized)
		if me == 1 {
			// Peer rank: plain single-threaded echo traffic (it may be
			// aborted mid-call when rank 0 trips the gate).
			buf := make([]byte, 16)
			for i := 0; i < 2; i++ {
				if _, err := c.Recv(buf, 0, i); err != nil {
					return err
				}
			}
			return nil
		}
		return p.RunThreads(2, func(tid int) error {
			// Both threads issue blocking sends: the first parks inside
			// its call (rendezvous wait), the second's entry overlaps it.
			buf := pattern(256<<10, byte(tid+1))
			return c.Send(buf, 1, tid)
		})
	})
	if err == nil || !strings.Contains(err.Error(), "MPI_THREAD_SERIALIZED") {
		t.Fatalf("expected a SERIALIZED overlap abort, got %v", err)
	}
}

// TestThreadEndpointFanOut: under MULTIPLE with several injection
// endpoints, concurrent threads' rendezvous data phases stop
// serializing on one NIC cursor — wall-clock (virtual) time beats the
// single-endpoint run. Rendezvous traffic is the path where fan-out
// can show: the data phase is CTS-driven (start = max(cts arrival,
// endpoint cursor)), outside the entry-lock critical section. Eager
// blocking sends inject inside the lock, so the arbitration order
// already serializes their clocks and endpoint count cannot matter —
// an honest property of the coarse-lock model, not a plumbing gap.
func TestThreadEndpointFanOut(t *testing.T) {
	run := func(endpoints int) vtime.Time {
		t.Helper()
		prof := Profile{ThreadLevel: ThreadMultiple, InjectEndpoints: endpoints, EagerInter: 1 << 10, EagerIntra: 1 << 10}
		w := thrWorld(2, 1, prof)
		var maxT vtime.Time
		clocks := make([]vtime.Time, 2)
		err := w.Run(func(p *Proc) error {
			c := p.CommWorld()
			me := p.Rank()
			p.InitThread(ThreadMultiple)
			const T = 4
			err := p.RunThreads(T, func(tid int) error {
				buf := pattern(64<<10, byte(tid+1))
				rbuf := make([]byte, len(buf))
				for i := 0; i < 4; i++ {
					if me == 0 {
						if err := c.Send(buf, 1, 300+tid); err != nil {
							return err
						}
					} else {
						if _, err := c.Recv(rbuf, 0, 300+tid); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			clocks[me] = p.Clock().Now()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range clocks {
			if c > maxT {
				maxT = c
			}
		}
		return maxT
	}
	one := run(1)
	four := run(4)
	if four >= one {
		t.Errorf("4 endpoints (%v) not faster than 1 (%v)", four, one)
	}
}

// TestProfileValidateThreading: nonsensical thread-level combinations
// are rejected with errors naming the field.
func TestProfileValidateThreading(t *testing.T) {
	bad := []Profile{
		{ThreadLevel: -1},
		{ThreadLevel: 5},
		{LockArbitrationCost: -vtime.Nanosecond},
		{ThreadLevel: ThreadSingle, LockArbitrationCost: vtime.Nanosecond},
		{InjectEndpoints: -2},
		{ThreadLevel: ThreadSerialized, InjectEndpoints: 2},
		{ThreadLevel: ThreadSingle, InjectEndpoints: 4},
	}
	for i, pr := range bad {
		if err := pr.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted a nonsensical combo", i, pr)
		}
	}
	good := []Profile{
		{},
		{ThreadLevel: ThreadMultiple, InjectEndpoints: 8, LockArbitrationCost: vtime.Microsecond},
		{ThreadLevel: ThreadFunneled},
		{ThreadLevel: ThreadSingle},
		{InjectEndpoints: 1},
	}
	for i, pr := range good {
		if err := pr.Validate(); err != nil {
			t.Errorf("case %d: Validate rejected a valid profile: %v", i, err)
		}
	}
}

// TestRunThreadsUnderFaults: thread groups refuse to launch when the
// fabric carries a fault plan (the reliability timers assume one
// timeline per rank).
func TestRunThreadsUnderFaults(t *testing.T) {
	topo := cluster.New(1, 2)
	plan, err := faults.ParseSpec("seed=1,drop=0.01")
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.Default(topo).WithFaults(plan)
	w := NewWorld(topo, fab, Profile{})
	err = w.Run(func(p *Proc) error {
		p.InitThread(ThreadMultiple)
		if err := p.RunThreads(2, func(int) error { return nil }); err == nil {
			return fmt.Errorf("RunThreads under a fault plan did not fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
