// Package faults provides a seeded, deterministic fault plan for the
// simulated interconnect: per-channel-class drop / duplicate / corrupt
// / delay probabilities plus targeted one-shot faults ("drop the 3rd
// eager message from rank 2 to rank 5"). The fabric consults the plan
// on every transfer; the nativempi reliability sublayer turns the
// verdicts into retransmissions, duplicate suppression and checksum
// rejections whose costs are charged to virtual time.
//
// Every verdict is a pure function of (seed, src, dst, stream, seq,
// attempt): no mutable RNG state is shared between ranks, so fault
// decisions are identical across runs regardless of host goroutine
// scheduling — the property the determinism regression test guards.
// Both endpoints of a transfer can evaluate the same verdict (the
// receiver uses this to decide whether its ack survives, mirroring the
// sender's precomputation of the same coin flip).
package faults

import (
	"fmt"

	"mv2j/internal/vtime"
)

// Stream classifies wire traffic into independent sequence-number
// spaces. Streams exist because sequence numbers must be assigned in
// an order that is deterministic per (src, dst) pair: matching traffic
// is numbered in sender program order, while control/bulk rendezvous
// traffic is keyed by the rendezvous request id instead.
type Stream uint8

const (
	// StreamMatch carries eager payloads and rendezvous RTS packets —
	// the traffic the MPI matching engine orders.
	StreamMatch Stream = iota
	// StreamCtl carries rendezvous CTS replies.
	StreamCtl
	// StreamBulk carries rendezvous data payloads.
	StreamBulk
	// StreamRMA carries one-sided requests (put/accumulate/get).
	StreamRMA
	// StreamRMAReply carries one-sided get replies.
	StreamRMAReply
)

func (s Stream) String() string {
	switch s {
	case StreamMatch:
		return "eager"
	case StreamCtl:
		return "cts"
	case StreamBulk:
		return "data"
	case StreamRMA:
		return "rma"
	case StreamRMAReply:
		return "rmareply"
	default:
		return fmt.Sprintf("Stream(%d)", uint8(s))
	}
}

// StreamByName resolves the spec-file stream names.
func StreamByName(name string) (Stream, bool) {
	switch name {
	case "eager", "match":
		return StreamMatch, true
	case "cts":
		return StreamCtl, true
	case "data":
		return StreamBulk, true
	case "rma":
		return StreamRMA, true
	case "rmareply":
		return StreamRMAReply, true
	default:
		return 0, false
	}
}

// Kind names a fault class, used by targeted one-shot faults.
type Kind uint8

const (
	Drop Kind = iota
	Duplicate
	Corrupt
	Delay
)

func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Duplicate:
		return "dup"
	case Corrupt:
		return "corrupt"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

func kindByName(name string) (Kind, bool) {
	switch name {
	case "drop":
		return Drop, true
	case "dup", "duplicate":
		return Duplicate, true
	case "corrupt":
		return Corrupt, true
	case "delay":
		return Delay, true
	default:
		return 0, false
	}
}

// Rates are the per-transmission fault probabilities of one channel
// class. Probabilities apply independently per transmission attempt
// (so a retransmission rolls fresh coins).
type Rates struct {
	// Drop is the probability a transmission never arrives.
	Drop float64
	// Duplicate is the probability the fabric delivers a second copy.
	Duplicate float64
	// Corrupt is the probability one byte of the wire image is flipped
	// (caught by the reliability layer's checksum and treated as loss).
	Corrupt float64
	// Delay is the probability a transmission is late; the extra
	// latency is uniform in (0, DelayMax].
	Delay float64
	// DelayMax bounds the injected extra latency (default 10µs).
	DelayMax vtime.Duration
}

// DefaultDelayMax is used when a delay fault fires with DelayMax unset.
const DefaultDelayMax = 10 * vtime.Microsecond

func (r Rates) validate(class string) error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", r.Drop}, {"dup", r.Duplicate}, {"corrupt", r.Corrupt}, {"delay", r.Delay}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s.%s probability %g outside [0,1]", class, p.name, p.v)
		}
	}
	if r.DelayMax < 0 {
		return fmt.Errorf("faults: %s.delaymax negative", class)
	}
	return nil
}

// Zero reports whether this class injects nothing.
func (r Rates) Zero() bool {
	return r.Drop == 0 && r.Duplicate == 0 && r.Corrupt == 0 && r.Delay == 0
}

// Target is a one-shot fault aimed at a specific transfer: the Nth
// (1-based) message of a stream from world rank Src to world rank Dst.
// It fires on the first transmission attempt only, so the reliability
// layer's retransmission is what recovers from it.
type Target struct {
	Kind   Kind
	Src    int
	Dst    int
	Stream Stream
	// Nth is the 1-based sequence number within (Src→Dst, Stream).
	Nth uint64
	// Delay is the injected latency for Kind == Delay.
	Delay vtime.Duration
}

func (t Target) String() string {
	s := fmt.Sprintf("%v:%d>%d:%v:%d", t.Kind, t.Src, t.Dst, t.Stream, t.Nth)
	if t.Kind == Delay {
		s += fmt.Sprintf(":%v", t.Delay)
	}
	return s
}

// Crash schedules the death of one rank — the process-failure fault
// kind behind the ULFM-style recovery layer. Exactly one trigger must
// be set: At kills the rank at the first MPI operation it enters at or
// after that virtual time, AfterOps kills it on entry to its
// AfterOps-th (1-based) operation. Like every other verdict the
// schedule is pure data, so a crash is identical across runs.
type Crash struct {
	// Rank is the world rank that dies.
	Rank int
	// At is the virtual-time trigger (0 = unset).
	At vtime.Time
	// AfterOps is the operation-count trigger (0 = unset).
	AfterOps uint64
}

func (c Crash) String() string {
	if c.AfterOps > 0 {
		return fmt.Sprintf("crash:%d:op%d", c.Rank, c.AfterOps)
	}
	return fmt.Sprintf("crash:%d@%v", c.Rank, vtime.Duration(c.At))
}

// Plan is a complete fault schedule: seeded probabilistic rates per
// channel class plus targeted one-shot faults and scheduled rank
// crashes. A nil *Plan means a lossless fabric everywhere a plan is
// accepted.
type Plan struct {
	// Seed drives every probabilistic verdict.
	Seed uint64
	// Intra applies to intra-node (shared-memory) transfers, Inter to
	// inter-node (network) transfers.
	Intra, Inter Rates
	// Targets are one-shot faults, applied on first transmission.
	Targets []Target
	// Crashes are scheduled rank deaths (at most one per rank).
	Crashes []Crash
}

// CrashOf returns the crash scheduled for a rank, if any.
func (p *Plan) CrashOf(rank int) (Crash, bool) {
	if p == nil {
		return Crash{}, false
	}
	for _, c := range p.Crashes {
		if c.Rank == rank {
			return c, true
		}
	}
	return Crash{}, false
}

// Uniform returns a plan applying the same drop probability to both
// channel classes — the shape the chaos suite sweeps.
func Uniform(seed uint64, drop float64) *Plan {
	r := Rates{Drop: drop}
	return &Plan{Seed: seed, Intra: r, Inter: r}
}

// Validate reports a descriptive error for a nonsensical plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if err := p.Intra.validate("intra"); err != nil {
		return err
	}
	if err := p.Inter.validate("inter"); err != nil {
		return err
	}
	for _, t := range p.Targets {
		if t.Src < 0 || t.Dst < 0 {
			return fmt.Errorf("faults: target %v has negative rank", t)
		}
		if t.Nth == 0 {
			return fmt.Errorf("faults: target %v: Nth is 1-based", t)
		}
	}
	seen := map[int]bool{}
	for _, c := range p.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("faults: crash %v has negative rank", c)
		}
		if (c.At > 0) == (c.AfterOps > 0) {
			return fmt.Errorf("faults: crash %v needs exactly one of a time or an op-count trigger", c)
		}
		if seen[c.Rank] {
			return fmt.Errorf("faults: rank %d has more than one scheduled crash", c.Rank)
		}
		seen[c.Rank] = true
	}
	return nil
}

// Verdict is the fate of one transmission attempt.
type Verdict struct {
	// Drop: the attempt never reaches the destination.
	Drop bool
	// Duplicate: the destination receives two copies.
	Duplicate bool
	// CorruptPos >= 0 flips one byte of the wire image at that
	// position (mod frame length); -1 means intact.
	CorruptPos int
	// Delay is extra latency added to the arrival time.
	Delay vtime.Duration
}

// Salts separating the independent coin flips derived from one
// (seed, src, dst, stream, seq, attempt) identity.
const (
	saltDrop uint64 = iota + 0x5fa41
	saltDup
	saltCorrupt
	saltCorruptPos
	saltDelay
	saltDelayAmt
	saltAck
)

// splitmix64 is the SplitMix64 output function — a strong 64-bit
// mixer, used here as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll derives the coin for one (salt, transfer identity) pair.
func (p *Plan) roll(salt uint64, src, dst int, stream Stream, seq uint64, attempt int) uint64 {
	h := splitmix64(p.Seed ^ salt)
	h = splitmix64(h ^ uint64(src+1))
	h = splitmix64(h ^ uint64(dst+1)<<20)
	h = splitmix64(h ^ uint64(stream))
	h = splitmix64(h ^ seq)
	h = splitmix64(h ^ uint64(attempt))
	return h
}

// u01 maps a hash to [0, 1).
func u01(h uint64) float64 { return float64(h>>11) / float64(uint64(1)<<53) }

func (p *Plan) rates(intra bool) Rates {
	if intra {
		return p.Intra
	}
	return p.Inter
}

// Data returns the fate of transmission attempt `attempt` (0-based) of
// message `seq` (1-based within its stream) from src to dst. Nil plans
// return a clean verdict.
func (p *Plan) Data(intra bool, src, dst int, stream Stream, seq uint64, attempt int) Verdict {
	v := Verdict{CorruptPos: -1}
	if p == nil {
		return v
	}
	if attempt == 0 {
		for _, t := range p.Targets {
			if t.Src != src || t.Dst != dst || t.Stream != stream || t.Nth != seq {
				continue
			}
			switch t.Kind {
			case Drop:
				v.Drop = true
			case Duplicate:
				v.Duplicate = true
			case Corrupt:
				v.CorruptPos = int(p.roll(saltCorruptPos, src, dst, stream, seq, attempt) >> 1)
			case Delay:
				d := t.Delay
				if d <= 0 {
					d = DefaultDelayMax
				}
				v.Delay += d
			}
		}
		if v.Drop {
			return v
		}
	}
	r := p.rates(intra)
	if r.Drop > 0 && u01(p.roll(saltDrop, src, dst, stream, seq, attempt)) < r.Drop {
		v.Drop = true
		return v
	}
	if r.Corrupt > 0 && v.CorruptPos < 0 &&
		u01(p.roll(saltCorrupt, src, dst, stream, seq, attempt)) < r.Corrupt {
		v.CorruptPos = int(p.roll(saltCorruptPos, src, dst, stream, seq, attempt) >> 1)
	}
	if r.Duplicate > 0 && u01(p.roll(saltDup, src, dst, stream, seq, attempt)) < r.Duplicate {
		v.Duplicate = true
	}
	if r.Delay > 0 && u01(p.roll(saltDelay, src, dst, stream, seq, attempt)) < r.Delay {
		maxD := r.DelayMax
		if maxD <= 0 {
			maxD = DefaultDelayMax
		}
		frac := u01(p.roll(saltDelayAmt, src, dst, stream, seq, attempt))
		v.Delay += vtime.Duration(frac*float64(maxD)) + 1
	}
	return v
}

// AckDropped reports whether the acknowledgement of the given data
// transmission is lost. src/dst name the DATA direction (the ack
// travels dst→src), so sender and receiver evaluate identical
// arguments and agree on the outcome.
func (p *Plan) AckDropped(intra bool, src, dst int, stream Stream, seq uint64, attempt int) bool {
	if p == nil {
		return false
	}
	r := p.rates(intra)
	if r.Drop <= 0 {
		return false
	}
	return u01(p.roll(saltAck, src, dst, stream, seq, attempt)) < r.Drop
}

// Active reports whether the plan can ever inject a fault. The
// reliability layer is engaged whenever a plan is attached, even an
// all-zero one (useful for overhead measurements), so this is
// informational.
func (p *Plan) Active() bool {
	return p != nil && (!p.Intra.Zero() || !p.Inter.Zero() || len(p.Targets) > 0 || len(p.Crashes) > 0)
}
