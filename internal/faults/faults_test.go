package faults

import (
	"testing"

	"mv2j/internal/vtime"
)

func TestVerdictDeterminism(t *testing.T) {
	p := &Plan{Seed: 7, Inter: Rates{Drop: 0.3, Duplicate: 0.2, Corrupt: 0.1, Delay: 0.5, DelayMax: vtime.Micros(5)}}
	for seq := uint64(1); seq <= 200; seq++ {
		for attempt := 0; attempt < 4; attempt++ {
			a := p.Data(false, 2, 5, StreamMatch, seq, attempt)
			b := p.Data(false, 2, 5, StreamMatch, seq, attempt)
			if a != b {
				t.Fatalf("verdict not deterministic at seq %d attempt %d: %+v vs %+v", seq, attempt, a, b)
			}
			if p.AckDropped(false, 2, 5, StreamMatch, seq, attempt) != p.AckDropped(false, 2, 5, StreamMatch, seq, attempt) {
				t.Fatalf("ack verdict not deterministic at seq %d", seq)
			}
		}
	}
}

func TestVerdictRatesRoughlyHonoured(t *testing.T) {
	p := Uniform(99, 0.1)
	drops := 0
	const n = 20000
	for seq := uint64(1); seq <= n; seq++ {
		if p.Data(false, 0, 1, StreamMatch, seq, 0).Drop {
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.07 || got > 0.13 {
		t.Fatalf("10%% drop plan dropped %.3f of transfers", got)
	}
}

func TestSeedChangesOutcomes(t *testing.T) {
	a, b := Uniform(1, 0.5), Uniform(2, 0.5)
	same := 0
	for seq := uint64(1); seq <= 256; seq++ {
		if a.Data(false, 0, 1, StreamMatch, seq, 0).Drop == b.Data(false, 0, 1, StreamMatch, seq, 0).Drop {
			same++
		}
	}
	if same == 256 {
		t.Fatal("seeds 1 and 2 produced identical drop schedules")
	}
}

func TestClassSeparation(t *testing.T) {
	p := &Plan{Seed: 3, Inter: Rates{Drop: 1}}
	if p.Data(true, 0, 1, StreamMatch, 1, 0).Drop {
		t.Fatal("intra transfer hit by inter-only plan")
	}
	if !p.Data(false, 0, 1, StreamMatch, 1, 0).Drop {
		t.Fatal("inter transfer survived drop=1 plan")
	}
}

func TestTargetsFireOnceOnFirstAttempt(t *testing.T) {
	p := &Plan{Seed: 5, Targets: []Target{{Kind: Drop, Src: 2, Dst: 5, Stream: StreamMatch, Nth: 3}}}
	for seq := uint64(1); seq <= 6; seq++ {
		v := p.Data(false, 2, 5, StreamMatch, seq, 0)
		if v.Drop != (seq == 3) {
			t.Fatalf("seq %d drop=%v", seq, v.Drop)
		}
	}
	if p.Data(false, 2, 5, StreamMatch, 3, 1).Drop {
		t.Fatal("one-shot target must not hit the retransmission")
	}
	if p.Data(false, 5, 2, StreamMatch, 3, 0).Drop {
		t.Fatal("target hit the reverse direction")
	}
	if p.Data(false, 2, 5, StreamBulk, 3, 0).Drop {
		t.Fatal("target hit the wrong stream")
	}
}

func TestNilPlanIsClean(t *testing.T) {
	var p *Plan
	v := p.Data(false, 0, 1, StreamMatch, 1, 0)
	if v.Drop || v.Duplicate || v.CorruptPos >= 0 || v.Delay != 0 {
		t.Fatalf("nil plan verdict %+v", v)
	}
	if p.AckDropped(false, 0, 1, StreamMatch, 1, 0) {
		t.Fatal("nil plan dropped an ack")
	}
	if p.Active() {
		t.Fatal("nil plan active")
	}
}

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("seed=42,drop=0.01,dup=0.005,corrupt=0.002,delay=0.1,delaymax=20us,inter.drop=0.05,target=drop:2>5:eager:3,target=delay:0>1:data:2:50us")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 {
		t.Fatalf("seed %d", p.Seed)
	}
	if p.Intra.Drop != 0.01 || p.Inter.Drop != 0.05 {
		t.Fatalf("drop rates %+v %+v", p.Intra, p.Inter)
	}
	if p.Intra.DelayMax != vtime.Micros(20) {
		t.Fatalf("delaymax %v", p.Intra.DelayMax)
	}
	if len(p.Targets) != 2 {
		t.Fatalf("targets %v", p.Targets)
	}
	if p.Targets[0] != (Target{Kind: Drop, Src: 2, Dst: 5, Stream: StreamMatch, Nth: 3}) {
		t.Fatalf("target[0] %+v", p.Targets[0])
	}
	if p.Targets[1].Delay != vtime.Micros(50) || p.Targets[1].Stream != StreamBulk {
		t.Fatalf("target[1] %+v", p.Targets[1])
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"bogus=1",
		"drop=1.5",
		"drop=x",
		"seed=-1",
		"delaymax=20",
		"shmib.drop=0.1",
		"target=drop:2>5:eager:0",
		"target=vanish:2>5:eager:1",
		"target=drop:2>5:nostream:1",
		"target=drop:25:eager:1",
		"target=drop:2>5:eager:1:10us",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}
