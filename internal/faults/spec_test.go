package faults

import (
	"fmt"
	"reflect"
	"testing"
	"unicode/utf8"

	"mv2j/internal/vtime"
)

func TestParseSpecCrashForms(t *testing.T) {
	for _, tc := range []struct {
		spec string
		want []Crash
	}{
		{"crash=2@40us", []Crash{{Rank: 2, At: vtime.Time(0).Add(vtime.Micros(40))}}},
		{"crash=1:op6", []Crash{{Rank: 1, AfterOps: 6}}},
		{"crash=1+3@40us", []Crash{
			{Rank: 1, At: vtime.Time(0).Add(vtime.Micros(40))},
			{Rank: 3, At: vtime.Time(0).Add(vtime.Micros(40))},
		}},
		{"crash=0+2:op1", []Crash{{Rank: 0, AfterOps: 1}, {Rank: 2, AfterOps: 1}}},
		{"seed=9,drop=0.05,crash=3:op1,crash=0:op14", []Crash{
			{Rank: 3, AfterOps: 1},
			{Rank: 0, AfterOps: 14},
		}},
	} {
		p, err := ParseSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", tc.spec, err)
			continue
		}
		if !reflect.DeepEqual(p.Crashes, tc.want) {
			t.Errorf("ParseSpec(%q).Crashes = %+v, want %+v", tc.spec, p.Crashes, tc.want)
		}
	}
}

func TestParseSpecCrashErrors(t *testing.T) {
	for _, spec := range []string{
		"crash=1",                  // no trigger
		"crash=1@0us",              // time must be positive
		"crash=1@40",               // missing unit
		"crash=1:6",                // op ordinal needs the op prefix
		"crash=1:op0",              // 1-based
		"crash=1:opx",              // not a number
		"crash=-1:op1",             // negative rank
		"crash=x:op1",              // non-numeric rank
		"crash=1+:op1",             // empty rank in list
		"crash=1:op1,crash=1@40us", // duplicate rank across stanzas
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestCrashValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Plan
	}{
		{"no trigger", Plan{Crashes: []Crash{{Rank: 1}}}},
		{"both triggers", Plan{Crashes: []Crash{{Rank: 1, At: 40, AfterOps: 2}}}},
		{"negative rank", Plan{Crashes: []Crash{{Rank: -1, AfterOps: 2}}}},
		{"duplicate rank", Plan{Crashes: []Crash{{Rank: 1, AfterOps: 2}, {Rank: 1, At: 40}}}},
	} {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: plan validated without error", tc.name)
		}
	}
	ok := Plan{Crashes: []Crash{{Rank: 0, AfterOps: 1}, {Rank: 3, At: 40}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid crash plan rejected: %v", err)
	}
}

func TestCrashOf(t *testing.T) {
	p := &Plan{Crashes: []Crash{{Rank: 2, AfterOps: 6}}}
	if c, ok := p.CrashOf(2); !ok || c.AfterOps != 6 {
		t.Fatalf("CrashOf(2) = %+v, %v", c, ok)
	}
	if _, ok := p.CrashOf(1); ok {
		t.Fatal("CrashOf(1) found a crash that is not scheduled")
	}
	var nilPlan *Plan
	if _, ok := nilPlan.CrashOf(0); ok {
		t.Fatal("nil plan reported a crash")
	}
}

// FuzzParseSpec hammers the spec grammar — including the crash and
// partition (multi-rank crash) stanzas — checking the invariants the
// simulator relies on: a parse that succeeds yields a plan that
// validates, and its crash schedule re-parses to the same schedule via
// the Crash.String round-trip syntax.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"seed=42,drop=0.01,dup=0.005,corrupt=0.002,delay=0.1,delaymax=20us",
		"seed=7,drop=0.05,crash=2@40us",
		"crash=1:op6",
		"crash=1+3@40us",
		"crash=0+2:op1,inter.drop=0.02",
		"crash=3:op1,crash=0:op14",
		"target=drop:2>5:eager:3,target=delay:0>1:data:2:50us",
		"intra.corrupt=0.001,crash=5@1ms",
		"crash=",
		"crash=1@",
		"crash=9999999999999999999:op1",
		"crash=1@-40us",
		"crash=1+1@40us",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		if !utf8.ValidString(spec) {
			t.Skip()
		}
		p, err := ParseSpec(spec)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if p == nil {
			t.Fatalf("ParseSpec(%q) = nil plan, nil error", spec)
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParseSpec(%q) accepted a plan that fails Validate: %v", spec, verr)
		}
		// Crash stanzas round-trip: rebuilding the spec form from the
		// parsed schedule must parse back to the same schedule.
		for _, c := range p.Crashes {
			var form string
			if c.AfterOps > 0 {
				form = fmt.Sprintf("crash=%d:op%d", c.Rank, c.AfterOps)
			} else {
				form = fmt.Sprintf("crash=%d@%dns", c.Rank, int64(c.At.Sub(vtime.Time(0))/vtime.Nanosecond))
			}
			rt, rerr := ParseSpec(form)
			if rerr != nil {
				t.Fatalf("crash %+v from %q does not re-parse as %q: %v", c, spec, form, rerr)
			}
			if len(rt.Crashes) != 1 || rt.Crashes[0] != c {
				t.Fatalf("crash %+v round-trips to %+v", c, rt.Crashes)
			}
		}
	})
}
