package faults

import (
	"fmt"
	"strconv"
	"strings"

	"mv2j/internal/vtime"
)

// ParseSpec builds a plan from the -faults command-line syntax: a
// comma-separated key=value list.
//
//	seed=N                 RNG seed (default 1)
//	drop=P dup=P           probabilities applied to BOTH channel
//	corrupt=P delay=P      classes
//	delaymax=D             delay bound, e.g. 20us, 500ns, 1ms
//	intra.drop=P ...       class-specific override (intra | inter,
//	                       any of drop/dup/corrupt/delay/delaymax)
//	target=K:S>D:STREAM:N[:DUR]
//	                       one-shot fault: kind K (drop|dup|corrupt|
//	                       delay) on the N-th (1-based) STREAM
//	                       (eager|cts|data|rma|rmareply) message from
//	                       world rank S to world rank D; DUR sets the
//	                       delay for K=delay
//	crash=R@TIME           rank R dies at the first MPI operation it
//	                       enters at or after the virtual time TIME
//	crash=R:opN            rank R dies on entry to its N-th (1-based)
//	                       MPI operation
//	                       Either form takes a +-separated rank list
//	                       ("crash=1+3@40us") to fell a whole partition
//	                       at one instant.
//
// Example: "seed=42,drop=0.01,delay=0.002,delaymax=20us,target=drop:2>5:eager:3"
// Example: "seed=7,drop=0.05,crash=2@40us"
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("faults: empty spec")
	}
	p := &Plan{Seed: 1}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, ok := strings.Cut(tok, "=")
		if !ok {
			return nil, fmt.Errorf("faults: bad token %q, want key=value", tok)
		}
		if err := p.applyKey(key, val); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Plan) applyKey(key, val string) error {
	switch key {
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("faults: bad seed %q", val)
		}
		p.Seed = n
		return nil
	case "target":
		t, err := parseTarget(val)
		if err != nil {
			return err
		}
		p.Targets = append(p.Targets, t)
		return nil
	case "crash":
		cs, err := parseCrash(val)
		if err != nil {
			return err
		}
		p.Crashes = append(p.Crashes, cs...)
		return nil
	}
	// Rate keys, optionally class-qualified.
	classes := []*Rates{&p.Intra, &p.Inter}
	field := key
	if cls, f, ok := strings.Cut(key, "."); ok {
		field = f
		switch cls {
		case "intra", "shm":
			classes = []*Rates{&p.Intra}
		case "inter", "ib":
			classes = []*Rates{&p.Inter}
		default:
			return fmt.Errorf("faults: unknown channel class %q (intra | inter)", cls)
		}
	}
	if field == "delaymax" {
		d, err := parseDur(val)
		if err != nil {
			return err
		}
		for _, r := range classes {
			r.DelayMax = d
		}
		return nil
	}
	prob, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("faults: bad probability %q for %q", val, key)
	}
	for _, r := range classes {
		switch field {
		case "drop":
			r.Drop = prob
		case "dup":
			r.Duplicate = prob
		case "corrupt":
			r.Corrupt = prob
		case "delay":
			r.Delay = prob
		default:
			return fmt.Errorf("faults: unknown key %q", key)
		}
	}
	return nil
}

// parseTarget parses "kind:src>dst:stream:nth[:dur]".
func parseTarget(val string) (Target, error) {
	parts := strings.Split(val, ":")
	if len(parts) < 4 || len(parts) > 5 {
		return Target{}, fmt.Errorf("faults: bad target %q, want kind:src>dst:stream:nth[:dur]", val)
	}
	kind, ok := kindByName(parts[0])
	if !ok {
		return Target{}, fmt.Errorf("faults: unknown target kind %q", parts[0])
	}
	srcs, dsts, ok := strings.Cut(parts[1], ">")
	if !ok {
		return Target{}, fmt.Errorf("faults: bad target pair %q, want src>dst", parts[1])
	}
	src, err := strconv.Atoi(srcs)
	if err != nil || src < 0 {
		return Target{}, fmt.Errorf("faults: bad target source rank %q", srcs)
	}
	dst, err := strconv.Atoi(dsts)
	if err != nil || dst < 0 {
		return Target{}, fmt.Errorf("faults: bad target destination rank %q", dsts)
	}
	stream, ok := StreamByName(parts[2])
	if !ok {
		return Target{}, fmt.Errorf("faults: unknown stream %q", parts[2])
	}
	nth, err := strconv.ParseUint(parts[3], 10, 64)
	if err != nil || nth == 0 {
		return Target{}, fmt.Errorf("faults: bad target ordinal %q (1-based)", parts[3])
	}
	t := Target{Kind: kind, Src: src, Dst: dst, Stream: stream, Nth: nth}
	if len(parts) == 5 {
		if kind != Delay {
			return Target{}, fmt.Errorf("faults: duration on non-delay target %q", val)
		}
		d, err := parseDur(parts[4])
		if err != nil {
			return Target{}, err
		}
		t.Delay = d
	}
	return t, nil
}

// parseCrash parses "ranks@time" or "ranks:opN", where ranks is a
// +-separated world-rank list.
func parseCrash(val string) ([]Crash, error) {
	var proto Crash
	var rankList string
	if rs, ts, ok := strings.Cut(val, "@"); ok {
		d, err := parseDur(ts)
		if err != nil {
			return nil, err
		}
		if d <= 0 {
			return nil, fmt.Errorf("faults: crash time %q must be positive", ts)
		}
		rankList = rs
		proto.At = vtime.Time(0).Add(d)
	} else if rs, os, ok := strings.Cut(val, ":"); ok {
		ns, found := strings.CutPrefix(os, "op")
		if !found {
			return nil, fmt.Errorf("faults: bad crash trigger %q, want opN", os)
		}
		n, err := strconv.ParseUint(ns, 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("faults: bad crash op ordinal %q (1-based)", ns)
		}
		rankList = rs
		proto.AfterOps = n
	} else {
		return nil, fmt.Errorf("faults: bad crash %q, want rank@time or rank:opN", val)
	}
	var out []Crash
	for _, rs := range strings.Split(rankList, "+") {
		r, err := strconv.Atoi(rs)
		if err != nil || r < 0 {
			return nil, fmt.Errorf("faults: bad crash rank %q", rs)
		}
		c := proto
		c.Rank = r
		out = append(out, c)
	}
	return out, nil
}

// parseDur parses a virtual duration with an ns/us/ms/s suffix.
func parseDur(s string) (vtime.Duration, error) {
	unit := vtime.Duration(0)
	num := s
	for _, suf := range []struct {
		name string
		d    vtime.Duration
	}{{"ns", vtime.Nanosecond}, {"us", vtime.Microsecond}, {"ms", vtime.Millisecond}, {"s", vtime.Second}} {
		if strings.HasSuffix(s, suf.name) {
			unit = suf.d
			num = strings.TrimSuffix(s, suf.name)
			break
		}
	}
	if unit == 0 {
		return 0, fmt.Errorf("faults: duration %q needs a ns/us/ms/s suffix", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("faults: bad duration %q", s)
	}
	return vtime.Duration(f * float64(unit)), nil
}
