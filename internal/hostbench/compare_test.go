package hostbench

import (
	"strings"
	"testing"

	"mv2j/internal/nativempi"
)

func rep(entries ...Entry) *Report {
	return &Report{Schema: Schema, Entries: entries}
}

func entry(suite string, np int, allocs int64) Entry {
	return Entry{Suite: suite, NP: np, Mode: "buffer", AllocsPerOp: allocs}
}

func withCopied(e Entry, copied int64) Entry {
	e.Host.Copy = nativempi.CopyStats{BytesCopied: copied}
	return e
}

func TestCompareVerdicts(t *testing.T) {
	base := rep(
		entry("latency", 2, 1000),
		entry("allreduce", 8, 10000),
		entry("bw", 2, 50000),
	)
	cur := rep(
		entry("latency", 2, 1100),    // +10% -> ok
		entry("allreduce", 8, 13000), // +30% -> regression
		entry("bw", 2, 30000),        // -40% -> improvement
	)
	deltas, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatal("want failed=true (allreduce regressed)")
	}
	got := map[string]Verdict{}
	for _, d := range deltas {
		got[d.Key+" "+d.Metric] = d.Verdict
	}
	want := map[string]Verdict{
		"latency/np2/buffer allocs/op":   OK,
		"allreduce/np8/buffer allocs/op": Regression,
		"bw/np2/buffer allocs/op":        Improvement,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s: verdict %v, want %v", k, got[k], v)
		}
	}
}

func TestCompareBytesCopiedGate(t *testing.T) {
	base := rep(
		withCopied(entry("bw", 2, 1000), 1<<20),
		withCopied(entry("latency", 2, 1000), 4096),
	)
	cur := rep(
		withCopied(entry("bw", 2, 1000), 2<<20),     // copies doubled -> regression
		withCopied(entry("latency", 2, 1000), 2048), // copies halved -> improvement
	)
	deltas, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatal("want failed=true (bw copy traffic regressed)")
	}
	got := map[string]Verdict{}
	for _, d := range deltas {
		got[d.Key+" "+d.Metric] = d.Verdict
	}
	if got["bw/np2/buffer bytes_copied"] != Regression {
		t.Errorf("bw bytes_copied verdict = %v, want Regression", got["bw/np2/buffer bytes_copied"])
	}
	if got["latency/np2/buffer bytes_copied"] != Improvement {
		t.Errorf("latency bytes_copied verdict = %v, want Improvement", got["latency/np2/buffer bytes_copied"])
	}
	if got["bw/np2/buffer allocs/op"] != OK || got["latency/np2/buffer allocs/op"] != OK {
		t.Error("allocs/op gates should still be OK")
	}
}

// A baseline that predates the copy counters (bytes_copied == 0) must
// not fail the gate — it is skipped until the baseline is re-pinned.
func TestCompareSkipsCopyGateOnOldBaseline(t *testing.T) {
	base := rep(entry("bw", 2, 1000)) // Host.Copy zero-valued
	cur := rep(withCopied(entry("bw", 2, 1000), 1<<20))
	deltas, failed := Compare(base, cur, 0.20)
	if failed {
		t.Fatalf("want failed=false, deltas=%v", deltas)
	}
	for _, d := range deltas {
		if d.Metric == MetricCopied {
			t.Fatalf("copy gate should be skipped for a zero baseline, got %v", d)
		}
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	base := rep(entry("latency", 2, 1000))
	cur := rep(entry("latency", 2, 1199)) // +19.9% — inside ±20%
	deltas, failed := Compare(base, cur, 0.20)
	if failed {
		t.Fatalf("want failed=false, deltas=%v", deltas)
	}
	if len(deltas) != 1 || deltas[0].Verdict != OK {
		t.Fatalf("want single OK delta, got %v", deltas)
	}
}

func TestCompareUnmatchedBothDirections(t *testing.T) {
	base := rep(entry("latency", 2, 1000), entry("bw", 2, 5000))
	cur := rep(entry("latency", 2, 1000), entry("allreduce", 8, 7000))
	deltas, failed := Compare(base, cur, 0.20)
	if !failed {
		t.Fatal("want failed=true (plans diverged)")
	}
	unmatched := 0
	for _, d := range deltas {
		if d.Verdict == Unmatched {
			unmatched++
			if d.Key == "bw/np2/buffer" && d.Current != -1 {
				t.Errorf("baseline-only entry: Current = %d, want -1", d.Current)
			}
			if d.Key == "allreduce/np8/buffer" && d.Baseline != -1 {
				t.Errorf("current-only entry: Baseline = %d, want -1", d.Baseline)
			}
		}
	}
	if unmatched != 2 {
		t.Fatalf("want 2 unmatched deltas, got %d: %v", unmatched, deltas)
	}
}

func TestDeltaAndVerdictStrings(t *testing.T) {
	d := Delta{Key: "latency/np2/buffer", Metric: MetricAllocs, Verdict: Regression, Baseline: 100, Current: 150}
	if s := d.String(); !strings.Contains(s, "REGRESSION") || !strings.Contains(s, "+50.0%") || !strings.Contains(s, "allocs/op") {
		t.Errorf("Delta.String() = %q", s)
	}
	c := Delta{Key: "bw/np2/buffer", Metric: MetricCopied, Verdict: Improvement, Baseline: 1000, Current: 500}
	if s := c.String(); !strings.Contains(s, "bytes_copied") {
		t.Errorf("Delta.String() = %q", s)
	}
	u := Delta{Key: "bw/np2/buffer", Verdict: Unmatched, Baseline: 5000, Current: -1}
	if s := u.String(); !strings.Contains(s, "unmatched") {
		t.Errorf("Delta.String() = %q", s)
	}
	if Verdict(99).String() == "" {
		t.Error("unknown verdict should still render")
	}
}

func TestReportMarshalParseRoundTrip(t *testing.T) {
	r := rep(entry("latency", 2, 1234))
	r.GitSHA = "deadbeef"
	r.GoVersion = "go1.22"
	r.Quick = true
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.GitSHA != "deadbeef" || !back.Quick || len(back.Entries) != 1 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Entries[0].Key() != "latency/np2/buffer" {
		t.Errorf("key = %q", back.Entries[0].Key())
	}
	if _, err := Parse([]byte(`{"schema":"other/1"}`)); err == nil {
		t.Error("Parse should reject a foreign schema")
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("Parse should reject malformed JSON")
	}
}

// TestQuickSuitePlanStable pins the quick-tier plan: the CI guardrail
// compares entries by key against a checked-in baseline, so silently
// changing the plan would surface as confusing "unmatched" failures.
func TestQuickSuitePlanStable(t *testing.T) {
	var keys []string
	for _, s := range Suites(true) {
		keys = append(keys, Entry{Suite: s.Bench, Label: s.Label, NP: s.NP(), Mode: s.Mode.String()}.Key())
	}
	want := []string{
		"latency/np2/buffer",
		"bw/np2/buffer",
		"bw-1m/np2/buffer",
		"bw-rdma/np2/buffer",
		"mr/np8/buffer",
		"mr-overload/np8/buffer",
		"mr-mt/np8/buffer",
		"kvservice/np8/buffer",
		"allreduce/np2/buffer",
		"allreduce/np8/buffer",
		"ddt-pack/np2/arrays",
		"ddt-manual/np2/arrays",
		"ddt-contig/np2/arrays",
		"ddt-pack-rdma/np2/arrays",
		"allreduce-scale/np8/buffer",
		"allreduce-scale/np64/buffer",
		"allreduce-scale/np256/buffer",
		"allreduce-scale/np1024/buffer",
	}
	if len(keys) != len(want) {
		t.Fatalf("quick plan = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("quick plan[%d] = %q, want %q", i, keys[i], want[i])
		}
	}
	if len(Suites(false)) <= len(keys) {
		t.Error("full tier should be a superset of shapes")
	}
}

// TestMarkdown renders a mixed Compare result and checks the table
// rows carry the right verdict icons and omit values that don't
// exist (unmatched sides, Δ without a baseline).
func TestMarkdown(t *testing.T) {
	deltas := []Delta{
		{Key: "mr/np8/buffer", Metric: MetricAllocs, Verdict: OK, Baseline: 100, Current: 105},
		{Key: "bw/np2/buffer", Metric: MetricCopied, Verdict: Regression, Baseline: 1000, Current: 1500},
		{Key: "latency/np2/buffer", Metric: MetricAllocs, Verdict: Improvement, Baseline: 200, Current: 120},
		{Key: "kvservice/np8/buffer", Metric: MetricAllocs, Verdict: Unmatched, Baseline: -1, Current: 42},
	}
	got := Markdown(deltas, 0.20)
	for _, want := range []string{
		"### Hostbench guardrail (±20%)",
		"| Suite | Metric | Baseline | Current | Δ | Verdict |",
		"| mr/np8/buffer | allocs/op | 100 | 105 | +5.0% | ✅ ok |",
		"| bw/np2/buffer | bytes_copied | 1000 | 1500 | +50.0% | ❌ REGRESSION |",
		"| latency/np2/buffer | allocs/op | 200 | 120 | -40.0% | 📉 improvement |",
		"| kvservice/np8/buffer | allocs/op | — | 42 | — | ⚠️ unmatched |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, got)
		}
	}
	if empty := Markdown(nil, 0.20); !strings.Contains(empty, "No entries compared") {
		t.Errorf("empty render = %q", empty)
	}
}
