package hostbench

import "fmt"

// Verdict classifies one baseline comparison.
type Verdict int

const (
	// OK: within tolerance of the baseline.
	OK Verdict = iota
	// Regression: allocs/op grew beyond tolerance — the guardrail fails.
	Regression
	// Improvement: allocs/op shrank beyond tolerance — warn, so the
	// baseline gets re-pinned and the win is locked in.
	Improvement
	// Unmatched: present on only one side (suite plan changed).
	Unmatched
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Regression:
		return "REGRESSION"
	case Improvement:
		return "improvement"
	case Unmatched:
		return "unmatched"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Delta is one entry's movement against the baseline.
type Delta struct {
	Key      string
	Verdict  Verdict
	Baseline int64 // baseline allocs/op (-1 if unmatched)
	Current  int64 // current allocs/op (-1 if unmatched)
}

func (d Delta) String() string {
	switch d.Verdict {
	case Unmatched:
		return fmt.Sprintf("%-24s %s (baseline %d, current %d)", d.Key, d.Verdict, d.Baseline, d.Current)
	default:
		pct := 0.0
		if d.Baseline > 0 {
			pct = 100 * (float64(d.Current) - float64(d.Baseline)) / float64(d.Baseline)
		}
		return fmt.Sprintf("%-24s %s: allocs/op %d -> %d (%+.1f%%)", d.Key, d.Verdict, d.Baseline, d.Current, pct)
	}
}

// Compare applies the allocs/op guardrail: each current entry is
// matched to the baseline by (suite, np, mode) and its allocs/op must
// stay within ±tol (fractional, e.g. 0.20). Only allocations are
// compared — host ns/op depends on the machine, allocs/op does not.
// Failed reports whether any regression or unmatched entry exists.
func Compare(baseline, current *Report, tol float64) (deltas []Delta, failed bool) {
	base := map[string]Entry{}
	for _, e := range baseline.Entries {
		base[e.Key()] = e
	}
	seen := map[string]bool{}
	for _, e := range current.Entries {
		seen[e.Key()] = true
		b, ok := base[e.Key()]
		if !ok {
			deltas = append(deltas, Delta{Key: e.Key(), Verdict: Unmatched, Baseline: -1, Current: e.AllocsPerOp})
			failed = true
			continue
		}
		d := Delta{Key: e.Key(), Baseline: b.AllocsPerOp, Current: e.AllocsPerOp}
		hi := float64(b.AllocsPerOp) * (1 + tol)
		lo := float64(b.AllocsPerOp) * (1 - tol)
		switch {
		case float64(e.AllocsPerOp) > hi:
			d.Verdict = Regression
			failed = true
		case float64(e.AllocsPerOp) < lo:
			d.Verdict = Improvement
		default:
			d.Verdict = OK
		}
		deltas = append(deltas, d)
	}
	for _, e := range baseline.Entries {
		if !seen[e.Key()] {
			deltas = append(deltas, Delta{Key: e.Key(), Verdict: Unmatched, Baseline: e.AllocsPerOp, Current: -1})
			failed = true
		}
	}
	return deltas, failed
}
