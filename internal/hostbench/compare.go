package hostbench

import (
	"fmt"
	"strings"
)

// Verdict classifies one baseline comparison.
type Verdict int

const (
	// OK: within tolerance of the baseline.
	OK Verdict = iota
	// Regression: the metric grew beyond tolerance — the guardrail fails.
	Regression
	// Improvement: the metric shrank beyond tolerance — warn, so the
	// baseline gets re-pinned and the win is locked in.
	Improvement
	// Unmatched: present on only one side (suite plan changed).
	Unmatched
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Regression:
		return "REGRESSION"
	case Improvement:
		return "improvement"
	case Unmatched:
		return "unmatched"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Metric names Compare gates on.
const (
	MetricAllocs = "allocs/op"
	MetricCopied = "bytes_copied"
)

// Delta is one (entry, metric) movement against the baseline.
type Delta struct {
	Key      string
	Metric   string
	Verdict  Verdict
	Baseline int64 // baseline value (-1 if unmatched)
	Current  int64 // current value (-1 if unmatched)
}

func (d Delta) String() string {
	switch d.Verdict {
	case Unmatched:
		return fmt.Sprintf("%-24s %s (baseline %d, current %d)", d.Key, d.Verdict, d.Baseline, d.Current)
	default:
		pct := 0.0
		if d.Baseline > 0 {
			pct = 100 * (float64(d.Current) - float64(d.Baseline)) / float64(d.Baseline)
		}
		return fmt.Sprintf("%-24s %s: %s %d -> %d (%+.1f%%)", d.Key, d.Verdict, d.Metric, d.Baseline, d.Current, pct)
	}
}

// gate classifies one metric against its baseline with ±tol.
func gate(key, metric string, base, cur int64, tol float64) Delta {
	d := Delta{Key: key, Metric: metric, Baseline: base, Current: cur}
	hi := float64(base) * (1 + tol)
	lo := float64(base) * (1 - tol)
	switch {
	case float64(cur) > hi:
		d.Verdict = Regression
	case float64(cur) < lo:
		d.Verdict = Improvement
	default:
		d.Verdict = OK
	}
	return d
}

// Compare applies the host-metric guardrails: each current entry is
// matched to the baseline by Key() and two metrics must each stay
// within ±tol (fractional, e.g. 0.20): allocs/op and the world's
// bytes-copied counter. Host ns/op is never compared — it depends on
// the machine; allocations and copy traffic do not. A baseline entry
// whose bytes_copied is zero predates the copy counters, so that gate
// is skipped rather than failed (re-pinning the baseline turns it on).
// Failed reports whether any regression or unmatched entry exists.
func Compare(baseline, current *Report, tol float64) (deltas []Delta, failed bool) {
	base := map[string]Entry{}
	for _, e := range baseline.Entries {
		base[e.Key()] = e
	}
	seen := map[string]bool{}
	for _, e := range current.Entries {
		seen[e.Key()] = true
		b, ok := base[e.Key()]
		if !ok {
			deltas = append(deltas, Delta{Key: e.Key(), Metric: MetricAllocs, Verdict: Unmatched, Baseline: -1, Current: e.AllocsPerOp})
			failed = true
			continue
		}
		d := gate(e.Key(), MetricAllocs, b.AllocsPerOp, e.AllocsPerOp, tol)
		if d.Verdict == Regression {
			failed = true
		}
		deltas = append(deltas, d)
		if b.Host.Copy.BytesCopied > 0 {
			d = gate(e.Key(), MetricCopied, b.Host.Copy.BytesCopied, e.Host.Copy.BytesCopied, tol)
			if d.Verdict == Regression {
				failed = true
			}
			deltas = append(deltas, d)
		}
	}
	for _, e := range baseline.Entries {
		if !seen[e.Key()] {
			deltas = append(deltas, Delta{Key: e.Key(), Metric: MetricAllocs, Verdict: Unmatched, Baseline: e.AllocsPerOp, Current: -1})
			failed = true
		}
	}
	return deltas, failed
}

// Markdown renders a Compare result as a GitHub-flavored markdown
// table — the CI bench job publishes this to the step summary so the
// guardrail outcome is readable without digging through logs.
// Verdicts get an emoji lead so regressions stand out in the rendered
// page.
func Markdown(deltas []Delta, tol float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Hostbench guardrail (±%.0f%%)\n\n", 100*tol)
	if len(deltas) == 0 {
		b.WriteString("_No entries compared._\n")
		return b.String()
	}
	b.WriteString("| Suite | Metric | Baseline | Current | Δ | Verdict |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, d := range deltas {
		icon := "✅"
		switch d.Verdict {
		case Regression:
			icon = "❌"
		case Improvement:
			icon = "📉"
		case Unmatched:
			icon = "⚠️"
		}
		base, cur, pct := "—", "—", "—"
		if d.Baseline >= 0 {
			base = fmt.Sprintf("%d", d.Baseline)
		}
		if d.Current >= 0 {
			cur = fmt.Sprintf("%d", d.Current)
		}
		if d.Verdict != Unmatched && d.Baseline > 0 {
			pct = fmt.Sprintf("%+.1f%%", 100*(float64(d.Current)-float64(d.Baseline))/float64(d.Baseline))
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s %s |\n",
			d.Key, d.Metric, base, cur, pct, icon, d.Verdict)
	}
	return b.String()
}
