package omb

import (
	"errors"
	"math"
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/profile"
)

func smallOpts() Options {
	return Options{MinSize: 1, MaxSize: 1024, Iters: 10, Warmup: 2, LargeThreshold: 64 << 10, LargeIters: 3, Window: 16}
}

func cfgFor(lib string, flavor core.Flavor, nodes, ppn int, mode Mode, o Options) Config {
	prof, ok := profile.ByName(lib)
	if !ok {
		panic("bad lib " + lib)
	}
	return Config{Core: core.Config{Nodes: nodes, PPN: ppn, Lib: prof, Flavor: flavor}, Mode: mode, Opts: o}
}

func mv2(nodes, ppn int, mode Mode, o Options) Config {
	return cfgFor("mvapich2", core.MVAPICH2J, nodes, ppn, mode, o)
}

func ompi(nodes, ppn int, mode Mode, o Options) Config {
	return cfgFor("openmpi", core.OpenMPIJ, nodes, ppn, mode, o)
}

func TestOptionsSizes(t *testing.T) {
	o := Options{MinSize: 1, MaxSize: 8}
	got := o.Sizes()
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
	o = Options{MinSize: 0, MaxSize: 4}
	if s := o.Sizes(); s[0] != 1 {
		t.Fatalf("MinSize 0 should clamp to 1, got %v", s)
	}
}

func TestItersForLargeMessages(t *testing.T) {
	o := DefaultOptions()
	i1, _ := o.itersFor(1024)
	i2, w2 := o.itersFor(1 << 20)
	if i1 != o.Iters {
		t.Fatalf("small iters = %d", i1)
	}
	if i2 != o.LargeIters || w2 > 2 {
		t.Fatalf("large iters = %d warm %d", i2, w2)
	}
}

func TestLatencyRunsAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeBuffer, ModeArrays, ModeNative} {
		rows, err := Latency(mv2(1, 2, mode, smallOpts()))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(rows) != 11 {
			t.Fatalf("%v: %d rows", mode, len(rows))
		}
		for i, r := range rows {
			if r.LatencyUs <= 0 {
				t.Fatalf("%v: non-positive latency at %d", mode, r.Size)
			}
			if i > 0 && r.LatencyUs < rows[i-1].LatencyUs*0.95 {
				t.Fatalf("%v: latency not (weakly) increasing: %v then %v", mode, rows[i-1], r)
			}
		}
	}
}

func TestLatencyDeterministic(t *testing.T) {
	a, err := Latency(mv2(2, 1, ModeBuffer, smallOpts()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Latency(mv2(2, 1, ModeBuffer, smallOpts()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic row %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLatencyValidateMatchesPayloads(t *testing.T) {
	// Validation mode must pass (payloads verified elementwise) and be
	// slower than non-validated latency.
	o := smallOpts()
	plain, err := Latency(mv2(2, 1, ModeArrays, o))
	if err != nil {
		t.Fatal(err)
	}
	o.Validate = true
	checked, err := Latency(mv2(2, 1, ModeArrays, o))
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if checked[i].LatencyUs <= plain[i].LatencyUs {
			t.Fatalf("validated latency %v not above plain %v at %dB",
				checked[i].LatencyUs, plain[i].LatencyUs, plain[i].Size)
		}
	}
}

func TestBandwidthShape(t *testing.T) {
	o := smallOpts()
	o.MaxSize = 1 << 20
	rows, err := Bandwidth(mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	if last.MBps < 8000 || last.MBps > 12500 {
		t.Fatalf("1MB inter-node bandwidth %.0f MB/s outside (8000, 12500]", last.MBps)
	}
	first := rows[0]
	if first.MBps > last.MBps/10 {
		t.Fatalf("1B bandwidth %.0f should be tiny next to %.0f", first.MBps, last.MBps)
	}
}

func TestBiBandwidthExceedsUnidirectional(t *testing.T) {
	o := smallOpts()
	o.MinSize = 1 << 16
	o.MaxSize = 1 << 20
	uni, err := Bandwidth(mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	bi, err := BiBandwidth(mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	for i := range uni {
		if bi[i].MBps < uni[i].MBps*1.3 {
			t.Fatalf("bibw %.0f should clearly beat bw %.0f at %dB (full duplex)",
				bi[i].MBps, uni[i].MBps, uni[i].Size)
		}
	}
}

func TestOpenMPIJArraysBandwidthUnsupported(t *testing.T) {
	// The API gap behind the missing series in Figs. 7/8/12/13.
	_, err := Bandwidth(ompi(1, 2, ModeArrays, smallOpts()))
	if err == nil || !errors.Is(err, core.ErrUnsupported) && !containsUnsupported(err) {
		t.Fatalf("err = %v, want unsupported", err)
	}
}

func containsUnsupported(err error) bool {
	// Run wraps rank errors; match on the text.
	return err != nil && (errors.Is(err, core.ErrUnsupported) ||
		len(err.Error()) > 0 && (contains(err.Error(), "not supported")))
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestAllCollectiveBenchmarksRun(t *testing.T) {
	o := smallOpts()
	o.MaxSize = 256
	o.Iters = 5
	for _, name := range Benchmarks() {
		switch name {
		case "latency", "bw", "bibw", "put", "get", "acc", "mbw", "mr",
			"mr-overload", "mr-mt", "kvservice",
			"ibcast", "iallreduce", "ibarrier":
			continue // these surfaces have their own dedicated tests
		}
		for _, mode := range []Mode{ModeBuffer, ModeArrays, ModeNative} {
			rows, err := RunBenchmark(name, mv2(2, 2, mode, o))
			if err != nil {
				t.Fatalf("%s/%v: %v", name, mode, err)
			}
			if len(rows) == 0 {
				t.Fatalf("%s/%v: no rows", name, mode)
			}
			for _, r := range rows {
				if r.LatencyUs <= 0 {
					t.Fatalf("%s/%v: non-positive latency", name, mode)
				}
			}
		}
	}
}

func TestOneSidedBenchmarks(t *testing.T) {
	o := smallOpts()
	o.MaxSize = 4096
	// Put and Accumulate run in both buffer and arrays modes.
	for _, op := range []string{"put", "acc"} {
		for _, mode := range []Mode{ModeBuffer, ModeArrays} {
			rows, err := RunBenchmark(op, mv2(2, 1, mode, o))
			if err != nil {
				t.Fatalf("%s/%v: %v", op, mode, err)
			}
			if len(rows) == 0 {
				t.Fatalf("%s/%v: no rows", op, mode)
			}
			for i, r := range rows {
				if r.LatencyUs <= 0 {
					t.Fatalf("%s/%v: non-positive latency at %dB", op, mode, r.Size)
				}
				if i > 0 && r.LatencyUs < rows[i-1].LatencyUs*0.95 {
					t.Fatalf("%s/%v: latency decreasing with size", op, mode)
				}
			}
		}
	}
	// Get needs direct-buffer origins.
	if _, err := RunBenchmark("get", mv2(2, 1, ModeBuffer, o)); err != nil {
		t.Fatalf("get/buffer: %v", err)
	}
	if _, err := RunBenchmark("get", mv2(2, 1, ModeArrays, o)); err == nil {
		t.Fatal("get with array origins must be rejected")
	}
	// One-sided is a bindings-level suite.
	if _, err := RunBenchmark("put", mv2(2, 1, ModeNative, o)); err == nil {
		t.Fatal("native-mode one-sided must be rejected")
	}
}

func TestOneSidedGetCostsMoreThanPut(t *testing.T) {
	// A fenced Get pays a request/reply round trip where Put pays a
	// single injection.
	o := smallOpts()
	o.MaxSize = 64
	put, err := RunBenchmark("put", mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	get, err := RunBenchmark("get", mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	if get[0].LatencyUs <= put[0].LatencyUs {
		t.Fatalf("get (%v us) should cost more than put (%v us)", get[0].LatencyUs, put[0].LatencyUs)
	}
}

func TestNonBlockingCollectiveBenchmarks(t *testing.T) {
	o := smallOpts()
	o.MaxSize = 1024
	o.Iters = 6
	for _, name := range []string{"ibcast", "iallreduce", "ibarrier"} {
		lat, err := NonBlockingLatency(name, mv2(2, 2, ModeBuffer, o))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range lat {
			if r.LatencyUs <= 0 {
				t.Fatalf("%s: non-positive latency", name)
			}
		}
		ov, err := NonBlockingOverlap(name, mv2(2, 2, ModeBuffer, o))
		if err != nil {
			t.Fatalf("%s overlap: %v", name, err)
		}
		for _, r := range ov {
			if r.MBps < 0 || r.MBps > 100 {
				t.Fatalf("%s: overlap %.1f%% outside [0,100]", name, r.MBps)
			}
		}
	}
	// Some overlap must be achievable for a small eager ibcast.
	ov, err := NonBlockingOverlap("ibcast", mv2(2, 2, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, r := range ov {
		if r.MBps > 5 {
			any = true
		}
	}
	if !any {
		t.Fatal("ibcast shows no overlap at any size")
	}
	// Native mode is rejected.
	if _, err := NonBlockingLatency("ibcast", mv2(2, 2, ModeNative, o)); err == nil {
		t.Fatal("native-mode ibcast accepted")
	}
	if _, _, err := nbColl("nonsense", mv2(2, 2, ModeBuffer, o)); err == nil {
		t.Fatal("unknown non-blocking benchmark accepted")
	}
}

func TestMultiPairBandwidthScalesWithPairs(t *testing.T) {
	// Aggregate bandwidth over 4 inter-node pairs must exceed one
	// pair's, and the message rate column must be consistent with it.
	o := smallOpts()
	o.MinSize, o.MaxSize = 4096, 4096
	o.Window = 16
	onePair, err := MultiBandwidth(mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	fourPairs, err := MultiBandwidth(mv2(2, 4, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	if fourPairs[0].MBps < 2*onePair[0].MBps {
		t.Fatalf("4-pair aggregate %.0f MB/s should well exceed 1-pair %.0f MB/s",
			fourPairs[0].MBps, onePair[0].MBps)
	}
	rate, err := MultiMessageRate(mv2(2, 4, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	// messages/s * bytes/message == bytes/s.
	wantMBps := rate[0].MBps * 4096 / 1e6
	if diff := wantMBps - fourPairs[0].MBps; diff > 1 || diff < -1 {
		t.Fatalf("message rate (%.0f msg/s) inconsistent with bandwidth (%.0f MB/s)",
			rate[0].MBps, fourPairs[0].MBps)
	}
}

func TestMultiPairNeedsEvenRanks(t *testing.T) {
	o := smallOpts()
	if _, err := MultiBandwidth(mv2(1, 3, ModeBuffer, o)); err == nil {
		t.Fatal("odd rank count accepted")
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := RunBenchmark("nonsense", mv2(1, 2, ModeBuffer, smallOpts())); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBarrierScalesWithRanks(t *testing.T) {
	o := smallOpts()
	small, err := BarrierLatency(mv2(1, 2, ModeNative, o))
	if err != nil {
		t.Fatal(err)
	}
	big, err := BarrierLatency(mv2(4, 4, ModeNative, o))
	if err != nil {
		t.Fatal(err)
	}
	if big[0].LatencyUs <= small[0].LatencyUs {
		t.Fatalf("16-rank barrier (%v us) should cost more than 2-rank (%v us)",
			big[0].LatencyUs, small[0].LatencyUs)
	}
}

// geomeanFactor computes the mean latency ratio a/b over common sizes.
func geomeanFactor(t *testing.T, a, b []Result) float64 {
	t.Helper()
	logSum, n := 0.0, 0
	for _, ra := range a {
		for _, rb := range b {
			if ra.Size == rb.Size && ra.LatencyUs > 0 && rb.LatencyUs > 0 {
				logSum += math.Log(ra.LatencyUs / rb.LatencyUs)
				n++
			}
		}
	}
	if n == 0 {
		t.Fatal("no common sizes")
	}
	return math.Exp(logSum / float64(n))
}
