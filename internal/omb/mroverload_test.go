package omb

import (
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/nativempi"
	"mv2j/internal/profile"
)

func overloadOpts() Options {
	return Options{MinSize: 64, MaxSize: 1024, Iters: 5, Warmup: 1,
		LargeThreshold: 64 << 10, LargeIters: 2, Window: 16}
}

// TestMultiRecvOverloadRuns smoke-tests the incast benchmark: positive
// aggregate message rates at every size, in every payload mode.
func TestMultiRecvOverloadRuns(t *testing.T) {
	for _, mode := range []Mode{ModeBuffer, ModeArrays, ModeNative} {
		rows, err := RunBenchmark("mr-overload", mv2(1, 4, mode, overloadOpts()))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(rows) == 0 {
			t.Fatalf("%v: no rows", mode)
		}
		for _, r := range rows {
			if r.MBps <= 0 {
				t.Fatalf("%v size %d: non-positive message rate %f", mode, r.Size, r.MBps)
			}
		}
	}
}

// TestMultiRecvOverloadFlowBounded is the integration half of the
// flow-control acceptance: run the incast through the full bindings
// stack with credits on, and the root's unexpected-queue byte
// high-water honors Profile.UnexpectedQueueBytes; run it with flow
// control off and the same flood exceeds the bound. Virtual rows with
// flow on are also checked deterministic across runs.
func TestMultiRecvOverloadFlowBounded(t *testing.T) {
	const (
		credits = 8
		np      = 4
		qbytes  = int64((np - 1) * credits * 1024)
	)
	run := func(withFlow bool) ([]Result, nativempi.HostStats) {
		t.Helper()
		prof := profile.MVAPICH2()
		if withFlow {
			prof.EagerCredits = credits
			prof.UnexpectedQueueBytes = qbytes
		}
		var hs nativempi.HostStats
		cfg := Config{
			Core: core.Config{Nodes: 1, PPN: np, Lib: prof, Flavor: core.MVAPICH2J, HostStats: &hs},
			Mode: ModeBuffer,
			Opts: overloadOpts(),
		}
		rows, err := RunBenchmark("mr-overload", cfg)
		if err != nil {
			t.Fatalf("mr-overload (flow=%v): %v", withFlow, err)
		}
		return rows, hs
	}
	on, hsOn := run(true)
	if hw := hsOn.Match.UnexpBytesHiWater; hw > qbytes {
		t.Errorf("flow on: unexpected-queue high-water %d exceeds bound %d", hw, qbytes)
	}
	if hsOn.Flow.RNRParks == 0 {
		t.Error("flow on: incast produced no RNR parks")
	}
	_, hsOff := run(false)
	if hw := hsOff.Match.UnexpBytesHiWater; hw <= qbytes {
		t.Errorf("flow off: high-water %d did not exceed bound %d — incast too gentle to prove anything", hw, qbytes)
	}
	on2, _ := run(true)
	if len(on) != len(on2) {
		t.Fatalf("row count varies across runs: %d vs %d", len(on), len(on2))
	}
	for i := range on {
		if on[i] != on2[i] {
			t.Errorf("row %d varies across runs: %+v vs %+v", i, on[i], on2[i])
		}
	}
}
