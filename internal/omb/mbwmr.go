package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// MultiBandwidth implements osu_mbw_mr: the first half of the ranks
// stream windows of non-blocking sends to partners in the second half
// (rank i -> i + p/2), all pairs concurrently. Reported MBps is the
// AGGREGATE bandwidth across pairs; MsgRate (in Result.LatencyUs, see
// below) is published separately by MultiMessageRate.
func MultiBandwidth(cfg Config) ([]Result, error) {
	rows, _, err := mbwMR(cfg)
	return rows, err
}

// MultiMessageRate reports the aggregate message rate in
// messages/second (stored in the MBps field, as OMB prints both from
// one run; use the benchmark name to interpret the column).
func MultiMessageRate(cfg Config) ([]Result, error) {
	_, rates, err := mbwMR(cfg)
	return rates, err
}

func mbwMR(cfg Config) (bw []Result, rate []Result, err error) {
	window := cfg.Opts.Window
	if window <= 0 {
		window = 64
	}
	sizeJVM(&cfg.Core, (window/4+2)*cfg.Opts.MaxSize)
	bwSink := &resultSink{}
	rateSink := &resultSink{}
	err = core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		p := ep.size()
		if p < 2 || p%2 != 0 {
			return fmt.Errorf("omb: mbw_mr needs an even rank count, got %d", p)
		}
		pairs := p / 2
		me := ep.rank()
		sender := me < pairs
		partner := (me + pairs) % p

		sbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		rbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		ack, err := newBuf(m, cfg.Mode, 4)
		if err != nil {
			return err
		}

		ws := make([]waiter, 0, window)
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			var sw vtime.Stopwatch
			for i := -warm; i < iters; i++ {
				if i == 0 {
					sw = vtime.StartStopwatch(m.Clock())
				}
				ws = ws[:0]
				if sender {
					for k := 0; k < window; k++ {
						w, err := ep.isend(sbuf, size, partner, tagData)
						if err != nil {
							return err
						}
						ws = append(ws, w)
					}
					if err := waitAll(ws); err != nil {
						return err
					}
					if err := ep.recv(ack, 4, partner, tagAck); err != nil {
						return err
					}
				} else {
					for k := 0; k < window; k++ {
						w, err := ep.irecv(rbuf, size, partner, tagData)
						if err != nil {
							return err
						}
						ws = append(ws, w)
					}
					if err := waitAll(ws); err != nil {
						return err
					}
					if err := ep.send(ack, 4, partner, tagAck); err != nil {
						return err
					}
				}
			}
			// Rank 0 reports using the slowest sender's elapsed time,
			// gathered with an (untimed) max-reduction over the pairs.
			elapsedUs := sw.Elapsed().Micros()
			maxUs, err := maxOverSenders(m, elapsedUs, sender, pairs)
			if err != nil {
				return err
			}
			if me == 0 {
				msgs := float64(window) * float64(iters) * float64(pairs)
				secs := maxUs / 1e6
				bwSink.add(Result{Size: size, MBps: float64(size) * msgs / secs / 1e6})
				rateSink.add(Result{Size: size, MBps: msgs / secs})
			}
			if err := ep.barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return bwSink.sorted(), rateSink.sorted(), nil
}

// maxOverSenders MAX-reduces the senders' elapsed times to rank 0
// using the bindings (receivers contribute zero).
func maxOverSenders(m *core.MPI, elapsedUs float64, sender bool, pairs int) (float64, error) {
	world := m.CommWorld()
	send := m.JVM().MustArray(jvm.Double, 1)
	if sender {
		send.SetFloat(0, elapsedUs)
	}
	var recvAny any
	var recv = m.JVM().MustArray(jvm.Double, 1)
	if world.Rank() == 0 {
		recvAny = recv
	}
	if err := world.Reduce(send, recvAny, 1, core.DOUBLE, core.MAX, 0); err != nil {
		return 0, err
	}
	_ = pairs
	if world.Rank() != 0 {
		return 0, nil
	}
	return recv.Float(0), nil
}
