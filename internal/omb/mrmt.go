package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/vtime"
)

// Per-thread tag lanes for the multithreaded benchmarks. Each thread
// pair owns a private (data, ack) lane so matching never crosses
// threads — OMB's osu_mbw_mr -t partitioning.
const (
	tagMTData = 8
	tagMTAck  = 512
)

// mtThreads applies the Threads default.
func (o Options) mtThreads() int {
	if o.Threads <= 0 {
		return 4
	}
	return o.Threads
}

// MsgRateMT implements the multithreaded osu_mbw_mr message-rate
// benchmark: the first half of the ranks each run T application
// threads under MPI_THREAD_MULTIPLE, every thread streaming windows
// of non-blocking sends to the matching thread of its partner rank in
// the second half, all pairs and threads concurrently. Each thread
// pays the library's entry-lock arbitration on every call — the
// aggregate rate is what survives the coarse-grained critical section
// the paper's MVAPICH2 build takes around each MPI call.
//
// Reported MBps is the aggregate message rate (messages/second)
// across pairs x threads, timed by the slowest rank's thread-joined
// clock (an untimed MAX-reduce, like mbw_mr).
func MsgRateMT(cfg Config) ([]Result, error) {
	window := cfg.Opts.Window
	if window <= 0 {
		window = 64
	}
	T := cfg.Opts.mtThreads()
	sizeJVM(&cfg.Core, (window/4+2)*cfg.Opts.MaxSize*T)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		p := ep.size()
		if p < 2 || p%2 != 0 {
			return fmt.Errorf("omb: mr-mt needs an even rank count, got %d", p)
		}
		pairs := p / 2
		me := ep.rank()
		sender := me < pairs
		partner := (me + pairs) % p
		if got := m.InitThread(core.ThreadMultiple); got != core.ThreadMultiple && T > 1 {
			return fmt.Errorf("omb: mr-mt needs MPI_THREAD_MULTIPLE, library granted %v", got)
		}

		// Per-thread buffer lanes, allocated before any timed region.
		sbufs := make([]msgBuf, T)
		rbufs := make([]msgBuf, T)
		acks := make([]msgBuf, T)
		for tid := 0; tid < T; tid++ {
			var err error
			if sbufs[tid], err = newBuf(m, cfg.Mode, cfg.Opts.MaxSize); err != nil {
				return err
			}
			if rbufs[tid], err = newBuf(m, cfg.Mode, cfg.Opts.MaxSize); err != nil {
				return err
			}
			if acks[tid], err = newBuf(m, cfg.Mode, 4); err != nil {
				return err
			}
		}

		// One window burst on this thread's private tag lane.
		burst := func(tid, size int) error {
			ws := make([]waiter, 0, window)
			if sender {
				for k := 0; k < window; k++ {
					w, err := ep.isend(sbufs[tid], size, partner, tagMTData+tid)
					if err != nil {
						return err
					}
					ws = append(ws, w)
				}
				if err := waitAll(ws); err != nil {
					return err
				}
				return ep.recv(acks[tid], 4, partner, tagMTAck+tid)
			}
			for k := 0; k < window; k++ {
				w, err := ep.irecv(rbufs[tid], size, partner, tagMTData+tid)
				if err != nil {
					return err
				}
				ws = append(ws, w)
			}
			if err := waitAll(ws); err != nil {
				return err
			}
			return ep.send(acks[tid], 4, partner, tagMTAck+tid)
		}

		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			// Warmup fork, untimed: arbitration state and rendezvous
			// caches settle before the clock starts.
			if err := m.RunThreads(T, func(tid int) error {
				for i := 0; i < warm; i++ {
					if err := burst(tid, size); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return err
			}
			// Timed fork. The stopwatch reads the rank clock, which
			// joins at the slowest thread's finish — exactly the
			// multithreaded elapsed time.
			sw := vtime.StartStopwatch(m.Clock())
			if err := m.RunThreads(T, func(tid int) error {
				for i := 0; i < iters; i++ {
					if err := burst(tid, size); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return err
			}
			elapsedUs := sw.Elapsed().Micros()
			maxUs, err := maxOverSenders(m, elapsedUs, sender, pairs)
			if err != nil {
				return err
			}
			if me == 0 {
				msgs := float64(window) * float64(iters) * float64(pairs) * float64(T)
				sink.add(Result{Size: size, MBps: msgs / (maxUs / 1e6)})
			}
			if err := ep.barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
