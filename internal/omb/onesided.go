package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/vtime"
)

// One-sided benchmarks (osu_put_latency, osu_get_latency,
// osu_acc_latency): rank 0 drives fence-bounded epochs against rank
// 1's window. The C OMB suite includes these; OMB-J gains parity here.
// Modes: buffer drives origin data from a direct ByteBuffer; arrays
// from a Java array (Get requires a direct origin and is
// buffer-mode-only, mirroring the bindings' rule).

// OneSidedLatency runs the named RMA benchmark: "put", "get", "acc".
func OneSidedLatency(op string, cfg Config) ([]Result, error) {
	switch op {
	case "put", "get", "acc":
	default:
		return nil, fmt.Errorf("omb: unknown one-sided op %q (put | get | acc)", op)
	}
	if cfg.Mode == ModeNative {
		return nil, fmt.Errorf("omb: one-sided benchmarks run at the bindings level")
	}
	if op == "get" && cfg.Mode != ModeBuffer {
		return nil, fmt.Errorf("omb: osu_get requires direct-buffer origins")
	}
	sizeJVM(&cfg.Core, cfg.Opts.MaxSize)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		world := m.CommWorld()
		if world.Size() < 2 {
			return fmt.Errorf("omb: one-sided latency needs at least 2 ranks")
		}
		me := world.Rank()

		exposed := m.JVM().MustAllocateDirect(cfg.Opts.MaxSize)
		win, err := world.WinCreate(exposed)
		if err != nil {
			return err
		}
		var origin any
		if me == 0 {
			buf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
			if err != nil {
				return err
			}
			origin = buf.obj()
		}

		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			var sw vtime.Stopwatch
			for i := -warm; i < iters; i++ {
				if i == 0 {
					sw = vtime.StartStopwatch(m.Clock())
				}
				if me == 0 {
					switch op {
					case "put":
						if err := win.Put(origin, size, core.BYTE, 1, 0); err != nil {
							return err
						}
					case "get":
						if err := win.Get(origin, size, core.BYTE, 1, 0); err != nil {
							return err
						}
					case "acc":
						if err := win.Accumulate(origin, size, core.BYTE, core.SUM, 1, 0); err != nil {
							return err
						}
					}
				}
				if err := win.Fence(); err != nil {
					return err
				}
			}
			if me == 0 {
				sink.add(Result{Size: size, LatencyUs: avgLatencyUs(sw.Elapsed(), iters)})
			}
			if err := world.Barrier(); err != nil {
				return err
			}
		}
		return win.Free()
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
