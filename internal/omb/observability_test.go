package omb

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mv2j/internal/faults"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite the observability golden files")

// obsOpts is the fixed sweep every observability test runs: small
// enough for fast goldens, large enough to exercise staging, eager and
// multi-packet paths.
func obsOpts() Options {
	return Options{MinSize: 1, MaxSize: 16, Iters: 2, Warmup: 1,
		LargeThreshold: 64 << 10, LargeIters: 2, Window: 4, Validate: true}
}

// obsRun executes one benchmark with the full observability layer
// attached.
func obsRun(t *testing.T, name string, cfg Config) (*trace.Recorder, *metrics.Registry) {
	t.Helper()
	rec := trace.New(0)
	reg := metrics.NewRegistry()
	cfg.Core.Trace = rec
	cfg.Core.Metrics = reg
	if _, err := RunBenchmark(name, cfg); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rec, reg
}

// renderArtifacts produces the three export formats as byte strings.
func renderArtifacts(t *testing.T, rec *trace.Recorder, reg *metrics.Registry, ppn int) (jsonl, chrome, mjson []byte) {
	t.Helper()
	var jl, ct, mj bytes.Buffer
	if err := rec.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	opts := trace.ChromeOptions{NodeOf: func(rank int) int { return rank / ppn }}
	if err := rec.WriteChromeTrace(&ct, opts); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteJSON(&mj); err != nil {
		t.Fatal(err)
	}
	return jl.Bytes(), ct.Bytes(), mj.Bytes()
}

// goldenConfig is the pinned scenario: ping-pong over Java arrays (so
// both staging copies appear) under a seeded 5% drop plan (so the
// reliability phases appear). Everything downstream is a pure function
// of this configuration.
func goldenConfig() Config {
	return withPlan(mv2(2, 1, ModeArrays, obsOpts()), faults.Uniform(0xC0FFEE, 0.05))
}

// TestGoldenArtifacts locks the three export formats down byte for
// byte. Run with -update to re-record after an intentional format
// change.
func TestGoldenArtifacts(t *testing.T) {
	rec, reg := obsRun(t, "latency", goldenConfig())
	jl, ct, mj := renderArtifacts(t, rec, reg, 1)
	for _, g := range []struct {
		name string
		got  []byte
	}{
		{"latency_trace.jsonl", jl},
		{"latency_chrome.json", ct},
		{"latency_metrics.json", mj},
	} {
		path := filepath.Join("testdata", g.name)
		if *update {
			if err := os.WriteFile(path, g.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (run `go test ./internal/omb -run TestGoldenArtifacts -update`): %v", err)
		}
		if !bytes.Equal(g.got, want) {
			t.Errorf("%s drifted from golden: got %d bytes, want %d bytes; "+
				"if the format change is intentional, re-record with -update",
				g.name, len(g.got), len(want))
		}
	}
}

// TestArtifactsDeterministicAcrossRuns is the in-process half of the
// determinism guarantee: two complete executions of the same seeded
// configuration — fresh world, fresh goroutines, fresh recorder — must
// export byte-identical artifacts. CI repeats the suite under -race,
// where goroutine interleaving varies most.
func TestArtifactsDeterministicAcrossRuns(t *testing.T) {
	render := func() (j, c, m []byte) {
		rec, reg := obsRun(t, "latency", goldenConfig())
		return renderArtifacts(t, rec, reg, 1)
	}
	j1, c1, m1 := render()
	j2, c2, m2 := render()
	if !bytes.Equal(j1, j2) {
		t.Error("JSONL trace differs between identical runs")
	}
	if !bytes.Equal(c1, c2) {
		t.Error("Chrome trace differs between identical runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSON differs between identical runs")
	}
}

// checkPhases asserts the structural invariants of a phase breakdown:
// every span is well-formed and inside the run, phase totals are
// non-negative, and the serial phases of a blocking ping-pong cannot
// exceed the makespan.
func checkPhases(t *testing.T, events []trace.Event, lossy bool) {
	t.Helper()
	var makespan vtime.Time
	for _, e := range events {
		if e.Start < 0 || e.End < e.Start {
			t.Fatalf("ill-formed span: %+v", e)
		}
		if e.End > makespan {
			makespan = e.End
		}
	}
	var totalRetx, totalAck vtime.Duration
	for rank, p := range trace.PhasesByRank(events) {
		for name, d := range map[string]vtime.Duration{
			"copyin": p.CopyIn, "wire": p.Wire, "copyout": p.CopyOut,
			"ack": p.Ack, "retx": p.Retransmit, "gc": p.GC, "coll": p.Coll,
		} {
			if d < 0 {
				t.Fatalf("rank %d: negative %s phase %v", rank, name, d)
			}
		}
		// Staging and wire time of a blocking ping-pong are serial:
		// their sum must fit in the job's end-to-end duration.
		if serial := p.CopyIn + p.Wire + p.CopyOut; vtime.Time(serial) > makespan {
			t.Fatalf("rank %d: serial phases %v exceed makespan %v", rank, serial, makespan)
		}
		if p.CopyIn == 0 || p.Wire == 0 {
			t.Fatalf("rank %d: arrays-mode ping-pong without copyin/wire time: %+v", rank, p)
		}
		totalRetx += p.Retransmit
		totalAck += p.Ack
	}
	if lossy {
		if totalRetx <= 0 {
			t.Fatal("5% drop plan produced zero retransmission time")
		}
		if totalAck <= 0 {
			t.Fatal("5% drop plan produced zero ack round-trip time")
		}
	} else {
		if totalRetx != 0 || totalAck != 0 {
			t.Fatalf("lossless run charged reliability phases: retx=%v ack=%v", totalRetx, totalAck)
		}
	}
}

// TestPhaseConservation reconciles the protocol-phase breakdown with
// the end-to-end virtual durations, with and without injected faults.
func TestPhaseConservation(t *testing.T) {
	recClean, regClean := obsRun(t, "latency", mv2(2, 1, ModeArrays, obsOpts()))
	checkPhases(t, recClean.Events(), false)

	recLossy, _ := obsRun(t, "latency", goldenConfig())
	checkPhases(t, recLossy.Events(), true)

	// Metrics-side conservation: every staging buffer borrowed from the
	// pool was returned, and the high-water mark saw at least one
	// borrow.
	for rank := 0; rank < 2; rank++ {
		gets := regClean.Counter(rank, "pool", "gets")
		frees := regClean.Counter(rank, "pool", "frees")
		if gets == 0 || gets != frees {
			t.Fatalf("rank %d: pool gets=%d frees=%d", rank, gets, frees)
		}
		if inUse := regClean.Gauge(rank, "pool", "in_use_bytes"); inUse != 0 {
			t.Fatalf("rank %d: %d staging bytes still out after the run", rank, inUse)
		}
		if hw := regClean.Gauge(rank, "pool", "high_water_bytes"); hw <= 0 {
			t.Fatalf("rank %d: high-water mark %d after %d gets", rank, hw, gets)
		}
		// The histogram side must agree with the event side: as many
		// send observations as send spans.
		h := regClean.HistogramSnapshot(rank, "p2p", "send_ps")
		var sends int64
		for _, e := range recClean.Events() {
			if e.Rank == rank && e.Kind == trace.KindSend {
				sends++
			}
		}
		if h.Count != sends {
			t.Fatalf("rank %d: %d send observations, %d send spans", rank, h.Count, sends)
		}
	}
}
