package omb

import (
	"testing"

	"mv2j/internal/core"
)

// Figure-shape acceptance tests: each figure's headline finding must
// hold on the simulated cluster. Tolerance bands are generous — the
// claim is the SHAPE (who wins, roughly by how much, where crossovers
// fall), not the paper's exact values.

func fourWayRows(t *testing.T, bench string, nodes, ppn int, o Options) (mv2Buf, mv2Arr, ompiBuf, ompiArr []Result) {
	t.Helper()
	var err error
	if mv2Buf, err = RunBenchmark(bench, mv2(nodes, ppn, ModeBuffer, o)); err != nil {
		t.Fatal(err)
	}
	if mv2Arr, err = RunBenchmark(bench, mv2(nodes, ppn, ModeArrays, o)); err != nil {
		t.Fatal(err)
	}
	if ompiBuf, err = RunBenchmark(bench, ompi(nodes, ppn, ModeBuffer, o)); err != nil {
		t.Fatal(err)
	}
	if ompiArr, err = RunBenchmark(bench, ompi(nodes, ppn, ModeArrays, o)); err != nil {
		t.Fatal(err)
	}
	return
}

// Fig. 5: intra-node small-message latency — MVAPICH2-J buffer beats
// Open MPI-J buffer by ~2.46x on average.
func TestFig05IntraNodeSmallLatencyFactor(t *testing.T) {
	o := smallOpts()
	mv2Buf, mv2Arr, ompiBuf, _ := fourWayRows(t, "latency", 1, 2, o)
	f := geomeanFactor(t, ompiBuf, mv2Buf)
	if f < 1.8 || f > 3.3 {
		t.Fatalf("OMPI-J/MV2-J intra small factor %.2f outside [1.8, 3.3] (paper 2.46)", f)
	}
	// Buffers beat arrays at the OMB level (no validation).
	fa := geomeanFactor(t, mv2Arr, mv2Buf)
	if fa <= 1.0 {
		t.Fatalf("MV2-J arrays (%.2fx of buffer) should carry buffering-layer overhead", fa)
	}
}

// Figs. 9/10: inter-node point-to-point is comparable across libraries.
func TestFig09InterNodeLatencyComparable(t *testing.T) {
	o := smallOpts()
	mv2Buf, _, ompiBuf, _ := fourWayRows(t, "latency", 2, 1, o)
	f := geomeanFactor(t, ompiBuf, mv2Buf)
	if f < 0.85 || f > 1.5 {
		t.Fatalf("inter-node buffer factor %.2f should be ~comparable (paper)", f)
	}
}

// Fig. 11: the Java layer costs about a microsecond, and MVAPICH2-J's
// layer is cheaper than Open MPI-J's.
func TestFig11JavaLayerOverhead(t *testing.T) {
	o := smallOpts()
	mv2Nat, err := Latency(mv2(2, 1, ModeNative, o))
	if err != nil {
		t.Fatal(err)
	}
	mv2Buf, err := Latency(mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	ompiNat, err := Latency(ompi(2, 1, ModeNative, o))
	if err != nil {
		t.Fatal(err)
	}
	ompiBuf, err := Latency(ompi(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	over := func(j, n []Result) float64 {
		sum := 0.0
		for i := range j {
			sum += j[i].LatencyUs - n[i].LatencyUs
		}
		return sum / float64(len(j))
	}
	mv2Over, ompiOver := over(mv2Buf, mv2Nat), over(ompiBuf, ompiNat)
	if mv2Over < 0.2 || mv2Over > 1.5 {
		t.Fatalf("MV2-J Java overhead %.2fus outside the ~1us ballpark", mv2Over)
	}
	if ompiOver < 0.2 || ompiOver > 1.8 {
		t.Fatalf("OMPI-J Java overhead %.2fus outside the ~1us ballpark", ompiOver)
	}
	if mv2Over >= ompiOver {
		t.Fatalf("MV2-J overhead (%.2f) must be below OMPI-J's (%.2f)", mv2Over, ompiOver)
	}
}

// Figs. 14/15: broadcast at 4x16 ranks — MVAPICH2-J wins by ~6.2x
// (buffers) and by a clearly smaller factor with arrays (~2.2x).
func TestFig1415BcastFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank sweep")
	}
	o := Options{MinSize: 1, MaxSize: 1 << 20, Iters: 8, Warmup: 2, LargeThreshold: 64 << 10, LargeIters: 3}
	mv2Buf, mv2Arr, ompiBuf, ompiArr := fourWayRows(t, "bcast", 4, 16, o)
	fb := geomeanFactor(t, ompiBuf, mv2Buf)
	fa := geomeanFactor(t, ompiArr, mv2Arr)
	if fb < 4.0 || fb > 9.0 {
		t.Fatalf("bcast buffer factor %.2f outside [4, 9] (paper 6.2)", fb)
	}
	if fa < 1.8 || fa > 6.0 {
		t.Fatalf("bcast arrays factor %.2f outside [1.8, 6] (paper 2.2)", fa)
	}
	if fa >= fb {
		t.Fatalf("arrays factor (%.2f) must be below buffer factor (%.2f), as in the paper", fa, fb)
	}
}

// Figs. 16/17: allreduce — ~2.76x (buffers), ~1.62x (arrays), both
// smaller than the broadcast factors.
func TestFig1617AllreduceFactors(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank sweep")
	}
	o := Options{MinSize: 1, MaxSize: 1 << 20, Iters: 8, Warmup: 2, LargeThreshold: 64 << 10, LargeIters: 3}
	mv2Buf, mv2Arr, ompiBuf, ompiArr := fourWayRows(t, "allreduce", 4, 16, o)
	fb := geomeanFactor(t, ompiBuf, mv2Buf)
	fa := geomeanFactor(t, ompiArr, mv2Arr)
	if fb < 2.0 || fb > 4.5 {
		t.Fatalf("allreduce buffer factor %.2f outside [2, 4.5] (paper 2.76)", fb)
	}
	if fa < 1.2 || fa > 3.2 {
		t.Fatalf("allreduce arrays factor %.2f outside [1.2, 3.2] (paper 1.62)", fa)
	}
	if fa >= fb {
		t.Fatalf("arrays factor (%.2f) must be below buffer factor (%.2f)", fa, fb)
	}
}

// Fig. 18: with validation enabled, arrays overtake direct buffers
// past ~256B and win by ~3x at 4MB.
func TestFig18ValidationCrossover(t *testing.T) {
	o := Options{MinSize: 1, MaxSize: 4 << 20, Iters: 10, Warmup: 2, LargeThreshold: 64 << 10, LargeIters: 3, Validate: true}
	arrays, err := Latency(mv2(2, 1, ModeArrays, o))
	if err != nil {
		t.Fatal(err)
	}
	buffers, err := Latency(mv2(2, 1, ModeBuffer, o))
	if err != nil {
		t.Fatal(err)
	}
	cross := -1
	for i := range arrays {
		if arrays[i].LatencyUs < buffers[i].LatencyUs {
			cross = arrays[i].Size
			break
		}
	}
	if cross < 128 || cross > 1024 {
		t.Fatalf("validation crossover at %dB, want near 256B", cross)
	}
	// Below the crossover, buffers must win (small-message region).
	if arrays[0].LatencyUs <= buffers[0].LatencyUs {
		t.Fatal("buffers must win at 1B even with validation")
	}
	last := len(arrays) - 1
	ratio := buffers[last].LatencyUs / arrays[last].LatencyUs
	if ratio < 2.0 || ratio > 4.0 {
		t.Fatalf("4MB validated buffer/array ratio %.2f outside [2, 4] (paper ~3x)", ratio)
	}
}

// The bandwidth figures' missing series: Open MPI-J cannot run the
// arrays bandwidth benchmark at all.
func TestFig0712MissingSeries(t *testing.T) {
	if _, err := Bandwidth(ompi(2, 1, ModeArrays, smallOpts())); err == nil {
		t.Fatal("Open MPI-J arrays bandwidth must be impossible (Figs. 7/8/12/13)")
	}
	// MVAPICH2-J arrays CAN run it — the buffering layer enables
	// non-blocking array transfers.
	if _, err := Bandwidth(mv2(2, 1, ModeArrays, smallOpts())); err != nil {
		t.Fatalf("MVAPICH2-J arrays bandwidth failed: %v", err)
	}
}

var _ = core.MVAPICH2J // keep the import obvious at a glance
