package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// Non-blocking collective benchmarks in the style of OMB's osu_ibcast
// / osu_iallreduce: for each size, first measure the pure collective
// latency, then re-run with a matched compute block inserted between
// initiation and completion and report the total. The overlap
// percentage — how much of the collective the compute hid — is
// returned by NonBlockingOverlap.

func istart(ep endpoint, name string, s, r msgBuf, n int) (*core.CollRequest, error) {
	c := ep.m.CommWorld()
	switch name {
	case "ibcast":
		return c.Ibcast(s.obj(), n, core.BYTE, collRoot)
	case "iallreduce":
		return c.Iallreduce(s.obj(), r.obj(), n, core.BYTE, core.SUM)
	case "ibarrier":
		return c.Ibarrier()
	default:
		return nil, fmt.Errorf("omb: unknown non-blocking collective %q", name)
	}
}

// NonBlockingLatency reports the pure (no-overlap) latency of the
// named non-blocking collective.
func NonBlockingLatency(name string, cfg Config) ([]Result, error) {
	rows, _, err := nbColl(name, cfg)
	return rows, err
}

// NonBlockingOverlap reports the overlap percentage achieved with a
// matched compute block (in the MBps column, 0-100).
func NonBlockingOverlap(name string, cfg Config) ([]Result, error) {
	_, rows, err := nbColl(name, cfg)
	return rows, err
}

func nbColl(name string, cfg Config) (lat []Result, overlap []Result, err error) {
	if cfg.Mode == ModeNative {
		return nil, nil, fmt.Errorf("omb: non-blocking collective benchmarks run at the bindings level")
	}
	sizeJVM(&cfg.Core, 2*cfg.Opts.MaxSize)
	latSink := &resultSink{}
	ovSink := &resultSink{}
	err = core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		sbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		rbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		ss := m.JVM().MustArray(jvm.Double, 1)
		sr := m.JVM().MustArray(jvm.Double, 1)
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)

			// Phase 1: pure non-blocking latency (init + immediate wait).
			var pure vtime.Duration
			for i := -warm; i < iters; i++ {
				if err := ep.barrier(); err != nil {
					return err
				}
				sw := vtime.StartStopwatch(m.Clock())
				req, err := istart(ep, name, sbuf, rbuf, size)
				if err != nil {
					return err
				}
				if err := req.Wait(); err != nil {
					return err
				}
				if i >= 0 {
					pure += sw.Elapsed()
				}
			}
			// Each rank overlaps a compute block matched to ITS OWN
			// pure latency; reported numbers are rank averages, like
			// OMB's collective reporting — the root hides nothing (its
			// cost is CPU injection), waiting ranks hide almost all.
			pureLocalUs := avgLatencyUs(pure, iters)
			pureUs, err := ep.sumScalarUs(pureLocalUs, ss, sr)
			if err != nil {
				return err
			}

			// Phase 2: overlap the matched compute block.
			compute := vtime.Micros(pureLocalUs)
			var total vtime.Duration
			for i := -warm; i < iters; i++ {
				if err := ep.barrier(); err != nil {
					return err
				}
				sw := vtime.StartStopwatch(m.Clock())
				req, err := istart(ep, name, sbuf, rbuf, size)
				if err != nil {
					return err
				}
				m.Clock().Advance(compute)
				if err := req.Wait(); err != nil {
					return err
				}
				if i >= 0 {
					total += sw.Elapsed()
				}
			}
			totalUs, err := ep.sumScalarUs(avgLatencyUs(total, iters), ss, sr)
			if err != nil {
				return err
			}

			// overlap% = how much of the pure latency the compute hid.
			ovPct := 0.0
			if pureUs > 0 {
				ovPct = (1 - (totalUs-pureUs)/pureUs) * 100
				if ovPct < 0 {
					ovPct = 0
				}
				if ovPct > 100 {
					ovPct = 100
				}
			}
			if ep.rank() == 0 {
				latSink.add(Result{Size: size, LatencyUs: pureUs})
				ovSink.add(Result{Size: size, MBps: ovPct})
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return latSink.sorted(), ovSink.sorted(), nil
}
