package omb

import (
	"fmt"
	"reflect"
	"testing"

	"mv2j/internal/faults"
)

// Chaos suite: the OMB-J benchmarks must deliver byte-exact payloads
// and report sane virtual times while the fabric drops traffic. Every
// run validates payloads elementwise (Opts.Validate), so a single
// corrupted or lost-and-not-recovered byte fails the benchmark body
// itself; the assertions here add the timing side: retransmissions may
// only inflate measured time, never deflate it.

func chaosOpts() Options {
	return Options{
		MinSize: 1, MaxSize: 4096,
		Iters: 6, Warmup: 1,
		LargeThreshold: 64 << 10, LargeIters: 2,
		Window:   8,
		Validate: true,
	}
}

func withPlan(cfg Config, plan *faults.Plan) Config {
	cfg.Core.Faults = plan
	return cfg
}

// chaosBench names one benchmark and how to interpret its result rows.
type chaosBench struct {
	name       string
	nodes, ppn int
	bandwidth  bool // rows carry MBps (higher = faster) instead of LatencyUs
}

func chaosBenches() []chaosBench {
	return []chaosBench{
		{name: "latency", nodes: 2, ppn: 1},
		{name: "bw", nodes: 2, ppn: 1, bandwidth: true},
		{name: "bibw", nodes: 2, ppn: 1, bandwidth: true},
		{name: "bcast", nodes: 2, ppn: 2},
		{name: "allreduce", nodes: 2, ppn: 2},
	}
}

func chaosConfig(lib string, b chaosBench, plan *faults.Plan) Config {
	var cfg Config
	if lib == "mvapich2" {
		cfg = mv2(b.nodes, b.ppn, ModeBuffer, chaosOpts())
	} else {
		cfg = ompi(b.nodes, b.ppn, ModeBuffer, chaosOpts())
	}
	return withPlan(cfg, plan)
}

func TestChaosByteExactDeliveryUnderLoss(t *testing.T) {
	// Virtual-time slack for the one place loss can legally shave
	// time: a delayed eager arrival that lands after its receive was
	// posted skips the bounce-buffer copy (≤ ~0.4µs at these sizes),
	// while every retransmission costs a ≥25µs RTO. The latency
	// assertions therefore allow a small epsilon.
	const epsUs = 1.0
	for _, lib := range []string{"mvapich2", "openmpi"} {
		for _, b := range chaosBenches() {
			baseline, err := RunBenchmark(b.name, chaosConfig(lib, b, nil))
			if err != nil {
				t.Fatalf("%s/%s lossless: %v", lib, b.name, err)
			}
			for _, drop := range []float64{0.001, 0.01, 0.05} {
				name := fmt.Sprintf("%s/%s/drop=%g", lib, b.name, drop)
				t.Run(name, func(t *testing.T) {
					plan := faults.Uniform(0xC0FFEE, drop)
					rows, err := RunBenchmark(b.name, chaosConfig(lib, b, plan))
					if err != nil {
						t.Fatalf("benchmark failed under loss: %v", err)
					}
					if len(rows) != len(baseline) {
						t.Fatalf("%d rows under loss, %d lossless", len(rows), len(baseline))
					}
					for i, r := range rows {
						base := baseline[i]
						if r.Size != base.Size {
							t.Fatalf("row %d: size %d vs %d", i, r.Size, base.Size)
						}
						if b.bandwidth {
							// Loss may only reduce throughput.
							if r.MBps > base.MBps*1.02+epsUs {
								t.Errorf("%dB: %.2f MB/s under loss beats lossless %.2f MB/s",
									r.Size, r.MBps, base.MBps)
							}
						} else if r.LatencyUs < base.LatencyUs-epsUs {
							t.Errorf("%dB: %.2fus under loss beats lossless %.2fus",
								r.Size, r.LatencyUs, base.LatencyUs)
						}
					}
				})
			}
		}
	}
}

func TestChaosDeterminismSameSeedSameTimes(t *testing.T) {
	// Identical fault plan (same seed) must give bit-identical
	// virtual-time results run to run — verdicts are pure functions of
	// the transfer identity, so host scheduling must not show through.
	for _, b := range chaosBenches() {
		plan := faults.Uniform(1234, 0.02)
		first, err := RunBenchmark(b.name, chaosConfig("mvapich2", b, plan))
		if err != nil {
			t.Fatalf("%s run 1: %v", b.name, err)
		}
		second, err := RunBenchmark(b.name, chaosConfig("mvapich2", b, plan))
		if err != nil {
			t.Fatalf("%s run 2: %v", b.name, err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("%s: non-deterministic results under identical seed:\n%+v\nvs\n%+v",
				b.name, first, second)
		}
	}
}

func TestChaosDifferentSeedsDiverge(t *testing.T) {
	// A different seed must actually change which transfers fail: if
	// two distinct seeds at 5%% drop produce identical timings, the
	// plan is not consulting its seed.
	b := chaosBench{name: "latency", nodes: 2, ppn: 1}
	a, err := RunBenchmark(b.name, chaosConfig("mvapich2", b, faults.Uniform(1, 0.05)))
	if err != nil {
		t.Fatal(err)
	}
	z, err := RunBenchmark(b.name, chaosConfig("mvapich2", b, faults.Uniform(2, 0.05)))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, z) {
		t.Fatal("seeds 1 and 2 produced identical results at 5% drop")
	}
}

func TestChaosLosslessPlanMatchesNoPlan(t *testing.T) {
	// A zero-rate plan engages the reliability layer (checksums, acks)
	// but injects nothing; payload delivery must still be exact and
	// the run must complete. Times differ from the no-plan path only
	// through protocol bookkeeping, which is free in virtual time —
	// so results should be identical.
	b := chaosBench{name: "latency", nodes: 2, ppn: 1}
	bare, err := RunBenchmark(b.name, chaosConfig("mvapich2", b, nil))
	if err != nil {
		t.Fatal(err)
	}
	clean, err := RunBenchmark(b.name, chaosConfig("mvapich2", b, faults.Uniform(7, 0)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare, clean) {
		t.Fatalf("zero-rate plan changed results:\n%+v\nvs\n%+v", bare, clean)
	}
}
