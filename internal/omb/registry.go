package omb

import (
	"fmt"
	"sort"
)

// Benchmarks returns the names RunBenchmark accepts, sorted.
func Benchmarks() []string {
	names := []string{"latency", "bw", "bibw", "barrier", "put", "get", "acc", "mbw", "mr",
		"mr-overload", "mr-mt", "kvservice", "ibcast", "iallreduce", "ibarrier",
		"ddt-pack", "ddt-manual", "ddt-contig"}
	for name := range collCases() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// RunBenchmark dispatches a benchmark by its OMB-style name
// ("latency", "bw", "bibw", "bcast", "allreduce", ...).
func RunBenchmark(name string, cfg Config) ([]Result, error) {
	switch name {
	case "latency":
		return Latency(cfg)
	case "bw":
		return Bandwidth(cfg)
	case "bibw":
		return BiBandwidth(cfg)
	case "barrier":
		return BarrierLatency(cfg)
	case "put", "get", "acc":
		return OneSidedLatency(name, cfg)
	case "mbw":
		return MultiBandwidth(cfg)
	case "mr":
		return MultiMessageRate(cfg)
	case "mr-overload":
		return MultiRecvOverload(cfg)
	case "mr-mt":
		return MsgRateMT(cfg)
	case "kvservice":
		return KVService(cfg)
	case "ibcast", "iallreduce", "ibarrier":
		return NonBlockingLatency(name, cfg)
	case "ddt-pack", "ddt-manual", "ddt-contig":
		return DDTLatency(name, cfg)
	default:
		if _, ok := collCases()[name]; ok {
			if cfg.Opts.FT {
				return FTCollectiveLatency(name, cfg)
			}
			return CollectiveLatency(name, cfg)
		}
		return nil, fmt.Errorf("omb: unknown benchmark %q (have %v)", name, Benchmarks())
	}
}
