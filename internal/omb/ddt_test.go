package omb

import (
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/nativempi"
	"mv2j/internal/profile"
)

func ddtOptsTest(min, max, iters int) Options {
	return Options{
		MinSize: min, MaxSize: max,
		Iters: iters, Warmup: 1,
		LargeThreshold: 16 << 10, LargeIters: iters,
		Window: 4, Validate: true,
	}
}

func TestDDTLatencyVariants(t *testing.T) {
	for _, variant := range []string{"ddt-pack", "ddt-manual", "ddt-contig"} {
		cfg := mv2(1, 2, ModeArrays, ddtOptsTest(1<<10, 64<<10, 3))
		rows, err := RunBenchmark(variant, cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant, err)
		}
		if len(rows) == 0 {
			t.Fatalf("%s: no rows", variant)
		}
		for _, r := range rows {
			if r.Size < ddtChunkBytes {
				t.Errorf("%s: size %d below one vector block", variant, r.Size)
			}
			if r.LatencyUs <= 0 {
				t.Errorf("%s: non-positive latency at %d", variant, r.Size)
			}
		}
	}
}

func TestDDTSkipsSubBlockSizes(t *testing.T) {
	rows, err := DDTLatency("ddt-pack", mv2(1, 2, ModeArrays, ddtOptsTest(1, 256, 2)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Size < ddtChunkBytes || r.Size%ddtChunkBytes != 0 {
			t.Errorf("swept size %d not a whole number of blocks", r.Size)
		}
	}
	if len(rows) != 3 { // 64, 128, 256
		t.Errorf("got %d rows, want 3: %v", len(rows), rows)
	}
}

func TestDDTUnknownVariant(t *testing.T) {
	if _, err := DDTLatency("ddt-bogus", mv2(1, 2, ModeArrays, ddtOptsTest(64, 64, 1))); err == nil {
		t.Fatal("bogus variant accepted")
	}
}

// runDDTWithStats sweeps one variant and returns the world's host
// counters.
func runDDTWithStats(t *testing.T, variant string, nodes, ppn int, o Options) nativempi.HostStats {
	t.Helper()
	var hs nativempi.HostStats
	prof, _ := profile.ByName("mvapich2")
	cfg := Config{
		Core: core.Config{Nodes: nodes, PPN: ppn, Lib: prof, HostStats: &hs},
		Mode: ModeArrays,
		Opts: o,
	}
	if _, err := RunBenchmark(variant, cfg); err != nil {
		t.Fatalf("%s: %v", variant, err)
	}
	return hs
}

// TestDDTPackBeatsManualBytesCopied pins the headline claim of the
// typed datapath: at rendezvous-sized strided transfers (>= 256 KiB of
// wire bytes) sending the committed vector directly moves strictly
// fewer host bytes than the manual Pack -> BYTE send -> Unpack idiom,
// and the savings show up as elided copies, not just missing ones.
func TestDDTPackBeatsManualBytesCopied(t *testing.T) {
	o := ddtOptsTest(256<<10, 512<<10, 2)
	for _, shape := range [][2]int{{1, 2}, {2, 1}} { // shared-memory rndv and inter-node RDMA
		pack := runDDTWithStats(t, "ddt-pack", shape[0], shape[1], o)
		manual := runDDTWithStats(t, "ddt-manual", shape[0], shape[1], o)
		if pack.Copy.BytesCopied >= manual.Copy.BytesCopied {
			t.Errorf("nodes=%d ppn=%d: ddt-pack copied %d bytes, manual %d — no win",
				shape[0], shape[1], pack.Copy.BytesCopied, manual.Copy.BytesCopied)
		}
		if pack.Copy.CopiesElided == 0 {
			t.Errorf("nodes=%d ppn=%d: ddt-pack elided no copies", shape[0], shape[1])
		}
	}
}
