package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/nativempi"
	"mv2j/internal/vtime"
)

// endpoint adapts one rank to the selected mode, so each benchmark
// body is written once.
type endpoint struct {
	m    *core.MPI
	mode Mode
}

type waiter interface{ wait() error }

type coreWaiter struct{ r *core.Request }

func (w coreWaiter) wait() error { _, err := w.r.Wait(); return err }

type nativeWaiter struct{ r *nativempi.Request }

func (w nativeWaiter) wait() error { _, err := w.r.Wait(); return err }

func (e endpoint) rank() int { return e.m.CommWorld().Rank() }
func (e endpoint) size() int { return e.m.CommWorld().Size() }

func (e endpoint) send(buf msgBuf, n, dst, tag int) error {
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Send(buf.raw()[:n], dst, tag)
	}
	return e.m.CommWorld().Send(buf.obj(), n, core.BYTE, dst, tag)
}

func (e endpoint) recv(buf msgBuf, n, src, tag int) error {
	if e.mode == ModeNative {
		_, err := e.m.Proc().CommWorld().Recv(buf.raw()[:n], src, tag)
		return err
	}
	_, err := e.m.CommWorld().Recv(buf.obj(), n, core.BYTE, src, tag)
	return err
}

func (e endpoint) isend(buf msgBuf, n, dst, tag int) (waiter, error) {
	if e.mode == ModeNative {
		r, err := e.m.Proc().CommWorld().Isend(buf.raw()[:n], dst, tag)
		if err != nil {
			return nil, err
		}
		return nativeWaiter{r}, nil
	}
	r, err := e.m.CommWorld().Isend(buf.obj(), n, core.BYTE, dst, tag)
	if err != nil {
		return nil, err
	}
	return coreWaiter{r}, nil
}

func (e endpoint) irecv(buf msgBuf, n, src, tag int) (waiter, error) {
	if e.mode == ModeNative {
		r, err := e.m.Proc().CommWorld().Irecv(buf.raw()[:n], src, tag)
		if err != nil {
			return nil, err
		}
		return nativeWaiter{r}, nil
	}
	r, err := e.m.CommWorld().Irecv(buf.obj(), n, core.BYTE, src, tag)
	if err != nil {
		return nil, err
	}
	return coreWaiter{r}, nil
}

func (e endpoint) barrier() error {
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Barrier()
	}
	return e.m.CommWorld().Barrier()
}

// waitAny blocks until one of the non-nil waiters completes and
// returns its index (-1 when none are active). All waiters in a slice
// come from one endpoint, so they are uniformly core- or native-mode.
func waitAny(ws []waiter) (int, error) {
	if len(ws) == 0 {
		return -1, nil
	}
	native := false
	for _, w := range ws {
		if w == nil {
			continue
		}
		if _, ok := w.(nativeWaiter); ok {
			native = true
		}
		break
	}
	if native {
		reqs := make([]*nativempi.Request, len(ws))
		for i, w := range ws {
			if w != nil {
				reqs[i] = w.(nativeWaiter).r
			}
		}
		i, _, err := nativempi.Waitany(reqs)
		return i, err
	}
	reqs := make([]*core.Request, len(ws))
	for i, w := range ws {
		if w != nil {
			reqs[i] = w.(coreWaiter).r
		}
	}
	i, _, err := core.Waitany(reqs)
	return i, err
}

func waitAll(ws []waiter) error {
	for _, w := range ws {
		if err := w.wait(); err != nil {
			return err
		}
	}
	return nil
}

const (
	tagData = 1
	tagAck  = 2
)

// Latency runs the osu_latency ping-pong between ranks 0 and 1
// (paper Algorithm 1). With Opts.Validate it additionally populates
// each outgoing message and verifies each incoming one inside the
// timed region — the §VI-F experiment.
func Latency(cfg Config) ([]Result, error) {
	sizeJVM(&cfg.Core, cfg.Opts.MaxSize)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		if ep.size() < 2 {
			return fmt.Errorf("omb: latency needs at least 2 ranks")
		}
		me := ep.rank()
		var sbuf, rbuf msgBuf
		if me <= 1 {
			var err error
			if sbuf, err = newBuf(m, cfg.Mode, cfg.Opts.MaxSize); err != nil {
				return err
			}
			if rbuf, err = newBuf(m, cfg.Mode, cfg.Opts.MaxSize); err != nil {
				return err
			}
		}
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			if me <= 1 {
				var sw vtime.Stopwatch
				for i := -warm; i < iters; i++ {
					if i == 0 {
						sw = vtime.StartStopwatch(m.Clock())
					}
					if me == 0 {
						if cfg.Opts.Validate {
							sbuf.populate(i, size)
						}
						if err := ep.send(sbuf, size, 1, tagData); err != nil {
							return err
						}
						if err := ep.recv(rbuf, size, 1, tagData); err != nil {
							return err
						}
						if cfg.Opts.Validate {
							if err := rbuf.verify(i, size); err != nil {
								return err
							}
						}
					} else {
						if err := ep.recv(rbuf, size, 0, tagData); err != nil {
							return err
						}
						if cfg.Opts.Validate {
							if err := rbuf.verify(i, size); err != nil {
								return err
							}
							sbuf.populate(i, size)
						}
						if err := ep.send(sbuf, size, 0, tagData); err != nil {
							return err
						}
					}
				}
				if me == 0 {
					sink.add(Result{Size: size, LatencyUs: avgLatencyUs(sw.Elapsed(), 2*iters)})
				}
			}
			if err := ep.barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}

// Bandwidth runs osu_bw: rank 0 streams a window of non-blocking
// sends per iteration; rank 1 acknowledges each window.
func Bandwidth(cfg Config) ([]Result, error) {
	return bandwidth(cfg, false)
}

// BiBandwidth runs osu_bibw: both directions stream simultaneously.
func BiBandwidth(cfg Config) ([]Result, error) {
	return bandwidth(cfg, true)
}

func bandwidth(cfg Config, bidirectional bool) ([]Result, error) {
	sink := &resultSink{}
	window := cfg.Opts.Window
	if window <= 0 {
		window = 64
	}
	// A full window of array sends holds that many staged pool buffers
	// alive at once; size the arena for it.
	sizeJVM(&cfg.Core, (window/4+2)*cfg.Opts.MaxSize)
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		if ep.size() < 2 {
			return fmt.Errorf("omb: bandwidth needs at least 2 ranks")
		}
		me := ep.rank()
		var sbuf, rbuf, ack msgBuf
		if me <= 1 {
			var err error
			if sbuf, err = newBuf(m, cfg.Mode, cfg.Opts.MaxSize); err != nil {
				return err
			}
			if rbuf, err = newBuf(m, cfg.Mode, cfg.Opts.MaxSize); err != nil {
				return err
			}
			if ack, err = newBuf(m, cfg.Mode, 4); err != nil {
				return err
			}
		}
		ws := make([]waiter, 0, 2*window)
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			if me <= 1 {
				var sw vtime.Stopwatch
				for i := -warm; i < iters; i++ {
					if i == 0 {
						sw = vtime.StartStopwatch(m.Clock())
					}
					ws = ws[:0]
					sends := me == 0 || bidirectional
					recvs := me == 1 || bidirectional
					if sends && cfg.Opts.Validate {
						// Every message of the window carries the same
						// iteration pattern; the sender must not touch the
						// buffer again until the window completes.
						sbuf.populate(i, size)
					}
					if recvs {
						for k := 0; k < window; k++ {
							w, err := ep.irecv(rbuf, size, 1-me, tagData)
							if err != nil {
								return err
							}
							ws = append(ws, w)
						}
					}
					if sends {
						for k := 0; k < window; k++ {
							w, err := ep.isend(sbuf, size, 1-me, tagData)
							if err != nil {
								return err
							}
							ws = append(ws, w)
						}
					}
					if err := waitAll(ws); err != nil {
						return err
					}
					if recvs && cfg.Opts.Validate {
						if err := rbuf.verify(i, size); err != nil {
							return err
						}
					}
					// Window handshake.
					if me == 0 {
						if err := ep.recv(ack, 4, 1, tagAck); err != nil {
							return err
						}
					} else {
						if err := ep.send(ack, 4, 0, tagAck); err != nil {
							return err
						}
					}
				}
				if me == 0 {
					elapsed := sw.Elapsed().Seconds()
					bytes := float64(size) * float64(window) * float64(iters)
					if bidirectional {
						bytes *= 2
					}
					sink.add(Result{Size: size, MBps: bytes / elapsed / 1e6})
				}
			}
			if err := ep.barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
