package omb

import (
	"testing"

	"mv2j/internal/core"
	"mv2j/internal/nativempi"
	"mv2j/internal/profile"
)

func mtOpts() Options {
	return Options{MinSize: 512, MaxSize: 2048, Iters: 4, Warmup: 1,
		LargeThreshold: 64 << 10, LargeIters: 2, Window: 8, Threads: 3}
}

// TestMsgRateMTRuns smoke-tests the multithreaded message-rate
// benchmark in every payload mode: positive aggregate rates per size.
func TestMsgRateMTRuns(t *testing.T) {
	for _, mode := range []Mode{ModeBuffer, ModeArrays, ModeNative} {
		rows, err := RunBenchmark("mr-mt", mv2(2, 1, mode, mtOpts()))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(rows) != len(mtOpts().Sizes()) {
			t.Fatalf("%v: %d rows, want %d", mode, len(rows), len(mtOpts().Sizes()))
		}
		for _, r := range rows {
			if r.MBps <= 0 {
				t.Fatalf("%v size %d: non-positive message rate %f", mode, r.Size, r.MBps)
			}
		}
	}
}

// TestMsgRateMTDeterministic: the multithreaded benchmark produces
// identical virtual rates across repeated runs and across engine
// worker-pool widths — host threading must not reach the artifacts.
func TestMsgRateMTDeterministic(t *testing.T) {
	run := func(workers int) []Result {
		t.Helper()
		cfg := mv2(2, 2, ModeBuffer, mtOpts())
		cfg.Core.EngineWorkers = workers
		rows, err := RunBenchmark("mr-mt", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	ref := run(1)
	for _, workers := range []int{1, 0, 4} {
		got := run(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d rows vs %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d row %d: %+v != %+v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestKVServiceRuns: the messaging-service workload completes in
// every payload mode with a positive request rate, and the row
// reports the fixed request size.
func TestKVServiceRuns(t *testing.T) {
	opts := Options{Iters: 2, Window: 8, Threads: 2, Clients: 192}
	for _, mode := range []Mode{ModeBuffer, ModeArrays, ModeNative} {
		rows, err := RunBenchmark("kvservice", mv2(1, 4, mode, opts))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(rows) != 1 || rows[0].Size != 32 || rows[0].MBps <= 0 {
			t.Fatalf("%v: bad rows %+v", mode, rows)
		}
	}
}

// TestKVServiceIncastDemotes: with credits on and a tight unexpected
// queue, the hot-key incast at server 0 pushes the queue over the
// watermark and senders demote eager requests to rendezvous —
// DemotedSends counts them. The virtual rate stays deterministic
// across runs.
func TestKVServiceIncastDemotes(t *testing.T) {
	run := func() ([]Result, nativempi.HostStats) {
		t.Helper()
		// Credits below the window force a mid-burst credit park, so the
		// resumed sender still holds fresh over-watermark grants when it
		// issues the rest of the burst — the demotion path.
		prof := profile.MVAPICH2()
		prof.EagerCredits = 8
		prof.UnexpectedQueueBytes = 128
		var hs nativempi.HostStats
		cfg := Config{
			Core: core.Config{Nodes: 1, PPN: 4, Lib: prof, Flavor: core.MVAPICH2J, HostStats: &hs},
			Mode: ModeBuffer,
			Opts: Options{Iters: 2, Window: 32, Threads: 2, Clients: 512},
		}
		rows, err := RunBenchmark("kvservice", cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows, hs
	}
	rows0, hs := run()
	if hs.Flow.DemotedSends == 0 {
		t.Errorf("incast under tight credits demoted no sends: %+v", hs.Flow)
	}
	if hs.Threads.Groups == 0 || hs.Threads.Handoffs == 0 {
		t.Errorf("thread scheduler unused: %+v", hs.Threads)
	}
	rows1, _ := run()
	if len(rows0) != 1 || rows0[0] != rows1[0] {
		t.Errorf("nondeterministic kvservice: %+v vs %+v", rows0, rows1)
	}
}

// TestKVServiceWideThreads: np=8 with four threads per rank, the
// configuration that exposed the rendezvous request-id collision
// (symmetric client ranks demote with aligned per-rank request
// counters, so a receiver keying pending rendezvous by id alone
// completed the wrong request and panicked on the next DATA).
func TestKVServiceWideThreads(t *testing.T) {
	prof := profile.MVAPICH2()
	prof.EagerCredits = 8
	prof.UnexpectedQueueBytes = 256
	var hs nativempi.HostStats
	cfg := Config{
		Core: core.Config{Nodes: 2, PPN: 4, Lib: prof, Flavor: core.MVAPICH2J, HostStats: &hs},
		Mode: ModeBuffer,
		Opts: Options{Iters: 1, Window: 32, Threads: 4, Clients: 256},
	}
	rows, err := RunBenchmark("kvservice", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].MBps <= 0 {
		t.Fatalf("bad rows %+v", rows)
	}
	if hs.Flow.DemotedSends == 0 {
		t.Errorf("expected demotions in the wide-thread incast: %+v", hs.Flow)
	}
}
