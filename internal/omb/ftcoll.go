package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/trace"
	"mv2j/internal/vtime"
)

// Fault-tolerant collective driver: the OMB collective sweep rebuilt as
// a checkpoint/rollback loop on top of the ULFM-style recovery surface
// (Revoke / AgreeShrink). Each per-size sweep is an epoch: run the
// iteration segment, then close it with one agreement that doubles as
// the exit barrier. A rank that hits a failure-class error revokes the
// communicator, joins the same agreement, and every survivor rolls
// back to the slowest survivor's iteration boundary on the shrunken
// communicator. Results are validated against the membership that
// produced them, and each recovery is reported as a trace span plus an
// "ft" metrics family entry — so a sweep that survives a crash shows
// exactly where the recovery latency went.

// ftCase is a collective body parametrized by the (possibly shrunken)
// communicator instead of the endpoint's hardwired COMM_WORLD. Roots
// and validation factors follow the current communicator, so results
// stay exact across shrinks.
type ftCase struct {
	run   func(c *core.Comm, s, r msgBuf, n int) error
	prep  func(c *core.Comm, s, r msgBuf, iter, n int)
	check func(c *core.Comm, s, r msgBuf, iter, n int) error
}

// ftCases lists the collectives the FT driver supports: the paper's
// headline latency collectives, all with size-independent buffer
// shapes (sendTimes/recvTimes == 1).
func ftCases() map[string]ftCase {
	return map[string]ftCase{
		"bcast": {
			run: func(c *core.Comm, s, _ msgBuf, n int) error {
				return c.Bcast(s.obj(), n, core.BYTE, collRoot)
			},
			prep: func(c *core.Comm, s, _ msgBuf, iter, n int) {
				if c.Rank() == collRoot {
					s.populate(iter, n)
				}
			},
			check: func(c *core.Comm, s, _ msgBuf, iter, n int) error {
				return s.verify(iter, n)
			},
		},
		"reduce": {
			run: func(c *core.Comm, s, r msgBuf, n int) error {
				var recv any
				if c.Rank() == collRoot {
					recv = r.obj()
				}
				return c.Reduce(s.obj(), recv, n, core.BYTE, core.SUM, collRoot)
			},
			prep: func(_ *core.Comm, s, _ msgBuf, iter, n int) {
				s.populate(iter, n)
			},
			check: func(c *core.Comm, _, r msgBuf, iter, n int) error {
				if c.Rank() != collRoot {
					return nil
				}
				return r.verifySum(iter, n, c.Size())
			},
		},
		"allreduce": {
			run: func(c *core.Comm, s, r msgBuf, n int) error {
				return c.Allreduce(s.obj(), r.obj(), n, core.BYTE, core.SUM)
			},
			prep: func(_ *core.Comm, s, _ msgBuf, iter, n int) {
				s.populate(iter, n)
			},
			check: func(c *core.Comm, _, r msgBuf, iter, n int) error {
				return r.verifySum(iter, n, c.Size())
			},
		},
	}
}

// ftSync closes an epoch: one shrink-coupled agreement over the
// current communicator, merging ranks that finished the segment with
// ranks that are recovering from a failure. When nobody failed it
// reports clean and the epoch commits. Otherwise the survivors agree
// on the slowest member's step (the rollback target) with an untimed
// MIN-allreduce on the shrunken communicator and resume from there.
// Further failures mid-sync re-enter the loop until a decision lands
// on an all-live communicator.
func ftSync(c *core.Comm, j int, sl, rl jvm.Array) (nc *core.Comm, resume int, clean bool, err error) {
	for {
		_, next, failed, aerr := c.AgreeShrink(^uint64(0))
		if aerr != nil {
			if core.IsFailure(aerr) {
				c.Revoke()
				continue
			}
			return nil, 0, false, aerr
		}
		if len(failed) == 0 {
			return next, j, true, nil
		}
		sl.SetInt(0, int64(j))
		if merr := next.Allreduce(sl, rl, 1, core.LONG, core.MIN); merr != nil {
			if core.IsFailure(merr) {
				next.Revoke()
				c = next
				continue
			}
			return nil, 0, false, merr
		}
		return next, int(rl.Int(0)), false, nil
	}
}

// ftAvgUs combines the per-rank latency averages with an untimed
// reduction over the current communicator; the result is valid at comm
// rank 0 only.
func ftAvgUs(c *core.Comm, v float64, ss, sr jvm.Array) (float64, error) {
	ss.SetFloat(0, v)
	var recv any
	if c.Rank() == collRoot {
		recv = sr
	}
	if err := c.Reduce(ss, recv, 1, core.DOUBLE, core.SUM, collRoot); err != nil {
		return 0, err
	}
	if c.Rank() != collRoot {
		return 0, nil
	}
	return sr.Float(0) / float64(c.Size()), nil
}

// recordRecovery reports one completed rollback as a recovery-phase
// trace span and an "ft" metrics observation, per surviving rank.
func recordRecovery(m *core.MPI, size, resume int, start vtime.Time) {
	w := m.Proc().World()
	end := m.Clock().Now()
	if rec := w.Recorder(); rec != nil {
		rec.Record(trace.Event{
			Rank: m.Proc().Rank(), Kind: trace.KindRecovery,
			Detail: fmt.Sprintf("rollback size=%d to=%d", size, resume),
			Peer:   -1, Start: start, End: end,
		})
	}
	w.Metrics().Observe(m.Proc().Rank(), "ft", "recovery_ps", int64(end.Sub(start)))
	w.Metrics().Add(m.Proc().Rank(), "ft", "recoveries", 1)
}

// FTCollectiveLatency runs the named collective benchmark with the
// fault-tolerant epoch loop. The sweep completes on the survivors'
// communicator when ranks crash mid-sweep; without any failure it
// reports the same rows as CollectiveLatency modulo the (untimed)
// epoch agreements.
func FTCollectiveLatency(name string, cfg Config) ([]Result, error) {
	fc, ok := ftCases()[name]
	if !ok {
		return nil, fmt.Errorf("omb: collective %q has no fault-tolerant driver (have bcast, reduce, allreduce)", name)
	}
	if cfg.Mode == ModeNative {
		return nil, fmt.Errorf("omb: the fault-tolerant driver needs the bindings layer; native mode is not supported")
	}
	if cfg.Opts.Validate && fc.prep == nil {
		return nil, fmt.Errorf("omb: %s does not support -validate", name)
	}
	cfg.Core.FT = true
	sizeJVM(&cfg.Core, cfg.Opts.MaxSize)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		sbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		rbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		ss := m.JVM().MustArray(jvm.Double, 1)
		sr := m.JVM().MustArray(jvm.Double, 1)
		sl := m.JVM().MustArray(jvm.Long, 1)
		rl := m.JVM().MustArray(jvm.Long, 1)
		c := m.CommWorld()
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			steps := warm + iters
			ts := make([]vtime.Duration, steps)
			j := 0
			for {
				// Run the remaining segment of this epoch. A rollback
				// re-enters here at the agreed step and overwrites the
				// discarded timings.
				segErr := func() error {
					for ; j < steps; j++ {
						iter := j - warm
						if cfg.Opts.Validate {
							fc.prep(c, sbuf, rbuf, iter, size)
						}
						sw := vtime.StartStopwatch(m.Clock())
						if err := fc.run(c, sbuf, rbuf, size); err != nil {
							return err
						}
						ts[j] = sw.Elapsed()
						if cfg.Opts.Validate {
							if err := fc.check(c, sbuf, rbuf, iter, size); err != nil {
								return err
							}
						}
					}
					return nil
				}()
				var avg float64
				if segErr == nil {
					var total vtime.Duration
					for _, d := range ts[warm:] {
						total += d
					}
					avg, segErr = ftAvgUs(c, avgLatencyUs(total, iters), ss, sr)
				}
				recStart := m.Clock().Now()
				if segErr != nil {
					if !core.IsFailure(segErr) {
						return segErr
					}
					// Flush peers out of the broken collective; the
					// sync below merges us with them.
					c.Revoke()
				}
				nc, resume, clean, serr := ftSync(c, j, sl, rl)
				if serr != nil {
					return serr
				}
				if clean && segErr == nil {
					if c.Rank() == collRoot {
						sink.add(Result{Size: size, LatencyUs: avg})
					}
					break
				}
				recordRecovery(m, size, resume, recStart)
				c, j = nc, resume
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
