package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// Derived-datatype ping-pong suites: the non-contiguous counterpart of
// osu_latency, after OMB's osu_latency_dt. All three variants move the
// same wire bytes between ranks 0 and 1; what differs is who flattens
// the strided layout and how many times the payload crosses host
// memory:
//
//   - ddt-pack:   committed TypeVector arrays handed straight to
//     Send/Recv — the typed pack engine on the eager tier, the iovec
//     gather/scatter elision above it (zero intermediate pack buffer);
//   - ddt-manual: the application packs with MPI.Pack into a direct
//     ByteBuffer, ships it as BYTE, and unpacks on the receiver — the
//     portable pre-DDT idiom the pack engine exists to beat;
//   - ddt-contig: a contiguous array of the same wire bytes — the
//     density-1.0 baseline that prices the striding itself.
//
// The layout is a 50%-dense column pattern: blocks of 16 ints every 32
// ints, so a message of S wire bytes spans ~2S bytes of user array.
// These are array-path benchmarks by construction (derived types pack
// from Java arrays); cfg.Mode is ignored.

const (
	ddtBlockInts  = 16 // ints per dense block
	ddtStrideInts = 32 // ints from block start to block start
	ddtIntBytes   = 4
	// ddtChunkBytes is the wire bytes one vector block carries; sweep
	// sizes below this are skipped.
	ddtChunkBytes = ddtBlockInts * ddtIntBytes
)

// ddtExtentInts returns the array footprint, in ints, of a vector
// covering `blocks` dense blocks.
func ddtExtentInts(blocks int) int {
	return (blocks-1)*ddtStrideInts + ddtBlockInts
}

// ddtFill writes a per-iteration pattern into the dense blocks of arr;
// gaps are left alone (the receive path must preserve them).
func ddtFill(arr jvm.Array, blocks, seed int) {
	for b := 0; b < blocks; b++ {
		base := b * ddtStrideInts
		for i := 0; i < ddtBlockInts; i++ {
			arr.SetInt(base+i, int64(seed+b*ddtBlockInts+i))
		}
	}
}

// ddtVerify checks the pattern ddtFill wrote.
func ddtVerify(arr jvm.Array, blocks, seed int) error {
	for b := 0; b < blocks; b++ {
		base := b * ddtStrideInts
		for i := 0; i < ddtBlockInts; i++ {
			want := int64(seed + b*ddtBlockInts + i)
			if got := arr.Int(base + i); got != want {
				return fmt.Errorf("omb: ddt validation failed at block %d int %d: %d != %d", b, i, got, want)
			}
		}
	}
	return nil
}

// DDTLatency runs one of the derived-datatype ping-pong variants
// ("ddt-pack", "ddt-manual", "ddt-contig"). Sizes are wire bytes;
// sizes that do not fit a whole vector block are skipped.
func DDTLatency(variant string, cfg Config) ([]Result, error) {
	switch variant {
	case "ddt-pack", "ddt-manual", "ddt-contig":
	default:
		return nil, fmt.Errorf("omb: unknown ddt benchmark %q", variant)
	}
	// The strided user arrays span ~2x the wire bytes, and ddt-manual
	// adds a wire-sized pack buffer per side.
	sizeJVM(&cfg.Core, 2*cfg.Opts.MaxSize)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		c := m.CommWorld()
		if c.Size() < 2 {
			return fmt.Errorf("omb: %s needs at least 2 ranks", variant)
		}
		me := c.Rank()
		maxBlocks := cfg.Opts.MaxSize / ddtChunkBytes
		if maxBlocks < 1 {
			return fmt.Errorf("omb: %s needs MaxSize >= %d bytes", variant, ddtChunkBytes)
		}
		var sarr, rarr jvm.Array
		var spack, rpack *jvm.ByteBuffer
		if me <= 1 {
			ints := ddtExtentInts(maxBlocks)
			if variant == "ddt-contig" {
				ints = cfg.Opts.MaxSize / ddtIntBytes
			}
			var err error
			if sarr, err = m.JVM().NewArray(jvm.Int, ints); err != nil {
				return err
			}
			if rarr, err = m.JVM().NewArray(jvm.Int, ints); err != nil {
				return err
			}
			if variant == "ddt-manual" {
				if spack, err = m.JVM().AllocateDirect(cfg.Opts.MaxSize); err != nil {
					return err
				}
				if rpack, err = m.JVM().AllocateDirect(cfg.Opts.MaxSize); err != nil {
					return err
				}
			}
		}
		for _, size := range cfg.Opts.Sizes() {
			blocks := size / ddtChunkBytes
			if blocks < 1 || blocks > maxBlocks {
				continue
			}
			iters, warm := cfg.Opts.itersFor(size)
			if me <= 1 {
				dtv := core.TypeVector(core.INT, blocks, ddtBlockInts, ddtStrideInts)
				if variant != "ddt-contig" {
					dtv.Commit()
				}
				send := func(iter int) error {
					switch variant {
					case "ddt-pack":
						return c.Send(sarr, 1, dtv, 1-me, tagData)
					case "ddt-manual":
						spack.Clear()
						if err := m.Pack(sarr, 0, 1, dtv, spack); err != nil {
							return err
						}
						spack.Flip()
						return c.Send(spack, size, core.BYTE, 1-me, tagData)
					default: // ddt-contig
						return c.Send(sarr, size/ddtIntBytes, core.INT, 1-me, tagData)
					}
				}
				recv := func(iter int) error {
					switch variant {
					case "ddt-pack":
						_, err := c.Recv(rarr, 1, dtv, 1-me, tagData)
						return err
					case "ddt-manual":
						rpack.Clear()
						if _, err := c.Recv(rpack, size, core.BYTE, 1-me, tagData); err != nil {
							return err
						}
						return m.Unpack(rpack, rarr, 0, 1, dtv)
					default:
						_, err := c.Recv(rarr, size/ddtIntBytes, core.INT, 1-me, tagData)
						return err
					}
				}
				verify := func(iter int) error {
					if !cfg.Opts.Validate {
						return nil
					}
					if variant == "ddt-contig" {
						for i, n := 0, size/ddtIntBytes; i < n; i++ {
							if got := rarr.Int(i); got != int64(iter+i) {
								return fmt.Errorf("omb: ddt-contig validation failed at %d", i)
							}
						}
						return nil
					}
					return ddtVerify(rarr, blocks, iter)
				}
				populate := func(iter int) {
					if !cfg.Opts.Validate {
						return
					}
					if variant == "ddt-contig" {
						for i, n := 0, size/ddtIntBytes; i < n; i++ {
							sarr.SetInt(i, int64(iter+i))
						}
						return
					}
					ddtFill(sarr, blocks, iter)
				}
				var sw vtime.Stopwatch
				for i := -warm; i < iters; i++ {
					if i == 0 {
						sw = vtime.StartStopwatch(m.Clock())
					}
					if me == 0 {
						populate(i)
						if err := send(i); err != nil {
							return err
						}
						if err := recv(i); err != nil {
							return err
						}
						if err := verify(i); err != nil {
							return err
						}
					} else {
						if err := recv(i); err != nil {
							return err
						}
						if err := verify(i); err != nil {
							return err
						}
						populate(i)
						if err := send(i); err != nil {
							return err
						}
					}
				}
				if variant != "ddt-contig" {
					dtv.Free()
				}
				if me == 0 {
					sink.add(Result{Size: size, LatencyUs: avgLatencyUs(sw.Elapsed(), 2*iters)})
				}
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
