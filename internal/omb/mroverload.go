package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/vtime"
)

// MultiRecvOverload implements mr-overload: the many-to-one incast.
// Every rank except 0 streams windows of non-blocking sends at the
// root, which drains them one blocking receive at a time — so the
// aggregate injection rate exceeds the root's service rate by design
// and the flood lands in the root's unexpected queue. This is the
// workload the credit-based flow control exists for: with EagerCredits
// set, each sender stalls once its window of unacknowledged eager
// messages reaches the credit limit, and the root's queue high-water
// stays bounded by UnexpectedQueueBytes instead of growing with the
// window.
//
// The reported value is the aggregate message rate observed at the
// root (messages/second, in the MBps field like mr — use the benchmark
// name to interpret the column).
func MultiRecvOverload(cfg Config) ([]Result, error) {
	window := cfg.Opts.Window
	if window <= 0 {
		window = 64
	}
	sizeJVM(&cfg.Core, (window/4+2)*cfg.Opts.MaxSize)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		p := ep.size()
		if p < 2 {
			return fmt.Errorf("omb: mr-overload needs at least 2 ranks, got %d", p)
		}
		senders := p - 1
		me := ep.rank()

		sbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		rbuf, err := newBuf(m, cfg.Mode, cfg.Opts.MaxSize)
		if err != nil {
			return err
		}
		ack, err := newBuf(m, cfg.Mode, 4)
		if err != nil {
			return err
		}

		ws := make([]waiter, 0, window)
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			var sw vtime.Stopwatch
			for i := -warm; i < iters; i++ {
				if i == 0 {
					sw = vtime.StartStopwatch(m.Clock())
				}
				if me == 0 {
					// Drain the incast serially, round-robin across the
					// senders: the root is deliberately the bottleneck.
					for k := 0; k < window; k++ {
						for s := 1; s < p; s++ {
							if err := ep.recv(rbuf, size, s, tagData); err != nil {
								return err
							}
						}
					}
					for s := 1; s < p; s++ {
						if err := ep.send(ack, 4, s, tagAck); err != nil {
							return err
						}
					}
				} else {
					ws = ws[:0]
					for k := 0; k < window; k++ {
						w, err := ep.isend(sbuf, size, 0, tagData)
						if err != nil {
							return err
						}
						ws = append(ws, w)
					}
					if err := waitAll(ws); err != nil {
						return err
					}
					if err := ep.recv(ack, 4, 0, tagAck); err != nil {
						return err
					}
				}
			}
			// The root's own elapsed time is authoritative: it observed
			// every message and released every sender.
			if me == 0 {
				msgs := float64(window) * float64(iters) * float64(senders)
				secs := sw.Elapsed().Micros() / 1e6
				sink.add(Result{Size: size, MBps: msgs / secs})
			}
			if err := ep.barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
