package omb

import (
	"fmt"
	"math"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// Collective latency benchmarks. As in OMB, every rank times the
// operation, the per-rank averages are combined with an (untimed)
// reduction, and the mean across ranks is reported — the paper notes
// osu_bcast "uses MPI_Reduce as part of the latency calculation".

// collCase describes one collective benchmark.
type collCase struct {
	// sendTimes/recvTimes scale the buffer sizes: bytes = size * times,
	// with times == -1 meaning size * comm size.
	sendTimes, recvTimes int
	run                  func(ep endpoint, s, r msgBuf, size int) error
	// prep/check implement Opts.Validate: prep stamps the iteration's
	// pattern before the operation, check verifies the result after
	// it. Nil means the benchmark does not support validation.
	prep  func(ep endpoint, s, r msgBuf, iter, size int)
	check func(ep endpoint, s, r msgBuf, iter, size int) error
}

const collRoot = 0

func (e endpoint) collBcast(buf msgBuf, n int) error {
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Bcast(buf.raw()[:n], collRoot)
	}
	return e.m.CommWorld().Bcast(buf.obj(), n, core.BYTE, collRoot)
}

func (e endpoint) collReduce(s, r msgBuf, n int) error {
	if e.mode == ModeNative {
		var recv []byte
		if e.rank() == collRoot {
			recv = r.raw()[:n]
		}
		return e.m.Proc().CommWorld().Reduce(s.raw()[:n], recv, jvm.Byte, core.SUM, collRoot)
	}
	var recv any
	if e.rank() == collRoot {
		recv = r.obj()
	}
	return e.m.CommWorld().Reduce(s.obj(), recv, n, core.BYTE, core.SUM, collRoot)
}

func (e endpoint) collAllreduce(s, r msgBuf, n int) error {
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Allreduce(s.raw()[:n], r.raw()[:n], jvm.Byte, core.SUM)
	}
	return e.m.CommWorld().Allreduce(s.obj(), r.obj(), n, core.BYTE, core.SUM)
}

func (e endpoint) collGather(s, r msgBuf, n int) error {
	if e.mode == ModeNative {
		var recv []byte
		if e.rank() == collRoot {
			recv = r.raw()[:n*e.size()]
		}
		return e.m.Proc().CommWorld().Gather(s.raw()[:n], recv, collRoot)
	}
	var recv any
	if e.rank() == collRoot {
		recv = r.obj()
	}
	return e.m.CommWorld().Gather(s.obj(), n, recv, n, core.BYTE, collRoot)
}

func (e endpoint) collScatter(s, r msgBuf, n int) error {
	if e.mode == ModeNative {
		var send []byte
		if e.rank() == collRoot {
			send = s.raw()[:n*e.size()]
		}
		return e.m.Proc().CommWorld().Scatter(send, r.raw()[:n], collRoot)
	}
	var send any
	if e.rank() == collRoot {
		send = s.obj()
	}
	return e.m.CommWorld().Scatter(send, n, r.obj(), n, core.BYTE, collRoot)
}

func (e endpoint) collAllgather(s, r msgBuf, n int) error {
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Allgather(s.raw()[:n], r.raw()[:n*e.size()])
	}
	return e.m.CommWorld().Allgather(s.obj(), n, r.obj(), n, core.BYTE)
}

func (e endpoint) collAlltoall(s, r msgBuf, n int) error {
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Alltoall(s.raw()[:n*e.size()], r.raw()[:n*e.size()])
	}
	return e.m.CommWorld().Alltoall(s.obj(), n, r.obj(), n, core.BYTE)
}

func uniformVec(p, size int) (counts, displs []int) {
	counts = make([]int, p)
	displs = make([]int, p)
	for i := 0; i < p; i++ {
		counts[i] = size
		displs[i] = i * size
	}
	return
}

func (e endpoint) collGatherv(s, r msgBuf, n int) error {
	counts, displs := uniformVec(e.size(), n)
	if e.mode == ModeNative {
		var recv []byte
		if e.rank() == collRoot {
			recv = r.raw()[:n*e.size()]
		}
		return e.m.Proc().CommWorld().Gatherv(s.raw()[:n], recv, counts, displs, collRoot)
	}
	var recv any
	if e.rank() == collRoot {
		recv = r.obj()
	}
	return e.m.CommWorld().Gatherv(s.obj(), n, recv, counts, displs, core.BYTE, collRoot)
}

func (e endpoint) collScatterv(s, r msgBuf, n int) error {
	counts, displs := uniformVec(e.size(), n)
	if e.mode == ModeNative {
		var send []byte
		if e.rank() == collRoot {
			send = s.raw()[:n*e.size()]
		}
		return e.m.Proc().CommWorld().Scatterv(send, counts, displs, r.raw()[:n], collRoot)
	}
	var send any
	if e.rank() == collRoot {
		send = s.obj()
	}
	return e.m.CommWorld().Scatterv(send, counts, displs, r.obj(), n, core.BYTE, collRoot)
}

func (e endpoint) collAllgatherv(s, r msgBuf, n int) error {
	counts, displs := uniformVec(e.size(), n)
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Allgatherv(s.raw()[:n], r.raw()[:n*e.size()], counts, displs)
	}
	return e.m.CommWorld().Allgatherv(s.obj(), n, r.obj(), counts, displs, core.BYTE)
}

func (e endpoint) collAlltoallv(s, r msgBuf, n int) error {
	counts, displs := uniformVec(e.size(), n)
	if e.mode == ModeNative {
		return e.m.Proc().CommWorld().Alltoallv(s.raw()[:n*e.size()], counts, displs,
			r.raw()[:n*e.size()], counts, displs)
	}
	return e.m.CommWorld().Alltoallv(s.obj(), counts, displs, r.obj(), counts, displs, core.BYTE)
}

// Validation hooks shared by the rooted/vector collectives. The data
// pattern follows §VI-F: segment payloads are byte(seed+i), with the
// seed mixing the iteration and the contributing rank so misrouted or
// stale segments are detected, not just corrupted bytes. The uniform
// v-variants carry exactly the base operation's data, so they reuse
// these hooks.

// prepGather: every rank stamps its contribution with its own rank.
func prepGather(ep endpoint, s, _ msgBuf, iter, n int) {
	s.populateAt(iter+ep.rank(), 0, n)
}

// checkGather: the root holds p segments, segment k from rank k.
func checkGather(ep endpoint, _, r msgBuf, iter, n int) error {
	if ep.rank() != collRoot {
		return nil
	}
	for k := 0; k < ep.size(); k++ {
		if err := r.verifyAt(iter+k, k*n, n); err != nil {
			return fmt.Errorf("gather segment from rank %d: %w", k, err)
		}
	}
	return nil
}

// prepScatter: the root stamps segment k with destination rank k.
func prepScatter(ep endpoint, s, _ msgBuf, iter, n int) {
	if ep.rank() != collRoot {
		return
	}
	for k := 0; k < ep.size(); k++ {
		s.populateAt(iter+k, k*n, n)
	}
}

// checkScatter: every rank received the segment stamped for it.
func checkScatter(ep endpoint, _, r msgBuf, iter, n int) error {
	return r.verifyAt(iter+ep.rank(), 0, n)
}

// checkAllgather: every rank holds every contribution.
func checkAllgather(ep endpoint, _, r msgBuf, iter, n int) error {
	for k := 0; k < ep.size(); k++ {
		if err := r.verifyAt(iter+k, k*n, n); err != nil {
			return fmt.Errorf("allgather segment from rank %d: %w", k, err)
		}
	}
	return nil
}

// prepAlltoall: segment d of the send buffer is stamped with
// (source, destination), so every (src, dst) pair is distinct.
func prepAlltoall(ep endpoint, s, _ msgBuf, iter, n int) {
	for d := 0; d < ep.size(); d++ {
		s.populateAt(iter+ep.rank()+2*d, d*n, n)
	}
}

// checkAlltoall: segment k arrived from rank k, stamped for us.
func checkAlltoall(ep endpoint, _, r msgBuf, iter, n int) error {
	for k := 0; k < ep.size(); k++ {
		if err := r.verifyAt(iter+k+2*ep.rank(), k*n, n); err != nil {
			return fmt.Errorf("alltoall segment from rank %d: %w", k, err)
		}
	}
	return nil
}

// prepReduce / checkReduce: identical contributions, so the SUM at the
// root is the pattern scaled by the communicator size.
func prepReduce(ep endpoint, s, _ msgBuf, iter, n int) {
	s.populate(iter, n)
}

func checkReduce(ep endpoint, _, r msgBuf, iter, n int) error {
	if ep.rank() != collRoot {
		return nil
	}
	return r.verifySum(iter, n, ep.size())
}

// collCases maps benchmark names to shapes and bodies.
func collCases() map[string]collCase {
	return map[string]collCase{
		"bcast": {sendTimes: 1, recvTimes: 0,
			run: func(ep endpoint, s, _ msgBuf, n int) error {
				return ep.collBcast(s, n)
			},
			prep: func(ep endpoint, s, _ msgBuf, iter, n int) {
				if ep.rank() == collRoot {
					s.populate(iter, n)
				}
			},
			check: func(ep endpoint, s, _ msgBuf, iter, n int) error {
				return s.verify(iter, n)
			}},
		"reduce": {sendTimes: 1, recvTimes: 1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collReduce(s, r, n)
			},
			prep: prepReduce, check: checkReduce},
		"allreduce": {sendTimes: 1, recvTimes: 1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collAllreduce(s, r, n)
			},
			// Every rank contributes the same pattern, so the SUM
			// result is the pattern scaled by the communicator size
			// (byte arithmetic wraps identically on both sides).
			prep: func(ep endpoint, s, _ msgBuf, iter, n int) {
				s.populate(iter, n)
			},
			check: func(ep endpoint, _, r msgBuf, iter, n int) error {
				return r.verifySum(iter, n, ep.size())
			}},
		"gather": {sendTimes: 1, recvTimes: -1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collGather(s, r, n)
			},
			prep: prepGather, check: checkGather},
		"scatter": {sendTimes: -1, recvTimes: 1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collScatter(s, r, n)
			},
			prep: prepScatter, check: checkScatter},
		"allgather": {sendTimes: 1, recvTimes: -1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collAllgather(s, r, n)
			},
			prep: prepGather, check: checkAllgather},
		"alltoall": {sendTimes: -1, recvTimes: -1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collAlltoall(s, r, n)
			},
			prep: prepAlltoall, check: checkAlltoall},
		"gatherv": {sendTimes: 1, recvTimes: -1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collGatherv(s, r, n)
			},
			prep: prepGather, check: checkGather},
		"scatterv": {sendTimes: -1, recvTimes: 1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collScatterv(s, r, n)
			},
			prep: prepScatter, check: checkScatter},
		"allgatherv": {sendTimes: 1, recvTimes: -1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collAllgatherv(s, r, n)
			},
			prep: prepGather, check: checkAllgather},
		"alltoallv": {sendTimes: -1, recvTimes: -1,
			run: func(ep endpoint, s, r msgBuf, n int) error {
				return ep.collAlltoallv(s, r, n)
			},
			prep: prepAlltoall, check: checkAlltoall},
	}
}

// sumScalarUs combines per-rank latencies with an untimed reduction
// and returns the across-rank average on rank 0.
func (e endpoint) sumScalarUs(v float64, scratchSend, scratchRecv jvm.Array) (float64, error) {
	if e.mode == ModeNative {
		send := make([]byte, 8)
		recv := make([]byte, 8)
		putF64(send, v)
		var rbuf []byte
		if e.rank() == 0 {
			rbuf = recv
		}
		if err := e.m.Proc().CommWorld().Reduce(send, rbuf, jvm.Double, core.SUM, 0); err != nil {
			return 0, err
		}
		return getF64(recv) / float64(e.size()), nil
	}
	scratchSend.SetFloat(0, v)
	var recv any
	if e.rank() == 0 {
		recv = scratchRecv
	}
	if err := e.m.CommWorld().Reduce(scratchSend, recv, 1, core.DOUBLE, core.SUM, 0); err != nil {
		return 0, err
	}
	if e.rank() != 0 {
		return 0, nil
	}
	return scratchRecv.Float(0) / float64(e.size()), nil
}

func putF64(b []byte, v float64) {
	bits := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(bits >> (8 * i))
	}
}

func getF64(b []byte) float64 {
	var bits uint64
	for i := 7; i >= 0; i-- {
		bits = bits<<8 | uint64(b[i])
	}
	return math.Float64frombits(bits)
}

// CollectiveLatency runs the named collective benchmark (osu_<name>).
func CollectiveLatency(name string, cfg Config) ([]Result, error) {
	cc, ok := collCases()[name]
	if !ok {
		return nil, fmt.Errorf("omb: unknown collective benchmark %q", name)
	}
	if cfg.Opts.Validate && cc.prep == nil {
		return nil, fmt.Errorf("omb: %s does not support -validate", name)
	}
	sizeJVM(&cfg.Core, cfg.Opts.MaxSize*maxTimes(cc, cfg))
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		p := ep.size()
		scale := func(times int) int {
			if times < 0 {
				return p
			}
			return times
		}
		var sbuf, rbuf msgBuf
		var err error
		if n := cfg.Opts.MaxSize * scale(cc.sendTimes); n > 0 {
			if sbuf, err = newBuf(m, cfg.Mode, n); err != nil {
				return err
			}
		}
		if n := cfg.Opts.MaxSize * scale(cc.recvTimes); n > 0 {
			if rbuf, err = newBuf(m, cfg.Mode, n); err != nil {
				return err
			}
		}
		var ss, sr jvm.Array
		if cfg.Mode != ModeNative {
			ss = m.JVM().MustArray(jvm.Double, 1)
			sr = m.JVM().MustArray(jvm.Double, 1)
		}
		for _, size := range cfg.Opts.Sizes() {
			iters, warm := cfg.Opts.itersFor(size)
			var total vtime.Duration
			for i := -warm; i < iters; i++ {
				if cfg.Opts.Validate {
					cc.prep(ep, sbuf, rbuf, i, size)
				}
				sw := vtime.StartStopwatch(m.Clock())
				if err := cc.run(ep, sbuf, rbuf, size); err != nil {
					return err
				}
				if i >= 0 {
					total += sw.Elapsed()
				}
				if cfg.Opts.Validate {
					if err := cc.check(ep, sbuf, rbuf, i, size); err != nil {
						return err
					}
				}
			}
			avg, err := ep.sumScalarUs(avgLatencyUs(total, iters), ss, sr)
			if err != nil {
				return err
			}
			if ep.rank() == 0 {
				sink.add(Result{Size: size, LatencyUs: avg})
			}
			if err := ep.barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}

func maxTimes(cc collCase, cfg Config) int {
	p := cfg.Core.Nodes * cfg.Core.PPN
	if p == 0 {
		p = 2
	}
	m := 1
	if cc.sendTimes < 0 || cc.recvTimes < 0 {
		m = p
	}
	return m
}

// BarrierLatency runs osu_barrier (a single row; size is reported 0).
func BarrierLatency(cfg Config) ([]Result, error) {
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		var ss, sr jvm.Array
		if cfg.Mode != ModeNative {
			ss = m.JVM().MustArray(jvm.Double, 1)
			sr = m.JVM().MustArray(jvm.Double, 1)
		}
		iters, warm := cfg.Opts.Iters, cfg.Opts.Warmup
		var total vtime.Duration
		for i := -warm; i < iters; i++ {
			sw := vtime.StartStopwatch(m.Clock())
			if err := ep.barrier(); err != nil {
				return err
			}
			if i >= 0 {
				total += sw.Elapsed()
			}
		}
		avg, err := ep.sumScalarUs(avgLatencyUs(total, iters), ss, sr)
		if err != nil {
			return err
		}
		if ep.rank() == 0 {
			sink.add(Result{Size: 0, LatencyUs: avg})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}
