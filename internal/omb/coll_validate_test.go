package omb

import (
	"testing"
)

// TestCollectiveValidation exercises Opts.Validate (§VI-F) for every
// collective that supports it, in every payload mode, on a 2x2 job —
// so rooted segments, all-to-all routing, and the reduction sum are
// each verified against the stamped patterns.
func TestCollectiveValidation(t *testing.T) {
	names := []string{
		"bcast", "reduce", "allreduce",
		"gather", "scatter", "allgather", "alltoall",
		"gatherv", "scatterv", "allgatherv", "alltoallv",
	}
	o := Options{MinSize: 1, MaxSize: 64, Iters: 3, Warmup: 1,
		LargeThreshold: 64 << 10, LargeIters: 2, Validate: true}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			for _, mode := range []Mode{ModeBuffer, ModeArrays, ModeNative} {
				rows, err := CollectiveLatency(name, mv2(2, 2, mode, o))
				if err != nil {
					t.Fatalf("%s %v: %v", name, mode, err)
				}
				if len(rows) != 7 {
					t.Fatalf("%s %v: %d rows", name, mode, len(rows))
				}
			}
		})
	}
}

// TestVerifyAtDetectsCorruption checks the segment primitives the
// collective hooks are built from: a stamped region verifies, a
// flipped byte fails, and an unstamped region does not pass.
func TestVerifyAtDetectsCorruption(t *testing.T) {
	b := nativeBuf{make([]byte, 64)}
	b.populateAt(5, 16, 32)
	if err := b.verifyAt(5, 16, 32); err != nil {
		t.Fatalf("fresh pattern did not verify: %v", err)
	}
	b.b[20] ^= 0xFF
	if err := b.verifyAt(5, 16, 32); err == nil {
		t.Fatal("corrupted segment verified")
	}
	if err := b.verifyAt(5, 0, 8); err == nil {
		t.Fatal("unpopulated segment verified")
	}
}

// TestValidateRejectsUnsupported pins the CollectiveLatency guard: a
// benchmark without hooks must refuse -validate rather than silently
// skip it. Barrier has no payload, so it can never grow hooks.
func TestValidateRejectsUnsupported(t *testing.T) {
	for name, cc := range collCases() {
		if cc.prep == nil {
			o := smallOpts()
			o.Validate = true
			if _, err := CollectiveLatency(name, mv2(1, 2, ModeBuffer, o)); err == nil {
				t.Fatalf("%s accepted -validate without hooks", name)
			}
		}
	}
}
