package omb

import (
	"bytes"
	"strings"
	"testing"

	"mv2j/internal/faults"
	"mv2j/internal/metrics"
	"mv2j/internal/trace"
)

func ftOpts() Options {
	o := chaosOpts()
	o.MaxSize = 1024
	o.FT = true
	return o
}

// ftConfig builds a 3-rank MVAPICH2-J job with the FT driver engaged
// and the given fault spec attached. Three ranks is the widest shape
// whose recovery artifacts are byte-reproducible (see the determinism
// notes in ftcoll.go / DESIGN.md), so it is the acceptance scenario.
func ftConfig(t *testing.T, ppn int, mode Mode, spec string) Config {
	t.Helper()
	cfg := mv2(1, ppn, mode, ftOpts())
	if spec != "" {
		plan, err := faults.ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		cfg.Core.Faults = plan
	}
	return cfg
}

// The acceptance scenario: an OMB-J allreduce sweep with a rank crash
// injected mid-sweep completes on the shrunken communicator, with
// every row present and elementwise validation (which scales with the
// live membership) passing throughout.
func TestFTAllreduceSurvivesCrash(t *testing.T) {
	cfg := ftConfig(t, 3, ModeBuffer, "crash=2@100us")
	rec := trace.New(0)
	reg := metrics.NewRegistry()
	cfg.Core.Trace = rec
	cfg.Core.Metrics = reg

	rows, err := RunBenchmark("allreduce", cfg)
	if err != nil {
		t.Fatalf("FT allreduce with crash: %v", err)
	}
	if want := len(cfg.Opts.Sizes()); len(rows) != want {
		t.Fatalf("got %d result rows, want %d (one per size)", len(rows), want)
	}
	for _, r := range rows {
		if r.LatencyUs <= 0 {
			t.Fatalf("size %d reported non-positive latency %v", r.Size, r.LatencyUs)
		}
	}

	var recoveries, detects int
	for _, ev := range rec.Events() {
		switch {
		case ev.Kind == trace.KindRecovery && strings.HasPrefix(ev.Detail, "rollback"):
			recoveries++
			if ev.End <= ev.Start {
				t.Fatalf("recovery span %+v has non-positive duration", ev)
			}
		case ev.Kind == trace.KindDetect:
			detects++
		}
	}
	if recoveries == 0 || detects == 0 {
		t.Fatalf("trace missing the recovery story: %d rollback spans, %d detect events", recoveries, detects)
	}

	// The "ft" metrics family carries the same story in counters.
	snap := reg.Snapshot()
	want := map[string]bool{"crashes": false, "recoveries": false, "shrinks": false, "revokes": false}
	for _, row := range snap.Counters {
		if row.Kind == "ft" && row.Value > 0 {
			if _, ok := want[row.Label]; ok {
				want[row.Label] = true
			}
		}
	}
	for label, seen := range want {
		if !seen {
			t.Errorf("metrics family ft/%s never incremented", label)
		}
	}

	// The recovery phase shows up in the rollup breakdown.
	var recoveryPs int64
	for _, ph := range trace.PhasesByRank(rec.Events()) {
		recoveryPs += int64(ph.Recovery)
	}
	if recoveryPs == 0 {
		t.Error("phase rollup attributes zero time to recovery")
	}
}

// Same scenario, same spec, FT off: the sweep must abort exactly as
// any crash does today.
func TestFTAllreduceCrashWithoutFTAborts(t *testing.T) {
	cfg := ftConfig(t, 3, ModeBuffer, "crash=2@100us")
	cfg.Opts.FT = false
	_, err := RunBenchmark("allreduce", cfg)
	if err == nil {
		t.Fatal("crash without -ft completed")
	}
	if !strings.Contains(err.Error(), "crashed") {
		t.Fatalf("abort reason %q does not name the crash", err)
	}
}

// The complete recovered run — trace with virtual timestamps, the full
// metrics registry serialization, and the result rows — is
// byte-identical across same-seed runs.
func TestFTRecoveryArtifactsDeterministic(t *testing.T) {
	run := func() ([]trace.Event, []byte, []Result) {
		cfg := ftConfig(t, 3, ModeBuffer, "crash=2@100us")
		rec := trace.New(0)
		reg := metrics.NewRegistry()
		cfg.Core.Trace = rec
		cfg.Core.Metrics = reg
		rows, err := RunBenchmark("allreduce", cfg)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return rec.Events(), buf.Bytes(), rows
	}
	ev1, met1, rows1 := run()
	ev2, met2, rows2 := run()
	if len(ev1) != len(ev2) {
		t.Fatalf("trace length differs across runs: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("trace diverges at event %d: %+v vs %+v", i, ev1[i], ev2[i])
		}
	}
	if !bytes.Equal(met1, met2) {
		t.Fatal("metrics serialization differs across identical runs")
	}
	if len(rows1) != len(rows2) {
		t.Fatalf("row counts differ: %d vs %d", len(rows1), len(rows2))
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("row %d differs: %+v vs %+v", i, rows1[i], rows2[i])
		}
	}
}

// Chaos soak: a crash layered on 5% packet loss. Timing is not
// compared; completion with full validation is the assertion.
func TestFTChaosCrashUnderLoss(t *testing.T) {
	for _, name := range []string{"allreduce", "bcast", "reduce"} {
		t.Run(name, func(t *testing.T) {
			cfg := ftConfig(t, 4, ModeBuffer, "seed=7,drop=0.05,crash=2@120us")
			reg := metrics.NewRegistry()
			cfg.Core.Metrics = reg
			rows, err := RunBenchmark(name, cfg)
			if err != nil {
				t.Fatalf("FT %s under loss+crash: %v", name, err)
			}
			if want := len(cfg.Opts.Sizes()); len(rows) != want {
				t.Fatalf("got %d rows, want %d", len(rows), want)
			}
			var crashes int64
			for _, row := range reg.Snapshot().Counters {
				if row.Kind == "ft" && row.Label == "crashes" {
					crashes += row.Value
				}
			}
			if crashes != 1 {
				t.Fatalf("ft/crashes = %d, want 1", crashes)
			}
		})
	}
}

// A failure-free FT sweep behaves like the plain driver: full rows, no
// recoveries recorded.
func TestFTNoFailureCleanSweep(t *testing.T) {
	cfg := ftConfig(t, 3, ModeArrays, "")
	rec := trace.New(0)
	cfg.Core.Trace = rec
	rows, err := RunBenchmark("allreduce", cfg)
	if err != nil {
		t.Fatalf("FT allreduce without faults: %v", err)
	}
	if want := len(cfg.Opts.Sizes()); len(rows) != want {
		t.Fatalf("got %d rows, want %d", len(rows), want)
	}
	// Epoch-closing agreements do appear (they are the exit barrier),
	// but nothing may roll back or shrink.
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindRecovery && !strings.HasPrefix(ev.Detail, "agree") {
			t.Fatalf("failure-free run recorded recovery event %+v", ev)
		}
	}
}

// The FT driver is explicit about what it does not cover.
func TestFTDriverRejections(t *testing.T) {
	if _, err := FTCollectiveLatency("alltoall", ftConfig(t, 3, ModeBuffer, "")); err == nil {
		t.Error("alltoall accepted by the FT driver")
	}
	if _, err := FTCollectiveLatency("allreduce", ftConfig(t, 3, ModeNative, "")); err == nil {
		t.Error("native mode accepted by the FT driver")
	}
}
