package omb

import (
	"fmt"

	"mv2j/internal/core"
	"mv2j/internal/vtime"
)

// KVService is the messaging-service workload: a simulated population
// of clients (millions, when asked) multiplexed onto the client half
// of the job, firing small request/reply round trips at the server
// half under MPI_THREAD_MULTIPLE. The paper's motivating deployment —
// a Java messaging tier fronting an MPI-accelerated backend — looks
// like this: far more logical clients than ranks, tag-partitioned
// reply channels, and a hot-key skew that turns one server into an
// incast victim.
//
// Topology: ranks [0, np/2) serve, ranks [np/2, np) host clients.
// Every rank runs T simulated threads. Client c lives on lane
// c mod (clientRanks*T) and talks to server thread c mod T; hot
// clients (c&3 == 0) all target server rank 0, the rest spread
// c mod S — so server 0 absorbs ~25%+ of the load and, with
// EagerCredits set and a small UnexpectedQueueBytes, demotes eager
// traffic to rendezvous under the pile-up (HostStats.Flow
// .DemotedSends counts the demotions).
//
// Requests and replies are fixed 32-byte eager messages. Byte 0
// carries the kind (0 = request, 1 = FIN), bytes 1..4 the client's
// private reply tag, built and parsed through the mode's
// element-access costs. Each client lane pipelines a window of
// request/reply pairs in flight; servers keep one receive posted per
// client rank and consume a fair round per cycle (burst arrivals past
// the posted slot queue unexpected); termination is one FIN per
// (lane, server thread) edge.
//
// The reported value is the service's aggregate request rate
// (requests/second, in the MBps field; Size is the request size).
func KVService(cfg Config) ([]Result, error) {
	const reqBytes = 32
	window := cfg.Opts.Window
	if window <= 0 {
		window = 64
	}
	T := cfg.Opts.mtThreads()
	clients := cfg.Opts.Clients
	if clients <= 0 {
		clients = 2048
	}
	iters := cfg.Opts.Iters
	if iters <= 0 {
		iters = 1
	}
	// Heap budget: client lanes hold 2*window slots per thread, server
	// threads one posted slot per client rank plus a reply slot.
	ranks := cfg.Core.Nodes * cfg.Core.PPN
	sizeJVM(&cfg.Core, (4*window+2*(ranks+2))*reqBytes*T)
	sink := &resultSink{}
	err := core.Run(cfg.Core, func(m *core.MPI) error {
		ep := endpoint{m, cfg.Mode}
		np := ep.size()
		if np < 2 {
			return fmt.Errorf("omb: kvservice needs at least 2 ranks, got %d", np)
		}
		S := np / 2 // server ranks [0, S)
		C := np - S // client ranks [S, np)
		L := C * T  // client lanes
		me := ep.rank()
		serving := me < S
		if got := m.InitThread(core.ThreadMultiple); got != core.ThreadMultiple && T > 1 {
			return fmt.Errorf("omb: kvservice needs MPI_THREAD_MULTIPLE, library granted %v", got)
		}

		// serverFor routes a client id: hot keys pile onto server 0.
		serverFor := func(c int) int {
			if c&3 == 0 {
				return 0
			}
			return c % S
		}

		// Per-thread buffer lanes: a window of request and reply slots
		// (headers differ per request, so in-flight sends cannot share
		// one buffer), plus a FIN slot.
		type lane struct {
			req, rep []msgBuf
			fin      msgBuf
		}
		lanes := make([]lane, T)
		for tid := 0; tid < T; tid++ {
			ln := lane{req: make([]msgBuf, window), rep: make([]msgBuf, window)}
			for k := 0; k < window; k++ {
				var err error
				if ln.req[k], err = newBuf(m, cfg.Mode, reqBytes); err != nil {
					return err
				}
				if ln.rep[k], err = newBuf(m, cfg.Mode, reqBytes); err != nil {
					return err
				}
			}
			var err error
			if ln.fin, err = newBuf(m, cfg.Mode, reqBytes); err != nil {
				return err
			}
			ln.fin.setByteAt(0, 1)
			lanes[tid] = ln
		}

		// Per-server-thread receive slots: one posted irecv per client
		// rank, plus an outbound reply slot.
		type srvLane struct {
			in  []msgBuf
			out msgBuf
		}
		var srv []srvLane
		if serving {
			srv = make([]srvLane, T)
			for tid := 0; tid < T; tid++ {
				sl := srvLane{in: make([]msgBuf, C)}
				for j := 0; j < C; j++ {
					var err error
					if sl.in[j], err = newBuf(m, cfg.Mode, reqBytes); err != nil {
						return err
					}
				}
				var err error
				if sl.out, err = newBuf(m, cfg.Mode, reqBytes); err != nil {
					return err
				}
				srv[tid] = sl
			}
		}

		// The server keeps one receive posted per live client rank and
		// answers whichever request lands first (MPI_Waitany). That
		// discipline is load-bearing twice over: a parked sender's
		// in-flight requests always find a posted receive, so credit
		// grants keep flowing and the credit wait-for graph stays
		// acyclic (a serial per-rank drain deadlocks — server A blocks
		// on client j while j is credit-parked toward server B, round
		// the cycle; a fair-round waitAll deadlocks too, because replies
		// only go out after the slowest rank of the round); and a burst
		// beyond the one posted slot per rank still lands in the
		// unexpected queue, which is where the hot-key incast piles up
		// and pushes server 0 over the demote watermark.
		serve := func(tid int) error {
			sl := srv[tid]
			fins := make([]int, C)
			ws := make([]waiter, C)
			for j := 0; j < C; j++ {
				w, err := ep.irecv(sl.in[j], reqBytes, S+j, kvTagReq+tid)
				if err != nil {
					return err
				}
				ws[j] = w
			}
			for active := C; active > 0; {
				j, err := waitAny(ws)
				if err != nil {
					return err
				}
				ws[j] = nil
				buf := sl.in[j]
				if buf.byteAt(0) == 1 {
					if fins[j]++; fins[j] == T {
						active--
						continue
					}
				} else {
					reply := int(buf.byteAt(1)) | int(buf.byteAt(2))<<8 |
						int(buf.byteAt(3))<<16 | int(buf.byteAt(4))<<24
					sl.out.setByteAt(0, 0)
					if err := ep.send(sl.out, reqBytes, S+j, reply); err != nil {
						return err
					}
				}
				w, err := ep.irecv(sl.in[j], reqBytes, S+j, kvTagReq+tid)
				if err != nil {
					return err
				}
				ws[j] = w
			}
			return nil
		}

		drive := func(tid int) error {
			myLane := (me-S)*T + tid
			ln := lanes[tid]
			ws := make([]waiter, 0, 2*window)
			for pass := 0; pass < iters; pass++ {
				k := 0
				flush := func() error {
					err := waitAll(ws)
					ws = ws[:0]
					k = 0
					return err
				}
				for c := myLane; c < clients; c += L {
					req := ln.req[k]
					tag := kvTagReply + c
					req.setByteAt(0, 0)
					req.setByteAt(1, byte(tag))
					req.setByteAt(2, byte(tag>>8))
					req.setByteAt(3, byte(tag>>16))
					req.setByteAt(4, byte(tag>>24))
					w, err := ep.irecv(ln.rep[k], reqBytes, serverFor(c), tag)
					if err != nil {
						return err
					}
					ws = append(ws, w)
					if w, err = ep.isend(req, reqBytes, serverFor(c), kvTagReq+c%T); err != nil {
						return err
					}
					ws = append(ws, w)
					if k++; k == window {
						if err := flush(); err != nil {
							return err
						}
					}
				}
				if err := flush(); err != nil {
					return err
				}
			}
			for s := 0; s < S; s++ {
				for stid := 0; stid < T; stid++ {
					if err := ep.send(ln.fin, reqBytes, s, kvTagReq+stid); err != nil {
						return err
					}
				}
			}
			return nil
		}

		sw := vtime.StartStopwatch(m.Clock())
		err := m.RunThreads(T, func(tid int) error {
			if serving {
				return serve(tid)
			}
			return drive(tid)
		})
		if err != nil {
			return err
		}
		// Every rank contributes its joined elapsed time to the MAX:
		// the service rate is set by the slowest participant.
		maxUs, err := maxOverSenders(m, sw.Elapsed().Micros(), true, np)
		if err != nil {
			return err
		}
		if me == 0 {
			reqs := float64(clients) * float64(iters)
			sink.add(Result{Size: reqBytes, MBps: reqs / (maxUs / 1e6)})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sink.sorted(), nil
}

// kvservice tag plan: request lanes are partitioned per server
// thread; reply tags are private per client id, above the request
// band.
const (
	kvTagReq   = 64
	kvTagReply = 1024
)
