// Package omb is OMB-J: the Java port of the OSU Micro-Benchmarks the
// paper builds to evaluate Java MPI libraries (§V). It implements the
// point-to-point benchmarks (osu_latency, osu_bw, osu_bibw), the
// blocking collective latency benchmarks (osu_bcast, osu_allreduce,
// osu_reduce, osu_allgather, osu_alltoall, osu_gather, osu_scatter,
// osu_barrier), and vectored collective variants — each runnable over
// direct ByteBuffers, Java arrays, or the bare native library (the
// baseline of the paper's Fig. 11), with optional data validation
// (the experiment of §VI-F / Fig. 18).
package omb

import (
	"fmt"
	"sort"
	"sync"

	"mv2j/internal/core"
	"mv2j/internal/jvm"
	"mv2j/internal/vtime"
)

// Mode selects which API carries the payload.
type Mode int

const (
	// ModeBuffer uses direct NIO ByteBuffers (zero-copy JNI path).
	ModeBuffer Mode = iota
	// ModeArrays uses Java byte arrays (buffering-layer or
	// Get/ReleaseArrayElements path, depending on the flavor).
	ModeArrays
	// ModeNative bypasses the Java layer entirely and drives the
	// native library — the baseline for the Java-overhead figure.
	ModeNative
)

func (m Mode) String() string {
	switch m {
	case ModeBuffer:
		return "buffer"
	case ModeArrays:
		return "arrays"
	case ModeNative:
		return "native"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Options controls a benchmark sweep.
type Options struct {
	// MinSize/MaxSize bound the power-of-two message sweep, in bytes.
	MinSize, MaxSize int
	// Iters/Warmup are the timed and untimed repetitions per size.
	// Virtual time is deterministic, so far fewer iterations than the
	// C OMB defaults are needed for stable numbers.
	Iters, Warmup int
	// LargeThreshold halves... reduces iterations for sizes above it
	// (OMB's large-message behaviour), keeping host runtime bounded.
	LargeThreshold int
	LargeIters     int
	// Validate populates buffers at the sender and verifies them at
	// the receiver inside the timed region (§VI-F).
	Validate bool
	// Window is the number of in-flight messages in the bandwidth
	// benchmarks (OMB default 64).
	Window int
	// FT runs the collective benchmarks under the fault-tolerant epoch
	// driver (see ftcoll.go): rank crashes shrink the communicator and
	// the sweep restarts from the last agreed iteration boundary
	// instead of aborting. Forces core.Config.FT.
	FT bool
	// Threads is the simulated application threads per rank in the
	// multithreaded benchmarks (mr-mt, kvservice); 0 selects 4. The
	// job must grant MPI_THREAD_MULTIPLE for values above 1.
	Threads int
	// Clients is the total simulated client population of the
	// kvservice benchmark, sharded across (client rank x thread)
	// lanes; 0 selects 2048.
	Clients int
}

// DefaultOptions mirrors the OMB defaults, scaled for simulation.
func DefaultOptions() Options {
	return Options{
		MinSize:        1,
		MaxSize:        4 << 20,
		Iters:          50,
		Warmup:         5,
		LargeThreshold: 64 << 10,
		LargeIters:     10,
		Window:         64,
	}
}

// itersFor applies the large-message iteration reduction.
func (o Options) itersFor(size int) (iters, warmup int) {
	if size > o.LargeThreshold && o.LargeIters > 0 {
		w := o.Warmup
		if w > 2 {
			w = 2
		}
		return o.LargeIters, w
	}
	return o.Iters, o.Warmup
}

// Sizes returns the power-of-two sweep [MinSize, MaxSize].
func (o Options) Sizes() []int {
	var out []int
	lo := o.MinSize
	if lo < 1 {
		lo = 1
	}
	for s := lo; s <= o.MaxSize; s *= 2 {
		out = append(out, s)
	}
	return out
}

// Config is a full benchmark configuration.
type Config struct {
	// Core carries topology, library profile, bindings flavor, and
	// JVM/JNI cost models.
	Core core.Config
	Mode Mode
	Opts Options
}

// Result is one row of benchmark output.
type Result struct {
	// Size is the message size in bytes.
	Size int
	// LatencyUs is the average latency in microseconds (latency-class
	// benchmarks).
	LatencyUs float64
	// MBps is the bandwidth in MB/s (bandwidth-class benchmarks).
	MBps float64
}

// resultSink collects rows from rank goroutines.
type resultSink struct {
	mu   sync.Mutex
	rows []Result
}

func (s *resultSink) add(r Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rows = append(s.rows, r)
}

func (s *resultSink) sorted() []Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Result, len(s.rows))
	copy(out, s.rows)
	sort.Slice(out, func(i, j int) bool { return out[i].Size < out[j].Size })
	return out
}

// sizeJVM returns heap/arena sizes ample for the sweep. The fixed
// floor shrinks as the job widens: at np=1024 a uniform 16 MiB heap +
// 16 MiB arena per rank would mean 32 GiB of zeroed backing slices
// per world, and re-zeroing dirty spans at that volume dominates the
// whole harness. Wide jobs instead split a fixed per-world budget —
// exactly how real Java HPC deployments shrink -Xmx as ppn grows.
func sizeJVM(cfg *core.Config, maxSize int) {
	floor := 16 << 20
	if np := cfg.Nodes * cfg.PPN; np > 0 {
		if b := (512 << 20) / np; b < floor {
			floor = b
		}
		if floor < 512<<10 {
			floor = 512 << 10
		}
	}
	need := 8*maxSize + floor
	if cfg.HeapSize < need {
		cfg.HeapSize = need
	}
	if cfg.ArenaSize < need {
		cfg.ArenaSize = need
	}
}

// msgBuf abstracts the payload container so one benchmark body serves
// buffers, arrays, and raw native memory.
type msgBuf interface {
	// obj returns the value handed to the bindings (nil in native mode).
	obj() any
	// raw returns the native view (native mode only).
	raw() []byte
	// populate writes a per-iteration pattern elementwise, charging
	// the element-access costs — the §VI-F sender-side work.
	populate(iter, n int)
	// verify checks the pattern elementwise, charging read costs.
	verify(iter, n int) error
	// verifySum checks the pattern summed from `factor` identical
	// contributions (byte arithmetic wraps) — reduction validation.
	verifySum(iter, n, factor int) error
	// populateAt writes the pattern byte(seed+i) into the n elements
	// starting at off — a segment of a rooted/vector collective buffer.
	populateAt(seed, off, n int)
	// verifyAt checks the pattern byte(seed+i) over [off, off+n).
	verifyAt(seed, off, n int) error
	// byteAt/setByteAt access one element as a byte, charging the
	// element-access costs — protocol headers (kvservice) are built
	// and parsed through these.
	byteAt(i int) byte
	setByteAt(i int, v byte)
}

type arrayBuf struct{ arr jvm.Array }

func (b arrayBuf) obj() any             { return b.arr }
func (b arrayBuf) raw() []byte          { return nil }
func (b arrayBuf) populate(iter, n int) { b.populateAt(iter, 0, n) }
func (b arrayBuf) verify(iter, n int) error {
	return b.verifyAt(iter, 0, n)
}
func (b arrayBuf) populateAt(seed, off, n int) {
	for i := 0; i < n; i++ {
		b.arr.SetInt(off+i, int64(byte(seed+i)))
	}
}
func (b arrayBuf) verifyAt(seed, off, n int) error {
	for i := 0; i < n; i++ {
		if got := byte(b.arr.Int(off + i)); got != byte(seed+i) {
			return fmt.Errorf("omb: validation failed at %d: %#x != %#x", off+i, got, byte(seed+i))
		}
	}
	return nil
}
func (b arrayBuf) verifySum(iter, n, factor int) error {
	for i := 0; i < n; i++ {
		if got, want := byte(b.arr.Int(i)), byte(factor*(iter+i)); got != want {
			return fmt.Errorf("omb: reduction validation failed at %d: %#x != %#x", i, got, want)
		}
	}
	return nil
}
func (b arrayBuf) byteAt(i int) byte       { return byte(b.arr.Int(i)) }
func (b arrayBuf) setByteAt(i int, v byte) { b.arr.SetInt(i, int64(v)) }

type directBuf struct{ bb *jvm.ByteBuffer }

func (b directBuf) obj() any             { return b.bb }
func (b directBuf) raw() []byte          { return nil }
func (b directBuf) populate(iter, n int) { b.populateAt(iter, 0, n) }
func (b directBuf) verify(iter, n int) error {
	return b.verifyAt(iter, 0, n)
}
func (b directBuf) populateAt(seed, off, n int) {
	for i := 0; i < n; i++ {
		b.bb.PutByteAt(off+i, byte(seed+i))
	}
}
func (b directBuf) verifyAt(seed, off, n int) error {
	for i := 0; i < n; i++ {
		if got := b.bb.ByteAt(off + i); got != byte(seed+i) {
			return fmt.Errorf("omb: validation failed at %d: %#x != %#x", off+i, got, byte(seed+i))
		}
	}
	return nil
}
func (b directBuf) verifySum(iter, n, factor int) error {
	for i := 0; i < n; i++ {
		if got, want := b.bb.ByteAt(i), byte(factor*(iter+i)); got != want {
			return fmt.Errorf("omb: reduction validation failed at %d: %#x != %#x", i, got, want)
		}
	}
	return nil
}
func (b directBuf) byteAt(i int) byte       { return b.bb.ByteAt(i) }
func (b directBuf) setByteAt(i int, v byte) { b.bb.PutByteAt(i, v) }

type nativeBuf struct{ b []byte }

func (b nativeBuf) obj() any             { return nil }
func (b nativeBuf) raw() []byte          { return b.b }
func (b nativeBuf) populate(iter, n int) { b.populateAt(iter, 0, n) }
func (b nativeBuf) verify(iter, n int) error {
	return b.verifyAt(iter, 0, n)
}
func (b nativeBuf) populateAt(seed, off, n int) {
	for i := 0; i < n; i++ {
		b.b[off+i] = byte(seed + i)
	}
}
func (b nativeBuf) verifyAt(seed, off, n int) error {
	for i := 0; i < n; i++ {
		if b.b[off+i] != byte(seed+i) {
			return fmt.Errorf("omb: validation failed at %d", off+i)
		}
	}
	return nil
}
func (b nativeBuf) verifySum(iter, n, factor int) error {
	for i := 0; i < n; i++ {
		if want := byte(factor * (iter + i)); b.b[i] != want {
			return fmt.Errorf("omb: reduction validation failed at %d: %#x != %#x", i, b.b[i], want)
		}
	}
	return nil
}
func (b nativeBuf) byteAt(i int) byte       { return b.b[i] }
func (b nativeBuf) setByteAt(i int, v byte) { b.b[i] = v }

// newBuf allocates a payload container of n bytes for the mode.
func newBuf(m *core.MPI, mode Mode, n int) (msgBuf, error) {
	switch mode {
	case ModeArrays:
		arr, err := m.JVM().NewArray(jvm.Byte, n)
		if err != nil {
			return nil, err
		}
		return arrayBuf{arr}, nil
	case ModeBuffer:
		bb, err := m.JVM().AllocateDirect(n)
		if err != nil {
			return nil, err
		}
		return directBuf{bb}, nil
	case ModeNative:
		return nativeBuf{make([]byte, n)}, nil
	default:
		return nil, fmt.Errorf("omb: unknown mode %v", mode)
	}
}

// avgLatencyUs converts a total duration over iters round... operations
// into a per-operation latency in microseconds.
func avgLatencyUs(total vtime.Duration, ops int) float64 {
	if ops == 0 {
		return 0
	}
	return total.Micros() / float64(ops)
}
