// Package cluster models the shape of the simulated machine: how many
// nodes, how many ranks per node, and how MPI ranks are mapped onto
// nodes. The evaluation in the paper runs on TACC Frontera (dual-socket
// 56-core Cascade Lake nodes); the topology here carries just enough
// structure for the fabric to distinguish intra-node from inter-node
// communication and for collectives to make leader-based decisions.
package cluster

import "fmt"

// Mapping selects how consecutive ranks are placed on nodes.
type Mapping int

const (
	// Block places ranks 0..ppn-1 on node 0, ppn..2ppn-1 on node 1, …
	// This is the default of most MPI launchers (and of the paper's
	// "4 nodes with 64 processes in total—16 processes each" runs).
	Block Mapping = iota
	// Cyclic deals ranks round-robin across nodes.
	Cyclic
)

func (m Mapping) String() string {
	switch m {
	case Block:
		return "block"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Mapping(%d)", int(m))
	}
}

// Topology describes the simulated machine and the rank→node map.
type Topology struct {
	nodes   int
	ppn     int
	mapping Mapping
	nodeOf  []int // rank -> node
	local   []int // rank -> index among ranks of its node
	byNode  [][]int
}

// New builds a topology of nodes×ppn ranks with block mapping.
func New(nodes, ppn int) *Topology { return NewMapped(nodes, ppn, Block) }

// NewMapped builds a topology with an explicit rank mapping policy.
// It panics if nodes or ppn is not positive: a zero-size machine is a
// programming error, not a runtime condition.
func NewMapped(nodes, ppn int, m Mapping) *Topology {
	if nodes <= 0 || ppn <= 0 {
		panic(fmt.Sprintf("cluster: invalid topology %d nodes x %d ppn", nodes, ppn))
	}
	n := nodes * ppn
	t := &Topology{
		nodes:   nodes,
		ppn:     ppn,
		mapping: m,
		nodeOf:  make([]int, n),
		local:   make([]int, n),
		byNode:  make([][]int, nodes),
	}
	for r := 0; r < n; r++ {
		var node int
		switch m {
		case Cyclic:
			node = r % nodes
		default:
			node = r / ppn
		}
		t.nodeOf[r] = node
		t.local[r] = len(t.byNode[node])
		t.byNode[node] = append(t.byNode[node], r)
	}
	return t
}

// Size returns the total number of ranks.
func (t *Topology) Size() int { return len(t.nodeOf) }

// Nodes returns the number of nodes.
func (t *Topology) Nodes() int { return t.nodes }

// PPN returns the number of ranks per node.
func (t *Topology) PPN() int { return t.ppn }

// Mapping returns the placement policy in effect.
func (t *Topology) Mapping() Mapping { return t.mapping }

// NodeOf returns the node hosting rank r.
func (t *Topology) NodeOf(r int) int {
	t.check(r)
	return t.nodeOf[r]
}

// LocalRank returns r's index among the ranks of its node (0-based).
func (t *Topology) LocalRank(r int) int {
	t.check(r)
	return t.local[r]
}

// SameNode reports whether ranks a and b share a node, i.e. whether
// communication between them uses the shared-memory channel.
func (t *Topology) SameNode(a, b int) bool {
	t.check(a)
	t.check(b)
	return t.nodeOf[a] == t.nodeOf[b]
}

// RanksOnNode returns the ranks placed on the given node, in rank
// order. The returned slice is owned by the topology; callers must not
// modify it.
func (t *Topology) RanksOnNode(node int) []int {
	if node < 0 || node >= t.nodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", node, t.nodes))
	}
	return t.byNode[node]
}

// Leader returns the lowest rank on r's node. Leader-based collective
// algorithms stage data through this rank.
func (t *Topology) Leader(r int) int {
	t.check(r)
	return t.byNode[t.nodeOf[r]][0]
}

// IsLeader reports whether r is the lowest rank of its node.
func (t *Topology) IsLeader(r int) bool { return t.Leader(r) == r }

func (t *Topology) check(r int) {
	if r < 0 || r >= len(t.nodeOf) {
		panic(fmt.Sprintf("cluster: rank %d out of range [0,%d)", r, len(t.nodeOf)))
	}
}

// String describes the topology, e.g. "4 nodes x 16 ppn (block)".
func (t *Topology) String() string {
	return fmt.Sprintf("%d nodes x %d ppn (%s)", t.nodes, t.ppn, t.mapping)
}
