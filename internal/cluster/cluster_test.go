package cluster

import (
	"testing"
	"testing/quick"
)

func TestBlockMapping(t *testing.T) {
	top := New(4, 16)
	if top.Size() != 64 {
		t.Fatalf("Size = %d, want 64", top.Size())
	}
	if top.NodeOf(0) != 0 || top.NodeOf(15) != 0 || top.NodeOf(16) != 1 || top.NodeOf(63) != 3 {
		t.Fatal("block mapping wrong")
	}
	if !top.SameNode(0, 15) || top.SameNode(15, 16) {
		t.Fatal("SameNode wrong for block mapping")
	}
	if top.LocalRank(17) != 1 {
		t.Fatalf("LocalRank(17) = %d, want 1", top.LocalRank(17))
	}
}

func TestCyclicMapping(t *testing.T) {
	top := NewMapped(4, 4, Cyclic)
	if top.NodeOf(0) != 0 || top.NodeOf(1) != 1 || top.NodeOf(4) != 0 || top.NodeOf(7) != 3 {
		t.Fatal("cyclic mapping wrong")
	}
	if !top.SameNode(0, 4) || top.SameNode(0, 1) {
		t.Fatal("SameNode wrong for cyclic mapping")
	}
}

func TestRanksOnNode(t *testing.T) {
	top := New(2, 3)
	got := top.RanksOnNode(1)
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("RanksOnNode(1) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RanksOnNode(1) = %v, want %v", got, want)
		}
	}
}

func TestLeader(t *testing.T) {
	top := New(3, 4)
	if top.Leader(5) != 4 {
		t.Fatalf("Leader(5) = %d, want 4", top.Leader(5))
	}
	if !top.IsLeader(4) || top.IsLeader(5) {
		t.Fatal("IsLeader wrong")
	}
}

func TestInvalidTopologyPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 4}, {4, 0}, {-1, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", c[0], c[1])
				}
			}()
			New(c[0], c[1])
		}()
	}
}

func TestRankOutOfRangePanics(t *testing.T) {
	top := New(2, 2)
	for _, f := range []func(){
		func() { top.NodeOf(4) },
		func() { top.NodeOf(-1) },
		func() { top.LocalRank(99) },
		func() { top.RanksOnNode(2) },
		func() { top.Leader(-3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestString(t *testing.T) {
	if got := New(4, 16).String(); got != "4 nodes x 16 ppn (block)" {
		t.Fatalf("String() = %q", got)
	}
	if Block.String() != "block" || Cyclic.String() != "cyclic" {
		t.Fatal("Mapping.String wrong")
	}
	if Mapping(9).String() != "Mapping(9)" {
		t.Fatal("unknown Mapping.String wrong")
	}
}

// Property: for any topology shape and mapping, every rank appears on
// exactly one node, local ranks are dense per node, and SameNode is an
// equivalence relation consistent with NodeOf.
func TestMappingPartitionProperty(t *testing.T) {
	f := func(nodesRaw, ppnRaw uint8, cyclic bool) bool {
		nodes := int(nodesRaw%8) + 1
		ppn := int(ppnRaw%8) + 1
		m := Block
		if cyclic {
			m = Cyclic
		}
		top := NewMapped(nodes, ppn, m)
		seen := make(map[int]bool)
		for node := 0; node < nodes; node++ {
			rs := top.RanksOnNode(node)
			if len(rs) != ppn {
				return false
			}
			for i, r := range rs {
				if seen[r] || top.NodeOf(r) != node || top.LocalRank(r) != i {
					return false
				}
				seen[r] = true
			}
		}
		if len(seen) != top.Size() {
			return false
		}
		for a := 0; a < top.Size(); a++ {
			for b := 0; b < top.Size(); b++ {
				if top.SameNode(a, b) != (top.NodeOf(a) == top.NodeOf(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
