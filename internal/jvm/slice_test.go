package jvm

import "testing"

func TestDuplicateSharesStorageIndependentCursor(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(32)
	b.PutByte(1)
	d := b.Duplicate()
	if d.Position() != b.Position() || d.Capacity() != 32 {
		t.Fatalf("duplicate cursor: pos=%d cap=%d", d.Position(), d.Capacity())
	}
	d.PutByte(2) // writes at position 1 through the duplicate
	if b.ByteAt(1) != 2 {
		t.Fatal("duplicate does not share storage")
	}
	d.SetPosition(0)
	if b.Position() != 1 {
		t.Fatal("duplicate cursor is not independent")
	}
	if d.Order() != BigEndian {
		t.Fatal("duplicate must reset to big-endian")
	}
}

func TestSliceView(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(32)
	for i := 0; i < 32; i++ {
		b.PutByteAt(i, byte(i))
	}
	b.SetPosition(8)
	b.SetLimit(20)
	s := b.Slice()
	if s.Capacity() != 12 || s.Position() != 0 || s.Limit() != 12 {
		t.Fatalf("slice shape: cap=%d pos=%d lim=%d", s.Capacity(), s.Position(), s.Limit())
	}
	if s.ByteAt(0) != 8 || s.ByteAt(11) != 19 {
		t.Fatalf("slice window wrong: %d %d", s.ByteAt(0), s.ByteAt(11))
	}
	s.PutByteAt(0, 0xEE)
	if b.ByteAt(8) != 0xEE {
		t.Fatal("slice writes must land in the parent storage")
	}
	// Slice addresses shift with the view.
	if s.Address() != b.Address()+8 {
		t.Fatalf("slice address %d, parent %d", s.Address(), b.Address())
	}
	// Bounds confine the view.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("slice out-of-window access did not panic")
			}
		}()
		s.PutByteAt(12, 1)
	}()
}

func TestSliceOfHeapBuffer(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b, err := m.Allocate(16)
	if err != nil {
		t.Fatal(err)
	}
	b.PutByteAt(5, 42)
	b.SetPosition(4)
	s := b.Slice()
	if s.ByteAt(1) != 42 {
		t.Fatalf("heap slice sees %d", s.ByteAt(1))
	}
	// Heap slices stay correct across a compaction.
	junk := m.MustArray(Byte, 128)
	junk.Discard()
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	if s.ByteAt(1) != 42 {
		t.Fatal("heap slice lost its window after GC")
	}
}

func TestFreeOnViewPanics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(8)
	d := b.Duplicate()
	defer func() {
		if recover() == nil {
			t.Fatal("Free on a view did not panic")
		}
	}()
	d.Free()
}

func TestTypedViewOverSlice(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	b := m.MustAllocateDirect(24)
	b.SetPosition(8)
	s := b.Slice()
	iv := s.AsIntBuffer()
	iv.PutIntAt(0, 77)
	b.SetOrder(BigEndian)
	if got := b.IntKindAt(Int, 8); got != 77 {
		t.Fatalf("typed view over slice wrote to %d", got)
	}
}
