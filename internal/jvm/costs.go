package jvm

import "mv2j/internal/vtime"

// AccessCosts is the memory-access cost model charged to virtual time.
//
// The asymmetry between ArrayAccess and BufferAccess is the mechanism
// behind the paper's Fig. 18 finding: a ByteBuffer "is basically an
// array that is wrapped with a higher-level interface", and that
// abstraction (bounds/limit checks, byte-order conversion, JNI-safe
// accessors) makes per-element reads and writes measurably slower than
// plain Java array indexing. Bulk transfers, in contrast, run at
// memcpy-like rates on both storage kinds.
type AccessCosts struct {
	// ArrayRead/ArrayWrite are per-element costs for Java array access.
	ArrayRead  vtime.Duration
	ArrayWrite vtime.Duration
	// BufferRead/BufferWrite are per-element costs for ByteBuffer
	// get/put access.
	BufferRead  vtime.Duration
	BufferWrite vtime.Duration
	// BulkBandwidth is the memcpy rate (bytes/second) used for bulk
	// copies (System.arraycopy, ByteBuffer.put(byte[]), JNI region
	// copies), with BulkFixed charged once per call.
	BulkBandwidth float64
	BulkFixed     vtime.Duration
	// AllocHeap is the cost of allocating a heap object (array or heap
	// ByteBuffer), plus AllocPerByte per byte for zeroing.
	AllocHeap    vtime.Duration
	AllocPerByte vtime.Duration
	// AllocDirect is the cost of ByteBuffer.allocateDirect: the paper
	// stresses direct buffers are "costly to create and destroy".
	AllocDirect vtime.Duration
	FreeDirect  vtime.Duration
	// GCFixed is the fixed portion of a collection pause; GCBandwidth
	// is the rate at which live bytes are traced and compacted.
	GCFixed     vtime.Duration
	GCBandwidth float64
}

// DefaultCosts returns the calibrated cost model. Values are in the
// range JMH microbenchmarks report for OpenJDK on Cascade Lake-class
// hardware; the ~3.5x buffer-vs-array element-access gap reproduces
// Fig. 18's 3x verdict at 4 MB, and the 256 B crossover falls out of
// the fixed copy overheads of the array path.
func DefaultCosts() AccessCosts {
	return AccessCosts{
		ArrayRead:     vtime.Nanos(0.30),
		ArrayWrite:    vtime.Nanos(0.32),
		BufferRead:    vtime.Nanos(1.05),
		BufferWrite:   vtime.Nanos(1.15),
		BulkBandwidth: 20e9,
		BulkFixed:     vtime.Nanos(40),
		AllocHeap:     vtime.Nanos(120),
		AllocPerByte:  vtime.Nanos(0.03),
		AllocDirect:   vtime.Micros(2.0),
		FreeDirect:    vtime.Nanos(400),
		GCFixed:       vtime.Micros(20),
		GCBandwidth:   10e9,
	}
}

// bulk returns the cost of a bulk copy of n bytes.
func (c AccessCosts) bulk(n int) vtime.Duration {
	return c.BulkFixed + vtime.PerByte(n, c.BulkBandwidth)
}
