package jvm

import (
	"fmt"

	"mv2j/internal/vtime"
)

// ByteOrder mirrors java.nio.ByteOrder.
type ByteOrder int

const (
	// BigEndian is the default order of a fresh java.nio.ByteBuffer.
	BigEndian ByteOrder = iota
	LittleEndian
)

func (o ByteOrder) String() string {
	if o == BigEndian {
		return "BIG_ENDIAN"
	}
	return "LITTLE_ENDIAN"
}

// ByteBuffer simulates java.nio.ByteBuffer with both allocation
// flavours the paper contrasts:
//
//   - direct (allocateDirect): storage lives in the off-heap arena at a
//     stable address, expensive to create, invisible to the collector —
//     the buffer kind Java MPI libraries want, because JNI can take its
//     address without copying;
//   - heap (allocate): storage is an ordinary heap object, movable by
//     GC, so JNI must copy it like an array.
//
// Position/limit/mark follow java.nio.Buffer semantics. Per-element
// get/put charge the (slower) buffer access costs; bulk transfers run
// at memcpy rate.
type ByteBuffer struct {
	m      *Machine
	direct bool
	ref    Ref // heap storage handle
	off    int // direct: stable arena offset
	base   int // view offset into the backing storage (Slice)
	cap    int
	pos    int
	limit  int
	mark   int // -1 when unset
	order  ByteOrder
	// derived marks Duplicate/Slice views, which share storage with
	// their parent and therefore cannot Free it.
	derived bool
}

// AllocateDirect creates a direct ByteBuffer of n bytes. Matching the
// paper's observation that direct buffers are "costly to create", it
// charges AllocDirect plus the zeroing cost.
func (m *Machine) AllocateDirect(n int) (*ByteBuffer, error) {
	if n <= 0 {
		return nil, fmt.Errorf("jvm: invalid direct buffer capacity %d", n)
	}
	off, err := m.arena.alloc(n)
	if err != nil {
		return nil, err
	}
	clear(m.arena.bytes(off, n))
	m.stats.DirectAllocs++
	m.stats.DirectBytes += int64(n)
	m.clock.Advance(m.costs.AllocDirect + vtime.PerElement(n, m.costs.AllocPerByte))
	return &ByteBuffer{m: m, direct: true, off: off, cap: n, limit: n, mark: -1}, nil
}

// Allocate creates a heap (non-direct) ByteBuffer of n bytes.
func (m *Machine) Allocate(n int) (*ByteBuffer, error) {
	if n < 0 {
		return nil, fmt.Errorf("jvm: invalid buffer capacity %d", n)
	}
	ref, err := m.allocHeap(Byte, n, n)
	if err != nil {
		return nil, err
	}
	return &ByteBuffer{m: m, ref: ref, cap: n, limit: n, mark: -1}, nil
}

// MustAllocateDirect panics on failure; for examples and benchmarks.
func (m *Machine) MustAllocateDirect(n int) *ByteBuffer {
	b, err := m.AllocateDirect(n)
	if err != nil {
		panic(err)
	}
	return b
}

// Free releases the buffer's storage. For direct buffers this is the
// explicit-cleaner path (sun.misc.Cleaner); for heap buffers it marks
// the object collectable.
func (b *ByteBuffer) Free() {
	if b.derived {
		panic("jvm: Free on a Duplicate/Slice view; free the original buffer")
	}
	if b.direct {
		b.m.arena.release(b.off, b.cap)
		b.m.clock.Advance(b.m.costs.FreeDirect)
		b.cap, b.limit, b.pos = 0, 0, 0
		return
	}
	if err := b.m.discard(b.ref); err != nil {
		panic(err)
	}
}

// IsDirect reports the allocation flavour.
func (b *ByteBuffer) IsDirect() bool { return b.direct }

// Machine returns the owning JVM.
func (b *ByteBuffer) Machine() *Machine { return b.m }

// storage returns the current backing bytes of this view.
func (b *ByteBuffer) storage() []byte {
	if b.direct {
		return b.m.arena.bytes(b.off+b.base, b.cap)
	}
	p, err := b.m.payload(b.ref)
	if err != nil {
		panic(err)
	}
	return p[b.base : b.base+b.cap : b.base+b.cap]
}

// Duplicate creates a view sharing this buffer's storage with
// independent position, limit, and mark (java.nio duplicate()). The
// byte order resets to big-endian, as in Java.
func (b *ByteBuffer) Duplicate() *ByteBuffer {
	d := *b
	d.derived = true
	d.mark = -1
	d.order = BigEndian
	return &d
}

// Slice creates a view of the [position, limit) region: element 0 of
// the slice is the current position (java.nio slice()).
func (b *ByteBuffer) Slice() *ByteBuffer {
	n := b.Remaining()
	return &ByteBuffer{
		m:       b.m,
		direct:  b.direct,
		ref:     b.ref,
		off:     b.off,
		base:    b.base + b.pos,
		cap:     n,
		limit:   n,
		mark:    -1,
		derived: true,
	}
}

// Capacity, Position, Limit, Remaining follow java.nio.Buffer.
func (b *ByteBuffer) Capacity() int  { return b.cap }
func (b *ByteBuffer) Position() int  { return b.pos }
func (b *ByteBuffer) Limit() int     { return b.limit }
func (b *ByteBuffer) Remaining() int { return b.limit - b.pos }

// SetPosition moves the cursor; panics outside [0, limit].
func (b *ByteBuffer) SetPosition(p int) {
	if p < 0 || p > b.limit {
		panic(fmt.Sprintf("jvm: position %d outside [0,%d]", p, b.limit))
	}
	b.pos = p
	if b.mark > p {
		b.mark = -1
	}
}

// SetLimit adjusts the limit; panics outside [0, capacity].
func (b *ByteBuffer) SetLimit(l int) {
	if l < 0 || l > b.cap {
		panic(fmt.Sprintf("jvm: limit %d outside [0,%d]", l, b.cap))
	}
	b.limit = l
	if b.pos > l {
		b.pos = l
	}
	if b.mark > l {
		b.mark = -1
	}
}

// Flip makes the buffer readable: limit=position, position=0.
func (b *ByteBuffer) Flip() { b.limit, b.pos, b.mark = b.pos, 0, -1 }

// Clear resets for writing: position=0, limit=capacity.
func (b *ByteBuffer) Clear() { b.pos, b.limit, b.mark = 0, b.cap, -1 }

// Rewind resets position to 0 keeping the limit.
func (b *ByteBuffer) Rewind() { b.pos, b.mark = 0, -1 }

// Mark records the position for ResetToMark.
func (b *ByteBuffer) Mark() { b.mark = b.pos }

// ResetToMark rewinds to the marked position; panics if unset.
func (b *ByteBuffer) ResetToMark() {
	if b.mark < 0 {
		panic("jvm: reset without mark")
	}
	b.pos = b.mark
}

// Order returns the byte order (BigEndian unless changed).
func (b *ByteBuffer) Order() ByteOrder { return b.order }

// SetOrder changes the byte order used by multi-byte accessors.
func (b *ByteBuffer) SetOrder(o ByteOrder) { b.order = o }

func (b *ByteBuffer) checkIndex(i, width int) {
	if i < 0 || i+width > b.limit {
		panic(fmt.Sprintf("jvm: buffer index %d(+%d) outside limit %d", i, width, b.limit))
	}
}

// PutIntKind writes an integral value of kind k at the current
// position (relative put), advancing it. Charges one buffer write.
func (b *ByteBuffer) PutIntKind(k Kind, v int64) {
	b.PutIntKindAt(k, b.pos, v)
	b.pos += k.Size()
}

// PutIntKindAt is the absolute variant.
func (b *ByteBuffer) PutIntKindAt(k Kind, i int, v int64) {
	b.checkIndex(i, k.Size())
	putBits(b.storage(), i, k.Size(), intToBits(k, v), b.order == BigEndian)
	b.m.clock.Advance(b.m.costs.BufferWrite)
}

// IntKind reads an integral value of kind k at the position, advancing.
func (b *ByteBuffer) IntKind(k Kind) int64 {
	v := b.IntKindAt(k, b.pos)
	b.pos += k.Size()
	return v
}

// IntKindAt is the absolute variant.
func (b *ByteBuffer) IntKindAt(k Kind, i int) int64 {
	b.checkIndex(i, k.Size())
	bits := getBits(b.storage(), i, k.Size(), b.order == BigEndian)
	b.m.clock.Advance(b.m.costs.BufferRead)
	return bitsToInt(k, bits)
}

// PutFloatKind / FloatKind mirror the integral accessors for
// float/double.
func (b *ByteBuffer) PutFloatKind(k Kind, v float64) {
	b.PutFloatKindAt(k, b.pos, v)
	b.pos += k.Size()
}

func (b *ByteBuffer) PutFloatKindAt(k Kind, i int, v float64) {
	b.checkIndex(i, k.Size())
	putBits(b.storage(), i, k.Size(), floatToBits(k, v), b.order == BigEndian)
	b.m.clock.Advance(b.m.costs.BufferWrite)
}

func (b *ByteBuffer) FloatKind(k Kind) float64 {
	v := b.FloatKindAt(k, b.pos)
	b.pos += k.Size()
	return v
}

func (b *ByteBuffer) FloatKindAt(k Kind, i int) float64 {
	b.checkIndex(i, k.Size())
	bits := getBits(b.storage(), i, k.Size(), b.order == BigEndian)
	b.m.clock.Advance(b.m.costs.BufferRead)
	return bitsToFloat(k, bits)
}

// PutByte / GetByte are the common single-byte relative accessors.
func (b *ByteBuffer) PutByte(v byte) { b.PutIntKind(Byte, int64(v)) }
func (b *ByteBuffer) GetByte() byte  { return byte(b.IntKind(Byte)) }

// PutByteAt / ByteAt are absolute single-byte accessors.
func (b *ByteBuffer) PutByteAt(i int, v byte) { b.PutIntKindAt(Byte, i, int64(v)) }
func (b *ByteBuffer) ByteAt(i int) byte       { return byte(b.IntKindAt(Byte, i)) }

// PutBytes bulk-writes src at the position (ByteBuffer.put(byte[])),
// advancing it, at memcpy rate.
func (b *ByteBuffer) PutBytes(src []byte) {
	b.checkIndex(b.pos, len(src))
	copy(b.storage()[b.pos:], src)
	b.pos += len(src)
	b.m.ChargeBulk(len(src))
}

// GetBytes bulk-reads into dst, advancing the position.
func (b *ByteBuffer) GetBytes(dst []byte) {
	b.checkIndex(b.pos, len(dst))
	copy(dst, b.storage()[b.pos:])
	b.pos += len(dst)
	b.m.ChargeBulk(len(dst))
}

// PutArray bulk-copies n elements of a (starting at element srcOff)
// into the buffer at the current position, advancing it. This is the
// typed-view put(array) path the buffering layer uses: one bulk charge,
// not n element charges.
func (b *ByteBuffer) PutArray(a Array, srcOff, n int) {
	a.checkRange(srcOff, n)
	sz := a.kind.Size()
	nb := n * sz
	b.checkIndex(b.pos, nb)
	copy(b.storage()[b.pos:], a.payload()[srcOff*sz:(srcOff+n)*sz])
	b.pos += nb
	b.m.ChargeBulk(nb)
}

// GetArray bulk-copies n elements from the buffer at the current
// position into a at element dstOff, advancing the position.
func (b *ByteBuffer) GetArray(a Array, dstOff, n int) {
	a.checkRange(dstOff, n)
	sz := a.kind.Size()
	nb := n * sz
	b.checkIndex(b.pos, nb)
	copy(a.payload()[dstOff*sz:(dstOff+n)*sz], b.storage()[b.pos:b.pos+nb])
	b.pos += nb
	b.m.ChargeBulk(nb)
}

// Address returns the stable native address (arena offset) of a direct
// buffer, or -1 for heap buffers — matching GetDirectBufferAddress
// returning NULL for non-direct buffers. Views report the address of
// their element 0.
func (b *ByteBuffer) Address() int {
	if !b.direct {
		return -1
	}
	return b.off + b.base
}

// RawBytes exposes the backing store without copying or cost. For
// direct buffers the slice is stable; for heap buffers it is
// invalidated by the next GC. Only the jni package should call this.
func (b *ByteBuffer) RawBytes() []byte { return b.storage() }
