package jvm

import (
	"testing"
	"testing/quick"
)

// Property: putBits/getBits round-trip for every width and both
// orders, masking to the width.
func TestBitsRoundTripProperty(t *testing.T) {
	f := func(bits uint64, widthSel uint8, big bool, offRaw uint8) bool {
		widths := []int{1, 2, 4, 8}
		w := widths[int(widthSel)%len(widths)]
		off := int(offRaw % 8)
		buf := make([]byte, 16)
		putBits(buf, off, w, bits, big)
		got := getBits(buf, off, w, big)
		var mask uint64
		if w == 8 {
			mask = ^uint64(0)
		} else {
			mask = (uint64(1) << (8 * w)) - 1
		}
		return got == bits&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: big- and little-endian encodings of the same value are
// byte-reversals of each other.
func TestEndianMirrorProperty(t *testing.T) {
	f := func(bits uint64, widthSel uint8) bool {
		widths := []int{2, 4, 8}
		w := widths[int(widthSel)%len(widths)]
		le := make([]byte, w)
		be := make([]byte, w)
		putBits(le, 0, w, bits, false)
		putBits(be, 0, w, bits, true)
		for i := 0; i < w; i++ {
			if le[i] != be[w-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: int narrowing/widening obeys Java semantics for all kinds.
func TestIntNarrowWidenProperty(t *testing.T) {
	f := func(v int64, kindSel uint8) bool {
		kinds := []Kind{Byte, Boolean, Char, Short, Int, Long}
		k := kinds[int(kindSel)%len(kinds)]
		got := bitsToInt(k, intToBits(k, v))
		var want int64
		switch k {
		case Byte:
			want = int64(int8(v))
		case Boolean:
			want = v & 1
		case Char:
			want = int64(uint16(v))
		case Short:
			want = int64(int16(v))
		case Int:
			want = int64(int32(v))
		case Long:
			want = v
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: float bits round-trip exactly for doubles; floats
// round-trip through their float32 projection.
func TestFloatBitsProperty(t *testing.T) {
	f := func(v float64) bool {
		if v != v { // NaN payloads are not preserved through float64->float32
			return true
		}
		if bitsToFloat(Double, floatToBits(Double, v)) != v {
			return false
		}
		f32 := float64(float32(v))
		return bitsToFloat(Float, floatToBits(Float, v)) == f32 || f32 != f32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecPanicsOnKindMisuse(t *testing.T) {
	for _, f := range []func(){
		func() { intToBits(Double, 1) },
		func() { bitsToInt(Float, 0) },
		func() { floatToBits(Int, 1) },
		func() { bitsToFloat(Long, 0) },
		func() { Kind(42).Size() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("kind misuse did not panic")
				}
			}()
			f()
		}()
	}
}

func TestKindsEnumeration(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(numKinds) {
		t.Fatalf("Kinds() has %d entries, want %d", len(ks), int(numKinds))
	}
	seen := map[Kind]bool{}
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("duplicate kind %v", k)
		}
		seen[k] = true
		if k.Size() <= 0 || k.Size() > 8 {
			t.Fatalf("%v has size %d", k, k.Size())
		}
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", int(k))
		}
	}
}
