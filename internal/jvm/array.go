package jvm

import "fmt"

// Array is a handle to a Java primitive array living in the managed
// heap. Element access goes through accessors that charge the array
// cost model; the raw payload is reachable only via RawBytes, whose
// validity ends at the next collection — the property that forces the
// JNI layer to copy or pin.
//
// Index errors panic, mirroring Java's ArrayIndexOutOfBoundsException
// being an unchecked throw.
type Array struct {
	m    *Machine
	ref  Ref
	kind Kind
	n    int
}

// NewArray allocates a primitive array of n elements.
func (m *Machine) NewArray(kind Kind, n int) (Array, error) {
	if n < 0 {
		return Array{}, fmt.Errorf("jvm: negative array length %d", n)
	}
	ref, err := m.allocHeap(kind, n, n*kind.Size())
	if err != nil {
		return Array{}, err
	}
	return Array{m: m, ref: ref, kind: kind, n: n}, nil
}

// MustArray is NewArray for contexts where allocation failure is a
// programming error (examples, benchmarks with sized heaps).
func (m *Machine) MustArray(kind Kind, n int) Array {
	a, err := m.NewArray(kind, n)
	if err != nil {
		panic(err)
	}
	return a
}

// IsNil reports whether a is the zero Array (Java null).
func (a Array) IsNil() bool { return a.m == nil }

// Len returns the element count.
func (a Array) Len() int { return a.n }

// Kind returns the component type.
func (a Array) Kind() Kind { return a.kind }

// SizeBytes returns the payload size in bytes.
func (a Array) SizeBytes() int { return a.n * a.kind.Size() }

// Machine returns the owning JVM.
func (a Array) Machine() *Machine { return a.m }

// Discard marks the array unreachable; the next GC reclaims it.
func (a Array) Discard() {
	if err := a.m.discard(a.ref); err != nil {
		panic(err)
	}
}

func (a Array) payload() []byte {
	p, err := a.m.payload(a.ref)
	if err != nil {
		panic(err) // stale handle: a simulation bug, not a user condition
	}
	return p
}

func (a Array) check(i int) {
	if i < 0 || i >= a.n {
		panic(fmt.Sprintf("jvm: array index %d out of bounds [0,%d)", i, a.n))
	}
}

func (a Array) checkRange(off, n int) {
	if off < 0 || n < 0 || off+n > a.n {
		panic(fmt.Sprintf("jvm: array range [%d,%d) out of bounds [0,%d)", off, off+n, a.n))
	}
}

// SetInt stores v at index i for integral kinds, narrowing with Java
// semantics. It charges one array-write access.
func (a Array) SetInt(i int, v int64) {
	a.check(i)
	if a.kind.IsFloating() {
		panic("jvm: SetInt on " + a.kind.String() + " array")
	}
	sz := a.kind.Size()
	putBits(a.payload(), i*sz, sz, intToBits(a.kind, v), false)
	a.m.clock.Advance(a.m.costs.ArrayWrite)
}

// Int loads index i of an integral array, charging one array read.
func (a Array) Int(i int) int64 {
	a.check(i)
	if a.kind.IsFloating() {
		panic("jvm: Int on " + a.kind.String() + " array")
	}
	sz := a.kind.Size()
	bits := getBits(a.payload(), i*sz, sz, false)
	a.m.clock.Advance(a.m.costs.ArrayRead)
	return bitsToInt(a.kind, bits)
}

// SetFloat stores v at index i for float/double arrays.
func (a Array) SetFloat(i int, v float64) {
	a.check(i)
	if !a.kind.IsFloating() {
		panic("jvm: SetFloat on " + a.kind.String() + " array")
	}
	sz := a.kind.Size()
	putBits(a.payload(), i*sz, sz, floatToBits(a.kind, v), false)
	a.m.clock.Advance(a.m.costs.ArrayWrite)
}

// Float loads index i of a float/double array.
func (a Array) Float(i int) float64 {
	a.check(i)
	if !a.kind.IsFloating() {
		panic("jvm: Float on " + a.kind.String() + " array")
	}
	sz := a.kind.Size()
	bits := getBits(a.payload(), i*sz, sz, false)
	a.m.clock.Advance(a.m.costs.ArrayRead)
	return bitsToFloat(a.kind, bits)
}

// Fill sets every element of an integral array to v at bulk rate
// (java.util.Arrays.fill compiles to a vectorised loop).
func (a Array) Fill(v int64) {
	sz := a.kind.Size()
	p := a.payload()
	bits := intToBits(a.kind, v)
	for i := 0; i < a.n; i++ {
		putBits(p, i*sz, sz, bits, false)
	}
	a.m.ChargeBulk(a.SizeBytes())
}

// CopyInBytes copies len(src) raw bytes into the payload starting at
// byte offset boff, at bulk (System.arraycopy) rate.
func (a Array) CopyInBytes(boff int, src []byte) {
	p := a.payload()
	if boff < 0 || boff+len(src) > len(p) {
		panic(fmt.Sprintf("jvm: CopyInBytes range [%d,%d) out of bounds [0,%d)", boff, boff+len(src), len(p)))
	}
	copy(p[boff:], src)
	a.m.ChargeBulk(len(src))
}

// CopyOutBytes copies raw payload bytes [boff, boff+len(dst)) into dst
// at bulk rate.
func (a Array) CopyOutBytes(boff int, dst []byte) {
	p := a.payload()
	if boff < 0 || boff+len(dst) > len(p) {
		panic(fmt.Sprintf("jvm: CopyOutBytes range [%d,%d) out of bounds [0,%d)", boff, boff+len(dst), len(p)))
	}
	copy(dst, p[boff:])
	a.m.ChargeBulk(len(dst))
}

// RawBytes exposes the array's current backing store without copying
// and without charging access costs. It models the pointer obtained by
// GetPrimitiveArrayCritical: the slice is invalidated by the next
// collection, so callers must hold a critical region (or accept the
// hazard). Only the jni package should call this.
func (a Array) RawBytes() []byte { return a.payload() }

// Ref exposes the handle, for diagnostics and GC-movement tests.
func (a Array) Ref() Ref { return a.ref }

// Offset returns the payload's current heap offset. It exists so tests
// can demonstrate that compaction moves objects.
func (a Array) Offset() int {
	s, err := a.m.slot(a.ref)
	if err != nil {
		panic(err)
	}
	return s.off
}
