package jvm

import "math"

// putBits stores the low size bytes of bits at b[off:], in big- or
// little-endian order. getBits is its inverse. These are the single
// encode/decode points shared by arrays (always native/little-endian)
// and ByteBuffers (which honour their configured ByteOrder, defaulting
// to big-endian as in Java).
func putBits(b []byte, off, size int, bits uint64, big bool) {
	if big {
		for i := 0; i < size; i++ {
			b[off+i] = byte(bits >> (8 * (size - 1 - i)))
		}
		return
	}
	for i := 0; i < size; i++ {
		b[off+i] = byte(bits >> (8 * i))
	}
}

func getBits(b []byte, off, size int, big bool) uint64 {
	var bits uint64
	if big {
		for i := 0; i < size; i++ {
			bits = bits<<8 | uint64(b[off+i])
		}
		return bits
	}
	for i := size - 1; i >= 0; i-- {
		bits = bits<<8 | uint64(b[off+i])
	}
	return bits
}

// intToBits narrows v to the kind's width. Char is unsigned (UTF-16
// code unit); the other integral kinds are two's-complement.
func intToBits(k Kind, v int64) uint64 {
	switch k {
	case Byte, Boolean:
		return uint64(uint8(v))
	case Char, Short:
		return uint64(uint16(v))
	case Int:
		return uint64(uint32(v))
	case Long:
		return uint64(v)
	default:
		panic("jvm: intToBits on floating kind " + k.String())
	}
}

// bitsToInt widens stored bits back to int64 with Java semantics:
// byte/short are sign-extended, char is zero-extended, boolean is 0/1.
func bitsToInt(k Kind, bits uint64) int64 {
	switch k {
	case Byte:
		return int64(int8(bits))
	case Boolean:
		if bits&1 != 0 {
			return 1
		}
		return 0
	case Char:
		return int64(uint16(bits))
	case Short:
		return int64(int16(bits))
	case Int:
		return int64(int32(bits))
	case Long:
		return int64(bits)
	default:
		panic("jvm: bitsToInt on floating kind " + k.String())
	}
}

func floatToBits(k Kind, v float64) uint64 {
	switch k {
	case Float:
		return uint64(math.Float32bits(float32(v)))
	case Double:
		return math.Float64bits(v)
	default:
		panic("jvm: floatToBits on integral kind " + k.String())
	}
}

func bitsToFloat(k Kind, bits uint64) float64 {
	switch k {
	case Float:
		return float64(math.Float32frombits(uint32(bits)))
	case Double:
		return math.Float64frombits(bits)
	default:
		panic("jvm: bitsToFloat on integral kind " + k.String())
	}
}

// IsFloating reports whether k is float or double.
func (k Kind) IsFloating() bool { return k == Float || k == Double }
