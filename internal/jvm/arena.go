package jvm

import "fmt"

// arena is the off-heap region backing direct ByteBuffers. Unlike the
// managed heap it never compacts: blocks keep their address for their
// whole lifetime, which is precisely why direct buffers can be handed
// to native code. A first-fit free list with coalescing keeps
// fragmentation bounded for the pool-style usage mpjbuf makes of it.
type arena struct {
	buf  []byte
	free []arenaBlock // sorted by offset, non-adjacent
	used int
}

type arenaBlock struct {
	off, size int
}

func newArena(size int) *arena {
	a := &arena{buf: make([]byte, size)}
	if size > 0 {
		a.free = []arenaBlock{{0, size}}
	}
	return a
}

// alloc reserves size bytes and returns the stable offset.
func (a *arena) alloc(size int) (int, error) {
	if size <= 0 {
		return 0, fmt.Errorf("jvm: invalid direct allocation %d", size)
	}
	for i := range a.free {
		b := &a.free[i]
		if b.size >= size {
			off := b.off
			b.off += size
			b.size -= size
			if b.size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			a.used += size
			return off, nil
		}
	}
	return 0, fmt.Errorf("%w: direct arena cannot fit %d bytes (used %d of %d)",
		ErrOutOfMemory, size, a.used, len(a.buf))
}

// release returns a block to the free list, coalescing neighbours.
func (a *arena) release(off, size int) {
	if size <= 0 {
		return
	}
	a.used -= size
	// Insert keeping offset order.
	i := 0
	for i < len(a.free) && a.free[i].off < off {
		i++
	}
	a.free = append(a.free, arenaBlock{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = arenaBlock{off, size}
	// Coalesce with successor, then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// bytes returns the storage for a block. Stable across the block's
// lifetime.
func (a *arena) bytes(off, size int) []byte {
	return a.buf[off : off+size : off+size]
}

// DirectUsed reports bytes currently allocated in the direct arena.
func (m *Machine) DirectUsed() int { return m.arena.used }
