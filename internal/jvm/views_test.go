package jvm

import (
	"testing"
	"testing/quick"
)

func TestTypedViewBasics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(64)
	iv := bb.AsIntBuffer()
	if iv.Capacity() != 16 || iv.Limit() != 16 || iv.Position() != 0 || iv.Kind() != Int {
		t.Fatalf("view shape wrong: cap=%d", iv.Capacity())
	}
	iv.PutInt(11)
	iv.PutInt(-22)
	if iv.Position() != 2 || iv.Remaining() != 14 {
		t.Fatalf("relative put: pos=%d", iv.Position())
	}
	iv.Flip()
	if iv.Int() != 11 || iv.Int() != -22 {
		t.Fatal("round trip failed")
	}
	iv.Clear()
	if iv.Limit() != 16 || iv.Position() != 0 {
		t.Fatal("Clear wrong")
	}
}

func TestTypedViewStartsAtPosition(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(32)
	bb.SetPosition(8)
	lv := bb.AsLongBuffer() // covers bytes 8..32: 3 longs
	if lv.Capacity() != 3 {
		t.Fatalf("view capacity %d, want 3", lv.Capacity())
	}
	lv.PutIntAt(0, 0x1122334455667788)
	// Element 0 of the view lives at byte 8 of the backing buffer.
	if got := bb.IntKindAt(Long, 8); got != 0x1122334455667788 {
		t.Fatalf("backing bytes = %#x", got)
	}
}

func TestTypedViewSharesStorage(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(16)
	iv := bb.AsIntBuffer()
	bb.PutIntKindAt(Int, 4, 99) // write through the byte buffer
	if got := iv.IntAt(1); got != 99 {
		t.Fatalf("view did not see backing write: %d", got)
	}
}

func TestTypedViewOrderFixedAtCreation(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(8)
	bb.SetOrder(LittleEndian)
	iv := bb.AsIntBuffer() // little-endian view
	bb.SetOrder(BigEndian) // later changes do not affect the view
	iv.PutIntAt(0, 0x01020304)
	if bb.ByteAt(0) != 0x04 {
		t.Fatal("view must keep the order it was created with")
	}
}

func TestTypedViewFloat(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(32)
	dv := bb.AsDoubleBuffer()
	dv.PutFloat(2.5)
	dv.PutFloat(-0.125)
	dv.Flip()
	if dv.Float() != 2.5 || dv.Float() != -0.125 {
		t.Fatal("double view round trip failed")
	}
	fv := bb.AsFloatBuffer()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PutInt on float view did not panic")
			}
		}()
		fv.PutInt(1)
	}()
}

func TestTypedViewBulkTransfer(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	for _, order := range []ByteOrder{LittleEndian, BigEndian} {
		bb := m.MustAllocateDirect(64)
		bb.SetOrder(order)
		iv := bb.AsIntBuffer()
		src := m.MustArray(Int, 8)
		for i := 0; i < 8; i++ {
			src.SetInt(i, int64(i*i-3))
		}
		iv.PutArray(src, 0, 8)
		iv.Flip()
		dst := m.MustArray(Int, 8)
		iv.GetArray(dst, 0, 8)
		for i := 0; i < 8; i++ {
			if dst.Int(i) != int64(i*i-3) {
				t.Fatalf("order %v: bulk[%d] = %d", order, i, dst.Int(i))
			}
		}
	}
}

func TestTypedViewBoundsPanics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	bb := m.MustAllocateDirect(8)
	iv := bb.AsIntBuffer() // 2 ints
	arr := m.MustArray(Int, 4)
	for _, f := range []func(){
		func() { iv.PutIntAt(2, 1) },
		func() { iv.PutIntAt(-1, 1) },
		func() { _ = iv.IntAt(5) },
		func() { iv.PutArray(arr, 0, 3) },
		func() { iv.SetPosition(3) },
		func() { iv.PutArray(m.MustArray(Long, 2), 0, 1) }, // kind mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("view bounds violation did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: view accesses agree with equivalent ByteBuffer accesses
// for any value and index.
func TestTypedViewAgreesWithByteBufferProperty(t *testing.T) {
	m := newTestMachine(t, 1<<20, 1<<20)
	bb := m.MustAllocateDirect(256)
	iv := bb.AsIntBuffer()
	f := func(idxRaw uint8, val int64) bool {
		i := int(idxRaw) % iv.Capacity()
		iv.PutIntAt(i, val)
		return bb.IntKindAt(Int, 4*i) == bitsToInt(Int, intToBits(Int, val))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
