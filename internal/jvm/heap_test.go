package jvm

import (
	"errors"
	"testing"

	"mv2j/internal/vtime"
)

func newTestMachine(t testing.TB, heap, arena int) *Machine {
	t.Helper()
	return NewMachine(vtime.NewClock(), Options{HeapSize: heap, ArenaSize: arena})
}

func TestAllocAndPayload(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a, err := m.NewArray(Int, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 10 || a.Kind() != Int || a.SizeBytes() != 40 {
		t.Fatalf("array shape wrong: len=%d kind=%v bytes=%d", a.Len(), a.Kind(), a.SizeBytes())
	}
	if m.HeapUsed() != 40 || m.LiveBytes() != 40 {
		t.Fatalf("heap accounting wrong: used=%d live=%d", m.HeapUsed(), m.LiveBytes())
	}
}

func TestDiscardAndStaleRef(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Byte, 8)
	ref := a.Ref()
	a.Discard()
	if _, err := m.payload(ref); !errors.Is(err, ErrStale) {
		t.Fatalf("payload after discard: err=%v, want ErrStale", err)
	}
	if m.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d after discard", m.LiveBytes())
	}
}

func TestSlotReuseBumpsGeneration(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	a := m.MustArray(Byte, 8)
	oldRef := a.Ref()
	a.Discard()
	b := m.MustArray(Byte, 8) // recycles the slot
	if b.Ref() == oldRef {
		t.Fatal("recycled slot produced an identical ref; generations must differ")
	}
	if _, err := m.payload(oldRef); !errors.Is(err, ErrStale) {
		t.Fatalf("old ref resolved after recycling: %v", err)
	}
}

func TestGCCompactsAndMovesObjects(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	dead := m.MustArray(Byte, 1000)
	live := m.MustArray(Byte, 100)
	live.SetInt(0, 42)
	live.SetInt(99, 7)
	offBefore := live.Offset()
	dead.Discard()
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	offAfter := live.Offset()
	if offAfter == offBefore {
		t.Fatal("GC did not move the surviving object (compaction expected)")
	}
	if offAfter != 0 {
		t.Fatalf("survivor should be compacted to offset 0, got %d", offAfter)
	}
	// Contents must survive the move.
	if live.Int(0) != 42 || live.Int(99) != 7 {
		t.Fatal("payload corrupted by compaction")
	}
	if m.HeapUsed() != 100 {
		t.Fatalf("HeapUsed = %d after GC, want 100", m.HeapUsed())
	}
	if m.Stats().Collections != 1 {
		t.Fatalf("Collections = %d, want 1", m.Stats().Collections)
	}
}

func TestGCChargesPause(t *testing.T) {
	clock := vtime.NewClock()
	m := NewMachine(clock, Options{HeapSize: 1 << 16, ArenaSize: 1 << 16})
	before := clock.Now()
	if err := m.GC(); err != nil {
		t.Fatal(err)
	}
	pause := clock.Now().Sub(before)
	if pause < m.Costs().GCFixed {
		t.Fatalf("GC pause %v below fixed cost %v", pause, m.Costs().GCFixed)
	}
}

func TestAllocationTriggersGC(t *testing.T) {
	m := newTestMachine(t, 1024, 1<<16)
	a := m.MustArray(Byte, 600)
	a.Discard()
	// 600 dead + 600 requested > 1024: allocation must collect first.
	b, err := m.NewArray(Byte, 600)
	if err != nil {
		t.Fatalf("allocation should have succeeded after implicit GC: %v", err)
	}
	if m.Stats().Collections != 1 {
		t.Fatalf("Collections = %d, want 1 (implicit)", m.Stats().Collections)
	}
	if b.Offset() != 0 {
		t.Fatalf("new object at %d, want 0 after compaction", b.Offset())
	}
}

func TestOutOfMemory(t *testing.T) {
	m := newTestMachine(t, 256, 1<<16)
	if _, err := m.NewArray(Byte, 300); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Live data filling the heap: no GC can help.
	m.MustArray(Byte, 200)
	if _, err := m.NewArray(Byte, 100); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory for live-full heap", err)
	}
}

func TestCriticalRegionBlocksGC(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	m.MustArray(Byte, 16)
	m.EnterCritical()
	if err := m.GC(); !errors.Is(err, ErrGCDisabled) {
		t.Fatalf("GC in critical region: err=%v, want ErrGCDisabled", err)
	}
	if m.Stats().Collections != 0 {
		t.Fatal("collection ran inside a critical region")
	}
	m.ExitCritical()
	// The pending collection must have run at region exit.
	if m.Stats().Collections != 1 {
		t.Fatalf("pending GC did not run on ExitCritical: collections=%d", m.Stats().Collections)
	}
}

func TestCriticalRegionNesting(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	m.EnterCritical()
	m.EnterCritical()
	m.ExitCritical()
	if !m.InCritical() {
		t.Fatal("nested critical region closed too early")
	}
	m.ExitCritical()
	if m.InCritical() {
		t.Fatal("critical region still open")
	}
}

func TestExitCriticalUnbalancedPanics(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced ExitCritical did not panic")
		}
	}()
	m.ExitCritical()
}

func TestAllocationDuringCriticalNeedingGCFails(t *testing.T) {
	m := newTestMachine(t, 1024, 1<<16)
	a := m.MustArray(Byte, 600)
	a.Discard()
	m.EnterCritical()
	_, err := m.NewArray(Byte, 600)
	if !errors.Is(err, ErrGCDisabled) {
		t.Fatalf("err = %v, want ErrGCDisabled", err)
	}
	m.ExitCritical()
	if _, err := m.NewArray(Byte, 600); err != nil {
		t.Fatalf("allocation after critical exit failed: %v", err)
	}
}

func TestNewMachinePanicsOnNilClock(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMachine(nil) did not panic")
		}
	}()
	NewMachine(nil, Options{})
}

func TestStatsAccumulate(t *testing.T) {
	m := newTestMachine(t, 1<<16, 1<<16)
	m.MustArray(Int, 4)
	m.MustAllocateDirect(64)
	s := m.Stats()
	if s.HeapAllocs != 1 || s.HeapAllocBytes != 16 {
		t.Fatalf("heap stats wrong: %+v", s)
	}
	if s.DirectAllocs != 1 || s.DirectBytes != 64 {
		t.Fatalf("direct stats wrong: %+v", s)
	}
}

// TestPinnedFootprintStats pins the Pin/Unpin accounting: the pinned
// footprint mirrors the runtime's registration-cache gauges — nested
// pins count an object once, and the peak survives unpinning.
func TestPinnedFootprintStats(t *testing.T) {
	m := NewMachine(vtime.NewClock(), Options{HeapSize: 1 << 16, ArenaSize: 1 << 16, AllowPinning: true})
	a := m.MustArray(Byte, 100)
	b := m.MustArray(Byte, 50)
	for _, r := range []Ref{a.Ref(), a.Ref(), b.Ref()} { // a pinned twice: counted once
		if err := m.Pin(r); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.PinnedBytes != 150 || s.PinnedPeak != 150 {
		t.Fatalf("pinned stats %d/%d, want 150/150", s.PinnedBytes, s.PinnedPeak)
	}
	for _, r := range []Ref{a.Ref(), a.Ref(), b.Ref()} {
		if err := m.Unpin(r); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.Stats(); s.PinnedBytes != 0 || s.PinnedPeak != 150 {
		t.Fatalf("after unpin %d/%d, want 0/150", s.PinnedBytes, s.PinnedPeak)
	}
}
