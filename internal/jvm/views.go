package jvm

import "fmt"

// TypedBuffer is a typed view over a ByteBuffer — java.nio's
// IntBuffer/DoubleBuffer/... family (§II-B of the paper). The view
// shares the backing storage, carries its own position and limit in
// ELEMENTS, and fixes the byte order at creation time, exactly as
// ByteBuffer.asIntBuffer() does. Element access costs the ByteBuffer
// rates (a view is the same abstraction layer, just pre-scaled).
type TypedBuffer struct {
	bb      *ByteBuffer
	kind    Kind
	baseOff int // byte offset of element 0 in the backing buffer
	cap     int // elements
	pos     int
	limit   int
	big     bool
}

// AsTyped creates a typed view of the given kind covering the
// buffer's [position, limit) region. Panics if the remaining bytes are
// not element-aligned, mirroring Java's silent truncation... no: Java
// truncates; we truncate too.
func (b *ByteBuffer) AsTyped(kind Kind) *TypedBuffer {
	esz := kind.Size()
	n := b.Remaining() / esz
	return &TypedBuffer{
		bb:      b,
		kind:    kind,
		baseOff: b.Position(),
		cap:     n,
		limit:   n,
		big:     b.Order() == BigEndian,
	}
}

// Convenience constructors matching the java.nio family.
func (b *ByteBuffer) AsIntBuffer() *TypedBuffer    { return b.AsTyped(Int) }
func (b *ByteBuffer) AsLongBuffer() *TypedBuffer   { return b.AsTyped(Long) }
func (b *ByteBuffer) AsShortBuffer() *TypedBuffer  { return b.AsTyped(Short) }
func (b *ByteBuffer) AsCharBuffer() *TypedBuffer   { return b.AsTyped(Char) }
func (b *ByteBuffer) AsFloatBuffer() *TypedBuffer  { return b.AsTyped(Float) }
func (b *ByteBuffer) AsDoubleBuffer() *TypedBuffer { return b.AsTyped(Double) }

// Kind returns the view's element kind.
func (v *TypedBuffer) Kind() Kind { return v.kind }

// Capacity, Position, Limit, Remaining are in elements.
func (v *TypedBuffer) Capacity() int  { return v.cap }
func (v *TypedBuffer) Position() int  { return v.pos }
func (v *TypedBuffer) Limit() int     { return v.limit }
func (v *TypedBuffer) Remaining() int { return v.limit - v.pos }

// SetPosition moves the element cursor.
func (v *TypedBuffer) SetPosition(p int) {
	if p < 0 || p > v.limit {
		panic(fmt.Sprintf("jvm: view position %d outside [0,%d]", p, v.limit))
	}
	v.pos = p
}

// Flip, Clear, Rewind follow java.nio.Buffer.
func (v *TypedBuffer) Flip()   { v.limit, v.pos = v.pos, 0 }
func (v *TypedBuffer) Clear()  { v.pos, v.limit = 0, v.cap }
func (v *TypedBuffer) Rewind() { v.pos = 0 }

func (v *TypedBuffer) byteIndex(i int) int {
	if i < 0 || i >= v.limit {
		panic(fmt.Sprintf("jvm: view index %d outside limit %d", i, v.limit))
	}
	return v.baseOff + i*v.kind.Size()
}

// PutInt stores an integral element at the position, advancing it.
func (v *TypedBuffer) PutInt(val int64) {
	v.PutIntAt(v.pos, val)
	v.pos++
}

// PutIntAt is the absolute integral store.
func (v *TypedBuffer) PutIntAt(i int, val int64) {
	if v.kind.IsFloating() {
		panic("jvm: PutInt on " + v.kind.String() + " view")
	}
	off := v.byteIndex(i)
	putBits(v.bb.storage(), off, v.kind.Size(), intToBits(v.kind, val), v.big)
	v.bb.m.clock.Advance(v.bb.m.costs.BufferWrite)
}

// Int loads the integral element at the position, advancing it.
func (v *TypedBuffer) Int() int64 {
	x := v.IntAt(v.pos)
	v.pos++
	return x
}

// IntAt is the absolute integral load.
func (v *TypedBuffer) IntAt(i int) int64 {
	if v.kind.IsFloating() {
		panic("jvm: Int on " + v.kind.String() + " view")
	}
	off := v.byteIndex(i)
	bits := getBits(v.bb.storage(), off, v.kind.Size(), v.big)
	v.bb.m.clock.Advance(v.bb.m.costs.BufferRead)
	return bitsToInt(v.kind, bits)
}

// PutFloat / PutFloatAt / Float / FloatAt mirror the integral accessors.
func (v *TypedBuffer) PutFloat(val float64) {
	v.PutFloatAt(v.pos, val)
	v.pos++
}

func (v *TypedBuffer) PutFloatAt(i int, val float64) {
	if !v.kind.IsFloating() {
		panic("jvm: PutFloat on " + v.kind.String() + " view")
	}
	off := v.byteIndex(i)
	putBits(v.bb.storage(), off, v.kind.Size(), floatToBits(v.kind, val), v.big)
	v.bb.m.clock.Advance(v.bb.m.costs.BufferWrite)
}

func (v *TypedBuffer) Float() float64 {
	x := v.FloatAt(v.pos)
	v.pos++
	return x
}

func (v *TypedBuffer) FloatAt(i int) float64 {
	if !v.kind.IsFloating() {
		panic("jvm: Float on " + v.kind.String() + " view")
	}
	off := v.byteIndex(i)
	bits := getBits(v.bb.storage(), off, v.kind.Size(), v.big)
	v.bb.m.clock.Advance(v.bb.m.costs.BufferRead)
	return bitsToFloat(v.kind, bits)
}

// PutArray bulk-copies n elements from a matching-kind array at the
// position — put(int[]) on the view, one bulk charge.
func (v *TypedBuffer) PutArray(a Array, srcOff, n int) {
	if a.Kind() != v.kind {
		panic(fmt.Sprintf("jvm: %v view cannot take a %v array", v.kind, a.Kind()))
	}
	if v.pos+n > v.limit {
		panic(fmt.Sprintf("jvm: view overflow: %d elements at position %d, limit %d", n, v.pos, v.limit))
	}
	a.checkRange(srcOff, n)
	esz := v.kind.Size()
	if v.big {
		// Byte-order conversion forces elementwise transfer — Java's
		// views pay this too on order-mismatched platforms.
		p := a.payload()
		dst := v.bb.storage()
		for i := 0; i < n; i++ {
			bits := getBits(p, (srcOff+i)*esz, esz, false)
			putBits(dst, v.baseOff+(v.pos+i)*esz, esz, bits, true)
		}
		v.bb.m.ChargeBulk(2 * n * esz)
	} else {
		copy(v.bb.storage()[v.baseOff+v.pos*esz:], a.payload()[srcOff*esz:(srcOff+n)*esz])
		v.bb.m.ChargeBulk(n * esz)
	}
	v.pos += n
}

// GetArray bulk-copies n elements from the view into a matching array.
func (v *TypedBuffer) GetArray(a Array, dstOff, n int) {
	if a.Kind() != v.kind {
		panic(fmt.Sprintf("jvm: %v view cannot fill a %v array", v.kind, a.Kind()))
	}
	if v.pos+n > v.limit {
		panic(fmt.Sprintf("jvm: view underflow: %d elements at position %d, limit %d", n, v.pos, v.limit))
	}
	a.checkRange(dstOff, n)
	esz := v.kind.Size()
	if v.big {
		src := v.bb.storage()
		p := a.payload()
		for i := 0; i < n; i++ {
			bits := getBits(src, v.baseOff+(v.pos+i)*esz, esz, true)
			putBits(p, (dstOff+i)*esz, esz, bits, false)
		}
		v.bb.m.ChargeBulk(2 * n * esz)
	} else {
		copy(a.payload()[dstOff*esz:(dstOff+n)*esz], v.bb.storage()[v.baseOff+v.pos*esz:])
		v.bb.m.ChargeBulk(n * esz)
	}
	v.pos += n
}
