package jvm

import (
	"errors"
	"fmt"

	"mv2j/internal/vtime"
)

// Errors reported by the simulated JVM.
var (
	// ErrOutOfMemory is the analogue of java.lang.OutOfMemoryError: the
	// heap (or the direct-buffer arena) cannot satisfy an allocation
	// even after collection.
	ErrOutOfMemory = errors.New("jvm: out of memory")
	// ErrStale reports use of a reference whose object was discarded.
	ErrStale = errors.New("jvm: stale reference")
	// ErrGCDisabled reports that a collection was required while a
	// GetPrimitiveArrayCritical region was open. Real JVMs either
	// block the allocating thread or throw; the simulation surfaces
	// the hazard explicitly.
	ErrGCDisabled = errors.New("jvm: allocation requires GC but GC is disabled by a critical region")
)

// Ref is a handle to a heap object. It stays valid across collections
// even though the object's storage moves; a generation counter detects
// use-after-discard.
type Ref int64

const nilRef Ref = 0

func makeRef(idx int, gen uint32) Ref { return Ref(int64(idx+1)<<32 | int64(gen)) }

func (r Ref) split() (idx int, gen uint32) {
	return int(int64(r)>>32) - 1, uint32(int64(r) & 0xffffffff)
}

type objSlot struct {
	off   int // current payload offset in the heap; changes on compaction
	size  int
	gen   uint32
	live  bool
	kind  Kind
	elems int
	pins  int // open pin count; pinned objects do not move during GC
}

// Stats aggregates allocator and collector activity for one machine.
type Stats struct {
	HeapAllocs     int64
	HeapAllocBytes int64
	DirectAllocs   int64
	DirectBytes    int64
	Collections    int64
	BytesMoved     int64
	GCPause        vtime.Duration
	// PinnedBytes/PinnedPeak track the immovable-object footprint
	// opened through Pin — the JVM-side analogue of the runtime's
	// pin-down registration cache: memory exposed to native transfers
	// (JNI no-copy access, RDMA placement) must hold its address, and
	// this is how much of the heap is currently exempt from compaction.
	// Nested pins on one object count its size once.
	PinnedBytes int64
	PinnedPeak  int64
}

// Options configures a Machine.
type Options struct {
	// HeapSize is the managed-heap capacity in bytes (the -Xmx of the
	// simulated JVM). Zero selects the 16 MiB default (simulated jobs
	// are many-rank, so per-rank footprints stay small; size up for
	// large-message benchmarks).
	HeapSize int
	// ArenaSize is the off-heap direct-buffer arena capacity. Zero
	// selects the 16 MiB default.
	ArenaSize int
	// Costs overrides the access cost model; the zero value selects
	// DefaultCosts.
	Costs *AccessCosts
	// AllowPinning models a JVM whose collector supports object
	// pinning (e.g. region-based collectors that can exempt a region
	// from evacuation). When set, JNI Get<Type>ArrayElements may return
	// a pointer to the actual array storage instead of a copy — the
	// possibility the JNI spec leaves open via isCopy. Default JVMs do
	// not pin, matching the paper's "all modern JVMs copy" observation.
	AllowPinning bool
}

// Machine is one simulated JVM instance. Each MPI rank owns exactly
// one Machine; like the Clock it embeds, it is confined to its rank's
// goroutine and is not safe for concurrent use.
type Machine struct {
	clock     *vtime.Clock
	costs     AccessCosts
	heap      []byte
	used      int
	slots     []objSlot
	freeSlots []int
	liveBytes int
	critical  int
	pendingGC bool
	arena     *arena
	allowPin  bool
	stats     Stats
	gcObs     func(liveBytes int, start, end vtime.Time)
}

// SetGCObserver registers a callback invoked after every completed
// collection with the live-set size and the pause's virtual extent.
// The observability layer uses it to emit GC spans; the callback must
// not advance any clock.
func (m *Machine) SetGCObserver(fn func(liveBytes int, start, end vtime.Time)) { m.gcObs = fn }

// NewMachine builds a simulated JVM charging costs to clock.
func NewMachine(clock *vtime.Clock, opts Options) *Machine {
	if clock == nil {
		panic("jvm: nil clock")
	}
	heapSize := opts.HeapSize
	if heapSize == 0 {
		heapSize = 16 << 20
	}
	arenaSize := opts.ArenaSize
	if arenaSize == 0 {
		arenaSize = 16 << 20
	}
	if heapSize < 0 || arenaSize < 0 {
		panic(fmt.Sprintf("jvm: negative sizes heap=%d arena=%d", heapSize, arenaSize))
	}
	costs := DefaultCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	return &Machine{
		clock:    clock,
		costs:    costs,
		heap:     make([]byte, heapSize),
		arena:    newArena(arenaSize),
		allowPin: opts.AllowPinning,
	}
}

// CanPin reports whether this JVM's collector supports object pinning
// (Options.AllowPinning). On such machines Pin/Unpin bracket a region
// during which the object's storage is guaranteed not to move.
func (m *Machine) CanPin() bool { return m.allowPin }

// Pin marks r's object immovable until the matching Unpin. Pins nest.
// It fails on machines whose collector does not support pinning and on
// stale references.
func (m *Machine) Pin(r Ref) error {
	if !m.allowPin {
		return errors.New("jvm: collector does not support pinning")
	}
	s, err := m.slot(r)
	if err != nil {
		return err
	}
	s.pins++
	if s.pins == 1 {
		m.stats.PinnedBytes += int64(s.size)
		if m.stats.PinnedBytes > m.stats.PinnedPeak {
			m.stats.PinnedPeak = m.stats.PinnedBytes
		}
	}
	return nil
}

// Unpin releases one pin on r's object.
func (m *Machine) Unpin(r Ref) error {
	s, err := m.slot(r)
	if err != nil {
		return err
	}
	if s.pins == 0 {
		panic("jvm: Unpin without Pin")
	}
	s.pins--
	if s.pins == 0 {
		m.stats.PinnedBytes -= int64(s.size)
	}
	return nil
}

// Clock returns the rank clock this machine charges.
func (m *Machine) Clock() *vtime.Clock { return m.clock }

// Costs returns the access cost model in effect.
func (m *Machine) Costs() AccessCosts { return m.costs }

// Stats returns a snapshot of allocator/collector counters.
func (m *Machine) Stats() Stats { return m.stats }

// HeapUsed returns the bytes currently occupied in the managed heap
// (including dead objects not yet collected).
func (m *Machine) HeapUsed() int { return m.used }

// LiveBytes returns the bytes occupied by live heap objects.
func (m *Machine) LiveBytes() int { return m.liveBytes }

// allocHeap carves size bytes out of the managed heap, collecting if
// needed, and returns the slot index.
func (m *Machine) allocHeap(kind Kind, elems, size int) (Ref, error) {
	if size < 0 {
		return nilRef, fmt.Errorf("jvm: negative allocation %d", size)
	}
	if m.used+size > len(m.heap) {
		if m.liveBytes+size > len(m.heap) {
			return nilRef, fmt.Errorf("%w: need %d bytes, heap %d, live %d",
				ErrOutOfMemory, size, len(m.heap), m.liveBytes)
		}
		if err := m.GC(); err != nil {
			return nilRef, err
		}
		if m.used+size > len(m.heap) {
			return nilRef, fmt.Errorf("%w: need %d bytes after GC", ErrOutOfMemory, size)
		}
	}
	off := m.used
	m.used += size
	m.liveBytes += size
	var idx int
	if n := len(m.freeSlots); n > 0 {
		idx = m.freeSlots[n-1]
		m.freeSlots = m.freeSlots[:n-1]
	} else {
		m.slots = append(m.slots, objSlot{})
		idx = len(m.slots) - 1
	}
	s := &m.slots[idx]
	s.off, s.size, s.live, s.kind, s.elems = off, size, true, kind, elems
	s.gen++
	m.stats.HeapAllocs++
	m.stats.HeapAllocBytes += int64(size)
	m.clock.Advance(m.costs.AllocHeap + vtime.PerElement(size, m.costs.AllocPerByte))
	return makeRef(idx, s.gen), nil
}

// slot resolves a ref, failing on stale handles.
func (m *Machine) slot(r Ref) (*objSlot, error) {
	idx, gen := r.split()
	if idx < 0 || idx >= len(m.slots) {
		return nil, fmt.Errorf("%w: ref %#x out of range", ErrStale, int64(r))
	}
	s := &m.slots[idx]
	if !s.live || s.gen != gen {
		return nil, fmt.Errorf("%w: ref %#x generation mismatch", ErrStale, int64(r))
	}
	return s, nil
}

// payload returns the current backing bytes of r. The slice aliases
// the heap and is invalidated by the next collection — exactly the
// property that forces JNI to copy (or pin) Java arrays.
func (m *Machine) payload(r Ref) ([]byte, error) {
	s, err := m.slot(r)
	if err != nil {
		return nil, err
	}
	return m.heap[s.off : s.off+s.size : s.off+s.size], nil
}

// discard marks r dead; its storage is reclaimed by the next GC.
func (m *Machine) discard(r Ref) error {
	s, err := m.slot(r)
	if err != nil {
		return err
	}
	if s.pins > 0 {
		// Discarding a pinned object means native code still holds its
		// storage — the use-after-free JNI's copy semantics exist to
		// prevent. A loud stop beats silent corruption.
		panic("jvm: discard of pinned object")
	}
	s.live = false
	m.liveBytes -= s.size
	idx, _ := r.split()
	m.freeSlots = append(m.freeSlots, idx)
	return nil
}

// GC runs a stop-the-world mark-compact collection: live objects are
// slid toward the bottom of the heap (moving their payloads and
// updating their offsets) and the bump pointer is reset past them. The
// pause is charged to the rank's virtual clock in proportion to the
// live set.
//
// If a JNI critical region is open, collection is deferred: the call
// records the request and returns ErrGCDisabled.
func (m *Machine) GC() error {
	if m.critical > 0 {
		m.pendingGC = true
		return ErrGCDisabled
	}
	// Collect slot indices of live objects in address order. Slots are
	// appended in allocation order but frees recycle entries, so sort
	// by offset.
	order := make([]int, 0, len(m.slots))
	for i := range m.slots {
		if m.slots[i].live {
			order = append(order, i)
		}
	}
	// Insertion sort by offset: the live list is nearly sorted because
	// compaction preserves address order.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && m.slots[order[j-1]].off > m.slots[order[j]].off; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	dst := 0
	moved := int64(0)
	for _, i := range order {
		s := &m.slots[i]
		if s.pins > 0 {
			// Pinned objects hold their addresses; compaction resumes
			// past them. Processing in address order keeps dst <= s.off
			// for every unpinned slot (objects only slide down), so the
			// copy below never overlaps a pinned region.
			dst = s.off + s.size
			continue
		}
		if s.off != dst {
			copy(m.heap[dst:dst+s.size], m.heap[s.off:s.off+s.size])
			moved += int64(s.size)
			s.off = dst
		}
		dst += s.size
	}
	m.used = dst
	m.stats.Collections++
	m.stats.BytesMoved += moved
	pause := m.costs.GCFixed + vtime.PerByte(m.liveBytes, m.costs.GCBandwidth)
	m.stats.GCPause += pause
	start := m.clock.Now()
	m.clock.Advance(pause)
	m.pendingGC = false
	if m.gcObs != nil {
		m.gcObs(m.liveBytes, start, m.clock.Now())
	}
	return nil
}

// EnterCritical opens a JNI critical region: collections are blocked
// until the matching ExitCritical. Regions nest.
func (m *Machine) EnterCritical() { m.critical++ }

// ExitCritical closes a critical region. If a collection was requested
// while the region was open, it runs now — this is the "detrimental
// performance" hazard the paper describes for
// GetPrimitiveArrayCritical.
func (m *Machine) ExitCritical() {
	if m.critical == 0 {
		panic("jvm: ExitCritical without EnterCritical")
	}
	m.critical--
	if m.critical == 0 && m.pendingGC {
		_ = m.GC()
	}
}

// InCritical reports whether a critical region is open.
func (m *Machine) InCritical() bool { return m.critical > 0 }

// ChargeBulk charges the memcpy-rate cost of moving n bytes. Exposed
// for the JNI and buffering layers, which move data on behalf of the
// Java program.
func (m *Machine) ChargeBulk(n int) { m.clock.Advance(m.costs.bulk(n)) }

// Charge advances the machine's clock by d. The JNI layer uses it for
// call-crossing overheads.
func (m *Machine) Charge(d vtime.Duration) { m.clock.Advance(d) }
